(* A miniature of the paper's Figure 9: run the context-switch-heavy
   "find" trace on 1, 2 and 4 tiles under both multiplexing designs and
   watch M3x's centralized controller saturate while M3v scales.

   Run with: dune exec examples/scaling_study.exe *)

module Trace = M3v_apps.Trace
module System = M3v.System

let () =
  let trace = Trace.find_trace ~dirs:8 ~files_per_dir:20 () in
  Format.printf "scaling study: '%s' trace, %d fs calls per run@."
    trace.Trace.name (Trace.rpc_count trace);
  Format.printf "  %-6s %12s %12s %9s@." "tiles" "M3v runs/s" "M3x runs/s" "speedup";
  List.iter
    (fun tiles ->
      let m3v =
        M3v.Exp_fig9.throughput ~variant:System.M3v ~trace ~tiles ~runs:2 ~warmup:1 ()
      in
      let m3x =
        M3v.Exp_fig9.throughput ~variant:System.M3x ~trace ~tiles ~runs:2 ~warmup:1 ()
      in
      Format.printf "  %-6d %12.1f %12.1f %8.1fx@." tiles m3v m3x (m3v /. m3x))
    [ 1; 2; 4 ];
  Format.printf
    "  (M3v switches tile-locally in TileMux; M3x funnels every switch@.";
  Format.printf "   through the single controller and stops scaling.)@."
