module Dtu_types = M3v_dtu.Dtu_types

type stats = { faults : int }

type t = {
  pages : (int, int * Dtu_types.perm) Hashtbl.t;
  mutable next_vaddr : int;
  mutable faults : int;
}

(* Virtual regions start above the traditional text/stack area. *)
let region_base = 0x1000_0000

let create () = { pages = Hashtbl.create 64; next_vaddr = region_base; faults = 0 }

let alloc_region t ~size =
  if size <= 0 then invalid_arg "Addrspace.alloc_region: size must be positive";
  let pages =
    (size + Dtu_types.page_size - 1) / Dtu_types.page_size
  in
  let vaddr = t.next_vaddr in
  t.next_vaddr <- vaddr + (pages * Dtu_types.page_size);
  vaddr

let translate t ~vpage = Hashtbl.find_opt t.pages vpage
let is_mapped t ~vpage = Hashtbl.mem t.pages vpage
let map t ~vpage ~ppage ~perm = Hashtbl.replace t.pages vpage (ppage, perm)
let unmap t ~vpage = Hashtbl.remove t.pages vpage
let mapped_pages t = Hashtbl.length t.pages
let note_fault t = t.faults <- t.faults + 1
let stats t = { faults = t.faults }
