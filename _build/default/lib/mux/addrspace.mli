(** Per-activity address spaces.

    TileMux isolates tile-local activities with the core's MMU; this module
    is the page table plus a simple virtual-address-region allocator.  The
    physical page number is bookkeeping (data movement happens through the
    DTU with real bytes); what matters for timing is whether a page is
    mapped, because unmapped pages trigger the full TileMux -> pager ->
    controller -> TileMux fault path. *)

type t

val create : unit -> t

(** Reserve a page-aligned virtual region of at least [size] bytes; the
    pages start unmapped (demand paging). *)
val alloc_region : t -> size:int -> int

val translate : t -> vpage:int -> (int * M3v_dtu.Dtu_types.perm) option
val is_mapped : t -> vpage:int -> bool
val map : t -> vpage:int -> ppage:int -> perm:M3v_dtu.Dtu_types.perm -> unit
val unmap : t -> vpage:int -> unit
val mapped_pages : t -> int

type stats = { faults : int }

val note_fault : t -> unit
val stats : t -> stats
