lib/mux/runtime.ml: Act_api Act_ops Addrspace Hashtbl List M3v_dtu M3v_kernel M3v_sim M3v_tile Printf Queue
