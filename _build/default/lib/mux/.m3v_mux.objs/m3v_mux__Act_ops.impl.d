lib/mux/act_ops.ml: M3v_dtu M3v_sim
