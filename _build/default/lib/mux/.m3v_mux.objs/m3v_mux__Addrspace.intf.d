lib/mux/addrspace.mli: M3v_dtu
