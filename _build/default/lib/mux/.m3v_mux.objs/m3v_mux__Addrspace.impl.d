lib/mux/addrspace.ml: Hashtbl M3v_dtu
