lib/mux/act_ops.mli: M3v_dtu M3v_sim
