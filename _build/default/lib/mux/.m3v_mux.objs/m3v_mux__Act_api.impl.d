lib/mux/act_api.ml: Act_ops Bytes Format M3v_dtu M3v_kernel M3v_sim Proc
