lib/mux/runtime.mli: Act_api M3v_dtu M3v_kernel M3v_sim
