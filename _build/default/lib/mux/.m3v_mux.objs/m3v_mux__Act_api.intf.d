lib/mux/act_api.mli: Act_ops M3v_dtu M3v_kernel M3v_sim Proc
