(** Direct-style wrappers for Linux processes, mirroring {!M3v_mux.Act_api}
    and yielding the same portable {!M3v_os.Vfs.t} / UDP interfaces so that
    applications run unchanged on both systems. *)

open M3v_sim

val noop_syscall : unit Proc.t
val yield : unit Proc.t

val open_ : string -> M3v_os.Fs_proto.open_flags -> (int, string) result Proc.t
val read : fd:int -> buf:M3v_mux.Act_ops.buf -> len:int -> int Proc.t
val write : fd:int -> buf:M3v_mux.Act_ops.buf -> len:int -> int Proc.t
val seek : fd:int -> pos:int -> unit Proc.t
val close : fd:int -> unit Proc.t
val stat : string -> (M3v_os.Fs_proto.fs_rep, string) result Proc.t
val readdir : string -> (string list, string) result Proc.t
val mkdir : string -> (unit, string) result Proc.t
val unlink : string -> (unit, string) result Proc.t

val socket : int Proc.t
val bind : sock:int -> port:int -> unit Proc.t
val sendto : sock:int -> dst:M3v_os.Net_proto.addr -> bytes -> unit Proc.t
val recvfrom : sock:int -> (M3v_os.Net_proto.addr * bytes) Proc.t
val sock_close : sock:int -> unit Proc.t

val vfs : M3v_os.Vfs.t
val udp : M3v_os.Net_client.udp
