module Proc = M3v_sim.Proc
open Lx_ops

let unit_resp what = function
  | Proc.Unit -> ()
  | r -> Proc.decode_error what r

let int_resp what = function L_int n -> n | r -> Proc.decode_error what r

let noop_syscall = Proc.perform Lx_noop_syscall (unit_resp "noop_syscall")
let yield = Proc.perform Lx_yield (unit_resp "yield")

let open_ path flags =
  Proc.perform (Lx_open { o_path = path; o_flags = flags }) (function
    | L_result r -> r
    | r -> Proc.decode_error "open" r)

let read ~fd ~buf ~len =
  Proc.perform (Lx_read { r_fd = fd; r_buf = buf; r_len = len }) (int_resp "read")

let write ~fd ~buf ~len =
  Proc.perform (Lx_write { w_fd = fd; w_buf = buf; w_len = len }) (int_resp "write")

let seek ~fd ~pos =
  Proc.perform (Lx_seek { s_fd = fd; s_pos = pos }) (unit_resp "seek")

let close ~fd = Proc.perform (Lx_close fd) (unit_resp "close")

let stat path =
  Proc.perform (Lx_stat path) (function
    | L_stat r -> r
    | r -> Proc.decode_error "stat" r)

let readdir path =
  Proc.perform (Lx_readdir path) (function
    | L_names r -> r
    | r -> Proc.decode_error "readdir" r)

let mkdir path =
  Proc.perform (Lx_mkdir path) (function
    | L_unit_result r -> r
    | r -> Proc.decode_error "mkdir" r)

let unlink path =
  Proc.perform (Lx_unlink path) (function
    | L_unit_result r -> r
    | r -> Proc.decode_error "unlink" r)

let socket = Proc.perform Lx_socket (int_resp "socket")

let bind ~sock ~port =
  Proc.perform (Lx_bind { b_sock = sock; b_port = port }) (unit_resp "bind")

let sendto ~sock ~dst data =
  Proc.perform
    (Lx_sendto { sd_sock = sock; sd_dst = dst; sd_data = data })
    (unit_resp "sendto")

let recvfrom ~sock =
  Proc.perform (Lx_recvfrom { rc_sock = sock }) (function
    | L_pkt (src, data) -> (src, data)
    | r -> Proc.decode_error "recvfrom" r)

let sock_close ~sock = Proc.perform (Lx_sock_close sock) (unit_resp "sock_close")

let vfs =
  {
    M3v_os.Vfs.open_;
    read = (fun fd buf len -> read ~fd ~buf ~len);
    write = (fun fd buf len -> write ~fd ~buf ~len);
    seek = (fun fd pos -> seek ~fd ~pos);
    close = (fun fd -> close ~fd);
    stat;
    readdir;
    mkdir;
    unlink;
  }

let udp =
  {
    M3v_os.Net_client.u_socket = (fun () -> socket);
    u_bind = (fun sock port -> bind ~sock ~port);
    u_sendto = (fun sock dst data -> sendto ~sock ~dst data);
    u_recvfrom = (fun sock -> recvfrom ~sock);
    u_close = (fun sock -> sock_close ~sock);
  }
