(** Linux 5.11 running bare-metal on a single tile (paper, section 6).

    Linux cannot use multiple tiles of the platform (the tiles are not
    cache coherent), so the whole comparison runs on one core.  The model
    captures the structural costs that drive the paper's Linux results:

    - every file or socket operation is a system call (kernel entry/exit,
      fd lookup, and a kernel<->user copy of the data);
    - tmpfs writes allocate and clear pages;
    - the in-kernel UDP stack and NIC driver run per packet;
    - [yield] costs a scheduler pass plus a process context switch;
    - system-call time is accounted as system time, the remainder as user
      time (getrusage semantics, used by Figure 10).

    Processes are [Proc] programs over the generic compute/memcpy ops from
    {!M3v_mux.Act_ops} and the syscalls in {!Lx_ops} (wrapped by
    {!Lx_api}). *)

type t

val create :
  ?core:M3v_tile.Core_model.t ->
  ?tmpfs_blocks:int ->
  ?timeslice:M3v_sim.Time.t ->
  M3v_sim.Engine.t ->
  unit ->
  t

(** Attach a NIC; received frames are handled by the in-kernel stack. *)
val attach_nic : t -> M3v_os.Nic.t -> unit

val nic : t -> M3v_os.Nic.t option

type pid = int

val spawn : t -> name:string -> unit M3v_sim.Proc.t -> pid

(** Start scheduling spawned processes. *)
val boot : t -> unit

val finished : t -> pid -> bool
val proc_name : t -> pid -> string
val all_finished : t -> bool

(** getrusage: (user, system) time consumed by the process. *)
val rusage : t -> pid -> M3v_sim.Time.t * M3v_sim.Time.t

(** Whole-machine totals. *)
val total_user : t -> M3v_sim.Time.t

val total_sys : t -> M3v_sim.Time.t

(** Direct access to the tmpfs core (host-level test setup). *)
val tmpfs : t -> M3v_os.Fs_core.t

(** Host-side file preload into tmpfs. *)
val preload_file : t -> path:string -> bytes -> unit

val peek_file : t -> path:string -> bytes option

(** Calibration constants (cycles). *)
val syscall_cycles : int

val yield_extra_cycles : int
val udp_tx_cycles : int
val udp_rx_cycles : int
