lib/linux/lx_ops.mli: M3v_mux M3v_os M3v_sim
