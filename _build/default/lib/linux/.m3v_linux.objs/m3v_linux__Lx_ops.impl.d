lib/linux/lx_ops.ml: M3v_mux M3v_os M3v_sim
