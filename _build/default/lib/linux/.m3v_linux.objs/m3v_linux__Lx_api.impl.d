lib/linux/lx_api.ml: Lx_ops M3v_os M3v_sim
