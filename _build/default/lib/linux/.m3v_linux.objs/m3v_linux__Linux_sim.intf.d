lib/linux/linux_sim.mli: M3v_os M3v_sim M3v_tile
