lib/linux/linux_sim.ml: Bytes Hashtbl List Lx_ops M3v_mux M3v_os M3v_sim M3v_tile Printf Queue
