module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Proc = M3v_sim.Proc
module Core_model = M3v_tile.Core_model
module Fs_core = M3v_os.Fs_core
module Fs_proto = M3v_os.Fs_proto
module Net_proto = M3v_os.Net_proto
open M3v_mux.Act_ops
open Lx_ops

type pid = int

(* --- calibration constants (cycles on the Linux core) --- *)
let syscall_cycles = 950
let yield_extra_cycles = 1_450 (* scheduler + context switch on top of entry *)
let fd_lookup_cycles = 260
let path_lookup_cycles = 420
let tmpfs_page_cycles = 800 (* page-cache walk + accounting per touched page *)
let tmpfs_alloc_page_cycles = 2_000 (* allocation + zeroing bookkeeping per new page *)
let udp_tx_cycles = 10_000
let udp_rx_cycles = 11_500
let nic_driver_cycles = 2_600
let minor_fault_cycles = 1_400

(* Linux's large kernel code footprint evicts the application's state from
   the small (16 kB) L1 instruction cache on every system call (paper,
   6.5.2).  The refill penalty only materializes when the application has
   run long enough between kernel entries to fault the kernel's code out
   again — a tight syscall loop (Figure 6) stays warm. *)
let icache_refill_cycles = 3_200

type pstate = Ready | Running | Blocked_net | Dead

type proc_rec = {
  pid : pid;
  pname : string;
  program : unit Proc.t;
  mutable st : pstate;
  mutable resume : (unit -> unit) option;
  mutable slice_left : Time.t;
  mutable user_ps : int;
  mutable sys_ps : int;
  mutable started : bool;
}

type fd_state = {
  f_ino : Fs_core.ino;
  mutable f_pos : int;
  mutable f_max : int;
  f_writable : bool;
}

type sock_state = {
  mutable sk_port : int;
  sk_queue : Net_proto.packet Queue.t;
  mutable sk_waiting : (pid * (Proc.resp -> unit)) option;
}

type t = {
  engine : Engine.t;
  core : Core_model.t;
  timeslice : Time.t;
  mutable user_since_syscall : int;  (** cycles of user work since kernel entry *)
  fs : Fs_core.t;
  store : bytes;
  procs : (pid, proc_rec) Hashtbl.t;
  mutable next_pid : pid;
  runq : pid Queue.t;
  mutable current : pid option;
  mutable dispatch_pending : bool;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  socks : (int, sock_state) Hashtbl.t;
  mutable next_sock : int;
  mutable lnic : M3v_os.Nic.t option;
}

let create ?(core = Core_model.boom) ?(tmpfs_blocks = 16384)
    ?(timeslice = Time.ms 1) engine () =
  {
    engine;
    core;
    timeslice;
    user_since_syscall = 0;
    fs = Fs_core.create ~blocks:tmpfs_blocks ();
    store = Bytes.make (tmpfs_blocks * Fs_core.block_size) '\000';
    procs = Hashtbl.create 8;
    next_pid = 1;
    runq = Queue.create ();
    current = None;
    dispatch_pending = false;
    fds = Hashtbl.create 16;
    next_fd = 3;
    socks = Hashtbl.create 8;
    next_sock = 1;
    lnic = None;
  }

let tmpfs t = t.fs
let nic t = t.lnic

let find t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Linux_sim: unknown pid %d" pid)

let finished t pid = (find t pid).st = Dead
let proc_name t pid = (find t pid).pname
let all_finished t = Hashtbl.fold (fun _ p acc -> acc && p.st = Dead) t.procs true
let rusage t pid =
  let p = find t pid in
  (p.user_ps, p.sys_ps)

let total_user t = Hashtbl.fold (fun _ p acc -> acc + p.user_ps) t.procs 0
let total_sys t = Hashtbl.fold (fun _ p acc -> acc + p.sys_ps) t.procs 0

type bucket = User | Sys

let charge t (p : proc_rec) bucket cycles k =
  if cycles <= 0 then k ()
  else begin
    (* Track instruction-cache pressure: user work cools the kernel's
       footprint; a kernel entry after a long user phase pays a refill. *)
    let cycles =
      match bucket with
      | User ->
          t.user_since_syscall <- t.user_since_syscall + cycles;
          cycles
      | Sys ->
          let penalty =
            min icache_refill_cycles (t.user_since_syscall / 16)
          in
          t.user_since_syscall <- 0;
          cycles + penalty
    in
    let d = Core_model.cycles t.core cycles in
    (match bucket with
    | User -> p.user_ps <- p.user_ps + d
    | Sys -> p.sys_ps <- p.sys_ps + d);
    Engine.after t.engine ~delay:d k
  end

(* --- scheduler --- *)

let others_ready t = not (Queue.is_empty t.runq)

let rec schedule_dispatch t =
  if not t.dispatch_pending then begin
    t.dispatch_pending <- true;
    Engine.after t.engine ~delay:0 (fun () ->
        t.dispatch_pending <- false;
        do_dispatch t)
  end

and do_dispatch t =
  if t.current = None then
    match Queue.take_opt t.runq with
    | None -> ()
    | Some pid -> (
        let p = find t pid in
        match p.st with
        | Ready ->
            p.st <- Running;
            t.current <- Some pid;
            (* Scheduler pass + switch charged to system time. *)
            charge t p Sys yield_extra_cycles (fun () ->
                p.slice_left <- t.timeslice;
                resume_proc t p)
        | Running | Blocked_net | Dead -> do_dispatch t)

and resume_proc t p =
  if not p.started then begin
    p.started <- true;
    exec t p (Proc.run p.program)
  end
  else
    match p.resume with
    | Some f ->
        p.resume <- None;
        f ()
    | None -> failwith "Linux_sim: resume without continuation"

and exec t p = function
  | Proc.Finished ->
      p.st <- Dead;
      if t.current = Some p.pid then begin
        t.current <- None;
        schedule_dispatch t
      end
  | Proc.Request (op, k) -> interp t p op (fun resp -> exec t p (k resp))

(* --- tmpfs helpers --- *)

and tmpfs_copy_out t ino ~off ~len ~(buf : buf) ~buf_off =
  let segs = Fs_core.segments t.fs ino ~off ~len in
  let pos = ref buf_off in
  List.iter
    (fun (region_off, l) ->
      Bytes.blit t.store region_off buf.data !pos l;
      pos := !pos + l)
    segs;
  !pos - buf_off

and tmpfs_copy_in t ino ~off ~len ~(buf : buf) ~buf_off =
  let segs = Fs_core.segments t.fs ino ~off ~len in
  let pos = ref buf_off in
  List.iter
    (fun (region_off, l) ->
      Bytes.blit buf.data !pos t.store region_off l;
      pos := !pos + l)
    segs;
  !pos - buf_off

(* --- the interpreter --- *)

and interp t (p : proc_rec) op (k : Proc.resp -> unit) =
  match op with
  | Op_compute cycles -> compute_chunks t p cycles k
  | Op_memcpy bytes -> compute_chunks t p (Core_model.memcpy_cycles t.core bytes) k
  | Op_now -> charge t p User 6 (fun () -> k (R_time (Engine.now t.engine)))
  | Op_log _ | Op_acct _ -> k Proc.Unit
  | Op_alloc_buf size ->
      (* Anonymous mmap: minor faults on first touch folded in here. *)
      let pages = (size + 4095) / 4096 in
      charge t p Sys (200 + (pages * minor_fault_cycles / 4)) (fun () ->
          k (R_vaddr (0x4000_0000 + (p.pid * 0x100_0000))))
  | Op_touch { t_len; _ } ->
      charge t p User (2 * ((t_len + 4095) / 4096)) (fun () -> k Proc.Unit)
  | Op_yield | Lx_yield ->
      (* Entry only; the scheduler pass + switch is charged in dispatch. *)
      charge t p Sys syscall_cycles (fun () ->
          if others_ready t then begin
            p.st <- Ready;
            p.resume <- Some (fun () -> k Proc.Unit);
            Queue.add p.pid t.runq;
            t.current <- None;
            schedule_dispatch t
          end
          else k Proc.Unit)
  | Lx_noop_syscall -> charge t p Sys syscall_cycles (fun () -> k Proc.Unit)
  | Lx_open { o_path; o_flags } ->
      charge t p Sys (syscall_cycles + path_lookup_cycles) (fun () ->
          let resolve () =
            if o_flags.Fs_proto.fl_create then Fs_core.create_file t.fs o_path
            else
              match Fs_core.lookup t.fs o_path with
              | Some ino -> Ok ino
              | None -> Error "ENOENT"
          in
          match resolve () with
          | Error e -> k (L_result (Error e))
          | Ok ino ->
              if o_flags.Fs_proto.fl_trunc then Fs_core.truncate t.fs ino;
              let fd = t.next_fd in
              t.next_fd <- fd + 1;
              Hashtbl.replace t.fds fd
                { f_ino = ino; f_pos = 0; f_max = 0;
                  f_writable = o_flags.Fs_proto.fl_write };
              k (L_result (Ok fd)))
  | Lx_read { r_fd; r_buf; r_len } -> (
      match Hashtbl.find_opt t.fds r_fd with
      | None -> k (L_int 0)
      | Some fd ->
          let size = Fs_core.size t.fs fd.f_ino in
          let len = max 0 (min r_len (size - fd.f_pos)) in
          let pages = (len + 4095) / 4096 in
          let cost =
            syscall_cycles + fd_lookup_cycles + (pages * tmpfs_page_cycles)
            + Core_model.memcpy_cycles t.core len
          in
          charge t p Sys cost (fun () ->
              let n = tmpfs_copy_out t fd.f_ino ~off:fd.f_pos ~len ~buf:r_buf ~buf_off:0 in
              fd.f_pos <- fd.f_pos + n;
              k (L_int n)))
  | Lx_write { w_fd; w_buf; w_len } -> (
      match Hashtbl.find_opt t.fds w_fd with
      | None -> k (L_int 0)
      | Some fd ->
          if not fd.f_writable then k (L_int 0)
          else begin
            let before = Fs_core.free_blocks t.fs in
            let _, fresh =
              Fs_core.ensure_write_extent t.fs fd.f_ino ~off:fd.f_pos
            in
            let _ =
              if w_len > 0 then
                Fs_core.ensure_write_extent t.fs fd.f_ino
                  ~off:(fd.f_pos + w_len - 1)
              else ((0, 0, 0), [])
            in
            ignore fresh;
            let allocated = before - Fs_core.free_blocks t.fs in
            Fs_core.set_size t.fs fd.f_ino (fd.f_pos + w_len);
            let pages = (w_len + 4095) / 4096 in
            (* Allocation + clearing of fresh pages + the user copy. *)
            let cost =
              syscall_cycles + fd_lookup_cycles + (pages * tmpfs_page_cycles)
              + (allocated * (tmpfs_alloc_page_cycles + Core_model.memcpy_cycles t.core 4096))
              + Core_model.memcpy_cycles t.core w_len
            in
            charge t p Sys cost (fun () ->
                let n =
                  tmpfs_copy_in t fd.f_ino ~off:fd.f_pos ~len:w_len ~buf:w_buf
                    ~buf_off:0
                in
                fd.f_pos <- fd.f_pos + n;
                fd.f_max <- max fd.f_max fd.f_pos;
                k (L_int n))
          end)
  | Lx_seek { s_fd; s_pos } ->
      charge t p Sys (syscall_cycles / 2) (fun () ->
          (match Hashtbl.find_opt t.fds s_fd with
          | Some fd -> fd.f_pos <- s_pos
          | None -> ());
          k Proc.Unit)
  | Lx_close fd ->
      charge t p Sys (syscall_cycles / 2) (fun () ->
          Hashtbl.remove t.fds fd;
          k Proc.Unit)
  | Lx_stat path ->
      charge t p Sys (syscall_cycles + path_lookup_cycles) (fun () ->
          match Fs_core.stat t.fs path with
          | Ok st ->
              k
                (L_stat
                   (Ok
                      (Fs_proto.R_stat
                         {
                           size = st.Fs_core.st_size;
                           is_dir = st.Fs_core.st_is_dir;
                           blocks = st.Fs_core.st_blocks;
                         })))
          | Error e -> k (L_stat (Error e)))
  | Lx_readdir path ->
      charge t p Sys (syscall_cycles + path_lookup_cycles + 300) (fun () ->
          k (L_names (Fs_core.readdir t.fs path)))
  | Lx_mkdir path ->
      charge t p Sys (syscall_cycles + path_lookup_cycles) (fun () ->
          match Fs_core.mkdir t.fs path with
          | Ok _ -> k (L_unit_result (Ok ()))
          | Error e -> k (L_unit_result (Error e)))
  | Lx_unlink path ->
      charge t p Sys (syscall_cycles + path_lookup_cycles) (fun () ->
          k (L_unit_result (Fs_core.unlink t.fs path)))
  | Lx_socket ->
      charge t p Sys (syscall_cycles + 400) (fun () ->
          let id = t.next_sock in
          t.next_sock <- id + 1;
          Hashtbl.replace t.socks id
            { sk_port = 40_000 + id; sk_queue = Queue.create (); sk_waiting = None };
          k (L_int id))
  | Lx_bind { b_sock; b_port } ->
      charge t p Sys (syscall_cycles + 200) (fun () ->
          (match Hashtbl.find_opt t.socks b_sock with
          | Some s -> s.sk_port <- b_port
          | None -> ());
          k Proc.Unit)
  | Lx_sendto { sd_sock; sd_dst; sd_data } -> (
      match Hashtbl.find_opt t.socks sd_sock with
      | None -> k Proc.Unit
      | Some s ->
          let cost =
            syscall_cycles + udp_tx_cycles + nic_driver_cycles
            + Core_model.memcpy_cycles t.core (Bytes.length sd_data)
          in
          charge t p Sys cost (fun () ->
              (match t.lnic with
              | Some nic ->
                  M3v_os.Nic.transmit nic
                    { Net_proto.src = (0, s.sk_port); dst = sd_dst;
                      payload = Bytes.copy sd_data }
              | None -> ());
              k Proc.Unit))
  | Lx_recvfrom { rc_sock } -> (
      match Hashtbl.find_opt t.socks rc_sock with
      | None -> k (L_pkt ((0, 0), Bytes.empty))
      | Some s -> (
          let deliver (pkt : Net_proto.packet) =
            (* Interrupt + stack processing + copy to user. *)
            let cost =
              syscall_cycles + udp_rx_cycles + nic_driver_cycles
              + Core_model.memcpy_cycles t.core (Bytes.length pkt.Net_proto.payload)
            in
            charge t p Sys cost (fun () ->
                k (L_pkt (pkt.Net_proto.src, pkt.Net_proto.payload)))
          in
          match Queue.take_opt s.sk_queue with
          | Some pkt -> deliver pkt
          | None ->
              charge t p Sys syscall_cycles (fun () ->
                  p.st <- Blocked_net;
                  s.sk_waiting <-
                    Some (p.pid, fun resp -> k resp);
                  p.resume <- None;
                  t.current <- None;
                  schedule_dispatch t)))
  | Lx_sock_close sock ->
      charge t p Sys (syscall_cycles / 2) (fun () ->
          Hashtbl.remove t.socks sock;
          k Proc.Unit)
  | _ -> failwith "Linux_sim: unsupported operation for a Linux process"

and compute_chunks t (p : proc_rec) cycles k =
  if cycles <= 0 then k Proc.Unit
  else begin
    let slice_cycles =
      max 1 (Time.to_cycles ~ps_per_cycle:t.core.Core_model.ps_per_cycle p.slice_left)
    in
    let run = min cycles slice_cycles in
    charge t p User run (fun () ->
        p.slice_left <- Time.sub p.slice_left (Core_model.cycles t.core run);
        let rest = cycles - run in
        if p.slice_left <= 0 && others_ready t then begin
          charge t p Sys yield_extra_cycles (fun () ->
              p.st <- Ready;
              p.resume <- Some (fun () -> compute_chunks t p rest k);
              Queue.add p.pid t.runq;
              t.current <- None;
              schedule_dispatch t)
        end
        else begin
          if p.slice_left <= 0 then p.slice_left <- t.timeslice;
          compute_chunks t p rest k
        end)
  end

(* --- NIC reception (in-kernel) --- *)

let on_nic_rx t (pkt : Net_proto.packet) =
  let target =
    Hashtbl.fold
      (fun _ s acc -> if s.sk_port = snd pkt.Net_proto.dst then Some s else acc)
      t.socks None
  in
  match target with
  | None -> ()
  | Some s -> (
      match s.sk_waiting with
      | Some (pid, fill) ->
          s.sk_waiting <- None;
          let p = find t pid in
          p.st <- Ready;
          p.resume <-
            Some
              (fun () ->
                let cost =
                  udp_rx_cycles + nic_driver_cycles
                  + Core_model.memcpy_cycles t.core
                      (Bytes.length pkt.Net_proto.payload)
                in
                charge t p Sys cost (fun () ->
                    fill (L_pkt (pkt.Net_proto.src, pkt.Net_proto.payload))));
          Queue.add pid t.runq;
          schedule_dispatch t
      | None -> Queue.add pkt s.sk_queue)

let attach_nic t nic =
  t.lnic <- Some nic;
  M3v_os.Nic.set_rx_handler nic (fun pkt -> on_nic_rx t pkt)

let spawn t ~name program =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  Hashtbl.replace t.procs pid
    {
      pid;
      pname = name;
      program;
      st = Ready;
      resume = None;
      slice_left = t.timeslice;
      user_ps = 0;
      sys_ps = 0;
      started = false;
    };
  pid

let boot t =
  Hashtbl.iter (fun pid p -> if p.st = Ready then Queue.add pid t.runq) t.procs;
  (* Stable start order. *)
  let pids = List.of_seq (Queue.to_seq t.runq) |> List.sort compare in
  Queue.clear t.runq;
  List.iter (fun pid -> Queue.add pid t.runq) pids;
  schedule_dispatch t

let preload_file t ~path data =
  match Fs_core.create_file t.fs path with
  | Error e -> invalid_arg ("Linux_sim.preload_file: " ^ e)
  | Ok ino ->
      let len = Bytes.length data in
      if len > 0 then begin
        ignore (Fs_core.ensure_write_extent t.fs ino ~off:0);
        ignore (Fs_core.ensure_write_extent t.fs ino ~off:(len - 1))
      end;
      Fs_core.set_size t.fs ino len;
      let segs = Fs_core.segments t.fs ino ~off:0 ~len in
      let pos = ref 0 in
      List.iter
        (fun (region_off, l) ->
          Bytes.blit data !pos t.store region_off l;
          pos := !pos + l)
        segs

let peek_file t ~path =
  match Fs_core.lookup t.fs path with
  | None -> None
  | Some ino ->
      let size = Fs_core.size t.fs ino in
      let out = Bytes.create size in
      let segs = Fs_core.segments t.fs ino ~off:0 ~len:size in
      let pos = ref 0 in
      List.iter
        (fun (region_off, l) ->
          Bytes.blit t.store region_off out !pos l;
          pos := !pos + l)
        segs;
      Some out
