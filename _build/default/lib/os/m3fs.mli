(** The m3fs service: the in-memory, extent-based file system as an
    activity.

    Metadata operations are RPCs over a DTU channel.  Data access follows
    the M3 model (paper, section 6.3): a read or write request grants the
    client {e direct} access to a whole extent — the service derives a
    memory capability over the extent into the client's capability table
    (one controller round trip), the client activates it on a data
    endpoint (another controller round trip) and then moves data with DMA
    through its own (v)DTU, not through the service.  Small reads/writes
    can be served inline for metadata-style traffic.

    Newly allocated blocks are cleared by the service through its own
    memory endpoint, which is why writes are substantially slower than
    reads on both m3fs and the paper's measurements. *)

type handle

(** Direct access to the file-system core (host-side setup of benchmark
    trees, invariant checks in tests). *)
val core : handle -> Fs_core.t

type stats = {
  ops : int;
  extents_granted : int;
  blocks_cleared : int;
  inline_bytes : int;
}

val stats : handle -> stats

val make_handle : ?max_extent_blocks:int -> blocks:int -> unit -> handle

(** Cycles charged per metadata operation (directory walk, fd table). *)
val op_cycles : int

(** The service program.

    [rgate] receives client requests; [mem_ep] is the service's own
    endpoint over the data region; [region_sel] is the capability selector
    of the data region (source of derived extent capabilities). *)
val program :
  handle ->
  rgate:int ref ->
  mem_ep:int ref ->
  region_sel:int ref ->
  unit ->
  M3v_mux.Act_api.env ->
  unit M3v_sim.Proc.t
