open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api

type t = {
  open_ : string -> Fs_proto.open_flags -> (int, string) result Proc.t;
  read : int -> M3v_mux.Act_ops.buf -> int -> int Proc.t;
  write : int -> M3v_mux.Act_ops.buf -> int -> int Proc.t;
  seek : int -> int -> unit Proc.t;
  close : int -> unit Proc.t;
  stat : string -> (Fs_proto.fs_rep, string) result Proc.t;
  readdir : string -> (string list, string) result Proc.t;
  mkdir : string -> (unit, string) result Proc.t;
  unlink : string -> (unit, string) result Proc.t;
}

let chunk = 4096

let read_all t path =
  let* fd = t.open_ path Fs_proto.rdonly in
  match fd with
  | Error e -> Proc.return (Error e)
  | Ok fd ->
      let* buf = A.alloc_buf chunk in
      let acc = Buffer.create chunk in
      let rec loop () =
        let* n = t.read fd buf chunk in
        if n = 0 then
          let* () = t.close fd in
          Proc.return (Ok (Buffer.to_bytes acc))
        else begin
          Buffer.add_subbytes acc buf.M3v_mux.Act_ops.data 0 n;
          loop ()
        end
      in
      loop ()

let write_file t path data =
  let* fd = t.open_ path Fs_proto.wronly in
  match fd with
  | Error e -> Proc.return (Error e)
  | Ok fd ->
      let* buf = A.alloc_buf chunk in
      let len = Bytes.length data in
      let rec loop off =
        if off >= len then
          let* () = t.close fd in
          Proc.return (Ok ())
        else begin
          let n = min chunk (len - off) in
          Bytes.blit data off buf.M3v_mux.Act_ops.data 0 n;
          let* written = t.write fd buf n in
          if written = 0 then Proc.return (Error "short write")
          else loop (off + written)
        end
      in
      loop 0
