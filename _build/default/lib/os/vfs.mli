(** A POSIX-flavoured file interface as a record of [Proc] operations.

    This is the portability seam of the reproduction: applications (the
    LSM key-value store, the traceplayer, the voice pipeline) are written
    against [Vfs.t] and run unchanged on m3fs (through {!Fs_client}) and on
    the Linux model's tmpfs — mirroring how the paper runs the same POSIX
    programs on M3v (musl port) and Linux. *)

type t = {
  open_ : string -> Fs_proto.open_flags -> (int, string) result M3v_sim.Proc.t;
  read : int -> M3v_mux.Act_ops.buf -> int -> int M3v_sim.Proc.t;
      (** [read fd buf len] at the fd's position; returns bytes read (0 at
          EOF) *)
  write : int -> M3v_mux.Act_ops.buf -> int -> int M3v_sim.Proc.t;
  seek : int -> int -> unit M3v_sim.Proc.t;  (** absolute positioning *)
  close : int -> unit M3v_sim.Proc.t;
  stat : string -> (Fs_proto.fs_rep, string) result M3v_sim.Proc.t;
      (** returns the raw [R_stat] payload on success *)
  readdir : string -> (string list, string) result M3v_sim.Proc.t;
  mkdir : string -> (unit, string) result M3v_sim.Proc.t;
  unlink : string -> (unit, string) result M3v_sim.Proc.t;
}

(** Read/write an entire file through the interface (page-sized chunks). *)
val read_all : t -> string -> (bytes, string) result M3v_sim.Proc.t

val write_file : t -> string -> bytes -> (unit, string) result M3v_sim.Proc.t
