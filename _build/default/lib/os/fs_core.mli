(** m3fs core: the extent-based file-system structures.

    Pure logic, no simulation: inodes, directories, a block allocator that
    prefers contiguous runs, and extents capped at [max_extent_blocks]
    blocks (the paper's evaluation sets this to 64, section 6.3).  The
    service wraps this with the RPC protocol and charges DMA costs; file
    content itself lives in the service's DRAM region, addressed by block
    number. *)

type t

val block_size : int

(** Paper setting: extents are limited to 64 blocks. *)
val default_max_extent_blocks : int

val create : ?max_extent_blocks:int -> blocks:int -> unit -> t

val max_extent_blocks : t -> int
val total_blocks : t -> int
val free_blocks : t -> int

type ino = int

type stat = { st_ino : ino; st_size : int; st_is_dir : bool; st_blocks : int }

(** An extent: a contiguous run of blocks. *)
type extent = { e_start : int; e_blocks : int }

val root : ino

(** Path resolution ("/a/b/c", leading slash optional). *)
val lookup : t -> string -> ino option

val mkdir : t -> string -> (ino, string) result
val create_file : t -> string -> (ino, string) result

(** Remove a file (frees its blocks) or an empty directory. *)
val unlink : t -> string -> (unit, string) result

val readdir : t -> string -> (string list, string) result
val stat : t -> string -> (stat, string) result
val fstat : t -> ino -> stat
val size : t -> ino -> int
val set_size : t -> ino -> int -> unit
val truncate : t -> ino -> unit

(** [read_extent t ino ~off] is the extent window containing byte [off]:
    (byte offset of the window in the data region, window length in bytes,
    file offset of the window start), or [None] at/after EOF. *)
val read_extent : t -> ino -> off:int -> (int * int * int) option

(** [ensure_write_extent t ino ~off] guarantees an extent covering byte
    [off], allocating (and returning, for clearing) fresh blocks if
    needed.  Streaming writes allocate eagerly, up to a full
    [max_extent_blocks] run at a time (the point of the extent design).
    Returns the window like {!read_extent} plus the newly allocated
    extents. *)
val ensure_write_extent :
  t -> ino -> off:int -> (int * int * int) * extent list

(** [preallocate t ino ~blocks] grows the file to at least [blocks] blocks
    without over-allocating (host-side setup of small files). *)
val preallocate : t -> ino -> blocks:int -> unit

(** Byte segments (data-region offset, length) covering [off, off+len)
    of the file, clipped to the file size.  For inline reads/writes. *)
val segments : t -> ino -> off:int -> len:int -> (int * int) list

val extent_count : t -> ino -> int
val is_dir : t -> ino -> bool

(** Invariants checked by property tests: no block is referenced twice, all
    referenced blocks are marked allocated, extent sizes respect the cap. *)
val check_invariants : t -> (unit, string) result
