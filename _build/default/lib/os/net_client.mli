(** Client side of the net service: POSIX-like UDP sockets (the socket
    half of the musl-like shim). *)

type t

val create : sgate:int -> reply_ep:int -> t

val socket : t -> int M3v_sim.Proc.t
val bind : t -> sock:int -> port:int -> unit M3v_sim.Proc.t
val sendto : t -> sock:int -> dst:Net_proto.addr -> bytes -> unit M3v_sim.Proc.t

(** Blocks until a packet arrives for the socket. *)
val recvfrom : t -> sock:int -> (Net_proto.addr * bytes) M3v_sim.Proc.t

val close : t -> sock:int -> unit M3v_sim.Proc.t

(** The portable UDP interface (also implemented by the Linux model). *)
type udp = {
  u_socket : unit -> int M3v_sim.Proc.t;
  u_bind : int -> int -> unit M3v_sim.Proc.t;
  u_sendto : int -> Net_proto.addr -> bytes -> unit M3v_sim.Proc.t;
  u_recvfrom : int -> (Net_proto.addr * bytes) M3v_sim.Proc.t;
  u_close : int -> unit M3v_sim.Proc.t;
}

val to_udp : t -> udp
