(** The pager service (paper, section 4.3).

    The pager is an ordinary activity responsible for the address-space
    layout of the activities under its control.  TileMux forwards page
    faults to it; the pager picks a frame and asks the controller (with a
    [Map_for] syscall) to install the mapping, which the controller
    forwards to the responsible TileMux instance.  This implementation
    provides demand-zero paging from a physical pool the pager allocates at
    startup. *)

type stats = { faults_served : int; pages_allocated : int }

(** Shared handle for inspecting the pager from the harness. *)
type handle

val make_handle : unit -> handle
val stats : handle -> stats

(** The pager's program.  [rgate] is the receive endpoint (on the pager's
    tile) where TileMux fault messages arrive; [pool_pages] bounds the
    physical pool (default 4096 pages = 16 MiB). *)
val program :
  handle ->
  rgate:int ->
  ?pool_pages:int ->
  unit ->
  M3v_mux.Act_api.env ->
  unit M3v_sim.Proc.t

(** Cycles the pager spends on fault policy per request (exported for
    tests and the cost documentation). *)
val fault_policy_cycles : int
