open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
open Net_proto

type t = { sgate : int; reply_ep : int }

let create ~sgate ~reply_ep = { sgate; reply_ep }

let rpc t req =
  let* msg =
    A.call ~sgate:t.sgate ~reply_ep:t.reply_ep ~size:(req_size req) (Net req)
  in
  match msg.Msg.data with
  | Net_rep rep -> Proc.return rep
  | _ -> failwith "Net_client: malformed reply"

let socket t =
  let* rep = rpc t Socket in
  match rep with
  | N_sock id -> Proc.return id
  | _ -> failwith "Net_client: bad socket reply"

let bind t ~sock ~port =
  let* rep = rpc t (Bind { sock; port }) in
  match rep with
  | N_ok -> Proc.return ()
  | N_err e -> failwith ("Net_client: bind: " ^ e)
  | _ -> failwith "Net_client: bad bind reply"

let sendto t ~sock ~dst data =
  let* rep = rpc t (Sendto { sock; dst; data }) in
  match rep with
  | N_ok -> Proc.return ()
  | N_err e -> failwith ("Net_client: sendto: " ^ e)
  | _ -> failwith "Net_client: bad sendto reply"

let recvfrom t ~sock =
  let* rep = rpc t (Recvfrom { sock }) in
  match rep with
  | N_pkt { src; data } -> Proc.return (src, data)
  | N_err e -> failwith ("Net_client: recvfrom: " ^ e)
  | _ -> failwith "Net_client: bad recvfrom reply"

let close t ~sock =
  let* rep = rpc t (Close_sock { sock }) in
  match rep with
  | N_ok -> Proc.return ()
  | _ -> failwith "Net_client: bad close reply"

type udp = {
  u_socket : unit -> int Proc.t;
  u_bind : int -> int -> unit Proc.t;
  u_sendto : int -> Net_proto.addr -> bytes -> unit Proc.t;
  u_recvfrom : int -> (Net_proto.addr * bytes) Proc.t;
  u_close : int -> unit Proc.t;
}

let to_udp t =
  {
    u_socket = (fun () -> socket t);
    u_bind = (fun sock port -> bind t ~sock ~port);
    u_sendto = (fun sock dst data -> sendto t ~sock ~dst data);
    u_recvfrom = (fun sock -> recvfrom t ~sock);
    u_close = (fun sock -> close t ~sock);
  }
