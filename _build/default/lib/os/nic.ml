module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Rng = M3v_sim.Rng
module Dtu = M3v_dtu.Dtu
module Msg = M3v_dtu.Msg

type host_behavior = Echo of { turnaround : Time.t } | Sink

type stats = { tx : int; rx : int; tx_bytes : int; rx_bytes : int; dropped : int }

type t = {
  engine : Engine.t;
  dtu : Dtu.t option;
  wire_latency : Time.t;
  ps_per_byte : int;
  drop_probability : float;
  rng : Rng.t;
  host : host_behavior;
  mutable rx_gate : int;
  mutable rx_handler : (Net_proto.packet -> unit) option;
  mutable stats : stats;
}

let create ~engine ?dtu ?(wire_latency = Time.us 6) ?(ps_per_byte = 8_000)
    ?(drop_probability = 0.0) ?rng ~host () =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0xE7 in
  {
    engine;
    dtu;
    wire_latency;
    ps_per_byte;
    drop_probability;
    rng;
    host;
    rx_gate = -1;
    rx_handler = None;
    stats = { tx = 0; rx = 0; tx_bytes = 0; rx_bytes = 0; dropped = 0 };
  }

let set_rx_gate t ep = t.rx_gate <- ep
let set_rx_handler t f = t.rx_handler <- Some f
let stats t = t.stats

let wire_delay t pkt =
  Time.add t.wire_latency (Net_proto.wire_size pkt * t.ps_per_byte)

let dropped t =
  t.drop_probability > 0.0 && Rng.float t.rng < t.drop_probability

(* A frame arrives from the wire: the NIC DMAs it to memory and raises an
   interrupt; we model both as a message into the driver's receive gate. *)
let deliver_rx t pkt =
  if (t.rx_gate < 0 && t.rx_handler = None) || dropped t then
    t.stats <- { t.stats with dropped = t.stats.dropped + 1 }
  else begin
    t.stats <-
      {
        t.stats with
        rx = t.stats.rx + 1;
        rx_bytes = t.stats.rx_bytes + Net_proto.wire_size pkt;
      };
    (* NIC DMA into the receive ring takes a moment. *)
    Engine.after t.engine ~delay:(Time.us 2) (fun () ->
        match (t.rx_handler, t.dtu) with
        | Some handler, _ -> handler pkt
        | None, Some dtu -> (
            let msg =
              Msg.make ~src_tile:(Dtu.tile dtu)
                ~src_act:M3v_dtu.Dtu_types.invalid_act
                ~size:(Bytes.length pkt.Net_proto.payload + 16)
                (Net_proto.Nic_rx pkt)
            in
            match Dtu.ext_inject dtu ~ep:t.rx_gate msg with
            | Ok () -> ()
            | Error _ -> t.stats <- { t.stats with dropped = t.stats.dropped + 1 })
        | None, None -> t.stats <- { t.stats with dropped = t.stats.dropped + 1 })
  end

let host_receive t (pkt : Net_proto.packet) =
  match t.host with
  | Sink -> ()
  | Echo { turnaround } ->
      let reply =
        { Net_proto.src = pkt.Net_proto.dst; dst = pkt.Net_proto.src;
          payload = pkt.Net_proto.payload }
      in
      Engine.after t.engine ~delay:turnaround (fun () ->
          Engine.after t.engine ~delay:(wire_delay t reply) (fun () ->
              deliver_rx t reply))

let transmit t pkt =
  t.stats <-
    {
      t.stats with
      tx = t.stats.tx + 1;
      tx_bytes = t.stats.tx_bytes + Net_proto.wire_size pkt;
    };
  if dropped t then t.stats <- { t.stats with dropped = t.stats.dropped + 1 }
  else
    Engine.after t.engine ~delay:(wire_delay t pkt) (fun () -> host_receive t pkt)

let host_send t pkt =
  Engine.after t.engine ~delay:(wire_delay t pkt) (fun () -> deliver_rx t pkt)
