let block_size = 4096
let default_max_extent_blocks = 64

type ino = int
type extent = { e_start : int; e_blocks : int }

type node = {
  n_ino : ino;
  mutable n_size : int;
  n_kind : kind;
}

and kind = File of file | Dir of (string, ino) Hashtbl.t
and file = { mutable extents : extent list (* in file order, reversed *) }

type stat = { st_ino : ino; st_size : int; st_is_dir : bool; st_blocks : int }

type t = {
  max_ext : int;
  blocks : int;
  allocated : Bytes.t;  (* one byte per block: crude but fast bitmap *)
  mutable next_block : int;  (* rotating first-fit cursor *)
  mutable free : int;
  nodes : (ino, node) Hashtbl.t;
  mutable next_ino : ino;
}

let root = 0

let create ?(max_extent_blocks = default_max_extent_blocks) ~blocks () =
  if blocks <= 0 then invalid_arg "Fs_core.create: blocks must be positive";
  if max_extent_blocks <= 0 then invalid_arg "Fs_core.create: bad extent cap";
  let t =
    {
      max_ext = max_extent_blocks;
      blocks;
      allocated = Bytes.make blocks '\000';
      next_block = 0;
      free = blocks;
      nodes = Hashtbl.create 64;
      next_ino = 1;
    }
  in
  Hashtbl.replace t.nodes root
    { n_ino = root; n_size = 0; n_kind = Dir (Hashtbl.create 16) };
  t

let max_extent_blocks t = t.max_ext
let total_blocks t = t.blocks
let free_blocks t = t.free

let node t ino =
  match Hashtbl.find_opt t.nodes ino with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Fs_core: unknown inode %d" ino)

let is_dir t ino = match (node t ino).n_kind with Dir _ -> true | File _ -> false

(* --- block allocator: first fit with a rotating cursor, growing runs so
   that sequential writes produce long (capped) extents --- *)

let block_free t b = Bytes.get t.allocated b = '\000'

let alloc_run t ~want =
  if t.free = 0 then None
  else begin
    let want = min want t.max_ext in
    (* Find the first free block starting from the cursor, wrapping. *)
    let rec find_start i tried =
      if tried >= t.blocks then None
      else
        let b = (t.next_block + i) mod t.blocks in
        if block_free t b then Some b else find_start (i + 1) (tried + 1)
    in
    match find_start 0 0 with
    | None -> None
    | Some start ->
        let len = ref 0 in
        while
          !len < want
          && start + !len < t.blocks
          && block_free t (start + !len)
        do
          incr len
        done;
        for i = start to start + !len - 1 do
          Bytes.set t.allocated i '\001'
        done;
        t.free <- t.free - !len;
        t.next_block <- (start + !len) mod t.blocks;
        Some { e_start = start; e_blocks = !len }
  end

let free_extent t e =
  for i = e.e_start to e.e_start + e.e_blocks - 1 do
    if not (block_free t i) then begin
      Bytes.set t.allocated i '\000';
      t.free <- t.free + 1
    end
  done

(* --- path handling --- *)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let rec walk t ino = function
  | [] -> Some ino
  | name :: rest -> (
      match (node t ino).n_kind with
      | Dir entries -> (
          match Hashtbl.find_opt entries name with
          | Some child -> walk t child rest
          | None -> None)
      | File _ -> None)

let lookup t path = walk t root (split_path path)

let parent_and_name t path =
  match List.rev (split_path path) with
  | [] -> Error "cannot address the root this way"
  | name :: rev_dirs -> (
      match walk t root (List.rev rev_dirs) with
      | Some dir_ino -> (
          match (node t dir_ino).n_kind with
          | Dir entries -> Ok (entries, name)
          | File _ -> Error "not a directory")
      | None -> Error "no such directory")

let new_node t kind =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let n = { n_ino = ino; n_size = 0; n_kind = kind } in
  Hashtbl.replace t.nodes ino n;
  ino

let mkdir t path =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (entries, name) ->
      if Hashtbl.mem entries name then Error "exists"
      else begin
        let ino = new_node t (Dir (Hashtbl.create 8)) in
        Hashtbl.replace entries name ino;
        Ok ino
      end

let create_file t path =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (entries, name) -> (
      match Hashtbl.find_opt entries name with
      | Some ino when not (is_dir t ino) -> Ok ino (* open existing *)
      | Some _ -> Error "is a directory"
      | None ->
          let ino = new_node t (File { extents = [] }) in
          Hashtbl.replace entries name ino;
          Ok ino)

let file_extents n =
  match n.n_kind with
  | File f -> f
  | Dir _ -> invalid_arg "Fs_core: not a file"

let truncate t ino =
  let n = node t ino in
  let f = file_extents n in
  List.iter (free_extent t) f.extents;
  f.extents <- [];
  n.n_size <- 0

let unlink t path =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (entries, name) -> (
      match Hashtbl.find_opt entries name with
      | None -> Error "no such entry"
      | Some ino -> (
          match (node t ino).n_kind with
          | File _ ->
              truncate t ino;
              Hashtbl.remove entries name;
              Hashtbl.remove t.nodes ino;
              Ok ()
          | Dir d ->
              if Hashtbl.length d > 0 then Error "directory not empty"
              else begin
                Hashtbl.remove entries name;
                Hashtbl.remove t.nodes ino;
                Ok ()
              end))

let readdir t path =
  match lookup t path with
  | None -> Error "no such directory"
  | Some ino -> (
      match (node t ino).n_kind with
      | Dir entries ->
          Ok (Hashtbl.fold (fun k _ acc -> k :: acc) entries [] |> List.sort compare)
      | File _ -> Error "not a directory")

let node_blocks n =
  match n.n_kind with
  | Dir _ -> 0
  | File f -> List.fold_left (fun acc e -> acc + e.e_blocks) 0 f.extents

let fstat t ino =
  let n = node t ino in
  {
    st_ino = ino;
    st_size = n.n_size;
    st_is_dir = (match n.n_kind with Dir _ -> true | File _ -> false);
    st_blocks = node_blocks n;
  }

let stat t path =
  match lookup t path with
  | None -> Error "no such entry"
  | Some ino -> Ok (fstat t ino)

let size t ino = (node t ino).n_size
let set_size t ino sz = (node t ino).n_size <- max (node t ino).n_size sz

(* Extents are stored reversed (most recent first); walk in file order. *)
let extents_in_order f = List.rev f.extents

let extent_count t ino = List.length (file_extents (node t ino)).extents

(* Find the extent containing file byte [off]: returns
   (region byte offset of window start, window byte length, file offset of
   window start). *)
let find_extent t ino ~off =
  let n = node t ino in
  let f = file_extents n in
  let rec scan file_off = function
    | [] -> None
    | e :: rest ->
        let ext_bytes = e.e_blocks * block_size in
        if off < file_off + ext_bytes then
          Some (e.e_start * block_size, ext_bytes, file_off)
        else scan (file_off + ext_bytes) rest
  in
  scan 0 (extents_in_order f)

let read_extent t ino ~off =
  let n = node t ino in
  if off >= n.n_size then None
  else
    match find_extent t ino ~off with
    | None -> None
    | Some (region_off, win_len, file_off) ->
        (* Clip the window to the file size. *)
        let len = min win_len (n.n_size - file_off) in
        Some (region_off, len, file_off)

let ensure_write_extent t ino ~off =
  let n = node t ino in
  let f = file_extents n in
  match find_extent t ino ~off with
  | Some win -> (win, [])
  | None ->
      (* Allocate fresh extents until [off] is covered. *)
      let allocated = ref [] in
      let rec extend () =
        match find_extent t ino ~off with
        | Some win -> (win, List.rev !allocated)
        | None -> (
            match alloc_run t ~want:t.max_ext with
            | None -> failwith "Fs_core: out of blocks"
            | Some e ->
                f.extents <- e :: f.extents;
                allocated := e :: !allocated;
                extend ())
      in
      extend ()

let preallocate t ino ~blocks =
  let n = node t ino in
  let f = file_extents n in
  let have () = List.fold_left (fun acc e -> acc + e.e_blocks) 0 f.extents in
  let rec grow () =
    let missing = blocks - have () in
    if missing > 0 then
      match alloc_run t ~want:missing with
      | None -> failwith "Fs_core: out of blocks"
      | Some e ->
          f.extents <- e :: f.extents;
          grow ()
  in
  grow ()

let segments t ino ~off ~len =
  let n = node t ino in
  let len = max 0 (min len (n.n_size - off)) in
  let rec collect off len acc =
    if len <= 0 then List.rev acc
    else
      match find_extent t ino ~off with
      | None -> List.rev acc
      | Some (region_off, win_len, file_off) ->
          let in_win = off - file_off in
          let take = min len (win_len - in_win) in
          collect (off + take) (len - take) ((region_off + in_win, take) :: acc)
  in
  collect off len []

let check_invariants t =
  let seen = Hashtbl.create 256 in
  let error = ref None in
  Hashtbl.iter
    (fun ino n ->
      match n.n_kind with
      | Dir _ -> ()
      | File f ->
          List.iter
            (fun e ->
              if e.e_blocks <= 0 || e.e_blocks > t.max_ext then
                error := Some (Printf.sprintf "inode %d: bad extent size %d" ino e.e_blocks);
              for b = e.e_start to e.e_start + e.e_blocks - 1 do
                if b < 0 || b >= t.blocks then
                  error := Some (Printf.sprintf "inode %d: block %d out of range" ino b)
                else begin
                  if Hashtbl.mem seen b then
                    error := Some (Printf.sprintf "block %d referenced twice" b);
                  Hashtbl.replace seen b ();
                  if block_free t b then
                    error := Some (Printf.sprintf "block %d in use but marked free" b)
                end
              done)
            f.extents)
    t.nodes;
  (* Free count must be consistent with the bitmap. *)
  let marked = ref 0 in
  for b = 0 to t.blocks - 1 do
    if not (block_free t b) then incr marked
  done;
  if t.blocks - !marked <> t.free then
    error := Some "free counter out of sync with bitmap";
  match !error with Some e -> Error e | None -> Ok ()
