(** Autonomous accelerators (paper sections 2.2 and 8; M3x's Figure 2).

    An accelerator tile carries fixed-function logic behind a plain DTU:
    once the controller has wired its receive endpoint and a send endpoint
    to the next pipeline stage, the accelerator runs {e autonomously} —
    it consumes messages, transforms them at its fixed throughput, and
    forwards the results without any CPU involvement.  M3v inherits this
    from M3x but does not multiplex accelerator tiles (their DTUs are not
    virtualized); each accelerator serves one activity's context. *)

type t

(** [attach ~engine ~dtu ~rgate ~out_ep ~ns_per_byte ~transform ()] wires
    fixed-function logic to an accelerator tile's DTU.  Messages arriving
    on [rgate] are processed for [ns_per_byte] per payload byte, then
    [transform payload] is sent through [out_ep].  A message whose data is
    not [Data] is forwarded untouched (end-of-stream markers). *)
val attach :
  engine:M3v_sim.Engine.t ->
  dtu:M3v_dtu.Dtu.t ->
  rgate:int ->
  out_ep:int ->
  ns_per_byte:int ->
  transform:(bytes -> bytes) ->
  unit ->
  t

type M3v_dtu.Msg.data += Data of bytes | End_of_stream

val processed : t -> int
val bytes_in : t -> int
val bytes_out : t -> int
