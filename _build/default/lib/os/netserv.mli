(** The net service (paper, section 4.4).

    A smoltcp-like UDP/IP stack plus the AXI-Ethernet driver, fused into a
    single service activity.  Because the NIC hangs off one specific core,
    the service is always placed on that tile.  Clients get POSIX-like
    sockets over a DTU channel; the service parks [Recvfrom] requests until
    a matching frame arrives from the NIC (interrupt-driven reception). *)

type handle

type stats = { sent : int; received : int; parked_max : int }

val make_handle : unit -> handle
val stats : handle -> stats

(** Per-packet software costs (calibration constants, in core cycles). *)
val stack_tx_cycles : int

val stack_rx_cycles : int
val driver_cycles : int

(** The service program.  [rgate] receives client requests, [nic_rgate]
    receives frames from the NIC. *)
val program :
  handle ->
  rgate:int ref ->
  nic_rgate:int ref ->
  nic:Nic.t option ref ->
  unit ->
  M3v_mux.Act_api.env ->
  unit M3v_sim.Proc.t
