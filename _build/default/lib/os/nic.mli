(** The on-chip NIC and the external peer machine.

    The paper's platform attaches an AXI Ethernet NIC to one processing
    tile and connects it by a direct cable to an AMD Ryzen machine
    (sections 4.1 and A.3.2).  We model the NIC (DMA + interrupt-driven
    reception), the gigabit wire (serialization + latency), and the remote
    host, which can echo packets after a turnaround delay (UDP latency
    benchmark), silently consume them (voice assistant, cloud service), or
    drop them with a given probability (failure injection). *)

type host_behavior =
  | Echo of { turnaround : M3v_sim.Time.t }
      (** remote peer echoes every packet back after [turnaround] *)
  | Sink  (** remote peer consumes packets *)

type t

(** [create ~engine ~host ()] — [dtu] is the DTU of the tile the NIC is
    attached to (required for gate-based delivery; the Linux model uses
    {!set_rx_handler} instead); [ps_per_byte] defaults to 1 Gb/s
    (8000 ps/byte). *)
val create :
  engine:M3v_sim.Engine.t ->
  ?dtu:M3v_dtu.Dtu.t ->
  ?wire_latency:M3v_sim.Time.t ->
  ?ps_per_byte:int ->
  ?drop_probability:float ->
  ?rng:M3v_sim.Rng.t ->
  host:host_behavior ->
  unit ->
  t

(** Receive endpoint (on the NIC's tile) where received frames are
    announced to the driver. *)
val set_rx_gate : t -> int -> unit

(** Alternative delivery for the Linux model: received frames are handed
    to the in-kernel driver directly instead of a DTU gate. *)
val set_rx_handler : t -> (Net_proto.packet -> unit) -> unit

(** Transmit a frame: DMA from the driver already happened; this charges
    wire serialization/latency and hands the packet to the remote host. *)
val transmit : t -> Net_proto.packet -> unit

(** Make the remote host send an unsolicited packet (request generators). *)
val host_send : t -> Net_proto.packet -> unit

type stats = { tx : int; rx : int; tx_bytes : int; rx_bytes : int; dropped : int }

val stats : t -> stats
