
open M3v_sim.Proc.Syntax
module A = M3v_mux.Act_api
module Runtime = M3v_mux.Runtime
module Proto = M3v_kernel.Protocol

type stats = { faults_served : int; pages_allocated : int }

type handle = { mutable h_faults : int; mutable h_pages : int }

let make_handle () = { h_faults = 0; h_pages = 0 }
let stats h = { faults_served = h.h_faults; pages_allocated = h.h_pages }
let fault_policy_cycles = 260

let program handle ~rgate ?(pool_pages = 4096) () (env : A.env) =
  (* Obtain the physical pool: one Alloc_mem syscall at startup.  The
     returned capability is the root the pager could derive per-activity
     frames from; frames are handed out bump-style. *)
  let* rep =
    A.syscall_exn env
      (Proto.Alloc_mem
         { size = pool_pages * M3v_dtu.Dtu_types.page_size; perm = M3v_dtu.Dtu_types.RW })
  in
  let _pool_sel = match rep with Proto.Ok_sel s -> s | _ -> -1 in
  let next_page = ref 0 in
  let rec serve () =
    let* _ep, msg = A.recv ~eps:[ rgate ] in
    match msg.M3v_dtu.Msg.data with
    | Runtime.Pf_fault { pf_act; pf_vpage; pf_write = _ } ->
        if !next_page >= pool_pages then
          failwith "Pager: physical pool exhausted";
        let ppage = !next_page in
        incr next_page;
        handle.h_pages <- handle.h_pages + 1;
        (* Fault policy: demand-zero allocation. *)
        let* () = A.compute fault_policy_cycles in
        let* _ =
          A.syscall_exn env
            (Proto.Map_for
               {
                 target = pf_act;
                 vpage = pf_vpage;
                 ppage;
                 perm = M3v_dtu.Dtu_types.RW;
               })
        in
        handle.h_faults <- handle.h_faults + 1;
        let* () =
          A.reply ~recv_ep:rgate ~msg ~size:8 M3v_dtu.Msg.Empty
        in
        serve ()
    | _ ->
        (* Unknown request: acknowledge and continue. *)
        let* () = A.ack ~ep:rgate msg in
        serve ()
  in
  serve ()
