lib/os/vfs.mli: Fs_proto M3v_mux M3v_sim
