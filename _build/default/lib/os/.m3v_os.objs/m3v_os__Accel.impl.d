lib/os/accel.ml: Bytes M3v_dtu M3v_sim
