lib/os/fs_core.mli:
