lib/os/vfs.ml: Buffer Bytes Fs_proto M3v_mux M3v_sim
