lib/os/fs_proto.ml: Bytes List M3v_dtu String
