lib/os/fs_proto.mli: M3v_dtu
