lib/os/net_client.mli: M3v_sim Net_proto
