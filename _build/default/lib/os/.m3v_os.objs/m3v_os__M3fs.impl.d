lib/os/m3fs.ml: Bytes Fs_core Fs_proto Hashtbl List M3v_dtu M3v_kernel M3v_mux M3v_sim
