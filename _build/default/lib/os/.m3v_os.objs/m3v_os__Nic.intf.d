lib/os/nic.mli: M3v_dtu M3v_sim Net_proto
