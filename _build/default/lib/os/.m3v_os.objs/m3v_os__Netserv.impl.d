lib/os/netserv.ml: Bytes Hashtbl M3v_dtu M3v_mux M3v_sim Net_proto Nic Queue
