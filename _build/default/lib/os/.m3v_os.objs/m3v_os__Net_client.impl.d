lib/os/net_client.ml: M3v_dtu M3v_mux M3v_sim Net_proto
