lib/os/pager.ml: M3v_dtu M3v_kernel M3v_mux M3v_sim
