lib/os/net_proto.ml: Bytes M3v_dtu String
