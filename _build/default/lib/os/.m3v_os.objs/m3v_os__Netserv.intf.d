lib/os/netserv.mli: M3v_mux M3v_sim Nic
