lib/os/accel.mli: M3v_dtu M3v_sim
