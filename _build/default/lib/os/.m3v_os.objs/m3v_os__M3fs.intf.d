lib/os/m3fs.mli: Fs_core M3v_mux M3v_sim
