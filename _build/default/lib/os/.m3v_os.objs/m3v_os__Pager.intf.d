lib/os/pager.mli: M3v_mux M3v_sim
