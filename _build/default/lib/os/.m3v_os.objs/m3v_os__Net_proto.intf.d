lib/os/net_proto.mli: M3v_dtu
