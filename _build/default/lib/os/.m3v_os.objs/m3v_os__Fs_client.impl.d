lib/os/fs_client.ml: Fs_proto Hashtbl M3v_dtu M3v_kernel M3v_mux M3v_sim Option Printf Vfs
