lib/os/nic.ml: Bytes M3v_dtu M3v_sim Net_proto
