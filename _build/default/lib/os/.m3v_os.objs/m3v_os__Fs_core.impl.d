lib/os/fs_core.ml: Bytes Hashtbl List Printf String
