module Controller = M3v_kernel.Controller
module Platform = M3v_tile.Platform
module Dram = M3v_dtu.Dram
module Fs_core = M3v_os.Fs_core
module M3fs = M3v_os.M3fs
module Fs_client = M3v_os.Fs_client

type fs_instance = {
  fs_aid : M3v_dtu.Dtu_types.act_id;
  fs_handle : M3fs.handle;
  connect : M3v_dtu.Dtu_types.act_id -> M3v_mux.Act_api.env -> Fs_client.t;
  fs_mem_tile : int;
  fs_mem_base : int;
}

let make_fs sys ~tile ~blocks ?max_extent_blocks () =
  let ctrl = System.controller sys in
  let handle = M3fs.make_handle ?max_extent_blocks ~blocks () in
  let rgate = ref (-1) and mem_ep = ref (-1) and region_sel = ref (-1) in
  let fs_aid, fs_env =
    System.spawn sys ~tile ~name:"m3fs"
      (M3fs.program handle ~rgate ~mem_ep ~region_sel ())
  in
  ignore fs_env;
  let region_size = blocks * Fs_core.block_size in
  let mem_tile, base = Controller.host_alloc_mem ctrl ~size:region_size in
  let sel =
    Controller.host_new_mgate ctrl ~act:fs_aid ~mem_tile ~base ~size:region_size
      ~perm:M3v_dtu.Dtu_types.RW
  in
  region_sel := sel;
  mem_ep := Controller.host_activate ctrl ~act:fs_aid ~sel ();
  (* The service's request gate: clients connect with their own channels,
     all pointing at this gate. *)
  let rgate_sel = Controller.host_new_rgate ctrl ~act:fs_aid ~slots:32 ~slot_size:768 in
  rgate := Controller.host_activate ctrl ~act:fs_aid ~sel:rgate_sel ();
  let connect client_aid client_env =
    let sgate_sel =
      Controller.host_new_sgate ctrl ~owner:client_aid ~rgate_of:fs_aid
        ~rgate_sel ~label:client_aid ~credits:2 ()
    in
    let sgate = Controller.host_activate ctrl ~act:client_aid ~sel:sgate_sel () in
    let reply_sel = Controller.host_new_rgate ctrl ~act:client_aid ~slots:2 ~slot_size:768 in
    let reply_ep = Controller.host_activate ctrl ~act:client_aid ~sel:reply_sel () in
    let data_ep =
      Controller.host_alloc_ep ctrl ~tile:(Controller.act_tile ctrl client_aid)
        ~act:client_aid
    in
    Fs_client.create ~env:client_env ~sgate ~reply_ep ~data_ep
  in
  { fs_aid; fs_handle = handle; connect; fs_mem_tile = mem_tile; fs_mem_base = base }

let preload_file sys inst ~path data =
  let core = M3fs.core inst.fs_handle in
  let dram = Platform.dram_exn (System.platform sys) inst.fs_mem_tile in
  (match Fs_core.create_file core path with
  | Ok ino ->
      let len = Bytes.length data in
      if len > 0 then begin
        Fs_core.preallocate core ino
          ~blocks:((len + Fs_core.block_size - 1) / Fs_core.block_size);
        Fs_core.set_size core ino len
      end
      else Fs_core.set_size core ino 0;
      let segs = Fs_core.segments core ino ~off:0 ~len:(Bytes.length data) in
      let pos = ref 0 in
      List.iter
        (fun (region_off, l) ->
          Dram.write dram ~off:(inst.fs_mem_base + region_off) ~src:data
            ~src_off:!pos ~len:l;
          pos := !pos + l)
        segs
  | Error e -> invalid_arg ("Services.preload_file: " ^ e))

type net_instance = {
  net_aid : M3v_dtu.Dtu_types.act_id;
  net_handle : M3v_os.Netserv.handle;
  nic : M3v_os.Nic.t;
  net_connect :
    M3v_dtu.Dtu_types.act_id -> M3v_mux.Act_api.env -> M3v_os.Net_client.t;
}

let nic_tile sys =
  let platform = System.platform sys in
  match
    List.find_opt
      (fun tile -> (Platform.tile platform tile).M3v_tile.Tile.has_nic)
      (Platform.processing_tiles platform)
  with
  | Some tile -> tile
  | None -> invalid_arg "Services.make_net: platform has no NIC tile"

let make_net sys ?tile ?drop_probability ~host () =
  let ctrl = System.controller sys in
  let tile = match tile with Some t -> t | None -> nic_tile sys in
  let handle = M3v_os.Netserv.make_handle () in
  let rgate = ref (-1) and nic_rgate = ref (-1) in
  let nic_box = ref None in
  let net_aid, _env =
    System.spawn sys ~tile ~name:"net"
      (M3v_os.Netserv.program handle ~rgate ~nic_rgate ~nic:nic_box ())
  in
  let rgate_sel = Controller.host_new_rgate ctrl ~act:net_aid ~slots:16 ~slot_size:2048 in
  rgate := Controller.host_activate ctrl ~act:net_aid ~sel:rgate_sel ();
  let nic_sel = Controller.host_new_rgate ctrl ~act:net_aid ~slots:32 ~slot_size:2048 in
  nic_rgate := Controller.host_activate ctrl ~act:net_aid ~sel:nic_sel ();
  let nic =
    M3v_os.Nic.create ~engine:(System.engine sys)
      ~dtu:(Platform.dtu (System.platform sys) tile)
      ?drop_probability ~host ()
  in
  M3v_os.Nic.set_rx_gate nic !nic_rgate;
  nic_box := Some nic;
  let net_connect client_aid _client_env =
    let sgate_sel =
      Controller.host_new_sgate ctrl ~owner:client_aid ~rgate_of:net_aid
        ~rgate_sel ~label:client_aid ~credits:2 ()
    in
    let sgate = Controller.host_activate ctrl ~act:client_aid ~sel:sgate_sel () in
    let reply_sel =
      Controller.host_new_rgate ctrl ~act:client_aid ~slots:2 ~slot_size:2048
    in
    let reply_ep = Controller.host_activate ctrl ~act:client_aid ~sel:reply_sel () in
    M3v_os.Net_client.create ~sgate ~reply_ep
  in
  { net_aid; net_handle = handle; nic; net_connect }

let peek_file sys inst ~path =
  let core = M3fs.core inst.fs_handle in
  let dram = Platform.dram_exn (System.platform sys) inst.fs_mem_tile in
  match Fs_core.lookup core path with
  | None -> None
  | Some ino ->
      let size = Fs_core.size core ino in
      let out = Bytes.create size in
      let segs = Fs_core.segments core ino ~off:0 ~len:size in
      let pos = ref 0 in
      List.iter
        (fun (region_off, l) ->
          Dram.read_into dram ~off:(inst.fs_mem_base + region_off) ~dst:out
            ~dst_off:!pos ~len:l;
          pos := !pos + l)
        segs;
      Some out
