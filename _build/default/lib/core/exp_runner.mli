(** Entry points used by the CLI and the benchmark harness: run an
    experiment with paper-default parameters (pass [runs = 0] or
    [rounds <= 0] for the default) and print the table/figure. *)

val fig6 : rounds:int -> unit
val fig7 : runs:int -> unit
val fig8 : runs:int -> unit
val fig9 : runs:int -> unit
val fig10 : runs:int -> unit
val voice : runs:int -> unit
val table1 : unit -> unit
val complexity : unit -> unit

(** Ablation studies for the design decisions (extent cap, TLB size,
    topology, M3x endpoint state). *)
val ablations : unit -> unit

(** Everything, in the paper's evaluation order. *)
val all : unit -> unit
