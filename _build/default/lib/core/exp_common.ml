module Time = M3v_sim.Time
module Stats = M3v_sim.Stats

type bar = { label : string; mean : float; stddev : float }

let bar_of_times label times ~to_unit =
  let xs = List.map to_unit times in
  let s = Stats.summarize xs in
  { label; mean = s.Stats.mean; stddev = s.Stats.stddev }

let default_out = Format.std_formatter

let print_bars ?(out = default_out) ~title ~unit_label bars =
  Format.fprintf out "@.== %s ==@." title;
  let widest =
    List.fold_left (fun acc b -> max acc (String.length b.label)) 0 bars
  in
  let max_mean = List.fold_left (fun acc b -> Float.max acc b.mean) 1e-9 bars in
  List.iter
    (fun b ->
      let hashes = int_of_float (40.0 *. b.mean /. max_mean) in
      Format.fprintf out "  %-*s %10.2f +- %-8.2f %s |%s@." widest b.label b.mean
        b.stddev unit_label
        (String.make (max 0 hashes) '#'))
    bars

let print_series ?(out = default_out) ~title ~x_label ~series_labels rows =
  Format.fprintf out "@.== %s ==@." title;
  Format.fprintf out "  %-10s" x_label;
  List.iter (fun l -> Format.fprintf out " %14s" l) series_labels;
  Format.fprintf out "@.";
  List.iter
    (fun (x, values) ->
      Format.fprintf out "  %-10.0f" x;
      List.iter
        (fun v ->
          match v with
          | Some v -> Format.fprintf out " %14.1f" v
          | None -> Format.fprintf out " %14s" "-")
        values;
      Format.fprintf out "@.")
    rows

let print_kv ?(out = default_out) ~title pairs =
  Format.fprintf out "@.== %s ==@." title;
  let widest =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter (fun (k, v) -> Format.fprintf out "  %-*s  %s@." widest k v) pairs

(* FPGA spec tile map: 0 = controller, 1..7 = BOOM (1 has the NIC),
   8 = Rocket, 9/10 = memory. *)
let boom_tile_a = 1
let boom_tile_b = 2
let boom_tile_c = 3
let boom_tile_d = 4
let rocket_tile = 8
