(** Convenience constructors for the OS services on top of {!System}. *)

(** A running m3fs instance. *)
type fs_instance = {
  fs_aid : M3v_dtu.Dtu_types.act_id;
  fs_handle : M3v_os.M3fs.handle;
  connect : M3v_dtu.Dtu_types.act_id -> M3v_mux.Act_api.env -> M3v_os.Fs_client.t;
      (** create a client handle for a spawned activity (host-level
          channel + data-endpoint setup; call before [System.boot]) *)
  fs_mem_tile : int;  (** memory tile holding the data region *)
  fs_mem_base : int;  (** base of the data region within that tile *)
}

(** Spawn an m3fs service on [tile] with a [blocks]-block data region
    allocated from a memory tile. *)
val make_fs :
  System.t ->
  tile:int ->
  blocks:int ->
  ?max_extent_blocks:int ->
  unit ->
  fs_instance

(** Host-side population of a file (uncharged setup): creates the file,
    allocates extents and writes real bytes into the service's DRAM
    region. *)
val preload_file : System.t -> fs_instance -> path:string -> bytes -> unit

(** Host-side read-back of a whole file (for end-to-end data checks). *)
val peek_file : System.t -> fs_instance -> path:string -> bytes option

(** A running net service with its NIC and remote peer. *)
type net_instance = {
  net_aid : M3v_dtu.Dtu_types.act_id;
  net_handle : M3v_os.Netserv.handle;
  nic : M3v_os.Nic.t;
  net_connect :
    M3v_dtu.Dtu_types.act_id -> M3v_mux.Act_api.env -> M3v_os.Net_client.t;
}

(** Spawn the net service on the NIC tile ([tile] defaults to the first
    tile with a NIC) talking to a remote host with the given behaviour. *)
val make_net :
  System.t ->
  ?tile:int ->
  ?drop_probability:float ->
  host:M3v_os.Nic.host_behavior ->
  unit ->
  net_instance
