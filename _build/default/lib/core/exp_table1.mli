(** Table 1 (FPGA area) and section 6.1 (software complexity). *)

type result = {
  rows : (int * string * M3v_area.Area.resources) list;
  vdtu_vs_boom_percent : float;
  vdtu_vs_rocket_percent : float;
  virtualization_overhead_percent : float;
}

val run : unit -> result
val print : result -> unit

type complexity = {
  components : (string * int option) list;  (** ours: (label, SLOC) *)
  paper : (string * int) list;
}

val run_complexity : unit -> complexity
val print_complexity : complexity -> unit
