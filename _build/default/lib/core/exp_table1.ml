module Area = M3v_area.Area
module Sloc = M3v_area.Sloc

type result = {
  rows : (int * string * Area.resources) list;
  vdtu_vs_boom_percent : float;
  vdtu_vs_rocket_percent : float;
  virtualization_overhead_percent : float;
}

let run () =
  {
    rows = Area.table1_rows ();
    vdtu_vs_boom_percent = Area.vdtu_vs_core_percent Area.boom;
    vdtu_vs_rocket_percent = Area.vdtu_vs_core_percent Area.rocket;
    virtualization_overhead_percent = Area.virtualization_overhead_percent ();
  }

let print r =
  let out = Format.std_formatter in
  Format.fprintf out "@.== Table 1: FPGA area consumption ==@.";
  Format.fprintf out "  %-28s %9s %9s %9s@." "" "LUTs [k]" "FFs [k]" "BRAMs";
  List.iter
    (fun (indent, name, res) ->
      let pad = String.make (2 * indent) ' ' in
      Format.fprintf out "  %-28s %9.1f %9.1f %9.1f@." (pad ^ name)
        res.Area.luts_k res.Area.ffs_k res.Area.brams)
    r.rows;
  Exp_common.print_kv ~title:"Table 1: derived claims (paper, section 6.1)"
    [
      ( "vDTU vs BOOM LUTs (paper: 10.6%)",
        Printf.sprintf "%.1f%%" r.vdtu_vs_boom_percent );
      ( "vDTU vs Rocket LUTs (paper: 32.6%)",
        Printf.sprintf "%.1f%%" r.vdtu_vs_rocket_percent );
      ( "virtualization logic overhead (paper: 6%)",
        Printf.sprintf "%.1f%%" r.virtualization_overhead_percent );
    ]

type complexity = {
  components : (string * int option) list;
  paper : (string * int) list;
}

let run_complexity () =
  {
    components =
      List.map (fun (label, dir) -> (label, Sloc.count_dir dir)) Sloc.our_components;
    paper =
      [
        ("controller (Rust)", Sloc.paper_controller_sloc);
        ("controller unsafe", Sloc.paper_controller_unsafe);
        ("TileMux (Rust)", Sloc.paper_tilemux_sloc);
        ("TileMux unsafe", Sloc.paper_tilemux_unsafe);
        ("NOVA microkernel (C++)", Sloc.paper_nova_sloc);
      ];
  }

let print_complexity c =
  Exp_common.print_kv ~title:"Section 6.1: software complexity, paper (SLOC)"
    (List.map (fun (l, v) -> (l, string_of_int v)) c.paper);
  Exp_common.print_kv ~title:"Section 6.1: software complexity, this reproduction (SLOC)"
    (List.map
       (fun (l, v) ->
         ( l,
           match v with
           | Some n -> string_of_int n
           | None -> "(source tree not found)" ))
       c.components)
