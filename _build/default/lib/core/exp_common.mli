(** Shared helpers for the experiment harness. *)

(** One bar of a bar chart: label, mean, standard deviation. *)
type bar = { label : string; mean : float; stddev : float }

val bar_of_times : string -> M3v_sim.Time.t list -> to_unit:(M3v_sim.Time.t -> float) -> bar

(** Render bars with a textual bar chart. *)
val print_bars :
  ?out:Format.formatter -> title:string -> unit_label:string -> bar list -> unit

(** Render an (x, series...) table: one line per x value. *)
val print_series :
  ?out:Format.formatter ->
  title:string ->
  x_label:string ->
  series_labels:string list ->
  (float * float option list) list ->
  unit

val print_kv : ?out:Format.formatter -> title:string -> (string * string) list -> unit

(** Default measurement tiles on the FPGA spec: the first three BOOM user
    tiles (tile 0 is the controller). *)
val boom_tile_a : int

val boom_tile_b : int
val boom_tile_c : int
val boom_tile_d : int

(** The Rocket processing tile of the FPGA spec. *)
val rocket_tile : int
