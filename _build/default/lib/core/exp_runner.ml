let opt v = if v <= 0 then None else Some v

let fig6 ~rounds = Exp_fig6.print (Exp_fig6.run ?rounds:(opt rounds) ())
let fig7 ~runs = Exp_fig7.print (Exp_fig7.run ?runs:(opt runs) ())
let fig8 ~runs = Exp_fig8.print (Exp_fig8.run ?runs:(opt runs) ())
let fig9 ~runs = Exp_fig9.print (Exp_fig9.run ?runs:(opt runs) ())
let fig10 ~runs = Exp_fig10.print (Exp_fig10.run ?runs:(opt runs) ())
let voice ~runs = Exp_voice.print (Exp_voice.run ?runs:(opt runs) ())
let table1 () = Exp_table1.print (Exp_table1.run ())
let complexity () = Exp_table1.print_complexity (Exp_table1.run_complexity ())

let ablations () = List.iter Ablations.print (Ablations.run_all ())

let all () =
  table1 ();
  complexity ();
  fig6 ~rounds:0;
  fig7 ~runs:0;
  fig8 ~runs:0;
  fig9 ~runs:0;
  voice ~runs:0;
  fig10 ~runs:0;
  ablations ()
