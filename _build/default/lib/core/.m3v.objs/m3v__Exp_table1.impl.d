lib/core/exp_table1.ml: Exp_common Format List M3v_area Printf String
