lib/core/exp_common.mli: Format M3v_sim
