lib/core/exp_fig8.ml: Bytes Exp_common M3v_linux M3v_mux M3v_os M3v_sim Option Services System
