lib/core/exp_runner.mli:
