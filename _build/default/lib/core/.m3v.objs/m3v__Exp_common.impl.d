lib/core/exp_common.ml: Float Format List M3v_sim String
