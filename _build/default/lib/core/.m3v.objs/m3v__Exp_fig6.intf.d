lib/core/exp_fig6.mli: Exp_common
