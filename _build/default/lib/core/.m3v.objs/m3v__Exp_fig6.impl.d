lib/core/exp_fig6.ml: Exp_common List M3v_dtu M3v_linux M3v_mux M3v_sim M3v_tile Printf System
