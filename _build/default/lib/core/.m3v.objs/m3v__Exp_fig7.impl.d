lib/core/exp_fig7.ml: Bytes Exp_common List M3v_linux M3v_mux M3v_os M3v_sim Option Services System
