lib/core/exp_fig7.mli: Exp_common
