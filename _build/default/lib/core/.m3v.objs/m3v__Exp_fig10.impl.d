lib/core/exp_fig10.ml: Exp_common Float Format Hashtbl List M3v_apps M3v_linux M3v_mux M3v_os M3v_sim Option Services System
