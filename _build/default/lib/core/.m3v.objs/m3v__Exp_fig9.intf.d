lib/core/exp_fig9.mli: M3v_apps System
