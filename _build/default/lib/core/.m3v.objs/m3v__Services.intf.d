lib/core/services.mli: M3v_dtu M3v_mux M3v_os System
