lib/core/exp_voice.ml: Array Bytes Exp_common Lazy List M3v_apps M3v_dtu M3v_kernel M3v_mux M3v_os M3v_sim Option Printf Services System
