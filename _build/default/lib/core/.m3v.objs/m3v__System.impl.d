lib/core/system.ml: Hashtbl List M3v_dtu M3v_kernel M3v_mux M3v_os M3v_sim M3v_tile Printf
