lib/core/exp_fig10.mli:
