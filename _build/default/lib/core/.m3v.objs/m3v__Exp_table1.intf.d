lib/core/exp_table1.mli: M3v_area
