lib/core/exp_fig9.ml: Exp_common Format List M3v_apps M3v_os M3v_sim M3v_tile Option Printf Services System
