lib/core/exp_voice.mli: Exp_common
