lib/core/services.ml: Bytes List M3v_dtu M3v_kernel M3v_mux M3v_os M3v_tile System
