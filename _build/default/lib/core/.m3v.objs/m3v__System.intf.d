lib/core/system.mli: M3v_dtu M3v_kernel M3v_mux M3v_noc M3v_sim M3v_tile
