lib/core/ablations.ml: Bytes Format List M3v_apps M3v_dtu M3v_kernel M3v_mux M3v_noc M3v_os M3v_sim M3v_tile Option Printf Services System
