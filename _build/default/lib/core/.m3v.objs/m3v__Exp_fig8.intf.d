lib/core/exp_fig8.mli: Exp_common
