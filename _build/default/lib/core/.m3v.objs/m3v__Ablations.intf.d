lib/core/ablations.mli:
