lib/core/exp_runner.ml: Ablations Exp_fig10 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_table1 Exp_voice List
