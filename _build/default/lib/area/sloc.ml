let paper_controller_sloc = 11_500
let paper_controller_unsafe = 900
let paper_tilemux_sloc = 1_700
let paper_tilemux_unsafe = 50
let paper_nova_sloc = 9_000

(* Count non-blank lines outside (possibly nested) OCaml comments. *)
let count_string text =
  let n = String.length text in
  let count = ref 0 in
  let depth = ref 0 in
  let line_has_code = ref false in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      if !line_has_code then incr count;
      line_has_code := false;
      incr i
    end
    else if !i + 1 < n && c = '(' && text.[!i + 1] = '*' then begin
      incr depth;
      i := !i + 2
    end
    else if !i + 1 < n && c = '*' && text.[!i + 1] = ')' && !depth > 0 then begin
      decr depth;
      i := !i + 2
    end
    else begin
      if !depth = 0 && c <> ' ' && c <> '\t' && c <> '\r' then
        line_has_code := true;
      incr i
    end
  done;
  if !line_has_code then incr count;
  !count

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

let rec ocaml_files dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.concat_map (fun entry ->
             let path = Filename.concat dir entry in
             if Sys.is_directory path then ocaml_files path
             else if
               Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
             then [ path ]
             else [])
  | exception Sys_error _ -> []

let count_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Some
      (List.fold_left
         (fun acc path ->
           match read_file path with
           | text -> acc + count_string text
           | exception Sys_error _ -> acc)
         0 (ocaml_files dir))
  else None

let our_components =
  [
    ("controller (lib/kernel)", "lib/kernel");
    ("TileMux (lib/mux)", "lib/mux");
    ("vDTU model (lib/dtu)", "lib/dtu");
    ("OS services (lib/os)", "lib/os");
  ]
