lib/area/sloc.mli:
