lib/area/area.ml: List
