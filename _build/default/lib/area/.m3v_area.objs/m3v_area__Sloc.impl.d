lib/area/sloc.ml: Array Filename List String Sys
