lib/area/area.mli:
