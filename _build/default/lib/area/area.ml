type resources = { luts_k : float; ffs_k : float; brams : float }

let r ~l ~f ~b = { luts_k = l; ffs_k = f; brams = b }
let zero = r ~l:0.0 ~f:0.0 ~b:0.0

let add a b =
  { luts_k = a.luts_k +. b.luts_k; ffs_k = a.ffs_k +. b.ffs_k; brams = a.brams +. b.brams }

let sub a b =
  { luts_k = a.luts_k -. b.luts_k; ffs_k = a.ffs_k -. b.ffs_k; brams = a.brams -. b.brams }

let sum = List.fold_left add zero

type component = {
  name : string;
  own : resources;
  children : component list;
  optional : bool;
}

let leaf ?(optional = false) name res = { name; own = res; children = []; optional }

let rec total c = add c.own (sum (List.map total c.children))

(* A composite whose published total may deviate slightly from the sum of
   its published children (synthesis hierarchies share registers); the
   difference is carried as (possibly negative) glue in [own]. *)
let composite ?(optional = false) name ~published children =
  let child_sum = sum (List.map total children) in
  { name; own = sub published child_sum; children; optional }

(* --- Table 1 (paper, section 6.1) --- *)

let boom = leaf "BOOM" (r ~l:143.8 ~f:71.8 ~b:159.0)
let rocket = leaf "Rocket" (r ~l:46.6 ~f:22.0 ~b:152.0)
let noc_router = leaf "NoC router" (r ~l:3.4 ~f:2.2 ~b:0.0)

let unpriv_if = leaf "Unpriv. IF" (r ~l:6.2 ~f:2.5 ~b:0.5)
let priv_if = leaf ~optional:true "Priv. IF" (r ~l:0.9 ~f:0.3 ~b:0.0)

let cmd_ctrl =
  composite "CMD CTRL" ~published:(r ~l:7.1 ~f:2.8 ~b:0.5) [ unpriv_if; priv_if ]

let noc_ctrl = leaf "NoC CTRL" (r ~l:3.2 ~f:1.5 ~b:0.0)

let control_unit =
  composite "Control Unit" ~published:(r ~l:10.3 ~f:3.3 ~b:0.5)
    [ noc_ctrl; cmd_ctrl ]

let register_file = leaf "Register file" (r ~l:2.0 ~f:1.0 ~b:0.0)
let memory_mapper = leaf ~optional:true "Memory mapper + PMP" (r ~l:0.6 ~f:0.2 ~b:0.0)
let io_fifos = leaf "I/O FIFOs" (r ~l:2.3 ~f:0.3 ~b:0.0)

let vdtu =
  composite "vDTU" ~published:(r ~l:15.2 ~f:5.8 ~b:0.5)
    [ control_unit; register_file; memory_mapper; io_fifos ]

(* Strip the privileged interface: the plain DTU of non-multiplexed
   tiles. *)
let rec strip_optional c =
  { c with children = List.filter_map strip_child c.children }

and strip_child c = if c.optional then None else Some (strip_optional c)

let dtu_without_virtualization =
  { (strip_optional vdtu) with name = "DTU (non-virtualized)" }

let virtualization_overhead_percent () =
  let with_priv = (total vdtu).luts_k in
  let without = with_priv -. (total priv_if).luts_k in
  (with_priv -. without) /. without *. 100.0

let vdtu_vs_core_percent core =
  (total vdtu).luts_k /. (total core).luts_k *. 100.0

let table1_rows () =
  let rec rows indent c acc =
    let acc = (indent, c.name, total c) :: acc in
    List.fold_left (fun acc child -> rows (indent + 1) child acc) acc c.children
  in
  List.rev
    (rows 0 vdtu
       ((0, "NoC router", total noc_router)
       :: (0, "Rocket", total rocket)
       :: (0, "BOOM", total boom)
       :: []))
