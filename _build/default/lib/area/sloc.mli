(** Source-lines-of-code accounting (paper, section 6.1).

    The paper compares software complexity by SLOC: the M3v controller is
    11.5k lines of Rust (900 unsafe), TileMux adds 1.7k (50 unsafe), and
    the NOVA microkernel — comparable to the controller — is about 9k of
    C++.  This module counts the reproduction's own OCaml components the
    same way (non-blank, non-comment lines) so the report can show
    paper-vs-ours side by side. *)

(** Count SLOC of one [.ml]/[.mli] source text. *)
val count_string : string -> int

(** Count SLOC of all OCaml sources under a directory (recursively).
    Returns [None] if the directory does not exist (e.g. when running
    outside the repository). *)
val count_dir : string -> int option

(** The paper's published numbers. *)
val paper_controller_sloc : int

val paper_controller_unsafe : int
val paper_tilemux_sloc : int
val paper_tilemux_unsafe : int
val paper_nova_sloc : int

(** Components of this reproduction: (label, directory). *)
val our_components : (string * string) list
