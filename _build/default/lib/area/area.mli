(** FPGA area accounting (paper, Table 1).

    We cannot synthesize hardware here, so Table 1 is reproduced
    structurally: the vDTU is composed from its sub-components (control
    unit = NoC control + command control; command control = unprivileged +
    privileged interface; plus register file, memory mapper + PMP, and I/O
    FIFOs), each carrying the published LUT/FF/BRAM figures.  The model
    recomputes the compositions and the paper's derived claims: the vDTU
    needs 10.6% / 32.6% of a BOOM / Rocket core's LUTs, and virtualizing
    the DTU (adding the privileged interface) grows the DTU logic by about
    6% (paper, section 6.1). *)

type resources = {
  luts_k : float;  (** logic + LUT-RAM, thousands *)
  ffs_k : float;  (** flip-flops, thousands *)
  brams : float;  (** 36 kbit block RAMs *)
}

val add : resources -> resources -> resources
val sum : resources list -> resources

(** A component with optional sub-components; a composite's resources are
    the sum of its leaves plus any glue logic of its own. *)
type component = {
  name : string;
  own : resources;  (** resources not attributed to children *)
  children : component list;
  optional : bool;
      (** dashed in the paper's Figure 5: omitted on non-virtualized DTUs *)
}

val total : component -> resources

(** The published components. *)
val boom : component

val rocket : component
val noc_router : component
val vdtu : component

(** The vDTU with the privileged interface and registers removed — the
    plain DTU of controller/accelerator tiles. *)
val dtu_without_virtualization : component

(** Percentage growth in LUTs from virtualizing the DTU. *)
val virtualization_overhead_percent : unit -> float

(** vDTU LUTs as a percentage of the given core's. *)
val vdtu_vs_core_percent : component -> float

(** The rows of Table 1, in paper order: (indent level, name, resources). *)
val table1_rows : unit -> (int * string * resources) list
