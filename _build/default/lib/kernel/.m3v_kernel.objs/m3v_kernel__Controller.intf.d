lib/kernel/controller.mli: Cap M3v_dtu M3v_tile
