lib/kernel/cap.mli: Format M3v_dtu
