lib/kernel/controller.ml: Array Cap Hashtbl List M3v_dtu M3v_noc M3v_sim M3v_tile Option Printf Protocol Queue
