lib/kernel/protocol.ml: Format M3v_dtu Printf String
