lib/kernel/cap.ml: Format List M3v_dtu Printf
