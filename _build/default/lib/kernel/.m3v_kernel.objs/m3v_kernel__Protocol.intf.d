lib/kernel/protocol.mli: Format M3v_dtu
