(** System-call traces (paper, section 6.4).

    The paper's scalability benchmark replays Linux system-call traces of
    "find" and "SQLite" against a per-tile file-system instance, so that
    every file-system call forces a context switch between the traceplayer
    and m3fs.  We generate equivalent call sequences: "find" walks 24
    directories of 40 files each; "SQLite" performs 32 inserts and 32
    selects with write-ahead-log-style file traffic.  Compute bursts
    between calls are sized so the overall call density matches the
    regime the paper reports. *)

type op =
  | T_open of { path : string; write : bool }
  | T_close
  | T_stat of string
  | T_readdir of string
  | T_read of int  (** inline read of N bytes at the current offset *)
  | T_write of int  (** inline write of N bytes *)
  | T_seek of int
  | T_compute of int  (** cycles between calls *)

type t = {
  name : string;
  ops : op list;
  setup_dirs : string list;  (** directories to create before the run *)
  setup_files : (string * int) list;  (** files (path, size) to preload *)
}

(** Number of file-system RPCs a single run performs. *)
val rpc_count : t -> int

(** Total compute cycles per run. *)
val compute_cycles : t -> int

val find_trace : ?dirs:int -> ?files_per_dir:int -> ?compute_per_op:int -> unit -> t

val sqlite_trace : ?inserts:int -> ?selects:int -> ?compute_per_op:int -> unit -> t
