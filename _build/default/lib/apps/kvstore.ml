open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api
module Vfs = M3v_os.Vfs
module Fs_proto = M3v_os.Fs_proto

module Smap = Map.Make (String)

type sstable = {
  ss_path : string;
  ss_index : (string * (int * int)) array;  (** key -> (entry offset, entry length), sorted *)
  ss_size : int;
}

type t = {
  vfs : Vfs.t;
  dir : string;
  memtable_limit : int;
  compact_threshold : int;
  mutable memtable : bytes Smap.t;
  mutable mem_bytes : int;
  mutable wal_fd : int;
  mutable wal_pos : int;
  mutable tables : sstable list;  (** newest first *)
  mutable next_table : int;
  mutable n_compactions : int;
  mutable io_buf : M3v_mux.Act_ops.buf option;  (** reused for all file IO *)
}

(* Cycles of CPU work per key comparison / per entry handled. *)
let cmp_cycles = 24
let entry_cycles = 90

(* leveldb-equivalent CPU work per operation on the 80 MHz core: block
   decode, CRC verification, comparator calls, iterator bookkeeping.
   These dominate the YCSB runtimes, as in the paper's measurements. *)
let put_cycles = 220_000
let get_cycles = 180_000
let scan_seek_cycles = 250_000 (* per-table iterator seek *)
let scan_item_cycles = 55_000

let sstable_count t = List.length t.tables
let memtable_entries t = Smap.cardinal t.memtable
let compactions t = t.n_compactions

(* Entry encoding: klen:u16, vlen:u32, key bytes, value bytes. *)
let entry_len ~key ~value = 6 + String.length key + Bytes.length value

let encode_entry buf ~key ~value =
  let klen = String.length key and vlen = Bytes.length value in
  Buffer.add_uint16_le buf klen;
  Buffer.add_int32_le buf (Int32.of_int vlen);
  Buffer.add_string buf key;
  Buffer.add_bytes buf value

let decode_entry data off =
  let klen = Bytes.get_uint16_le data off in
  let vlen = Int32.to_int (Bytes.get_int32_le data (off + 2)) in
  let key = Bytes.sub_string data (off + 6) klen in
  let value = Bytes.sub data (off + 6 + klen) vlen in
  (key, value, 6 + klen + vlen)

let wal_path dir = dir ^ "/wal"
let table_path dir n = Printf.sprintf "%s/sst-%04d" dir n

let create ~vfs ~dir ?(memtable_limit = 16 * 1024) ?(compact_threshold = 4) () =
  let* _ = vfs.Vfs.mkdir dir in
  let* wal = vfs.Vfs.open_ (wal_path dir) Fs_proto.wronly in
  match wal with
  | Error e -> Proc.return (Error e)
  | Ok wal_fd ->
      Proc.return
        (Ok
           {
             vfs;
             dir;
             memtable_limit;
             compact_threshold;
             memtable = Smap.empty;
             mem_bytes = 0;
             wal_fd;
             wal_pos = 0;
             tables = [];
             next_table = 0;
             n_compactions = 0;
             io_buf = None;
           })

(* The store's single reused IO buffer (real code does not allocate a
   fresh buffer per operation; neither may we, or the pager pool drains). *)
let io_buf t =
  match t.io_buf with
  | Some buf -> Proc.return buf
  | None ->
      let* buf = A.alloc_buf 4096 in
      t.io_buf <- Some buf;
      Proc.return buf

(* Write a bytes blob through the vfs in page-sized chunks. *)
let write_blob t fd data =
  let* buf = io_buf t in
  let len = Bytes.length data in
  let rec loop off =
    if off >= len then Proc.return ()
    else begin
      let n = min 4096 (len - off) in
      Bytes.blit data off buf.M3v_mux.Act_ops.data 0 n;
      let* written = t.vfs.Vfs.write fd buf n in
      if written <> n then failwith "kvstore: short write";
      loop (off + n)
    end
  in
  loop 0

let read_blob t fd ~off ~len =
  let* () = t.vfs.Vfs.seek fd off in
  let* buf = io_buf t in
  let out = Bytes.create len in
  let rec loop pos =
    if pos >= len then Proc.return out
    else begin
      let n = min 4096 (len - pos) in
      let* got = t.vfs.Vfs.read fd buf n in
      if got = 0 then failwith "kvstore: unexpected EOF";
      Bytes.blit buf.M3v_mux.Act_ops.data 0 out pos got;
      loop (pos + got)
    end
  in
  loop 0

(* Serialize the memtable into an SSTable file. *)
let flush t =
  if Smap.is_empty t.memtable then Proc.return ()
  else begin
    let buf = Buffer.create (t.mem_bytes + 1024) in
    let index = ref [] in
    Smap.iter
      (fun key value ->
        index := (key, (Buffer.length buf, entry_len ~key ~value)) :: !index;
        encode_entry buf ~key ~value)
      t.memtable;
    let data = Buffer.to_bytes buf in
    let entries = Smap.cardinal t.memtable in
    let* () = A.compute (entries * entry_cycles) in
    let path = table_path t.dir t.next_table in
    t.next_table <- t.next_table + 1;
    let* fd = t.vfs.Vfs.open_ path Fs_proto.wronly in
    let fd = match fd with Ok fd -> fd | Error e -> failwith e in
    let* () = write_blob t fd data in
    let* () = t.vfs.Vfs.close fd in
    let table =
      {
        ss_path = path;
        ss_index = Array.of_list (List.rev !index);
        ss_size = Bytes.length data;
      }
    in
    t.tables <- table :: t.tables;
    t.memtable <- Smap.empty;
    t.mem_bytes <- 0;
    (* Truncate the WAL: its entries are now durable in the table. *)
    let* wal = t.vfs.Vfs.open_ (wal_path t.dir) Fs_proto.wronly in
    (match wal with Ok fd -> t.wal_fd <- fd | Error e -> failwith e);
    t.wal_pos <- 0;
    Proc.return ()
  end

(* Binary search in a table index; returns (offset, length) of the entry. *)
let index_lookup t (table : sstable) key =
  let n = Array.length table.ss_index in
  let steps = ref 0 in
  let rec search lo hi =
    if lo >= hi then None
    else begin
      incr steps;
      let mid = (lo + hi) / 2 in
      let mk, loc = table.ss_index.(mid) in
      if mk = key then Some loc
      else if mk < key then search (mid + 1) hi
      else search lo mid
    end
  in
  let result = search 0 n in
  let* () = A.compute (!steps * cmp_cycles) in
  ignore t;
  Proc.return result

let compact t =
  t.n_compactions <- t.n_compactions + 1;
  (* Read every table oldest-first so newer values win, merge, rewrite. *)
  let merged = ref Smap.empty in
  let* () =
    Proc.iter_list
      (fun table ->
        let* fd = t.vfs.Vfs.open_ table.ss_path Fs_proto.rdonly in
        let fd = match fd with Ok fd -> fd | Error e -> failwith e in
        let* data = read_blob t fd ~off:0 ~len:table.ss_size in
        let* () = t.vfs.Vfs.close fd in
        let* _ = t.vfs.Vfs.unlink table.ss_path in
        let rec decode off =
          if off >= Bytes.length data then ()
          else begin
            let key, value, step = decode_entry data off in
            merged := Smap.add key value !merged;
            decode (off + step)
          end
        in
        decode 0;
        A.compute (Array.length table.ss_index * entry_cycles))
      (List.rev t.tables)
  in
  t.tables <- [];
  let buf = Buffer.create 4096 in
  let index = ref [] in
  Smap.iter
    (fun key value ->
      index := (key, (Buffer.length buf, entry_len ~key ~value)) :: !index;
      encode_entry buf ~key ~value)
    !merged;
  let data = Buffer.to_bytes buf in
  let path = table_path t.dir t.next_table in
  t.next_table <- t.next_table + 1;
  let* fd = t.vfs.Vfs.open_ path Fs_proto.wronly in
  let fd = match fd with Ok fd -> fd | Error e -> failwith e in
  let* () = write_blob t fd data in
  let* () = t.vfs.Vfs.close fd in
  t.tables <-
    [ { ss_path = path; ss_index = Array.of_list (List.rev !index);
        ss_size = Bytes.length data } ];
  Proc.return ()

let put t ~key ~value =
  let* () = A.compute put_cycles in
  (* WAL append first. *)
  let buf = Buffer.create 64 in
  encode_entry buf ~key ~value;
  let record = Buffer.to_bytes buf in
  let* () = t.vfs.Vfs.seek t.wal_fd t.wal_pos in
  let* wbuf = io_buf t in
  let n = min (Bytes.length record) 4096 in
  Bytes.blit record 0 wbuf.M3v_mux.Act_ops.data 0 n;
  let* _ = t.vfs.Vfs.write t.wal_fd wbuf n in
  t.wal_pos <- t.wal_pos + n;
  let* () = A.compute entry_cycles in
  (if not (Smap.mem key t.memtable) then
     t.mem_bytes <- t.mem_bytes + entry_len ~key ~value);
  t.memtable <- Smap.add key value t.memtable;
  if t.mem_bytes > t.memtable_limit then
    let* () = flush t in
    if List.length t.tables > t.compact_threshold then compact t
    else Proc.return ()
  else Proc.return ()

let get t ~key =
  let* () = A.compute get_cycles in
  match Smap.find_opt key t.memtable with
  | Some v -> Proc.return (Some v)
  | None ->
      let rec search = function
        | [] -> Proc.return None
        | table :: rest -> (
            let* loc = index_lookup t table key in
            match loc with
            | None -> search rest
            | Some (off, len) ->
                let* fd = t.vfs.Vfs.open_ table.ss_path Fs_proto.rdonly in
                let fd = match fd with Ok fd -> fd | Error e -> failwith e in
                let* data = read_blob t fd ~off ~len in
                let* () = t.vfs.Vfs.close fd in
                let _, value, _ = decode_entry data 0 in
                Proc.return (Some value))
      in
      search t.tables

let scan t ~start ~count =
  (* Collect candidates from the memtable. *)
  let mem_part =
    Smap.to_seq_from start t.memtable |> Seq.map (fun (k, v) -> (k, v))
    |> List.of_seq
  in
  (* From each table: walk the index from the first key >= start and read
     the covered file range (the expensive part). *)
  let* table_parts =
    Proc.fold_list
      (fun acc table ->
        let idx = table.ss_index in
        let n = Array.length idx in
        let rec first lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if fst idx.(mid) < start then first (mid + 1) hi else first lo mid
        in
        let lo = first 0 n in
        let hi = min n (lo + count) in
        if lo >= hi then Proc.return acc
        else begin
          (* Iterate entry by entry, as leveldb's table iterator does:
             every visited entry costs a block access and decode work. *)
          let* () = A.compute scan_seek_cycles in
          let* fd = t.vfs.Vfs.open_ table.ss_path Fs_proto.rdonly in
          let fd = match fd with Ok fd -> fd | Error e -> failwith e in
          let entries = ref [] in
          let* () =
            Proc.repeat (hi - lo) (fun j ->
                let off, len = snd idx.(lo + j) in
                let* data = read_blob t fd ~off ~len in
                let key, value, _ = decode_entry data 0 in
                entries := (key, value) :: !entries;
                A.compute scan_item_cycles)
          in
          let* () = t.vfs.Vfs.close fd in
          Proc.return (List.rev_append !entries acc)
        end)
      [] t.tables
  in
  (* Merge: newest (memtable, then newer tables already first in the
     accumulated list order) wins. *)
  let merged =
    List.fold_left
      (fun acc (k, v) -> if Smap.mem k acc then acc else Smap.add k v acc)
      Smap.empty
      (mem_part @ List.rev table_parts)
  in
  let* () =
    A.compute (cmp_cycles * (List.length table_parts + List.length mem_part))
  in
  let result =
    Smap.to_seq_from start merged |> List.of_seq
    |> List.filteri (fun i _ -> i < count)
  in
  Proc.return result
