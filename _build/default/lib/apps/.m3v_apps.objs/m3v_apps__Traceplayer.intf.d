lib/apps/traceplayer.mli: Lazy M3v_mux M3v_os M3v_sim Trace
