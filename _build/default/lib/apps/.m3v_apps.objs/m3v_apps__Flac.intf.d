lib/apps/flac.mli:
