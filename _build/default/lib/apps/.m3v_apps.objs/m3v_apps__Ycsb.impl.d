lib/apps/ycsb.ml: Bytes Char List M3v_sim Printf
