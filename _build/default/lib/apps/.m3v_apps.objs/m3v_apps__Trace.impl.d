lib/apps/trace.ml: Fun List Printf
