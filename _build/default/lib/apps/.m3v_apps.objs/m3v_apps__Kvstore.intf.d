lib/apps/kvstore.mli: M3v_os M3v_sim
