lib/apps/traceplayer.ml: Bytes Lazy List M3v_mux M3v_os M3v_sim Trace
