lib/apps/ycsb.mli: M3v_sim
