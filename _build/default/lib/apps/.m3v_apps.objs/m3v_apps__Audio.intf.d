lib/apps/audio.mli: M3v_sim
