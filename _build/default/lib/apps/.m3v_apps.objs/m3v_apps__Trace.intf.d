lib/apps/trace.mli:
