lib/apps/cloud.mli: M3v_os M3v_sim Ycsb
