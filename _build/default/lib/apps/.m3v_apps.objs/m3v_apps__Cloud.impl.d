lib/apps/cloud.ml: Buffer Bytes Int32 Kvstore List M3v_mux M3v_os M3v_sim Printf String Ycsb
