lib/apps/flac.ml: Array Buffer Bytes Char List
