lib/apps/kvstore.ml: Array Buffer Bytes Int32 List M3v_mux M3v_os M3v_sim Map Printf Seq String
