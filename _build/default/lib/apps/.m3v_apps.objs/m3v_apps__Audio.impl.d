lib/apps/audio.ml: Array Bytes Float M3v_sim
