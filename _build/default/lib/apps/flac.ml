let frame_samples = 4096

(* Calibration: FLAC encoding on an 80 MHz BOOM core runs at a few hundred
   kilo-samples per second; 200 cycles per sample puts the voice
   assistant's compressor in the paper's ~380 ms regime. *)
let compress_cycles_per_sample = 200

(* --- bit-level IO --- *)

module Bit_writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable bits : int }

  let create () = { buf = Buffer.create 4096; acc = 0; bits = 0 }

  let put t ~bits ~value =
    if bits < 0 || bits > 30 then invalid_arg "Bit_writer.put";
    t.acc <- (t.acc lsl bits) lor (value land ((1 lsl bits) - 1));
    t.bits <- t.bits + bits;
    while t.bits >= 8 do
      t.bits <- t.bits - 8;
      Buffer.add_char t.buf (Char.chr ((t.acc lsr t.bits) land 0xff))
    done

  let put_unary t n =
    for _ = 1 to n do
      put t ~bits:1 ~value:0
    done;
    put t ~bits:1 ~value:1

  let finish t =
    if t.bits > 0 then begin
      let pad = 8 - t.bits in
      put t ~bits:pad ~value:0
    end;
    Buffer.to_bytes t.buf
end

module Bit_reader = struct
  type t = { data : bytes; mutable pos : int; mutable acc : int; mutable bits : int }

  let create data = { data; pos = 0; acc = 0; bits = 0 }

  let refill t =
    if t.pos >= Bytes.length t.data then failwith "Bit_reader: out of data";
    t.acc <- (t.acc lsl 8) lor Char.code (Bytes.get t.data t.pos);
    t.pos <- t.pos + 1;
    t.bits <- t.bits + 8

  let get t ~bits =
    while t.bits < bits do
      refill t
    done;
    t.bits <- t.bits - bits;
    (t.acc lsr t.bits) land ((1 lsl bits) - 1)

  let get_unary t =
    let n = ref 0 in
    while get t ~bits:1 = 0 do
      incr n
    done;
    !n
end

(* --- rice coding --- *)

let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1
let unzigzag u = if u land 1 = 0 then u / 2 else -((u + 1) / 2)

let rice_encode w ~k value =
  let u = zigzag value in
  let q = u lsr k in
  (* Escape pathological residuals with a verbatim code. *)
  if q > 47 then begin
    Bit_writer.put_unary w 48;
    Bit_writer.put w ~bits:18 ~value:(u land 0x3FFFF)
  end
  else begin
    Bit_writer.put_unary w q;
    if k > 0 then Bit_writer.put w ~bits:k ~value:(u land ((1 lsl k) - 1))
  end

let rice_decode r ~k =
  let q = Bit_reader.get_unary r in
  if q = 48 then unzigzag (Bit_reader.get r ~bits:18)
  else
    let low = if k > 0 then Bit_reader.get r ~bits:k else 0 in
    unzigzag ((q lsl k) lor low)

(* Optimal-ish rice parameter from the mean residual magnitude. *)
let rice_param residuals =
  let sum = Array.fold_left (fun acc v -> acc + abs v) 0 residuals in
  let n = max 1 (Array.length residuals) in
  let mean = sum / n in
  let rec find k = if 1 lsl k >= mean + 1 || k >= 16 then k else find (k + 1) in
  find 0

(* --- fixed predictors (FLAC orders 0..2) --- *)

let residuals ~order samples =
  let n = Array.length samples in
  Array.init n (fun i ->
      match order with
      | 0 -> samples.(i)
      | 1 -> if i < 1 then samples.(i) else samples.(i) - samples.(i - 1)
      | 2 ->
          if i < 2 then samples.(i)
          else samples.(i) - (2 * samples.(i - 1)) + samples.(i - 2)
      | _ -> invalid_arg "Flac: unsupported predictor order")

let restore ~order res =
  let n = Array.length res in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(i) <-
      (match order with
      | 0 -> res.(i)
      | 1 -> if i < 1 then res.(i) else res.(i) + out.(i - 1)
      | 2 -> if i < 2 then res.(i) else res.(i) + (2 * out.(i - 1)) - out.(i - 2)
      | _ -> invalid_arg "Flac: unsupported predictor order")
  done;
  out

let abs_sum = Array.fold_left (fun acc v -> acc + abs v) 0

let best_order samples =
  let candidates = [ 0; 1; 2 ] in
  let scored =
    List.map (fun order -> (abs_sum (residuals ~order samples), order)) candidates
  in
  snd (List.fold_left min (List.hd scored) (List.tl scored))

(* --- frame format ---
   header: u16 sample count, u8 predictor order, u8 rice parameter;
   body: rice-coded residuals, byte aligned per frame. *)

let compress samples =
  let out = Buffer.create (Array.length samples) in
  let n = Array.length samples in
  let off = ref 0 in
  while !off < n do
    let len = min frame_samples (n - !off) in
    let frame = Array.sub samples !off len in
    let order = best_order frame in
    let res = residuals ~order frame in
    let k = rice_param res in
    Buffer.add_uint16_le out len;
    Buffer.add_uint8 out order;
    Buffer.add_uint8 out k;
    let w = Bit_writer.create () in
    Array.iter (fun v -> rice_encode w ~k v) res;
    let body = Bit_writer.finish w in
    Buffer.add_uint16_le out (Bytes.length body);
    Buffer.add_bytes out body;
    off := !off + len
  done;
  Buffer.to_bytes out

let decompress data =
  let frames = ref [] in
  let pos = ref 0 in
  while !pos < Bytes.length data do
    let len = Bytes.get_uint16_le data !pos in
    let order = Bytes.get_uint8 data (!pos + 2) in
    let k = Bytes.get_uint8 data (!pos + 3) in
    let body_len = Bytes.get_uint16_le data (!pos + 4) in
    let body = Bytes.sub data (!pos + 6) body_len in
    pos := !pos + 6 + body_len;
    let r = Bit_reader.create body in
    let res = Array.init len (fun _ -> rice_decode r ~k) in
    frames := restore ~order res :: !frames
  done;
  Array.concat (List.rev !frames)

let ratio samples =
  let compressed = compress samples in
  float_of_int (2 * Array.length samples) /. float_of_int (Bytes.length compressed)
