(** The traceplayer: replays a syscall trace against an m3fs client.

    One traceplayer runs per tile next to a file-system instance on the
    same tile, so that every call context-switches between the two
    (paper, section 6.4). *)

type results = {
  mutable runs_completed : int;
  mutable run_times : M3v_sim.Time.t list;  (** most recent first *)
}

val make_results : unit -> results

(** [program results ~client ~trace ~runs ~warmup] replays [trace]
    [warmup + runs] times; only the last [runs] are recorded. *)
val program :
  results ->
  client:M3v_os.Fs_client.t Lazy.t ->
  trace:Trace.t ->
  runs:int ->
  warmup:int ->
  M3v_mux.Act_api.env ->
  unit M3v_sim.Proc.t

(** Host-level setup of the trace's directory tree on an fs core. *)
val setup_fs : M3v_os.Fs_core.t -> Trace.t -> unit
