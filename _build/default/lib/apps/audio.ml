module Rng = M3v_sim.Rng

type t = { sample_rate : int; samples : int array }

let clamp16 v = max (-32768) (min 32767 v)

let room_audio rng ~seconds ?(sample_rate = 16_000) ?(burst_every = 2.0) () =
  let n = int_of_float (seconds *. float_of_int sample_rate) in
  let burst_len = sample_rate / 2 in
  let burst_gap = int_of_float (burst_every *. float_of_int sample_rate) in
  let samples =
    Array.init n (fun i ->
        let noise = Rng.int rng 400 - 200 in
        let hum =
          int_of_float (300.0 *. sin (2.0 *. Float.pi *. 50.0 *. float_of_int i /. float_of_int sample_rate))
        in
        let in_burst = burst_gap > 0 && i mod burst_gap < burst_len in
        let voice =
          if in_burst then
            let ph = float_of_int (i mod burst_gap) in
            int_of_float
              (8000.0
              *. sin (2.0 *. Float.pi *. 220.0 *. ph /. float_of_int sample_rate)
              *. sin (2.0 *. Float.pi *. 3.0 *. ph /. float_of_int sample_rate))
          else 0
        in
        clamp16 (noise + hum + voice))
  in
  { sample_rate; samples }

let window_energy t ~off ~len =
  let len = min len (Array.length t.samples - off) in
  if len <= 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = off to off + len - 1 do
      let s = float_of_int t.samples.(i) in
      sum := !sum +. (s *. s)
    done;
    sqrt (!sum /. float_of_int len)
  end

let to_pcm_bytes samples =
  let out = Bytes.create (2 * Array.length samples) in
  Array.iteri (fun i s -> Bytes.set_int16_le out (2 * i) s) samples;
  out

let of_pcm_bytes data =
  let n = Bytes.length data / 2 in
  Array.init n (fun i -> Bytes.get_int16_le data (2 * i))
