(** A log-structured merge-tree key-value store (the leveldb stand-in for
    the cloud-service benchmark, paper section 6.5.2).

    Writes go to a write-ahead log and an in-memory memtable; when the
    memtable exceeds its limit it is flushed to an immutable sorted string
    table (SSTable) file.  Reads consult the memtable and then the tables
    newest-first; scans merge all levels and walk large file ranges, which
    is what makes them the most expensive YCSB operation.  When too many
    tables accumulate they are compacted into one.

    All persistence goes through the portable {!M3v_os.Vfs.t}, so the same
    store runs on m3fs and on the Linux model's tmpfs. *)

type t

val create :
  vfs:M3v_os.Vfs.t ->
  dir:string ->
  ?memtable_limit:int ->
  ?compact_threshold:int ->
  unit ->
  (t, string) result M3v_sim.Proc.t

val put : t -> key:string -> value:bytes -> unit M3v_sim.Proc.t
val get : t -> key:string -> bytes option M3v_sim.Proc.t

(** [scan t ~start ~count] returns up to [count] key-value pairs with
    keys >= [start], in key order. *)
val scan : t -> start:string -> count:int -> (string * bytes) list M3v_sim.Proc.t

(** Force the memtable out to an SSTable. *)
val flush : t -> unit M3v_sim.Proc.t

val sstable_count : t -> int
val memtable_entries : t -> int
val compactions : t -> int
