(** A lossless audio compressor implementing FLAC's core scheme: per-frame
    fixed linear predictors (orders 0-2) selected by residual magnitude,
    with Rice-coded residuals.  This is the libFLAC stand-in for the
    voice-assistant compressor (paper, 6.5.1); a decoder is included so
    tests can verify bit-exact round trips.

    [compress_cycles_per_sample] is the CPU cost the caller charges per
    input sample when running inside the simulation. *)

val compress : int array -> bytes
val decompress : bytes -> int array

(** Compression ratio achieved on the samples (input bytes / output
    bytes). *)
val ratio : int array -> float

val compress_cycles_per_sample : int
val frame_samples : int
