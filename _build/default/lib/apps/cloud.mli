(** The cloud half of the voice-activation system (paper, 6.5.2).

    A database service hosting the LSM key-value store: it reads the
    request workload ahead of time from a file (the paper does this
    because TCP between the 80 MHz FPGA and the peer was not reliable),
    executes the YCSB operations, and ships requests and results to the
    peer machine via UDP.  Four components participate: the database, the
    file system backing it, the network stack, and the pager. *)

(** Binary encoding of a workload (load phase + operations). *)
val encode_workload : load:(string * bytes) list -> ops:Ycsb.op list -> bytes

val decode_workload : bytes -> (string * bytes) list * Ycsb.op list

type run_report = {
  elapsed : M3v_sim.Time.t;
  reads : int;
  inserts : int;
  updates : int;
  scans : int;
  scan_items : int;
}

(** The database program: for each repetition, reads the request file,
    loads the records, executes the operations against a fresh store and
    reports.  [results_to] is the peer address for UDP result packets. *)
val db_program :
  vfs:M3v_os.Vfs.t ->
  udp:M3v_os.Net_client.udp ->
  requests_path:string ->
  db_dir_base:string ->
  results_to:M3v_os.Net_proto.addr ->
  reps:int ->
  on_rep:(run_report -> unit) ->
  unit M3v_sim.Proc.t

(** Cycles charged per decoded byte of the request file. *)
val decode_cycles_per_byte : int
