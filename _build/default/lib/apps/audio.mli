(** Synthetic audio for the voice-assistant scenario (paper, 6.5.1).

    16-bit mono PCM: background room noise with occasional louder
    voice-like bursts that the trigger scanner detects.  Deterministic
    given the generator seed. *)

type t = { sample_rate : int; samples : int array }

(** [room_audio rng ~seconds ~sample_rate ~burst_every] synthesizes audio
    with a voice burst roughly every [burst_every] seconds. *)
val room_audio :
  M3v_sim.Rng.t -> seconds:float -> ?sample_rate:int -> ?burst_every:float -> unit -> t

(** Short-window energy, used by the trigger scanner. *)
val window_energy : t -> off:int -> len:int -> float

(** Serialize samples as little-endian 16-bit PCM. *)
val to_pcm_bytes : int array -> bytes

val of_pcm_bytes : bytes -> int array
