type op =
  | T_open of { path : string; write : bool }
  | T_close
  | T_stat of string
  | T_readdir of string
  | T_read of int
  | T_write of int
  | T_seek of int
  | T_compute of int

type t = {
  name : string;
  ops : op list;
  setup_dirs : string list;
  setup_files : (string * int) list;
}

let is_rpc = function
  | T_open _ | T_close | T_stat _ | T_readdir _ | T_read _ | T_write _ -> true
  | T_seek _ | T_compute _ -> false

let rpc_count t = List.length (List.filter is_rpc t.ops)

let compute_cycles t =
  List.fold_left (fun acc -> function T_compute c -> acc + c | _ -> acc) 0 t.ops

(* "find" searches through [dirs] directories with [files_per_dir] files
   each (paper defaults: 24 x 40): per directory one readdir, per file one
   stat, and every fourth file is opened and sampled. *)
let find_trace ?(dirs = 24) ?(files_per_dir = 40) ?(compute_per_op = 28_000) () =
  let ops = ref [] in
  let push op = ops := op :: !ops in
  let dir_name d = Printf.sprintf "/find/d%02d" d in
  let file_name d f = Printf.sprintf "/find/d%02d/f%02d" d f in
  push (T_stat "/find");
  for d = 0 to dirs - 1 do
    push (T_compute compute_per_op);
    push (T_readdir (dir_name d));
    for f = 0 to files_per_dir - 1 do
      push (T_compute compute_per_op);
      push (T_stat (file_name d f));
      if f mod 4 = 0 then begin
        push (T_open { path = file_name d f; write = false });
        push (T_read 128);
        push T_close
      end
    done
  done;
  let setup_dirs =
    "/find" :: List.init dirs dir_name
  in
  let setup_files =
    List.concat_map
      (fun d -> List.init files_per_dir (fun f -> (file_name d f, 512)))
      (List.init dirs Fun.id)
  in
  { name = "find"; ops = List.rev !ops; setup_dirs; setup_files }

(* "SQLite": [inserts] transactions (rollback journal + page reads and
   writes + journal removal — SQLite issues dozens of file-system calls
   per transaction) and [selects] lookups (open + seeks + page reads). *)
let sqlite_trace ?(inserts = 32) ?(selects = 32) ?(compute_per_op = 120_000) () =
  let ops = ref [] in
  let push op = ops := op :: !ops in
  push (T_open { path = "/sqlite/db"; write = false });
  push (T_read 100);
  (* page cache warmup reads *)
  for _ = 1 to 8 do
    push (T_compute (compute_per_op / 8));
    push (T_read 256)
  done;
  push T_close;
  for i = 0 to inserts - 1 do
    push (T_compute (3 * compute_per_op));
    (* rollback journal: header + original page images *)
    push (T_open { path = "/sqlite/db-journal"; write = true });
    for _ = 1 to 6 do
      push (T_write 200)
    done;
    push (T_stat "/sqlite/db-journal");
    push T_close;
    (* db page reads (btree descent) + page writes *)
    push (T_open { path = "/sqlite/db"; write = true });
    push (T_seek ((i mod 16) * 4096));
    for _ = 1 to 5 do
      push (T_read 256)
    done;
    for _ = 1 to 8 do
      push (T_write 256)
    done;
    push T_close;
    (* journal removal (commit) *)
    push (T_stat "/sqlite/db-journal");
    push (T_open { path = "/sqlite/db-journal"; write = true });
    push T_close;
    push (T_stat "/sqlite/db")
  done;
  for i = 0 to selects - 1 do
    push (T_compute (2 * compute_per_op));
    push (T_open { path = "/sqlite/db"; write = false });
    push (T_stat "/sqlite/db");
    push (T_seek ((i * 7 mod 16) * 4096));
    for _ = 1 to 11 do
      push (T_read 256)
    done;
    push T_close
  done;
  {
    name = "sqlite";
    ops = List.rev !ops;
    setup_dirs = [ "/sqlite" ];
    setup_files = [ ("/sqlite/db", 16 * 4096) ];
  }
