(** Yahoo! Cloud Serving Benchmark workload generation (paper, 6.5.2).

    All workloads draw keys from a Zipfian distribution over the loaded
    records, as in YCSB's default configuration.  The paper's setup: 200
    records are loaded, then 200 operations run with these mixes:

    - read-heavy / insert-heavy / update-heavy: 80-10-10 over the named
      operation and the other two (no scans);
    - scan-heavy: 80% scans, 10-10 over reads and inserts (no updates);
    - mixed: 50% reads, 10% inserts, 30% updates, 10% scans. *)

type op =
  | Read of string
  | Insert of string * bytes
  | Update of string * bytes
  | Scan of string * int

type workload = Read_heavy | Insert_heavy | Update_heavy | Scan_heavy | Mixed

val workload_name : workload -> string
val all_workloads : workload list

(** [record_key i] is YCSB's "user<i>" key. *)
val record_key : int -> string

(** Deterministic value payload for a key. *)
val value_for : M3v_sim.Rng.t -> size:int -> bytes

(** [load ~records ~value_size rng] is the initial dataset. *)
val load : records:int -> value_size:int -> M3v_sim.Rng.t -> (string * bytes) list

(** [ops workload ~records ~count ~value_size ~scan_length rng] generates
    the operation sequence. *)
val ops :
  workload ->
  records:int ->
  count:int ->
  ?value_size:int ->
  ?scan_length:int ->
  M3v_sim.Rng.t ->
  op list

(** Zipfian sampler over [0, n) with exponent [theta] (default 0.99, the
    YCSB standard). *)
module Zipf : sig
  type t

  val create : ?theta:float -> n:int -> M3v_sim.Rng.t -> t
  val sample : t -> int
end
