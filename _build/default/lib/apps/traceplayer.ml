open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Fs_client = M3v_os.Fs_client
module Fs_proto = M3v_os.Fs_proto
module Fs_core = M3v_os.Fs_core

type results = {
  mutable runs_completed : int;
  mutable run_times : Time.t list;
}

let make_results () = { runs_completed = 0; run_times = [] }

type state = { mutable fd : int option; mutable pos : int }

let play_op client st op =
  match op with
  | Trace.T_compute cycles -> A.compute cycles
  | Trace.T_seek pos ->
      st.pos <- pos;
      Proc.return ()
  | Trace.T_open { path; write } ->
      let flags =
        if write then { Fs_proto.fl_write = true; fl_create = true; fl_trunc = false }
        else Fs_proto.rdonly
      in
      let* r = Fs_client.open_ client path flags in
      (match r with
      | Ok fd ->
          st.fd <- Some fd;
          st.pos <- 0
      | Error e -> failwith ("traceplayer: open failed: " ^ e));
      Proc.return ()
  | Trace.T_close -> (
      match st.fd with
      | None -> Proc.return ()
      | Some fd ->
          st.fd <- None;
          Fs_client.close client ~fd)
  | Trace.T_stat path ->
      let* _ = Fs_client.stat client path in
      Proc.return ()
  | Trace.T_readdir path ->
      let* _ = Fs_client.readdir client path in
      Proc.return ()
  | Trace.T_read len -> (
      match st.fd with
      | None -> Proc.return ()
      | Some fd ->
          let* _ = Fs_client.read_inline client ~fd ~off:st.pos ~len in
          st.pos <- st.pos + len;
          Proc.return ())
  | Trace.T_write len -> (
      match st.fd with
      | None -> Proc.return ()
      | Some fd ->
          let data = Bytes.make len 'w' in
          let* () = Fs_client.write_inline client ~fd ~off:st.pos ~data in
          st.pos <- st.pos + len;
          Proc.return ())

let play_once client trace =
  let st = { fd = None; pos = 0 } in
  Proc.iter_list (play_op client st) trace.Trace.ops

let program results ~client ~trace ~runs ~warmup _env =
  let client = Lazy.force client in
  let* () = Proc.repeat warmup (fun _ -> play_once client trace) in
  Proc.repeat runs (fun _ ->
      let* t0 = A.now in
      let* () = play_once client trace in
      let* t1 = A.now in
      results.runs_completed <- results.runs_completed + 1;
      results.run_times <- Time.sub t1 t0 :: results.run_times;
      Proc.return ())

let setup_fs core trace =
  List.iter
    (fun dir ->
      match Fs_core.mkdir core dir with
      | Ok _ -> ()
      | Error "exists" -> ()
      | Error e -> invalid_arg ("traceplayer setup: " ^ e))
    trace.Trace.setup_dirs;
  List.iter
    (fun (path, size) ->
      match Fs_core.create_file core path with
      | Ok ino ->
          if size > 0 then begin
            Fs_core.preallocate core ino
              ~blocks:((size + Fs_core.block_size - 1) / Fs_core.block_size);
            Fs_core.set_size core ino size
          end
      | Error e -> invalid_arg ("traceplayer setup: " ^ e))
    trace.Trace.setup_files
