open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Vfs = M3v_os.Vfs
module Net_client = M3v_os.Net_client

let decode_cycles_per_byte = 2

(* Record encoding: tag byte, u16 key length, u32 payload length, key,
   payload.  Tags: 0 load, 1 read, 2 insert, 3 update, 4 scan (payload =
   u16 scan length). *)

let add_entry buf ~tag ~key ~payload =
  Buffer.add_uint8 buf tag;
  Buffer.add_uint16_le buf (String.length key);
  Buffer.add_int32_le buf (Int32.of_int (Bytes.length payload));
  Buffer.add_string buf key;
  Buffer.add_bytes buf payload

let encode_workload ~load ~ops =
  let buf = Buffer.create 4096 in
  List.iter (fun (key, value) -> add_entry buf ~tag:0 ~key ~payload:value) load;
  List.iter
    (fun op ->
      match op with
      | Ycsb.Read key -> add_entry buf ~tag:1 ~key ~payload:Bytes.empty
      | Ycsb.Insert (key, value) -> add_entry buf ~tag:2 ~key ~payload:value
      | Ycsb.Update (key, value) -> add_entry buf ~tag:3 ~key ~payload:value
      | Ycsb.Scan (key, count) ->
          let p = Bytes.create 2 in
          Bytes.set_uint16_le p 0 count;
          add_entry buf ~tag:4 ~key ~payload:p)
    ops;
  Buffer.to_bytes buf

let decode_workload data =
  let load = ref [] and ops = ref [] in
  let pos = ref 0 in
  while !pos < Bytes.length data do
    let tag = Bytes.get_uint8 data !pos in
    let klen = Bytes.get_uint16_le data (!pos + 1) in
    let plen = Int32.to_int (Bytes.get_int32_le data (!pos + 3)) in
    let key = Bytes.sub_string data (!pos + 7) klen in
    let payload = Bytes.sub data (!pos + 7 + klen) plen in
    pos := !pos + 7 + klen + plen;
    match tag with
    | 0 -> load := (key, payload) :: !load
    | 1 -> ops := Ycsb.Read key :: !ops
    | 2 -> ops := Ycsb.Insert (key, payload) :: !ops
    | 3 -> ops := Ycsb.Update (key, payload) :: !ops
    | 4 -> ops := Ycsb.Scan (key, Bytes.get_uint16_le payload 0) :: !ops
    | _ -> failwith "Cloud.decode_workload: bad tag"
  done;
  (List.rev !load, List.rev !ops)

type run_report = {
  elapsed : Time.t;
  reads : int;
  inserts : int;
  updates : int;
  scans : int;
  scan_items : int;
}

let db_program ~vfs ~(udp : Net_client.udp) ~requests_path ~db_dir_base
    ~results_to ~reps ~on_rep =
  let* sock = udp.Net_client.u_socket () in
  let* () = udp.Net_client.u_bind sock 6000 in
  let results = Buffer.create 1024 in
  let flush_results force =
    if Buffer.length results > 1000 || (force && Buffer.length results > 0) then begin
      let payload = Buffer.to_bytes results in
      Buffer.clear results;
      udp.Net_client.u_sendto sock results_to payload
    end
    else Proc.return ()
  in
  let one_rep rep =
    let* t0 = A.now in
    (* Requests were staged in a file ahead of time (paper, 6.5.2). *)
    let* req = Vfs.read_all vfs requests_path in
    let data = match req with Ok d -> d | Error e -> failwith e in
    let* () = A.compute (decode_cycles_per_byte * Bytes.length data) in
    let load, ops = decode_workload data in
    let* store =
      Kvstore.create ~vfs ~dir:(Printf.sprintf "%s%d" db_dir_base rep) ()
    in
    let store = match store with Ok s -> s | Error e -> failwith e in
    let* () =
      Proc.iter_list
        (fun (key, value) -> Kvstore.put store ~key ~value)
        load
    in
    let counts = ref (0, 0, 0, 0, 0) in
    let bump f = counts := f !counts in
    let* () =
      Proc.iter_list
        (fun op ->
          let* () =
            match op with
            | Ycsb.Read key ->
                bump (fun (r, i, u, s, si) -> (r + 1, i, u, s, si));
                let* v = Kvstore.get store ~key in
                Buffer.add_string results
                  (Printf.sprintf "R %s %d;" key
                     (match v with Some v -> Bytes.length v | None -> -1));
                Proc.return ()
            | Ycsb.Insert (key, value) ->
                bump (fun (r, i, u, s, si) -> (r, i + 1, u, s, si));
                let* () = Kvstore.put store ~key ~value in
                Buffer.add_string results (Printf.sprintf "I %s;" key);
                Proc.return ()
            | Ycsb.Update (key, value) ->
                bump (fun (r, i, u, s, si) -> (r, i, u + 1, s, si));
                let* () = Kvstore.put store ~key ~value in
                Buffer.add_string results (Printf.sprintf "U %s;" key);
                Proc.return ()
            | Ycsb.Scan (key, count) ->
                let* items = Kvstore.scan store ~start:key ~count in
                bump (fun (r, i, u, s, si) ->
                    (r, i, u, s + 1, si + List.length items));
                Buffer.add_string results
                  (Printf.sprintf "S %s %d;" key (List.length items));
                Proc.return ()
          in
          flush_results false)
        ops
    in
    let* () = flush_results true in
    let* t1 = A.now in
    let r, i, u, s, si = !counts in
    on_rep
      { elapsed = Time.sub t1 t0; reads = r; inserts = i; updates = u;
        scans = s; scan_items = si };
    Proc.return ()
  in
  let* () = Proc.repeat reps one_rep in
  udp.Net_client.u_close sock
