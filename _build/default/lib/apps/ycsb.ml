module Rng = M3v_sim.Rng

type op =
  | Read of string
  | Insert of string * bytes
  | Update of string * bytes
  | Scan of string * int

type workload = Read_heavy | Insert_heavy | Update_heavy | Scan_heavy | Mixed

let workload_name = function
  | Read_heavy -> "read"
  | Insert_heavy -> "insert"
  | Update_heavy -> "update"
  | Scan_heavy -> "scan"
  | Mixed -> "mixed"

let all_workloads = [ Read_heavy; Insert_heavy; Update_heavy; Mixed; Scan_heavy ]

let record_key i = Printf.sprintf "user%08d" i

let value_for rng ~size =
  Bytes.init size (fun _ -> Char.chr (Rng.int rng 256))

let load ~records ~value_size rng =
  List.init records (fun i -> (record_key i, value_for rng ~size:value_size))

module Zipf = struct
  type t = {
    n : int;
    theta : float;
    zetan : float;
    alpha : float;
    eta : float;
    rng : Rng.t;
  }

  let zeta n theta =
    let sum = ref 0.0 in
    for i = 1 to n do
      sum := !sum +. (1.0 /. (float_of_int i ** theta))
    done;
    !sum

  let create ?(theta = 0.99) ~n rng =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta; rng }

  (* Gray et al.'s quick Zipfian sampler, as used by YCSB. *)
  let sample t =
    let u = Rng.float t.rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** t.theta) then 1
    else
      let v =
        float_of_int t.n
        *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha)
      in
      min (t.n - 1) (int_of_float v)
end

(* Proportions per workload: (read, insert, update, scan) summing to 100. *)
let mix = function
  | Read_heavy -> (80, 10, 10, 0)
  | Insert_heavy -> (10, 80, 10, 0)
  | Update_heavy -> (10, 10, 80, 0)
  | Scan_heavy -> (10, 10, 0, 80)
  | Mixed -> (50, 10, 30, 10)

let ops workload ~records ~count ?(value_size = 1024) ?(scan_length = 20) rng =
  let zipf = Zipf.create ~n:records rng in
  let next_insert = ref records in
  let r, i, u, _s = mix workload in
  List.init count (fun _ ->
      let dice = Rng.int rng 100 in
      if dice < r then Read (record_key (Zipf.sample zipf))
      else if dice < r + i then begin
        let key = record_key !next_insert in
        incr next_insert;
        Insert (key, value_for rng ~size:value_size)
      end
      else if dice < r + i + u then
        Update (record_key (Zipf.sample zipf), value_for rng ~size:value_size)
      else Scan (record_key (Zipf.sample zipf), scan_length))
