(** The vDTU's software-loaded TLB (paper, section 3.6).

    The vDTU never walks page tables: on a miss the command fails and the
    activity asks TileMux (via TMCall) to translate and insert the entry
    through the privileged interface.  Entries are tagged with the owning
    activity.  Eviction is FIFO. *)

type t

val create : capacity:int -> t
val capacity : t -> int

(** [lookup t ~act ~vpage ~write] returns the physical page if present with
    sufficient permission. *)
val lookup : t -> act:Dtu_types.act_id -> vpage:int -> write:bool -> int option

val insert :
  t -> act:Dtu_types.act_id -> vpage:int -> ppage:int -> perm:Dtu_types.perm -> unit

(** Drop all entries of one activity (on activity exit). *)
val invalidate_act : t -> Dtu_types.act_id -> unit

(** Drop a single page mapping (on unmap/remap). *)
val invalidate_page : t -> act:Dtu_types.act_id -> vpage:int -> unit

val flush : t -> unit
val entry_count : t -> int

type stats = { hits : int; misses : int; evictions : int }

val stats : t -> stats
