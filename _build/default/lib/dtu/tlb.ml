type key = Dtu_types.act_id * int
type entry = { ppage : int; perm : Dtu_types.perm }

type stats = { hits : int; misses : int; evictions : int }

type t = {
  capacity : int;
  entries : (key, entry) Hashtbl.t;
  fifo : key Queue.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    capacity;
    entries = Hashtbl.create capacity;
    fifo = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let lookup t ~act ~vpage ~write =
  match Hashtbl.find_opt t.entries (act, vpage) with
  | Some e when (not write) || Dtu_types.perm_allows_write e.perm ->
      t.hits <- t.hits + 1;
      Some e.ppage
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let evict_one t =
  (* The FIFO may contain stale keys for entries already invalidated;
     skip those. *)
  let rec loop () =
    match Queue.take_opt t.fifo with
    | None -> ()
    | Some key ->
        if Hashtbl.mem t.entries key then begin
          Hashtbl.remove t.entries key;
          t.evictions <- t.evictions + 1
        end
        else loop ()
  in
  loop ()

let insert t ~act ~vpage ~ppage ~perm =
  let key = (act, vpage) in
  if not (Hashtbl.mem t.entries key) then begin
    if Hashtbl.length t.entries >= t.capacity then evict_one t;
    Queue.add key t.fifo
  end;
  Hashtbl.replace t.entries key { ppage; perm }

let invalidate_act t act =
  let stale =
    Hashtbl.fold (fun (a, p) _ acc -> if a = act then (a, p) :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

let invalidate_page t ~act ~vpage = Hashtbl.remove t.entries (act, vpage)

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.fifo

let entry_count t = Hashtbl.length t.entries
let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }
