type data = ..
type data += Raw of bytes | Empty

type t = {
  src_tile : int;
  src_act : Dtu_types.act_id;
  src_send_ep : int option;
  label : int;
  reply_to : (int * int) option;
  size : int;
  data : data;
}

let header_bytes = 16

let make ~src_tile ~src_act ?src_send_ep ?(label = 0) ?reply_to ~size data =
  if size < 0 then invalid_arg "Msg.make: negative size";
  { src_tile; src_act; src_send_ep; label; reply_to; size; data }

let pp fmt t =
  Format.fprintf fmt "msg[from t%d/%a label=%d size=%d%s]" t.src_tile
    Dtu_types.pp_act t.src_act t.label t.size
    (match t.reply_to with
    | Some (tile, ep) -> Printf.sprintf " reply->t%d:ep%d" tile ep
    | None -> "")
