module Time = M3v_sim.Time

type stats = { reads : int; writes : int; bytes_read : int; bytes_written : int }

type t = {
  store : bytes;
  access_latency_ps : int;
  ps_per_byte : int;
  mutable busy_until : Time.t;
  mutable stats : stats;
}

(* Defaults model the FPGA's DDR4 interface: ~90 ns access latency and
   ~1 GB/s sustained per-stream bandwidth. *)
let create ~size ?(access_latency_ps = 90_000) ?(bytes_per_ns = 1) () =
  if size <= 0 then invalid_arg "Dram.create: size must be positive";
  {
    store = Bytes.make size '\000';
    access_latency_ps;
    ps_per_byte = 1_000 / bytes_per_ns;
    busy_until = Time.zero;
    stats = { reads = 0; writes = 0; bytes_read = 0; bytes_written = 0 };
  }

let size t = Bytes.length t.store

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.store then
    invalid_arg
      (Printf.sprintf "Dram: access [%#x, %#x) outside store of %#x bytes" off
         (off + len) (Bytes.length t.store))

let read t ~off ~len =
  check t ~off ~len;
  t.stats <-
    { t.stats with reads = t.stats.reads + 1; bytes_read = t.stats.bytes_read + len };
  Bytes.sub t.store off len

let read_into t ~off ~dst ~dst_off ~len =
  check t ~off ~len;
  t.stats <-
    { t.stats with reads = t.stats.reads + 1; bytes_read = t.stats.bytes_read + len };
  Bytes.blit t.store off dst dst_off len

let write t ~off ~src ~src_off ~len =
  check t ~off ~len;
  t.stats <-
    {
      t.stats with
      writes = t.stats.writes + 1;
      bytes_written = t.stats.bytes_written + len;
    };
  Bytes.blit src src_off t.store off len

let fill t ~off ~len c =
  check t ~off ~len;
  t.stats <-
    {
      t.stats with
      writes = t.stats.writes + 1;
      bytes_written = t.stats.bytes_written + len;
    };
  Bytes.fill t.store off len c

let access_time t ~now ~bytes =
  let start = Time.max now t.busy_until in
  let duration = t.access_latency_ps + (bytes * t.ps_per_byte) in
  t.busy_until <- Time.add start duration;
  Time.add start duration

let stats t = t.stats
