(** A memory tile's DRAM: real byte backing plus a bandwidth/latency model.

    The store is shared-nothing between tiles; every access arrives as a DTU
    transfer over the NoC.  A busy-until horizon serializes accesses so that
    concurrent DMA streams contend for DRAM bandwidth. *)

type t

val create :
  size:int ->
  ?access_latency_ps:int ->
  ?bytes_per_ns:int ->
  unit ->
  t

val size : t -> int

(** Raw access to the backing, bounds-checked.  Used by the DTU transfer
    engine; callers go through memory endpoints. *)
val read : t -> off:int -> len:int -> bytes

val read_into : t -> off:int -> dst:bytes -> dst_off:int -> len:int -> unit
val write : t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
val fill : t -> off:int -> len:int -> char -> unit

(** [access_time t ~now ~bytes] is the completion time of a [bytes]-byte
    access issued at [now], advancing the contention horizon. *)
val access_time : t -> now:M3v_sim.Time.t -> bytes:int -> M3v_sim.Time.t

type stats = { reads : int; writes : int; bytes_read : int; bytes_written : int }

val stats : t -> stats
