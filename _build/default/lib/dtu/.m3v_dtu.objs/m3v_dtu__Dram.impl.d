lib/dtu/dram.ml: Bytes M3v_sim Printf
