lib/dtu/msg.mli: Dtu_types Format
