lib/dtu/ep.ml: Dtu_types Format Msg Queue
