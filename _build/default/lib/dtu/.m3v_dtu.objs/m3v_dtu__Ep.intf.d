lib/dtu/ep.mli: Dtu_types Format Msg Queue
