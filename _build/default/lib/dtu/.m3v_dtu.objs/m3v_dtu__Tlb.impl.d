lib/dtu/tlb.ml: Dtu_types Hashtbl List Queue
