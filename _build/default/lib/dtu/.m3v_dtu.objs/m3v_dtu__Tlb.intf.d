lib/dtu/tlb.mli: Dtu_types
