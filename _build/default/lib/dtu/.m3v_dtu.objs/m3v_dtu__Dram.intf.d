lib/dtu/dram.mli: M3v_sim
