lib/dtu/dtu.ml: Array Dram Dtu_types Ep Hashtbl M3v_noc M3v_sim Msg Printf Queue Tlb
