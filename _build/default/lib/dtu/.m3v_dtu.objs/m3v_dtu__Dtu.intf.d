lib/dtu/dtu.mli: Dram Dtu_types Ep M3v_noc M3v_sim Msg Tlb
