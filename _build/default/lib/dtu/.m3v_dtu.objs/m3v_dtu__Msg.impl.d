lib/dtu/msg.ml: Dtu_types Format Printf
