lib/dtu/dtu_types.mli: Format
