lib/dtu/dtu_types.ml: Format Printf
