type kind =
  | Processing of Core_model.t
  | Controller of Core_model.t
  | Memory of { size : int }
  | Accelerator of { acc_name : string }

type t = {
  id : int;
  kind : kind;
  dtu : M3v_dtu.Dtu.t;
  dram : M3v_dtu.Dram.t option;
  mutable has_nic : bool;
}

let core t =
  match t.kind with
  | Processing c | Controller c -> Some c
  | Memory _ | Accelerator _ -> None

let is_processing t = match t.kind with Processing _ -> true | _ -> false
let is_memory t = match t.kind with Memory _ -> true | _ -> false

let pp fmt t =
  match t.kind with
  | Processing c ->
      Format.fprintf fmt "tile%d[%a%s]" t.id Core_model.pp c
        (if t.has_nic then "+NIC" else "")
  | Controller c -> Format.fprintf fmt "tile%d[ctrl:%a]" t.id Core_model.pp c
  | Memory { size } -> Format.fprintf fmt "tile%d[mem:%dMiB]" t.id (size / 1024 / 1024)
  | Accelerator { acc_name } -> Format.fprintf fmt "tile%d[accel:%s]" t.id acc_name
