(** A tile of the platform: a processing core, a memory interface, or the
    controller's core, each behind its (v)DTU. *)

type kind =
  | Processing of Core_model.t  (** user tile: core + vDTU (or DTU on M3x) *)
  | Controller of Core_model.t  (** controller tile: core + plain DTU *)
  | Memory of { size : int }  (** DRAM interface tile *)
  | Accelerator of { acc_name : string }
      (** fixed-function logic behind a plain DTU; cannot be multiplexed
          by M3v (paper, section 8) *)

type t = {
  id : int;
  kind : kind;
  dtu : M3v_dtu.Dtu.t;
  dram : M3v_dtu.Dram.t option;  (** present on memory tiles *)
  mutable has_nic : bool;  (** a NIC is attached to this tile's core *)
}

val core : t -> Core_model.t option
val is_processing : t -> bool
val is_memory : t -> bool
val pp : Format.formatter -> t -> unit
