module Dtu = M3v_dtu.Dtu
module Dram = M3v_dtu.Dram
module Topology = M3v_noc.Topology
module Noc = M3v_noc.Noc

type tile_spec =
  | Proc of Core_model.t
  | Proc_with_nic of Core_model.t
  | Ctrl of Core_model.t
  | Mem of int
  | Accel of string

type t = {
  engine : M3v_sim.Engine.t;
  noc : Noc.t;
  tiles : Tile.t array;
  ctrl : int option;
}

let create ?topology ?noc_params ?(ep_count = 128) ?tlb_capacity ~virtualized
    ~tiles engine () =
  let count = List.length tiles in
  if count = 0 then invalid_arg "Platform.create: no tiles";
  let topo =
    match topology with
    | Some t ->
        if Topology.tiles t <> count then
          invalid_arg "Platform.create: topology tile count mismatch";
        t
    | None -> Topology.star_mesh_2x2 ~tiles:count
  in
  let noc = Noc.create ?params:noc_params engine topo in
  let build id spec =
    let mk_dtu ~virtualized =
      Dtu.create ~virtualized ~tile:id ~ep_count ?tlb_capacity engine noc
    in
    match spec with
    | Proc core ->
        { Tile.id; kind = Tile.Processing core; dtu = mk_dtu ~virtualized;
          dram = None; has_nic = false }
    | Proc_with_nic core ->
        { Tile.id; kind = Tile.Processing core; dtu = mk_dtu ~virtualized;
          dram = None; has_nic = true }
    | Ctrl core ->
        { Tile.id; kind = Tile.Controller core; dtu = mk_dtu ~virtualized:false;
          dram = None; has_nic = false }
    | Mem size ->
        { Tile.id; kind = Tile.Memory { size }; dtu = mk_dtu ~virtualized:false;
          dram = Some (Dram.create ~size ()); has_nic = false }
    | Accel acc_name ->
        (* Accelerators keep a plain DTU: M3v does not multiplex them
           (paper, section 8). *)
        { Tile.id; kind = Tile.Accelerator { acc_name };
          dtu = mk_dtu ~virtualized:false; dram = None; has_nic = false }
  in
  let tile_arr = Array.of_list (List.mapi build tiles) in
  let ctrl =
    Array.to_list tile_arr
    |> List.find_map (fun t ->
           match t.Tile.kind with Tile.Controller _ -> Some t.Tile.id | _ -> None)
  in
  let lookup_dtu id =
    if id >= 0 && id < Array.length tile_arr then Some tile_arr.(id).Tile.dtu
    else None
  in
  let lookup_mem id =
    if id >= 0 && id < Array.length tile_arr then tile_arr.(id).Tile.dram
    else None
  in
  Array.iter (fun t -> Dtu.connect t.Tile.dtu ~lookup_dtu ~lookup_mem) tile_arr;
  { engine; noc; tiles = tile_arr; ctrl }

let engine t = t.engine
let noc t = t.noc
let tile_count t = Array.length t.tiles

let tile t id =
  if id < 0 || id >= Array.length t.tiles then
    invalid_arg (Printf.sprintf "Platform.tile: %d out of range" id);
  t.tiles.(id)

let dtu t id = (tile t id).Tile.dtu

let core_exn t id =
  match Tile.core (tile t id) with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Platform.core_exn: tile %d has no core" id)

let memory_tiles t =
  Array.to_list t.tiles
  |> List.filter_map (fun tl ->
         if Tile.is_memory tl then Some tl.Tile.id else None)

let processing_tiles t =
  Array.to_list t.tiles
  |> List.filter_map (fun tl ->
         if Tile.is_processing tl then Some tl.Tile.id else None)

let controller_tile t =
  match t.ctrl with
  | Some id -> id
  | None -> invalid_arg "Platform.controller_tile: spec had no controller tile"

let dram_exn t id =
  match (tile t id).Tile.dram with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Platform.dram_exn: tile %d has no DRAM" id)

let pp fmt t =
  Format.fprintf fmt "platform[%d tiles:" (Array.length t.tiles);
  Array.iter (fun tl -> Format.fprintf fmt " %a" Tile.pp tl) t.tiles;
  Format.fprintf fmt "]"

let fpga_spec ?(boom_tiles = 7) ?(rocket_tiles = 1) ?(mem_size = 64 * 1024 * 1024)
    () =
  (* Tile 0: controller on a Rocket core.  Tiles 1..: BOOM processing tiles,
     the first of which has the NIC; then Rocket processing tiles; then two
     memory tiles. *)
  let booms =
    List.init boom_tiles (fun i ->
        if i = 0 then Proc_with_nic Core_model.boom else Proc Core_model.boom)
  in
  let rockets = List.init rocket_tiles (fun _ -> Proc Core_model.rocket) in
  (Ctrl Core_model.rocket :: booms) @ rockets @ [ Mem mem_size; Mem mem_size ]

let gem5_spec ?(user_tiles = 12) ?(mem_size = 256 * 1024 * 1024) () =
  Ctrl Core_model.x86_ooo
  :: List.init user_tiles (fun _ -> Proc Core_model.x86_ooo)
  @ [ Mem mem_size ]
