type kind = Rocket | Boom | X86_ooo

type t = {
  kind : kind;
  name : string;
  freq_hz : int;
  ps_per_cycle : int;
  mmio_cycles : int;
  cmd_setup_mmio : int;
  cmd_poll_mmio : int;
  trap_cycles : int;
  ctx_switch_cycles : int;
  sched_cycles : int;
  core_req_cycles : int;
  translate_cycles : int;
  pagefault_cycles : int;
  memcpy_bytes_per_cycle : int;
  ops_per_cycle : int;
}

let make ~kind ~name ~freq_hz ~mmio_cycles ~trap_cycles ~ctx_switch_cycles
    ~memcpy_bytes_per_cycle ~ops_per_cycle =
  {
    kind;
    name;
    freq_hz;
    ps_per_cycle = M3v_sim.Time.ps_per_cycle_of_hz freq_hz;
    mmio_cycles;
    cmd_setup_mmio = 5;
    cmd_poll_mmio = 2;
    trap_cycles;
    ctx_switch_cycles;
    sched_cycles = 180;
    core_req_cycles = 260;
    translate_cycles = 420;
    pagefault_cycles = 600;
    memcpy_bytes_per_cycle;
    ops_per_cycle;
  }

let rocket =
  make ~kind:Rocket ~name:"Rocket@100MHz" ~freq_hz:100_000_000 ~mmio_cycles:24
    ~trap_cycles:180 ~ctx_switch_cycles:1_050 ~memcpy_bytes_per_cycle:4
    ~ops_per_cycle:1

let boom =
  make ~kind:Boom ~name:"BOOM@80MHz" ~freq_hz:80_000_000 ~mmio_cycles:22
    ~trap_cycles:150 ~ctx_switch_cycles:950 ~memcpy_bytes_per_cycle:8
    ~ops_per_cycle:2

let x86_ooo =
  make ~kind:X86_ooo ~name:"x86-OOO@3GHz" ~freq_hz:3_000_000_000 ~mmio_cycles:40
    ~trap_cycles:150 ~ctx_switch_cycles:950 ~memcpy_bytes_per_cycle:16
    ~ops_per_cycle:4

let cycles t n = M3v_sim.Time.of_cycles ~ps_per_cycle:t.ps_per_cycle n

let cmd_overhead_cycles t =
  (t.cmd_setup_mmio + t.cmd_poll_mmio) * t.mmio_cycles

let memcpy_cycles t bytes =
  (bytes + t.memcpy_bytes_per_cycle - 1) / t.memcpy_bytes_per_cycle

let pp fmt t = Format.pp_print_string fmt t.name
