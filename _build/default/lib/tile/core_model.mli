(** Core timing models.

    Every simulated instruction-level cost is expressed in core cycles of a
    specific core model and converted to picoseconds through the core's
    clock.  The three models match the paper's platforms: Rocket (in-order
    RISC-V, 100 MHz on the FPGA), BOOM (out-of-order RISC-V, 80 MHz), and
    the 3 GHz out-of-order x86-64 used in gem5 for the M3x comparison.

    The cycle counts below are calibration constants: they are chosen so
    that the microbenchmark results land in the regimes the paper reports
    (e.g. a tile-local RPC of roughly 5k cycles on M3v), and they live here,
    in one place, so the calibration is auditable. *)

type kind = Rocket | Boom | X86_ooo

type t = {
  kind : kind;
  name : string;
  freq_hz : int;
  ps_per_cycle : int;
  (* --- core <-> vDTU interface --- *)
  mmio_cycles : int;  (** one uncached MMIO access to the DTU register file *)
  cmd_setup_mmio : int;  (** MMIO accesses to set up and launch a command *)
  cmd_poll_mmio : int;  (** MMIO accesses to poll a command to completion *)
  (* --- traps and context switching (TileMux / kernel-level code) --- *)
  trap_cycles : int;  (** trap entry + exit (ecall or interrupt) *)
  ctx_switch_cycles : int;
      (** save/restore integer state + address-space switch + cache/TLB
          refill disturbance *)
  sched_cycles : int;  (** scheduling decision *)
  core_req_cycles : int;  (** handle one vDTU core request *)
  translate_cycles : int;  (** page-table walk for a vDTU TLB miss *)
  pagefault_cycles : int;  (** TileMux part of handling a page fault *)
  (* --- data movement by software --- *)
  memcpy_bytes_per_cycle : int;
  (* --- generic compute throughput scaling --- *)
  ops_per_cycle : int;  (** abstract work units retired per cycle *)
}

val rocket : t
val boom : t
val x86_ooo : t

(** Convert a cycle count on this core to simulated time. *)
val cycles : t -> int -> M3v_sim.Time.t

(** Cost in cycles of issuing a DTU command and polling its completion
    (excluding the command's own latency). *)
val cmd_overhead_cycles : t -> int

(** Cost of copying [bytes] with the core. *)
val memcpy_cycles : t -> int -> int

val pp : Format.formatter -> t -> unit
