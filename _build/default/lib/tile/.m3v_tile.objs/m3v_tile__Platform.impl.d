lib/tile/platform.ml: Array Core_model Format List M3v_dtu M3v_noc M3v_sim Printf Tile
