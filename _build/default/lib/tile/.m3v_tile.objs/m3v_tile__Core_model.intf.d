lib/tile/core_model.mli: Format M3v_sim
