lib/tile/tile.mli: Core_model Format M3v_dtu
