lib/tile/platform.mli: Core_model Format M3v_dtu M3v_noc M3v_sim Tile
