lib/tile/core_model.ml: Format M3v_sim
