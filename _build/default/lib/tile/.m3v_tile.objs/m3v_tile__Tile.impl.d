lib/tile/tile.ml: Core_model Format M3v_dtu
