(** Platform builder: instantiates tiles, their (v)DTUs, DRAM backings and
    the NoC, and wires the DTUs' cross-tile lookups. *)

type tile_spec =
  | Proc of Core_model.t
  | Proc_with_nic of Core_model.t
  | Ctrl of Core_model.t
  | Mem of int  (** DRAM size in bytes *)
  | Accel of string  (** fixed-function accelerator tile *)

type t

(** [create engine ~virtualized ~tiles ()] builds a platform.

    [virtualized] selects vDTUs (M3v) or plain DTUs (M3/M3x) for processing
    tiles; controller and memory tiles always get plain DTUs, as in the
    paper's Figure 3.  The default topology is the 2x2 star-mesh. *)
val create :
  ?topology:M3v_noc.Topology.t ->
  ?noc_params:M3v_noc.Noc.params ->
  ?ep_count:int ->
  ?tlb_capacity:int ->
  virtualized:bool ->
  tiles:tile_spec list ->
  M3v_sim.Engine.t ->
  unit ->
  t

val engine : t -> M3v_sim.Engine.t
val noc : t -> M3v_noc.Noc.t
val tile_count : t -> int
val tile : t -> int -> Tile.t
val dtu : t -> int -> M3v_dtu.Dtu.t
val core_exn : t -> int -> Core_model.t

(** Ids of all memory tiles, in order. *)
val memory_tiles : t -> int list

(** Ids of all processing tiles, in order. *)
val processing_tiles : t -> int list

(** The controller tile's id.  Raises if the spec had none. *)
val controller_tile : t -> int

val dram_exn : t -> int -> M3v_dtu.Dram.t
val pp : Format.formatter -> t -> unit

(** The paper's FPGA platform (section 4.1): eight RISC-V processing tiles
    (one with a NIC), two DDR4 memory tiles; we reserve one additional
    Rocket tile for the controller, which the paper runs on a Rocket core
    (section 6.5.2).  [boom_tiles]/[rocket_tiles] override the processing
    mix (default 7 BOOM + 1 Rocket, NIC on the first BOOM tile). *)
val fpga_spec :
  ?boom_tiles:int -> ?rocket_tiles:int -> ?mem_size:int -> unit -> tile_spec list

(** The gem5 configuration of section 6.4: [user_tiles] x86-OOO tiles, one
    x86-OOO controller tile, one memory tile. *)
val gem5_spec : ?user_tiles:int -> ?mem_size:int -> unit -> tile_spec list
