(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the simulation (workload generators, Zipfian
    sampling, synthetic audio) draws from an explicitly seeded [Rng.t], so
    that runs are reproducible bit-for-bit. *)

type t

val create : seed:int -> t

(** A statistically independent stream split off from [t]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Fisher-Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit
