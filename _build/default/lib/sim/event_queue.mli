(** A binary min-heap of timestamped events.

    Events with equal timestamps pop in insertion order (FIFO), which keeps
    the simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

(** [push q ~time v] inserts [v] with the given timestamp. *)
val push : 'a t -> time:Time.t -> 'a -> unit

(** [pop q] removes and returns the earliest event, or [None] if empty. *)
val pop : 'a t -> (Time.t * 'a) option

(** [peek_time q] is the timestamp of the earliest event without removing
    it. *)
val peek_time : 'a t -> Time.t option

val clear : 'a t -> unit
