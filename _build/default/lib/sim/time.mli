(** Simulated time.

    Time is an integer count of picoseconds since simulation start.  One
    picosecond of resolution lets the simulator mix clock domains precisely:
    a 3 GHz core cycle is 333 ps, an 80 MHz BOOM cycle is 12500 ps, and the
    63-bit range still covers more than a simulated month. *)

type t = int

val zero : t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

(** [ps_per_cycle_of_hz hz] is the (rounded) duration of one cycle of a
    [hz]-Hertz clock, in picoseconds. *)
val ps_per_cycle_of_hz : int -> int

(** [of_cycles ~ps_per_cycle n] is the duration of [n] cycles. *)
val of_cycles : ps_per_cycle:int -> int -> t

(** [to_cycles ~ps_per_cycle t] is the number of whole cycles of the given
    clock that fit in [t]. *)
val to_cycles : ps_per_cycle:int -> t -> int

val pp : Format.formatter -> t -> unit
