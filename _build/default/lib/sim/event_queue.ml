type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

(* [before a b] orders by time, then insertion sequence. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let new_capacity = Stdlib.max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let push q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  (* Sift the new entry up to restore the heap invariant. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before q.heap.(i) q.heap.(parent) then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(parent);
        q.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Sift the moved entry down. *)
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < q.size && before q.heap.(left) q.heap.(!smallest) then
          smallest := left;
        if right < q.size && before q.heap.(right) q.heap.(!smallest) then
          smallest := right;
        if !smallest <> i then begin
          let tmp = q.heap.(i) in
          q.heap.(i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.value)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let clear q =
  q.size <- 0;
  q.heap <- [||]
