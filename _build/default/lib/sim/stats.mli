(** Small statistics helpers for benchmark results. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

(** Summarize a sample.  Raises [Invalid_argument] on an empty list. *)
val summarize : float list -> summary

val mean : float list -> float
val stddev : float list -> float

(** [percentile p xs] with [p] in [0, 100], linear interpolation. *)
val percentile : float -> float list -> float

val pp_summary : Format.formatter -> summary -> unit

(** An accumulating counter keyed by string, used for runtime accounting
    (user/system time, per-component cycles, event counts). *)
module Counter : sig
  type t

  val create : unit -> t
  val add : t -> string -> float -> unit
  val incr : t -> string -> unit
  val get : t -> string -> float
  val to_list : t -> (string * float) list
  val reset : t -> unit
end
