(** Continuation-monad processes.

    Activity, service, and benchmark code is written in direct style using
    [let*] over primitive operations; a runtime (TileMux-backed M3v tile,
    the M3x variant, or the Linux model) interprets the resulting [action]
    tree, charging simulated time for each primitive and blocking/resuming
    processes as the protocol demands.

    The operation and response types are extensible variants so that each
    runtime can contribute its own primitives without a central registry. *)

type op = ..
type resp = ..

type resp += Unit | Error of string

(** A suspended process: either finished or requesting a primitive together
    with the continuation to run on its response. *)
type action = Finished | Request of op * (resp -> action)

(** A process computing an ['a]. *)
type 'a t = ('a -> action) -> action

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

(** [perform op decode] requests primitive [op] and decodes the runtime's
    response.  [decode] should raise (via [decode_error]) on a response of
    the wrong shape — that is a runtime bug, not a recoverable error. *)
val perform : op -> (resp -> 'a) -> 'a t

(** [perform_unit op] requests [op] and expects [Unit] back. *)
val perform_unit : op -> unit t

(** Raise a [Failure] describing an unexpected response shape. *)
val decode_error : string -> resp -> 'a

(** Turn a complete process into an action tree for a runtime. *)
val run : unit t -> action

(** Sequence a list of processes. *)
val iter_list : ('a -> unit t) -> 'a list -> unit t

(** [repeat n f] runs [f i] for [i = 0 .. n-1]. *)
val repeat : int -> (int -> unit t) -> unit t

(** Fold over a list inside the monad. *)
val fold_list : ('acc -> 'a -> 'acc t) -> 'acc -> 'a list -> 'acc t
