type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (sq /. float_of_int (List.length xs - 1))

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ ->
      if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
      let sorted = List.sort compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then arr.(lo)
      else
        let frac = rank -. float_of_int lo in
        arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      {
        n = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left Stdlib.min infinity xs;
        max = List.fold_left Stdlib.max neg_infinity xs;
        median = percentile 50.0 xs;
      }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max

module Counter = struct
  type t = (string, float ref) Hashtbl.t

  let create () = Hashtbl.create 16

  let cell t key =
    match Hashtbl.find_opt t key with
    | Some r -> r
    | None ->
        let r = ref 0.0 in
        Hashtbl.add t key r;
        r

  let add t key v = cell t key := !(cell t key) +. v
  let incr t key = add t key 1.0
  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0.0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset t = Hashtbl.reset t
end
