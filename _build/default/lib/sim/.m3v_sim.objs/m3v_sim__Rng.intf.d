lib/sim/rng.mli:
