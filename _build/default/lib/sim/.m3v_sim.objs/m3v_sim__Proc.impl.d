lib/sim/proc.ml: Printf
