lib/sim/engine.ml: Event_queue Format Time
