lib/sim/proc.mli:
