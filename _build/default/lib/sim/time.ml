type t = int

let zero = 0
let ps x = x
let ns x = x * 1_000
let us x = x * 1_000_000
let ms x = x * 1_000_000_000
let s x = x * 1_000_000_000_000
let add = ( + )
let sub = ( - )
let compare = Int.compare
let min = Stdlib.min
let max = Stdlib.max
let to_ns t = float_of_int t /. 1e3
let to_us t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e9
let to_s t = float_of_int t /. 1e12

let ps_per_cycle_of_hz hz =
  if hz <= 0 then invalid_arg "Time.ps_per_cycle_of_hz";
  Stdlib.max 1 ((1_000_000_000_000 + (hz / 2)) / hz)

let of_cycles ~ps_per_cycle n = ps_per_cycle * n
let to_cycles ~ps_per_cycle t = t / ps_per_cycle

let pp fmt t =
  if t >= s 1 then Format.fprintf fmt "%.3fs" (to_s t)
  else if t >= ms 1 then Format.fprintf fmt "%.3fms" (to_ms t)
  else if t >= us 1 then Format.fprintf fmt "%.3fus" (to_us t)
  else if t >= ns 1 then Format.fprintf fmt "%.1fns" (to_ns t)
  else Format.fprintf fmt "%dps" t
