(** Network-on-chip topologies.

    A topology connects [tiles] tiles through routers.  Every tile has a
    dedicated injection link (tile -> router) and ejection link
    (router -> tile); routers are connected by directed links.  Routes are
    shortest paths, precomputed and deterministic. *)

type t

(** The paper's platform: four routers in a 2x2 mesh ("star-mesh"), tiles
    spread round-robin across the routers.  [tiles] >= 1. *)
val star_mesh_2x2 : tiles:int -> t

(** A [cols] x [rows] router mesh with XY routing order (by BFS). *)
val mesh : cols:int -> rows:int -> tiles:int -> t

(** A unidirectional-pair ring of [routers] routers. *)
val ring : routers:int -> tiles:int -> t

(** A single router connecting all tiles (crossbar). *)
val single_router : tiles:int -> t

val tiles : t -> int
val routers : t -> int

(** Total number of directed links (tile links + router links). *)
val link_count : t -> int

(** [route t ~src ~dst] is the ordered list of directed link ids a packet
    traverses from tile [src] to tile [dst].  [src = dst] yields []. *)
val route : t -> src:int -> dst:int -> int list

(** Number of router-to-router hops between two tiles. *)
val hops : t -> src:int -> dst:int -> int

(** Human-readable link name, for stats reporting. *)
val link_name : t -> int -> string
