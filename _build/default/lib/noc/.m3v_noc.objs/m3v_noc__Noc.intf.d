lib/noc/noc.mli: M3v_sim Topology
