lib/noc/noc.ml: Array List M3v_sim Topology
