lib/noc/topology.ml: Array Hashtbl List Printf Queue
