lib/noc/topology.mli:
