type t = {
  tiles : int;
  routers : int;
  tile_router : int array; (* router each tile attaches to *)
  edges : (int * int) array; (* directed router-router edges *)
  edge_index : (int * int, int) Hashtbl.t;
  next_hop : int array array; (* next_hop.(from_router).(to_router) = router *)
}

(* Link id layout: [0, tiles) injection; [tiles, 2*tiles) ejection;
   [2*tiles, ...) router-router edges in [edges] order. *)
let inject_link t tile = ignore t; tile
let eject_link t tile = t.tiles + tile
let edge_link t idx = (2 * t.tiles) + idx

let build ~tiles ~routers ~tile_router ~undirected_edges =
  if tiles < 1 then invalid_arg "Topology: need at least one tile";
  let edges =
    List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) undirected_edges
    |> Array.of_list
  in
  let edge_index = Hashtbl.create 16 in
  Array.iteri (fun i e -> Hashtbl.replace edge_index e i) edges;
  (* BFS from every router to fill the next-hop matrix. *)
  let adj = Array.make routers [] in
  Array.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  let next_hop = Array.make_matrix routers routers (-1) in
  for src = 0 to routers - 1 do
    let dist = Array.make routers max_int in
    let first = Array.make routers (-1) in
    dist.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            first.(v) <- (if u = src then v else first.(u));
            Queue.add v queue
          end)
        adj.(u)
    done;
    for dst = 0 to routers - 1 do
      if dst = src then next_hop.(src).(dst) <- src
      else if dist.(dst) = max_int then
        invalid_arg "Topology: disconnected router graph"
      else next_hop.(src).(dst) <- first.(dst)
    done
  done;
  { tiles; routers; tile_router; edges; edge_index; next_hop }

let spread_tiles ~tiles ~routers =
  Array.init tiles (fun i -> i mod routers)

let star_mesh_2x2 ~tiles =
  build ~tiles ~routers:4
    ~tile_router:(spread_tiles ~tiles ~routers:4)
    ~undirected_edges:[ (0, 1); (1, 3); (3, 2); (2, 0) ]

let mesh ~cols ~rows ~tiles =
  if cols < 1 || rows < 1 then invalid_arg "Topology.mesh";
  let routers = cols * rows in
  let id c r = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id c r, id (c + 1) r) :: !edges;
      if r + 1 < rows then edges := (id c r, id c (r + 1)) :: !edges
    done
  done;
  build ~tiles ~routers
    ~tile_router:(spread_tiles ~tiles ~routers)
    ~undirected_edges:!edges

let ring ~routers ~tiles =
  if routers < 2 then invalid_arg "Topology.ring";
  let edges = List.init routers (fun i -> (i, (i + 1) mod routers)) in
  build ~tiles ~routers
    ~tile_router:(spread_tiles ~tiles ~routers)
    ~undirected_edges:edges

let single_router ~tiles =
  build ~tiles ~routers:1 ~tile_router:(Array.make tiles 0) ~undirected_edges:[]

let tiles t = t.tiles
let routers t = t.routers
let link_count t = (2 * t.tiles) + Array.length t.edges

let route t ~src ~dst =
  if src < 0 || src >= t.tiles || dst < 0 || dst >= t.tiles then
    invalid_arg "Topology.route: tile out of range";
  if src = dst then []
  else begin
    let r_src = t.tile_router.(src) and r_dst = t.tile_router.(dst) in
    let rec walk r acc =
      if r = r_dst then List.rev acc
      else
        let next = t.next_hop.(r).(r_dst) in
        let edge = Hashtbl.find t.edge_index (r, next) in
        walk next (edge_link t edge :: acc)
    in
    (inject_link t src :: walk r_src []) @ [ eject_link t dst ]
  end

let hops t ~src ~dst =
  if src = dst then 0
  else
    let rec count r acc =
      let r_dst = t.tile_router.(dst) in
      if r = r_dst then acc else count t.next_hop.(r).(r_dst) (acc + 1)
    in
    count t.tile_router.(src) 0

let link_name t id =
  if id < t.tiles then Printf.sprintf "tile%d->noc" id
  else if id < 2 * t.tiles then Printf.sprintf "noc->tile%d" (id - t.tiles)
  else
    let a, b = t.edges.(id - (2 * t.tiles)) in
    Printf.sprintf "r%d->r%d" a b
