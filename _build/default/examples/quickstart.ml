(* Quickstart: build an M3v system, spawn two activities on different
   tiles, establish a channel through the controller, and measure no-op
   RPC round trips over the vDTU fast path.

   Run with: dune exec examples/quickstart.exe *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module System = M3v.System

(* Application-level protocol: one constructor per message kind. *)
type Msg.data += Ping of int | Pong of int

let rounds = 200

(* The server: answer [rounds] pings with pongs. *)
let server_program rgate _env =
  Proc.repeat rounds (fun _ ->
      let* _ep, msg = A.recv ~eps:[ !rgate ] in
      let x = match msg.Msg.data with Ping x -> x | _ -> failwith "bad ping" in
      A.reply ~recv_ep:!rgate ~msg ~size:8 (Pong (x + 1)))

(* The client: send pings, check pongs, time the loop. *)
let client_program chan result _env =
  let sgate, reply_ep = !chan in
  let* t0 = A.now in
  let* () =
    Proc.repeat rounds (fun i ->
        let* reply = A.call ~sgate ~reply_ep ~size:8 (Ping i) in
        match reply.Msg.data with
        | Pong x when x = i + 1 -> Proc.return ()
        | _ -> failwith "bad pong")
  in
  let* t1 = A.now in
  result := Time.sub t1 t0;
  Proc.return ()

let () =
  (* The paper's FPGA platform: controller on a Rocket tile, BOOM user
     tiles, two DRAM tiles, a 2x2 star-mesh NoC. *)
  let sys = System.create ~variant:System.M3v () in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let elapsed = ref Time.zero in
  let server, _ = System.spawn sys ~tile:2 ~name:"server" (server_program rgate) in
  let client, _ =
    System.spawn sys ~tile:3 ~name:"client" (client_program chan elapsed)
  in
  (* Only the controller can establish communication channels. *)
  let ch = System.channel sys ~src:client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  Format.printf "quickstart: %d RPC round trips on %s@." rounds
    (match System.variant sys with M3v -> "M3v" | M3x -> "M3x");
  Format.printf "  total simulated time: %a@." Time.pp !elapsed;
  Format.printf "  per RPC:              %a (%.0f cycles at 80 MHz)@." Time.pp
    (!elapsed / rounds)
    (Time.to_us (!elapsed / rounds) *. 80.0);
  let stats = M3v_noc.Noc.stats (M3v_tile.Platform.noc (System.platform sys)) in
  Format.printf "  NoC packets:          %d@." stats.M3v_noc.Noc.packets
