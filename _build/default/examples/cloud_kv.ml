(* The cloud half of the voice-activation system: an LSM key-value store
   (the leveldb stand-in) running against m3fs on M3v, serving a YCSB
   workload and shipping results to the peer machine over UDP.

   Run with: dune exec examples/cloud_kv.exe *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Rng = M3v_sim.Rng
module System = M3v.System
module Services = M3v.Services
module Kvstore = M3v_apps.Kvstore
module Ycsb = M3v_apps.Ycsb
module Nic = M3v_os.Nic

let records = 100
let operations = 150

let () =
  let sys = System.create ~variant:System.M3v () in
  ignore (System.with_pager sys ~tile:4);
  let fs = Services.make_fs sys ~tile:3 ~blocks:8192 () in
  let net = Services.make_net sys ~host:Nic.Sink () in
  let rng = Rng.create ~seed:2024 in
  let load = Ycsb.load ~records ~value_size:512 rng in
  let ops = Ycsb.ops Ycsb.Mixed ~records ~count:operations rng in
  let vfs_box = ref None and udp_box = ref None in
  let stats = ref (0, 0, Time.zero) in
  let db, env =
    System.spawn sys ~tile:2 ~name:"db" ~premap:false (fun _ ->
        let vfs = Option.get !vfs_box in
        let udp = Option.get !udp_box in
        let* sock = udp.M3v_os.Net_client.u_socket () in
        let* store = Kvstore.create ~vfs ~dir:"/db" () in
        let store = match store with Ok s -> s | Error e -> failwith e in
        let* t0 = M3v_mux.Act_api.now in
        let* () =
          Proc.iter_list (fun (key, value) -> Kvstore.put store ~key ~value) load
        in
        let hits = ref 0 in
        let* () =
          Proc.iter_list
            (fun op ->
              match op with
              | Ycsb.Read key ->
                  let* v = Kvstore.get store ~key in
                  if v <> None then incr hits;
                  Proc.return ()
              | Ycsb.Insert (key, value) | Ycsb.Update (key, value) ->
                  Kvstore.put store ~key ~value
              | Ycsb.Scan (key, count) ->
                  let* items = Kvstore.scan store ~start:key ~count in
                  let* () =
                    udp.M3v_os.Net_client.u_sendto sock (1, 9000)
                      (Bytes.of_string (Printf.sprintf "scan:%d" (List.length items)))
                  in
                  if items <> [] then incr hits;
                  Proc.return ())
            ops
        in
        let* t1 = M3v_mux.Act_api.now in
        stats := (!hits, Kvstore.sstable_count store, Time.sub t1 t0);
        Proc.return ())
  in
  vfs_box := Some (M3v_os.Fs_client.to_vfs (fs.Services.connect db env));
  udp_box := Some (M3v_os.Net_client.to_udp (net.Services.net_connect db env));
  System.boot sys;
  ignore (System.run sys);
  let hits, tables, elapsed = !stats in
  Format.printf "cloud_kv: %d records loaded, %d YCSB ops executed on M3v@."
    records operations;
  Format.printf "  simulated runtime:   %a@." Time.pp elapsed;
  Format.printf "  throughput:          %.0f ops/s (80 MHz BOOM)@."
    (float_of_int operations /. Time.to_s elapsed);
  Format.printf "  hits:                %d, SSTables: %d@." hits tables;
  let m = M3v_os.M3fs.stats fs.Services.fs_handle in
  Format.printf "  m3fs: %d ops, %d extents granted, %d blocks cleared@."
    m.M3v_os.M3fs.ops m.M3v_os.M3fs.extents_granted m.M3v_os.M3fs.blocks_cleared;
  let n = M3v_os.Nic.stats net.Services.nic in
  Format.printf "  NIC: %d frames sent to the peer@." n.M3v_os.Nic.tx
