examples/quickstart.ml: Format M3v M3v_dtu M3v_mux M3v_noc M3v_sim M3v_tile
