examples/cloud_kv.mli:
