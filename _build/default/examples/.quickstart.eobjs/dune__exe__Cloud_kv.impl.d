examples/cloud_kv.ml: Bytes Format List M3v M3v_apps M3v_mux M3v_os M3v_sim Option Printf
