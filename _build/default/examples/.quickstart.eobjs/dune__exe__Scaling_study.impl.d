examples/scaling_study.ml: Format List M3v M3v_apps
