examples/voice_pipeline.ml: Array Format M3v Sys
