examples/voice_pipeline.mli:
