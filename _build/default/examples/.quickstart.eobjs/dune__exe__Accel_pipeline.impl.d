examples/accel_pipeline.ml: Buffer Bytes Char Format List M3v M3v_dtu M3v_kernel M3v_mux M3v_os M3v_sim M3v_tile Option
