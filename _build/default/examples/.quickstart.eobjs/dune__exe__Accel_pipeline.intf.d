examples/accel_pipeline.mli:
