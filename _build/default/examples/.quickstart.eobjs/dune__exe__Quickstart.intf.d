examples/quickstart.mli:
