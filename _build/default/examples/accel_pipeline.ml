(* The autonomous-accelerator pipeline from M3x's shell example (paper,
   Figure 2):

       sh $ decode in.png | fft | mul | ifft > out.raw

   A software stage (decode) reads the image from m3fs and streams it into
   three fixed-function accelerator tiles, which process and forward each
   block without any CPU involvement; a software sink collects the result
   and writes it back to the file system.  We substitute integer image
   stages for the FFT-convolution chain — decode: unpack; "fft": horizontal
   gradient; "mul": vertical gradient; "ifft": magnitude clamp — which
   together compute real edge detection, verifiable on the output.

   Run with: dune exec examples/accel_pipeline.exe *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module System = M3v.System
module Services = M3v.Services
module Accel = M3v_os.Accel
module Controller = M3v_kernel.Controller
module Platform = M3v_tile.Platform
module Core_model = M3v_tile.Core_model

let width = 64
let height = 64
let block_rows = 8
let block = width * block_rows

(* A synthetic "photo": smooth gradients with a bright rectangle, so the
   edge detector has something to find. *)
let image =
  Bytes.init (width * height) (fun i ->
      let x = i mod width and y = i / width in
      let base = (x + y) / 2 in
      let box = if x > 20 && x < 44 && y > 20 && y < 44 then 120 else 0 in
      Char.chr (min 255 (base + box)))

(* The three "accelerator kernels" (stand-ins for fft | mul | ifft). *)
let gradient_x payload =
  Bytes.init (Bytes.length payload) (fun i ->
      if i mod width = 0 then '\000'
      else
        Char.chr
          (min 255 (abs (Char.code (Bytes.get payload i)
                         - Char.code (Bytes.get payload (i - 1))))) )

let gradient_y payload =
  Bytes.init (Bytes.length payload) (fun i ->
      if i < width then '\000'
      else
        Char.chr
          (min 255 (abs (Char.code (Bytes.get payload i)
                         - Char.code (Bytes.get payload (i - width))))) )

let clamp payload =
  Bytes.map (fun c -> if Char.code c > 32 then '\255' else '\000') payload

let () =
  (* Platform: controller, two BOOM tiles (decode + sink), three
     accelerator tiles, one memory tile. *)
  let spec =
    [
      Platform.Ctrl Core_model.rocket;
      Platform.Proc Core_model.boom;
      Platform.Proc Core_model.boom;
      Platform.Accel "fft";
      Platform.Accel "mul";
      Platform.Accel "ifft";
      Platform.Mem (16 * 1024 * 1024);
    ]
  in
  let sys = System.create ~spec ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let fs = Services.make_fs sys ~tile:2 ~blocks:256 () in
  Services.preload_file sys fs ~path:"/in.raw" image;
  let blocks_total = height / block_rows in

  (* Software sink: collect processed blocks, write /out.raw. *)
  let sink_rgate = ref (-1) in
  let sink_done = ref false in
  let sink_client = ref None in
  let sink, sink_env =
    System.spawn sys ~tile:2 ~name:"sink" (fun _ ->
        let out = Buffer.create (width * height) in
        let rec collect () =
          let* _ep, msg = A.recv ~eps:[ !sink_rgate ] in
          match msg.Msg.data with
          | Accel.Data payload ->
              Buffer.add_bytes out payload;
              let* () = A.ack ~ep:!sink_rgate msg in
              collect ()
          | Accel.End_of_stream ->
              let* () = A.ack ~ep:!sink_rgate msg in
              let vfs = M3v_os.Fs_client.to_vfs (Option.get !sink_client) in
              let* r = M3v_os.Vfs.write_file vfs "/out.raw" (Buffer.to_bytes out) in
              (match r with Ok () -> sink_done := true | Error e -> failwith e);
              Proc.return ()
          | _ -> collect ()
        in
        collect ())
  in
  sink_client := Some (fs.Services.connect sink sink_env);

  (* Software source: decode = read the image and stream blocks into the
     first accelerator. *)
  let src_sgate = ref (-1) in
  let src_client = ref None in
  let source, source_env =
    System.spawn sys ~tile:1 ~name:"decode" (fun _ ->
        let client = Option.get !src_client in
        let* fd = M3v_os.Fs_client.open_ client "/in.raw" M3v_os.Fs_proto.rdonly in
        let fd = match fd with Ok fd -> fd | Error e -> failwith e in
        let* buf = A.alloc_buf block in
        let* () =
          Proc.repeat blocks_total (fun _ ->
              let* n = M3v_os.Fs_client.read client ~fd ~buf ~len:block in
              if n <> block then failwith "short image read";
              A.send ~ep:!src_sgate ~size:block
                (Accel.Data (Bytes.sub buf.M3v_mux.Act_ops.data 0 block)))
        in
        let* () = M3v_os.Fs_client.close client ~fd in
        A.send ~ep:!src_sgate ~size:8 Accel.End_of_stream)
  in
  src_client := Some (fs.Services.connect source source_env);

  (* Controller-style wiring of the accelerator chain: each stage gets a
     receive gate and a send endpoint to the next stage. *)
  let accel_tiles = [ 3; 4; 5 ] in
  let transforms = [ gradient_x; gradient_y; clamp ] in
  let slot = block + 64 in
  let mk_rgate tile =
    let dtu = Platform.dtu (System.platform sys) tile in
    let ep = Controller.host_alloc_ep_anon ctrl ~tile in
    M3v_dtu.Dtu.ext_config dtu ~ep ~owner:0
      (M3v_dtu.Ep.recv_config ~slots:4 ~slot_size:slot ());
    ep
  in
  let accel_rgates = List.map mk_rgate accel_tiles in
  (* Sink's receive gate through the ordinary capability path. *)
  let sink_rgate_sel = Controller.host_new_rgate ctrl ~act:sink ~slots:4 ~slot_size:slot in
  sink_rgate := Controller.host_activate ctrl ~act:sink ~sel:sink_rgate_sel ();
  let mk_sgate tile (dst_tile, dst_ep) =
    let dtu = Platform.dtu (System.platform sys) tile in
    let ep = Controller.host_alloc_ep_anon ctrl ~tile in
    M3v_dtu.Dtu.ext_config dtu ~ep ~owner:0
      (M3v_dtu.Ep.send_config ~dst_tile ~dst_ep ~max_msg_size:(slot - 16)
         ~credits:4 ());
    ep
  in
  let stage_targets =
    (* fft -> mul -> ifft -> sink *)
    List.tl (List.map2 (fun t r -> (t, r)) accel_tiles accel_rgates)
    @ [ (2, !sink_rgate) ]
  in
  let accels =
    List.map2
      (fun (tile, rgate) ((next_tile, next_ep), transform) ->
        let out_ep = mk_sgate tile (next_tile, next_ep) in
        Accel.attach ~engine:(System.engine sys)
          ~dtu:(Platform.dtu (System.platform sys) tile)
          ~rgate ~out_ep ~ns_per_byte:12 ~transform ())
      (List.map2 (fun t r -> (t, r)) accel_tiles accel_rgates)
      (List.map2 (fun t f -> (t, f)) stage_targets transforms)
  in
  (* Source's send gate into the first accelerator. *)
  src_sgate :=
    (let dtu_tile = 1 in
     let ep = Controller.host_alloc_ep ctrl ~tile:dtu_tile ~act:source in
     M3v_dtu.Dtu.ext_config
       (Platform.dtu (System.platform sys) dtu_tile)
       ~ep ~owner:source
       (M3v_dtu.Ep.send_config ~dst_tile:(List.hd accel_tiles)
          ~dst_ep:(List.hd accel_rgates) ~max_msg_size:(slot - 16) ~credits:4 ());
     ep);

  System.boot sys;
  ignore (System.run sys);

  (* Verify the pipeline output against a host-side reference. *)
  let reference = clamp (gradient_y (gradient_x image)) in
  match Services.peek_file sys fs ~path:"/out.raw" with
  | Some out when !sink_done ->
      let edges =
        Bytes.fold_left (fun acc c -> if c = '\255' then acc + 1 else acc) 0 out
      in
      Format.printf "accel pipeline: decode | fft | mul | ifft > /out.raw@.";
      Format.printf "  %dx%d image, %d blocks, %d edge pixels detected@." width
        height blocks_total edges;
      List.iteri
        (fun i a ->
          Format.printf "  stage %d: %d messages, %d bytes in@." i
            (Accel.processed a) (Accel.bytes_in a))
        accels;
      Format.printf "  output matches host-side reference: %b@."
        (Bytes.equal out reference);
      Format.printf "  simulated time: %a@." Time.pp
        (M3v_sim.Engine.now (System.engine sys))
  | _ -> failwith "pipeline did not complete"
