(* The IoT voice assistant from the paper's section 6.5.1, end to end:
   a trigger-word scanner on an isolated Rocket tile, the FLAC compressor,
   the net service on the NIC tile, and the pager, with the audio region
   delegated from scanner to compressor via memory capabilities.

   Run with: dune exec examples/voice_pipeline.exe [--shared] *)

let () =
  let shared = Array.exists (( = ) "--shared") Sys.argv in
  Format.printf "voice pipeline (%s placement): synthesizing room audio...@."
    (if shared then "shared" else "isolated");
  let result = M3v.Exp_voice.run ~runs:4 ~warmup:1 ~audio_seconds:12.0 () in
  let bar =
    if shared then result.M3v.Exp_voice.shared_ms
    else result.M3v.Exp_voice.isolated_ms
  in
  Format.printf "  trigger windows per repetition: %d@."
    result.M3v.Exp_voice.windows_per_rep;
  Format.printf "  FLAC compression ratio:         %.2fx (lossless)@."
    result.M3v.Exp_voice.compression_ratio;
  Format.printf "  pipeline time per repetition:   %.1f ms@." bar.M3v.Exp_common.mean;
  Format.printf "  sharing overhead vs isolated:   %.1f%%@."
    result.M3v.Exp_voice.overhead_percent
