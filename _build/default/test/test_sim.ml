open M3v_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time --- *)

let test_time_units () =
  check_int "ns" 1_000 (Time.ns 1);
  check_int "us" 1_000_000 (Time.us 1);
  check_int "ms" 1_000_000_000 (Time.ms 1);
  check_int "s" 1_000_000_000_000 (Time.s 1)

let test_time_cycles () =
  let ps_80mhz = Time.ps_per_cycle_of_hz 80_000_000 in
  check_int "80 MHz cycle" 12_500 ps_80mhz;
  let ps_3ghz = Time.ps_per_cycle_of_hz 3_000_000_000 in
  check_int "3 GHz cycle" 333 ps_3ghz;
  check_int "cycles round trip" 100
    (Time.to_cycles ~ps_per_cycle:ps_80mhz (Time.of_cycles ~ps_per_cycle:ps_80mhz 100))

let test_time_freq_rounding () =
  check_int "100 MHz" 10_000 (Time.ps_per_cycle_of_hz 100_000_000);
  check_bool "never zero" true (Time.ps_per_cycle_of_hz max_int >= 1)

(* --- Event_queue --- *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:30 "c";
  Event_queue.push q ~time:10 "a";
  Event_queue.push q ~time:20 "b";
  let order = List.init 3 (fun _ -> Event_queue.pop q |> Option.get |> snd) in
  Alcotest.(check (list string)) "min-heap order" [ "a"; "b"; "c" ] order;
  check_bool "drained" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iteri (fun i v -> Event_queue.push q ~time:(if i = 1 then 5 else 5) v)
    [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> Event_queue.pop q |> Option.get |> snd) in
  Alcotest.(check (list string)) "FIFO on equal timestamps" [ "x"; "y"; "z" ] order

let test_queue_many =
  QCheck.Test.make ~name:"event queue pops in sorted order" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun time -> Event_queue.push q ~time ()) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (time, ()) -> drain (time :: acc)
      in
      drain [] = List.sort compare times)

(* --- Engine --- *)

let test_engine_runs_in_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at eng ~time:(Time.ns 50) (fun () -> log := 2 :: !log);
  Engine.at eng ~time:(Time.ns 10) (fun () -> log := 1 :: !log);
  Engine.after eng ~delay:(Time.ns 100) (fun () -> log := 3 :: !log);
  let n = Engine.run eng in
  check_int "events processed" 3 n;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" (Time.ns 100) (Engine.now eng)

let test_engine_nested_scheduling () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.after eng ~delay:10 (fun () ->
      incr hits;
      Engine.after eng ~delay:10 (fun () ->
          incr hits;
          Engine.after eng ~delay:10 (fun () -> incr hits)));
  ignore (Engine.run eng);
  check_int "nested chain ran" 3 !hits;
  check_int "time accumulated" 30 (Engine.now eng)

let test_engine_horizon () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.after eng ~delay:10 (fun () -> incr hits);
  Engine.after eng ~delay:1000 (fun () -> incr hits);
  let n = Engine.run ~until:500 eng in
  check_int "only events before horizon" 1 n;
  check_int "clock moved to horizon" 500 (Engine.now eng);
  ignore (Engine.run eng);
  check_int "rest ran later" 2 !hits

let test_engine_rejects_past () =
  let eng = Engine.create () in
  Engine.after eng ~delay:100 (fun () -> ());
  ignore (Engine.run eng);
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.at: time 10ps is in the past (now 100ps)")
    (fun () -> Engine.at eng ~time:10 (fun () -> ()))

(* --- Proc --- *)

type Proc.op += Add_op of int
type Proc.resp += Sum of int

let run_proc p =
  (* A tiny runtime: sums Add_op operands. *)
  let total = ref 0 in
  let rec step = function
    | Proc.Finished -> ()
    | Proc.Request (Add_op n, k) ->
        total := !total + n;
        step (k (Sum !total))
    | Proc.Request (_, k) -> step (k Proc.Unit)
  in
  step (Proc.run p);
  !total

let test_proc_sequencing () =
  let open Proc.Syntax in
  let add n = Proc.perform (Add_op n) (function Sum s -> s | r -> Proc.decode_error "add" r) in
  let prog =
    let* a = add 1 in
    let* b = add 2 in
    let* c = add 3 in
    if a + b + c <> 1 + 3 + 6 then failwith "intermediate sums wrong";
    Proc.return ()
  in
  check_int "total" 6 (run_proc prog)

let test_proc_repeat () =
  let add n = Proc.perform (Add_op n) (fun _ -> ()) in
  check_int "repeat" 10 (run_proc (Proc.repeat 10 (fun _ -> add 1)))

let test_proc_fold_iter () =
  let add n = Proc.perform (Add_op n) (fun _ -> ()) in
  let open Proc.Syntax in
  let prog =
    let* () = Proc.iter_list add [ 5; 6 ] in
    let* total = Proc.fold_list (fun acc x -> Proc.map (fun () -> acc + x) (add x)) 0 [ 1; 2 ] in
    if total <> 3 then failwith "fold result wrong";
    Proc.return ()
  in
  check_int "ops summed" 14 (run_proc prog)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next a = Rng.next b)
  done

let test_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_split_independent () =
  let base = Rng.create ~seed:7 in
  let s1 = Rng.split base in
  let s2 = Rng.split base in
  let differ = ref false in
  for _ = 1 to 20 do
    if Rng.next s1 <> Rng.next s2 then differ := true
  done;
  check_bool "split streams differ" true !differ

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  check_int "n" 4 s.Stats.n

let test_stats_percentile () =
  let xs = List.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile 100.0 xs)

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant sample" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  let sd = Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-6)) "known stddev" 2.13809 sd

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.incr c "a";
  Stats.Counter.add c "b" 2.5;
  Alcotest.(check (float 1e-9)) "a" 2.0 (Stats.Counter.get c "a");
  Alcotest.(check (float 1e-9)) "b" 2.5 (Stats.Counter.get c "b");
  Alcotest.(check (float 1e-9)) "missing" 0.0 (Stats.Counter.get c "zzz");
  check_int "listing" 2 (List.length (Stats.Counter.to_list c))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("time cycles", `Quick, test_time_cycles);
    ("time freq rounding", `Quick, test_time_freq_rounding);
    ("event queue order", `Quick, test_queue_order);
    ("event queue fifo ties", `Quick, test_queue_fifo_ties);
    ("engine ordering", `Quick, test_engine_runs_in_order);
    ("engine nested", `Quick, test_engine_nested_scheduling);
    ("engine horizon", `Quick, test_engine_horizon);
    ("engine rejects past", `Quick, test_engine_rejects_past);
    ("proc sequencing", `Quick, test_proc_sequencing);
    ("proc repeat", `Quick, test_proc_repeat);
    ("proc fold/iter", `Quick, test_proc_fold_iter);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng shuffle", `Quick, test_rng_shuffle_permutes);
    ("stats summary", `Quick, test_stats_summary);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats counter", `Quick, test_counter);
  ]
  @ qsuite [ test_queue_many; test_rng_bounds ]
