(* Tests of the Linux single-tile model: syscall costs, tmpfs, UDP,
   scheduling, and getrusage accounting. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module Lx = M3v_linux.Lx_api
module Linux_sim = M3v_linux.Linux_sim
module A = M3v_mux.Act_api
module Nic = M3v_os.Nic
module Fs_proto = M3v_os.Fs_proto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_lx ?nic_host f =
  let engine = Engine.create () in
  let lx = Linux_sim.create engine () in
  (match nic_host with
  | Some host ->
      let nic = Nic.create ~engine ~host () in
      Linux_sim.attach_nic lx nic
  | None -> ());
  let pid = Linux_sim.spawn lx ~name:"proc" (f lx) in
  Linux_sim.boot lx;
  ignore (Engine.run engine);
  (lx, pid)

let test_syscall_cost_regime () =
  let total = ref Time.zero in
  let lx, pid =
    run_lx (fun _ ->
        let* t0 = A.now in
        let* () = Proc.repeat 100 (fun _ -> Lx.noop_syscall) in
        let* t1 = A.now in
        total := Time.sub t1 t0;
        Proc.return ())
  in
  check_bool "finished" true (Linux_sim.finished lx pid);
  let per_call = Time.to_us (!total / 100) in
  (* ~950 cycles at 80 MHz is ~12 us. *)
  check_bool (Printf.sprintf "syscall ~12us (got %.1f)" per_call) true
    (per_call > 8.0 && per_call < 16.0)

let test_tmpfs_roundtrip () =
  let ok = ref false in
  let _ =
    run_lx (fun lx ->
        ignore lx;
        let payload = Bytes.init 10_000 (fun i -> Char.chr (i land 0xff)) in
        let* r = M3v_os.Vfs.write_file Lx.vfs "/t.bin" payload in
        (match r with Ok () -> () | Error e -> failwith e);
        let* r = M3v_os.Vfs.read_all Lx.vfs "/t.bin" in
        (match r with
        | Ok b -> ok := Bytes.equal b payload
        | Error e -> failwith e);
        Proc.return ())
  in
  check_bool "tmpfs content round trip" true !ok

let test_tmpfs_metadata () =
  let names = ref [] in
  let _ =
    run_lx (fun _ ->
        let* r = Lx.mkdir "/d" in
        (match r with Ok () -> () | Error e -> failwith e);
        let* _ = Lx.open_ "/d/x" Fs_proto.wronly in
        let* _ = Lx.open_ "/d/y" Fs_proto.wronly in
        let* r = Lx.readdir "/d" in
        (match r with Ok n -> names := n | Error e -> failwith e);
        let* r = Lx.unlink "/d/x" in
        (match r with Ok () -> () | Error e -> failwith e);
        let* r = Lx.stat "/d/x" in
        (match r with Error _ -> () | Ok _ -> failwith "stat after unlink");
        Proc.return ())
  in
  Alcotest.(check (list string)) "listing" [ "x"; "y" ] (List.sort compare !names)

let test_udp_echo () =
  let got = ref Bytes.empty in
  let _ =
    run_lx ~nic_host:(Nic.Echo { turnaround = Time.us 20 }) (fun _ ->
        let* sock = Lx.socket in
        let* () = Lx.bind ~sock ~port:5000 in
        let* () = Lx.sendto ~sock ~dst:(1, 7000) (Bytes.of_string "hello") in
        let* _src, data = Lx.recvfrom ~sock in
        got := data;
        Lx.sock_close ~sock)
  in
  Alcotest.(check string) "echo payload" "hello" (Bytes.to_string !got)

let test_rusage_split () =
  let lx, pid =
    run_lx (fun _ ->
        let* () = A.compute 200_000 in
        Proc.repeat 50 (fun _ -> Lx.noop_syscall))
  in
  let user, sys = Linux_sim.rusage lx pid in
  check_bool "user time from compute" true (user >= Time.of_cycles ~ps_per_cycle:12_500 200_000);
  check_bool "sys time from syscalls" true (sys > Time.us 100);
  check_bool "user dominates" true (user > sys)

let test_two_processes_share_core () =
  let engine = Engine.create () in
  let lx = Linux_sim.create engine () in
  let done_at = Array.make 2 Time.zero in
  let worker i =
    let* () = A.compute 1_000_000 in
    let* t = A.now in
    done_at.(i) <- t;
    Proc.return ()
  in
  let _ = Linux_sim.spawn lx ~name:"w0" (worker 0) in
  let _ = Linux_sim.spawn lx ~name:"w1" (worker 1) in
  Linux_sim.boot lx;
  ignore (Engine.run engine);
  check_bool "both ran" true (done_at.(0) > Time.zero && done_at.(1) > Time.zero);
  (* One core: total wall time ~ sum of both computes. *)
  let latest = Time.max done_at.(0) done_at.(1) in
  check_bool "serialized on one core" true
    (latest >= Time.of_cycles ~ps_per_cycle:12_500 2_000_000);
  (* Timeslicing: both finish close together. *)
  check_bool "round robin interleaves" true
    (Time.sub latest (Time.min done_at.(0) done_at.(1)) < Time.ms 3)

let test_icache_penalty_only_after_user_work () =
  (* A tight syscall loop must not pay the icache refill (Figure 6
     depends on this); syscalls after long user phases must. *)
  let tight = ref Time.zero and cold = ref Time.zero in
  let _ =
    run_lx (fun _ ->
        let* t0 = A.now in
        let* () = Proc.repeat 50 (fun _ -> Lx.noop_syscall) in
        let* t1 = A.now in
        tight := (Time.sub t1 t0) / 50;
        let* t2 = A.now in
        let* () =
          Proc.repeat 50 (fun _ ->
              let* () = A.compute 100_000 in
              Lx.noop_syscall)
        in
        let* t3 = A.now in
        cold := ((Time.sub t3 t2) / 50) - Time.of_cycles ~ps_per_cycle:12_500 100_000;
        Proc.return ())
  in
  check_bool
    (Printf.sprintf "cold syscalls cost more (%.1fus vs %.1fus)" (Time.to_us !cold)
       (Time.to_us !tight))
    true
    (!cold > !tight + Time.us 10)

let test_linux_single_tile_claim () =
  (* The model is one core by construction: this documents the paper's
     constraint that Linux cannot span the non-coherent tiles. *)
  let lx, _ = run_lx (fun _ -> Proc.return ()) in
  check_bool "tmpfs exists" true (M3v_os.Fs_core.total_blocks (Linux_sim.tmpfs lx) > 0)

let suite =
  [
    ("syscall cost regime", `Quick, test_syscall_cost_regime);
    ("tmpfs roundtrip", `Quick, test_tmpfs_roundtrip);
    ("tmpfs metadata", `Quick, test_tmpfs_metadata);
    ("udp echo", `Quick, test_udp_echo);
    ("rusage split", `Quick, test_rusage_split);
    ("two processes share core", `Quick, test_two_processes_share_core);
    ("icache penalty gating", `Quick, test_icache_penalty_only_after_user_work);
    ("single tile", `Quick, test_linux_single_tile_claim);
  ]
