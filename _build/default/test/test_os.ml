(* File-system tests: Fs_core unit + property tests, and end-to-end m3fs
   service/client runs over the full simulator. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module A = M3v_mux.Act_api
module System = M3v.System
module Services = M3v.Services
module Fs_core = M3v_os.Fs_core
module Fs_client = M3v_os.Fs_client
module Fs_proto = M3v_os.Fs_proto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bs = Fs_core.block_size

(* --- Fs_core --- *)

let test_core_paths () =
  let fs = Fs_core.create ~blocks:128 () in
  (match Fs_core.mkdir fs "/a" with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Fs_core.mkdir fs "/a/b" with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Fs_core.create_file fs "/a/b/f.txt" with Ok _ -> () | Error e -> Alcotest.fail e);
  check_bool "lookup file" true (Fs_core.lookup fs "/a/b/f.txt" <> None);
  check_bool "lookup missing" true (Fs_core.lookup fs "/a/zzz" = None);
  (match Fs_core.readdir fs "/a" with
  | Ok [ "b" ] -> ()
  | Ok names -> Alcotest.failf "unexpected listing: %s" (String.concat "," names)
  | Error e -> Alcotest.fail e);
  (match Fs_core.mkdir fs "/a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate mkdir must fail");
  match Fs_core.stat fs "/a/b/f.txt" with
  | Ok st ->
      check_bool "file not dir" false st.Fs_core.st_is_dir;
      check_int "empty" 0 st.Fs_core.st_size
  | Error e -> Alcotest.fail e

let test_core_extent_cap () =
  let fs = Fs_core.create ~max_extent_blocks:4 ~blocks:256 () in
  let ino =
    match Fs_core.create_file fs "/big" with Ok i -> i | Error e -> Alcotest.fail e
  in
  (* Force allocation of 10 blocks: extents must respect the 4-block cap. *)
  let _, fresh = Fs_core.ensure_write_extent fs ino ~off:(10 * bs - 1) in
  check_bool "several extents" true (List.length fresh >= 3);
  List.iter
    (fun e -> check_bool "cap respected" true (e.Fs_core.e_blocks <= 4))
    fresh;
  Fs_core.set_size fs ino (10 * bs);
  check_int "blocks accounted" 12
    ((Fs_core.fstat fs ino).Fs_core.st_blocks);
  match Fs_core.check_invariants fs with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_core_sequential_is_contiguous () =
  let fs = Fs_core.create ~blocks:256 () in
  let ino =
    match Fs_core.create_file fs "/seq" with Ok i -> i | Error e -> Alcotest.fail e
  in
  let _, fresh = Fs_core.ensure_write_extent fs ino ~off:(64 * bs - 1) in
  (* An empty allocator must serve 64 sequential blocks as one extent. *)
  check_int "one extent" 1 (List.length fresh);
  check_int "64 blocks" 64 (List.hd fresh).Fs_core.e_blocks

let test_core_unlink_frees () =
  let fs = Fs_core.create ~blocks:64 () in
  let free0 = Fs_core.free_blocks fs in
  let ino =
    match Fs_core.create_file fs "/f" with Ok i -> i | Error e -> Alcotest.fail e
  in
  ignore (Fs_core.ensure_write_extent fs ino ~off:(20 * bs - 1));
  check_bool "blocks consumed" true (Fs_core.free_blocks fs < free0);
  (match Fs_core.unlink fs "/f" with Ok () -> () | Error e -> Alcotest.fail e);
  check_int "all freed" free0 (Fs_core.free_blocks fs);
  match Fs_core.check_invariants fs with Ok () -> () | Error e -> Alcotest.fail e

let test_core_read_extent_clipping () =
  let fs = Fs_core.create ~blocks:256 () in
  let ino =
    match Fs_core.create_file fs "/c" with Ok i -> i | Error e -> Alcotest.fail e
  in
  ignore (Fs_core.ensure_write_extent fs ino ~off:0);
  Fs_core.set_size fs ino 100;
  (match Fs_core.read_extent fs ino ~off:0 with
  | Some (_, len, 0) -> check_int "clipped to size" 100 len
  | _ -> Alcotest.fail "no extent");
  check_bool "eof beyond size" true (Fs_core.read_extent fs ino ~off:100 = None)

let prop_core_random_ops =
  QCheck.Test.make ~name:"fs_core invariants hold under random op sequences"
    ~count:60
    QCheck.(list (pair (int_bound 4) (int_bound 40)))
    (fun ops ->
      let fs = Fs_core.create ~max_extent_blocks:8 ~blocks:512 () in
      let files = Array.init 8 (fun i -> Printf.sprintf "/f%d" i) in
      List.iter
        (fun (op, arg) ->
          let path = files.(arg mod 8) in
          match op with
          | 0 -> ignore (Fs_core.create_file fs path)
          | 1 -> (
              match Fs_core.lookup fs path with
              | Some ino when not (Fs_core.is_dir fs ino) ->
                  (try
                     ignore
                       (Fs_core.ensure_write_extent fs ino ~off:(arg * bs))
                   with Failure _ -> ())
              | _ -> ())
          | 2 -> ignore (Fs_core.unlink fs path)
          | 3 -> (
              match Fs_core.lookup fs path with
              | Some ino when not (Fs_core.is_dir fs ino) ->
                  Fs_core.set_size fs ino (arg * 100)
              | _ -> ())
          | _ -> ignore (Fs_core.stat fs path))
        ops;
      match Fs_core.check_invariants fs with Ok () -> true | Error _ -> false)

let prop_segments_cover =
  QCheck.Test.make ~name:"segments exactly tile requested ranges" ~count:60
    QCheck.(pair (int_range 0 40000) (int_range 1 20000))
    (fun (off, len) ->
      let fs = Fs_core.create ~max_extent_blocks:3 ~blocks:64 () in
      let ino =
        match Fs_core.create_file fs "/s" with Ok i -> i | Error _ -> assert false
      in
      (try ignore (Fs_core.ensure_write_extent fs ino ~off:(48 * bs - 1))
       with Failure _ -> ());
      Fs_core.set_size fs ino (48 * bs);
      let segs = Fs_core.segments fs ino ~off ~len in
      let expect = max 0 (min len ((48 * bs) - off)) in
      List.fold_left (fun acc (_, l) -> acc + l) 0 segs = expect)

(* --- end-to-end service/client --- *)

let with_fs_system f =
  let sys = System.create ~variant:System.M3v () in
  let fs = Services.make_fs sys ~tile:2 ~blocks:4096 () in
  f sys fs

let run_client sys fs ~tile program =
  let client_box = ref None in
  let aid, env =
    System.spawn sys ~tile ~name:"fsclient" (fun env ->
        program (Option.get !client_box) env)
  in
  client_box := Some (fs.Services.connect aid env);
  System.boot sys;
  ignore (System.run sys);
  aid

let test_e2e_write_then_read () =
  with_fs_system (fun sys fs ->
      let payload =
        Bytes.init (3 * bs) (fun i -> Char.chr ((i * 7 + (i / 311)) land 0xff))
      in
      let got = ref Bytes.empty in
      ignore
        (run_client sys fs ~tile:1 (fun client _ ->
             let vfs = Fs_client.to_vfs client in
             let* r = M3v_os.Vfs.write_file vfs "/data.bin" payload in
             (match r with Ok () -> () | Error e -> failwith e);
             let* r = M3v_os.Vfs.read_all vfs "/data.bin" in
             (match r with Ok b -> got := b | Error e -> failwith e);
             Proc.return ()));
      check_int "length round trip" (Bytes.length payload) (Bytes.length !got);
      check_bool "content round trip" true (Bytes.equal payload !got);
      (* And the bytes really live in the service's DRAM region. *)
      match Services.peek_file sys fs ~path:"/data.bin" with
      | Some stored -> check_bool "stored in DRAM" true (Bytes.equal stored payload)
      | None -> Alcotest.fail "file missing")

let test_e2e_preload_and_read () =
  with_fs_system (fun sys fs ->
      let payload = Bytes.init 10_000 (fun i -> Char.chr (i land 0xff)) in
      Services.preload_file sys fs ~path:"/pre.bin" payload;
      let got = ref Bytes.empty in
      ignore
        (run_client sys fs ~tile:1 (fun client _ ->
             let vfs = Fs_client.to_vfs client in
             let* r = M3v_os.Vfs.read_all vfs "/pre.bin" in
             (match r with Ok b -> got := b | Error e -> failwith e);
             Proc.return ()));
      check_bool "preloaded content readable" true (Bytes.equal payload !got))

let test_e2e_extent_switch_counting () =
  with_fs_system (fun sys fs ->
      (* 2 MiB file with 64-block extents: 512 blocks = 8 extents.  A full
         sequential read must perform exactly 8 extent switches. *)
      let size = 2 * 1024 * 1024 in
      Services.preload_file sys fs ~path:"/big.bin" (Bytes.make size 'x');
      let switches = ref (-1) in
      ignore
        (run_client sys fs ~tile:1 (fun client _ ->
             let* fd = Fs_client.open_ client "/big.bin" Fs_proto.rdonly in
             let fd = match fd with Ok fd -> fd | Error e -> failwith e in
             let* buf = A.alloc_buf bs in
             let rec loop () =
               let* n = Fs_client.read client ~fd ~buf ~len:bs in
               if n = 0 then Proc.return () else loop ()
             in
             let* () = loop () in
             let* () = Fs_client.close client ~fd in
             switches := Fs_client.extent_switches client;
             Proc.return ()));
      check_int "8 extents for 2MiB/64-block extents" 8 !switches;
      (* Each extent grant = 1 derive syscall (fs) + 1 activate (client),
         plus the client's open/close: the controller was involved, but
         rarely. *)
      let scalls =
        (M3v_kernel.Controller.stats (System.controller sys))
          .M3v_kernel.Controller.syscalls
      in
      check_bool "controller rarely involved" true (scalls < 30))

let test_e2e_metadata_ops () =
  with_fs_system (fun sys fs ->
      let names = ref [] in
      ignore
        (run_client sys fs ~tile:1 (fun client _ ->
             let* r = Fs_client.mkdir client "/dir" in
             (match r with Ok () -> () | Error e -> failwith e);
             let* _ = Fs_client.open_ client "/dir/a" Fs_proto.wronly in
             let* _ = Fs_client.open_ client "/dir/b" Fs_proto.wronly in
             let* r = Fs_client.readdir client "/dir" in
             (match r with Ok n -> names := n | Error e -> failwith e);
             let* r = Fs_client.unlink client "/dir/a" in
             (match r with Ok () -> () | Error e -> failwith e);
             let* r = Fs_client.stat client "/dir/a" in
             (match r with
             | Error _ -> ()
             | Ok _ -> failwith "stat after unlink must fail");
             Proc.return ()));
      Alcotest.(check (list string)) "listing" [ "a"; "b" ] (List.sort compare !names))

let test_e2e_inline_io () =
  with_fs_system (fun sys fs ->
      Services.preload_file sys fs ~path:"/small" (Bytes.of_string "0123456789");
      let got = ref "" in
      ignore
        (run_client sys fs ~tile:1 (fun client _ ->
             let* fd = Fs_client.open_ client "/small" Fs_proto.rdonly in
             let fd = match fd with Ok fd -> fd | Error e -> failwith e in
             let* data = Fs_client.read_inline client ~fd ~off:2 ~len:5 in
             got := Bytes.to_string data;
             Fs_client.close client ~fd));
      Alcotest.(check string) "inline read" "23456" !got)

let test_e2e_shared_tile_fs () =
  (* Client and service on the same tile: every RPC needs TileMux context
     switches; data still round-trips correctly. *)
  let sys = System.create ~variant:System.M3v () in
  let fs = Services.make_fs sys ~tile:1 ~blocks:2048 () in
  let payload = Bytes.init (bs + 100) (fun i -> Char.chr ((i * 13) land 0xff)) in
  let got = ref Bytes.empty in
  let client_box = ref None in
  let aid, env =
    System.spawn sys ~tile:1 ~name:"fsclient" (fun env ->
        let client = Option.get !client_box in
        ignore env;
        let vfs = Fs_client.to_vfs client in
        let* r = M3v_os.Vfs.write_file vfs "/shared.bin" payload in
        (match r with Ok () -> () | Error e -> failwith e);
        let* r = M3v_os.Vfs.read_all vfs "/shared.bin" in
        (match r with Ok b -> got := b | Error e -> failwith e);
        Proc.return ())
  in
  client_box := Some (fs.Services.connect aid env);
  System.boot sys;
  ignore (System.run sys);
  check_bool "shared-tile round trip" true (Bytes.equal payload !got);
  let rt = System.runtime sys ~tile:1 in
  let switches = Stats.Counter.get (M3v_mux.Runtime.counters rt) "ctx_switch" in
  check_bool "context switches happened" true (switches > 4.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ("core paths", `Quick, test_core_paths);
    ("core extent cap", `Quick, test_core_extent_cap);
    ("core sequential contiguous", `Quick, test_core_sequential_is_contiguous);
    ("core unlink frees", `Quick, test_core_unlink_frees);
    ("core read extent clipping", `Quick, test_core_read_extent_clipping);
    ("e2e write then read", `Quick, test_e2e_write_then_read);
    ("e2e preload and read", `Quick, test_e2e_preload_and_read);
    ("e2e extent switches", `Quick, test_e2e_extent_switch_counting);
    ("e2e metadata ops", `Quick, test_e2e_metadata_ops);
    ("e2e inline io", `Quick, test_e2e_inline_io);
    ("e2e shared tile", `Quick, test_e2e_shared_tile_fs);
  ]
  @ qsuite [ prop_core_random_ops; prop_segments_cover ]
