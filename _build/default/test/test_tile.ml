open M3v_sim
open M3v_tile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_core_models () =
  check_int "rocket cycle" 10_000 Core_model.rocket.Core_model.ps_per_cycle;
  check_int "boom cycle" 12_500 Core_model.boom.Core_model.ps_per_cycle;
  check_int "x86 cycle" 333 Core_model.x86_ooo.Core_model.ps_per_cycle;
  check_int "boom 1000 cycles" 12_500_000 (Core_model.cycles Core_model.boom 1_000);
  check_bool "cmd overhead positive" true (Core_model.cmd_overhead_cycles Core_model.boom > 100);
  check_int "memcpy 64B on boom" 8 (Core_model.memcpy_cycles Core_model.boom 64)

let test_fpga_spec () =
  let spec = Platform.fpga_spec () in
  (* 1 controller + 7 BOOM + 1 Rocket + 2 memory tiles. *)
  check_int "tile count" 11 (List.length spec);
  let eng = Engine.create () in
  let p = Platform.create ~virtualized:true ~tiles:spec eng () in
  check_int "controller tile" 0 (Platform.controller_tile p);
  check_int "memory tiles" 2 (List.length (Platform.memory_tiles p));
  check_int "processing tiles" 8 (List.length (Platform.processing_tiles p));
  (* NIC on the first BOOM tile. *)
  check_bool "nic present" true (Platform.tile p 1).Tile.has_nic;
  (* Controller and memory tiles get plain DTUs; user tiles get vDTUs. *)
  check_bool "controller dtu plain" false
    (M3v_dtu.Dtu.virtualized (Platform.dtu p 0));
  check_bool "user tile vdtu" true (M3v_dtu.Dtu.virtualized (Platform.dtu p 1))

let test_gem5_spec () =
  let eng = Engine.create () in
  let p =
    Platform.create ~virtualized:false ~tiles:(Platform.gem5_spec ~user_tiles:12 ())
      eng ()
  in
  check_int "tiles" 14 (Platform.tile_count p);
  check_int "user tiles" 12 (List.length (Platform.processing_tiles p));
  (* M3x platform: even user tiles have plain DTUs. *)
  check_bool "no vdtu in m3x" false (M3v_dtu.Dtu.virtualized (Platform.dtu p 1))

let test_platform_wiring () =
  let eng = Engine.create () in
  let p = Platform.create ~virtualized:true ~tiles:(Platform.fpga_spec ()) eng () in
  (* DTUs must reach each other through the wired lookups: a send from
     tile 1 to tile 2 must land. *)
  let d1 = Platform.dtu p 1 and d2 = Platform.dtu p 2 in
  M3v_dtu.Dtu.ext_config d2 ~ep:10 ~owner:3
    (M3v_dtu.Ep.recv_config ~slots:2 ~slot_size:128 ());
  M3v_dtu.Dtu.ext_config d1 ~ep:10 ~owner:4
    (M3v_dtu.Ep.send_config ~dst_tile:2 ~dst_ep:10 ~max_msg_size:64 ~credits:1 ());
  ignore (M3v_dtu.Dtu.switch_act d1 ~next:4);
  let ok = ref false in
  M3v_dtu.Dtu.send d1 ~ep:10 ~msg_size:8 M3v_dtu.Msg.Empty ~k:(fun r ->
      ok := r = Ok ());
  ignore (Engine.run eng);
  check_bool "cross-tile send works" true !ok;
  check_int "message arrived" 1 (M3v_dtu.Dtu.unread_of d2 3);
  (* DRAM is reachable and bounds are per-tile. *)
  let dram = Platform.dram_exn p (List.hd (Platform.memory_tiles p)) in
  check_bool "dram sized" true (M3v_dtu.Dram.size dram >= 1 lsl 20)

let test_bad_specs_rejected () =
  let eng = Engine.create () in
  Alcotest.check_raises "no tiles" (Invalid_argument "Platform.create: no tiles")
    (fun () -> ignore (Platform.create ~virtualized:true ~tiles:[] eng ()));
  let p = Platform.create ~virtualized:true ~tiles:(Platform.fpga_spec ()) eng () in
  check_bool "tile out of range raises" true
    (try
       ignore (Platform.tile p 99);
       false
     with Invalid_argument _ -> true);
  check_bool "core_exn on memory tile raises" true
    (try
       ignore (Platform.core_exn p (List.hd (Platform.memory_tiles p)));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("core models", `Quick, test_core_models);
    ("fpga spec", `Quick, test_fpga_spec);
    ("gem5 spec", `Quick, test_gem5_spec);
    ("platform wiring", `Quick, test_platform_wiring);
    ("bad specs rejected", `Quick, test_bad_specs_rejected);
  ]
