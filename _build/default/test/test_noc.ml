open M3v_sim
open M3v_noc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_star_mesh_routes () =
  let topo = Topology.star_mesh_2x2 ~tiles:8 in
  check_int "tiles" 8 (Topology.tiles topo);
  check_int "routers" 4 (Topology.routers topo);
  (* Same tile: empty route. *)
  Alcotest.(check (list int)) "self route" [] (Topology.route topo ~src:3 ~dst:3);
  (* Tiles 0 and 4 share router 0: inject + eject only. *)
  check_int "same-router hops" 0 (Topology.hops topo ~src:0 ~dst:4);
  check_int "same-router route length" 2
    (List.length (Topology.route topo ~src:0 ~dst:4));
  (* Router 0 and router 3 are diagonal in the 2x2 mesh: two hops. *)
  check_int "diagonal hops" 2 (Topology.hops topo ~src:0 ~dst:3)

let test_route_endpoints_are_tile_links () =
  let topo = Topology.star_mesh_2x2 ~tiles:11 in
  for src = 0 to 10 do
    for dst = 0 to 10 do
      if src <> dst then begin
        let route = Topology.route topo ~src ~dst in
        check_bool "starts with injection" true (List.hd route = src);
        let last = List.nth route (List.length route - 1) in
        check_bool "ends with ejection" true (last = 11 + dst)
      end
    done
  done

let test_mesh_and_ring () =
  let mesh = Topology.mesh ~cols:3 ~rows:2 ~tiles:12 in
  check_int "mesh routers" 6 (Topology.routers mesh);
  (* Corner to corner in a 3x2 mesh: 3 hops. *)
  check_int "mesh diameter path" 3 (Topology.hops mesh ~src:0 ~dst:11);
  let ring = Topology.ring ~routers:6 ~tiles:6 in
  (* Opposite side of a 6-ring: 3 hops. *)
  check_int "ring opposite" 3 (Topology.hops ring ~src:0 ~dst:3)

let test_single_router () =
  let topo = Topology.single_router ~tiles:4 in
  check_int "hops always zero" 0 (Topology.hops topo ~src:0 ~dst:3);
  check_int "route = inject + eject" 2 (List.length (Topology.route topo ~src:0 ~dst:3))

let make_noc ?(tiles = 8) () =
  let eng = Engine.create () in
  let topo = Topology.star_mesh_2x2 ~tiles in
  (eng, Noc.create eng topo)

let test_delivery_time () =
  let eng, noc = make_noc () in
  let delivered_at = ref Time.zero in
  Noc.send noc ~src:0 ~dst:3 ~bytes:64 ~on_delivered:(fun () ->
      delivered_at := Engine.now eng);
  ignore (Engine.run eng);
  let expect = Noc.uncontended_latency noc ~src:0 ~dst:3 ~bytes:64 in
  check_int "matches uncontended estimate" expect !delivered_at;
  (* Tile-to-tile latency should be "dozens of nanoseconds" (paper 2.3). *)
  check_bool "latency below 100ns" true (!delivered_at < Time.ns 100);
  check_bool "latency above 10ns" true (!delivered_at > Time.ns 10)

let test_contention_serializes () =
  let eng, noc = make_noc () in
  let t1 = ref Time.zero and t2 = ref Time.zero in
  (* Two packets over the same links back to back: the second must wait. *)
  Noc.send noc ~src:0 ~dst:3 ~bytes:4096 ~on_delivered:(fun () -> t1 := Engine.now eng);
  Noc.send noc ~src:0 ~dst:3 ~bytes:4096 ~on_delivered:(fun () -> t2 := Engine.now eng);
  ignore (Engine.run eng);
  let solo = Noc.uncontended_latency noc ~src:0 ~dst:3 ~bytes:4096 in
  check_bool "first unaffected" true (!t1 = solo);
  check_bool "second delayed" true (!t2 > !t1);
  check_bool "second delayed by roughly one serialization" true
    (Time.sub !t2 !t1 >= Time.ns 500)

let test_disjoint_paths_parallel () =
  let eng, noc = make_noc () in
  (* Tiles 1 and 5 share router 1; tiles 2 and 6 share router 2; the two
     transfers use disjoint links and must not delay each other. *)
  let t1 = ref Time.zero and t2 = ref Time.zero in
  Noc.send noc ~src:1 ~dst:5 ~bytes:1024 ~on_delivered:(fun () -> t1 := Engine.now eng);
  Noc.send noc ~src:2 ~dst:6 ~bytes:1024 ~on_delivered:(fun () -> t2 := Engine.now eng);
  ignore (Engine.run eng);
  check_int "equal latency" !t1 !t2

let test_loopback () =
  let eng, noc = make_noc () in
  let t = ref Time.zero in
  Noc.send noc ~src:2 ~dst:2 ~bytes:64 ~on_delivered:(fun () -> t := Engine.now eng);
  ignore (Engine.run eng);
  check_bool "loopback is fast" true (!t <= Time.ns 10)

let test_stats () =
  let eng, noc = make_noc () in
  Noc.send noc ~src:0 ~dst:1 ~bytes:100 ~on_delivered:(fun () -> ());
  Noc.send noc ~src:1 ~dst:0 ~bytes:32 ~on_delivered:(fun () -> ());
  ignore (Engine.run eng);
  let s = Noc.stats noc in
  check_int "packets" 2 s.Noc.packets;
  check_int "payload bytes" 132 s.Noc.payload_bytes;
  (* 100B -> 7 flits + 1 header; 32B -> 2 + 1. *)
  check_int "flits" 11 s.Noc.total_flits;
  Noc.reset_stats noc;
  check_int "reset" 0 (Noc.stats noc).Noc.packets

let test_bandwidth_larger_packets_slower =
  QCheck.Test.make ~name:"noc latency monotone in size" ~count:50
    QCheck.(pair (int_range 1 2000) (int_range 1 2000))
    (fun (a, b) ->
      let _, noc = make_noc () in
      let la = Noc.uncontended_latency noc ~src:0 ~dst:3 ~bytes:a in
      let lb = Noc.uncontended_latency noc ~src:0 ~dst:3 ~bytes:b in
      (a <= b && la <= lb) || (a >= b && la >= lb))

let suite =
  [
    ("star-mesh routes", `Quick, test_star_mesh_routes);
    ("route endpoints", `Quick, test_route_endpoints_are_tile_links);
    ("mesh and ring", `Quick, test_mesh_and_ring);
    ("single router", `Quick, test_single_router);
    ("delivery time", `Quick, test_delivery_time);
    ("contention serializes", `Quick, test_contention_serializes);
    ("disjoint paths parallel", `Quick, test_disjoint_paths_parallel);
    ("loopback", `Quick, test_loopback);
    ("stats", `Quick, test_stats);
  ]
  @ [ QCheck_alcotest.to_alcotest test_bandwidth_larger_packets_slower ]
