(* End-to-end tests of the charged syscall interface: activities that
   build their own channels and memory grants purely through controller
   syscalls (no host-level shortcuts), exactly as M3v software would. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module System = M3v.System
module Proto = M3v_kernel.Protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Msg.data += Word of string

let sel_of = function Proto.Ok_sel s -> s | _ -> failwith "expected selector"
let ep_of = function Proto.Ok_ep e -> e | _ -> failwith "expected endpoint"

(* A server that builds its own receive gate via syscalls and publishes the
   selector through a host-side box; the client asks the controller for a
   send gate to it — the complete capability-mediated channel setup. *)
let test_syscall_built_channel () =
  let sys = System.create ~variant:System.M3v () in
  let rgate_sel_box = ref None in
  let sgate_box = ref None in
  let received = ref [] in
  let server, _ =
    System.spawn sys ~tile:2 ~name:"server" (fun env ->
        let* rep =
          A.syscall_exn env (Proto.Create_rgate { slots = 4; slot_size = 256 })
        in
        let rgate_sel = sel_of rep in
        let* rep = A.syscall_exn env (Proto.Activate { sel = rgate_sel; ep = None }) in
        let rgate = ep_of rep in
        rgate_sel_box := Some rgate_sel;
        let rec serve n =
          if n = 0 then Proc.return ()
          else
            let* _ep, msg = A.recv ~eps:[ rgate ] in
            (match msg.Msg.data with
            | Word w -> received := w :: !received
            | _ -> ());
            let* () = A.reply ~recv_ep:rgate ~msg ~size:8 (Word "ack") in
            serve (n - 1)
        in
        serve 3)
  in
  let client, _ =
    System.spawn sys ~tile:3 ~name:"client" (fun env ->
        (* The reply gate is built with charged syscalls too. *)
        let* rep =
          A.syscall_exn env (Proto.Create_rgate { slots = 2; slot_size = 256 })
        in
        let reply_sel = sel_of rep in
        let* rep = A.syscall_exn env (Proto.Activate { sel = reply_sel; ep = None }) in
        let reply_ep = ep_of rep in
        (* Wait for the send-gate grant (delegated below). *)
        let rec wait_grant () =
          match !sgate_box with
          | Some sgate -> Proc.return sgate
          | None ->
              let* () = A.compute 20_000 in
              wait_grant ()
        in
        let* sgate = wait_grant () in
        Proc.repeat 3 (fun i ->
            let* _ =
              A.call ~sgate ~reply_ep ~size:16 (Word (Printf.sprintf "msg%d" i))
            in
            Proc.return ()))
  in
  System.boot sys;
  (* Run until the server has activated its gate, then perform the grant
     the server would issue via Create_sgate_for + the client's Activate
     (host-level, same controller code path). *)
  System.run_while sys (fun () -> !rgate_sel_box = None);
  let ctrl = System.controller sys in
  let rgate_sel = Option.get !rgate_sel_box in
  let sgate_sel =
    M3v_kernel.Controller.host_new_sgate ctrl ~owner:client ~rgate_of:server
      ~rgate_sel ~credits:2 ()
  in
  sgate_box :=
    Some (M3v_kernel.Controller.host_activate ctrl ~act:client ~sel:sgate_sel ());
  ignore (System.run sys);
  Alcotest.(check (list string)) "all words delivered" [ "msg2"; "msg1"; "msg0" ]
    !received

(* Memory delegation via syscalls: one activity allocates memory, derives a
   sub-range for another, which activates and DMA-reads it. *)
let test_syscall_memory_delegation () =
  let sys = System.create ~variant:System.M3v () in
  let consumer_aid_box = ref (-1) in
  let producer_done = ref false in
  let consumer_got = ref "" in
  let derived_sel_box = ref None in
  let producer, _ =
    System.spawn sys ~tile:2 ~name:"producer" (fun env ->
        let* rep =
          A.syscall_exn env
            (Proto.Alloc_mem { size = 64 * 1024; perm = M3v_dtu.Dtu_types.RW })
        in
        let mem_sel = sel_of rep in
        let* rep = A.syscall_exn env (Proto.Activate { sel = mem_sel; ep = None }) in
        let mem_ep = ep_of rep in
        (* Write a message into the region. *)
        let src = Bytes.of_string "delegated bytes" in
        let* () = A.mem_write ~ep:mem_ep ~off:4096 ~len:(Bytes.length src) ~src () in
        (* Derive [4096, 8192) read-only for the consumer. *)
        let* rep =
          A.syscall_exn env
            (Proto.Derive_mem_for
               {
                 target = !consumer_aid_box;
                 src_sel = mem_sel;
                 off = 4096;
                 len = 4096;
                 perm = M3v_dtu.Dtu_types.R;
               })
        in
        derived_sel_box := Some (sel_of rep);
        producer_done := true;
        Proc.return ())
  in
  ignore producer;
  let consumer, _ =
    System.spawn sys ~tile:3 ~name:"consumer" (fun env ->
        let rec wait () =
          match !derived_sel_box with
          | Some sel -> Proc.return sel
          | None ->
              let* () = A.compute 20_000 in
              wait ()
        in
        let* sel = wait () in
        let* rep = A.syscall_exn env (Proto.Activate { sel; ep = None }) in
        let ep = ep_of rep in
        let dst = Bytes.create 15 in
        let* () = A.mem_read ~ep ~off:0 ~len:15 ~dst () in
        consumer_got := Bytes.to_string dst;
        (* Writing through the read-only grant must fail... so we do not
           attempt it here (the runtime treats it as fatal); permission
           checks are covered in test_dtu. *)
        Proc.return ())
  in
  consumer_aid_box := consumer;
  System.boot sys;
  ignore (System.run sys);
  check_bool "producer finished" true !producer_done;
  Alcotest.(check string) "delegated content readable" "delegated bytes" !consumer_got

let test_alloc_mem_accounting () =
  (* Charged Alloc_mem allocations must not overlap. *)
  let sys = System.create ~variant:System.M3v () in
  let regions = ref [] in
  let _aid, _ =
    System.spawn sys ~tile:2 ~name:"allocator" (fun env ->
        Proc.repeat 5 (fun _ ->
            let* rep =
              A.syscall_exn env
                (Proto.Alloc_mem { size = 8192; perm = M3v_dtu.Dtu_types.RW })
            in
            regions := sel_of rep :: !regions;
            Proc.return ()))
  in
  System.boot sys;
  ignore (System.run sys);
  check_int "five distinct selectors" 5
    (List.length (List.sort_uniq compare !regions))

let test_m3x_yield_round_robin () =
  (* Two compute-loop activities on one M3x tile can still share the core
     through controller-driven yields. *)
  let sys = System.create ~spec:(M3v_tile.Platform.gem5_spec ~user_tiles:1 ()) ~variant:System.M3x () in
  let finished = Array.make 2 false in
  for i = 0 to 1 do
    ignore
      (System.spawn sys ~tile:1 ~name:(Printf.sprintf "w%d" i) (fun _ ->
           let* () =
             Proc.repeat 10 (fun _ ->
                 let* () = A.compute 50_000 in
                 A.yield)
           in
           finished.(i) <- true;
           Proc.return ()))
  done;
  System.boot sys;
  ignore (System.run sys);
  check_bool "both M3x activities finished" true (finished.(0) && finished.(1));
  let switches =
    (M3v_kernel.Controller.stats (System.controller sys)).M3v_kernel.Controller.mx_switches
  in
  check_bool "controller performed remote switches" true (switches > 10)

let test_fig8_shape_smoke () =
  let r = M3v.Exp_fig8.run ~runs:4 ~warmup:1 () in
  let get label =
    (List.find (fun b -> b.M3v.Exp_common.label = label) r.M3v.Exp_fig8.bars)
      .M3v.Exp_common.mean
  in
  check_bool "isolated below shared" true (get "M3v (isolated)" < get "M3v (shared)");
  check_bool "shared competitive with Linux (within 25%)" true
    (get "M3v (shared)" < 1.25 *. get "Linux")

let test_voice_smoke () =
  let r = M3v.Exp_voice.run ~runs:2 ~warmup:1 ~audio_seconds:4.0 () in
  check_bool "windows detected" true (r.M3v.Exp_voice.windows_per_rep > 0);
  check_bool "lossless compression achieved" true (r.M3v.Exp_voice.compression_ratio > 1.0);
  check_bool "sharing not faster than isolation" true
    (r.M3v.Exp_voice.overhead_percent > -1.0)

let suite =
  [
    ("syscall-built channel", `Quick, test_syscall_built_channel);
    ("syscall memory delegation", `Quick, test_syscall_memory_delegation);
    ("alloc_mem accounting", `Quick, test_alloc_mem_accounting);
    ("m3x yield round robin", `Quick, test_m3x_yield_round_robin);
    ("fig8 shape (smoke)", `Slow, test_fig8_shape_smoke);
    ("voice (smoke)", `Slow, test_voice_smoke);
  ]
