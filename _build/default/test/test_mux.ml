(* Integration tests of the runtimes: M3v (TileMux + vDTU) and M3x (remote
   multiplexing via the controller).  These exercise the full stack:
   platform, NoC, DTUs, controller, runtime, activity programs. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module A = M3v_mux.Act_api
module System = M3v.System
module Msg = M3v_dtu.Msg
module Proto = M3v_kernel.Protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Msg.data += Req of int | Resp of int

(* An RPC server: answers [rounds] requests with x+1, then exits. *)
let server_program ~rgate ~rounds _env =
  Proc.repeat rounds (fun _ ->
      let* _ep, msg = A.recv ~eps:[ !rgate ] in
      let x = match msg.Msg.data with Req x -> x | _ -> -1 in
      let* () = A.compute 50 in
      A.reply ~recv_ep:!rgate ~msg ~size:8 (Resp (x + 1)))

(* An RPC client: [rounds] no-op-ish round trips; records total time. *)
let client_program ~chan ~rounds ~total _env =
  let* t0 = A.now in
  let* () =
    Proc.repeat rounds (fun i ->
        let* reply =
          A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:8 (Req i)
        in
        match reply.Msg.data with
        | Resp r when r = i + 1 -> Proc.return ()
        | _ -> failwith "bad RPC reply")
  in
  let* t1 = A.now in
  total := Time.sub t1 t0;
  Proc.return ()

(* Build a client/server pair; same tile if [local]. *)
let rpc_system ~variant ~local ~rounds =
  let sys = System.create ~variant () in
  let server_tile = 1 in
  let client_tile = if local then 1 else 2 in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let total = ref Time.zero in
  let server, _ =
    System.spawn sys ~tile:server_tile ~name:"server"
      (server_program ~rgate ~rounds)
  in
  let client, _ =
    System.spawn sys ~tile:client_tile ~name:"client"
      (client_program ~chan ~rounds ~total)
  in
  let ch = System.channel sys ~src:client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  (sys, client, server, total)

let run_rpc ~variant ~local ~rounds =
  let sys, client, server, total = rpc_system ~variant ~local ~rounds in
  System.boot sys;
  let events = System.run sys in
  check_bool "simulation progressed" true (events > 0);
  let client_tile = if local then 1 else 2 in
  let rt_client = System.runtime sys ~tile:client_tile in
  let rt_server = System.runtime sys ~tile:1 in
  check_bool "client finished" true (M3v_mux.Runtime.finished rt_client client);
  check_bool "server finished" true (M3v_mux.Runtime.finished rt_server server);
  !total

let test_m3v_remote_rpc () =
  let total = run_rpc ~variant:System.M3v ~local:false ~rounds:100 in
  let per_rpc = total / 100 in
  (* BOOM @ 80 MHz: a remote no-op RPC should land in the
     system-call-like regime: a handful of microseconds, well under the
     cost of tile-local RPCs (paper, Figure 6). *)
  check_bool "remote RPC completed" true (per_rpc > Time.us 1);
  check_bool
    (Printf.sprintf "remote RPC under 40us (got %.1fus)" (Time.to_us per_rpc))
    true (per_rpc < Time.us 40)

let test_m3v_local_rpc () =
  let remote = run_rpc ~variant:System.M3v ~local:false ~rounds:100 in
  let local = run_rpc ~variant:System.M3v ~local:true ~rounds:100 in
  (* Tile-local RPC involves TileMux twice (two context switches): it must
     be significantly more expensive than remote RPC (paper, Figure 6). *)
  check_bool
    (Printf.sprintf "local (%.1fus) > 2x remote (%.1fus)"
       (Time.to_us (local / 100))
       (Time.to_us (remote / 100)))
    true
    (local > 2 * remote);
  (* ... but still within the "two Linux yields" regime: < 150us. *)
  check_bool "local RPC bounded" true (local / 100 < Time.us 150)

let test_m3x_local_rpc_slow_path () =
  let m3v = run_rpc ~variant:System.M3v ~local:true ~rounds:50 in
  let m3x = run_rpc ~variant:System.M3x ~local:true ~rounds:50 in
  (* The M3x slow path through the controller must cost a multiple of the
     M3v TileMux path (paper reports ~27k vs ~5k cycles). *)
  check_bool
    (Printf.sprintf "M3x local (%.1fus) > 2x M3v local (%.1fus)"
       (Time.to_us (m3x / 50))
       (Time.to_us (m3v / 50)))
    true (m3x > 2 * m3v)

let test_m3x_remote_rpc_fast_path () =
  (* Remote RPC with one activity per tile: M3x uses the fast path and
     should be close to M3v. *)
  let m3v = run_rpc ~variant:System.M3v ~local:false ~rounds:50 in
  let m3x = run_rpc ~variant:System.M3x ~local:false ~rounds:50 in
  check_bool
    (Printf.sprintf "M3x remote (%.1fus) < 3x M3v remote (%.1fus)"
       (Time.to_us (m3x / 50))
       (Time.to_us (m3v / 50)))
    true (m3x < 3 * m3v)

let test_syscall_noop () =
  let sys = System.create ~variant:System.M3v () in
  let replies = ref 0 in
  let _aid, _ =
    System.spawn sys ~tile:1 ~name:"caller" (fun env ->
        Proc.repeat 10 (fun _ ->
            let* rep = A.syscall env Proto.Noop in
            (match rep with
            | Proto.Ok_unit -> incr replies
            | _ -> failwith "noop failed");
            Proc.return ()))
  in
  System.boot sys;
  ignore (System.run sys);
  check_int "all noop syscalls replied" 10 !replies;
  (* 10 noops + the activity's exit notification. *)
  check_int "controller counted them" 11
    (M3v_kernel.Controller.stats (System.controller sys)).M3v_kernel.Controller.syscalls

let test_three_activities_round_robin () =
  (* Three compute-heavy activities on one tile must all finish, and the
     tile must preempt them (timeslice round robin). *)
  let sys = System.create ~variant:System.M3v () in
  let cycles = 2_000_000 (* 25 ms at 80 MHz: several timeslices *) in
  let finish_times = Array.make 3 Time.zero in
  for i = 0 to 2 do
    ignore
      (System.spawn sys ~tile:1 ~name:(Printf.sprintf "worker%d" i) (fun _ ->
           let* () = A.compute cycles in
           let* t = A.now in
           finish_times.(i) <- t;
           Proc.return ()))
  done;
  System.boot sys;
  ignore (System.run sys);
  let rt = System.runtime sys ~tile:1 in
  check_bool "all finished" true (M3v_mux.Runtime.all_finished rt);
  let preempts = Stats.Counter.get (M3v_mux.Runtime.counters rt) "preempt" in
  check_bool "preemptions happened" true (preempts > 10.0);
  (* Round robin: finish times must be interleaved, i.e. all within the
     last ~two timeslices of each other. *)
  let fmin = Array.fold_left min finish_times.(0) finish_times in
  let fmax = Array.fold_left max finish_times.(0) finish_times in
  check_bool "finishes clustered (fair sharing)" true
    (Time.sub fmax fmin < Time.ms 4)

let test_pager_demand_paging () =
  let sys = System.create ~variant:System.M3v () in
  let pager = System.with_pager sys ~tile:3 in
  ignore pager;
  let touched = ref false in
  let _aid, _ =
    System.spawn sys ~tile:1 ~name:"faulter" ~premap:false (fun _ ->
        let* buf = A.alloc_buf (8 * 4096) in
        let* () = A.touch ~write:true buf in
        touched := true;
        Proc.return ())
  in
  System.boot sys;
  ignore (System.run sys);
  check_bool "program completed" true !touched;
  let rt = System.runtime sys ~tile:1 in
  let faults = Stats.Counter.get (M3v_mux.Runtime.counters rt) "fault" in
  check_int "eight demand faults" 8 (int_of_float faults);
  let tm_rpcs = Stats.Counter.get (M3v_mux.Runtime.counters rt) "tm_rpc" in
  check_int "eight TileMux->pager RPCs" 8 (int_of_float tm_rpcs)

let test_local_pager_shared_tile () =
  (* Pager co-located with the faulting activity: the fault path causes
     tile-local context switches and still completes. *)
  let sys = System.create ~variant:System.M3v () in
  ignore (System.with_pager sys ~tile:1);
  let done_ = ref false in
  let _aid, _ =
    System.spawn sys ~tile:1 ~name:"faulter" ~premap:false (fun _ ->
        let* buf = A.alloc_buf (4 * 4096) in
        let* () = A.touch ~write:false buf in
        done_ := true;
        Proc.return ())
  in
  System.boot sys;
  ignore (System.run sys);
  check_bool "shared-tile faulting works" true !done_

let test_vdtu_tlb_fill_path () =
  (* Sending from a virtually-addressed buffer: first send TLB-misses, the
     runtime translates via TileMux and retries transparently. *)
  let sys = System.create ~variant:System.M3v () in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let got = ref 0 in
  let server, _ =
    System.spawn sys ~tile:2 ~name:"sink" (fun _ ->
        let* _ep, msg = A.recv ~eps:[ !rgate ] in
        (match msg.Msg.data with Req n -> got := n | _ -> ());
        A.ack ~ep:!rgate msg)
  in
  let client, _ =
    System.spawn sys ~tile:1 ~name:"source" (fun _ ->
        let* buf = A.alloc_buf 4096 in
        let* () = A.send ~ep:(fst !chan) ~vaddr:buf.M3v_mux.Act_ops.vaddr ~size:64 (Req 7) in
        Proc.return ())
  in
  let ch = System.channel sys ~src:client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  check_int "message with virtual buffer arrived" 7 !got;
  let tlb = M3v_dtu.Dtu.tlb (M3v_tile.Platform.dtu (System.platform sys) 1) in
  check_bool "vdtu recorded a miss" true
    ((M3v_dtu.Tlb.stats tlb).M3v_dtu.Tlb.misses > 0)

let test_dma_through_mem_region () =
  let sys = System.create ~variant:System.M3v () in
  let roundtrip = ref "" in
  let aid_box = ref (-1) in
  let ep_box = ref (-1) in
  let _aid, _ =
    System.spawn sys ~tile:1 ~name:"dma" (fun _ ->
        let src = Bytes.of_string "persistent payload" in
        let len = Bytes.length src in
        let* () = A.mem_write ~ep:!ep_box ~off:64 ~len ~src () in
        let dst = Bytes.create len in
        let* () = A.mem_read ~ep:!ep_box ~off:64 ~len ~dst () in
        roundtrip := Bytes.to_string dst;
        Proc.return ())
  in
  aid_box := _aid;
  let _sel, ep = System.mem_region sys ~act:!aid_box ~size:4096 ~perm:M3v_dtu.Dtu_types.RW in
  ep_box := ep;
  System.boot sys;
  ignore (System.run sys);
  Alcotest.(check string) "dma round trip through DRAM" "persistent payload" !roundtrip

let test_many_rpc_stress () =
  (* Longer ping-pong with small computes: checks no lost wakeups or
     stuck states over thousands of switches. *)
  let total = run_rpc ~variant:System.M3v ~local:true ~rounds:2_000 in
  check_bool "stress completed" true (total > Time.zero)

let test_m3x_stress () =
  let total = run_rpc ~variant:System.M3x ~local:true ~rounds:300 in
  check_bool "m3x stress completed" true (total > Time.zero)

let suite =
  [
    ("m3v remote rpc", `Quick, test_m3v_remote_rpc);
    ("m3v local rpc (TileMux)", `Quick, test_m3v_local_rpc);
    ("m3x local rpc (slow path)", `Quick, test_m3x_local_rpc_slow_path);
    ("m3x remote rpc (fast path)", `Quick, test_m3x_remote_rpc_fast_path);
    ("syscall noop", `Quick, test_syscall_noop);
    ("round robin", `Quick, test_three_activities_round_robin);
    ("pager demand paging", `Quick, test_pager_demand_paging);
    ("pager on shared tile", `Quick, test_local_pager_shared_tile);
    ("vdtu tlb fill path", `Quick, test_vdtu_tlb_fill_path);
    ("dma through mem region", `Quick, test_dma_through_mem_region);
    ("rpc stress m3v", `Slow, test_many_rpc_stress);
    ("rpc stress m3x", `Slow, test_m3x_stress);
  ]
