(* Table 1 area model and SLOC counter tests. *)

module Area = M3v_area.Area
module Sloc = M3v_area.Sloc

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.05))
let check_int = Alcotest.(check int)

let test_published_totals () =
  let t = Area.total Area.vdtu in
  check_float "vDTU LUTs" 15.2 t.Area.luts_k;
  check_float "vDTU FFs" 5.8 t.Area.ffs_k;
  check_float "vDTU BRAMs" 0.5 t.Area.brams;
  let cu = Area.total Area.noc_router in
  check_float "router LUTs" 3.4 cu.Area.luts_k

let test_composition_luts_consistent () =
  (* The published LUT hierarchy is exactly compositional: CMD CTRL =
     unpriv + priv; control unit = NoC CTRL + CMD CTRL. *)
  let rows = Area.table1_rows () in
  let find name =
    let _, _, r = List.find (fun (_, n, _) -> n = name) rows in
    r
  in
  check_float "cmd ctrl = unpriv + priv"
    ((find "Unpriv. IF").Area.luts_k +. (find "Priv. IF").Area.luts_k)
    (find "CMD CTRL").Area.luts_k;
  check_float "control unit = noc + cmd"
    ((find "NoC CTRL").Area.luts_k +. (find "CMD CTRL").Area.luts_k)
    (find "Control Unit").Area.luts_k

let test_derived_claims () =
  check_bool "vDTU/BOOM ~10.6%" true
    (abs_float (Area.vdtu_vs_core_percent Area.boom -. 10.6) < 0.2);
  check_bool "vDTU/Rocket ~32.6%" true
    (abs_float (Area.vdtu_vs_core_percent Area.rocket -. 32.6) < 0.3);
  let ov = Area.virtualization_overhead_percent () in
  check_bool (Printf.sprintf "virtualization ~6%% (got %.1f)" ov) true
    (ov > 5.0 && ov < 7.5)

let test_plain_dtu_strips_optional () =
  let plain = Area.total Area.dtu_without_virtualization in
  let full = Area.total Area.vdtu in
  check_bool "plain DTU smaller" true (plain.Area.luts_k < full.Area.luts_k);
  (* Exactly the privileged interface and the PMP mapper are dashed. *)
  check_float "difference = priv IF + mapper"
    (full.Area.luts_k -. plain.Area.luts_k)
    (0.9 +. 0.6)

let test_table_rows_order () =
  let rows = Area.table1_rows () in
  check_int "row count" 12 (List.length rows);
  match rows with
  | (0, "BOOM", _) :: (0, "Rocket", _) :: (0, "NoC router", _) :: (0, "vDTU", _) :: _ ->
      ()
  | _ -> Alcotest.fail "unexpected table order"

let test_sloc_counting () =
  check_int "plain lines" 2 (Sloc.count_string "let x = 1\nlet y = 2\n");
  check_int "blank lines skipped" 1 (Sloc.count_string "\n\n  \nlet x = 1\n\n");
  check_int "comments skipped" 1
    (Sloc.count_string "(* a comment *)\n(* multi\n   line *)\nlet x = 1\n");
  check_int "nested comments" 1
    (Sloc.count_string "(* outer (* inner *) still comment *)\nlet x = 1\n");
  check_int "code + trailing comment counts once"
    1
    (Sloc.count_string "let x = 1 (* note *)\n")

let test_sloc_missing_dir () =
  check_bool "missing dir is None" true (Sloc.count_dir "/nonexistent-xyz" = None)

let suite =
  [
    ("published totals", `Quick, test_published_totals);
    ("LUT composition", `Quick, test_composition_luts_consistent);
    ("derived claims", `Quick, test_derived_claims);
    ("plain DTU strips optional", `Quick, test_plain_dtu_strips_optional);
    ("table rows order", `Quick, test_table_rows_order);
    ("sloc counting", `Quick, test_sloc_counting);
    ("sloc missing dir", `Quick, test_sloc_missing_dir);
  ]
