(* Application-layer tests: FLAC compressor, YCSB/Zipfian, traces, the LSM
   key-value store (pure parts + end-to-end on m3fs), and the cloud
   workload codec. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module Flac = M3v_apps.Flac
module Audio = M3v_apps.Audio
module Ycsb = M3v_apps.Ycsb
module Trace = M3v_apps.Trace
module Cloud = M3v_apps.Cloud
module Kvstore = M3v_apps.Kvstore
module System = M3v.System
module Services = M3v.Services

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- FLAC --- *)

let test_flac_roundtrip_audio () =
  let audio = Audio.room_audio (Rng.create ~seed:7) ~seconds:1.5 () in
  let compressed = Flac.compress audio.Audio.samples in
  let restored = Flac.decompress compressed in
  Alcotest.(check (array int)) "bit-exact round trip" audio.Audio.samples restored

let test_flac_compresses_audio () =
  let audio = Audio.room_audio (Rng.create ~seed:8) ~seconds:2.0 () in
  let r = Flac.ratio audio.Audio.samples in
  check_bool (Printf.sprintf "lossless ratio > 1.2 (got %.2f)" r) true (r > 1.2)

let test_flac_constant_signal_tiny () =
  let samples = Array.make 10_000 123 in
  let compressed = Flac.compress samples in
  (* Order-1 predictor makes a constant signal almost free. *)
  check_bool "constant signal compresses >5x" true
    (Bytes.length compressed * 5 < 2 * Array.length samples);
  Alcotest.(check (array int)) "round trip" samples (Flac.decompress compressed)

let test_flac_edge_cases () =
  Alcotest.(check (array int)) "empty" [||] (Flac.decompress (Flac.compress [||]));
  let extremes = [| 32767; -32768; 0; -1; 1; 32767; -32768 |] in
  Alcotest.(check (array int)) "extreme samples" extremes
    (Flac.decompress (Flac.compress extremes));
  let one = [| -17 |] in
  Alcotest.(check (array int)) "single sample" one (Flac.decompress (Flac.compress one))

let prop_flac_roundtrip =
  QCheck.Test.make ~name:"flac round trips arbitrary 16-bit signals" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 3000) (int_range (-32768) 32767))
    (fun l ->
      let samples = Array.of_list l in
      Flac.decompress (Flac.compress samples) = samples)

let test_pcm_roundtrip () =
  let samples = [| 0; 1; -1; 32767; -32768; 1234; -4321 |] in
  Alcotest.(check (array int)) "pcm round trip" samples
    (Audio.of_pcm_bytes (Audio.to_pcm_bytes samples))

let test_audio_has_bursts () =
  let audio = Audio.room_audio (Rng.create ~seed:9) ~seconds:5.0 () in
  let loud = ref 0 and quiet = ref 0 in
  let frame = 256 in
  let n = Array.length audio.Audio.samples in
  let rec scan off =
    if off + frame <= n then begin
      let e = Audio.window_energy audio ~off ~len:frame in
      if e > 2000.0 then incr loud else incr quiet;
      scan (off + frame)
    end
  in
  scan 0;
  check_bool "has loud frames" true (!loud > 10);
  check_bool "has quiet frames" true (!quiet > !loud)

(* --- YCSB / Zipf --- *)

let test_zipf_skew () =
  let rng = Rng.create ~seed:5 in
  let z = Ycsb.Zipf.create ~n:100 rng in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Ycsb.Zipf.sample z in
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "all in range" true (Array.for_all (fun c -> c >= 0) counts);
  (* Zipf(0.99): the most popular item dwarfs the median one. *)
  check_bool "head heavier than tail" true (counts.(0) > 10 * counts.(50));
  check_bool "head is a sizable share" true (counts.(0) > 20_000 / 20)

let test_ycsb_mixes () =
  let rng = Rng.create ~seed:6 in
  let ops = Ycsb.ops Ycsb.Mixed ~records:200 ~count:2_000 rng in
  let r = ref 0 and i = ref 0 and u = ref 0 and s = ref 0 in
  List.iter
    (function
      | Ycsb.Read _ -> incr r
      | Ycsb.Insert _ -> incr i
      | Ycsb.Update _ -> incr u
      | Ycsb.Scan _ -> incr s)
    ops;
  check_int "total" 2_000 (!r + !i + !u + !s);
  (* 50-10-30-10 within sampling noise. *)
  check_bool "reads ~50%" true (abs (!r - 1000) < 120);
  check_bool "updates ~30%" true (abs (!u - 600) < 120);
  check_bool "scans ~10%" true (abs (!s - 200) < 80)

let test_ycsb_scan_heavy_has_no_updates () =
  let rng = Rng.create ~seed:16 in
  let ops = Ycsb.ops Ycsb.Scan_heavy ~records:100 ~count:500 rng in
  check_bool "no updates in scan-heavy" true
    (List.for_all (function Ycsb.Update _ -> false | _ -> true) ops);
  let scans = List.length (List.filter (function Ycsb.Scan _ -> true | _ -> false) ops) in
  check_bool "mostly scans" true (scans > 350)

let test_ycsb_inserts_use_fresh_keys () =
  let rng = Rng.create ~seed:17 in
  let ops = Ycsb.ops Ycsb.Insert_heavy ~records:50 ~count:300 rng in
  let inserted = Hashtbl.create 64 in
  List.iter
    (function
      | Ycsb.Insert (k, _) ->
          check_bool "insert key is fresh" false (Hashtbl.mem inserted k);
          Hashtbl.replace inserted k ()
      | _ -> ())
    ops

(* --- traces --- *)

let test_trace_shapes () =
  let find = Trace.find_trace () in
  (* 24 readdirs + 960 stats + 240 open/read/close triples + root stat. *)
  check_int "find rpc count" (1 + 24 + 960 + (240 * 3)) (Trace.rpc_count find);
  check_bool "find has compute" true (Trace.compute_cycles find > 1_000_000);
  let sqlite = Trace.sqlite_trace () in
  check_bool "sqlite rpc-heavy" true (Trace.rpc_count sqlite > 1_000);
  check_int "find setup files" (24 * 40) (List.length find.Trace.setup_files)

let test_trace_custom_sizes () =
  let t = Trace.find_trace ~dirs:2 ~files_per_dir:4 () in
  check_int "small tree" 8 (List.length t.Trace.setup_files);
  check_int "small rpc count" (1 + 2 + 8 + (2 * 3)) (Trace.rpc_count t)

(* --- cloud codec --- *)

let test_cloud_codec_roundtrip () =
  let rng = Rng.create ~seed:11 in
  let load = Ycsb.load ~records:20 ~value_size:64 rng in
  let ops = Ycsb.ops Ycsb.Mixed ~records:20 ~count:50 rng in
  let encoded = Cloud.encode_workload ~load ~ops in
  let load', ops' = Cloud.decode_workload encoded in
  check_int "load size" 20 (List.length load');
  check_int "ops size" 50 (List.length ops');
  check_bool "load round trips" true
    (List.for_all2
       (fun (k, v) (k', v') -> k = k' && Bytes.equal v v')
       load load');
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ycsb.Read x, Ycsb.Read y -> check_bool "read" true (x = y)
      | Ycsb.Insert (x, v), Ycsb.Insert (y, w) ->
          check_bool "insert" true (x = y && Bytes.equal v w)
      | Ycsb.Update (x, v), Ycsb.Update (y, w) ->
          check_bool "update" true (x = y && Bytes.equal v w)
      | Ycsb.Scan (x, c), Ycsb.Scan (y, d) ->
          check_bool "scan" true (x = y && c = d)
      | _ -> Alcotest.fail "op kind mismatch")
    ops ops'

(* --- kvstore end-to-end on m3fs --- *)

let run_db_system f =
  let sys = System.create ~variant:System.M3v () in
  ignore (System.with_pager sys ~tile:4);
  let fs = Services.make_fs sys ~tile:3 ~blocks:8192 () in
  let vfs_box = ref None in
  let aid, env =
    System.spawn sys ~tile:2 ~name:"db" ~premap:false (fun _ ->
        f (Option.get !vfs_box))
  in
  vfs_box := Some (M3v_os.Fs_client.to_vfs (fs.Services.connect aid env));
  System.boot sys;
  ignore (System.run sys);
  sys

let test_kvstore_put_get_scan () =
  let got = ref None and scanned = ref [] and tables = ref 0 in
  let _ =
    run_db_system (fun vfs ->
        let* store = Kvstore.create ~vfs ~dir:"/kv" ~memtable_limit:2048 () in
        let store = match store with Ok s -> s | Error e -> failwith e in
        let* () =
          Proc.repeat 50 (fun i ->
              Kvstore.put store ~key:(Ycsb.record_key i)
                ~value:(Bytes.make 100 (Char.chr (65 + (i mod 26)))))
        in
        let* v = Kvstore.get store ~key:(Ycsb.record_key 17) in
        got := v;
        let* items = Kvstore.scan store ~start:(Ycsb.record_key 10) ~count:5 in
        scanned := List.map fst items;
        tables := Kvstore.sstable_count store;
        Proc.return ())
  in
  (match !got with
  | Some v -> Alcotest.(check char) "value content" 'R' (Bytes.get v 0)
  | None -> Alcotest.fail "get missed");
  Alcotest.(check (list string)) "scan keys in order"
    (List.init 5 (fun i -> Ycsb.record_key (10 + i)))
    !scanned;
  check_bool "memtable spilled to tables" true (!tables >= 2)

let test_kvstore_update_wins () =
  let got = ref None in
  let _ =
    run_db_system (fun vfs ->
        let* store = Kvstore.create ~vfs ~dir:"/kv" ~memtable_limit:1024 () in
        let store = match store with Ok s -> s | Error e -> failwith e in
        let key = "user42" in
        let* () = Kvstore.put store ~key ~value:(Bytes.of_string "old") in
        (* Force the old version into an SSTable, then overwrite. *)
        let* () = Kvstore.flush store in
        let* () = Kvstore.put store ~key ~value:(Bytes.of_string "new") in
        let* () = Kvstore.flush store in
        let* v = Kvstore.get store ~key in
        got := v;
        Proc.return ())
  in
  match !got with
  | Some v -> Alcotest.(check string) "newest version wins" "new" (Bytes.to_string v)
  | None -> Alcotest.fail "key lost"

let test_kvstore_compaction_preserves_data () =
  let missing = ref [] and compactions = ref 0 in
  let _ =
    run_db_system (fun vfs ->
        let* store =
          Kvstore.create ~vfs ~dir:"/kv" ~memtable_limit:1024 ~compact_threshold:2 ()
        in
        let store = match store with Ok s -> s | Error e -> failwith e in
        let* () =
          Proc.repeat 60 (fun i ->
              Kvstore.put store ~key:(Ycsb.record_key i)
                ~value:(Bytes.make 64 (Char.chr (48 + (i mod 10)))))
        in
        compactions := Kvstore.compactions store;
        let* () =
          Proc.repeat 60 (fun i ->
              let* v = Kvstore.get store ~key:(Ycsb.record_key i) in
              (match v with
              | Some value when Bytes.get value 0 = Char.chr (48 + (i mod 10)) -> ()
              | Some _ -> missing := (i, "corrupt") :: !missing
              | None -> missing := (i, "lost") :: !missing);
              Proc.return ())
        in
        Proc.return ())
  in
  check_bool "compactions ran" true (!compactions >= 1);
  Alcotest.(check (list (pair int string))) "no data lost" [] !missing

(* Regression test for the shared-data-endpoint bug: interleaving IO on
   two files must not corrupt either. *)
let test_interleaved_fds_no_corruption () =
  let a_ok = ref false and b_ok = ref false in
  let _ =
    run_db_system (fun vfs ->
        let open M3v_os in
        let* fa = vfs.Vfs.open_ "/a" Fs_proto.wronly in
        let fa = match fa with Ok fd -> fd | Error e -> failwith e in
        let* fb = vfs.Vfs.open_ "/b" Fs_proto.wronly in
        let fb = match fb with Ok fd -> fd | Error e -> failwith e in
        let* buf = M3v_mux.Act_api.alloc_buf 4096 in
        let write fd c =
          Bytes.fill buf.M3v_mux.Act_ops.data 0 4096 c;
          let* n = vfs.Vfs.write fd buf 4096 in
          if n <> 4096 then failwith "short write";
          Proc.return ()
        in
        (* Interleave writes so the data endpoint bounces between files. *)
        let* () =
          Proc.repeat 4 (fun _ ->
              let* () = write fa 'A' in
              write fb 'B')
        in
        let* () = vfs.Vfs.close fa in
        let* () = vfs.Vfs.close fb in
        let* ra = Vfs.read_all vfs "/a" in
        let* rb = Vfs.read_all vfs "/b" in
        (match ra with
        | Ok d ->
            a_ok :=
              Bytes.length d = 16384
              && Bytes.for_all (fun c -> c = 'A') d
        | Error e -> failwith e);
        (match rb with
        | Ok d ->
            b_ok :=
              Bytes.length d = 16384
              && Bytes.for_all (fun c -> c = 'B') d
        | Error e -> failwith e);
        Proc.return ())
  in
  check_bool "file A intact" true !a_ok;
  check_bool "file B intact" true !b_ok

let suite =
  [
    ("flac roundtrip audio", `Quick, test_flac_roundtrip_audio);
    ("flac compresses", `Quick, test_flac_compresses_audio);
    ("flac constant signal", `Quick, test_flac_constant_signal_tiny);
    ("flac edge cases", `Quick, test_flac_edge_cases);
    ("pcm roundtrip", `Quick, test_pcm_roundtrip);
    ("audio bursts", `Quick, test_audio_has_bursts);
    ("zipf skew", `Quick, test_zipf_skew);
    ("ycsb mixes", `Quick, test_ycsb_mixes);
    ("ycsb scan-heavy", `Quick, test_ycsb_scan_heavy_has_no_updates);
    ("ycsb fresh inserts", `Quick, test_ycsb_inserts_use_fresh_keys);
    ("trace shapes", `Quick, test_trace_shapes);
    ("trace custom sizes", `Quick, test_trace_custom_sizes);
    ("cloud codec roundtrip", `Quick, test_cloud_codec_roundtrip);
    ("kvstore put/get/scan", `Quick, test_kvstore_put_get_scan);
    ("kvstore update wins", `Quick, test_kvstore_update_wins);
    ("kvstore compaction", `Quick, test_kvstore_compaction_preserves_data);
    ("interleaved fds (regression)", `Quick, test_interleaved_fds_no_corruption);
  ]
  @ [ QCheck_alcotest.to_alcotest prop_flac_roundtrip ]
