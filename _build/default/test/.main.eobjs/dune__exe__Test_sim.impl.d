test/test_sim.ml: Alcotest Array Engine Event_queue Fun List M3v_sim Option Proc QCheck QCheck_alcotest Rng Stats Time
