test/main.ml: Alcotest Test_apps Test_area Test_dtu Test_integration Test_kernel Test_linux Test_mux Test_noc Test_os Test_props Test_sim Test_syscalls Test_tile
