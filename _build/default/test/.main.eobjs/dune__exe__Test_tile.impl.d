test/test_tile.ml: Alcotest Core_model Engine List M3v_dtu M3v_sim M3v_tile Platform Tile
