test/test_noc.ml: Alcotest Engine List M3v_noc M3v_sim Noc QCheck QCheck_alcotest Time Topology
