test/test_props.ml: Alcotest Bytes Engine Gen List M3v M3v_dtu M3v_mux M3v_noc M3v_os M3v_sim Option Proc QCheck QCheck_alcotest Queue Time
