test/test_os.ml: Alcotest Array Bytes Char List M3v M3v_kernel M3v_mux M3v_os M3v_sim Option Printf Proc QCheck QCheck_alcotest Stats String
