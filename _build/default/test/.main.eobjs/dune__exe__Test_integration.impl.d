test/test_integration.ml: Alcotest Bytes Char List M3v M3v_apps M3v_dtu M3v_kernel M3v_mux M3v_os M3v_sim M3v_tile Option Proc Time
