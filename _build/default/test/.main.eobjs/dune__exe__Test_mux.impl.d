test/test_mux.ml: Alcotest Array Bytes M3v M3v_dtu M3v_kernel M3v_mux M3v_sim M3v_tile Printf Proc Stats Time
