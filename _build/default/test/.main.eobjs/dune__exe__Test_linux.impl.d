test/test_linux.ml: Alcotest Array Bytes Char Engine List M3v_linux M3v_mux M3v_os M3v_sim Printf Proc Time
