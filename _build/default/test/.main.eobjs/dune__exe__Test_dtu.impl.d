test/test_dtu.ml: Alcotest Bytes Dram Dtu Dtu_types Engine Ep M3v_dtu M3v_noc M3v_sim Msg Option Tlb
