test/test_kernel.ml: Alcotest Cap Controller Engine List M3v_dtu M3v_kernel M3v_sim M3v_tile
