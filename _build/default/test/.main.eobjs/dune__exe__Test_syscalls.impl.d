test/test_syscalls.ml: Alcotest Array Bytes List M3v M3v_dtu M3v_kernel M3v_mux M3v_sim M3v_tile Option Printf Proc
