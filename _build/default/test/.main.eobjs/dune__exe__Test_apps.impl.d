test/test_apps.ml: Alcotest Array Bytes Char Fs_proto Gen Hashtbl List M3v M3v_apps M3v_mux M3v_os M3v_sim Option Printf Proc QCheck QCheck_alcotest Rng Vfs
