test/main.mli:
