test/test_area.ml: Alcotest List M3v_area Printf
