(* m3vsim: run the paper's experiments and print each table/figure.

   Usage: m3vsim <experiment> [options], or `m3vsim all`.  Every
   experiment accepts --trace FILE to additionally record a Chrome
   trace-event JSON file (load it in chrome://tracing or Perfetto) and
   print latency percentiles; `m3vsim --trace FILE` with no experiment
   runs a traced RPC microbenchmark (fig6).

   Fault injection: --faults SPEC (e.g. drop=0.01,dup=0.005,crash=2)
   plus --fault-seed N runs the experiment under a deterministic fault
   plan; bare `m3vsim --faults SPEC` runs the chaos soak.

   Parallelism: --jobs N (or M3V_JOBS) fans independent units of the
   experiment out over N domains.  Output is byte-identical to a
   sequential run; --trace/--faults force sequential execution. *)

open Cmdliner

let trace =
  let doc =
    "Record the run into a Chrome trace-event JSON file at $(docv) \
     (viewable in chrome://tracing or Perfetto) and print latency \
     percentiles and a per-tile event summary."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics =
  let doc =
    "Export the metrics registry (counters, gauges, histograms, \
     time-series) as JSON to $(docv) and print the metric tables.  \
     Unlike --trace, metrics do not force sequential execution: --jobs 4 \
     output is byte-identical to --jobs 1."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let faults =
  let doc =
    "Inject deterministic faults described by $(docv), a comma-separated \
     list of key=value pairs: drop, dup, delay, cmd_fail (probabilities \
     in [0,1]) and crash, hang, stall (event counts), e.g. \
     drop=0.01,dup=0.005,crash=2."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let fault_seed =
  let doc = "Seed for the fault plan (same spec + seed = same run)." in
  Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Run independent parts of the experiment on $(docv) domains \
     (defaults to $(b,M3V_JOBS) or the number of cores).  Output is \
     byte-identical to --jobs 1; --trace and --faults force sequential \
     execution."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards =
  let doc =
    "Run each simulation under the conservative-window sharded scheduler \
     with $(docv) shards.  Output is byte-identical to --shards 1 (the \
     default, plain sequential engine)."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"K" ~doc)

let telemetry =
  let doc =
    "Record per-window shard telemetry (per-shard events, limiter \
     attribution, imbalance, critical-path speedup bound) on every \
     multi-shard group and print the analyzer report to stderr when the \
     run ends.  Pure observer: stdout is byte-identical with or without \
     this flag.  See also the shard-report subcommand."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let rounds =
  let doc = "Measured RPC round trips." in
  Arg.(value & opt int 1000 & info [ "rounds" ] ~doc)

let fig6_cmd =
  Cmd.v (Cmd.info "fig6" ~doc:"Figure 6: local/remote RPC vs Linux primitives")
    Term.(const (fun trace metrics faults fault_seed jobs rounds ->
              M3v.Exp_runner.fig6 ?trace ?metrics ?faults ~fault_seed ?jobs
                ~rounds ())
          $ trace $ metrics $ faults $ fault_seed $ jobs $ rounds)

let runs =
  let doc = "Measured repetitions." in
  Arg.(value & opt int 0 & info [ "runs" ] ~doc)

let fig7_cmd =
  Cmd.v (Cmd.info "fig7" ~doc:"Figure 7: file read/write throughput")
    Term.(const (fun trace metrics faults fault_seed jobs runs ->
              M3v.Exp_runner.fig7 ?trace ?metrics ?faults ~fault_seed ?jobs
                ~runs ())
          $ trace $ metrics $ faults $ fault_seed $ jobs $ runs)

let fig8_cmd =
  Cmd.v (Cmd.info "fig8" ~doc:"Figure 8: UDP latency")
    Term.(const (fun trace metrics faults fault_seed jobs runs ->
              M3v.Exp_runner.fig8 ?trace ?metrics ?faults ~fault_seed ?jobs
                ~runs ())
          $ trace $ metrics $ faults $ fault_seed $ jobs $ runs)

let fig9_cmd =
  Cmd.v (Cmd.info "fig9" ~doc:"Figure 9: scalability of tile multiplexing (M3x vs M3v)")
    Term.(const (fun trace metrics faults fault_seed telemetry jobs shards runs ->
              M3v.Exp_runner.fig9 ?trace ?metrics ?faults ~fault_seed ~telemetry
                ?jobs ~shards ~runs ())
          $ trace $ metrics $ faults $ fault_seed $ telemetry $ jobs $ shards
          $ runs)

let fig10_cmd =
  Cmd.v (Cmd.info "fig10" ~doc:"Figure 10: cloud service (YCSB) vs Linux")
    Term.(const (fun trace metrics faults fault_seed jobs runs ->
              M3v.Exp_runner.fig10 ?trace ?metrics ?faults ~fault_seed ?jobs
                ~runs ())
          $ trace $ metrics $ faults $ fault_seed $ jobs $ runs)

let voice_cmd =
  Cmd.v (Cmd.info "voice" ~doc:"Section 6.5.1: voice assistant sharing overhead")
    Term.(const (fun trace metrics faults fault_seed jobs runs ->
              M3v.Exp_runner.voice ?trace ?metrics ?faults ~fault_seed ?jobs
                ~runs ())
          $ trace $ metrics $ faults $ fault_seed $ jobs $ runs)

let fanin_msgs =
  let doc = "Messages per sender (<= 0 picks the default)." in
  Arg.(value & opt int 0 & info [ "msgs" ] ~docv:"N" ~doc)

let fanin_senders =
  let doc =
    "Comma-separated sender counts to sweep (defaults to 4,16,64)."
  in
  Arg.(value & opt (list int) [] & info [ "senders" ] ~docv:"N,..." ~doc)

let fanin_cmd =
  Cmd.v
    (Cmd.info "fanin"
       ~doc:
         "Fan-in ablation: N senders -> 1 server throughput, shared MPMC \
          receive endpoint (batched acks, coalesced doorbells) vs \
          per-sender endpoints")
    Term.(const (fun trace metrics faults fault_seed jobs shards msgs senders ->
              M3v.Exp_runner.fanin ?trace ?metrics ?faults ~fault_seed ?jobs
                ~shards ~msgs ~senders ())
          $ trace $ metrics $ faults $ fault_seed $ jobs $ shards $ fanin_msgs
          $ fanin_senders)

let load_clients =
  let doc = "Total simulated clients in the fleet." in
  Arg.(value & opt int 100_000 & info [ "clients" ] ~docv:"N" ~doc)

let load_drivers =
  let doc = "Driver activities the clients multiplex onto (1-8)." in
  Arg.(value & opt int 8 & info [ "drivers" ] ~docv:"N" ~doc)

let load_rate =
  let doc = "Aggregate offered load (requests/s) at step fraction 1.0." in
  Arg.(value & opt float 2000.0 & info [ "rate" ] ~docv:"R" ~doc)

let load_mix =
  let doc =
    "Request mix as class=weight pairs over udp, get, put and fs, e.g. \
     udp=50,get=25,put=10,fs=15 (the default)."
  in
  Arg.(value & opt (some string) None & info [ "mix" ] ~docv:"SPEC" ~doc)

let load_skew =
  let doc = "Zipf theta over the key space, in [0, 1)." in
  Arg.(value & opt float 0.99 & info [ "skew" ] ~docv:"THETA" ~doc)

let load_keys =
  let doc = "Key-space size." in
  Arg.(value & opt int 4096 & info [ "keys" ] ~docv:"N" ~doc)

let load_duration =
  let doc = "Measurement window per step, simulated milliseconds." in
  Arg.(value & opt int 200 & info [ "duration" ] ~docv:"MS" ~doc)

let load_steps =
  let doc = "Comma-separated load steps as fractions of --rate." in
  Arg.(value
       & opt (list float) [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ]
       & info [ "steps" ] ~docv:"F,..." ~doc)

let load_closed =
  let doc =
    "Closed-loop fleet (each client thinks --think-ms between requests) \
     instead of the default open loop."
  in
  Arg.(value & flag & info [ "closed" ] ~doc)

let load_think =
  let doc = "Closed-loop mean think time (ms) at step fraction 1.0." in
  Arg.(value & opt int 500 & info [ "think-ms" ] ~docv:"MS" ~doc)

let load_arrivals =
  let doc = "Open-loop arrival process: poisson or bursty (2-state MMPP)." in
  Arg.(value
       & opt (enum [ ("poisson", M3v_load.Fleet.Poisson);
                     ("bursty", M3v_load.Fleet.Bursty) ])
           M3v_load.Fleet.Poisson
       & info [ "arrivals" ] ~docv:"KIND" ~doc)

let load_slo =
  let doc = "SLO bound on overall p99 latency (us) for knee detection." in
  Arg.(value & opt float 5000.0 & info [ "slo-p99-us" ] ~docv:"US" ~doc)

let load_seed =
  let doc = "Fleet schedule seed (same seed = byte-identical report)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let load_cmd =
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Load harness: open/closed-loop client fleets drive net + m3fs + \
          the key-value service at swept offered load; reports \
          latency-vs-load SLO tables (p50/p99/p999), detects the \
          saturation knee and attributes the bottleneck from the \
          critical-path profiler")
    Term.(const (fun trace metrics faults fault_seed telemetry jobs shards
                     clients drivers rate mix skew keys duration steps closed
                     think_ms arrivals slo seed ->
              let mix =
                match mix with
                | None -> M3v_load.Fleet.default_mix
                | Some s -> (
                    match M3v_load.Fleet.parse_mix s with
                    | Ok m -> m
                    | Error e ->
                        Format.eprintf "m3vsim load: bad --mix: %s@." e;
                        Stdlib.exit 2)
              in
              let cfg =
                {
                  M3v.Exp_load.default with
                  clients;
                  drivers;
                  rate_per_s = rate;
                  closed;
                  think_ms;
                  arrivals;
                  mix;
                  skew;
                  keys;
                  duration_ms = duration;
                  fracs = steps;
                  slo_p99_us = slo;
                  seed;
                }
              in
              M3v.Exp_runner.load ?trace ?metrics ?faults ~fault_seed
                ~telemetry ?jobs ~shards ~cfg ())
          $ trace $ metrics $ faults $ fault_seed $ telemetry $ jobs $ shards
          $ load_clients $ load_drivers $ load_rate $ load_mix $ load_skew
          $ load_keys $ load_duration $ load_steps $ load_closed $ load_think
          $ load_arrivals $ load_slo $ load_seed)

let mig_rounds =
  let doc = "RPCs the client drives through the migrating server." in
  Arg.(value & opt int 0 & info [ "rounds" ] ~doc)

let mig_rates =
  let doc =
    "Comma-separated request rates (msgs/s) to sweep (defaults to \
     2000,10000,40000)."
  in
  Arg.(value & opt (list int) [] & info [ "rates" ] ~docv:"N,..." ~doc)

let mig_seed =
  let doc = "Seed for the fault plan of the faulty half of the sweep." in
  Arg.(value & opt int 11 & info [ "fault-seed" ] ~docv:"N" ~doc)

let migrate_cmd =
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Live-migration ablation: an echo server is migrated between \
          tiles under a paced RPC stream; reports downtime vs message \
          rate and verifies exactly-once delivery, clean and with \
          injected migration aborts")
    Term.(const (fun trace metrics jobs seed rounds rates ->
              M3v.Exp_runner.migrate ?trace ?metrics ?jobs ~seed ~rounds
                ~rates ())
          $ trace $ metrics $ jobs $ mig_seed $ mig_rounds $ mig_rates)

let chaos_rounds =
  let doc = "Full read+write rounds for the fs workload." in
  Arg.(value & opt int 5 & info [ "rounds" ] ~doc)

let chaos_ops =
  let doc = "Inline put/get operations for the kv workload." in
  Arg.(value & opt int 120 & info [ "ops" ] ~doc)

let chaos_seeds =
  let doc =
    "Soak $(docv) consecutive seeds starting at --fault-seed, fanned out \
     over --jobs domains; each seed prints its own report."
  in
  Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc)

let chaos_ckpt_every =
  let doc =
    "Checkpoint the whole simulator every $(docv) simulated milliseconds \
     (to --checkpoint-file); a run resumed from such a checkpoint prints \
     a byte-identical report.  Single-seed; incompatible with --trace."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"MS" ~doc)

let chaos_ckpt_file =
  let doc = "Checkpoint file path (overwritten atomically at each save)." in
  Arg.(value
       & opt string "chaos.ckpt"
       & info [ "checkpoint-file" ] ~docv:"FILE" ~doc)

let chaos_stop_after =
  let doc =
    "Abandon the run after the $(docv)-th checkpoint is written (resume \
     later with --resume); with 0, run to completion."
  in
  Arg.(value & opt int 0 & info [ "stop-after" ] ~docv:"N" ~doc)

let chaos_resume =
  let doc =
    "Resume a checkpointed soak from $(docv) instead of starting one \
     (must be the same m3vsim binary that wrote it)."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos soak: fs + kvstore workloads under fault injection \
          (defaults to drop=0.01,dup=0.005,delay=0.01,cmd_fail=0.005,\
          crash=2,hang=1 when --faults is omitted); \
          --checkpoint-every/--resume stop and restart the soak across \
          processes with byte-identical results")
    Term.(const (fun trace faults fault_seed telemetry jobs shards seeds
                     ckpt_every ckpt_file stop_after resume rounds ops ->
              M3v.Exp_runner.chaos ?trace ?faults ~fault_seed ~telemetry ?jobs
                ~shards ~seeds ~checkpoint_every_ms:ckpt_every
                ~checkpoint_file:ckpt_file ~stop_after ?resume ~rounds ~ops ())
          $ trace $ faults $ fault_seed $ telemetry $ jobs $ shards
          $ chaos_seeds $ chaos_ckpt_every $ chaos_ckpt_file $ chaos_stop_after
          $ chaos_resume $ chaos_rounds $ chaos_ops)

let sweep_tiles =
  let doc = "Comma-separated tile counts to sweep (defaults to 64,256)." in
  Arg.(value & opt (list int) [] & info [ "tiles" ] ~docv:"N,..." ~doc)

let sweep_shards =
  let doc =
    "Shard count for the sharded run of each point (clamped to the \
     cluster count)."
  in
  Arg.(value & opt int 4 & info [ "shards" ] ~docv:"K" ~doc)

let sweep_chains =
  let doc = "Token chains per tile (<= 0 picks the default)." in
  Arg.(value & opt int 0 & info [ "chains" ] ~docv:"N" ~doc)

let sweep_hops =
  let doc = "Hops per chain (<= 0 picks the default)." in
  Arg.(value & opt int 0 & info [ "hops" ] ~docv:"N" ~doc)

let sweep_weight =
  let doc =
    "Rounds of deterministic hash churn per served hop — the CPU weight \
     of one event (<= 0 picks the default)."
  in
  Arg.(value & opt int 0 & info [ "weight" ] ~docv:"N" ~doc)

let sweep_seed =
  let doc = "Workload seed (same seed = byte-identical report)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let shard_sweep_cmd =
  Cmd.v
    (Cmd.info "shard-sweep"
       ~doc:
         "Partitioned-parallel scaling: a 64-1024-tile clustered \
          token-chain workload under the conservative-lookahead sharded \
          scheduler.  Every point runs sequentially and sharded, asserts \
          identical results on stdout, and reports wall-clock speedup on \
          stderr")
    Term.(const (fun trace metrics telemetry jobs shards seed chains hops
                     weight tiles ->
              M3v.Exp_runner.shard_sweep ?trace ?metrics ~telemetry ?jobs
                ~shards ~seed ~chains ~hops ~weight ~tiles ())
          $ trace $ metrics $ telemetry $ jobs $ sweep_shards $ sweep_seed
          $ sweep_chains $ sweep_hops $ sweep_weight $ sweep_tiles)

let report_tiles =
  let doc = "Tile count of the analyzed run (<= 0 picks the default 256)." in
  Arg.(value & opt int 0 & info [ "tiles" ] ~docv:"N" ~doc)

let report_lanes =
  let doc =
    "Write per-shard Chrome trace lanes (one pid per shard: window spans \
     and barrier gaps on wall-clock axes) to $(docv) — viewable in \
     chrome://tracing or Perfetto.  This is the telemetry timeline, not \
     a simulation trace."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let shard_report_cmd =
  Cmd.v
    (Cmd.info "shard-report"
       ~doc:
         "Analyze one sharded run with per-window telemetry: per-shard \
          imbalance, limiter attribution (which shard's horizon bounded \
          each window), null-message and merge counts, and a \
          critical-path speedup bound — the data to aim partitioning and \
          work-stealing work at")
    Term.(const (fun lanes jobs shards seed tiles chains hops weight ->
              M3v.Exp_runner.shard_report ?jobs ~shards ~seed ?trace:lanes
                ~tiles ~chains ~hops ~weight ())
          $ report_lanes $ jobs $ sweep_shards $ sweep_seed $ report_tiles
          $ sweep_chains $ sweep_hops $ sweep_weight)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Table 1: FPGA area consumption")
    Term.(const (fun trace () -> M3v.Exp_runner.table1 ?trace ())
          $ trace $ const ())

let complexity_cmd =
  Cmd.v (Cmd.info "complexity" ~doc:"Section 6.1: software complexity (SLOC)")
    Term.(const M3v.Exp_runner.complexity $ const ())

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Ablation studies: extent cap, TLB size, topology, M3x state")
    Term.(const (fun trace jobs () -> M3v.Exp_runner.ablations ?trace ?jobs ())
          $ trace $ jobs $ const ())

let profile_exp =
  let doc =
    "Experiment to profile: fig6 (RPC microbenchmark, default), fig7, \
     fig8, fig9, fig10 or voice."
  in
  Arg.(value & pos 0 string "fig6" & info [] ~docv:"EXP" ~doc)

let profile_rounds =
  let doc = "Measured RPC round trips (fig6 only; <= 0 picks the default)." in
  Arg.(value & opt int 0 & info [ "rounds" ] ~doc)

let folded =
  let doc =
    "Also write flamegraph-style folded stacks of simulated-time spans \
     (one $(i,frame;frame weight) line per stack; feed to flamegraph.pl \
     or speedscope) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Critical-path profiler: trace an experiment and decompose each \
          message flow's end-to-end latency into paper-aligned segments \
          (sender command, NoC transit, mux scheduling delay, \
          activity-switch cost, buffer wait, server compute, reply) with \
          p50/p99 per segment")
    Term.(const (fun exp trace folded metrics rounds runs ->
              M3v.Exp_runner.profile ~exp ?trace ?folded ?metrics ~rounds
                ~runs ())
          $ profile_exp $ trace $ folded $ metrics $ profile_rounds $ runs)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (paper evaluation order)")
    Term.(const (fun jobs () -> M3v.Exp_runner.all ?jobs ()) $ jobs $ const ())

(* Bare `m3vsim --faults SPEC` runs the chaos soak; bare `m3vsim --trace
   FILE` runs a traced RPC microbenchmark; bare `m3vsim` shows the
   experiment list. *)
let default =
  Term.ret
    Term.(
      const (fun trace faults fault_seed ->
          match (faults, trace) with
          | Some _, _ ->
              `Ok
                (M3v.Exp_runner.chaos ?trace ?faults ~fault_seed ~rounds:5
                   ~ops:120 ())
          | None, Some _ -> `Ok (M3v.Exp_runner.fig6 ?trace ~rounds:200 ())
          | None, None -> `Help (`Pager, None))
      $ trace $ faults $ fault_seed)

let () =
  let info = Cmd.info "m3vsim" ~doc:"M3v reproduction: experiment runner" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig6_cmd;
            fig7_cmd;
            fig8_cmd;
            fig9_cmd;
            fig10_cmd;
            voice_cmd;
            chaos_cmd;
            migrate_cmd;
            table1_cmd;
            complexity_cmd;
            ablations_cmd;
            fanin_cmd;
            load_cmd;
            shard_sweep_cmd;
            shard_report_cmd;
            profile_cmd;
            all_cmd;
          ]))
