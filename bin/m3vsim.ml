(* m3vsim: run the paper's experiments and print each table/figure.

   Usage: m3vsim <experiment> [options], or `m3vsim all`.  Every
   experiment accepts --trace FILE to additionally record a Chrome
   trace-event JSON file (load it in chrome://tracing or Perfetto) and
   print latency percentiles; `m3vsim --trace FILE` with no experiment
   runs a traced RPC microbenchmark (fig6). *)

open Cmdliner

let trace =
  let doc =
    "Record the run into a Chrome trace-event JSON file at $(docv) \
     (viewable in chrome://tracing or Perfetto) and print latency \
     percentiles and a per-tile event summary."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let rounds =
  let doc = "Measured RPC round trips." in
  Arg.(value & opt int 1000 & info [ "rounds" ] ~doc)

let fig6_cmd =
  Cmd.v (Cmd.info "fig6" ~doc:"Figure 6: local/remote RPC vs Linux primitives")
    Term.(const (fun trace rounds -> M3v.Exp_runner.fig6 ?trace ~rounds ())
          $ trace $ rounds)

let runs =
  let doc = "Measured repetitions." in
  Arg.(value & opt int 0 & info [ "runs" ] ~doc)

let fig7_cmd =
  Cmd.v (Cmd.info "fig7" ~doc:"Figure 7: file read/write throughput")
    Term.(const (fun trace runs -> M3v.Exp_runner.fig7 ?trace ~runs ())
          $ trace $ runs)

let fig8_cmd =
  Cmd.v (Cmd.info "fig8" ~doc:"Figure 8: UDP latency")
    Term.(const (fun trace runs -> M3v.Exp_runner.fig8 ?trace ~runs ())
          $ trace $ runs)

let fig9_cmd =
  Cmd.v (Cmd.info "fig9" ~doc:"Figure 9: scalability of tile multiplexing (M3x vs M3v)")
    Term.(const (fun trace runs -> M3v.Exp_runner.fig9 ?trace ~runs ())
          $ trace $ runs)

let fig10_cmd =
  Cmd.v (Cmd.info "fig10" ~doc:"Figure 10: cloud service (YCSB) vs Linux")
    Term.(const (fun trace runs -> M3v.Exp_runner.fig10 ?trace ~runs ())
          $ trace $ runs)

let voice_cmd =
  Cmd.v (Cmd.info "voice" ~doc:"Section 6.5.1: voice assistant sharing overhead")
    Term.(const (fun trace runs -> M3v.Exp_runner.voice ?trace ~runs ())
          $ trace $ runs)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Table 1: FPGA area consumption")
    Term.(const (fun trace () -> M3v.Exp_runner.table1 ?trace ())
          $ trace $ const ())

let complexity_cmd =
  Cmd.v (Cmd.info "complexity" ~doc:"Section 6.1: software complexity (SLOC)")
    Term.(const M3v.Exp_runner.complexity $ const ())

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Ablation studies: extent cap, TLB size, topology, M3x state")
    Term.(const (fun trace () -> M3v.Exp_runner.ablations ?trace ())
          $ trace $ const ())

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (paper evaluation order)")
    Term.(const M3v.Exp_runner.all $ const ())

(* Bare `m3vsim --trace FILE` runs a traced RPC microbenchmark; bare
   `m3vsim` shows the experiment list. *)
let default =
  Term.ret
    Term.(
      const (fun trace ->
          match trace with
          | Some _ -> `Ok (M3v.Exp_runner.fig6 ?trace ~rounds:200 ())
          | None -> `Help (`Pager, None))
      $ trace)

let () =
  let info = Cmd.info "m3vsim" ~doc:"M3v reproduction: experiment runner" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig6_cmd;
            fig7_cmd;
            fig8_cmd;
            fig9_cmd;
            fig10_cmd;
            voice_cmd;
            table1_cmd;
            complexity_cmd;
            ablations_cmd;
            all_cmd;
          ]))
