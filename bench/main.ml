(* Benchmark harness.

   Two parts, as required for the reproduction:

   1. Regenerate every table and figure of the paper's evaluation with the
      paper's parameters and print them (the "figures" below);
   2. Register one Bechamel [Test.make] per experiment, measuring the
      simulator itself on scaled-down instances (so the mono-clock numbers
      are host-side costs of regenerating each figure, suitable for
      tracking simulator performance regressions).

   `dune exec bench/main.exe` runs both.  Pass `--bechamel-only` or
   `--figures-only` to run half; `--json PATH` additionally dumps the
   Bechamel estimates as machine-readable JSON (for CI perf tracking). *)

open Bechamel
open Toolkit
module Runner = M3v.Exp_runner

let figures () =
  Format.printf "@.######## Paper evaluation: all tables and figures ########@.";
  Runner.all ();
  Format.printf "@.######## End of paper evaluation ########@.@."

(* --- scaled-down experiment instances for the Bechamel tests --- *)

let fig6_small () = ignore (M3v.Exp_fig6.run ~rounds:60 ())
let fig7_small () = ignore (M3v.Exp_fig7.run ~runs:1 ~warmup:0 ~file_size:(256 * 1024) ())
let fig8_small () = ignore (M3v.Exp_fig8.run ~runs:5 ~warmup:1 ())

let fig9_small () =
  ignore (M3v.Exp_fig9.run ~runs:1 ~warmup:0 ~tile_counts:[ 1; 2 ] ())

let fig10_small () = ignore (M3v.Exp_fig10.run ~runs:1 ~warmup:0 ~records:40 ~operations:40 ())
let voice_small () = ignore (M3v.Exp_voice.run ~runs:1 ~warmup:0 ~audio_seconds:4.0 ())
let table1_bench () = ignore (M3v.Exp_table1.run ())

(* Micro-level simulator benchmarks: cost of the core primitives. *)
let sim_rpc_m3v () =
  let open M3v in
  let r =
    Exp_fig6.run ~rounds:40 ()
  in
  ignore r

let tests =
  [
    Test.make ~name:"table1_area" (Staged.stage table1_bench);
    Test.make ~name:"fig6_rpc" (Staged.stage fig6_small);
    Test.make ~name:"fig7_fs" (Staged.stage fig7_small);
    Test.make ~name:"fig8_udp" (Staged.stage fig8_small);
    Test.make ~name:"fig9_scale" (Staged.stage fig9_small);
    Test.make ~name:"voice_assistant" (Staged.stage voice_small);
    Test.make ~name:"fig10_ycsb" (Staged.stage fig10_small);
    Test.make ~name:"sim_rpc_m3v" (Staged.stage sim_rpc_m3v);
    Test.make ~name:"ablation_extent"
      (Staged.stage (fun () -> ignore (M3v.Ablations.extent_size ~caps:[ 8; 64 ] ())));
  ]

let bechamel () =
  Format.printf "######## Bechamel: simulator cost per experiment ########@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:12 ~quota:(Time.second 2.0) ~stabilize:false
      ~kde:(Some 16) ()
  in
  let results =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analysis =
          Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                         ~predictors:[| Measure.run |])
            (Instance.monotonic_clock) results
        in
        (Test.name test, analysis))
      tests
  in
  (* Flatten to (name, ns/run estimate) so both renderers below agree. *)
  let estimates =
    List.map
      (fun (name, analysis) ->
        let est = ref None in
        Hashtbl.iter
          (fun _ ols ->
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> est := Some e
            | Some [] | None -> ())
          analysis;
        (name, !est))
      results
  in
  Format.printf "  %-18s %16s@." "experiment" "host ns/run";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "  %-18s %16.0f@." name est
      | None -> Format.printf "  %-18s %16s@." name "n/a")
    estimates;
  estimates

(* Machine-readable results for CI perf tracking: one object per
   benchmark, nanoseconds per run (host-side), null when the OLS fit
   produced no estimate. *)
let write_json path estimates =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\n  \"benchmarks\": [\n";
      List.iteri
        (fun i (name, est) ->
          Buffer.add_string buf
            (Printf.sprintf "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name
               (match est with
               | Some e -> Printf.sprintf "%.1f" e
               | None -> "null")
               (if i < List.length estimates - 1 then "," else "")))
        estimates;
      Buffer.add_string buf "  ]\n}\n";
      Buffer.output_buffer oc buf);
  Format.printf "@.bench results -> %s@." path

let () =
  let args = Array.to_list Sys.argv in
  let figures_only = List.mem "--figures-only" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if not bechamel_only then figures ();
  if not figures_only then begin
    let estimates = bechamel () in
    match json_path with
    | Some path -> write_json path estimates
    | None -> ()
  end
