(* Benchmark harness.

   Two parts, as required for the reproduction:

   1. Regenerate every table and figure of the paper's evaluation with the
      paper's parameters and print them (the "figures" below);
   2. Register one Bechamel [Test.make] per experiment, measuring the
      simulator itself on scaled-down instances (so the mono-clock numbers
      are host-side costs of regenerating each figure, suitable for
      tracking simulator performance regressions).

   `dune exec bench/main.exe` runs both.  Pass `--bechamel-only` or
   `--figures-only` to run half; `--jobs N` fans the figures out over N
   domains (the Bechamel suite always runs sequentially — parallel noise
   would defeat its purpose).

   CI perf tracking:
     bench --bechamel-only --json out.json     # results + git/host metadata
     bench --compare BASE.json CUR.json        # per-test deltas; exits 1 on
                                               # >threshold regressions
     bench --compare ... --threshold 25        # regression cutoff in % *)

open Bechamel
open Toolkit
module Runner = M3v.Exp_runner
module Bench_io = M3v_bench_io.Bench_io

let figures ?jobs () =
  Format.printf "@.######## Paper evaluation: all tables and figures ########@.";
  Runner.all ?jobs ();
  Format.printf "@.######## End of paper evaluation ########@.@."

(* --- scaled-down experiment instances for the Bechamel tests --- *)

let fig6_small () = ignore (M3v.Exp_fig6.run ~rounds:60 ())
let fig7_small () = ignore (M3v.Exp_fig7.run ~runs:1 ~warmup:0 ~file_size:(256 * 1024) ())
let fig8_small () = ignore (M3v.Exp_fig8.run ~runs:5 ~warmup:1 ())

let fig9_small () =
  ignore (M3v.Exp_fig9.run ~runs:1 ~warmup:0 ~tile_counts:[ 1; 2 ] ())

let fig10_small () = ignore (M3v.Exp_fig10.run ~runs:1 ~warmup:0 ~records:40 ~operations:40 ())
let voice_small () = ignore (M3v.Exp_voice.run ~runs:1 ~warmup:0 ~audio_seconds:4.0 ())
let table1_bench () = ignore (M3v.Exp_table1.run ())

(* Micro-level simulator benchmarks: cost of the core primitives. *)
let sim_rpc_m3v () =
  let open M3v in
  let r =
    Exp_fig6.run ~rounds:40 ()
  in
  ignore r

(* Shard count used by the sharded-scheduler benchmark below, recorded in
   the report's config header. *)
let bench_shards = 4

(* One shard-sweep point, sequential pool: measures the scheduler's
   window/flush machinery itself (both the shards=1 reference and the
   sharded run, including the identity comparison), not Domain
   parallelism — Bechamel numbers must stay single-threaded. *)
let shard_sweep_small () =
  ignore
    (M3v.Exp_shard.run_point ~progress:false ~pool:M3v_par.Par.Pool.sequential
       ~tiles:64 ~shards:bench_shards ~chains_per_tile:2 ~hops:8 ~weight:64
       ~seed:1 ())

(* Same point with per-window telemetry enabled on the sharded run: the
   delta against shard_sweep prices the recording overhead (window
   records, limiter attribution, imbalance histogram), gated in CI via
   the committed baseline. *)
let shard_telemetry_small () =
  ignore
    (M3v.Exp_shard.run_point ~progress:false ~telemetry:true
       ~pool:M3v_par.Par.Pool.sequential ~tiles:64 ~shards:bench_shards
       ~chains_per_tile:2 ~hops:8 ~weight:64 ~seed:1 ())

let tests =
  [
    Test.make ~name:"table1_area" (Staged.stage table1_bench);
    Test.make ~name:"fig6_rpc" (Staged.stage fig6_small);
    Test.make ~name:"fig7_fs" (Staged.stage fig7_small);
    Test.make ~name:"fig8_udp" (Staged.stage fig8_small);
    Test.make ~name:"fig9_scale" (Staged.stage fig9_small);
    Test.make ~name:"voice_assistant" (Staged.stage voice_small);
    Test.make ~name:"fig10_ycsb" (Staged.stage fig10_small);
    Test.make ~name:"sim_rpc_m3v" (Staged.stage sim_rpc_m3v);
    Test.make ~name:"ablation_extent"
      (Staged.stage (fun () -> ignore (M3v.Ablations.extent_size ~caps:[ 8; 64 ] ())));
    Test.make ~name:"ablation_fanin"
      (Staged.stage (fun () ->
           ignore (M3v.Exp_fanin.run ~msgs:10 ~sender_counts:[ 4; 16 ] ())));
    Test.make ~name:"shard_sweep" (Staged.stage shard_sweep_small);
    Test.make ~name:"shard_telemetry" (Staged.stage shard_telemetry_small);
    (* Not in BENCH_baseline.json yet: the compare gate must warn-and-skip
       it, not fail. *)
    Test.make ~name:"ablation_migrate"
      (Staged.stage (fun () ->
           ignore (M3v.Exp_migrate.run ~rounds:60 ~rates:[ 10_000 ] ())));
    Test.make ~name:"load_harness"
      (Staged.stage (fun () ->
           ignore
             (M3v.Exp_load.run
                ~cfg:
                  {
                    M3v.Exp_load.default with
                    clients = 200;
                    drivers = 2;
                    rate_per_s = 400.0;
                    warmup_ms = 10;
                    duration_ms = 40;
                    fracs = [ 0.5; 1.0 ];
                  }
                ())));
  ]

let bechamel () =
  Format.printf "######## Bechamel: simulator cost per experiment ########@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:12 ~quota:(Time.second 2.0) ~stabilize:false
      ~kde:(Some 16) ()
  in
  let results =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analysis =
          Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                         ~predictors:[| Measure.run |])
            (Instance.monotonic_clock) results
        in
        (Test.name test, analysis))
      tests
  in
  (* Flatten to (name, ns/run estimate) so both renderers below agree. *)
  let estimates =
    List.map
      (fun (name, analysis) ->
        let est = ref None in
        Hashtbl.iter
          (fun _ ols ->
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> est := Some e
            | Some [] | None -> ())
          analysis;
        (name, !est))
      results
  in
  Format.printf "  %-18s %16s@." "experiment" "host ns/run";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "  %-18s %16.0f@." name est
      | None -> Format.printf "  %-18s %16s@." name "n/a")
    estimates;
  estimates

(* --- provenance: where, when and from which commit the numbers came --- *)

let git_sha () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
      let sha = try input_line ic with End_of_file -> "" in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 when sha <> "" -> sha
      | _ -> "unknown")

let iso8601_utc now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_json ?jobs path estimates =
  let report =
    Bench_io.make ~git_sha:(git_sha ())
      ~timestamp:(iso8601_utc (Unix.gettimeofday ()))
      ~ocaml_version:Sys.ocaml_version
      ~hostname:(try Unix.gethostname () with _ -> "unknown")
      ~jobs:(Option.value jobs ~default:1)
      ~shards:bench_shards estimates
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Bench_io.to_json report));
  Format.printf "@.bench results -> %s@." path

(* --- baseline comparison (the CI perf-regression gate) --- *)

let load_report path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Format.eprintf "bench: cannot read %s: %s@." path msg;
      exit 2
  in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Bench_io.of_json text with
  | Ok r -> r
  | Error msg ->
      Format.eprintf "bench: %s: %s@." path msg;
      exit 2

let compare_reports ~threshold_pct base_path cur_path =
  let baseline = load_report base_path in
  let current = load_report cur_path in
  let cmp = Bench_io.compare ~threshold_pct ~baseline ~current in
  Bench_io.pp_comparison ~threshold_pct ~baseline ~current
    Format.std_formatter cmp;
  if cmp.Bench_io.regressions <> [] then exit 1

let () =
  let args = Array.to_list Sys.argv in
  let figures_only = List.mem "--figures-only" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let find_opt flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let find2_opt flag =
    let rec find = function
      | f :: a :: b :: _ when f = flag -> Some (a, b)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let threshold_pct =
    match Option.map float_of_string_opt (find_opt "--threshold") with
    | Some None ->
        Format.eprintf "bench: --threshold expects a number@.";
        exit 2
    | Some (Some t) -> t
    | None -> 25.0
  in
  match find2_opt "--compare" with
  | Some (base_path, cur_path) ->
      compare_reports ~threshold_pct base_path cur_path
  | None ->
      let jobs =
        match Option.map int_of_string_opt (find_opt "--jobs") with
        | Some None ->
            Format.eprintf "bench: --jobs expects a number@.";
            exit 2
        | Some (Some j) -> Some j
        | None -> None
      in
      if not bechamel_only then figures ?jobs ();
      if not figures_only then begin
        let estimates = bechamel () in
        match find_opt "--json" with
        | Some path -> write_json ?jobs path estimates
        | None -> ()
      end
