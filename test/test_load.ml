(* Load-harness tests: sampler determinism and shape (chi-square), fleet
   schedule invariants, knee detection over synthetic sweeps, the
   [A.sleep] primitive, and end-to-end [Exp_load] determinism across
   [--jobs] settings. *)

open M3v_sim
module Sampler = M3v_load.Sampler
module Fleet = M3v_load.Fleet
module Knee = M3v_load.Knee
module Slo = M3v_load.Slo
module Par = M3v_par.Par
module A = M3v_mux.Act_api
module System = M3v.System

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- samplers: equal seeds give byte-identical streams --- *)

let zipf_stream ~seed ~n ~theta k =
  let rng = Rng.create ~seed in
  let z = Sampler.Zipf.create ~theta ~n rng in
  List.init k (fun _ -> Sampler.Zipf.sample z)

let poisson_stream ~seed ~rate k =
  let rng = Rng.create ~seed in
  let p = Sampler.Poisson.create ~rate_per_s:rate ~start_ps:0 rng in
  List.init k (fun _ -> Sampler.Poisson.next p)

let prop_equal_seed_streams =
  QCheck.Test.make ~name:"equal seeds give byte-identical sampler streams"
    ~count:50
    QCheck.(small_nat)
    (fun seed ->
      zipf_stream ~seed ~n:128 ~theta:0.99 200
      = zipf_stream ~seed ~n:128 ~theta:0.99 200
      && poisson_stream ~seed ~rate:1.0e5 200
         = poisson_stream ~seed ~rate:1.0e5 200)

(* The determinism bar of the load harness: a sampler stream computed on
   a worker domain ([--jobs 4]) is byte-identical to the sequential one. *)
let test_streams_identical_under_jobs () =
  let job seed () = zipf_stream ~seed ~n:512 ~theta:0.9 1_000 in
  let seeds = List.init 8 (fun i -> 17 * (i + 1)) in
  let seq = List.map (fun s -> job s ()) seeds in
  let par =
    Par.Pool.with_pool ~jobs:4 (fun pool -> Par.map pool (fun s -> job s ()) seeds)
  in
  check_bool "jobs=4 streams equal sequential" true (seq = par)

(* --- Zipf shape: chi-square against the analytic pmf --- *)

let test_zipf_chi_square () =
  let n = 64 and theta = 0.99 and draws = 50_000 in
  let rng = Rng.create ~seed:4242 in
  let z = Sampler.Zipf.create ~theta ~n rng in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Sampler.Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  (* Expected cell counts from p_i = (1/(i+1)^theta) / H_n(theta). *)
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let h = Array.fold_left ( +. ) 0.0 w in
  let chi2 = ref 0.0 in
  for i = 0 to n - 1 do
    let expected = float_of_int draws *. w.(i) /. h in
    let d = float_of_int counts.(i) -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  done;
  (* Gray's quick sampler is an approximation, so it fails a strict
     chi-square test (the 99.9th percentile of chi2(63) is ~103) by a
     small constant factor.  A broken sampler (uniform, off-by-one rank,
     wrong exponent) lands in the thousands, so a loose bound still
     catches shape bugs. *)
  check_bool
    (Printf.sprintf "chi-square %.1f within bound" !chi2)
    true (!chi2 < 400.0);
  (* Head monotonicity: rank 0 must dominate the mid-rank key. *)
  check_bool "rank 0 beats mid rank" true (counts.(0) > counts.(n / 2))

let test_zipf_validation () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "theta >= 1 rejected"
    (Invalid_argument "Zipf.create: theta must be in [0, 1)")
    (fun () -> ignore (Sampler.Zipf.create ~theta:1.0 ~n:8 rng))

(* --- mix: draw discipline and proportions --- *)

let test_mix_proportions () =
  let rng = Rng.create ~seed:99 in
  let m = Sampler.Mix.create [ ("a", 1); ("b", 3) ] rng in
  let draws = 40_000 in
  let b = ref 0 in
  for _ = 1 to draws do
    if Sampler.Mix.sample m = "b" then incr b
  done;
  let frac = float_of_int !b /. float_of_int draws in
  check_bool
    (Printf.sprintf "b fraction %.3f near 0.75" frac)
    true
    (Float.abs (frac -. 0.75) < 0.02)

let test_mix_validation () =
  let rng = Rng.create ~seed:1 in
  check_bool "empty rejected" true
    (try
       ignore (Sampler.Mix.create [] rng);
       false
     with Invalid_argument _ -> true);
  check_bool "zero sum rejected" true
    (try
       ignore (Sampler.Mix.create [ ("a", 0) ] rng);
       false
     with Invalid_argument _ -> true)

(* --- arrival processes --- *)

let test_poisson_gaps () =
  let rate = 1.0e6 in
  let ts = poisson_stream ~seed:7 ~rate 20_000 in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  check_bool "strictly increasing" true (strictly_increasing ts);
  let last = List.nth ts (List.length ts - 1) in
  let mean_gap = float_of_int last /. float_of_int (List.length ts) in
  (* Nominal mean gap at 1e6 req/s is 1e6 ps. *)
  check_bool
    (Printf.sprintf "mean gap %.0f ps near 1e6" mean_gap)
    true
    (Float.abs (mean_gap -. 1.0e6) /. 1.0e6 < 0.05)

let test_mmpp_rate_and_validation () =
  let rng = Rng.create ~seed:11 in
  let m = Sampler.Mmpp.create ~rate_per_s:1.0e5 ~start_ps:0 rng in
  let k = 200_000 in
  let last = ref 0 in
  let ok = ref true in
  for _ = 1 to k do
    let t = Sampler.Mmpp.next m in
    if t <= !last then ok := false;
    last := t
  done;
  check_bool "strictly increasing" true !ok;
  (* 2 s of simulated arrivals averages over ~80 state dwells, which
     still leaves visible modulation variance; the long-run rate must
     stay within a generous band of the nominal one (a wrong calm/burst
     rate split is off by 2x or more). *)
  let rate = float_of_int k /. (float_of_int !last /. 1.0e12) in
  check_bool
    (Printf.sprintf "long-run rate %.0f near 1e5" rate)
    true
    (Float.abs (rate -. 1.0e5) /. 1.0e5 < 0.25);
  check_bool "burst too high rejected" true
    (try
       ignore (Sampler.Mmpp.create ~burst:6.0 ~rate_per_s:1.0 ~start_ps:0 rng);
       false
     with Invalid_argument _ -> true);
  check_bool "burst <= 1 rejected" true
    (try
       ignore (Sampler.Mmpp.create ~burst:0.5 ~rate_per_s:1.0 ~start_ps:0 rng);
       false
     with Invalid_argument _ -> true)

(* --- fleet: mix parsing --- *)

let test_parse_mix () =
  (match Fleet.parse_mix (Fleet.mix_to_string Fleet.default_mix) with
  | Ok m -> check_bool "round-trips" true (m = Fleet.default_mix)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "unknown class" true (is_err (Fleet.parse_mix "bogus=1"));
  check_bool "bad weight" true (is_err (Fleet.parse_mix "get=x"));
  check_bool "bad entry" true (is_err (Fleet.parse_mix "get"));
  check_bool "zero sum" true (is_err (Fleet.parse_mix "get=0,put=0"))

(* --- fleet: schedule invariants --- *)

let fleet_cfg ~loop =
  {
    Fleet.clients = 100;
    drivers = 3;
    rate_per_s = 5_000.0;
    loop;
    arrivals = Fleet.Poisson;
    mix = Fleet.default_mix;
    skew = 0.99;
    keys = 256;
    warmup_ps = 1_000_000_000 (* 1 ms *);
    duration_ps = 10_000_000_000 (* 10 ms *);
    seed = 7;
  }

let drain d =
  let rec go acc =
    match Fleet.next d with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_open_schedule_invariants () =
  let cfg = fleet_cfg ~loop:Fleet.Open_loop in
  let total = ref 0 in
  let scheduled = ref 0 in
  for i = 0 to cfg.Fleet.drivers - 1 do
    let d = Fleet.make_driver cfg i in
    total := !total + Fleet.driver_clients d;
    let ops = drain d in
    scheduled := !scheduled + List.length ops;
    let base =
      List.fold_left (fun m (_, op) -> min m op.Fleet.op_client) max_int ops
    in
    List.iter
      (fun (ts, op) ->
        check_bool "ts after warmup" true (ts > cfg.Fleet.warmup_ps);
        check_bool "ts within window" true
          (ts <= cfg.Fleet.warmup_ps + cfg.Fleet.duration_ps);
        check_bool "client in slice" true
          (op.Fleet.op_client >= base
          && op.Fleet.op_client < base + Fleet.driver_clients d);
        check_bool "key in range" true
          (op.Fleet.op_key >= 0 && op.Fleet.op_key < cfg.Fleet.keys))
      ops;
    let rec monotone = function
      | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
      | _ -> true
    in
    check_bool "timestamps monotone" true (monotone ops);
    check_bool "exhausted stays exhausted" true (Fleet.next d = None)
  done;
  check_int "client slices partition the fleet" cfg.Fleet.clients !total;
  (* ~5000 req/s over 10 ms is ~50 arrivals; Poisson noise stays well
     inside [20, 100]. *)
  check_bool
    (Printf.sprintf "plausible arrival count %d" !scheduled)
    true
    (!scheduled > 20 && !scheduled < 100)

let test_closed_schedule_rearms () =
  let think_ps = 1_000_000_000 in
  let cfg = fleet_cfg ~loop:(Fleet.Closed_loop { think_ps }) in
  let d = Fleet.make_driver cfg 0 in
  let n = Fleet.driver_clients d in
  (* Without completions every client fires exactly once (its staggered
     initial wake). *)
  let first = drain d in
  check_int "one initial wake per client" n (List.length first);
  let clients =
    List.sort_uniq Stdlib.compare (List.map (fun (_, op) -> op.Fleet.op_client) first)
  in
  check_int "all clients distinct" n (List.length clients);
  (* A completion re-arms that client after its think time. *)
  let c = List.hd clients in
  Fleet.complete d ~client:c ~done_ps:(cfg.Fleet.warmup_ps + think_ps);
  (match Fleet.next d with
  | Some (_, op) -> check_int "re-armed client fires again" c op.Fleet.op_client
  | None -> Alcotest.fail "completion did not re-arm the client")

let test_equal_seed_schedules () =
  let cfg = fleet_cfg ~loop:Fleet.Open_loop in
  let s1 = drain (Fleet.make_driver cfg 1) in
  let s2 = drain (Fleet.make_driver cfg 1) in
  check_bool "equal-seed schedules identical" true (s1 = s2)

(* --- knee detection over synthetic sweeps --- *)

let step k_offered k_goodput k_p99_us = { Knee.k_offered; k_goodput; k_p99_us }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_knee_empty () =
  let v = Knee.detect [] in
  check_bool "no knee" true (v.Knee.knee = None)

let test_knee_flat () =
  (* Goodput tracks offered load, p99 flat: never saturates. *)
  let steps =
    List.map (fun f -> step (1000.0 *. f) (990.0 *. f) 120.0) [ 0.5; 1.0; 1.5; 2.0 ]
  in
  let v = Knee.detect ~slo_p99_us:5000.0 steps in
  check_bool "no knee" true (v.Knee.knee = None);
  check_string "reason" "no knee within the sweep" v.Knee.reason

let test_knee_cliff () =
  (* p99 explodes past the SLO at step 2. *)
  let steps =
    [
      step 500.0 495.0 100.0;
      step 1000.0 990.0 150.0;
      step 1500.0 1100.0 9_000.0;
      step 2000.0 1100.0 50_000.0;
    ]
  in
  let v = Knee.detect ~slo_p99_us:5000.0 steps in
  check_bool "knee at the cliff" true (v.Knee.knee = Some 2);
  check_bool "reason cites the SLO" true (contains ~sub:"SLO" v.Knee.reason)

let test_knee_gradual () =
  (* p99 stays under the SLO but marginal goodput collapses at step 2. *)
  let steps =
    [ step 500.0 495.0 100.0; step 1000.0 990.0 200.0; step 1500.0 1090.0 900.0 ]
  in
  let v = Knee.detect ~slo_p99_us:5000.0 steps in
  check_bool "knee where goodput stops scaling" true (v.Knee.knee = Some 2);
  check_bool "reason cites efficiency" true
    (contains ~sub:"goodput" v.Knee.reason)

let test_knee_all_saturated () =
  let steps = [ step 500.0 100.0 90_000.0; step 1000.0 100.0 95_000.0 ] in
  let v = Knee.detect ~slo_p99_us:5000.0 steps in
  check_bool "knees at step 0" true (v.Knee.knee = Some 0)

let test_knee_slo_disabled () =
  (* Default SLO is infinity: only the efficiency criterion can fire. *)
  let steps = [ step 500.0 495.0 90_000.0; step 1000.0 990.0 95_000.0 ] in
  let v = Knee.detect steps in
  check_bool "no knee with SLO disabled" true (v.Knee.knee = None)

(* --- SLO rows --- *)

let test_slo_row () =
  check_bool "empty sample has no row" true
    (Slo.row_of_latencies ~label:"x" [] = None);
  let lats = List.init 1000 (fun i -> float_of_int (i + 1)) in
  match Slo.row_of_latencies ~label:"x" lats with
  | None -> Alcotest.fail "row expected"
  | Some r ->
      check_int "n" 1000 r.Slo.n;
      check_bool "p50 near middle" true (Float.abs (r.Slo.p50_us -. 500.0) <= 1.0);
      check_bool "p99 near tail" true (Float.abs (r.Slo.p99_us -. 990.0) <= 1.0);
      check_bool "max is max" true (r.Slo.max_us = 1000.0)

(* --- the sleep primitive --- *)

let test_sleep_wakes_on_time () =
  let sys = System.create ~variant:System.M3v () in
  let elapsed = ref Time.zero in
  let open M3v_sim.Proc.Syntax in
  let _aid, _ =
    System.spawn sys ~tile:1 ~name:"sleeper" (fun _env ->
        let* t0 = A.now in
        let* () = A.sleep (Time.us 50) in
        let* t1 = A.now in
        elapsed := Time.sub t1 t0;
        Proc.return ())
  in
  System.boot sys;
  ignore (System.run sys);
  check_bool "slept at least the delay" true (!elapsed >= Time.us 50);
  (* The wake costs a trap and a dispatch, not another scheduling
     quantum (the TileMux time slice is in the milliseconds). *)
  check_bool
    (Printf.sprintf "woke promptly (%.1f us)" (Time.to_us !elapsed))
    true
    (!elapsed < Time.us 150)

let test_sleep_shares_the_core () =
  (* While one activity sleeps, a sibling on the same tile keeps
     computing: the sleeper must not pin the core. *)
  let sys = System.create ~variant:System.M3v () in
  let worker_done = ref Time.zero and sleeper_done = ref Time.zero in
  let open M3v_sim.Proc.Syntax in
  let _ =
    System.spawn sys ~tile:1 ~name:"sleeper" (fun _env ->
        let* () = A.sleep (Time.ms 2) in
        let* t = A.now in
        sleeper_done := t;
        Proc.return ())
  in
  let _ =
    System.spawn sys ~tile:1 ~name:"worker" (fun _env ->
        (* 80 MHz core: 80_000 cycles = 1 ms of compute. *)
        let* () = A.compute 80_000 in
        let* t = A.now in
        worker_done := t;
        Proc.return ())
  in
  System.boot sys;
  ignore (System.run sys);
  check_bool "worker finished during the sleep" true
    (!worker_done < !sleeper_done)

(* --- end-to-end: tiny sweep, byte-identical across jobs --- *)

let tiny_cfg =
  {
    M3v.Exp_load.default with
    clients = 120;
    drivers = 2;
    rate_per_s = 400.0;
    warmup_ms = 10;
    duration_ms = 40;
    fracs = [ 0.5; 1.0 ];
  }

let render cfg pool =
  Format.asprintf "%a" M3v.Exp_load.pp (M3v.Exp_load.run ~pool ~cfg ())

let test_exp_load_end_to_end () =
  let r = M3v.Exp_load.run ~cfg:tiny_cfg () in
  check_int "one step per fraction" 2 (List.length r.M3v.Exp_load.r_steps);
  List.iter
    (fun st ->
      check_bool "requests completed" true (st.M3v.Exp_load.st_completed > 0);
      check_int "no errors" 0 st.M3v.Exp_load.st_errors;
      let labels = List.map (fun r -> r.Slo.label) st.M3v.Exp_load.st_rows in
      check_bool "has an all row" true (List.mem "all" labels))
    r.M3v.Exp_load.r_steps;
  check_bool "attribution present" true
    (String.length r.M3v.Exp_load.r_attribution > 0)

let test_exp_load_jobs_deterministic () =
  let seq = render tiny_cfg Par.Pool.sequential in
  let par = Par.Pool.with_pool ~jobs:4 (fun pool -> render tiny_cfg pool) in
  check_string "jobs=4 report byte-identical to sequential" seq par

let suite =
  [
    QCheck_alcotest.to_alcotest prop_equal_seed_streams;
    Alcotest.test_case "streams identical under jobs=4" `Quick
      test_streams_identical_under_jobs;
    Alcotest.test_case "zipf chi-square shape" `Quick test_zipf_chi_square;
    Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "mix proportions" `Quick test_mix_proportions;
    Alcotest.test_case "mix validation" `Quick test_mix_validation;
    Alcotest.test_case "poisson gaps" `Quick test_poisson_gaps;
    Alcotest.test_case "mmpp rate and validation" `Quick
      test_mmpp_rate_and_validation;
    Alcotest.test_case "parse_mix" `Quick test_parse_mix;
    Alcotest.test_case "open-loop schedule invariants" `Quick
      test_open_schedule_invariants;
    Alcotest.test_case "closed-loop schedule re-arms" `Quick
      test_closed_schedule_rearms;
    Alcotest.test_case "equal-seed schedules identical" `Quick
      test_equal_seed_schedules;
    Alcotest.test_case "knee: empty sweep" `Quick test_knee_empty;
    Alcotest.test_case "knee: flat sweep" `Quick test_knee_flat;
    Alcotest.test_case "knee: cliff" `Quick test_knee_cliff;
    Alcotest.test_case "knee: gradual saturation" `Quick test_knee_gradual;
    Alcotest.test_case "knee: all saturated" `Quick test_knee_all_saturated;
    Alcotest.test_case "knee: slo disabled" `Quick test_knee_slo_disabled;
    Alcotest.test_case "slo rows" `Quick test_slo_row;
    Alcotest.test_case "sleep wakes on time" `Quick test_sleep_wakes_on_time;
    Alcotest.test_case "sleep shares the core" `Quick
      test_sleep_shares_the_core;
    Alcotest.test_case "exp_load end to end" `Quick test_exp_load_end_to_end;
    Alcotest.test_case "exp_load jobs determinism" `Quick
      test_exp_load_jobs_deterministic;
  ]
