open M3v_sim
open M3v_sim.Proc.Syntax
open M3v_kernel
module Dtu = M3v_dtu.Dtu
module Dtu_types = M3v_dtu.Dtu_types
module Platform = M3v_tile.Platform
module A = M3v_mux.Act_api
module System = M3v.System

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Cap unit tests --- *)

let mgate ~size =
  Cap.Mgate { mg_tile = 9; mg_base = 0; mg_size = size; mg_perm = Dtu_types.RW }

let test_cap_derive_mem () =
  let root = Cap.make ~sel:0 ~owner:1 (mgate ~size:4096) in
  (match Cap.derive_mem root ~sel:1 ~owner:2 ~off:1024 ~len:512 ~perm:Dtu_types.R with
  | Ok child -> (
      match child.Cap.obj with
      | Cap.Mgate { mg_base; mg_size; mg_perm; _ } ->
          check_int "base shifted" 1024 mg_base;
          check_int "size clipped" 512 mg_size;
          check_bool "perm intersected" true (mg_perm = Dtu_types.R)
      | _ -> Alcotest.fail "wrong object")
  | Error e -> Alcotest.failf "derive failed: %s" e);
  (match Cap.derive_mem root ~sel:2 ~owner:2 ~off:4000 ~len:512 ~perm:Dtu_types.RW with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range derive must fail");
  check_int "live count" 2 (Cap.live_count root)

let test_cap_revoke_subtree () =
  let root = Cap.make ~sel:0 ~owner:1 (mgate ~size:65536) in
  let c1 =
    match Cap.derive_mem root ~sel:1 ~owner:2 ~off:0 ~len:4096 ~perm:Dtu_types.RW with
    | Ok c -> c
    | Error e -> Alcotest.failf "derive: %s" e
  in
  let _c2 =
    match Cap.derive_mem c1 ~sel:2 ~owner:3 ~off:0 ~len:1024 ~perm:Dtu_types.R with
    | Ok c -> c
    | Error e -> Alcotest.failf "derive: %s" e
  in
  Cap.note_activation c1 ~tile:4 ~ep:12;
  let killed, eps = Cap.revoke c1 in
  check_int "subtree killed" 2 (List.length killed);
  Alcotest.(check (list (pair int int))) "eps to invalidate" [ (4, 12) ] eps;
  check_bool "child dead" false c1.Cap.live;
  check_bool "root alive" true root.Cap.live;
  check_int "root live count" 1 (Cap.live_count root)

let test_cap_revoke_root () =
  let root = Cap.make ~sel:0 ~owner:1 (mgate ~size:65536) in
  let rec grow parent depth =
    if depth > 0 then
      match
        Cap.derive_mem parent ~sel:depth ~owner:2 ~off:0 ~len:512 ~perm:Dtu_types.R
      with
      | Ok c -> grow c (depth - 1)
      | Error e -> Alcotest.failf "derive: %s" e
  in
  grow root 5;
  let killed, _ = Cap.revoke root in
  check_int "whole chain revoked" 6 (List.length killed);
  check_bool "derive from revoked fails" true
    (try
       ignore (Cap.derive root ~sel:9 ~owner:1 (mgate ~size:16));
       false
     with Invalid_argument _ -> true)

(* --- Controller host API --- *)

let make_system ?(mode = Controller.M3v) () =
  let eng = Engine.create () in
  let platform =
    Platform.create ~virtualized:(mode = Controller.M3v)
      ~tiles:(Platform.fpga_spec ()) eng ()
  in
  let ctrl = Controller.create ~mode ~platform ~tile:0 () in
  (eng, platform, ctrl)

let test_host_channel_setup () =
  let eng, platform, ctrl = make_system () in
  let server = Controller.host_new_act ctrl ~tile:2 ~name:"server" in
  let client = Controller.host_new_act ctrl ~tile:1 ~name:"client" in
  check_bool "distinct ids" true (server <> client);
  Alcotest.(check string) "name" "server" (Controller.act_name ctrl server);
  check_int "tile" 2 (Controller.act_tile ctrl server);
  let rgate_sel = Controller.host_new_rgate ctrl ~act:server ~slots:4 ~slot_size:256 in
  let rep = Controller.host_activate ctrl ~act:server ~sel:rgate_sel () in
  let sgate_sel =
    Controller.host_new_sgate ctrl ~owner:client ~rgate_of:server ~rgate_sel
      ~label:5 ~credits:2 ()
  in
  let sep = Controller.host_activate ctrl ~act:client ~sel:sgate_sel () in
  (* The endpoints are configured with the right owners. *)
  check_bool "recv ep owner" true
    ((Dtu.ext_read_ep (Platform.dtu platform 2) ~ep:rep).M3v_dtu.Ep.owner = server);
  (* Messages flow over the established channel. *)
  let d1 = Platform.dtu platform 1 in
  ignore (Dtu.switch_act d1 ~next:client);
  let ok = ref false in
  Dtu.send d1 ~ep:sep ~msg_size:8 M3v_dtu.Msg.Empty ~k:(fun r -> ok := r = Ok ());
  ignore (Engine.run eng);
  check_bool "channel works" true !ok;
  check_int "delivered to server" 1 (Dtu.unread_of (Platform.dtu platform 2) server);
  (* ep_owner registry knows the receive endpoint. *)
  check_bool "ep owner recorded" true
    (Controller.ep_owner ctrl ~tile:2 ~ep:rep = Some server)

let test_host_alloc_mem () =
  let _, _, ctrl = make_system () in
  let t1, b1 = Controller.host_alloc_mem ctrl ~size:4096 in
  let t2, b2 = Controller.host_alloc_mem ctrl ~size:4096 in
  check_bool "no overlap" true (t1 <> t2 || b1 <> b2);
  check_int "bump allocation" 4096 (abs (b2 - b1))

let test_sgate_needs_located_rgate () =
  let _, _, ctrl = make_system () in
  let server = Controller.host_new_act ctrl ~tile:2 ~name:"server" in
  let client = Controller.host_new_act ctrl ~tile:1 ~name:"client" in
  let rgate_sel = Controller.host_new_rgate ctrl ~act:server ~slots:2 ~slot_size:128 in
  let sgate_sel =
    Controller.host_new_sgate ctrl ~owner:client ~rgate_of:server ~rgate_sel
      ~credits:1 ()
  in
  (* Activating the send gate before the receive gate must fail. *)
  check_bool "unlocated rgate rejected" true
    (try
       ignore (Controller.host_activate ctrl ~act:client ~sel:sgate_sel ());
       false
     with Invalid_argument _ -> true)

let test_syscall_channel () =
  let _, platform, ctrl = make_system () in
  let act = Controller.host_new_act ctrl ~tile:1 ~name:"app" in
  let sgate, rgate = Controller.host_setup_syscall_channel ctrl ~act in
  check_bool "distinct eps" true (sgate <> rgate);
  let d = Platform.dtu platform 1 in
  (match (Dtu.ext_read_ep d ~ep:sgate).M3v_dtu.Ep.cfg with
  | M3v_dtu.Ep.Send s ->
      check_int "targets controller tile" 0 s.M3v_dtu.Ep.dst_tile;
      check_int "label is act id" act s.M3v_dtu.Ep.label
  | _ -> Alcotest.fail "syscall sgate not configured");
  (* Idempotent. *)
  let again = Controller.host_setup_syscall_channel ctrl ~act in
  check_bool "idempotent" true (again = (sgate, rgate))

(* --- syscall-level cascading revoke ---

   Revoking a capability kills its whole derivation subtree: derived
   selectors vanish from every owner's table (even on other activities)
   and activated endpoints are invalidated with their owner-table entries
   removed — nothing dangles. *)

let test_syscall_revoke_cascades () =
  let sys = System.create ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let friend, _ =
    System.spawn sys ~tile:2 ~name:"friend" (fun _ -> Proc.return ())
  in
  let sel_of = function
    | Protocol.Ok_sel s -> s
    | _ -> Alcotest.fail "expected Ok_sel"
  in
  let saved = ref None in
  let owner, _ =
    System.spawn sys ~tile:1 ~name:"owner" (fun env ->
        let* rep =
          A.syscall_exn env
            (Protocol.Alloc_mem { size = 8192; perm = Dtu_types.RW })
        in
        let root_sel = sel_of rep in
        let* rep =
          A.syscall_exn env
            (Protocol.Derive_mem_for
               {
                 target = friend;
                 src_sel = root_sel;
                 off = 0;
                 len = 4096;
                 perm = Dtu_types.R;
               })
        in
        let child_sel = sel_of rep in
        let* rep =
          A.syscall_exn env (Protocol.Create_rgate { slots = 2; slot_size = 128 })
        in
        let rg_sel = sel_of rep in
        let* rep = A.syscall_exn env (Protocol.Activate { sel = rg_sel; ep = None }) in
        let rg_ep =
          match rep with
          | Protocol.Ok_ep ep -> ep
          | _ -> Alcotest.fail "expected Ok_ep"
        in
        saved := Some (root_sel, child_sel, rg_sel, rg_ep);
        let* rep = A.syscall_exn env (Protocol.Revoke { sel = root_sel }) in
        (match rep with
        | Protocol.Ok_unit -> ()
        | _ -> Alcotest.fail "revoke mem failed");
        let* rep = A.syscall_exn env (Protocol.Revoke { sel = rg_sel }) in
        (match rep with
        | Protocol.Ok_unit -> ()
        | _ -> Alcotest.fail "revoke rgate failed");
        Proc.return ())
  in
  System.boot sys;
  ignore (System.run sys);
  match !saved with
  | None -> Alcotest.fail "owner program did not run"
  | Some (root_sel, child_sel, rg_sel, rg_ep) ->
      check_bool "root gone from owner's table" true
        (Controller.find_cap ctrl ~act:owner ~sel:root_sel = None);
      check_bool "derived child revoked from friend's table" true
        (Controller.find_cap ctrl ~act:friend ~sel:child_sel = None);
      check_bool "rgate cap gone" true
        (Controller.find_cap ctrl ~act:owner ~sel:rg_sel = None);
      check_bool "no dangling endpoint owner entry" true
        (Controller.ep_owner ctrl ~tile:1 ~ep:rg_ep = None);
      check_bool "endpoint invalidated on the tile" true
        ((Dtu.ext_read_ep (Platform.dtu (System.platform sys) 1) ~ep:rg_ep)
           .M3v_dtu.Ep.cfg = M3v_dtu.Ep.Invalid)

let suite =
  [
    ("cap derive mem", `Quick, test_cap_derive_mem);
    ("cap revoke subtree", `Quick, test_cap_revoke_subtree);
    ("cap revoke root chain", `Quick, test_cap_revoke_root);
    ("host channel setup", `Quick, test_host_channel_setup);
    ("host alloc mem", `Quick, test_host_alloc_mem);
    ("sgate needs located rgate", `Quick, test_sgate_needs_located_rgate);
    ("syscall channel", `Quick, test_syscall_channel);
    ("syscall revoke cascades", `Quick, test_syscall_revoke_cascades);
  ]
