(* Protocol-level property tests: credit conservation on the DTU under
   random operation interleavings, address-space invariants, and the net
   service's demultiplexing. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module Dtu = M3v_dtu.Dtu
module Ep = M3v_dtu.Ep
module Msg = M3v_dtu.Msg
module A = M3v_mux.Act_api
module System = M3v.System
module Services = M3v.Services

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Msg.data += P of int

(* --- credit conservation ---

   Invariant: at quiescence (no packets in flight), the sender's available
   credits plus the receiver's unacknowledged (occupied) slots equals the
   configured credit count.  We drive random interleavings of send, fetch
   and ack and check the invariant whenever the NoC is drained. *)

let prop_credit_conservation =
  QCheck.Test.make ~name:"credits + occupied slots are conserved" ~count:40
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 60) (int_bound 2)))
    (fun (seed, script) ->
      ignore seed;
      let eng = Engine.create () in
      let topo = M3v_noc.Topology.star_mesh_2x2 ~tiles:2 in
      let noc = M3v_noc.Noc.create eng topo in
      let d0 = Dtu.create ~virtualized:true ~tile:0 eng noc in
      let d1 = Dtu.create ~virtualized:true ~tile:1 eng noc in
      let lookup_dtu = function 0 -> Some d0 | 1 -> Some d1 | _ -> None in
      let lookup_mem = fun _ -> None in
      Dtu.connect d0 ~lookup_dtu ~lookup_mem;
      Dtu.connect d1 ~lookup_dtu ~lookup_mem;
      let credits = 3 in
      Dtu.ext_config d1 ~ep:1 ~owner:7
        (Ep.recv_config ~slots:credits ~slot_size:128 ());
      Dtu.ext_config d0 ~ep:1 ~owner:5
        (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~max_msg_size:64 ~credits ());
      ignore (Dtu.switch_act d0 ~next:5);
      ignore (Dtu.switch_act d1 ~next:7);
      let fetched = Queue.create () in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | 0 -> Dtu.send d0 ~ep:1 ~msg_size:16 (P 0) ~k:(fun _ -> ())
          | 1 -> (
              match Dtu.fetch d1 ~ep:1 with
              | Ok (Some msg) -> Queue.add msg fetched
              | Ok None | Error _ -> ())
          | _ -> (
              match Queue.take_opt fetched with
              | Some msg -> ignore (Dtu.ack d1 ~ep:1 msg)
              | None -> ()));
          (* Drain in-flight packets, then check conservation. *)
          ignore (Engine.run eng);
          let avail =
            match (Dtu.ext_read_ep d0 ~ep:1).Ep.cfg with
            | Ep.Send s -> s.Ep.credits
            | _ -> -1
          in
          let occupied =
            match (Dtu.ext_read_ep d1 ~ep:1).Ep.cfg with
            | Ep.Recv r -> r.Ep.occupied
            | _ -> -1
          in
          if avail + occupied <> credits then ok := false)
        script;
      !ok)

(* --- address space invariants --- *)

let prop_addrspace_regions_disjoint =
  QCheck.Test.make ~name:"allocated regions never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 50_000))
    (fun sizes ->
      let asp = M3v_mux.Addrspace.create () in
      let regions =
        List.map (fun size -> (M3v_mux.Addrspace.alloc_region asp ~size, size)) sizes
      in
      let sorted = List.sort compare regions in
      let rec disjoint = function
        | (a, sa) :: ((b, _) :: _ as rest) -> a + sa <= b && disjoint rest
        | _ -> true
      in
      let aligned = List.for_all (fun (a, _) -> a mod 4096 = 0) regions in
      disjoint sorted && aligned)

(* --- net service demux --- *)

let test_net_two_sockets_demux () =
  let sys = System.create ~variant:System.M3v () in
  let net =
    Services.make_net sys
      ~host:(M3v_os.Nic.Echo { turnaround = Time.us 10 })
      ()
  in
  let got_a = ref "" and got_b = ref "" in
  let cb = ref None in
  let aid, env =
    System.spawn sys ~tile:2 ~name:"two-socks" (fun _ ->
        let udp = M3v_os.Net_client.to_udp (Option.get !cb) in
        let* sa = udp.M3v_os.Net_client.u_socket () in
        let* sb = udp.M3v_os.Net_client.u_socket () in
        let* () = udp.M3v_os.Net_client.u_bind sa 5001 in
        let* () = udp.M3v_os.Net_client.u_bind sb 5002 in
        (* The echo peer swaps src/dst, so each reply returns to the
           socket that sent it. *)
        let* () = udp.M3v_os.Net_client.u_sendto sa (1, 7000) (Bytes.of_string "for-a") in
        let* () = udp.M3v_os.Net_client.u_sendto sb (1, 7000) (Bytes.of_string "for-b") in
        let* _, da = udp.M3v_os.Net_client.u_recvfrom sa in
        let* _, db = udp.M3v_os.Net_client.u_recvfrom sb in
        got_a := Bytes.to_string da;
        got_b := Bytes.to_string db;
        Proc.return ())
  in
  cb := Some (net.Services.net_connect aid env);
  System.boot sys;
  ignore (System.run sys);
  Alcotest.(check string) "socket A got its echo" "for-a" !got_a;
  Alcotest.(check string) "socket B got its echo" "for-b" !got_b

let test_net_unknown_port_dropped () =
  let sys = System.create ~variant:System.M3v () in
  let net = Services.make_net sys ~host:M3v_os.Nic.Sink () in
  let received = ref (-1) in
  let cb = ref None in
  let aid, env =
    System.spawn sys ~tile:2 ~name:"listener" (fun _ ->
        let udp = M3v_os.Net_client.to_udp (Option.get !cb) in
        let* s = udp.M3v_os.Net_client.u_socket () in
        let* () = udp.M3v_os.Net_client.u_bind s 5005 in
        (* Nothing ever arrives for us; the program ends without a recv. *)
        received := 0;
        Proc.return ())
  in
  cb := Some (net.Services.net_connect aid env);
  (* The peer sends to a port nobody listens on. *)
  M3v_os.Nic.host_send net.Services.nic
    { M3v_os.Net_proto.src = (1, 7000); dst = (0, 9999);
      payload = Bytes.of_string "stray" };
  System.boot sys;
  ignore (System.run sys);
  check_int "listener unaffected" 0 !received;
  let s = M3v_os.Netserv.stats net.Services.net_handle in
  check_int "stray frame was processed by the stack" 1
    s.M3v_os.Netserv.received

let test_net_rx_queue_buffers_early_packets () =
  (* A packet arriving before recvfrom must be queued, not lost. *)
  let sys = System.create ~variant:System.M3v () in
  let net = Services.make_net sys ~host:M3v_os.Nic.Sink () in
  let got = ref "" in
  let cb = ref None in
  let aid, env =
    System.spawn sys ~tile:2 ~name:"late-reader" (fun _ ->
        let udp = M3v_os.Net_client.to_udp (Option.get !cb) in
        let* s = udp.M3v_os.Net_client.u_socket () in
        let* () = udp.M3v_os.Net_client.u_bind s 5006 in
        (* Busy ourselves while the packet lands. *)
        let* () = A.compute 2_000_000 in
        let* _, data = udp.M3v_os.Net_client.u_recvfrom s in
        got := Bytes.to_string data;
        Proc.return ())
  in
  cb := Some (net.Services.net_connect aid env);
  (* Fire once the socket is bound but long before the recvfrom. *)
  Engine.after (System.engine sys) ~delay:(Time.ms 2) (fun () ->
      M3v_os.Nic.host_send net.Services.nic
        { M3v_os.Net_proto.src = (1, 7000); dst = (0, 5006);
          payload = Bytes.of_string "early bird" });
  System.boot sys;
  ignore (System.run sys);
  Alcotest.(check string) "early packet buffered" "early bird" !got

(* --- unread accounting ---

   Invariant: at quiescence, the per-activity unread count maintained for
   the lost-wakeup check (paper, section 3.7) equals the number of
   delivered-but-not-fetched messages sitting in that activity's receive
   endpoints.  Two activities with one receive endpoint each share a
   receiver DTU; the script interleaves sends, activity switches and
   fetch+ack rounds. *)

let prop_unread_matches_pending =
  QCheck.Test.make ~name:"unread counts match pending queues" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 4))
    (fun script ->
      let eng = Engine.create () in
      let topo = M3v_noc.Topology.star_mesh_2x2 ~tiles:2 in
      let noc = M3v_noc.Noc.create eng topo in
      let d0 = Dtu.create ~virtualized:true ~tile:0 eng noc in
      let d1 = Dtu.create ~virtualized:true ~tile:1 eng noc in
      let lookup_dtu = function 0 -> Some d0 | 1 -> Some d1 | _ -> None in
      let lookup_mem = fun _ -> None in
      Dtu.connect d0 ~lookup_dtu ~lookup_mem;
      Dtu.connect d1 ~lookup_dtu ~lookup_mem;
      (* Activity 7 owns d1's ep 1, activity 8 owns d1's ep 2. *)
      Dtu.ext_config d1 ~ep:1 ~owner:7 (Ep.recv_config ~slots:4 ~slot_size:128 ());
      Dtu.ext_config d1 ~ep:2 ~owner:8 (Ep.recv_config ~slots:4 ~slot_size:128 ());
      Dtu.ext_config d0 ~ep:1 ~owner:5
        (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~max_msg_size:64 ~credits:4 ());
      Dtu.ext_config d0 ~ep:2 ~owner:5
        (Ep.send_config ~dst_tile:1 ~dst_ep:2 ~max_msg_size:64 ~credits:4 ());
      ignore (Dtu.switch_act d0 ~next:5);
      ignore (Dtu.switch_act d1 ~next:7);
      let pending_of ep =
        match (Dtu.ext_read_ep d1 ~ep).Ep.cfg with
        | Ep.Recv r -> Queue.length r.Ep.pending
        | _ -> -1
      in
      let fetch_ack ep =
        match Dtu.fetch d1 ~ep with
        | Ok (Some msg) -> ignore (Dtu.ack d1 ~ep msg)
        | Ok None | Error _ -> ()
      in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | 0 -> Dtu.send d0 ~ep:1 ~msg_size:16 (P 0) ~k:(fun _ -> ())
          | 1 -> Dtu.send d0 ~ep:2 ~msg_size:16 (P 1) ~k:(fun _ -> ())
          | 2 -> ignore (Dtu.switch_act d1 ~next:7)
          | 3 -> ignore (Dtu.switch_act d1 ~next:8)
          | _ ->
              (* Only the current activity's fetches succeed; foreign ones
                 fail and are ignored. *)
              fetch_ack 1;
              fetch_ack 2);
          ignore (Engine.run eng);
          ok :=
            !ok
            && Dtu.unread_of d1 7 = pending_of 1
            && Dtu.unread_of d1 8 = pending_of 2)
        script;
      !ok)

let suite =
  [
    ("net two sockets demux", `Quick, test_net_two_sockets_demux);
    ("net unknown port dropped", `Quick, test_net_unknown_port_dropped);
    ("net early packet buffered", `Quick, test_net_rx_queue_buffers_early_packets);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_credit_conservation;
        prop_addrspace_regions_disjoint;
        prop_unread_matches_pending;
      ]
