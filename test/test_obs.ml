(* Tests of the observability stack: Chrome-trace and metrics JSON
   well-formedness (property-tested against the bench_io parser, control
   characters included), flow conservation and critical-path segment
   exactness on a traced RPC run, parallel-metrics determinism, the
   global-pid clamping fix, and the trace report's drop warning. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module System = M3v.System
module Trace = M3v_obs.Trace
module Chrome = M3v_obs.Chrome
module Metrics = M3v_obs.Metrics
module Profile = M3v_obs.Profile
module Report = M3v_obs.Report
module Par = M3v_par.Par
module J = M3v_bench_io.Bench_io

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in output" what needle

(* --- JSON well-formedness, arbitrary (control-char) names --- *)

(* QCheck.string draws chars from the full byte range, so quotes,
   backslashes and control characters are all exercised. *)
let prop_chrome_json_parses =
  QCheck.Test.make ~count:100 ~name:"chrome json parses, names roundtrip"
    QCheck.(triple string string small_int)
    (fun (name, cat, id) ->
      let sink = Trace.make () in
      Trace.with_sink sink (fun () ->
          Trace.complete ~cat ~name ~tile:0 ~act:1 ~ts:10 ~dur:5
            ~args:[ ("s", Trace.S name); ("i", Trace.I 3) ]
            ();
          Trace.instant ~cat ~name ~ts:20 ();
          Trace.counter ~cat ~name ~tile:2 ~act:1 ~ts:30 ~value:1.5 ();
          Trace.flow_start ~cat ~name ~id ~tile:0 ~ts:40 ();
          Trace.flow_step ~cat ~name ~id ~tile:1 ~ts:50 ();
          Trace.flow_end ~cat ~name ~id ~tile:1 ~ts:60 ());
      let txt = Buffer.contents (Chrome.to_buffer sink) in
      match J.parse_json txt with
      | J.J_obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (J.J_arr evs) ->
              (* six real events, plus process/thread metadata *)
              List.length evs >= 6
              && List.exists
                   (function
                     | J.J_obj f -> List.assoc_opt "name" f = Some (J.J_str name)
                     | _ -> false)
                   evs
          | _ -> false)
      | _ -> false)

let prop_metrics_json_parses =
  QCheck.Test.make ~count:100 ~name:"metrics json parses"
    QCheck.(pair string string)
    (fun (name, cat) ->
      let reg = Metrics.create ~series_cap:8 () in
      Metrics.with_registry reg (fun () ->
          Metrics.counter_incr ~name ~tile:0 ~cat ();
          Metrics.gauge_set ~name:(name ^ ".g") ~cat ~ts:5 1.25;
          Metrics.observe ~name:(name ^ ".h") ~cat 3.0;
          Metrics.sample_ambient ~ts:10);
      match J.json_of_string (Metrics.to_json reg) with
      | Ok (J.J_obj fields) ->
          List.mem_assoc "counters" fields
          && List.mem_assoc "gauges" fields
          && List.mem_assoc "histograms" fields
          && List.mem_assoc "series" fields
      | _ -> false)

(* --- Chrome pid clamping fix + flow phases --- *)

let test_chrome_global_pid_and_flows () =
  let sink = Trace.make () in
  Trace.with_sink sink (fun () ->
      (* unattributed (tile = -1) and tile-0 events must not collide *)
      Trace.instant ~cat:"c" ~name:"unattributed" ~ts:0 ();
      Trace.instant ~cat:"c" ~name:"tile0" ~tile:0 ~act:0 ~ts:1 ();
      Trace.flow_start ~cat:"flow" ~name:"msg" ~id:7 ~tile:0 ~act:2 ~ts:10 ();
      Trace.flow_step ~cat:"flow" ~name:"msg" ~id:7 ~tile:1 ~act:0xFFFE ~ts:20 ();
      Trace.flow_end ~cat:"flow" ~name:"msg" ~id:7 ~tile:1 ~act:3 ~ts:30 ());
  let txt = Buffer.contents (Chrome.to_buffer sink) in
  (* still valid JSON *)
  (match J.json_of_string txt with
  | Ok (J.J_obj _) -> ()
  | Ok _ -> Alcotest.fail "trace is not a JSON object"
  | Error e -> Alcotest.failf "trace does not parse: %s" e);
  check_contains "dedicated global pid" txt
    (Printf.sprintf "\"pid\":%d" Chrome.global_pid);
  check_contains "tile 0 keeps pid 0" txt "\"pid\":0";
  check_contains "process metadata" txt "\"process_name\"";
  check_contains "global process label" txt "\"global\"";
  check_contains "tilemux thread label" txt "\"tilemux\"";
  check_contains "flow start" txt "\"ph\":\"s\"";
  check_contains "flow step" txt "\"ph\":\"t\"";
  check_contains "flow end" txt "\"ph\":\"f\"";
  check_contains "flow end binds enclosing" txt "\"bp\":\"e\"";
  check_contains "flow id" txt "\"id\":7"

let test_counter_act_attribution () =
  let sink = Trace.make () in
  Trace.with_sink sink (fun () ->
      Trace.counter ~cat:"c" ~name:"n" ~tile:1 ~act:3 ~ts:0 ~value:2.0 ());
  match Trace.events sink with
  | [ ev ] ->
      check_int "counter carries tile" 1 ev.Trace.ev_tile;
      check_int "counter carries act" 3 ev.Trace.ev_act
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* --- report drop warning --- *)

let test_report_dropped_warning () =
  let sink = Trace.make ~max_events:4 () in
  Trace.with_sink sink (fun () ->
      for i = 0 to 9 do
        Trace.instant ~cat:"c" ~name:"n" ~ts:i ()
      done);
  check_int "events kept" 4 (Trace.event_count sink);
  check_int "events dropped" 6 (Trace.dropped sink);
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  Report.print fmt sink;
  Format.pp_print_flush fmt ();
  check_contains "drop warning" (Buffer.contents b)
    "6 events dropped (cap 4)"

(* --- flow conservation + segment exactness on a real RPC run --- *)

type Msg.data += Ping of int | Pong of int

let run_rpc_traced ~rounds =
  let sink = Trace.make () in
  Trace.with_sink sink (fun () ->
      let sys = System.create ~variant:System.M3v () in
      let rgate = ref (-1) in
      let chan = ref (-1, -1) in
      let server, _ =
        System.spawn sys ~tile:1 ~name:"server" (fun _ ->
            Proc.repeat rounds (fun _ ->
                let* _ep, msg = A.recv ~eps:[ !rgate ] in
                let* () = A.compute 500 in
                A.reply ~recv_ep:!rgate ~msg ~size:8 (Pong 0)))
      in
      let client, _ =
        System.spawn sys ~tile:2 ~name:"client" (fun _ ->
            Proc.repeat rounds (fun i ->
                let* _reply =
                  A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:8
                    (Ping i)
                in
                Proc.return ()))
      in
      let ch = System.channel sys ~src:client ~dst:server () in
      rgate := ch.System.rgate;
      chan := (ch.System.sgate, ch.System.reply_ep);
      System.boot sys;
      ignore (System.run sys));
  sink

let flow_points sink =
  List.filter_map
    (fun ev ->
      match ev.Trace.ev_ph with
      | Trace.Flow_start -> Some (`S, ev.Trace.ev_id)
      | Trace.Flow_end -> Some (`F, ev.Trace.ev_id)
      | _ -> None)
    (Trace.events sink)

let test_flow_conservation () =
  let rounds = 6 in
  let sink = run_rpc_traced ~rounds in
  let points = flow_points sink in
  let starts = List.filter (fun (k, _) -> k = `S) points in
  let ends = List.filter (fun (k, _) -> k = `F) points in
  let ids l = List.sort_uniq compare (List.map snd l) in
  (* message uids are unique: no id starts or finishes twice *)
  check_int "unique flow starts" (List.length starts)
    (List.length (ids starts));
  check_int "unique flow ends" (List.length ends) (List.length (ids ends));
  (* every finished flow was started *)
  List.iter
    (fun (_, id) ->
      check_bool
        (Printf.sprintf "flow %d end has a start" id)
        true
        (List.mem id (List.map snd starts)))
    ends;
  (* conservation: starts = ends + issued-but-never-fetched, and the
     application's 2*rounds messages (requests + replies) all complete *)
  let rep = Profile.analyze sink in
  check_int "starts - ends = incomplete"
    (List.length starts - List.length ends)
    rep.Profile.incomplete;
  check_bool "app flows all complete" true (List.length ends >= 2 * rounds)

let test_segments_sum_exact () =
  let sink = run_rpc_traced ~rounds:6 in
  let rep = Profile.analyze sink in
  check_bool "found rpc flows" true (List.length rep.Profile.rpcs >= 6);
  let check_flow segs fp =
    check_string
      (Printf.sprintf "flow %d segment order" fp.Profile.fp_id)
      (String.concat "," segs)
      (String.concat "," (List.map fst fp.Profile.fp_segments));
    List.iter
      (fun (s, v) ->
        check_bool
          (Printf.sprintf "flow %d segment %s >= 0" fp.Profile.fp_id s)
          true (v >= 0))
      fp.Profile.fp_segments;
    let sum = List.fold_left (fun a (_, v) -> a + v) 0 fp.Profile.fp_segments in
    check_int
      (Printf.sprintf "flow %d segments sum exactly to e2e" fp.Profile.fp_id)
      fp.Profile.fp_e2e sum
  in
  List.iter (check_flow Profile.rpc_segments) rep.Profile.rpcs;
  List.iter (check_flow Profile.oneway_segments) rep.Profile.oneways;
  (* the folded-stack export is non-trivial and well-formed *)
  let folded = Buffer.contents (Profile.folded sink) in
  check_bool "folded stacks non-empty" true (String.length folded > 0);
  String.split_on_char '\n' folded
  |> List.iter (fun line ->
         if line <> "" then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "folded line has no weight: %S" line
           | Some i ->
               let w = String.sub line (i + 1) (String.length line - i - 1) in
               check_bool
                 (Printf.sprintf "folded weight positive: %S" line)
                 true
                 (match int_of_string_opt w with
                 | Some n -> n > 0
                 | None -> false))

(* --- metrics: typed registry + parallel determinism --- *)

let test_metrics_type_mismatch () =
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () ->
      Metrics.counter_incr ~name:"x" ~tile:1 ();
      match Metrics.observe ~name:"x" ~tile:1 2.0 with
      | () -> Alcotest.fail "type mismatch not rejected"
      | exception Invalid_argument _ -> ())

let run_fig6_metrics ~jobs =
  let reg = Metrics.create () in
  Par.Pool.with_pool ~jobs (fun pool ->
      Metrics.with_registry reg (fun () ->
          ignore (M3v.Exp_fig6.run ~pool ~rounds:40 ())));
  Metrics.to_json reg

let test_metrics_jobs_identity () =
  let seq = run_fig6_metrics ~jobs:1 in
  let par = run_fig6_metrics ~jobs:4 in
  check_bool "metrics registry non-trivial" true (String.length seq > 500);
  check_string "jobs=4 metrics byte-identical to jobs=1" seq par

let suite =
  [
    ("chrome global pid + flow phases", `Quick, test_chrome_global_pid_and_flows);
    ("counter act attribution", `Quick, test_counter_act_attribution);
    ("report prints drop warning", `Quick, test_report_dropped_warning);
    ("flow conservation (rpc run)", `Quick, test_flow_conservation);
    ("profile segments sum exactly", `Quick, test_segments_sum_exact);
    ("metrics type mismatch rejected", `Quick, test_metrics_type_mismatch);
    ("metrics identical across jobs", `Slow, test_metrics_jobs_identity);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_chrome_json_parses; prop_metrics_json_parses ]
