(* Live migration and checkpoint/restore.

   The migration tests drive a sequence-numbered RPC stream through a
   server that is migrated (or fails to migrate, under injected aborts)
   mid-run: a blocking-call client on a recoverable fault plan means any
   duplicated or lost message surfaces as a sequence mismatch, a missing
   reply or a hung run.  Credit conservation is checked two ways — the
   controller asserts the global inventory at every flip instant, and the
   tests compare the inventory before boot against quiescence at the end.

   The checkpoint tests round-trip the chaos soak through
   suspend-to-file/resume and require the resumed result to equal the
   uninterrupted run's, sequentially and fanned out over a 4-worker
   pool. *)

module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module Proc = M3v_sim.Proc
module Checkpoint = M3v_sim.Checkpoint
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Dtu = M3v_dtu.Dtu
module Fault = M3v_fault.Fault
module Controller = M3v_kernel.Controller
module Platform = M3v_tile.Platform
module System = M3v.System
module Exp_chaos = M3v.Exp_chaos
module Par = M3v_par.Par

open M3v_sim.Proc.Syntax

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Msg.data += Req of int | Resp of int

let src_tile = 1
let alt_tile = 2
let client_tile = 3

type outcome = {
  o_replies : int;
  o_mismatches : int;
  o_served : int;
  o_completed : bool;
  o_inv_start : int;
  o_inv_end : int;
  o_drained : bool;  (** event queue empty at the end (true quiescence) *)
  o_stats : Controller.stats;
}

(* One run: a [rounds]-call echo stream, with a migration attempt
   (retried up to twice on abort) scheduled at each time in [mig_at],
   bouncing the server between [src_tile] and [alt_tile]. *)
let scenario ?(rounds = 60) ?(gap_cycles = 300) ~mig_at () =
  let sys = System.create ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let engine = System.engine sys in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let served = ref 0 in
  let replies = ref 0 in
  let mismatches = ref 0 in
  let client_done = ref false in
  let server_done = ref false in
  let server, _ =
    System.spawn sys ~tile:src_tile ~name:"echo" (fun _ ->
        let rec serve n =
          if n = rounds then begin
            server_done := true;
            Proc.return ()
          end
          else
            let* _ep, msg = A.recv ~eps:[ !rgate ] in
            let seq = match msg.Msg.data with Req i -> i | _ -> -1 in
            let* () = A.reply ~recv_ep:!rgate ~msg ~size:32 (Resp seq) in
            incr served;
            serve (n + 1)
        in
        serve 0)
  in
  let client, _ =
    System.spawn sys ~tile:client_tile ~name:"caller" (fun _ ->
        let rec go i =
          if i = rounds then begin
            client_done := true;
            Proc.return ()
          end
          else
            let* () = A.compute gap_cycles in
            let* resp =
              A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:32 (Req i)
            in
            (match resp.Msg.data with
            | Resp j when j = i -> incr replies
            | _ -> incr mismatches);
            go (i + 1)
        in
        go 0)
  in
  let ch = System.channel sys ~src:client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  List.iteri
    (fun hop at ->
      let dst = if hop mod 2 = 0 then alt_tile else src_tile in
      let rec attempt n () =
        Controller.migrate ctrl ~act:server ~dst_tile:dst ~k:(function
          | Ok () -> ()
          | Error _ when n < 2 ->
              Engine.after engine ~delay:(Time.us 300) (attempt (n + 1))
          | Error _ -> ())
      in
      Engine.at engine ~time:at (attempt 0))
    mig_at;
  System.boot sys;
  let inventory () =
    let platform = System.platform sys in
    let total = ref 0 in
    for tile = 0 to Platform.tile_count platform - 1 do
      total := !total + Dtu.ext_credit_inventory (Platform.dtu platform tile)
    done;
    !total
  in
  let inv_start = inventory () in
  ignore (System.run ~until:(Time.s 4) sys);
  {
    o_replies = !replies;
    o_mismatches = !mismatches;
    o_served = !served;
    o_completed = !client_done && !server_done;
    o_inv_start = inv_start;
    o_inv_end = inventory ();
    o_drained = Engine.pending engine = 0;
    o_stats = Controller.stats ctrl;
  }

(* --- clean migration: the client never notices the move --- *)

let test_migrate_moves_server () =
  (* The 60-round stream lasts ~600us; both hops must land inside it. *)
  let o = scenario ~mig_at:[ Time.us 150; Time.us 350 ] () in
  check_bool "both sides finished" true o.o_completed;
  check_int "every reply verified in sequence" 60 o.o_replies;
  check_int "no mismatches" 0 o.o_mismatches;
  check_int "server handled each request once" 60 o.o_served;
  check_int "both hops completed" 2 o.o_stats.Controller.migrations;
  check_int "no aborts without a fault plan" 0 o.o_stats.Controller.mig_aborts;
  check_bool "downtime accounted" true (o.o_stats.Controller.mig_downtime_ps > 0);
  check_int "credit inventory conserved" o.o_inv_start o.o_inv_end

(* Three hops make the server revisit a tile it already vacated once:
   the forwarding pointer installed when it left must be cleared when its
   endpoints are restored there, or stale entries on the two tiles chase
   each other until the hop budget runs out and the message is delivered
   wherever the ping-pong happens to stop (regression: lost replies /
   Recv_gone on the third hop). *)
let test_migrate_revisits_tile () =
  let o = scenario ~mig_at:[ Time.us 0; Time.us 341; Time.us 600 ] () in
  check_bool "both sides finished" true o.o_completed;
  check_int "every reply verified in sequence" 60 o.o_replies;
  check_int "no mismatches" 0 o.o_mismatches;
  check_int "all three hops completed" 3 o.o_stats.Controller.migrations;
  check_int "credit inventory conserved" o.o_inv_start o.o_inv_end

(* Migrating to the tile the activity is already on must be refused. *)
let test_migrate_rejects_same_tile () =
  let sys = System.create ~variant:System.M3v () in
  let server, _ =
    System.spawn sys ~tile:src_tile ~name:"idle" (fun _ -> A.compute 10_000)
  in
  System.boot sys;
  let refused = ref None in
  Controller.migrate (System.controller sys) ~act:server ~dst_tile:src_tile
    ~k:(fun r -> refused := Some r);
  check_bool "same-tile migrate refused synchronously" true
    (match !refused with Some (Error _) -> true | _ -> false)

(* --- exactly-once under random fault plans and migration points ---

   Random mig_abort budgets (killing the protocol at random phases),
   plus data-plane drop/dup/delay and DTU command glitches, plus 1-3
   migration attempts at random times.  Whatever the interleaving: every
   request answered exactly once, in order, and the credit total at
   quiescence is what it was before boot. *)

let prop_migrate_exactly_once =
  QCheck.Test.make ~name:"migration: exactly-once + credit conservation"
    ~count:15
    QCheck.(
      quad (int_bound 999) (int_range 1 3) (int_bound 4)
        (list_of_size (Gen.int_range 1 3) (int_range 50 500)))
    (fun (seed, hops, abort_budget, times_us) ->
      let spec =
        {
          Fault.none with
          Fault.drop = 0.005;
          dup = 0.005;
          delay = 0.01;
          cmd_fail = 0.002;
          mig_abort = abort_budget;
        }
      in
      let plan = Fault.create ~seed spec in
      let mig_at =
        List.filteri (fun i _ -> i < hops) (times_us @ [ 300; 800; 1_400 ])
        |> List.map Time.us
      in
      let o = Fault.with_plan plan (fun () -> scenario ~mig_at ()) in
      if not o.o_completed then
        QCheck.Test.fail_reportf
          "run did not complete: %d/60 replies, %d served (seed %d)"
          o.o_replies o.o_served seed;
      if o.o_replies <> 60 || o.o_mismatches <> 0 || o.o_served <> 60 then
        QCheck.Test.fail_reportf
          "delivery violated: replies=%d mismatches=%d served=%d (seed %d)"
          o.o_replies o.o_mismatches o.o_served seed;
      if o.o_drained && o.o_inv_start <> o.o_inv_end then
        QCheck.Test.fail_reportf "credits not conserved: %d -> %d (seed %d)"
          o.o_inv_start o.o_inv_end seed;
      true)

(* --- checkpoint/restore --- *)

(* Suspend the soak at its first checkpoint, resume it (same process,
   fresh object graph from the file), and return the resumed result; if
   the run drains before the first checkpoint instant, the completed
   result is the round trip. *)
let round_trip ~seed () =
  let file = Filename.temp_file "m3v_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      match
        Exp_chaos.run_checkpointed ~seed ~every:(Time.ms 16) ~file
          ~stop_after:1 ()
      with
      | Exp_chaos.Completed r -> r
      | Exp_chaos.Suspended _ -> (
          match Exp_chaos.resume ~file () with
          | Ok (Exp_chaos.Completed r) -> r
          | Ok (Exp_chaos.Suspended _) ->
              Alcotest.fail "resume suspended without stop_after"
          | Error msg -> Alcotest.failf "resume failed: %s" msg))

let test_checkpoint_roundtrip () =
  let uninterrupted = Exp_chaos.run ~seed:7 () in
  let resumed = round_trip ~seed:7 () in
  check_bool "resumed result identical to uninterrupted run" true
    (resumed = uninterrupted)

(* The round trip must commute with the worker pool: 4 independent
   suspend/resume soaks on a 4-worker pool return byte-identical results
   to the same soaks run sequentially (domain-local plan + uid counter
   restored per task). *)
let test_checkpoint_roundtrip_jobs () =
  let seeds = [ 7; 8 ] in
  let sequential = List.map (fun seed -> round_trip ~seed ()) seeds in
  let pool = Par.Pool.create ~jobs:4 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Par.Pool.shutdown pool)
      (fun () -> Par.map pool (fun seed -> round_trip ~seed ()) seeds)
  in
  check_bool "--jobs 4 round trip = --jobs 1 round trip" true
    (parallel = sequential);
  List.iter2
    (fun seed (rt : Exp_chaos.result) ->
      check_bool "round trip matches its uninterrupted run" true
        (rt = Exp_chaos.run ~seed ()))
    seeds sequential

let test_checkpoint_codec_rejects () =
  (match Checkpoint.load ~path:"/nonexistent/m3v.ckpt" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "loaded a nonexistent file");
  let file = Filename.temp_file "m3v_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin file in
      output_string oc "NOTACKPT and then some";
      close_out oc;
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      (match Checkpoint.load ~path:file with
      | Error msg -> check_bool "bad magic diagnosed" true (contains ~sub:"magic" msg)
      | Ok () -> Alcotest.fail "loaded garbage");
      Checkpoint.save ~path:file (42, "ok");
      match Checkpoint.load ~path:file with
      | Ok (42, "ok") -> ()
      | Ok _ -> Alcotest.fail "value did not round-trip"
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "migration: server moves, client unaffected" `Quick
      test_migrate_moves_server;
    Alcotest.test_case "migration: same-tile destination refused" `Quick
      test_migrate_rejects_same_tile;
    Alcotest.test_case "migration: revisiting a tile clears stale forwards"
      `Quick test_migrate_revisits_tile;
    Alcotest.test_case "checkpoint: suspend/resume = uninterrupted" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint: round trip commutes with --jobs 4" `Slow
      test_checkpoint_roundtrip_jobs;
    Alcotest.test_case "checkpoint: codec rejects bad files" `Quick
      test_checkpoint_codec_rejects;
  ]
  @ qsuite [ prop_migrate_exactly_once ]
