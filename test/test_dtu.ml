open M3v_sim
open M3v_dtu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Msg.data += Ping of int

(* A two-processing-tile + one-memory-tile fabric without the platform
   layer, to exercise the DTU in isolation. *)
type fabric = {
  eng : Engine.t;
  d0 : Dtu.t;
  d1 : Dtu.t;
  dram : Dram.t;
}

let make_fabric ?(virtualized = true) () =
  let eng = Engine.create () in
  let topo = M3v_noc.Topology.star_mesh_2x2 ~tiles:3 in
  let noc = M3v_noc.Noc.create eng topo in
  let d0 = Dtu.create ~virtualized ~tile:0 eng noc in
  let d1 = Dtu.create ~virtualized ~tile:1 eng noc in
  let dram = Dram.create ~size:(1 lsl 20) () in
  let lookup_dtu = function 0 -> Some d0 | 1 -> Some d1 | _ -> None in
  let lookup_mem = function 2 -> Some dram | _ -> None in
  Dtu.connect d0 ~lookup_dtu ~lookup_mem;
  Dtu.connect d1 ~lookup_dtu ~lookup_mem;
  { eng; d0; d1; dram }

(* Standard channel: d0 ep1 (send, owned by act 0) -> d1 ep1 (recv, act 7). *)
let setup_channel ?(credits = 2) ?(slots = 4) f =
  Dtu.ext_config f.d1 ~ep:1 ~owner:7 (Ep.recv_config ~slots ~slot_size:256 ());
  Dtu.ext_config f.d0 ~ep:1 ~owner:0
    (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~label:99 ~max_msg_size:240 ~credits ());
  ignore (Dtu.switch_act f.d0 ~next:0);
  ignore (Dtu.switch_act f.d1 ~next:7)

let send_ok f ?reply_ep ~size data =
  let result = ref None in
  Dtu.send f.d0 ~ep:1 ?reply_ep ~msg_size:size data ~k:(fun r -> result := Some r);
  ignore (Engine.run f.eng);
  Option.get !result

let test_send_recv () =
  let f = make_fabric () in
  setup_channel f;
  (match send_ok f ~size:16 (Ping 42) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send failed: %s" (Dtu_types.error_to_string e));
  check_int "unread at receiver" 1 (Dtu.unread_of f.d1 7);
  match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some msg) ->
      check_int "label copied from send ep" 99 msg.Msg.label;
      check_int "size" 16 msg.Msg.size;
      check_int "src tile" 0 msg.Msg.src_tile;
      (match msg.Msg.data with
      | Ping 42 -> ()
      | _ -> Alcotest.fail "payload mismatch");
      check_int "unread consumed" 0 (Dtu.unread_of f.d1 7)
  | _ -> Alcotest.fail "no message fetched"

let test_credits_exhaust_and_return () =
  let f = make_fabric () in
  setup_channel ~credits:2 f;
  (match send_ok f ~size:8 (Ping 1) with Ok () -> () | Error _ -> Alcotest.fail "send 1");
  (match send_ok f ~size:8 (Ping 2) with Ok () -> () | Error _ -> Alcotest.fail "send 2");
  (match send_ok f ~size:8 (Ping 3) with
  | Error Dtu_types.No_credits -> ()
  | _ -> Alcotest.fail "third send should exhaust credits");
  (* Fetch + ack one message: the credit returns and sending works again. *)
  (match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some msg) -> (
      match Dtu.ack f.d1 ~ep:1 msg with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "ack failed")
  | _ -> Alcotest.fail "fetch failed");
  ignore (Engine.run f.eng);
  match send_ok f ~size:8 (Ping 4) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send after credit return: %s" (Dtu_types.error_to_string e)

let test_recv_gone_restores_credit () =
  let f = make_fabric () in
  setup_channel ~credits:1 f;
  (* Invalidate the remote receive endpoint: send must fail with Recv_gone
     and the credit must come back (enables the M3x slow-path retry). *)
  Dtu.ext_invalidate f.d1 ~ep:1;
  (match send_ok f ~size:8 (Ping 1) with
  | Error Dtu_types.Recv_gone -> ()
  | _ -> Alcotest.fail "expected Recv_gone");
  Dtu.ext_config f.d1 ~ep:1 ~owner:7 (Ep.recv_config ~slots:2 ~slot_size:256 ());
  match send_ok f ~size:8 (Ping 2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "credit was lost: %s" (Dtu_types.error_to_string e)

let test_buffer_full_is_recv_gone () =
  let f = make_fabric () in
  setup_channel ~credits:8 ~slots:1 f;
  (match send_ok f ~size:8 (Ping 1) with Ok () -> () | Error _ -> Alcotest.fail "send 1");
  match send_ok f ~size:8 (Ping 2) with
  | Error Dtu_types.Recv_gone -> ()
  | _ -> Alcotest.fail "second send must hit a full buffer"

let test_owner_isolation () =
  let f = make_fabric () in
  setup_channel f;
  (* Switch tile 0 to a different activity: its endpoint must look
     invalid (paper, section 3.5). *)
  ignore (Dtu.switch_act f.d0 ~next:5);
  (match send_ok f ~size:8 (Ping 1) with
  | Error Dtu_types.Unknown_ep -> ()
  | _ -> Alcotest.fail "foreign endpoint must be hidden");
  (* Fetch on a foreign receive endpoint is equally hidden. *)
  ignore (Dtu.switch_act f.d1 ~next:3);
  match Dtu.fetch f.d1 ~ep:1 with
  | Error Dtu_types.Unknown_ep -> ()
  | _ -> Alcotest.fail "foreign fetch must be hidden"

let test_non_virtualized_skips_owner_checks () =
  let f = make_fabric ~virtualized:false () in
  setup_channel f;
  ignore (Dtu.switch_act f.d0 ~next:5);
  match send_ok f ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "M3x DTU has no owner tags: %s" (Dtu_types.error_to_string e)

let test_delivery_to_non_running_sets_core_req () =
  let f = make_fabric () in
  setup_channel f;
  (* Receiver's current activity is someone else: message still lands
     (fast path!) but a core request is queued (paper, section 3.8). *)
  ignore (Dtu.switch_act f.d1 ~next:3);
  let irqs = ref 0 in
  Dtu.set_core_req_irq f.d1 (fun () -> incr irqs);
  (match send_ok f ~size:8 (Ping 9) with Ok () -> () | Error _ -> Alcotest.fail "send");
  check_int "one interrupt" 1 !irqs;
  check_int "unread for owner" 1 (Dtu.unread_of f.d1 7);
  (match Dtu.fetch_core_req f.d1 with
  | Some 7 -> ()
  | _ -> Alcotest.fail "core request must name the recipient");
  Dtu.ack_core_req f.d1;
  ignore (Engine.run f.eng);
  check_bool "queue drained" true (Dtu.fetch_core_req f.d1 = None)

let test_core_req_queue_reraises () =
  let f = make_fabric () in
  setup_channel ~credits:4 f;
  ignore (Dtu.switch_act f.d1 ~next:3);
  let irqs = ref 0 in
  Dtu.set_core_req_irq f.d1 (fun () -> incr irqs);
  (match send_ok f ~size:8 (Ping 1) with Ok () -> () | _ -> Alcotest.fail "s1");
  (match send_ok f ~size:8 (Ping 2) with Ok () -> () | _ -> Alcotest.fail "s2");
  check_int "second queued without new irq" 1 !irqs;
  check_int "queue depth" 2 (Dtu.core_req_depth f.d1);
  Dtu.ack_core_req f.d1;
  ignore (Engine.run f.eng);
  check_int "irq re-raised for queued request" 2 !irqs

let test_atomic_switch_returns_old_count () =
  let f = make_fabric () in
  setup_channel f;
  ignore (send_ok f ~size:8 (Ping 1));
  ignore (send_ok f ~size:8 (Ping 2));
  let old, old_unread = Dtu.switch_act f.d1 ~next:3 in
  check_int "old act" 7 old;
  check_int "old unread (lost-wakeup check)" 2 old_unread;
  check_int "new current" 3 (Dtu.cur_act f.d1)

let test_reply_roundtrip_and_autoack () =
  let f = make_fabric () in
  setup_channel f;
  (* Reply gate on the client side. *)
  Dtu.ext_config f.d0 ~ep:2 ~owner:0 (Ep.recv_config ~slots:2 ~slot_size:256 ());
  (match send_ok f ~reply_ep:2 ~size:8 (Ping 5) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send");
  let msg =
    match Dtu.fetch f.d1 ~ep:1 with Ok (Some m) -> m | _ -> Alcotest.fail "fetch"
  in
  (match msg.Msg.reply_to with
  | Some (0, 2) -> ()
  | _ -> Alcotest.fail "reply_to not recorded");
  let done_ = ref false in
  Dtu.reply f.d1 ~recv_ep:1 ~to_msg:msg ~msg_size:4 (Ping 6) ~k:(fun r ->
      (match r with Ok () -> () | Error _ -> Alcotest.fail "reply");
      done_ := true);
  ignore (Engine.run f.eng);
  check_bool "reply completed" true !done_;
  (* The reply implicitly acked: sending twice more works with credits 2. *)
  (match send_ok f ~size:8 (Ping 7) with Ok () -> () | _ -> Alcotest.fail "s2");
  (match send_ok f ~size:8 (Ping 8) with Ok () -> () | _ -> Alcotest.fail "s3");
  match Dtu.fetch f.d0 ~ep:2 with
  | Ok (Some reply) -> (
      match reply.Msg.data with Ping 6 -> () | _ -> Alcotest.fail "reply payload")
  | _ -> Alcotest.fail "reply not delivered"

let test_dma_read_write () =
  let f = make_fabric () in
  Dtu.ext_config f.d0 ~ep:4 ~owner:0
    (Ep.mem_config ~mem_tile:2 ~base:0x100 ~size:0x1000 ~perm:Dtu_types.RW);
  ignore (Dtu.switch_act f.d0 ~next:0);
  let src = Bytes.of_string "hello, dram!" in
  let r = ref None in
  Dtu.mem_write f.d0 ~ep:4 ~off:8 ~len:(Bytes.length src) ~src_vaddr:None ~src
    ~src_off:0 ~k:(fun x -> r := Some x);
  ignore (Engine.run f.eng);
  (match !r with Some (Ok ()) -> () | _ -> Alcotest.fail "write failed");
  (* The bytes must really be in DRAM at base + off. *)
  Alcotest.(check string)
    "dram content" "hello, dram!"
    (Bytes.to_string (Dram.read f.dram ~off:(0x100 + 8) ~len:(Bytes.length src)));
  let dst = Bytes.create (Bytes.length src) in
  let r2 = ref None in
  Dtu.mem_read f.d0 ~ep:4 ~off:8 ~len:(Bytes.length src) ~dst_vaddr:None ~dst
    ~dst_off:0 ~k:(fun x -> r2 := Some x);
  ignore (Engine.run f.eng);
  (match !r2 with Some (Ok ()) -> () | _ -> Alcotest.fail "read failed");
  Alcotest.(check string) "round trip" "hello, dram!" (Bytes.to_string dst)

let test_dma_bounds_and_perms () =
  let f = make_fabric () in
  Dtu.ext_config f.d0 ~ep:4 ~owner:0
    (Ep.mem_config ~mem_tile:2 ~base:0 ~size:0x100 ~perm:Dtu_types.R);
  ignore (Dtu.switch_act f.d0 ~next:0);
  let buf = Bytes.create 64 in
  let r = ref None in
  Dtu.mem_read f.d0 ~ep:4 ~off:0xF0 ~len:64 ~dst_vaddr:None ~dst:buf ~dst_off:0
    ~k:(fun x -> r := Some x);
  ignore (Engine.run f.eng);
  (match !r with
  | Some (Error Dtu_types.Out_of_bounds) -> ()
  | _ -> Alcotest.fail "out-of-bounds read must fail");
  let r2 = ref None in
  Dtu.mem_write f.d0 ~ep:4 ~off:0 ~len:16 ~src_vaddr:None ~src:buf ~src_off:0
    ~k:(fun x -> r2 := Some x);
  ignore (Engine.run f.eng);
  match !r2 with
  | Some (Error Dtu_types.No_perm) -> ()
  | _ -> Alcotest.fail "write through read-only endpoint must fail"

let test_tlb_miss_fails_command () =
  let f = make_fabric () in
  setup_channel f;
  (* Sending with a virtual source address and a cold TLB must fail with a
     translation fault (paper, section 3.6). *)
  let r = ref None in
  Dtu.send f.d0 ~ep:1 ~src_vaddr:0x20_0000 ~msg_size:8 (Ping 1) ~k:(fun x ->
      r := Some x);
  ignore (Engine.run f.eng);
  (match !r with
  | Some (Error (Dtu_types.Translation_fault vpage)) ->
      check_int "faulting page" (0x20_0000 / 4096) vpage
  | _ -> Alcotest.fail "expected translation fault");
  (* Insert the translation through the privileged interface and retry. *)
  Dtu.tlb_insert f.d0 ~act:0 ~vpage:(0x20_0000 / 4096) ~ppage:33 ~perm:Dtu_types.RW;
  match send_ok f ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send after TLB fill: %s" (Dtu_types.error_to_string e)

let test_page_boundary_rejected () =
  let f = make_fabric () in
  setup_channel f;
  Dtu.tlb_insert f.d0 ~act:0 ~vpage:1 ~ppage:1 ~perm:Dtu_types.RW;
  let r = ref None in
  (* 8 bytes starting 4 bytes before a page end cross the boundary. *)
  Dtu.send f.d0 ~ep:1 ~src_vaddr:(4096 + 4092) ~msg_size:8 (Ping 1) ~k:(fun x ->
      r := Some x);
  ignore (Engine.run f.eng);
  match !r with
  | Some (Error Dtu_types.Page_boundary) -> ()
  | _ -> Alcotest.fail "cross-page command must be rejected"

let test_ep_snapshot_restore () =
  let f = make_fabric () in
  setup_channel f;
  ignore (send_ok f ~size:8 (Ping 77));
  (* Save the receiver's endpoint (including the buffered message),
     invalidate, then restore: the message must survive (M3x switch). *)
  let saved = Dtu.ext_snapshot_eps f.d1 ~first:1 ~count:1 in
  Dtu.ext_invalidate f.d1 ~ep:1;
  (match Dtu.fetch f.d1 ~ep:1 with
  | Error Dtu_types.No_such_ep -> ()
  | _ -> Alcotest.fail "invalidated ep must be gone");
  Dtu.ext_restore_eps f.d1 ~first:1 saved;
  match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some msg) -> (
      match msg.Msg.data with Ping 77 -> () | _ -> Alcotest.fail "payload lost")
  | _ -> Alcotest.fail "message lost across snapshot/restore"

let test_ext_inject () =
  let f = make_fabric () in
  setup_channel f;
  let msg = Msg.make ~src_tile:0 ~src_act:0 ~size:8 (Ping 123) in
  (match Dtu.ext_inject f.d1 ~ep:1 msg with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "inject failed");
  match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some m) -> (
      match m.Msg.data with Ping 123 -> () | _ -> Alcotest.fail "payload")
  | _ -> Alcotest.fail "injected message not readable"

(* --- Tlb unit tests --- *)

let test_tlb_eviction () =
  let tlb = Tlb.create ~capacity:2 in
  Tlb.insert tlb ~act:1 ~vpage:10 ~ppage:100 ~perm:Dtu_types.RW;
  Tlb.insert tlb ~act:1 ~vpage:11 ~ppage:101 ~perm:Dtu_types.RW;
  Tlb.insert tlb ~act:1 ~vpage:12 ~ppage:102 ~perm:Dtu_types.RW;
  check_int "capacity respected" 2 (Tlb.entry_count tlb);
  check_bool "oldest evicted" true
    (Tlb.lookup tlb ~act:1 ~vpage:10 ~write:false = None);
  check_bool "newest present" true
    (Tlb.lookup tlb ~act:1 ~vpage:12 ~write:false = Some 102)

let test_tlb_perms_and_act_tags () =
  let tlb = Tlb.create ~capacity:8 in
  Tlb.insert tlb ~act:1 ~vpage:5 ~ppage:50 ~perm:Dtu_types.R;
  check_bool "read allowed" true (Tlb.lookup tlb ~act:1 ~vpage:5 ~write:false = Some 50);
  check_bool "write refused" true (Tlb.lookup tlb ~act:1 ~vpage:5 ~write:true = None);
  check_bool "other act misses" true (Tlb.lookup tlb ~act:2 ~vpage:5 ~write:false = None);
  Tlb.invalidate_act tlb 1;
  check_bool "invalidate act" true (Tlb.lookup tlb ~act:1 ~vpage:5 ~write:false = None)

(* --- Dram --- *)

(* A vDTU activity must not be able to reply through, or ack-free, a
   receive endpoint owned by another activity (the Unknown_ep rule of
   paper section 3.5 applies to the implicit-ack paths too). *)
let test_foreign_reply_and_ack_rejected () =
  let f = make_fabric () in
  setup_channel f;
  Dtu.ext_config f.d0 ~ep:2 ~owner:0 (Ep.recv_config ~slots:2 ~slot_size:256 ());
  (match send_ok f ~reply_ep:2 ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send");
  let msg =
    match Dtu.fetch f.d1 ~ep:1 with Ok (Some m) -> m | _ -> Alcotest.fail "fetch"
  in
  (* Another activity takes over the receiver's core: the fetched message
     cannot be replied to or acked through the now-foreign endpoint. *)
  ignore (Dtu.switch_act f.d1 ~next:3);
  let r = ref None in
  Dtu.reply f.d1 ~recv_ep:1 ~to_msg:msg ~msg_size:4 (Ping 2) ~k:(fun x ->
      r := Some x);
  ignore (Engine.run f.eng);
  (match !r with
  | Some (Error Dtu_types.Unknown_ep) -> ()
  | _ -> Alcotest.fail "foreign reply must fail with Unknown_ep");
  (match Dtu.ack f.d1 ~ep:1 msg with
  | Error Dtu_types.Unknown_ep -> ()
  | _ -> Alcotest.fail "foreign ack must fail with Unknown_ep");
  (* The slot was left intact: back on the owner, the ack succeeds. *)
  ignore (Dtu.switch_act f.d1 ~next:7);
  match Dtu.ack f.d1 ~ep:1 msg with
  | Ok () -> ()
  | Error e -> Alcotest.failf "owner ack: %s" (Dtu_types.error_to_string e)

(* Acknowledging the same message twice must fail (Recv_gone) and must not
   mint an extra credit for the sender. *)
let test_double_ack_no_extra_credit () =
  let f = make_fabric () in
  setup_channel ~credits:2 f;
  (match send_ok f ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send");
  let msg =
    match Dtu.fetch f.d1 ~ep:1 with Ok (Some m) -> m | _ -> Alcotest.fail "fetch"
  in
  (match Dtu.ack f.d1 ~ep:1 msg with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first ack");
  ignore (Engine.run f.eng);
  (match Dtu.ack f.d1 ~ep:1 msg with
  | Error Dtu_types.Recv_gone -> ()
  | _ -> Alcotest.fail "double ack must fail with Recv_gone");
  ignore (Engine.run f.eng);
  match (Dtu.ext_read_ep f.d0 ~ep:1).Ep.cfg with
  | Ep.Send s ->
      check_int "credits restored exactly once" 2 s.Ep.credits;
      check_bool "never above max" true (s.Ep.credits <= s.Ep.max_credits)
  | _ -> Alcotest.fail "sender ep vanished"

(* Invalidations must purge the eviction FIFO: across repeated
   insert/invalidate cycles its length stays bounded by the capacity
   instead of accumulating stale keys. *)
let test_tlb_fifo_stays_bounded () =
  let tlb = Tlb.create ~capacity:4 in
  for round = 0 to 9 do
    for v = 0 to 3 do
      Tlb.insert tlb ~act:1 ~vpage:((round * 4) + v) ~ppage:v ~perm:Dtu_types.RW
    done;
    Tlb.invalidate_act tlb 1
  done;
  check_int "fifo empty after invalidate_act" 0 (Tlb.fifo_length tlb);
  for v = 0 to 99 do
    Tlb.insert tlb ~act:2 ~vpage:v ~ppage:v ~perm:Dtu_types.R;
    if v mod 2 = 0 then Tlb.invalidate_page tlb ~act:2 ~vpage:v
  done;
  check_bool "fifo bounded by capacity" true
    (Tlb.fifo_length tlb <= Tlb.capacity tlb);
  check_int "fifo matches live entries" (Tlb.entry_count tlb)
    (Tlb.fifo_length tlb)

(* Permission-upgrade lookups are counted separately from true misses. *)
let test_tlb_perm_upgrade_counted () =
  let tlb = Tlb.create ~capacity:4 in
  Tlb.insert tlb ~act:1 ~vpage:1 ~ppage:10 ~perm:Dtu_types.R;
  check_bool "write on R entry fails" true
    (Tlb.lookup tlb ~act:1 ~vpage:1 ~write:true = None);
  check_bool "absent page misses" true
    (Tlb.lookup tlb ~act:1 ~vpage:2 ~write:false = None);
  let st = Tlb.stats tlb in
  check_int "one perm upgrade" 1 st.Tlb.perm_upgrades;
  check_int "one true miss" 1 st.Tlb.misses

(* --- MPMC receive endpoints: shared fan-in rings --- *)

module Fault = M3v_fault.Fault

(* MPMC ring on d1 ep1 (owned by act 7); two send gates on d0 (ep1 and
   ep2, both act 0) target it — the minimal multi-producer setup. *)
let setup_mpmc ?(credits = 2) ?(slots = 8) ?(ack_batch = 4) f =
  Dtu.ext_config f.d1 ~ep:1 ~owner:7
    (Ep.mpmc_config ~slots ~slot_size:256 ~ack_batch ());
  Dtu.ext_config f.d0 ~ep:1 ~owner:0
    (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~label:1 ~max_msg_size:240 ~credits ());
  Dtu.ext_config f.d0 ~ep:2 ~owner:0
    (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~label:2 ~max_msg_size:240 ~credits ());
  ignore (Dtu.switch_act f.d0 ~next:0);
  ignore (Dtu.switch_act f.d1 ~next:7)

let send_from f ~ep ~size data =
  let result = ref None in
  Dtu.send f.d0 ~ep ~msg_size:size data ~k:(fun r -> result := Some r);
  ignore (Engine.run f.eng);
  Option.get !result

let sender_credits f ~ep =
  match (Dtu.ext_read_ep f.d0 ~ep).Ep.cfg with
  | Ep.Send s -> s.Ep.credits
  | _ -> Alcotest.fail "not a send endpoint"

let test_mpmc_multi_sender_fanin () =
  let f = make_fabric () in
  setup_mpmc ~credits:2 ~slots:8 ~ack_batch:4 f;
  List.iter
    (fun (ep, i) ->
      match send_from f ~ep ~size:16 (Ping i) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send %d: %s" i (Dtu_types.error_to_string e))
    [ (1, 0); (2, 1); (1, 2); (2, 3) ];
  check_int "all unread for the owner" 4 (Dtu.unread_of f.d1 7);
  check_int "both senders exhausted" 0
    (sender_credits f ~ep:1 + sender_credits f ~ep:2);
  (* FIFO across producers; acks through the shared ring refund both. *)
  for i = 0 to 3 do
    match Dtu.fetch f.d1 ~ep:1 with
    | Ok (Some msg) ->
        (match msg.Msg.data with
        | Ping j -> check_int "fifo across producers" i j
        | _ -> Alcotest.fail "payload");
        (match Dtu.ack f.d1 ~ep:1 msg with
        | Ok () -> ()
        | Error e -> Alcotest.failf "ack: %s" (Dtu_types.error_to_string e))
    | _ -> Alcotest.fail "fetch"
  done;
  ignore (Engine.run f.eng);
  check_int "sender 1 replenished" 2 (sender_credits f ~ep:1);
  check_int "sender 2 replenished" 2 (sender_credits f ~ep:2);
  let st = Dtu.stats f.d1 in
  check_int "mpmc deliveries" 4 st.Dtu.mpmc_deliveries;
  check_bool "refunds travelled batched" true (st.Dtu.mpmc_refund_flushes >= 1);
  check_int "every credit refunded" 4 st.Dtu.mpmc_credits_refunded

let test_mpmc_doorbell_coalesced_while_backed_up () =
  let f = make_fabric () in
  setup_mpmc ~credits:4 ~slots:8 f;
  ignore (Dtu.switch_act f.d1 ~next:3);
  let irqs = ref 0 in
  Dtu.set_core_req_irq f.d1 (fun () -> incr irqs);
  for i = 0 to 2 do
    match send_from f ~ep:1 ~size:8 (Ping i) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send: %s" (Dtu_types.error_to_string e)
  done;
  (* Only the empty->non-empty transition rings; the rest coalesce. *)
  check_int "single doorbell for a backed-up ring" 1 !irqs;
  check_int "one core request queued" 1 (Dtu.core_req_depth f.d1);
  check_int "every message still counted unread" 3 (Dtu.unread_of f.d1 7);
  check_int "two doorbells coalesced" 2
    (Dtu.stats f.d1).Dtu.mpmc_doorbells_coalesced;
  (match Dtu.fetch_core_req f.d1 with
  | Some 7 -> ()
  | _ -> Alcotest.fail "core request must name the ring owner");
  Dtu.ack_core_req f.d1;
  ignore (Engine.run f.eng);
  (* Drain the ring: the next delivery is a fresh transition and rings. *)
  ignore (Dtu.switch_act f.d1 ~next:7);
  for _ = 0 to 2 do
    match Dtu.fetch f.d1 ~ep:1 with
    | Ok (Some msg) -> ignore (Dtu.ack f.d1 ~ep:1 msg)
    | _ -> Alcotest.fail "drain fetch"
  done;
  ignore (Engine.run f.eng);
  ignore (Dtu.switch_act f.d1 ~next:3);
  (match send_from f ~ep:1 ~size:8 (Ping 9) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Dtu_types.error_to_string e));
  check_int "doorbell rings again after drain" 2 !irqs

let test_mpmc_full_ring_backpressure () =
  let f = make_fabric () in
  setup_mpmc ~credits:4 ~slots:1 ~ack_batch:1 f;
  (match send_from f ~ep:1 ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send 1");
  (match send_from f ~ep:2 ~size:8 (Ping 2) with
  | Error Dtu_types.Recv_gone -> ()
  | _ -> Alcotest.fail "second send must find the ring full");
  check_int "failed send refunded its credit" 4 (sender_credits f ~ep:2);
  (match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some msg) -> ignore (Dtu.ack f.d1 ~ep:1 msg)
  | _ -> Alcotest.fail "fetch");
  ignore (Engine.run f.eng);
  match send_from f ~ep:2 ~size:8 (Ping 3) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send after drain: %s" (Dtu_types.error_to_string e)

(* A batched refund that lands while the sender's endpoint sits in an
   M3x-style snapshot window (Invalid) must be parked and re-applied on
   restore — not dropped (credit leak) and never applied twice. *)
let test_mpmc_refund_survives_snapshot_window () =
  let f = make_fabric () in
  setup_mpmc ~credits:2 ~slots:8 ~ack_batch:100 f;
  (match send_from f ~ep:1 ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send 1");
  (match send_from f ~ep:1 ~size:8 (Ping 2) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send 2");
  let saved = Dtu.ext_snapshot_eps f.d0 ~first:1 ~count:1 in
  Dtu.ext_invalidate f.d0 ~ep:1;
  (* Draining the ring flushes the batched refund into the Invalid slot. *)
  for _ = 1 to 2 do
    match Dtu.fetch f.d1 ~ep:1 with
    | Ok (Some msg) -> ignore (Dtu.ack f.d1 ~ep:1 msg)
    | _ -> Alcotest.fail "fetch"
  done;
  ignore (Engine.run f.eng);
  Dtu.ext_restore_eps f.d0 ~first:1 saved;
  check_int "parked refunds applied on restore" 2 (sender_credits f ~ep:1);
  match send_from f ~ep:1 ~size:8 (Ping 3) with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "send after restore: %s" (Dtu_types.error_to_string e)

(* Reconfiguring the slot (revoke + re-delegate) must discard the parked
   refund: credits of the revoked gate are not minted into the new one. *)
let test_mpmc_refund_discarded_on_reconfigure () =
  let f = make_fabric () in
  setup_mpmc ~credits:2 ~slots:8 ~ack_batch:100 f;
  (match send_from f ~ep:1 ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send 1");
  (match send_from f ~ep:1 ~size:8 (Ping 2) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send 2");
  Dtu.ext_invalidate f.d0 ~ep:1;
  for _ = 1 to 2 do
    match Dtu.fetch f.d1 ~ep:1 with
    | Ok (Some msg) -> ignore (Dtu.ack f.d1 ~ep:1 msg)
    | _ -> Alcotest.fail "fetch"
  done;
  ignore (Engine.run f.eng);
  Dtu.ext_config f.d0 ~ep:1 ~owner:0
    (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~label:1 ~max_msg_size:240 ~credits:1 ());
  check_int "fresh gate keeps its own credits" 1 (sender_credits f ~ep:1);
  (match send_from f ~ep:1 ~size:8 (Ping 9) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send through fresh gate");
  (match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some msg) -> ignore (Dtu.ack f.d1 ~ep:1 msg)
  | _ -> Alcotest.fail "fetch through fresh gate");
  ignore (Engine.run f.eng);
  check_int "never above the fresh gate's max" 1 (sender_credits f ~ep:1)

(* Regression: the owned-endpoint memo cache must not keep serving an
   MPMC endpoint whose capability was revoked or re-delegated mid-run. *)
let test_mpmc_stale_memo_after_revoke () =
  let f = make_fabric () in
  setup_mpmc f;
  (match send_from f ~ep:1 ~size:8 (Ping 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send");
  (* Prime the memo with a successful owned lookup... *)
  (match Dtu.fetch f.d1 ~ep:1 with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "fetch");
  (* ...then revoke: the stale memo must not serve the dead endpoint. *)
  Dtu.ext_invalidate f.d1 ~ep:1;
  (match Dtu.fetch f.d1 ~ep:1 with
  | Error Dtu_types.No_such_ep -> ()
  | _ -> Alcotest.fail "stale memo served a revoked endpoint");
  (* Re-delegating the slot to another activity stays hidden from act 7. *)
  Dtu.ext_config f.d1 ~ep:1 ~owner:3 (Ep.mpmc_config ~slots:4 ~slot_size:256 ());
  (match Dtu.fetch f.d1 ~ep:1 with
  | Error Dtu_types.Unknown_ep -> ()
  | _ -> Alcotest.fail "foreign MPMC endpoint must be hidden");
  ignore (Dtu.switch_act f.d1 ~next:3);
  match Dtu.fetch f.d1 ~ep:1 with
  | Ok None -> ()
  | _ -> Alcotest.fail "new owner must see a fresh empty ring"

(* Exactly-once delivery and global credit conservation under random
   fault plans: at every quiescent point
       credits(s1) + credits(s2) + ring occupancy + batched refunds
   equals the total credit budget, and after a full drain every payload
   whose send was acknowledged arrived exactly once (retransmission
   recovers drops, receive-side dedup swallows duplicates). *)
let prop_mpmc_exactly_once_conserved =
  QCheck.Test.make
    ~name:"MPMC: exactly-once + credit conservation under random faults"
    ~count:25
    QCheck.(
      pair
        (pair small_int (pair (int_bound 25) (int_bound 25)))
        (list_of_size (Gen.int_range 1 40) (int_bound 3)))
    (fun ((seed, (drop100, dup100)), script) ->
      let spec =
        {
          Fault.none with
          drop = float_of_int drop100 /. 100.;
          dup = float_of_int dup100 /. 100.;
          delay = 0.05;
        }
      in
      let plan = Fault.create ~seed:(seed + 1) spec in
      Fault.with_plan plan (fun () ->
          let credits = 2 in
          let f = make_fabric () in
          setup_mpmc ~credits ~slots:8 ~ack_batch:3 f;
          let next = ref 0 in
          let sent_ok = ref [] in
          let fetched = Queue.create () in
          let got = ref [] in
          let ok = ref true in
          let payload m = match m.Msg.data with Ping i -> i | _ -> -1 in
          let credit_sum () =
            match (Dtu.ext_read_ep f.d1 ~ep:1).Ep.cfg with
            | Ep.Mpmc_recv mp ->
                sender_credits f ~ep:1 + sender_credits f ~ep:2
                + Ep.mp_occupied mp + mp.Ep.mp_refund_total
            | _ -> Alcotest.fail "mpmc ep vanished"
          in
          let send ep =
            let i = !next in
            incr next;
            Dtu.send f.d0 ~ep ~msg_size:16 (Ping i) ~k:(fun r ->
                if r = Ok () then sent_ok := i :: !sent_ok)
          in
          List.iter
            (fun op ->
              (match op with
              | 0 -> send 1
              | 1 -> send 2
              | 2 -> (
                  match Dtu.fetch f.d1 ~ep:1 with
                  | Ok (Some m) -> Queue.add m fetched
                  | Ok None | Error _ -> ())
              | _ -> (
                  match Queue.take_opt fetched with
                  | Some m ->
                      got := payload m :: !got;
                      ignore (Dtu.ack f.d1 ~ep:1 m)
                  | None -> ()));
              ignore (Engine.run f.eng);
              if credit_sum () <> 2 * credits then ok := false)
            script;
          (* Drain and ack everything still buffered; the ledger must
             balance and the delivered multiset must match the acked
             sends exactly. *)
          Queue.iter
            (fun m ->
              got := payload m :: !got;
              ignore (Dtu.ack f.d1 ~ep:1 m))
            fetched;
          ignore (Engine.run f.eng);
          let rec drain () =
            match Dtu.fetch f.d1 ~ep:1 with
            | Ok (Some m) ->
                got := payload m :: !got;
                ignore (Dtu.ack f.d1 ~ep:1 m);
                ignore (Engine.run f.eng);
                drain ()
            | Ok None | Error _ -> ()
          in
          drain ();
          !ok
          && List.sort compare !got = List.sort compare !sent_ok
          && sender_credits f ~ep:1 = credits
          && sender_credits f ~ep:2 = credits))

let test_dram_contention () =
  let dram = Dram.create ~size:4096 () in
  let t1 = Dram.access_time dram ~now:0 ~bytes:1024 in
  let t2 = Dram.access_time dram ~now:0 ~bytes:1024 in
  check_bool "second access serialized" true (t2 >= 2 * t1 - 1)

let suite =
  [
    ("send/recv", `Quick, test_send_recv);
    ("credits exhaust and return", `Quick, test_credits_exhaust_and_return);
    ("recv_gone restores credit", `Quick, test_recv_gone_restores_credit);
    ("full buffer", `Quick, test_buffer_full_is_recv_gone);
    ("owner isolation", `Quick, test_owner_isolation);
    ("non-virtualized skips owner checks", `Quick, test_non_virtualized_skips_owner_checks);
    ("fast path + core request", `Quick, test_delivery_to_non_running_sets_core_req);
    ("core request queue re-raises", `Quick, test_core_req_queue_reraises);
    ("atomic switch old count", `Quick, test_atomic_switch_returns_old_count);
    ("reply round trip + auto-ack", `Quick, test_reply_roundtrip_and_autoack);
    ("dma read/write", `Quick, test_dma_read_write);
    ("dma bounds and perms", `Quick, test_dma_bounds_and_perms);
    ("tlb miss fails command", `Quick, test_tlb_miss_fails_command);
    ("page boundary rejected", `Quick, test_page_boundary_rejected);
    ("ep snapshot/restore", `Quick, test_ep_snapshot_restore);
    ("ext inject", `Quick, test_ext_inject);
    ("tlb eviction", `Quick, test_tlb_eviction);
    ("tlb perms and tags", `Quick, test_tlb_perms_and_act_tags);
    ("foreign reply/ack rejected", `Quick, test_foreign_reply_and_ack_rejected);
    ("double ack mints no credit", `Quick, test_double_ack_no_extra_credit);
    ("tlb fifo stays bounded", `Quick, test_tlb_fifo_stays_bounded);
    ("tlb perm upgrades counted", `Quick, test_tlb_perm_upgrade_counted);
    ("dram contention", `Quick, test_dram_contention);
    ("mpmc multi-sender fan-in", `Quick, test_mpmc_multi_sender_fanin);
    ( "mpmc doorbell coalescing",
      `Quick,
      test_mpmc_doorbell_coalesced_while_backed_up );
    ("mpmc full ring backpressure", `Quick, test_mpmc_full_ring_backpressure);
    ( "mpmc refund survives snapshot window",
      `Quick,
      test_mpmc_refund_survives_snapshot_window );
    ( "mpmc refund discarded on reconfigure",
      `Quick,
      test_mpmc_refund_discarded_on_reconfigure );
    ("mpmc stale memo after revoke", `Quick, test_mpmc_stale_memo_after_revoke);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_mpmc_exactly_once_conserved ]
