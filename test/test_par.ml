(* Tests for the parallel execution layer (lib/par), the SoA event queue
   rewrite, the Engine clock rule, the bench report codec — and the
   headline determinism contract: experiments produce identical results
   however many domains run them. *)

module Par = M3v_par.Par
module Event_queue = M3v_sim.Event_queue
module Engine = M3v_sim.Engine
module Bench_io = M3v_bench_io.Bench_io

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Par: futures, ordering, exceptions --- *)

let test_par_results_in_order () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let results = Par.map pool (fun i -> i * i) (List.init 50 Fun.id) in
      Alcotest.(check (list int))
        "squares in submission order"
        (List.init 50 (fun i -> i * i))
        results)

let test_par_sequential_pool_inline () =
  (* The sequential pool runs tasks at submission on the calling domain:
     side effects happen in submission order, before await. *)
  let log = ref [] in
  let fs =
    List.map
      (fun i -> Par.submit Par.Pool.sequential (fun () -> log := i :: !log; i))
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "ran at submission" [ 3; 2; 1 ] !log;
  Alcotest.(check (list int)) "await returns values" [ 1; 2; 3 ]
    (List.map Par.await fs)

exception Boom of int

let test_par_exception_propagates () =
  Par.Pool.with_pool ~jobs:3 (fun pool ->
      let f_ok = Par.submit pool (fun () -> 41) in
      let f_bad = Par.submit pool (fun () -> raise (Boom 7)) in
      check_int "good future unaffected" 41 (Par.await f_ok);
      Alcotest.check_raises "await re-raises" (Boom 7) (fun () ->
          ignore (Par.await f_bad));
      (* A failed future stays failed on every await. *)
      Alcotest.check_raises "await re-raises again" (Boom 7) (fun () ->
          ignore (Par.await f_bad)))

let test_par_nested_fanout () =
  (* A task that itself fans out through the same pool must not deadlock
     (awaiting domains help with queued tasks). *)
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      let outer =
        Par.map pool
          (fun i ->
            List.fold_left ( + ) 0 (Par.map pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int))
        "nested sums" [ 36; 66; 96; 126 ] outer)

let test_par_jobs_clamped () =
  check_int "sequential pool is 1 wide" 1 (Par.Pool.jobs Par.Pool.sequential);
  Par.Pool.with_pool ~jobs:0 (fun pool ->
      check_int "jobs <= 1 degenerates to sequential" 1 (Par.Pool.jobs pool));
  Par.Pool.with_pool ~jobs:3 (fun pool ->
      check_int "requested width" 3 (Par.Pool.jobs pool))

(* --- experiment determinism: parallel == sequential --- *)

let test_fig9_parallel_equals_sequential () =
  let run pool = M3v.Exp_fig9.run ~pool ~runs:1 ~warmup:0 ~tile_counts:[ 1; 2 ] () in
  let seq = run Par.Pool.sequential in
  let par = Par.Pool.with_pool ~jobs:4 run in
  check_bool "fig9 results identical" true (seq = par)

let test_fanin_parallel_equals_sequential () =
  let run pool = M3v.Exp_fanin.run ~pool ~msgs:5 ~sender_counts:[ 2; 4 ] () in
  let seq = run Par.Pool.sequential in
  let par = Par.Pool.with_pool ~jobs:4 run in
  check_bool "fan-in results identical" true (seq = par)

let test_chaos_sweep_parallel_equals_sequential () =
  let sweep pool =
    M3v.Exp_chaos.run_sweep ~pool ~seeds:3 ~fs_rounds:2 ~kv_ops:30 ()
  in
  let seq = sweep Par.Pool.sequential in
  let par = Par.Pool.with_pool ~jobs:3 sweep in
  check_int "three seeds" 3 (List.length seq);
  check_bool "chaos sweep results identical" true (seq = par)

(* --- Event_queue: SoA heap properties --- *)

let drain q =
  let rec loop acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, v) -> loop ((t, v) :: acc)
  in
  loop []

(* Reference model: a stable sort by time of the pushed (time, value)
   list is exactly the FIFO-on-ties heap order. *)
let prop_heap_matches_stable_sort =
  QCheck.Test.make ~name:"heap order = stable sort by time" ~count:200
    QCheck.(list (pair (int_bound 50) small_int))
    (fun entries ->
      let q = Event_queue.create () in
      List.iter (fun (time, v) -> Event_queue.push q ~time v) entries;
      let expected = List.stable_sort (fun (a, _) (b, _) -> compare a b) entries in
      drain q = expected)

(* Interleaved pushes and pops against the same model. *)
let prop_heap_interleaved =
  QCheck.Test.make ~name:"FIFO ties survive interleaved push/pop" ~count:200
    QCheck.(list (pair (option (int_bound 20)) small_int))
    (fun script ->
      let q = Event_queue.create ~capacity:1 () in
      let model = ref [] (* (time, seq, v), kept sorted *) in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | Some time ->
              Event_queue.push q ~time v;
              incr seq;
              model :=
                List.stable_sort
                  (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
                  ((time, !seq, v) :: !model)
          | None -> (
              match (Event_queue.pop q, !model) with
              | None, [] -> ()
              | Some (t, v'), (mt, _, mv) :: rest ->
                  if t <> mt || v' <> mv then ok := false;
                  model := rest
              | Some _, [] | None, _ :: _ -> ok := false))
        script;
      !ok && drain q = List.map (fun (t, _, v) -> (t, v)) !model)

let test_queue_clear_reuse () =
  let q = Event_queue.create ~capacity:4 () in
  for i = 1 to 100 do
    Event_queue.push q ~time:i i
  done;
  Event_queue.clear q;
  check_bool "empty after clear" true (Event_queue.is_empty q);
  check_int "length 0" 0 (Event_queue.length q);
  (* Reuse after clear: order and contents still correct, including ties. *)
  Event_queue.push q ~time:5 1;
  Event_queue.push q ~time:3 2;
  Event_queue.push q ~time:5 3;
  Alcotest.(check (list (pair int int)))
    "reused queue drains in order"
    [ (3, 2); (5, 1); (5, 3) ]
    (drain q)

let test_queue_two_payloads () =
  let q = Event_queue.create2 ~capacity:2 () in
  Event_queue.push2 q ~time:20 "b" 2;
  Event_queue.push2 q ~time:10 "a" 1;
  Event_queue.push2 q ~time:20 "c" 3;
  let order = ref [] in
  while not (Event_queue.is_empty q) do
    let t = Event_queue.next_time q in
    let x = Event_queue.top_fst q in
    let y = Event_queue.top_snd q in
    Event_queue.drop_min q;
    order := (t, x, y) :: !order
  done;
  Alcotest.(check (list (triple int string int)))
    "both payloads travel together"
    [ (10, "a", 1); (20, "b", 2); (20, "c", 3) ]
    (List.rev !order);
  Alcotest.check_raises "next_time on empty"
    (Invalid_argument "Event_queue.next_time: empty queue") (fun () ->
      ignore (Event_queue.next_time q))

(* The non-allocating accessors must agree with [pop] on every state. *)
let prop_fast_path_matches_pop =
  QCheck.Test.make ~name:"top_fst/drop_min agree with pop" ~count:200
    QCheck.(list (pair (int_bound 30) small_int))
    (fun entries ->
      let q1 = Event_queue.create () in
      let q2 = Event_queue.create () in
      List.iter
        (fun (time, v) ->
          Event_queue.push q1 ~time v;
          Event_queue.push q2 ~time v)
        entries;
      let ok = ref true in
      while not (Event_queue.is_empty q1) do
        let t = Event_queue.next_time q1 in
        let v = Event_queue.pop_min q1 in
        (match Event_queue.pop q2 with
        | Some (t', v') -> if t <> t' || v <> v' then ok := false
        | None -> ok := false)
      done;
      !ok && Event_queue.is_empty q2)

(* --- Engine: clock rule and apply fast path --- *)

let test_engine_until_advances_when_drained () =
  let eng = Engine.create () in
  Engine.at eng ~time:10 (fun () -> ());
  ignore (Engine.run ~until:100 eng);
  check_int "clock reaches the horizon" 100 (Engine.now eng)

let test_engine_max_events_keeps_clock () =
  let eng = Engine.create () in
  for i = 1 to 5 do
    Engine.at eng ~time:(10 * i) (fun () -> ())
  done;
  let n = Engine.run ~until:100 ~max_events:2 eng in
  check_int "stopped after 2 events" 2 n;
  (* Events at 30/40/50 are still pending at or before the horizon: the
     clock must NOT jump to 100. *)
  check_int "clock stays at last processed event" 20 (Engine.now eng)

let test_engine_max_events_at_drain_advances () =
  let eng = Engine.create () in
  Engine.at eng ~time:10 (fun () -> ());
  Engine.at eng ~time:20 (fun () -> ());
  let n = Engine.run ~until:100 ~max_events:2 eng in
  check_int "both events ran" 2 n;
  (* max_events stopped the loop exactly as the queue drained: nothing is
     pending before the horizon, so the clock advances to it. *)
  check_int "clock advances to horizon" 100 (Engine.now eng)

let test_engine_event_beyond_horizon () =
  let eng = Engine.create () in
  Engine.at eng ~time:250 (fun () -> ());
  ignore (Engine.run ~until:100 eng);
  check_int "clock stops at horizon" 100 (Engine.now eng);
  check_int "event still pending" 1 (Engine.pending eng);
  ignore (Engine.run eng);
  check_int "pending event runs on the next call" 250 (Engine.now eng)

let test_engine_apply_fast_path () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at_apply eng ~time:20 (fun x -> log := x :: !log) 2;
  Engine.at eng ~time:10 (fun () -> log := 1 :: !log);
  Engine.after_apply eng ~delay:30 (fun x -> log := x :: !log) 3;
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "apply events interleave with closures"
    [ 3; 2; 1 ] !log;
  check_int "clock at last event" 30 (Engine.now eng)

(* --- Bench_io: report codec and comparison --- *)

let test_bench_io_roundtrip () =
  let report =
    Bench_io.make ~git_sha:"abc123" ~timestamp:"2026-08-07T00:00:00Z"
      ~ocaml_version:"5.1.1" ~hostname:"ci \"box\" \\ 1"
      [ ("fig6_rpc", Some 123456.5); ("fig9_scale", None) ]
  in
  match Bench_io.of_json (Bench_io.to_json report) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok r ->
      check_bool "report roundtrips" true (r = report);
      check_string "escaped hostname survives" "ci \"box\" \\ 1" r.hostname

let test_bench_io_rejects_garbage () =
  check_bool "not json" true (Result.is_error (Bench_io.of_json "pas du json"));
  check_bool "no benchmarks field" true
    (Result.is_error (Bench_io.of_json "{ \"git_sha\": \"x\" }"));
  check_bool "trailing garbage" true
    (Result.is_error (Bench_io.of_json "{ \"benchmarks\": [] } }"))

let test_bench_io_compare () =
  let baseline =
    Bench_io.make
      [ ("a", Some 100.0); ("b", Some 100.0); ("gone", Some 50.0); ("c", None) ]
  in
  let current =
    Bench_io.make
      [ ("a", Some 110.0); ("b", Some 200.0); ("new", Some 10.0); ("c", Some 5.0) ]
  in
  let cmp = Bench_io.compare ~threshold_pct:25.0 ~baseline ~current in
  check_int "only both-sided tests compared" 3 (List.length cmp.Bench_io.deltas);
  check_bool "retired test warned, not compared" true
    (cmp.Bench_io.baseline_only = [ "gone" ]);
  check_bool "added test warned, not compared" true
    (cmp.Bench_io.current_only = [ "new" ]);
  (match cmp.Bench_io.regressions with
  | [ d ] ->
      check_string "only b regressed" "b" d.Bench_io.test;
      check_bool "pct = +100%" true (d.Bench_io.pct = Some 100.0)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* Raising the threshold clears it. *)
  let cmp' = Bench_io.compare ~threshold_pct:120.0 ~baseline ~current in
  check_int "no regressions above 120%" 0 (List.length cmp'.Bench_io.regressions)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "par: map keeps submission order" `Quick
      test_par_results_in_order;
    Alcotest.test_case "par: sequential pool runs inline" `Quick
      test_par_sequential_pool_inline;
    Alcotest.test_case "par: task exception re-raised by await" `Quick
      test_par_exception_propagates;
    Alcotest.test_case "par: nested fan-out does not deadlock" `Quick
      test_par_nested_fanout;
    Alcotest.test_case "par: pool width" `Quick test_par_jobs_clamped;
    Alcotest.test_case "fig9: parallel == sequential" `Slow
      test_fig9_parallel_equals_sequential;
    Alcotest.test_case "chaos sweep: parallel == sequential" `Slow
      test_chaos_sweep_parallel_equals_sequential;
    Alcotest.test_case "fan-in ablation: parallel == sequential" `Slow
      test_fanin_parallel_equals_sequential;
    Alcotest.test_case "event queue: clear then reuse" `Quick
      test_queue_clear_reuse;
    Alcotest.test_case "event queue: two payloads + empty accessors" `Quick
      test_queue_two_payloads;
    Alcotest.test_case "engine: until advances a drained clock" `Quick
      test_engine_until_advances_when_drained;
    Alcotest.test_case "engine: max_events keeps clock on pending work" `Quick
      test_engine_max_events_keeps_clock;
    Alcotest.test_case "engine: max_events at drain advances clock" `Quick
      test_engine_max_events_at_drain_advances;
    Alcotest.test_case "engine: event beyond horizon stays queued" `Quick
      test_engine_event_beyond_horizon;
    Alcotest.test_case "engine: at_apply/after_apply fast path" `Quick
      test_engine_apply_fast_path;
    Alcotest.test_case "bench_io: json roundtrip" `Quick test_bench_io_roundtrip;
    Alcotest.test_case "bench_io: bad input rejected" `Quick
      test_bench_io_rejects_garbage;
    Alcotest.test_case "bench_io: comparison and threshold" `Quick
      test_bench_io_compare;
  ]
  @ qsuite
      [
        prop_heap_matches_stable_sort;
        prop_heap_interleaved;
        prop_fast_path_matches_pop;
      ]
