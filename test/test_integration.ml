(* Cross-cutting integration tests: capability revocation end to end,
   credit backpressure under load, failure injection, determinism, the
   autonomous-accelerator engine, and smoke tests of the experiment
   harness asserting the paper's headline relations on tiny instances. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module System = M3v.System
module Services = M3v.Services
module Controller = M3v_kernel.Controller
module Proto = M3v_kernel.Protocol
module Platform = M3v_tile.Platform

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type Msg.data += Ping of int

(* --- capability revocation, end to end --- *)

let test_revoke_kills_channel () =
  let sys = System.create ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let delivered = ref 0 and failed = ref false in
  let rgate_sel_box = ref (-1) in
  let server, _ =
    System.spawn sys ~tile:2 ~name:"server" (fun env ->
        let* _ep, msg = A.recv ~eps:[ !rgate ] in
        incr delivered;
        let* () = A.ack ~ep:!rgate msg in
        (* The gate's owner revokes the whole subtree: its own receive
           endpoint and every derived send gate must die. *)
        let* _ = A.syscall env (Proto.Revoke { sel = !rgate_sel_box }) in
        Proc.return ())
  in
  let rgate_sel = Controller.host_new_rgate ctrl ~act:server ~slots:4 ~slot_size:128 in
  rgate_sel_box := rgate_sel;
  rgate := Controller.host_activate ctrl ~act:server ~sel:rgate_sel ();
  let client, _ =
    System.spawn sys ~tile:3 ~name:"client" (fun _ ->
        let* () = A.send ~ep:(fst !chan) ~size:8 (Ping 1) in
        (* Give the revocation time to propagate, then finish. *)
        A.compute 200_000)
  in
  ignore client;
  let sgate_sel =
    Controller.host_new_sgate ctrl ~owner:client ~rgate_of:server ~rgate_sel
      ~credits:2 ()
  in
  chan := (Controller.host_activate ctrl ~act:client ~sel:sgate_sel (), -1);
  System.boot sys;
  ignore (System.run sys);
  check_int "first message delivered" 1 !delivered;
  ignore !failed;
  (* After revocation the endpoints are invalid on both tiles. *)
  let d2 = Platform.dtu (System.platform sys) 2 in
  (match (M3v_dtu.Dtu.ext_read_ep d2 ~ep:!rgate).M3v_dtu.Ep.cfg with
  | M3v_dtu.Ep.Invalid -> ()
  | _ -> Alcotest.fail "server rgate must be invalidated");
  let d3 = Platform.dtu (System.platform sys) 3 in
  match (M3v_dtu.Dtu.ext_read_ep d3 ~ep:(fst !chan)).M3v_dtu.Ep.cfg with
  | M3v_dtu.Ep.Invalid -> ()
  | _ -> Alcotest.fail "client sgate must be invalidated"

(* NOTE on the wait above: the client's revoke syscall runs after the
   send's completion, so the subtree revocation is race-free here. *)

(* --- credit backpressure: a fast producer against a slow consumer --- *)

let test_credit_backpressure () =
  let sys = System.create ~variant:System.M3v () in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let rounds = 40 in
  let received = ref 0 in
  let server, _ =
    System.spawn sys ~tile:2 ~name:"slow-consumer" (fun _ ->
        Proc.repeat rounds (fun _ ->
            let* _ep, msg = A.recv ~eps:[ !rgate ] in
            (* Chew on each message for a while before acknowledging. *)
            let* () = A.compute 20_000 in
            incr received;
            A.ack ~ep:!rgate msg))
  in
  let client, _ =
    System.spawn sys ~tile:3 ~name:"fast-producer" (fun _ ->
        Proc.repeat rounds (fun i -> A.send ~ep:(fst !chan) ~size:8 (Ping i)))
  in
  (* Only 2 credits and 2 slots: the producer must repeatedly stall. *)
  let ch = System.channel sys ~src:client ~dst:server ~credits:2 ~slots:2 () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  check_int "nothing lost under backpressure" rounds !received

(* --- determinism: identical runs produce identical simulated time --- *)

let test_determinism () =
  let run () =
    let sys = System.create ~variant:System.M3v () in
    let fs = Services.make_fs sys ~tile:3 ~blocks:512 () in
    Services.preload_file sys fs ~path:"/f" (Bytes.make 65536 'z');
    let elapsed = ref Time.zero in
    let cb = ref None in
    let aid, env =
      System.spawn sys ~tile:2 ~name:"reader" (fun _ ->
          let vfs = M3v_os.Fs_client.to_vfs (Option.get !cb) in
          let* t0 = A.now in
          let* r = M3v_os.Vfs.read_all vfs "/f" in
          (match r with Ok _ -> () | Error e -> failwith e);
          let* t1 = A.now in
          elapsed := Time.sub t1 t0;
          Proc.return ())
    in
    cb := Some (fs.Services.connect aid env);
    System.boot sys;
    let events = System.run sys in
    (!elapsed, events)
  in
  let t1, e1 = run () in
  let t2, e2 = run () in
  check_int "same simulated duration" t1 t2;
  check_int "same event count" e1 e2

(* --- failure injection: a lossy NIC drops frames, the sink counts --- *)

let test_nic_drop_injection () =
  let sys = System.create ~variant:System.M3v () in
  let net =
    Services.make_net sys ~drop_probability:0.5 ~host:M3v_os.Nic.Sink ()
  in
  let cb = ref None in
  let aid, env =
    System.spawn sys ~tile:2 ~name:"sender" (fun _ ->
        let udp = M3v_os.Net_client.to_udp (Option.get !cb) in
        let* sock = udp.M3v_os.Net_client.u_socket () in
        Proc.repeat 60 (fun _ ->
            udp.M3v_os.Net_client.u_sendto sock (1, 9000) (Bytes.make 100 'x')))
  in
  cb := Some (net.Services.net_connect aid env);
  System.boot sys;
  ignore (System.run sys);
  let s = M3v_os.Nic.stats net.Services.nic in
  check_int "all frames left the driver" 60 s.M3v_os.Nic.tx;
  check_bool "some frames dropped on the wire" true (s.M3v_os.Nic.dropped > 5);
  check_bool "not all frames dropped" true (s.M3v_os.Nic.dropped < 55)

(* --- autonomous accelerators --- *)

let test_accel_chain () =
  let spec =
    [
      Platform.Ctrl M3v_tile.Core_model.rocket;
      Platform.Proc M3v_tile.Core_model.boom;
      Platform.Accel "double";
      Platform.Accel "inc";
      Platform.Mem (4 * 1024 * 1024);
    ]
  in
  let sys = System.create ~spec ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let result = ref Bytes.empty in
  let sink_rgate = ref (-1) in
  let src_sgate = ref (-1) in
  let app, _ =
    System.spawn sys ~tile:1 ~name:"app" (fun _ ->
        let* () = A.send ~ep:!src_sgate ~size:4 (M3v_os.Accel.Data (Bytes.of_string "\001\002\003\004")) in
        let* _ep, msg = A.recv ~eps:[ !sink_rgate ] in
        (match msg.Msg.data with
        | M3v_os.Accel.Data d -> result := d
        | _ -> failwith "bad result");
        A.ack ~ep:!sink_rgate msg)
  in
  (* app -> double -> inc -> app *)
  let slot = 128 in
  let mk_accel_rgate tile =
    let ep = Controller.host_alloc_ep_anon ctrl ~tile in
    M3v_dtu.Dtu.ext_config (Platform.dtu (System.platform sys) tile) ~ep ~owner:0
      (M3v_dtu.Ep.recv_config ~slots:2 ~slot_size:slot ());
    ep
  in
  let r2 = mk_accel_rgate 2 and r3 = mk_accel_rgate 3 in
  let app_rgate_sel = Controller.host_new_rgate ctrl ~act:app ~slots:2 ~slot_size:slot in
  sink_rgate := Controller.host_activate ctrl ~act:app ~sel:app_rgate_sel ();
  let mk_sgate ~tile ~owner (dst_tile, dst_ep) =
    let ep =
      if owner = M3v_dtu.Dtu_types.invalid_act then
        Controller.host_alloc_ep_anon ctrl ~tile
      else Controller.host_alloc_ep ctrl ~tile ~act:owner
    in
    M3v_dtu.Dtu.ext_config (Platform.dtu (System.platform sys) tile) ~ep ~owner
      (M3v_dtu.Ep.send_config ~dst_tile ~dst_ep ~max_msg_size:(slot - 16) ~credits:2 ());
    ep
  in
  src_sgate := mk_sgate ~tile:1 ~owner:app (2, r2);
  let a1 =
    M3v_os.Accel.attach ~engine:(System.engine sys)
      ~dtu:(Platform.dtu (System.platform sys) 2)
      ~rgate:r2
      ~out_ep:(mk_sgate ~tile:2 ~owner:M3v_dtu.Dtu_types.invalid_act (3, r3))
      ~ns_per_byte:10
      ~transform:(Bytes.map (fun c -> Char.chr (2 * Char.code c)))
      ()
  in
  let _a2 =
    M3v_os.Accel.attach ~engine:(System.engine sys)
      ~dtu:(Platform.dtu (System.platform sys) 3)
      ~rgate:r3
      ~out_ep:(mk_sgate ~tile:3 ~owner:M3v_dtu.Dtu_types.invalid_act (1, !sink_rgate))
      ~ns_per_byte:10
      ~transform:(Bytes.map (fun c -> Char.chr (Char.code c + 1)))
      ()
  in
  System.boot sys;
  ignore (System.run sys);
  Alcotest.(check string) "pipeline computed 2x+1" "\003\005\007\009"
    (Bytes.to_string !result);
  check_int "stage 1 processed one block" 1 (M3v_os.Accel.processed a1)

(* --- experiment harness smoke tests (tiny instances, shape asserts) --- *)

let test_fig9_shape_smoke () =
  let trace = M3v_apps.Trace.find_trace ~dirs:2 ~files_per_dir:6 () in
  let m3v1 =
    M3v.Exp_fig9.throughput ~variant:System.M3v ~trace ~tiles:1 ~runs:2 ~warmup:1 ()
  in
  let m3v2 =
    M3v.Exp_fig9.throughput ~variant:System.M3v ~trace ~tiles:2 ~runs:2 ~warmup:1 ()
  in
  let m3x1 =
    M3v.Exp_fig9.throughput ~variant:System.M3x ~trace ~tiles:1 ~runs:2 ~warmup:1 ()
  in
  check_bool "M3v beats M3x at one tile" true (m3v1 > 1.5 *. m3x1);
  check_bool "M3v scales with tiles" true (m3v2 > 1.7 *. m3v1)

let test_fig7_shape_smoke () =
  let r = M3v.Exp_fig7.run ~runs:1 ~warmup:0 ~file_size:(512 * 1024) () in
  let get label =
    (List.find (fun b -> b.M3v.Exp_common.label = label) r.M3v.Exp_fig7.bars)
      .M3v.Exp_common.mean
  in
  check_bool "reads faster than writes (Linux)" true (get "Linux read" > get "Linux write");
  check_bool "reads faster than writes (M3v)" true
    (get "M3v read (isolated)" > get "M3v write (isolated)");
  check_bool "M3v read beats Linux read" true (get "M3v read (shared)" > get "Linux read")

let test_ablation_extent_smoke () =
  let r = M3v.Ablations.extent_size ~caps:[ 1; 64 ] () in
  match r.M3v.Ablations.rows with
  | [ small; big ] ->
      check_bool "bigger extents mean more throughput" true
        (big.M3v.Ablations.value > 2.0 *. small.M3v.Ablations.value)
  | _ -> Alcotest.fail "unexpected row count"

let test_table1_consistency_smoke () =
  let r = M3v.Exp_table1.run () in
  check_bool "virtualization overhead ~6%" true
    (r.M3v.Exp_table1.virtualization_overhead_percent > 5.0
    && r.M3v.Exp_table1.virtualization_overhead_percent < 7.5)

let suite =
  [
    ("revoke kills channel", `Quick, test_revoke_kills_channel);
    ("credit backpressure", `Quick, test_credit_backpressure);
    ("determinism", `Quick, test_determinism);
    ("nic drop injection", `Quick, test_nic_drop_injection);
    ("accelerator chain", `Quick, test_accel_chain);
    ("fig9 shape (smoke)", `Slow, test_fig9_shape_smoke);
    ("fig7 shape (smoke)", `Slow, test_fig7_shape_smoke);
    ("ablation extent (smoke)", `Slow, test_ablation_extent_smoke);
    ("table1 consistency (smoke)", `Quick, test_table1_consistency_smoke);
  ]
