(* The partitioned-parallel scheduler (lib/par/shard.ml) and everything
   it leans on: the event queue's horizon accessors, the engine's
   single-source event accounting, and the end-to-end identity contract —
   `--shards K` output equals `--shards 1` output, byte for byte, for the
   System experiments and for the genuinely partitioned Exp_shard
   workload, with checkpoints slicing windows in half. *)

module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module Event_queue = M3v_sim.Event_queue
module Shard = M3v_par.Shard
module Par = M3v_par.Par
module Exp_chaos = M3v.Exp_chaos
module Exp_shard = M3v.Exp_shard

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Event_queue horizon accessors vs a stable-sort oracle --- *)

(* Operations: push a (time, tag) or pop-min; after replaying them on the
   heap and on a sorted-list oracle, min_time_since/occupancy_below must
   agree with the oracle at every probe time. *)
let ops_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 80)
      (pair (int_bound 3) (int_bound 500) (* 0 = pop, else push at t *)))

let prop_horizon_accessors_match_oracle =
  QCheck.Test.make ~name:"min_time_since/occupancy_below match oracle"
    ~count:200 ops_gen (fun ops ->
      let q : int Event_queue.t = Event_queue.create () in
      let oracle = ref [] (* (time, seq) sorted stably on demand *) in
      let seq = ref 0 in
      List.iter
        (fun (kind, t) ->
          if kind = 0 then begin
            (* pop-min; both sides, when non-empty *)
            match Event_queue.pop q with
            | None ->
                if !oracle <> [] then
                  QCheck.Test.fail_report "heap empty, oracle non-empty"
            | Some (tm, _) ->
                (* FIFO pop = minimal time, then minimal seq at that time. *)
                let ot =
                  List.fold_left (fun acc (t, _) -> min acc t) max_int !oracle
                in
                if ot <> tm then
                  QCheck.Test.fail_reportf "pop time %d <> oracle %d" tm ot;
                let os =
                  List.fold_left
                    (fun acc (t, s) -> if t = ot then min acc s else acc)
                    max_int !oracle
                in
                oracle :=
                  List.filter (fun (t, s) -> not (t = ot && s = os)) !oracle
          end
          else begin
            Event_queue.push q ~time:t !seq;
            oracle := (t, !seq) :: !oracle;
            incr seq
          end)
        ops;
      (* Probe at every time in range plus the extremes. *)
      let probes = [ 0; 1; 100; 250; 499; 500; 501 ] in
      List.for_all
        (fun p ->
          let expect_min =
            List.fold_left
              (fun acc (t, _) ->
                if t >= p then
                  match acc with
                  | None -> Some t
                  | Some m -> Some (min m t)
                else acc)
              None !oracle
          in
          let expect_occ =
            List.length (List.filter (fun (t, _) -> t <= p) !oracle)
          in
          Event_queue.min_time_since q ~time:p = expect_min
          && Event_queue.occupancy_below q ~time:p = expect_occ)
        probes)

let test_horizon_accessors_empty () =
  let q : unit Event_queue.t = Event_queue.create () in
  check_bool "min_time_since on empty" true
    (Event_queue.min_time_since q ~time:0 = None);
  check_int "occupancy_below on empty" 0 (Event_queue.occupancy_below q ~time:max_int)

(* --- Engine.run single-source accounting (observer-enqueue-at-until) --- *)

let test_engine_counts_mid_run_enqueues_once () =
  (* A handler that fires at exactly [until] and enqueues more work at
     [until]: the run must process it in the same call and count it
     exactly once (the return value is the delta of events_processed). *)
  let e = Engine.create () in
  let fired = ref 0 in
  let rec chain depth () =
    incr fired;
    if depth > 0 then Engine.at e ~time:100 (chain (depth - 1))
  in
  Engine.at e ~time:50 (fun () -> incr fired);
  Engine.at e ~time:100 (chain 3);
  let n = Engine.run ~until:100 e in
  check_int "all events fired" 5 !fired;
  check_int "return counts chained work exactly once" 5 n;
  check_int "nothing pending" 0 (Engine.pending e);
  check_int "clock at until" 100 (Engine.now e)

let test_engine_observer_enqueue_at_until () =
  (* The dispatch-loop observer fires every 1024 processed events; have it
     enqueue one extra event at exactly [until].  Total counted over the
     run must equal total handler firings — no double count, no loss. *)
  let e = Engine.create () in
  let fired = ref 0 in
  let extras = ref 0 in
  for i = 1 to 1500 do
    Engine.at e ~time:i (fun () -> incr fired)
  done;
  Engine.set_observer e
    (Some
       (fun _now _pending ->
         if !extras < 2 then begin
           incr extras;
           Engine.at e ~time:2000 (fun () -> incr fired)
         end));
  let n = Engine.run ~until:2000 e in
  Engine.set_observer e None;
  check_bool "observer fired" true (!extras >= 1);
  check_int "every handler fired" (1500 + !extras) !fired;
  check_int "return = firings" (1500 + !extras) n;
  check_int "nothing pending" 0 (Engine.pending e);
  check_int "clock at until" 2000 (Engine.now e)

let test_engine_counts_across_max_events_cuts () =
  (* Slicing one logical run with max_events must conserve the count:
     the per-call returns sum to the total processed. *)
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 100 do
    Engine.at e ~time:i (fun () -> incr fired)
  done;
  let total = ref 0 in
  let rec drain () =
    let n = Engine.run ~until:100 ~max_events:7 e in
    total := !total + n;
    if n > 0 then drain ()
  in
  drain ();
  check_int "all fired" 100 !fired;
  check_int "slice counts sum to total" 100 !total;
  check_int "processed ledger agrees" 100 (Engine.events_processed e)

(* --- Shard scheduler unit tests --- *)

let test_shard_create_validates () =
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Shard.create: shards < 1") (fun () ->
      ignore (Shard.create ~lookahead:10 ~shards:0 ()));
  Alcotest.check_raises "lookahead < 1"
    (Invalid_argument "Shard.create: lookahead < 1") (fun () ->
      ignore (Shard.create ~lookahead:0 ~shards:2 ()))

let test_shard_send_validates_lookahead () =
  let g : unit Shard.t = Shard.create ~lookahead:100 ~shards:2 () in
  Shard.set_handler g (fun ~dst:_ ~time:_ () -> ());
  (* Delivery closer than [lookahead] from the source clock (0) violates
     the conservative contract and must be rejected loudly. *)
  check_bool "undercutting send raises" true
    (match Shard.send g ~src:0 ~dst:1 ~time:99 () with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* At exactly now + lookahead it is legal. *)
  Shard.send g ~src:0 ~dst:1 ~time:100 ()

let test_shard_same_shard_send_synchronous () =
  let g : int Shard.t = Shard.create ~lookahead:1_000 ~shards:2 () in
  let got = ref [] in
  Shard.set_handler g (fun ~dst ~time m -> got := (dst, time, m) :: !got);
  (* Same-shard: synchronous, no lookahead constraint, no buffering. *)
  Shard.send g ~src:1 ~dst:1 ~time:5 42;
  check_bool "delivered synchronously" true (!got = [ (1, 5, 42) ])

let test_shard_k1_equals_plain_engine () =
  (* A K=1 group is a plain engine with window bookkeeping: same event
     order, same count, same clock. *)
  let plain = Engine.create () in
  let g : unit Shard.t = Shard.create ~lookahead:10 ~shards:1 () in
  let order_p = ref [] and order_s = ref [] in
  let schedule eng order =
    List.iter
      (fun (t, tag) -> Engine.at eng ~time:t (fun () -> order := tag :: !order))
      [ (30, 'c'); (10, 'a'); (20, 'b'); (10, 'd'); (40, 'e') ]
  in
  schedule plain order_p;
  schedule (Shard.engine g 0) order_s;
  let np = Engine.run ~until:35 plain in
  let ns = Shard.run ~until:35 g in
  check_int "same count" np ns;
  check_bool "same order" true (!order_p = !order_s);
  check_int "same clock" (Engine.now plain) (Engine.now (Shard.engine g 0));
  check_int "same pending" (Engine.pending plain)
    (Engine.pending (Shard.engine g 0))

let test_shard_until_jumps_all_clocks () =
  let g : unit Shard.t = Shard.create ~lookahead:10 ~shards:3 () in
  Engine.at (Shard.engine g 1) ~time:50 (fun () -> ());
  let n = Shard.run ~until:200 g in
  check_int "one event ran" 1 n;
  for i = 0 to 2 do
    check_int
      (Printf.sprintf "shard %d clock at until" i)
      200
      (Engine.now (Shard.engine g i))
  done

let test_shard_all_empty_terminates () =
  let g : unit Shard.t = Shard.create ~lookahead:10 ~shards:4 () in
  check_int "empty run returns 0" 0 (Shard.run g);
  check_int "empty bounded run returns 0" 0 (Shard.run ~until:100 g)

let test_shard_cross_shard_flush_order () =
  (* Messages with equal delivery time flush in (birth, src, seq) order,
     regardless of send order across shards. *)
  let g : string Shard.t = Shard.create ~lookahead:100 ~shards:3 () in
  let got = ref [] in
  Shard.set_handler g (fun ~dst:_ ~time:_ m -> got := m :: !got);
  (* All born at time 0, all delivered at 100. Send in scrambled shard
     order; expect src-then-seq order after the flush. *)
  Shard.send g ~src:2 ~dst:0 ~time:100 "s2a";
  Shard.send g ~src:0 ~dst:1 ~time:100 "s0a";
  Shard.send g ~src:1 ~dst:2 ~time:100 "s1a";
  Shard.send g ~src:0 ~dst:2 ~time:100 "s0b";
  ignore (Shard.run ~until:100 g);
  check_bool "flush sorted by (src, seq)" true
    (List.rev !got = [ "s0a"; "s0b"; "s1a"; "s2a" ])

let test_shard_ping_pong_deterministic () =
  (* Two shards ping-ponging a counter: run once monolithically, once in
     single-window steps — identical totals and final clocks. *)
  let build () =
    let g : int Shard.t = Shard.create ~lookahead:10 ~shards:2 () in
    let log = ref [] in
    Shard.set_handler g (fun ~dst ~time m ->
        Engine.at (Shard.engine g dst) ~time (fun () ->
            log := (dst, time, m) :: !log;
            if m < 20 then
              Shard.send g ~src:dst ~dst:(1 - dst) ~time:(time + 10) (m + 1)));
    Shard.send g ~src:0 ~dst:1 ~time:10 0;
    (g, log)
  in
  let g1, log1 = build () in
  let n1 = Shard.run g1 in
  let g2, log2 = build () in
  let total = ref 0 in
  let rec stepper () =
    match Shard.step g2 with
    | `Events n ->
        total := !total + n;
        stepper ()
    | `Idle -> ()
  in
  stepper ();
  check_int "21 deliveries" 21 (List.length !log1);
  check_bool "stepped == monolithic" true (!log1 = !log2);
  check_int "same event count" n1 !total

(* --- Exp_shard: sharded == sequential across K, seeds and jobs --- *)

let test_exp_shard_identity_small () =
  List.iter
    (fun shards ->
      List.iter
        (fun seed ->
          let p =
            Exp_shard.run_point ~progress:false ~pool:Par.Pool.sequential
              ~tiles:32 ~shards ~chains_per_tile:2 ~hops:12 ~weight:16 ~seed ()
          in
          check_bool
            (Printf.sprintf "identical (shards=%d seed=%d)" shards seed)
            true p.Exp_shard.p_match)
        [ 1; 2 ])
    [ 1; 2; 4 ]

let test_exp_shard_identity_jobs () =
  (* The same point under a real 4-domain pool must also match — and
     match the sequential-pool run's checksum. *)
  let point pool =
    Exp_shard.run_point ~progress:false ~pool ~tiles:64 ~shards:4
      ~chains_per_tile:2 ~hops:16 ~weight:32 ~seed:3 ()
  in
  let seq = point Par.Pool.sequential in
  let par =
    Par.Pool.with_pool ~jobs:4 (fun pool -> point pool)
  in
  check_bool "jobs=1 identical" true seq.Exp_shard.p_match;
  check_bool "jobs=4 identical" true par.Exp_shard.p_match;
  check_int "checksum invariant across pools" seq.Exp_shard.p_checksum
    par.Exp_shard.p_checksum;
  check_int "event count invariant across pools" seq.Exp_shard.p_events
    par.Exp_shard.p_events

(* --- System experiments: --shards 4 == unsharded, in process --- *)

let test_fig9_sharded_equals_unsharded () =
  let trace = M3v_apps.Trace.find_trace ~dirs:2 ~files_per_dir:6 () in
  let run ?shards () =
    M3v.Exp_fig9.throughput ?shards ~variant:M3v.System.M3v ~trace ~tiles:2
      ~runs:1 ~warmup:0 ()
  in
  check_bool "fig9 tiny: shards 4 == unsharded" true
    (run ~shards:4 () = run ())

let test_chaos_sharded_equals_unsharded () =
  let base = Exp_chaos.run ~seed:7 ~fs_rounds:2 ~kv_ops:40 () in
  let sharded = Exp_chaos.run ~shards:4 ~seed:7 ~fs_rounds:2 ~kv_ops:40 () in
  check_bool "chaos: shards 4 == unsharded" true (base = sharded)

(* --- Checkpoint matrix: suspend/resume a sharded run mid-window --- *)

let round_trip ?shards ~seed () =
  let file = Filename.temp_file "m3v_shard_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      match
        Exp_chaos.run_checkpointed ?shards ~seed ~every:(Time.ms 16) ~file
          ~stop_after:1 ()
      with
      | Exp_chaos.Completed r -> r
      | Exp_chaos.Suspended _ -> (
          match Exp_chaos.resume ~file () with
          | Ok (Exp_chaos.Completed r) -> r
          | Ok (Exp_chaos.Suspended _) ->
              Alcotest.fail "resume suspended without stop_after"
          | Error msg -> Alcotest.failf "resume failed: %s" msg))

let test_sharded_checkpoint_roundtrip () =
  (* The full matrix on one seed: uninterrupted unsharded, uninterrupted
     sharded, and a sharded suspend/resume (the resume rebuilds the shard
     group from the checkpoint file) — all three identical. *)
  let base = Exp_chaos.run ~seed:7 () in
  let sharded = Exp_chaos.run ~shards:4 ~seed:7 () in
  let resumed = round_trip ~shards:4 ~seed:7 () in
  check_bool "sharded == unsharded" true (sharded = base);
  check_bool "sharded resume == uninterrupted" true (resumed = base)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "event queue: horizon accessors on empty" `Quick
      test_horizon_accessors_empty;
    Alcotest.test_case "engine: mid-run enqueue at until counted once" `Quick
      test_engine_counts_mid_run_enqueues_once;
    Alcotest.test_case "engine: observer enqueue at until counted once" `Quick
      test_engine_observer_enqueue_at_until;
    Alcotest.test_case "engine: counts conserved across max_events cuts" `Quick
      test_engine_counts_across_max_events_cuts;
    Alcotest.test_case "shard: create validates arguments" `Quick
      test_shard_create_validates;
    Alcotest.test_case "shard: send enforces lookahead" `Quick
      test_shard_send_validates_lookahead;
    Alcotest.test_case "shard: same-shard send is synchronous" `Quick
      test_shard_same_shard_send_synchronous;
    Alcotest.test_case "shard: K=1 equals a plain engine" `Quick
      test_shard_k1_equals_plain_engine;
    Alcotest.test_case "shard: until jumps every shard clock" `Quick
      test_shard_until_jumps_all_clocks;
    Alcotest.test_case "shard: all-empty group terminates" `Quick
      test_shard_all_empty_terminates;
    Alcotest.test_case "shard: flush orders by (time, birth, src, seq)" `Quick
      test_shard_cross_shard_flush_order;
    Alcotest.test_case "shard: stepped run == monolithic run" `Quick
      test_shard_ping_pong_deterministic;
    Alcotest.test_case "exp_shard: sharded == sequential (K x seeds)" `Quick
      test_exp_shard_identity_small;
    Alcotest.test_case "exp_shard: identity holds on a 4-domain pool" `Slow
      test_exp_shard_identity_jobs;
    Alcotest.test_case "fig9 tiny: shards 4 == unsharded" `Quick
      test_fig9_sharded_equals_unsharded;
    Alcotest.test_case "chaos: shards 4 == unsharded" `Slow
      test_chaos_sharded_equals_unsharded;
    Alcotest.test_case "chaos: sharded checkpoint resume == uninterrupted"
      `Slow test_sharded_checkpoint_roundtrip;
  ]
  @ qsuite [ prop_horizon_accessors_match_oracle ]
