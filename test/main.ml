let () =
  Alcotest.run "m3v"
    [
      ("sim", Test_sim.suite);
      ("noc", Test_noc.suite);
      ("dtu", Test_dtu.suite);
      ("tile", Test_tile.suite);
      ("kernel", Test_kernel.suite);
      ("mux", Test_mux.suite);
      ("os", Test_os.suite);
      ("apps", Test_apps.suite);
      ("linux", Test_linux.suite);
      ("area", Test_area.suite);
      ("integration", Test_integration.suite);
      ("syscalls", Test_syscalls.suite);
      ("props", Test_props.suite);
      ("fault", Test_fault.suite);
      ("par", Test_par.suite);
      ("migrate", Test_migrate.suite);
      ("obs", Test_obs.suite);
      ("load", Test_load.suite);
      ("shard", Test_shard.suite);
      ("telemetry", Test_telemetry.suite);
    ]
