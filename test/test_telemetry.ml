(* Per-window shard telemetry (lib/par/telemetry.ml): transparency —
   enabling it never changes experiment results across shard and job
   counts — plus exact event conservation against the engines' processed
   ledgers (through max_events cuts and a mid-run checkpoint slice),
   limiter-attribution and critical-path invariants, Chrome-lane
   well-formedness, and the process-global collector's semantics. *)

module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module Shard = M3v_par.Shard
module Telemetry = M3v_par.Telemetry
module Par = M3v_par.Par
module Exp_shard = M3v.Exp_shard
module J = M3v_bench_io.Bench_io

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Transparency: telemetry on == telemetry off, shards x jobs --- *)

(* The experiment stream's byte-identity is diffed in CI; here the same
   contract at the result level: every simulated field of a sweep point
   is unchanged by telemetry, for every (shards, jobs) combination. *)
let prop_telemetry_transparent =
  QCheck.Test.make ~name:"telemetry on == off (shards x jobs x seed)"
    ~count:10
    QCheck.(triple (oneofl [ 1; 2; 4 ]) (oneofl [ 1; 4 ]) (int_range 1 1000))
    (fun (shards, jobs, seed) ->
      let point ~telemetry pool =
        Exp_shard.run_point ~progress:false ~telemetry ~pool ~tiles:32 ~shards
          ~chains_per_tile:2 ~hops:8 ~weight:16 ~seed ()
      in
      let run ~telemetry =
        if jobs = 1 then point ~telemetry Par.Pool.sequential
        else Par.Pool.with_pool ~jobs (fun pool -> point ~telemetry pool)
      in
      let off = run ~telemetry:false in
      let on = run ~telemetry:true in
      off.Exp_shard.p_makespan = on.Exp_shard.p_makespan
      && off.Exp_shard.p_checksum = on.Exp_shard.p_checksum
      && off.Exp_shard.p_events = on.Exp_shard.p_events
      && off.Exp_shard.p_match && on.Exp_shard.p_match)

(* --- Conservation: telemetry counts == engine ledgers, exactly --- *)

(* Two shards ping-ponging a counter with telemetry enabled; the group
   is self-contained so it can also be marshalled mid-run. *)
let build_pingpong () =
  let g : int Shard.t = Shard.create ~lookahead:10 ~shards:2 () in
  let tm = Shard.enable_telemetry g in
  Shard.set_handler g (fun ~dst ~time m ->
      Engine.at (Shard.engine g dst) ~time (fun () ->
          if m < 40 then
            Shard.send g ~src:dst ~dst:(1 - dst) ~time:(time + 10) (m + 1)));
  Shard.send g ~src:0 ~dst:1 ~time:10 0;
  (g, tm)

let processed g =
  let s = ref 0 in
  for i = 0 to Shard.shards g - 1 do
    s := !s + Engine.events_processed (Shard.engine g i)
  done;
  !s

let test_event_counts_conserved_across_cuts () =
  (* Step with a per-shard max_events cap: every step's telemetry delta
     must equal both the step's return value and the engines' processed
     ledger delta — no window lost, none double-counted. *)
  let g, tm = build_pingpong () in
  let rec drain total =
    let led0 = processed g in
    let tel0 = Telemetry.events tm in
    match Shard.step ~max_events:3 g with
    | `Events n ->
        check_int "step return = ledger delta" (processed g - led0) n;
        check_int "telemetry delta = step return" n (Telemetry.events tm - tel0);
        drain (total + n)
    | `Idle -> total
  in
  let total = drain 0 in
  check_bool "workload ran" true (total > 0);
  check_int "telemetry total = events processed" (processed g)
    (Telemetry.events tm);
  check_int "stepped total agrees" total (Telemetry.events tm)

let test_checkpoint_slice_conserves_telemetry () =
  (* The telemetry rides inside the group through Marshal-with-closures:
     a run sliced by a mid-run checkpoint ends with the same totals and
     window structure as an uninterrupted one. *)
  let g_ref, tm_ref = build_pingpong () in
  let n_ref = Shard.run g_ref in
  let g, _ = build_pingpong () in
  let before = ref 0 in
  for _ = 1 to 4 do
    match Shard.step g with
    | `Events n -> before := !before + n
    | `Idle -> ()
  done;
  let bytes = Marshal.to_bytes g [ Marshal.Closures ] in
  let g' : int Shard.t = Marshal.from_bytes bytes 0 in
  let tm' =
    match Shard.telemetry g' with
    | Some t -> t
    | None -> Alcotest.fail "telemetry lost in marshal round-trip"
  in
  let n' = Shard.run g' in
  check_int "sliced event total = uninterrupted" n_ref (!before + n');
  check_int "telemetry total survives the slice" (Telemetry.events tm_ref)
    (Telemetry.events tm');
  check_int "window count survives the slice" (Telemetry.windows tm_ref)
    (Telemetry.windows tm')

(* --- Analyzer invariants on a real partitioned workload --- *)

let test_report_invariants () =
  let r =
    Exp_shard.report ~tiles:32 ~shards:4 ~chains_per_tile:2 ~hops:8 ~weight:16
      ~seed:1 ()
  in
  let tm = r.Exp_shard.rep_telemetry in
  let k = Telemetry.shards tm in
  check_int "telemetry shards = effective shards" r.Exp_shard.rep_shards k;
  check_int "telemetry events = run events"
    r.Exp_shard.rep_result.Exp_shard.r_events (Telemetry.events tm);
  check_int "telemetry windows = scheduler windows"
    r.Exp_shard.rep_result.Exp_shard.r_stats.Shard.windows
    (Telemetry.windows tm);
  check_int "merged messages = scheduler routed"
    r.Exp_shard.rep_result.Exp_shard.r_stats.Shard.messages_routed
    (Telemetry.merged tm);
  (* Per-shard decomposition sums back to the totals. *)
  check_int "per-shard events sum to total" (Telemetry.events tm)
    (Array.fold_left ( + ) 0 (Telemetry.shard_events tm));
  (* Every busy-shard window is attributed to exactly one limiter. *)
  let busy = Array.fold_left ( + ) 0 (Telemetry.shard_busy tm) in
  let attributed =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Telemetry.limiter_counts tm)
  in
  check_int "limiter attribution covers every busy slot" busy attributed;
  (* Critical path: max >= mean per window, so crit is sandwiched. *)
  let ev = Telemetry.events tm and crit = Telemetry.crit_events tm in
  check_bool "crit_events <= events" true (crit <= ev);
  check_bool "crit_events >= events/K" true (crit * k >= ev);
  let bound = Telemetry.speedup_bound tm in
  check_bool "1 <= speedup bound <= K" true
    (bound >= 1.0 && bound <= float_of_int k);
  check_bool "imbalance histogram bounded by windows" true
    (M3v_sim.Stats.Histogram.count (Telemetry.imbalance tm)
    <= Telemetry.windows tm);
  (* Nothing dropped at this size: retained records decompose the run. *)
  check_int "no windows dropped" 0 (Telemetry.dropped_windows tm);
  let recent = Telemetry.recent tm in
  check_int "one record per window" (Telemetry.windows tm)
    (List.length recent);
  check_int "records sum to event total" ev
    (List.fold_left
       (fun acc w -> acc + Array.fold_left ( + ) 0 w.Telemetry.w_events)
       0 recent);
  (* The analyzer prints its tables for this data. *)
  let text = Format.asprintf "%a" Telemetry.pp tm in
  let contains needle =
    let n = String.length needle and l = String.length text in
    let rec at i = i + n <= l && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "report mentions %S" needle) true
        (contains needle))
    [ "limiter attribution"; "imbalance"; "critical path" ]

(* --- Chrome lanes --- *)

let test_chrome_lanes_well_formed () =
  let g, tm = build_pingpong () in
  ignore (Shard.run g);
  let sink = Telemetry.to_sink tm in
  let buf = M3v_obs.Chrome.to_buffer sink in
  match J.parse_json (Buffer.contents buf) with
  | J.J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (J.J_arr evs) ->
          check_bool "lane events present" true (List.length evs > 0);
          (* Every event is an object with a phase. *)
          List.iter
            (fun ev ->
              match ev with
              | J.J_obj f ->
                  check_bool "event has ph" true (List.mem_assoc "ph" f)
              | _ -> Alcotest.fail "trace event is not an object")
            evs
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "chrome export is not a JSON object"

(* --- Merging and the collector --- *)

let test_merge_groups_by_shard_count () =
  let run_one () =
    let g, tm = build_pingpong () in
    ignore (Shard.run g);
    tm
  in
  let a = run_one () and b = run_one () in
  let merged = Telemetry.merge_groups [ a; b ] in
  check_int "one group per shard count" 1 (List.length merged);
  let m = List.hd merged in
  check_int "merged windows sum" (Telemetry.windows a + Telemetry.windows b)
    (Telemetry.windows m);
  check_int "merged events sum" (Telemetry.events a + Telemetry.events b)
    (Telemetry.events m)

let test_collector_registers_multi_shard_only () =
  Telemetry.start_collecting ();
  check_bool "collection open" true (Telemetry.collecting ());
  let g1 : unit Shard.t = Shard.create ~lookahead:10 ~shards:1 () in
  let g2 : unit Shard.t = Shard.create ~lookahead:10 ~shards:2 () in
  let g4 : unit Shard.t = Shard.create ~lookahead:10 ~shards:4 () in
  check_bool "K=1 reference group skipped" true
    (Option.is_none (Shard.telemetry g1));
  check_bool "K=2 group auto-enabled" true
    (Option.is_some (Shard.telemetry g2));
  let drained = Telemetry.stop_collecting () in
  check_bool "collection closed" false (Telemetry.collecting ());
  check_int "both multi-shard groups drained" 2 (List.length drained);
  (match (drained, Shard.telemetry g2, Shard.telemetry g4) with
  | [ a; b ], Some t2, Some t4 ->
      check_bool "drained in registration order" true (a == t2 && b == t4)
  | _ -> Alcotest.fail "collector drained unexpected contents");
  check_int "second drain is empty" 0
    (List.length (Telemetry.stop_collecting ()));
  (* Outside a collection, create leaves telemetry off. *)
  let g : unit Shard.t = Shard.create ~lookahead:10 ~shards:2 () in
  check_bool "no auto-enable outside a collection" true
    (Option.is_none (Shard.telemetry g))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "conservation: step deltas == engine ledgers" `Quick
      test_event_counts_conserved_across_cuts;
    Alcotest.test_case "conservation: checkpoint slice == uninterrupted"
      `Quick test_checkpoint_slice_conserves_telemetry;
    Alcotest.test_case "analyzer invariants on a partitioned workload" `Quick
      test_report_invariants;
    Alcotest.test_case "chrome lanes are well-formed JSON" `Quick
      test_chrome_lanes_well_formed;
    Alcotest.test_case "merge_groups sums per shard count" `Quick
      test_merge_groups_by_shard_count;
    Alcotest.test_case "collector: multi-shard groups only, drained in order"
      `Quick test_collector_registers_multi_shard_only;
  ]
  @ qsuite [ prop_telemetry_transparent ]
