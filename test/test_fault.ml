(* Fault-injection and recovery tests: the chaos layer's own API (parse,
   gating, budgets), DTU retransmit/dedup under lossy NoC plans, credit
   conservation with faults enabled, controller crash handling (exit
   codes, teardown, watchdog-driven restarts), and end-to-end determinism
   of the chaos-soak experiment. *)

open M3v_sim
open M3v_sim.Proc.Syntax
module Dtu = M3v_dtu.Dtu
module Dtu_types = M3v_dtu.Dtu_types
module Ep = M3v_dtu.Ep
module Msg = M3v_dtu.Msg
module Fault = M3v_fault.Fault
module A = M3v_mux.Act_api
module Controller = M3v_kernel.Controller
module System = M3v.System
module Exp_chaos = M3v.Exp_chaos
module Trace = M3v_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt_int = Alcotest.(check (option int))

type Msg.data += P of int

(* --- Rng: bounded ints are in range and roughly uniform --- *)

let test_rng_bounds_uniform () =
  let rng = Rng.create ~seed:42 in
  let n = 5 in
  let draws = 50_000 in
  let buckets = Array.make n 0 in
  for _ = 1 to draws do
    let v = Rng.int rng n in
    check_bool "in range" true (v >= 0 && v < n);
    buckets.(v) <- buckets.(v) + 1
  done;
  (* A modulo-biased generator over a power-of-two state skews the small
     residues; with rejection sampling every bucket sits near draws/n. *)
  let expect = draws / n in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expect) < expect / 5))
    buckets;
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng 10 20 in
    check_bool "int_in range" true (v >= 10 && v <= 20)
  done

(* --- fault spec parsing --- *)

let test_parse_spec () =
  (match Fault.parse "drop=0.01,dup=0.005,crash=2" with
  | Ok s ->
      check_bool "drop" true (s.Fault.drop = 0.01);
      check_bool "dup" true (s.Fault.dup = 0.005);
      check_int "crash" 2 s.Fault.crash;
      check_int "hang" 0 s.Fault.hang
  | Error e -> Alcotest.fail e);
  (match Fault.parse "" with
  | Ok s -> check_bool "empty spec is none" true (s = Fault.none)
  | Error e -> Alcotest.fail e);
  let bad s =
    match Fault.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S must be rejected" s
  in
  bad "drop=abc";
  bad "bogus=1";
  bad "drop";
  bad "drop=-0.5";
  bad "crash=1.5"

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"fault spec survives print/parse round trip"
    ~count:200
    QCheck.(
      quad (int_bound 100) (int_bound 100) (int_bound 100)
        (pair (int_bound 4) (int_bound 4)))
    (fun (d, u, dl, (c, h)) ->
      let spec =
        {
          Fault.none with
          drop = float_of_int d /. 100.;
          dup = float_of_int u /. 100.;
          delay = float_of_int dl /. 100.;
          crash = c;
          hang = h;
        }
      in
      match Fault.parse (Fault.spec_to_string spec) with
      | Ok s -> s = spec
      | Error _ -> false)

(* --- gating: without a plan every hook is inert --- *)

let test_no_plan_is_inert () =
  Fault.uninstall ();
  check_bool "off" false (Fault.on ());
  check_bool "deliver" true (Fault.noc_fate ~now:0 ~src:0 ~dst:1 = Fault.Deliver);
  check_bool "no cmd glitch" false (Fault.cmd_fails ~now:0 ~tile:1);
  check_bool "no act fate" true (Fault.act_fate ~now:0 ~tile:1 ~act:5 = None)

(* --- crash/hang budgets and protection --- *)

let test_protect_and_budget () =
  let plan =
    Fault.create ~seed:3
      { Fault.none with crash = 1; crash_p = 1.0; hang = 1; hang_p = 1.0 }
  in
  Fault.protect plan ~act:5;
  Fault.with_plan plan (fun () ->
      check_bool "protected act exempt" true
        (Fault.act_fate ~now:0 ~tile:1 ~act:5 = None);
      check_bool "first fate is crash" true
        (Fault.act_fate ~now:0 ~tile:1 ~act:6 = Some Fault.Crash);
      check_bool "then hang" true
        (Fault.act_fate ~now:0 ~tile:1 ~act:6 = Some Fault.Hang);
      check_bool "budgets exhausted" true
        (Fault.act_fate ~now:0 ~tile:1 ~act:6 = None);
      let s = Fault.stats plan in
      check_int "one crash counted" 1 s.Fault.crashes_injected;
      check_int "one hang counted" 1 s.Fault.hangs_injected)

(* --- two-DTU harness (as in test_props) --- *)

let make_link ~credits =
  let eng = Engine.create () in
  let topo = M3v_noc.Topology.star_mesh_2x2 ~tiles:2 in
  let noc = M3v_noc.Noc.create eng topo in
  let d0 = Dtu.create ~virtualized:true ~tile:0 eng noc in
  let d1 = Dtu.create ~virtualized:true ~tile:1 eng noc in
  let lookup_dtu = function 0 -> Some d0 | 1 -> Some d1 | _ -> None in
  let lookup_mem = fun _ -> None in
  Dtu.connect d0 ~lookup_dtu ~lookup_mem;
  Dtu.connect d1 ~lookup_dtu ~lookup_mem;
  Dtu.ext_config d1 ~ep:1 ~owner:7
    (Ep.recv_config ~slots:credits ~slot_size:128 ());
  Dtu.ext_config d0 ~ep:1 ~owner:5
    (Ep.send_config ~dst_tile:1 ~dst_ep:1 ~max_msg_size:64 ~credits ());
  ignore (Dtu.switch_act d0 ~next:5);
  ignore (Dtu.switch_act d1 ~next:7);
  (eng, d0, d1)

let send_credits d =
  match (Dtu.ext_read_ep d ~ep:1).Ep.cfg with
  | Ep.Send s -> s.Ep.credits
  | _ -> -1

let recv_occupied d =
  match (Dtu.ext_read_ep d ~ep:1).Ep.cfg with
  | Ep.Recv r -> r.Ep.occupied
  | _ -> -1

(* A message facing certain loss exhausts its retransmit budget, reports
   [Timeout] and refunds the credit (the control sideband is lossless, so
   an unacknowledged send was provably never consumed). *)
let test_drop_timeout_refunds_credit () =
  let plan = Fault.create ~seed:1 { Fault.none with drop = 1.0 } in
  Fault.with_plan plan (fun () ->
      let eng, d0, d1 = make_link ~credits:3 in
      let result = ref None in
      Dtu.send d0 ~ep:1 ~msg_size:16 (P 0) ~k:(fun r -> result := Some r);
      ignore (Engine.run eng);
      (match !result with
      | Some (Error Dtu_types.Timeout) -> ()
      | Some (Ok ()) -> Alcotest.fail "send succeeded under drop=1.0"
      | Some (Error e) ->
          Alcotest.failf "wrong error: %s" (Dtu_types.error_to_string e)
      | None -> Alcotest.fail "send never completed");
      let s = Dtu.stats d0 in
      check_int "one final timeout" 1 s.Dtu.timeouts;
      check_bool "retransmits attempted" true (s.Dtu.retries > 0);
      check_int "credit refunded" 3 (send_credits d0);
      check_int "no slot occupied" 0 (recv_occupied d1))

(* Under partial loss and duplication every payload the sender saw
   acknowledged arrives exactly once: retransmission recovers drops and
   receive-side dedup swallows duplicate copies. *)
let test_retransmit_exactly_once () =
  let plan = Fault.create ~seed:42 { Fault.none with drop = 0.25; dup = 0.25 } in
  Fault.with_plan plan (fun () ->
      let eng, d0, d1 = make_link ~credits:3 in
      let sent_ok = ref [] and received = ref [] in
      for i = 0 to 29 do
        Dtu.send d0 ~ep:1 ~msg_size:16 (P i) ~k:(fun r ->
            if r = Ok () then sent_ok := i :: !sent_ok);
        ignore (Engine.run eng);
        let rec drain () =
          match Dtu.fetch d1 ~ep:1 with
          | Ok (Some msg) ->
              (match msg.Msg.data with
              | P j -> received := j :: !received
              | _ -> Alcotest.fail "unexpected payload");
              ignore (Dtu.ack d1 ~ep:1 msg);
              drain ()
          | Ok None | Error _ -> ()
        in
        drain ();
        ignore (Engine.run eng)
      done;
      let sent_ok = List.sort compare !sent_ok in
      let received = List.sort compare !received in
      check_bool "each acked payload delivered exactly once" true
        (sent_ok = received);
      check_int "credits conserved at quiescence" 3
        (send_credits d0 + recv_occupied d1);
      let s0 = Dtu.stats d0 and s1 = Dtu.stats d1 in
      check_bool "drops forced retransmissions" true (s0.Dtu.retries > 0);
      check_bool "duplicates were deduplicated" true (s1.Dtu.dup_drops > 0))

(* Credit conservation (test_props invariant) must survive arbitrary
   fault plans: drops refund on final timeout, duplicates never mint a
   second slot, delays only move deliveries. *)
let prop_faulty_credit_conservation =
  QCheck.Test.make ~name:"credits conserved under random fault plans"
    ~count:30
    QCheck.(
      pair
        (pair small_int (pair (int_bound 30) (int_bound 30)))
        (list_of_size (Gen.int_range 1 50) (int_bound 2)))
    (fun ((seed, (drop100, dup100)), script) ->
      let spec =
        {
          Fault.none with
          drop = float_of_int drop100 /. 100.;
          dup = float_of_int dup100 /. 100.;
          delay = 0.05;
          cmd_fail = 0.02;
        }
      in
      let plan = Fault.create ~seed:(seed + 1) spec in
      Fault.with_plan plan (fun () ->
          let credits = 3 in
          let eng, d0, d1 = make_link ~credits in
          let fetched = Queue.create () in
          let ok = ref true in
          List.iter
            (fun op ->
              (match op with
              | 0 -> Dtu.send d0 ~ep:1 ~msg_size:16 (P 0) ~k:(fun _ -> ())
              | 1 -> (
                  match Dtu.fetch d1 ~ep:1 with
                  | Ok (Some msg) -> Queue.add msg fetched
                  | Ok None | Error _ -> ())
              | _ -> (
                  match Queue.take_opt fetched with
                  | Some msg -> ignore (Dtu.ack d1 ~ep:1 msg)
                  | None -> ()));
              ignore (Engine.run eng);
              if send_credits d0 + recv_occupied d1 <> credits then ok := false)
            script;
          !ok))

(* --- controller: exit codes, crash teardown, watchdog restarts --- *)

let test_exit_code_propagation () =
  let sys = System.create ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let aid, _ =
    System.spawn sys ~tile:1 ~name:"fails" (fun _ ->
        let* () = A.compute 1_000 in
        A.exit_with 3)
  in
  System.boot sys;
  ignore (System.run sys);
  check_opt_int "exit code propagated" (Some 3) (Controller.exit_code ctrl aid);
  check_int "nonzero exit counted as crash" 1
    (Controller.stats ctrl).Controller.crashes

let test_crash_teardown_clears_ep_owners () =
  let sys = System.create ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let peer, _ = System.spawn sys ~tile:2 ~name:"peer" (fun _ -> Proc.return ()) in
  let victim, _ =
    System.spawn sys ~tile:1 ~name:"victim" (fun _ ->
        let* () = A.compute 1_000 in
        A.exit_with 5)
  in
  let ch = System.channel sys ~src:victim ~dst:peer () in
  check_opt_int "victim owns its reply ep" (Some victim)
    (Controller.ep_owner ctrl ~tile:1 ~ep:ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  check_opt_int "crash exit recorded" (Some 5) (Controller.exit_code ctrl victim);
  check_opt_int "reply ep no longer owned after teardown" None
    (Controller.ep_owner ctrl ~tile:1 ~ep:ch.System.reply_ep);
  check_opt_int "peer's receive ep untouched" (Some peer)
    (Controller.ep_owner ctrl ~tile:2 ~ep:ch.System.rgate)

(* An injected hang freezes the activity mid-run; the TileMux watchdog
   must kill it (code 137) and the controller restart it in place, after
   which the fresh incarnation runs to completion. *)
let test_watchdog_kills_and_restarts_hung_act () =
  let plan = Fault.create ~seed:5 { Fault.none with hang = 1; hang_p = 1.0 } in
  Fault.with_plan plan (fun () ->
      let sys = System.create ~variant:System.M3v () in
      let ctrl = System.controller sys in
      let finished = ref 0 in
      let victim, _ =
        System.spawn sys ~tile:1 ~name:"victim" (fun _ ->
            let* () = A.compute 10_000 in
            let* () = A.compute 10_000 in
            incr finished;
            Proc.return ())
      in
      Controller.set_restartable ctrl ~act:victim ~max_restarts:2;
      System.boot sys;
      ignore (System.run sys);
      check_int "hang injected" 1 (Fault.stats plan).Fault.hangs_injected;
      check_int "watchdog triggered one restart" 1
        (Controller.restarts ctrl victim);
      check_int "restarted incarnation completed" 1 !finished)

(* --- end-to-end determinism: same spec + seed => identical runs --- *)

let run_chaos_traced () =
  let sink = Trace.make () in
  let r =
    Trace.with_sink sink (fun () ->
        Exp_chaos.run ~seed:11 ~fs_rounds:2 ~kv_ops:25 ())
  in
  (r, Buffer.contents (M3v_obs.Chrome.to_buffer sink))

let test_chaos_deterministic () =
  let r1, t1 = run_chaos_traced () in
  let r2, t2 = run_chaos_traced () in
  check_bool "same results" true (r1 = r2);
  check_bool "byte-identical Chrome traces" true (String.equal t1 t2);
  check_bool "trace is non-trivial" true (String.length t1 > 1_000);
  check_bool "fs workload made progress" true (r1.Exp_chaos.fs_rounds > 0);
  check_bool "kv workload made progress" true (r1.Exp_chaos.kv_ok > 0)

(* Rerunning the fan-in ablation under the same fault plan must produce
   the identical result: MPMC dedup, batched refunds and doorbell
   coalescing are all deterministic. *)
let test_fanin_rerun_identical_under_faults () =
  let run () =
    let plan =
      Fault.create ~seed:11
        { Fault.none with drop = 0.02; dup = 0.01; delay = 0.02 }
    in
    Fault.with_plan plan (fun () ->
        M3v.Exp_fanin.throughput ~mode:M3v.Exp_fanin.Mpmc ~senders:4 ~msgs:5 ())
  in
  let r1 = run () in
  check_bool "fan-in made progress under faults" true (r1 > 0.0);
  check_bool "fan-in rerun identical under faults" true (r1 = run ())

let suite =
  [
    ("rng bounds and uniformity", `Quick, test_rng_bounds_uniform);
    ("fault spec parsing", `Quick, test_parse_spec);
    ("no plan is inert", `Quick, test_no_plan_is_inert);
    ("crash/hang budgets and protect", `Quick, test_protect_and_budget);
    ("drop exhausts retries, refunds credit", `Quick,
     test_drop_timeout_refunds_credit);
    ("retransmit + dedup deliver exactly once", `Quick,
     test_retransmit_exactly_once);
    ("exit code propagation", `Quick, test_exit_code_propagation);
    ("crash teardown clears ep owners", `Quick,
     test_crash_teardown_clears_ep_owners);
    ("watchdog kills and restarts hung act", `Quick,
     test_watchdog_kills_and_restarts_hung_act);
    ("chaos run is deterministic", `Slow, test_chaos_deterministic);
    ("fan-in rerun identical under faults", `Quick,
     test_fanin_rerun_identical_under_faults);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_spec_roundtrip; prop_faulty_credit_conservation ]
