(** Deterministic fault injection ("chaos") layer.

    A fault plan combines a {!spec} — NoC drop/duplicate/delay rates, DTU
    command glitch rate, and crash/hang budgets for activities — with a
    dedicated {!M3v_sim.Rng} stream.  Installed process-globally (like the
    trace sink), it is consulted by the NoC, the DTU and TileMux at
    injection points.  Decisions are drawn in simulation order, so a given
    spec and seed reproduce the same fault schedule exactly.

    Fault model: only the {e data plane} (message, reply and DMA packets)
    is best-effort; the control sideband (completion acks, credit returns,
    kernel wires) is lossless.  A send timeout therefore implies the
    message never occupied a receive slot, making the DTU's
    refund-credit-on-timeout recovery credit-safe.

    When no plan is installed, every hook short-circuits on one boolean
    load — runs without [--faults] are bit-identical to a build without
    this library. *)

type spec = {
  drop : float;  (** per-data-packet drop probability *)
  dup : float;  (** per-data-packet duplication probability *)
  delay : float;  (** per-data-packet extra-delay probability *)
  delay_ps : int;  (** max injected delay, ps (uniform in [1, delay_ps]) *)
  cmd_fail : float;  (** transient DTU command failure probability *)
  crash : int;  (** total activity crashes to inject *)
  crash_p : float;  (** per-TMCall-boundary crash probability *)
  hang : int;  (** total activity hangs to inject *)
  hang_p : float;  (** per-TMCall-boundary hang probability *)
  mig_abort : int;  (** total migration aborts to inject *)
  mig_abort_p : float;  (** per-abortable-phase abort probability *)
}

(** All rates and budgets zero. *)
val none : spec

(** Parse a ["drop=0.01,dup=0.005,crash=2"]-style spec string.  Unset keys
    keep their {!none} defaults. *)
val parse : string -> (spec, string) result

val spec_to_string : spec -> string

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable cmd_glitches : int;
  mutable crashes_injected : int;
  mutable hangs_injected : int;
  mutable mig_aborts_injected : int;
}

type t

val create : ?seed:int -> spec -> t
val stats : t -> stats
val spec : t -> spec

(** {1 Global installation} *)

val install : t -> unit
val uninstall : unit -> unit

(** [with_plan t f] runs [f] with [t] installed, uninstalling on return or
    exception. *)
val with_plan : t -> (unit -> 'a) -> 'a

(** Whether a plan is installed.  Injection points and recovery machinery
    (retransmit timers, watchdogs, RPC deadlines) check this first so the
    fault-free fast path stays untouched. *)
val on : unit -> bool

(** Exempt activity [act] from crash/hang injection (e.g. the pager). *)
val protect : t -> act:int -> unit

(** {1 Decision hooks} — deterministic draws from the plan's RNG.  Each
    injected fault is counted and emitted as a ["fault"] tracepoint. *)

type noc_fate = Deliver | Drop | Duplicate | Delay of int

(** Fate of one data-plane NoC packet. *)
val noc_fate : now:int -> src:int -> dst:int -> noc_fate

(** Whether a DTU command issue glitches transiently (the DTU retries). *)
val cmd_fails : now:int -> tile:int -> bool

type act_fate = Crash | Hang

(** Fate of activity [act] at a TMCall boundary; [None] almost always. *)
val act_fate : now:int -> tile:int -> act:int -> act_fate option

(** Whether to abort an in-progress migration of [act], drawn once per
    abortable phase boundary (before the atomic endpoint flip — after it
    the protocol can only roll forward).  Budgeted by [spec.mig_abort]. *)
val mig_fate : now:int -> tile:int -> act:int -> phase:string -> bool

val pp_stats : Format.formatter -> stats -> unit
