(* Deterministic chaos layer.

   A fault [plan] is a parsed [spec] (rates and budgets) plus a dedicated
   [Rng.t], installed domain-locally like a trace sink.  Fault decisions
   are drawn in simulation order from that RNG, so the same spec and seed
   reproduce the same fault schedule byte for byte.

   Fault model: the NoC data plane is best-effort (message, reply and DMA
   packets may be dropped, duplicated or delayed) while the control
   sideband — completion acks, credit returns, controller wires — is
   lossless, mirroring credit-managed MPMC queue hardware where the tiny
   fixed-size control channel is engineered for reliability.  The
   consequence the DTU relies on: a send whose completion never arrives
   was never consumed at the receiver, so refunding the credit on final
   timeout cannot mint credits.

   When no plan is installed ([on () = false]) every hook is a single
   boolean load and the simulated timeline is bit-identical to a build
   without this library. *)

module Rng = M3v_sim.Rng
module Trace = M3v_obs.Trace

type spec = {
  drop : float;
  dup : float;
  delay : float;
  delay_ps : int;
  cmd_fail : float;
  crash : int;
  crash_p : float;
  hang : int;
  hang_p : float;
  mig_abort : int;
  mig_abort_p : float;
}

let none =
  {
    drop = 0.;
    dup = 0.;
    delay = 0.;
    delay_ps = 200_000;
    cmd_fail = 0.;
    crash = 0;
    crash_p = 5e-3;
    hang = 0;
    hang_p = 5e-3;
    mig_abort = 0;
    mig_abort_p = 0.25;
  }

let parse s =
  let parse_field spec kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "fault spec: expected key=value, got %S" kv)
    | Some i -> (
        let key = String.sub kv 0 i in
        let value = String.sub kv (i + 1) (String.length kv - i - 1) in
        let fl () =
          match float_of_string_opt value with
          | Some f when f >= 0. -> Ok f
          | _ -> Error (Printf.sprintf "fault spec: bad number for %s: %S" key value)
        in
        let it () =
          match int_of_string_opt value with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Printf.sprintf "fault spec: bad count for %s: %S" key value)
        in
        match key with
        | "drop" -> Result.map (fun v -> { spec with drop = v }) (fl ())
        | "dup" -> Result.map (fun v -> { spec with dup = v }) (fl ())
        | "delay" -> Result.map (fun v -> { spec with delay = v }) (fl ())
        | "delay_ps" -> Result.map (fun v -> { spec with delay_ps = v }) (it ())
        | "cmd_fail" -> Result.map (fun v -> { spec with cmd_fail = v }) (fl ())
        | "crash" -> Result.map (fun v -> { spec with crash = v }) (it ())
        | "crash_p" -> Result.map (fun v -> { spec with crash_p = v }) (fl ())
        | "hang" -> Result.map (fun v -> { spec with hang = v }) (it ())
        | "hang_p" -> Result.map (fun v -> { spec with hang_p = v }) (fl ())
        | "mig_abort" -> Result.map (fun v -> { spec with mig_abort = v }) (it ())
        | "mig_abort_p" ->
            Result.map (fun v -> { spec with mig_abort_p = v }) (fl ())
        | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let fields =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  List.fold_left
    (fun acc kv -> Result.bind acc (fun spec -> parse_field spec kv))
    (Ok none) fields

let spec_to_string spec =
  let b = Buffer.create 64 in
  let fld name v = if v > 0. then Buffer.add_string b (Printf.sprintf "%s=%g," name v) in
  let ifld name v = if v > 0 then Buffer.add_string b (Printf.sprintf "%s=%d," name v) in
  fld "drop" spec.drop;
  fld "dup" spec.dup;
  fld "delay" spec.delay;
  if spec.delay > 0. then ifld "delay_ps" spec.delay_ps;
  fld "cmd_fail" spec.cmd_fail;
  ifld "crash" spec.crash;
  ifld "hang" spec.hang;
  ifld "mig_abort" spec.mig_abort;
  let s = Buffer.contents b in
  if s = "" then "none" else String.sub s 0 (String.length s - 1)

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable cmd_glitches : int;
  mutable crashes_injected : int;
  mutable hangs_injected : int;
  mutable mig_aborts_injected : int;
}

type t = {
  spec : spec;
  rng : Rng.t;
  stats : stats;
  protected : (int, unit) Hashtbl.t;
  mutable crash_left : int;
  mutable hang_left : int;
  mutable mig_abort_left : int;
}

let create ?(seed = 1) spec =
  {
    spec;
    rng = Rng.create ~seed;
    stats =
      {
        dropped = 0;
        duplicated = 0;
        delayed = 0;
        cmd_glitches = 0;
        crashes_injected = 0;
        hangs_injected = 0;
        mig_aborts_injected = 0;
      };
    protected = Hashtbl.create 8;
    crash_left = spec.crash;
    hang_left = spec.hang;
    mig_abort_left = spec.mig_abort;
  }

let stats t = t.stats
let spec t = t.spec

(* --- ambient installation, mirroring Trace: domain-local so parallel
   experiment tasks each run under their own plan (or none) --- *)

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let enabled : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let install t =
  Domain.DLS.set current (Some t);
  Domain.DLS.set enabled true

let uninstall () =
  Domain.DLS.set current None;
  Domain.DLS.set enabled false

let with_plan t f =
  install t;
  Fun.protect ~finally:uninstall f

let on () = Domain.DLS.get enabled

(* [protect] exempts an activity from crash/hang injection (e.g. the
   pager, whose loss would wedge every faulting activity on the tile
   rather than exercise recovery). *)
let protect t ~act = Hashtbl.replace t.protected act ()

(* --- decision hooks --- *)

type noc_fate = Deliver | Drop | Duplicate | Delay of int

let noc_fate ~now ~src ~dst =
  match Domain.DLS.get current with
  | None -> Deliver
  | Some p ->
      let r = Rng.float p.rng in
      let s = p.spec in
      if r < s.drop then begin
        p.stats.dropped <- p.stats.dropped + 1;
        if Trace.on () then
          Trace.instant ~cat:"fault" ~name:"noc_drop" ~tile:src ~ts:now
            ~args:[ ("dst", Trace.I dst) ]
            ();
        Drop
      end
      else if r < s.drop +. s.dup then begin
        p.stats.duplicated <- p.stats.duplicated + 1;
        if Trace.on () then
          Trace.instant ~cat:"fault" ~name:"noc_dup" ~tile:src ~ts:now
            ~args:[ ("dst", Trace.I dst) ]
            ();
        Duplicate
      end
      else if r < s.drop +. s.dup +. s.delay then begin
        p.stats.delayed <- p.stats.delayed + 1;
        let extra = 1 + Rng.int p.rng (max 1 s.delay_ps) in
        if Trace.on () then
          Trace.instant ~cat:"fault" ~name:"noc_delay" ~tile:src ~ts:now
            ~args:[ ("dst", Trace.I dst); ("extra_ps", Trace.I extra) ]
            ();
        Delay extra
      end
      else Deliver

let cmd_fails ~now ~tile =
  match Domain.DLS.get current with
  | None -> false
  | Some p ->
      p.spec.cmd_fail > 0.
      && Rng.float p.rng < p.spec.cmd_fail
      && begin
           p.stats.cmd_glitches <- p.stats.cmd_glitches + 1;
           if Trace.on () then
             Trace.instant ~cat:"fault" ~name:"cmd_glitch" ~tile ~ts:now ();
           true
         end

type act_fate = Crash | Hang

(* Drawn at TMCall boundaries.  Budgeted: at most [spec.crash] crashes and
   [spec.hang] hangs are injected across the whole run, each with
   per-boundary probability [crash_p]/[hang_p] while budget remains. *)
let act_fate ~now ~tile ~act =
  match Domain.DLS.get current with
  | None -> None
  | Some p ->
      if Hashtbl.mem p.protected act then None
      else if p.crash_left > 0 && Rng.float p.rng < p.spec.crash_p then begin
        p.crash_left <- p.crash_left - 1;
        p.stats.crashes_injected <- p.stats.crashes_injected + 1;
        if Trace.on () then
          Trace.instant ~cat:"fault" ~name:"inject_crash" ~tile ~act ~ts:now ();
        Some Crash
      end
      else if p.hang_left > 0 && Rng.float p.rng < p.spec.hang_p then begin
        p.hang_left <- p.hang_left - 1;
        p.stats.hangs_injected <- p.stats.hangs_injected + 1;
        if Trace.on () then
          Trace.instant ~cat:"fault" ~name:"inject_hang" ~tile ~act ~ts:now ();
        Some Hang
      end
      else None

(* Drawn once per migration at each abortable phase boundary (before the
   atomic endpoint flip).  Budgeted like crash/hang: at most
   [spec.mig_abort] aborts across the run, each with probability
   [mig_abort_p] while budget remains.  After the flip the protocol can
   only roll forward, so the controller stops consulting this hook. *)
let mig_fate ~now ~tile ~act ~phase =
  match Domain.DLS.get current with
  | None -> false
  | Some p ->
      p.mig_abort_left > 0
      && Rng.float p.rng < p.spec.mig_abort_p
      && begin
           p.mig_abort_left <- p.mig_abort_left - 1;
           p.stats.mig_aborts_injected <- p.stats.mig_aborts_injected + 1;
           if Trace.on () then
             Trace.instant ~cat:"fault" ~name:"inject_mig_abort" ~tile ~act
               ~ts:now
               ~args:[ ("phase", Trace.S phase) ]
               ();
           true
         end

let pp_stats fmt s =
  Format.fprintf fmt
    "%d dropped, %d duplicated, %d delayed, %d cmd glitches, %d crashes, %d \
     hangs, %d migration aborts"
    s.dropped s.duplicated s.delayed s.cmd_glitches s.crashes_injected
    s.hangs_injected s.mig_aborts_injected
