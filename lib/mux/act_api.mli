(** Typed, direct-style API over the activity primitives.

    All functions return [Proc] processes; compose them with
    [M3v_sim.Proc.Syntax].  Communication errors that a real activity
    library would handle internally (credit exhaustion, vDTU TLB misses,
    M3x slow-path fallback) are handled by the runtime — programs written
    against this API are placement- and system-variant-agnostic. *)

open M3v_sim

(** Environment handed to an activity at spawn time. *)
type env = {
  aid : M3v_dtu.Dtu_types.act_id;
  tile : int;
  sys_sgate : int;  (** send endpoint to the controller's syscall gate *)
  sys_rgate : int;  (** receive endpoint for syscall replies *)
}

val compute : int -> unit Proc.t
(** [compute cycles] *)

val send :
  ep:int ->
  ?reply_ep:int ->
  ?vaddr:int ->
  size:int ->
  M3v_dtu.Msg.data ->
  unit Proc.t

(** Wait for the next message on any of [eps]; returns (endpoint, message). *)
val recv : eps:int list -> (int * M3v_dtu.Msg.t) Proc.t

(** Like {!recv} but resolves to [None] if nothing arrived within
    [timeout] (relative; M3v mode only).  Service clients use this to
    survive a crashed or wedged server instead of blocking forever. *)
val recv_timeout :
  eps:int list -> timeout:Time.t -> (int * M3v_dtu.Msg.t) option Proc.t

val try_recv : eps:int list -> (int * M3v_dtu.Msg.t) option Proc.t

(** Block for the given (relative) duration without occupying the core —
    the tile multiplexes others meanwhile and a timer wakes the activity
    at the deadline (M3v mode only).  The load harness' fleet drivers
    pace their arrival schedules with this. *)
val sleep : M3v_sim.Time.t -> unit Proc.t

val reply :
  recv_ep:int ->
  msg:M3v_dtu.Msg.t ->
  ?vaddr:int ->
  size:int ->
  M3v_dtu.Msg.data ->
  unit Proc.t

val ack : ep:int -> M3v_dtu.Msg.t -> unit Proc.t

val mem_read :
  ep:int ->
  off:int ->
  len:int ->
  ?vaddr:int ->
  dst:bytes ->
  ?dst_off:int ->
  unit ->
  unit Proc.t

val mem_write :
  ep:int ->
  off:int ->
  len:int ->
  ?vaddr:int ->
  src:bytes ->
  ?src_off:int ->
  unit ->
  unit Proc.t

val memcpy : int -> unit Proc.t
val yield : unit Proc.t
val now : M3v_sim.Time.t Proc.t
val alloc_buf : int -> Act_ops.buf Proc.t
val touch : ?off:int -> ?len:int -> write:bool -> Act_ops.buf -> unit Proc.t
val acct : string -> unit Proc.t
val log : string -> unit Proc.t

(** Finish the activity immediately with an exit code (reported to the
    controller, like a process exit status).  Never returns. *)
val exit_with : int -> unit Proc.t

(** A full RPC: send with [reply_ep], wait for the reply on it, acknowledge
    it, return the reply. *)
val call :
  sgate:int ->
  reply_ep:int ->
  ?vaddr:int ->
  size:int ->
  M3v_dtu.Msg.data ->
  M3v_dtu.Msg.t Proc.t

(** Like {!call} but with a reply deadline: [None] if the reply did not
    arrive in time (the request may or may not have been processed). *)
val call_timeout :
  sgate:int ->
  reply_ep:int ->
  ?vaddr:int ->
  size:int ->
  timeout:Time.t ->
  M3v_dtu.Msg.data ->
  M3v_dtu.Msg.t option Proc.t

(** Issue a system call to the controller and return its reply. *)
val syscall : env -> M3v_kernel.Protocol.sys_req -> M3v_kernel.Protocol.sys_reply Proc.t

(** Like [syscall] but failing hard on [Sys_err] (setup-style calls). *)
val syscall_exn : env -> M3v_kernel.Protocol.sys_req -> M3v_kernel.Protocol.sys_reply Proc.t
