(** The per-tile runtime: TileMux (M3v) or the remote-mux stub (M3x).

    In [M3v_mode] this implements TileMux (paper, sections 3.3 and 4.2):
    a round-robin scheduler with time slices, TMCalls (blocking for
    messages, address translation, page faults, yield, exit), core-request
    handling, the lost-wakeup-safe atomic activity switch, and the
    TileMux -> pager -> controller -> TileMux page-fault path.

    In [M3x_mode] the tile cannot switch locally: every block and every
    message to a not-currently-running activity goes through the controller
    (slow path), which remotely saves/restores endpoint state — the
    behaviour M3v was designed to replace.

    Activity programs are [Proc] processes over {!Act_ops}; they run
    unchanged under both modes. *)

type mode = M3v_mode | M3x_mode

(** Page-fault request TileMux sends to the pager service.  The pager
    allocates a frame, issues a [Map_for] syscall, and replies to TileMux
    (paper, section 4.3). *)
type M3v_dtu.Msg.data +=
  | Pf_fault of {
      pf_act : M3v_dtu.Dtu_types.act_id;
      pf_vpage : int;
      pf_write : bool;
    }

type t

(** Create a runtime on a processing tile.  For [M3v_mode] this sets up
    TileMux's receive gate and registers it with the controller; for
    [M3x_mode] it registers the remote-switch stub. *)
val create :
  mode:mode ->
  controller:M3v_kernel.Controller.t ->
  tile:int ->
  ?timeslice:M3v_sim.Time.t ->
  unit ->
  t

val mode : t -> mode
val tile : t -> int

(** Create an activity on this tile.  [premap] (default true) maps pages
    eagerly at allocation; with [premap:false] the activity demand-faults
    through the pager (requires {!set_pager_sgate}).  The program starts
    running at {!boot}. *)
val spawn :
  t ->
  name:string ->
  ?premap:bool ->
  program:(Act_api.env -> unit M3v_sim.Proc.t) ->
  unit ->
  M3v_dtu.Dtu_types.act_id * Act_api.env

(** Endpoint (owned by TileMux) through which page faults are forwarded to
    the pager service. *)
val set_pager_sgate : t -> int -> unit

(** Start executing spawned activities (M3v: local scheduling; M3x:
    register with the controller's remote scheduler and kick it). *)
val boot : t -> unit

(** Restart a dead activity's program from the top on the same activity
    id (controller crash-recovery policy).  Endpoints, capabilities and
    address space are untouched; requests already queued in its receive
    gates are processed after the restart. *)
val respawn : t -> act:M3v_dtu.Dtu_types.act_id -> unit

(** Whether an activity has finished. *)
val finished : t -> M3v_dtu.Dtu_types.act_id -> bool

(** All spawned activities finished. *)
val all_finished : t -> bool

(** Simulated time this activity kept the core busy. *)
val busy_of : t -> M3v_dtu.Dtu_types.act_id -> M3v_sim.Time.t

(** Busy time by accounting bucket ("user" by default; programs switch with
    [Act_api.acct]). *)
val busy_of_bucket : t -> string -> float

(** Event counters: "ctx_switch", "core_req", "preempt", "fault",
    "tm_rpc", "poll_wake", "mx_slow_send", "mx_block". *)
val counters : t -> M3v_sim.Stats.Counter.t

(** Time charged to multiplexer bookkeeping on this tile. *)
val mux_busy : t -> M3v_sim.Time.t
