module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Proc = M3v_sim.Proc
module Stats = M3v_sim.Stats
module Dtu = M3v_dtu.Dtu
module Dtu_types = M3v_dtu.Dtu_types
module Ep = M3v_dtu.Ep
module Msg = M3v_dtu.Msg
module Core_model = M3v_tile.Core_model
module Platform = M3v_tile.Platform
module Controller = M3v_kernel.Controller
module Proto = M3v_kernel.Protocol
module Trace = M3v_obs.Trace
module Metrics = M3v_obs.Metrics
module Fault = M3v_fault.Fault
open Dtu_types
open Act_ops

type mode = M3v_mode | M3x_mode

(* Page-fault message from TileMux to the pager service. *)
type Msg.data +=
  | Pf_fault of { pf_act : act_id; pf_vpage : int; pf_write : bool }

let () =
  M3v_sim.Checkpoint.register_exts [ [%extension_constructor Pf_fault] ]

type astate =
  | Ready  (** runnable, waiting in the run queue *)
  | Running
  | Stalled  (** core is polling a DTU command to completion *)
  | Blocked_recv  (** waiting for a message *)
  | Blocked_fault  (** waiting for the pager *)
  | Polling  (** current and spinning on its receive endpoints *)
  | Migrating  (** installed from a migration image, not yet resumed *)
  | Dead

type arec = {
  aid : act_id;
  aname : string;
  env : Act_api.env;
  program : Act_api.env -> unit Proc.t;
  premap : bool;
  addr : Addrspace.t;
  mutable st : astate;
  mutable resume : (unit -> unit) option;
  mutable wait_eps : int list;
  mutable slice_left : Time.t;
  mutable busy_ps : int;
  mutable bucket : string;
  mutable started : bool;
  mutable wake_sent : bool;  (** M3x: an Mx_wake is outstanding *)
  mutable stall_since : Time.t;
  mutable wait_token : int;
      (** invalidates stale recv-deadline timers (fault injection) *)
  mutable cur_action : Proc.action option;
      (** the pure action whose interpretation is in progress — what a
          migration parks when the activity is blocked in a receive *)
  mutable mig_park : (Controller.mig_image option -> unit) option;
      (** pending quiesce: park at the next TMCall boundary *)
  mutable mig_action : Proc.action option;
      (** parked continuation to replay after a migration installs us *)
}

(* The migration image: everything runtime-independent about an activity.
   The [Proc] continuation inside [im_action] is pure by construction
   (response -> action), so replaying it on another tile's runtime is
   sound; everything tile-bound (the syscall channel endpoints, the env)
   is rebuilt at install time. *)
type Controller.mig_image +=
  | Image of {
      im_aid : act_id;
      im_name : string;
      im_program : Act_api.env -> unit Proc.t;
      im_premap : bool;
      im_addr : Addrspace.t;
      im_action : Proc.action option;  (** [None]: never started *)
      im_started : bool;
      im_busy_ps : int;
      im_bucket : string;
    }

let () = M3v_sim.Checkpoint.register_exts [ [%extension_constructor Image] ]

type t = {
  rmode : mode;
  rtile : int;
  engine : Engine.t;
  dtu : Dtu.t;
  core : Core_model.t;
  ctrl : Controller.t;
  timeslice : Time.t;
  acts : (act_id, arec) Hashtbl.t;
  mutable spawn_order : act_id list;
  runq : act_id Queue.t;
  mutable current : act_id option;
  mutable irq_pending : bool;
  mutable dispatch_pending : bool;
  mutable in_mux : bool;  (** TileMux code is running (interrupts disabled) *)
  (* TileMux's own communication (page-fault RPCs to the pager) *)
  tm_rgate : int;  (** valid in M3v mode *)
  mutable pager_sgate : int option;
  mutable tm_cont : (Msg.t -> unit) option;
  tm_queue : (Msg.data * int * (Msg.t -> unit)) Queue.t;
  mutable next_ppage : int;
  counters : Stats.Counter.t;
  mutable mux_busy_ps : int;
  mutable run_since : Time.t;  (** when the current activity got the core *)
  mutable wd_epoch : int;
      (** dispatch epoch; invalidates stale watchdog timers (fault
          injection) *)
}

let mode t = t.rmode
let tile t = t.rtile
let counters t = t.counters
let mux_busy t = t.mux_busy_ps

let find t aid =
  match Hashtbl.find_opt t.acts aid with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Runtime: unknown activity %d on tile %d" aid t.rtile)

let busy_of t aid = (find t aid).busy_ps

let busy_of_bucket t bucket = Stats.Counter.get t.counters ("bucket/" ^ bucket)

let finished t aid = (find t aid).st = Dead

let all_finished t =
  Hashtbl.fold (fun _ a acc -> acc && a.st = Dead) t.acts true

(* --- time charging --- *)

let charge_act t (a : arec) cycles k =
  if cycles <= 0 then k ()
  else begin
    let d = Core_model.cycles t.core cycles in
    a.busy_ps <- a.busy_ps + d;
    Stats.Counter.add t.counters ("bucket/" ^ a.bucket) (float_of_int d);
    Engine.after t.engine ~delay:d k
  end

(* Multiplexer bookkeeping time: accounted separately from activities. *)
let charge_mux t cycles k =
  if cycles <= 0 then k ()
  else begin
    let d = Core_model.cycles t.core cycles in
    t.mux_busy_ps <- t.mux_busy_ps + d;
    Stats.Counter.add t.counters "bucket/mux" (float_of_int d);
    Engine.after t.engine ~delay:d k
  end

(* Observability hooks: an activity's occupancy of the core is reported as
   one "run" span from dispatch to the point it yields/blocks/faults/exits
   (the profiler uses these spans to split receive-buffer waits into
   scheduling delay vs. switch cost), and each mux decision point bumps a
   per-tile metrics counter. *)
let obs_on () = Trace.on () || Metrics.on ()

let note_run_start t = if obs_on () then t.run_since <- Engine.now t.engine

let note_run_end t (a : arec) ~why =
  if obs_on () then begin
    let ts = t.run_since in
    let dur = Time.sub (Engine.now t.engine) ts in
    if Trace.on () then begin
      Trace.complete ~cat:"mux" ~name:"run" ~tile:t.rtile ~act:a.aid ~ts ~dur
        ~args:[ ("act", Trace.S a.aname); ("why", Trace.S why) ] ();
      Trace.latency_int "mux/run_span" dur
    end;
    if Metrics.on () then
      Metrics.observe ~name:"mux/run_ps" ~tile:t.rtile (float_of_int dur)
  end

let mux_instant t name =
  if Trace.on () then
    Trace.instant ~cat:"mux" ~name ~tile:t.rtile
      ~ts:(Engine.now t.engine) ();
  if Metrics.on () then
    Metrics.counter_incr ~name:("mux/" ^ name) ~tile:t.rtile ()

let note_stall_start (a : arec) ~now = a.stall_since <- now

let note_stall_end t (a : arec) ~now =
  let d = Time.sub now a.stall_since in
  if d > 0 then begin
    a.busy_ps <- a.busy_ps + d;
    Stats.Counter.add t.counters ("bucket/" ^ a.bucket) (float_of_int d)
  end

(* --- scheduling --- *)

let others_ready t = not (Queue.is_empty t.runq)

let make_ready t (a : arec) =
  match a.st with
  | Blocked_recv | Blocked_fault ->
      a.st <- Ready;
      Queue.add a.aid t.runq
  | Ready | Running | Stalled | Polling | Migrating | Dead -> ()

let rec schedule_dispatch t =
  if t.rmode = M3v_mode && not t.dispatch_pending then begin
    t.dispatch_pending <- true;
    Engine.after t.engine ~delay:0 (fun () ->
        t.dispatch_pending <- false;
        do_dispatch t)
  end

and do_dispatch t =
  if t.current = None && Dtu.core_req_depth t.dtu > 0 then
    handle_core_reqs t ~k:(fun () -> do_dispatch t)
  else if t.current = None then
    match Queue.take_opt t.runq with
    | None -> () (* idle *)
    | Some aid -> (
        match Hashtbl.find_opt t.acts aid with
        | None -> do_dispatch t (* migrated away; stale queue entry *)
        | Some a -> (
        match a.st with
        | Ready ->
            a.st <- Running;
            t.current <- Some aid;
            Stats.Counter.incr t.counters "ctx_switch";
            mux_instant t "ctx_switch";
            (* Schedule + register/address-space switch + the vDTU's atomic
               activity-switch command (2 MMIO accesses). *)
            charge_mux t
              (t.core.Core_model.sched_cycles + t.core.Core_model.ctx_switch_cycles
             + (2 * t.core.Core_model.mmio_cycles))
              (fun () ->
                let old, old_unread = Dtu.switch_act t.dtu ~next:aid in
                (* Lost-wakeup check (paper, section 3.7): if the departing
                   activity accumulated messages while blocking, keep it
                   ready. *)
                (if (not (is_reserved_act old)) && old_unread > 0 then
                   match Hashtbl.find_opt t.acts old with
                   | Some oa when oa.st = Blocked_recv -> make_ready t oa
                   | Some _ | None -> ());
                a.slice_left <- t.timeslice;
                note_run_start t;
                arm_watchdog t a;
                resume_act t a)
        | Running | Stalled | Blocked_recv | Blocked_fault | Polling
        | Migrating | Dead ->
            (* Stale queue entry; try the next one. *)
            do_dispatch t))

and resume_act t (a : arec) =
  (* Any resume invalidates a pending recv-deadline timer for this wait. *)
  a.wait_token <- a.wait_token + 1;
  if not a.started then begin
    a.started <- true;
    exec t a (Proc.run (a.program a.env))
  end
  else
    match a.resume with
    | Some f ->
        a.resume <- None;
        f ()
    | None -> (
        match a.mig_action with
        | Some action ->
            (* First dispatch after a migration: replay the op the source
               parked.  The op never half-ran — parking happens at the
               boundary, and a blocked receive consumed nothing — so the
               replay is exactly-once. *)
            a.mig_action <- None;
            exec t a action
        | None ->
            failwith
              (Printf.sprintf
                 "Runtime: activity %s resumed without continuation" a.aname))

(* --- core requests (vDTU -> TileMux interrupts, M3v only) --- *)

and handle_core_reqs t ~k =
  let rec loop ~first =
    match Dtu.fetch_core_req t.dtu with
    | None ->
        t.in_mux <- false;
        k ()
    | Some target ->
        t.in_mux <- true;
        Stats.Counter.incr t.counters "core_req";
        let entry = if first then t.core.Core_model.trap_cycles else 0 in
        charge_mux t (entry + t.core.Core_model.core_req_cycles) (fun () ->
            if target = tilemux_act then
              handle_tm_msg t ~k:(fun () ->
                  Dtu.ack_core_req t.dtu;
                  loop ~first:false)
            else begin
              (match Hashtbl.find_opt t.acts target with
              | Some a -> make_ready t a
              | None -> ());
              Dtu.ack_core_req t.dtu;
              loop ~first:false
            end)
  in
  loop ~first:true

(* TileMux's own receive gate got a message: either a mapping request from
   the controller or a reply from the pager.  TileMux must switch the vDTU
   to its own activity id to use its endpoints (paper, section 4.2). *)
and handle_tm_msg t ~k =
  charge_mux t (2 * t.core.Core_model.mmio_cycles) (fun () ->
      let prev, _ = Dtu.switch_act t.dtu ~next:tilemux_act in
      let restore_and k =
        ignore (Dtu.switch_act t.dtu ~next:prev);
        k ()
      in
      match Dtu.fetch t.dtu ~ep:t.tm_rgate with
      | Ok (Some msg) -> (
          match msg.Msg.data with
          | Proto.Tm_map { tm_req_id; tm_act; tm_vpage; tm_ppage; tm_perm } ->
              (* Apply the page-table entry on behalf of the controller
                 (paper, section 4.3), then confirm. *)
              charge_mux t t.core.Core_model.translate_cycles (fun () ->
                  (match Hashtbl.find_opt t.acts tm_act with
                  | Some a ->
                      Addrspace.map a.addr ~vpage:tm_vpage ~ppage:tm_ppage
                        ~perm:tm_perm
                  | None -> ());
                  Dtu.reply t.dtu ~recv_ep:t.tm_rgate ~to_msg:msg ~msg_size:16
                    (Proto.Tm_map_done { tm_req_id })
                    ~k:(fun _ -> ());
                  restore_and k)
          | _ -> (
              ignore (Dtu.ack t.dtu ~ep:t.tm_rgate msg);
              match t.tm_cont with
              | Some f ->
                  t.tm_cont <- None;
                  restore_and (fun () ->
                      f msg;
                      tm_pump t;
                      k ())
              | None -> restore_and k))
      | Ok None | Error _ -> restore_and k)

(* Send one TileMux RPC at a time; queue the rest. *)
and tm_rpc t data ~size ~on_reply =
  match t.tm_cont with
  | Some _ -> Queue.add (data, size, on_reply) t.tm_queue
  | None -> tm_rpc_now t data ~size ~on_reply

and tm_rpc_now t data ~size ~on_reply =
  match t.pager_sgate with
  | None -> failwith "Runtime: page fault but no pager channel configured"
  | Some sgate ->
      Stats.Counter.incr t.counters "tm_rpc";
      mux_instant t "tm_rpc";
      t.tm_cont <- Some on_reply;
      charge_mux t
        ((2 * t.core.Core_model.mmio_cycles) + Core_model.cmd_overhead_cycles t.core)
        (fun () ->
          let rec attempt () =
            let prev, _ = Dtu.switch_act t.dtu ~next:tilemux_act in
            Dtu.send t.dtu ~ep:sgate ~reply_ep:t.tm_rgate ~msg_size:size data
              ~k:(fun result ->
                match result with
                | Ok () -> ()
                | Error Timeout ->
                    (* Fault injection lost the RPC on the wire (credit
                       refunded): reissue it. *)
                    Engine.after t.engine ~delay:(Time.us 2) attempt
                | Error e ->
                    failwith
                      ("Runtime: TileMux -> pager send failed: "
                      ^ Dtu_types.error_to_string e));
            (* The send command is short; switch straight back so the
               scheduled activity's endpoints are visible again. *)
            ignore (Dtu.switch_act t.dtu ~next:prev)
          in
          attempt ())

and tm_pump t =
  match Queue.take_opt t.tm_queue with
  | None -> ()
  | Some (data, size, on_reply) -> tm_rpc_now t data ~size ~on_reply

(* --- page faults and translation --- *)

and pagefault t (a : arec) ~vpage ~write ~k =
  Addrspace.note_fault a.addr;
  Stats.Counter.incr t.counters "fault";
  if Trace.on () then
    Trace.instant ~cat:"mux" ~name:"fault" ~tile:t.rtile ~act:a.aid
      ~ts:(Engine.now t.engine)
      ~args:[ ("vpage", Trace.I vpage); ("write", Trace.S (string_of_bool write)) ]
      ();
  if a.premap then begin
    (* Eagerly-mapped activities never reach the pager: TileMux installs a
       fresh frame directly (boot-time mapping shortcut). *)
    let ppage = t.next_ppage in
    t.next_ppage <- ppage + 1;
    charge_mux t t.core.Core_model.pagefault_cycles (fun () ->
        Addrspace.map a.addr ~vpage ~ppage ~perm:RW;
        k ())
  end
  else
    charge_act t a
      (t.core.Core_model.trap_cycles + t.core.Core_model.pagefault_cycles)
      (fun () ->
        a.st <- Blocked_fault;
        a.resume <- Some k;
        let was_current = t.current = Some a.aid in
        if was_current then begin
          note_run_end t a ~why:"fault";
          t.current <- None
        end;
        tm_rpc t
          (Pf_fault { pf_act = a.aid; pf_vpage = vpage; pf_write = write })
          ~size:24
          ~on_reply:(fun _msg ->
            let a = find t a.aid in
            make_ready t a;
            schedule_dispatch t);
        if was_current then schedule_dispatch t)

and tm_translate t (a : arec) ~vpage ~write ~k =
  charge_act t a
    (t.core.Core_model.trap_cycles + t.core.Core_model.translate_cycles)
    (fun () ->
      match Addrspace.translate a.addr ~vpage with
      | Some (ppage, perm) ->
          charge_mux t (2 * t.core.Core_model.mmio_cycles) (fun () ->
              Dtu.tlb_insert t.dtu ~act:a.aid ~vpage ~ppage ~perm;
              k ())
      | None ->
          pagefault t a ~vpage ~write ~k:(fun () ->
              match Addrspace.translate a.addr ~vpage with
              | Some (ppage, perm) ->
                  charge_mux t (2 * t.core.Core_model.mmio_cycles) (fun () ->
                      Dtu.tlb_insert t.dtu ~act:a.aid ~vpage ~ppage ~perm;
                      k ())
              | None -> failwith "Runtime: page still unmapped after fault"))

(* --- M3x control messages --- *)

and send_ctl t (a : arec) data ~k =
  charge_act t a (Core_model.cmd_overhead_cycles t.core) (fun () ->
      let rec attempt () =
        Dtu.send t.dtu ~ep:a.env.Act_api.sys_sgate ~msg_size:16 data
          ~k:(fun result ->
            match result with
            | Ok () -> k ()
            | Error (No_credits | Recv_gone | Timeout) ->
                (* Controller busy — or, under fault injection, the wire
                   timed out (credit already refunded): retry shortly. *)
                Engine.after t.engine ~delay:(Time.us 2) attempt
            | Error e ->
                failwith
                  ("Runtime: control message failed: "
                  ^ Dtu_types.error_to_string e))
      in
      attempt ())

and mx_slow_send t (a : arec) ~ep ~reply_ep ~size ~data ~k =
  Stats.Counter.incr t.counters "mx_slow_send";
  match (Dtu.ext_read_ep t.dtu ~ep).Ep.cfg with
  | Ep.Send s ->
      let reply_to =
        match reply_ep with Some re -> Some (t.rtile, re) | None -> None
      in
      let fwd =
        Msg.make ~src_tile:t.rtile ~src_act:a.aid ~src_send_ep:ep
          ~label:s.Ep.label ?reply_to ~size data
      in
      send_ctl t a
        (Proto.Mx_fwd
           { fwd_dst_tile = s.Ep.dst_tile; fwd_dst_ep = s.Ep.dst_ep; fwd;
             fwd_block = false })
        ~k
  | Ep.Invalid | Ep.Recv _ | Ep.Mpmc_recv _ | Ep.Mem _ ->
      failwith "Runtime: slow-path send on a non-send endpoint"

and mx_slow_reply t (a : arec) ~(to_msg : Msg.t) ~size ~data ~k =
  Stats.Counter.incr t.counters "mx_slow_send";
  match to_msg.Msg.reply_to with
  | None -> failwith "Runtime: slow-path reply without reply endpoint"
  | Some (dst_tile, dst_ep) ->
      let fwd =
        Msg.make ~src_tile:t.rtile ~src_act:a.aid ~label:to_msg.Msg.label
          ~size data
      in
      send_ctl t a
        (Proto.Mx_fwd
           { fwd_dst_tile = dst_tile; fwd_dst_ep = dst_ep; fwd; fwd_block = false })
        ~k

(* --- activity exit --- *)

and act_finished t (a : arec) ~code =
  if Trace.on () then
    Trace.instant ~cat:"mux" ~name:"act_exit" ~tile:t.rtile ~act:a.aid
      ~ts:(Engine.now t.engine)
      ~args:[ ("act", Trace.S a.aname); ("code", Trace.I code) ] ();
  send_ctl t a (Proto.Sys (Proto.Act_exit { code })) ~k:(fun () ->
      a.st <- Dead;
      Dtu.tlb_invalidate_act t.dtu a.aid;
      (* A quiesce that raced the exit loses: tell the migration protocol
         there is nothing left to move. *)
      (match a.mig_park with
      | Some park ->
          a.mig_park <- None;
          park None
      | None -> ());
      if t.current = Some a.aid then begin
        note_run_end t a ~why:"exit";
        t.current <- None;
        if t.rmode = M3v_mode then schedule_dispatch t
      end)

(* --- migration: parking --- *)

(* Park the activity for migration: strip it off this runtime entirely and
   hand its image to the controller.  [action] is the pure continuation to
   replay on the target ([None] if the program never started).  Runs at a
   TMCall boundary, so no DTU command is in flight and no op has
   half-executed. *)
and mig_park_now t (a : arec) action =
  a.wait_token <- a.wait_token + 1;
  let park =
    match a.mig_park with Some k -> k | None -> assert false
  in
  a.mig_park <- None;
  a.resume <- None;
  a.wait_eps <- [];
  let was_current = t.current = Some a.aid in
  if was_current then begin
    note_run_end t a ~why:"migrate";
    t.current <- None
  end;
  Hashtbl.remove t.acts a.aid;
  t.spawn_order <- List.filter (fun id -> id <> a.aid) t.spawn_order;
  Stats.Counter.incr t.counters "mig_park";
  mux_instant t "mig_park";
  if was_current && t.rmode = M3v_mode then schedule_dispatch t;
  park
    (Some
       (Image
          {
            im_aid = a.aid;
            im_name = a.aname;
            im_program = a.program;
            im_premap = a.premap;
            im_addr = a.addr;
            im_action = action;
            im_started = a.started;
            im_busy_ps = a.busy_ps;
            im_bucket = a.bucket;
          }))

(* --- watchdog (fault injection only) ---

   TileMux's time-slice timer doubles as a liveness monitor: if the
   current activity has held the core for several slices without charging
   a single cycle, it is wedged (an injected hang) and is reaped with the
   conventional SIGKILL-style code 137.  A [Stalled] activity is waiting
   on a DTU command — the DTU's own retransmit ladder owns that case, so
   the watchdog only re-arms.  It never re-arms on [Polling]: the poll
   wake-up rearms, and a timer chain under an idle poller would keep the
   engine queue non-empty forever. *)

and arm_watchdog t (a : arec) =
  if t.rmode = M3v_mode && Fault.on () then begin
    t.wd_epoch <- t.wd_epoch + 1;
    let epoch = t.wd_epoch and aid = a.aid and busy0 = a.busy_ps in
    Engine.after t.engine ~delay:(8 * t.timeslice) (fun () ->
        watchdog_fire t ~aid ~epoch ~busy0)
  end

and watchdog_fire t ~aid ~epoch ~busy0 =
  if t.wd_epoch = epoch && t.current = Some aid then
    match Hashtbl.find_opt t.acts aid with
    | None -> ()
    | Some a -> (
        match a.st with
        | Running when a.busy_ps = busy0 ->
            Stats.Counter.incr t.counters "watchdog_kill";
            mux_instant t "watchdog_kill";
            act_finished t a ~code:137
        | Running | Stalled -> arm_watchdog t a
        | Ready | Blocked_recv | Blocked_fault | Polling | Migrating | Dead ->
            ())

(* --- the interpreter --- *)

and exec t (a : arec) (action : Proc.action) =
  if a.st = Dead then ()
  else
    match (a.mig_park, action) with
    | Some _, (Proc.Request _ as req) ->
        (* A migration is waiting for us to reach a TMCall boundary — this
           is one.  (A [Finished] action falls through: exit wins over
           migration, and [act_finished] reports the lost race.) *)
        mig_park_now t a (Some req)
    | _ ->
        if t.irq_pending && t.rmode = M3v_mode then begin
          t.irq_pending <- false;
          handle_core_reqs t ~k:(fun () -> exec_steps t a action)
        end
        else exec_steps t a action

and exec_steps t (a : arec) = function
  | Proc.Finished -> act_finished t a ~code:0
  | Proc.Request (op, k) as action ->
      (* Remember the op being interpreted: if the activity blocks inside
         it and a migration parks it there, the target replays exactly
         this action. *)
      a.cur_action <- Some action;
      interp t a op (fun resp -> exec t a (k resp))

and interp t (a : arec) op (k : Proc.resp -> unit) =
  (* Every TMCall boundary is a crash/hang injection point. *)
  if Fault.on () then
    match Fault.act_fate ~now:(Engine.now t.engine) ~tile:t.rtile ~act:a.aid with
    | Some Fault.Crash -> act_finished t a ~code:139
    | Some Fault.Hang ->
        (* The activity wedges mid-call: nothing continues it.  The
           watchdog detects the frozen core occupancy and reaps it. *)
        ()
    | None -> interp_op t a op k
  else interp_op t a op k

and interp_op t (a : arec) op (k : Proc.resp -> unit) =
  match op with
  | Op_compute cycles -> compute_chunks t a cycles k
  | Op_memcpy bytes -> compute_chunks t a (Core_model.memcpy_cycles t.core bytes) k
  | Op_now -> charge_act t a 6 (fun () -> k (R_time (Engine.now t.engine)))
  | Op_log line ->
      Stats.Counter.incr t.counters "log";
      ignore line;
      k Proc.Unit
  | Op_acct bucket ->
      a.bucket <- bucket;
      k Proc.Unit
  | Op_alloc_buf size ->
      let vaddr = Addrspace.alloc_region a.addr ~size in
      let first = page_of_addr vaddr in
      let last = page_of_addr (vaddr + (max size 1) - 1) in
      if a.premap then begin
        for vpage = first to last do
          let ppage = t.next_ppage in
          t.next_ppage <- ppage + 1;
          Addrspace.map a.addr ~vpage ~ppage ~perm:RW
        done;
        charge_act t a (4 * (last - first + 1)) (fun () -> k (R_vaddr vaddr))
      end
      else charge_act t a 4 (fun () -> k (R_vaddr vaddr))
  | Op_touch { t_vaddr; t_len; t_write } ->
      let first = page_of_addr t_vaddr in
      let last = page_of_addr (t_vaddr + max t_len 1 - 1) in
      let rec touch_page vpage =
        if vpage > last then k Proc.Unit
        else if Addrspace.is_mapped a.addr ~vpage then
          charge_act t a 2 (fun () -> touch_page (vpage + 1))
        else pagefault t a ~vpage ~write:t_write ~k:(fun () -> touch_page (vpage + 1))
      in
      touch_page first
  | Op_yield -> interp_yield t a k
  | Op_sleep d ->
      (* A pure timer wait (TMCall, like a blocking receive, but with no
         endpoints to watch): the activity blocks as idle occupancy and a
         timer makes it ready again at the deadline.  Simulated clients
         use this to pace request schedules without burning core time.
         The wait token pins the timer to this wait; any other resume
         turns a stale timer into a no-op. *)
      if t.rmode <> M3v_mode then failwith "Runtime: sleep is M3v-only";
      if d <= 0 then k Proc.Unit
      else
        charge_act t a t.core.Core_model.trap_cycles (fun () ->
            a.st <- Blocked_recv;
            a.wait_eps <- [];
            a.resume <- Some (fun () -> k Proc.Unit);
            let token = a.wait_token and aid = a.aid in
            Engine.after t.engine ~delay:d (fun () ->
                match Hashtbl.find_opt t.acts aid with
                | Some a when a.wait_token = token && a.st = Blocked_recv ->
                    make_ready t a;
                    schedule_dispatch t
                | Some _ | None -> ());
            mux_instant t "sleep";
            note_run_end t a ~why:"sleep";
            t.current <- None;
            schedule_dispatch t)
  | Op_send { s_ep; s_reply_ep; s_vaddr; s_size; s_data } ->
      do_send t a ~ep:s_ep ~reply_ep:s_reply_ep ~vaddr:s_vaddr ~size:s_size
        ~data:s_data ~k
  | Op_reply { rp_recv_ep; rp_msg; rp_vaddr; rp_size; rp_data } ->
      do_reply t a ~recv_ep:rp_recv_ep ~msg:rp_msg ~vaddr:rp_vaddr ~size:rp_size
        ~data:rp_data ~k
  | Op_ack { a_ep; a_msg } ->
      (* Acking an MPMC slot is one MMIO store (the shared ring's tail
         bump); a regular ack is a full DTU command round trip. *)
      let ack_cost =
        if Dtu.is_mpmc t.dtu ~ep:a_ep then t.core.Core_model.mmio_cycles
        else Core_model.cmd_overhead_cycles t.core
      in
      charge_act t a ack_cost (fun () ->
          match Dtu.ack t.dtu ~ep:a_ep a_msg with
          | Ok () -> k Proc.Unit
          | Error e -> failwith ("Runtime: ack failed: " ^ Dtu_types.error_to_string e))
  | Op_try_recv { tr_eps } ->
      charge_act t a (fetch_cost t tr_eps) (fun () ->
          k (R_msg_opt (fetch_first t tr_eps)))
  | Op_recv { r_eps; r_timeout } ->
      let deadline =
        match r_timeout with
        | Some d when t.rmode = M3v_mode && Fault.on () ->
            Some (Time.add (Engine.now t.engine) d)
        | Some _ | None -> None
      in
      recv_loop t a ?deadline r_eps k
  | Op_exit code -> act_finished t a ~code
  | Op_mem_read { mr_ep; mr_off; mr_len; mr_vaddr; mr_dst; mr_dst_off } ->
      do_dma t a ~write:false ~ep:mr_ep ~off:mr_off ~len:mr_len ~vaddr:mr_vaddr
        ~buf:mr_dst ~buf_off:mr_dst_off ~k
  | Op_mem_write { mw_ep; mw_off; mw_len; mw_vaddr; mw_src; mw_src_off } ->
      do_dma t a ~write:true ~ep:mw_ep ~off:mw_off ~len:mw_len ~vaddr:mw_vaddr
        ~buf:mw_src ~buf_off:mw_src_off ~k
  | _ -> failwith "Runtime: unknown operation"

and interp_yield t (a : arec) k =
  match t.rmode with
  | M3v_mode ->
      if others_ready t then
        charge_act t a t.core.Core_model.trap_cycles (fun () ->
            a.st <- Ready;
            a.resume <- Some (fun () -> k Proc.Unit);
            Queue.add a.aid t.runq;
            note_run_end t a ~why:"yield";
            t.current <- None;
            schedule_dispatch t)
      else charge_act t a t.core.Core_model.trap_cycles (fun () -> k Proc.Unit)
  | M3x_mode ->
      Stats.Counter.incr t.counters "mx_block";
      send_ctl t a Proto.Mx_yield ~k:(fun () ->
          a.st <- Blocked_recv;
          a.resume <- Some (fun () -> k Proc.Unit))

and compute_chunks t (a : arec) cycles k =
  if cycles <= 0 then k Proc.Unit
  else begin
    let slice_cycles =
      max 1 (Time.to_cycles ~ps_per_cycle:t.core.Core_model.ps_per_cycle a.slice_left)
    in
    let run = min cycles slice_cycles in
    charge_act t a run (fun () ->
        a.slice_left <-
          Time.sub a.slice_left (Core_model.cycles t.core run);
        let rest = cycles - run in
        let continue () =
          if a.slice_left <= 0 then
            if t.rmode = M3v_mode && others_ready t then begin
              (* Timer preemption: round-robin to the next activity. *)
              Stats.Counter.incr t.counters "preempt";
              mux_instant t "preempt";
              charge_mux t t.core.Core_model.trap_cycles (fun () ->
                  a.st <- Ready;
                  a.resume <-
                    Some (fun () -> compute_chunks t a rest k);
                  Queue.add a.aid t.runq;
                  note_run_end t a ~why:"preempt";
                  t.current <- None;
                  schedule_dispatch t)
            end
            else begin
              a.slice_left <- t.timeslice;
              compute_chunks t a rest k
            end
          else compute_chunks t a rest k
        in
        if t.irq_pending && t.rmode = M3v_mode then begin
          t.irq_pending <- false;
          handle_core_reqs t ~k:continue
        end
        else continue ())
  end

and fetch_cost t eps = t.core.Core_model.mmio_cycles * max 1 (min 2 (List.length eps))

and fetch_first t eps =
  let rec try_eps = function
    | [] -> None
    | ep :: rest -> (
        match Dtu.fetch t.dtu ~ep with
        | Ok (Some msg) -> Some (ep, msg)
        | Ok None | Error _ -> try_eps rest)
  in
  try_eps eps

and recv_loop t (a : arec) ?deadline eps k =
  charge_act t a (fetch_cost t eps) (fun () ->
      match fetch_first t eps with
      | Some (ep, msg) -> k (R_msg (ep, msg))
      | None ->
          let expired =
            match deadline with
            | Some d -> Engine.now t.engine >= d
            | None -> false
          in
          if expired then begin
            Stats.Counter.incr t.counters "recv_timeout";
            mux_instant t "recv_timeout";
            k R_recv_timeout
          end
          else (
          match t.rmode with
          | M3v_mode ->
              if others_ready t then
                (* TMCall: block until a message arrives (paper, 3.7). *)
                charge_act t a t.core.Core_model.trap_cycles (fun () ->
                    a.st <- Blocked_recv;
                    a.wait_eps <- eps;
                    a.resume <- Some (fun () -> recv_loop t a ?deadline eps k);
                    arm_recv_deadline t a ?deadline ();
                    mux_instant t "block";
                    note_run_end t a ~why:"block";
                    t.current <- None;
                    schedule_dispatch t)
              else begin
                (* Nothing else to run: poll the vDTU (paper, 3.7).  The
                   wait is not charged to the activity's accounting
                   bucket: it is idle occupancy, not attributable work. *)
                Stats.Counter.incr t.counters "poll";
                a.st <- Polling;
                a.wait_eps <- eps;
                a.resume <- Some (fun () -> recv_loop t a ?deadline eps k);
                arm_recv_deadline t a ?deadline ()
              end
          | M3x_mode ->
              if Hashtbl.length t.acts = 1 then begin
                (* Sole activity on the tile: the core sleeps and the DTU
                   wakes it on message arrival, without the controller —
                   M3x retains the fast path while the recipient is
                   running (paper, section 2.2). *)
                Stats.Counter.incr t.counters "poll";
                a.st <- Polling;
                a.wait_eps <- eps;
                a.resume <- Some (fun () -> recv_loop t a eps k)
              end
              else begin
                Stats.Counter.incr t.counters "mx_block";
                a.st <- Blocked_recv;
                a.wait_eps <- eps;
                a.resume <- Some (fun () -> recv_loop t a eps k);
                send_ctl t a Proto.Mx_block ~k:(fun () -> ())
              end))

(* Wake a deadlined receiver if nothing arrived in time.  The token
   pins the timer to this particular wait: any resume bumps it, turning
   stale timers into no-ops.  On expiry the stored resume re-runs
   [recv_loop], which re-checks the endpoints (a message that raced the
   deadline still wins) before resolving to [R_recv_timeout]. *)
and arm_recv_deadline t (a : arec) ?deadline () =
  match deadline with
  | None -> ()
  | Some d ->
      let token = a.wait_token and aid = a.aid in
      let delay = max 0 (Time.sub d (Engine.now t.engine)) in
      Engine.after t.engine ~delay (fun () ->
          match Hashtbl.find_opt t.acts aid with
          | Some a when a.wait_token = token -> (
              match a.st with
              | Blocked_recv ->
                  make_ready t a;
                  schedule_dispatch t
              | Polling when t.current = Some aid ->
                  Stats.Counter.incr t.counters "poll_wake";
                  a.st <- Running;
                  arm_watchdog t a;
                  charge_act t a (2 * t.core.Core_model.mmio_cycles) (fun () ->
                      resume_act t a)
              | Ready | Running | Stalled | Blocked_fault | Polling
              | Migrating | Dead ->
                  ())
          | Some _ | None -> ())

and do_send t (a : arec) ~ep ~reply_ep ~vaddr ~size ~data ~k =
  (* Captured before the MMIO charge so the flow's sender-command segment
     covers command overhead and any credit-stall spins. *)
  let issue_ts = Engine.now t.engine in
  charge_act t a (Core_model.cmd_overhead_cycles t.core) (fun () ->
      let rec attempt () =
        a.st <- Stalled;
        note_stall_start a ~now:(Engine.now t.engine);
        Dtu.send t.dtu ~ep ?reply_ep ?src_vaddr:vaddr ~issue_ts ~msg_size:size
          data
          ~k:(fun result ->
            note_stall_end t a ~now:(Engine.now t.engine);
            a.st <- Running;
            match result with
            | Ok () -> k Proc.Unit
            | Error (Translation_fault vpage) ->
                tm_translate t a ~vpage ~write:false ~k:attempt
            | Error No_credits ->
                (* Out of credits: spin until the receiver acknowledges. *)
                Engine.after t.engine ~delay:(Time.us 2) attempt
            | Error Recv_gone when t.rmode = M3x_mode ->
                mx_slow_send t a ~ep ~reply_ep ~size ~data ~k:(fun () -> k Proc.Unit)
            | Error (Recv_gone | Timeout) when t.rmode = M3v_mode && Fault.on () ->
                (* The peer died or the wire gave up: EOF semantics — the
                   send is dropped and the program carries on (it observes
                   the failure at the protocol level, e.g. a reply
                   deadline). *)
                Stats.Counter.incr t.counters "send_eof";
                mux_instant t "send_eof";
                k Proc.Unit
            | Error e ->
                failwith ("Runtime: send failed: " ^ Dtu_types.error_to_string e))
      in
      attempt ())

and do_reply t (a : arec) ~recv_ep ~msg ~vaddr ~size ~data ~k =
  let issue_ts = Engine.now t.engine in
  charge_act t a (Core_model.cmd_overhead_cycles t.core) (fun () ->
      let rec attempt () =
        a.st <- Stalled;
        note_stall_start a ~now:(Engine.now t.engine);
        Dtu.reply t.dtu ~recv_ep ~to_msg:msg ?src_vaddr:vaddr ~issue_ts
          ~msg_size:size data
          ~k:(fun result ->
            note_stall_end t a ~now:(Engine.now t.engine);
            a.st <- Running;
            match result with
            | Ok () -> k Proc.Unit
            | Error (Translation_fault vpage) ->
                tm_translate t a ~vpage ~write:false ~k:attempt
            | Error Recv_gone when t.rmode = M3x_mode ->
                mx_slow_reply t a ~to_msg:msg ~size ~data ~k:(fun () -> k Proc.Unit)
            | Error (Recv_gone | Timeout) when t.rmode = M3v_mode && Fault.on () ->
                (* Replying to a dead client: drop it (EOF semantics). *)
                Stats.Counter.incr t.counters "send_eof";
                mux_instant t "send_eof";
                k Proc.Unit
            | Error e ->
                failwith ("Runtime: reply failed: " ^ Dtu_types.error_to_string e))
      in
      attempt ())

and do_dma t (a : arec) ~write ~ep ~off ~len ~vaddr ~buf ~buf_off ~k =
  charge_act t a (Core_model.cmd_overhead_cycles t.core) (fun () ->
      let rec attempt () =
        a.st <- Stalled;
        note_stall_start a ~now:(Engine.now t.engine);
        let complete result =
          note_stall_end t a ~now:(Engine.now t.engine);
          a.st <- Running;
          match result with
          | Ok () -> k Proc.Unit
          | Error (Translation_fault vpage) ->
              tm_translate t a ~vpage ~write:(not write) ~k:attempt
          | Error Timeout ->
              (* The DTU's retransmit ladder gave up on this transfer;
                 reissue the whole (idempotent) command. *)
              attempt ()
          | Error e ->
              failwith
                (Printf.sprintf
                   "Runtime: DMA %s failed on tile %d (act %s, ep %d, off %#x, len %d): %s"
                   (if write then "write" else "read")
                   t.rtile a.aname ep off len
                   (Dtu_types.error_to_string e))
        in
        if write then
          Dtu.mem_write t.dtu ~ep ~off ~len ~src_vaddr:vaddr ~src:buf
            ~src_off:buf_off ~k:complete
        else
          Dtu.mem_read t.dtu ~ep ~off ~len ~dst_vaddr:vaddr ~dst:buf
            ~dst_off:buf_off ~k:complete
      in
      attempt ())

(* --- wakeups --- *)

let on_msg_arrived t owner =
  match Hashtbl.find_opt t.acts owner with
  | None -> ()
  | Some a ->
      if t.current = Some owner && a.st = Polling then begin
        Stats.Counter.incr t.counters "poll_wake";
        mux_instant t "wake";
        a.st <- Running;
        arm_watchdog t a;
        (* Detecting the message costs a couple of MMIO reads. *)
        charge_act t a (2 * t.core.Core_model.mmio_cycles) (fun () ->
            resume_act t a)
      end
      else if
        t.rmode = M3x_mode && a.st = Blocked_recv && t.current = Some owner
        && not a.wake_sent
      then begin
        a.wake_sent <- true;
        send_ctl t a Proto.Mx_wake ~k:(fun () -> ())
      end

let on_core_req_irq t =
  match t.current with
  | None -> handle_core_reqs t ~k:(fun () -> schedule_dispatch t)
  | Some aid -> (
      let a = find t aid in
      match a.st with
      | Polling ->
          (* The poller is interruptible; if the interrupt readied another
             activity, the poller goes back to blocking and we switch. *)
          handle_core_reqs t ~k:(fun () ->
              if others_ready t && a.st = Polling then begin
                a.st <- Blocked_recv;
                note_run_end t a ~why:"irq";
                t.current <- None;
                schedule_dispatch t
              end)
      | Running | Stalled | Ready | Blocked_recv | Blocked_fault | Migrating
      | Dead ->
          t.irq_pending <- true)

(* --- crash recovery: restart a dead service activity --- *)

(* Re-run a dead activity's program from the top on the same activity id.
   Its endpoints, capabilities and address space are untouched — service
   programs capture their gates by reference, so requests already sitting
   in the receive gate are processed after the restart.  Invoked by the
   controller's restart policy. *)
let respawn t ~act =
  let a = find t act in
  if a.st <> Dead then
    invalid_arg
      (Printf.sprintf "Runtime.respawn: activity %s is not dead" a.aname);
  a.st <- Ready;
  a.resume <- None;
  a.wait_eps <- [];
  a.slice_left <- t.timeslice;
  a.started <- false;
  a.wake_sent <- false;
  a.wait_token <- a.wait_token + 1;
  Stats.Counter.incr t.counters "respawn";
  mux_instant t "respawn";
  Queue.add a.aid t.runq;
  if t.rmode = M3v_mode then schedule_dispatch t

(* --- migration stub (M3v) --- *)

let mig_quiesce t ~act ~k =
  match Hashtbl.find_opt t.acts act with
  | None -> k None
  | Some a -> (
      match a.st with
      | Dead -> k None
      | (Blocked_recv | Ready) when not a.started ->
          (* Never ran: nothing to park beyond the program itself. *)
          a.mig_park <- Some k;
          mig_park_now t a None
      | Blocked_recv | Polling ->
          (* Blocked inside a receive that consumed nothing: park the
             recorded [Op_recv] action and replay it on the target. *)
          a.mig_park <- Some k;
          mig_park_now t a a.cur_action
      | Ready | Running | Stalled | Blocked_fault | Migrating ->
          (* Mid-op (or mid-pager-round-trip): park at the next TMCall
             boundary the interpreter reaches. *)
          a.mig_park <- Some k)

let mig_install t ~image ~sys_sgate ~sys_rgate =
  match image with
  | Image
      {
        im_aid;
        im_name;
        im_program;
        im_premap;
        im_addr;
        im_action;
        im_started;
        im_busy_ps;
        im_bucket;
      } ->
      let env = { Act_api.aid = im_aid; tile = t.rtile; sys_sgate; sys_rgate } in
      let a =
        {
          aid = im_aid;
          aname = im_name;
          env;
          program = im_program;
          premap = im_premap;
          addr = im_addr;
          st = Migrating;
          resume = None;
          wait_eps = [];
          slice_left = t.timeslice;
          busy_ps = im_busy_ps;
          bucket = im_bucket;
          started = im_started;
          wake_sent = false;
          stall_since = Time.zero;
          wait_token = 0;
          cur_action = im_action;
          mig_park = None;
          mig_action = im_action;
        }
      in
      Hashtbl.replace t.acts im_aid a;
      t.spawn_order <- t.spawn_order @ [ im_aid ];
      Stats.Counter.incr t.counters "mig_install";
      mux_instant t "mig_install"
  | _ -> invalid_arg "Runtime: foreign migration image"

let mig_resume t ~act =
  let a = find t act in
  if a.st <> Migrating then
    invalid_arg
      (Printf.sprintf "Runtime.mig_resume: activity %s is not parked" a.aname);
  a.st <- Ready;
  Queue.add a.aid t.runq;
  Stats.Counter.incr t.counters "mig_resume";
  mux_instant t "mig_resume";
  if t.rmode = M3v_mode then schedule_dispatch t

let install_mig_stub t =
  Controller.register_mig_stub t.ctrl ~tile:t.rtile
    {
      Controller.mig_quiesce = (fun ~act ~k -> mig_quiesce t ~act ~k);
      mig_install =
        (fun ~image ~sys_sgate ~sys_rgate ->
          mig_install t ~image ~sys_sgate ~sys_rgate);
      mig_resume = (fun ~act -> mig_resume t ~act);
    }

(* --- M3x stub --- *)

let mx_resume_act t (a : arec) =
  a.wake_sent <- false;
  if not a.started then begin
    a.started <- true;
    a.st <- Running;
    exec t a (Proc.run (a.program a.env))
  end
  else begin
    a.st <- Running;
    match a.resume with
    | Some f ->
        a.resume <- None;
        f ()
    | None -> ()
  end

let install_mx_stub t =
  let stub =
    {
      Controller.mx_save =
        (fun ~k ->
          charge_mux t (t.core.Core_model.ctx_switch_cycles / 2) (fun () ->
              (match t.current with
              | Some aid -> note_run_end t (find t aid) ~why:"mx_save"
              | None -> ());
              t.current <- None;
              k ()));
      Controller.mx_restore =
        (fun aid ~k ->
          let a = find t aid in
          if t.current = Some aid then
            (* Light resume: the activity's endpoints are already live. *)
            charge_mux t t.core.Core_model.trap_cycles (fun () ->
                mx_resume_act t a;
                k ())
          else begin
            Stats.Counter.incr t.counters "ctx_switch";
            mux_instant t "ctx_switch";
            charge_mux t (t.core.Core_model.ctx_switch_cycles / 2) (fun () ->
                t.current <- Some aid;
                note_run_start t;
                mx_resume_act t a;
                k ())
          end);
    }
  in
  Controller.register_mx_stub t.ctrl ~tile:t.rtile stub

(* --- construction --- *)

let create ~mode ~controller ~tile ?(timeslice = Time.ms 1) () =
  let platform = Controller.platform controller in
  let engine = Platform.engine platform in
  let dtu = Platform.dtu platform tile in
  let core = Platform.core_exn platform tile in
  let tm_rgate =
    match mode with
    | M3v_mode ->
        let ep = Controller.host_alloc_ep_anon controller ~tile in
        Dtu.ext_config dtu ~ep ~owner:tilemux_act
          (Ep.recv_config ~slots:16 ~slot_size:256 ());
        Controller.register_tm_rgate controller ~tile ~ep;
        ep
    | M3x_mode -> -1
  in
  let t =
    {
      rmode = mode;
      rtile = tile;
      engine;
      dtu;
      core;
      ctrl = controller;
      timeslice;
      acts = Hashtbl.create 8;
      spawn_order = [];
      runq = Queue.create ();
      current = None;
      irq_pending = false;
      dispatch_pending = false;
      in_mux = false;
      tm_rgate;
      pager_sgate = None;
      tm_cont = None;
      tm_queue = Queue.create ();
      next_ppage = 0x1000;
      counters = Stats.Counter.create ();
      mux_busy_ps = 0;
      run_since = Time.zero;
      wd_epoch = 0;
    }
  in
  Dtu.set_msg_arrived dtu (fun owner -> on_msg_arrived t owner);
  Dtu.set_core_req_irq dtu (fun () -> on_core_req_irq t);
  (match mode with
  | M3x_mode -> install_mx_stub t
  | M3v_mode ->
      Controller.register_restart_hook controller ~tile (fun act ->
          respawn t ~act);
      install_mig_stub t);
  t

let spawn t ~name ?(premap = true) ~program () =
  if t.rmode = M3x_mode && not premap then
    invalid_arg "Runtime.spawn: M3x supports only eagerly-mapped activities";
  let aid = Controller.host_new_act t.ctrl ~tile:t.rtile ~name in
  let sys_sgate, sys_rgate = Controller.host_setup_syscall_channel t.ctrl ~act:aid in
  let env = { Act_api.aid; tile = t.rtile; sys_sgate; sys_rgate } in
  let a =
    {
      aid;
      aname = name;
      env;
      program;
      premap;
      addr = Addrspace.create ();
      st = Blocked_recv;
      resume = None;
      wait_eps = [];
      slice_left = t.timeslice;
      busy_ps = 0;
      bucket = "user";
      started = false;
      wake_sent = false;
      stall_since = Time.zero;
      wait_token = 0;
      cur_action = None;
      mig_park = None;
      mig_action = None;
    }
  in
  Hashtbl.replace t.acts aid a;
  t.spawn_order <- t.spawn_order @ [ aid ];
  (aid, env)

let set_pager_sgate t ep = t.pager_sgate <- Some ep

let boot t =
  match t.rmode with
  | M3v_mode ->
      List.iter
        (fun aid ->
          let a = find t aid in
          if a.st = Blocked_recv && not a.started then begin
            a.st <- Ready;
            Queue.add aid t.runq
          end)
        t.spawn_order;
      schedule_dispatch t
  | M3x_mode ->
      List.iter
        (fun aid -> Controller.mx_register_act t.ctrl ~act:aid)
        t.spawn_order;
      Controller.mx_kick t.ctrl ~tile:t.rtile
