type buf = { vaddr : int; data : bytes }

type M3v_sim.Proc.op +=
  | Op_compute of int
  | Op_send of {
      s_ep : int;
      s_reply_ep : int option;
      s_vaddr : int option;
      s_size : int;
      s_data : M3v_dtu.Msg.data;
    }
  | Op_recv of { r_eps : int list; r_timeout : M3v_sim.Time.t option }
  | Op_try_recv of { tr_eps : int list }
  | Op_reply of {
      rp_recv_ep : int;
      rp_msg : M3v_dtu.Msg.t;
      rp_vaddr : int option;
      rp_size : int;
      rp_data : M3v_dtu.Msg.data;
    }
  | Op_ack of { a_ep : int; a_msg : M3v_dtu.Msg.t }
  | Op_mem_read of {
      mr_ep : int;
      mr_off : int;
      mr_len : int;
      mr_vaddr : int option;
      mr_dst : bytes;
      mr_dst_off : int;
    }
  | Op_mem_write of {
      mw_ep : int;
      mw_off : int;
      mw_len : int;
      mw_vaddr : int option;
      mw_src : bytes;
      mw_src_off : int;
    }
  | Op_memcpy of int
  | Op_sleep of M3v_sim.Time.t
  | Op_yield
  | Op_now
  | Op_alloc_buf of int
  | Op_touch of { t_vaddr : int; t_len : int; t_write : bool }
  | Op_acct of string
  | Op_log of string
  | Op_exit of int

type M3v_sim.Proc.resp +=
  | R_msg of int * M3v_dtu.Msg.t
  | R_msg_opt of (int * M3v_dtu.Msg.t) option
  | R_recv_timeout
  | R_time of M3v_sim.Time.t
  | R_vaddr of int

let () =
  M3v_sim.Checkpoint.register_exts
    [
      [%extension_constructor Op_compute];
      [%extension_constructor Op_send];
      [%extension_constructor Op_recv];
      [%extension_constructor Op_try_recv];
      [%extension_constructor Op_reply];
      [%extension_constructor Op_ack];
      [%extension_constructor Op_mem_read];
      [%extension_constructor Op_mem_write];
      [%extension_constructor Op_memcpy];
      [%extension_constructor Op_sleep];
      [%extension_constructor Op_yield];
      [%extension_constructor Op_now];
      [%extension_constructor Op_alloc_buf];
      [%extension_constructor Op_touch];
      [%extension_constructor Op_acct];
      [%extension_constructor Op_log];
      [%extension_constructor Op_exit];
      [%extension_constructor R_msg];
      [%extension_constructor R_msg_opt];
      [%extension_constructor R_recv_timeout];
      [%extension_constructor R_time];
      [%extension_constructor R_vaddr];
    ]
