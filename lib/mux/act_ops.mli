(** The primitive operations activity code can request from its runtime.

    Activity, service, and benchmark programs are [Proc] processes over
    these operations.  The same programs run unchanged on the M3v runtime
    (TileMux + vDTU), the M3x runtime (remote multiplexing), and — for the
    POSIX-level subset exposed through the libc shim — the Linux model;
    this is the paper's "transparent multiplexing" property at the source
    level. *)

(** A buffer in the activity's address space: real bytes plus the virtual
    address the vDTU sees (for TLB checks and demand paging). *)
type buf = { vaddr : int; data : bytes }

type M3v_sim.Proc.op +=
  | Op_compute of int  (** burn N core cycles *)
  | Op_send of {
      s_ep : int;
      s_reply_ep : int option;
      s_vaddr : int option;
      s_size : int;
      s_data : M3v_dtu.Msg.data;
    }
  | Op_recv of { r_eps : int list; r_timeout : M3v_sim.Time.t option }
      (** fetch next message or block; with a timeout (relative, M3v mode
          only) the wait resolves to [R_recv_timeout] if nothing arrived *)
  | Op_try_recv of { tr_eps : int list }
  | Op_reply of {
      rp_recv_ep : int;
      rp_msg : M3v_dtu.Msg.t;
      rp_vaddr : int option;
      rp_size : int;
      rp_data : M3v_dtu.Msg.data;
    }
  | Op_ack of { a_ep : int; a_msg : M3v_dtu.Msg.t }
  | Op_mem_read of {
      mr_ep : int;
      mr_off : int;
      mr_len : int;
      mr_vaddr : int option;
      mr_dst : bytes;
      mr_dst_off : int;
    }
  | Op_mem_write of {
      mw_ep : int;
      mw_off : int;
      mw_len : int;
      mw_vaddr : int option;
      mw_src : bytes;
      mw_src_off : int;
    }
  | Op_memcpy of int  (** charge a software copy of N bytes *)
  | Op_sleep of M3v_sim.Time.t
      (** block until the (relative) deadline; the tile runs others
          meanwhile.  M3v mode only. *)
  | Op_yield
  | Op_now
  | Op_alloc_buf of int  (** reserve a virtual region of N bytes *)
  | Op_touch of { t_vaddr : int; t_len : int; t_write : bool }
      (** touch pages with the core (page faults on unmapped pages) *)
  | Op_acct of string  (** switch the accounting bucket of charged time *)
  | Op_log of string
  | Op_exit of int  (** finish the activity with this exit code *)

type M3v_sim.Proc.resp +=
  | R_msg of int * M3v_dtu.Msg.t  (** endpoint it arrived on, message *)
  | R_msg_opt of (int * M3v_dtu.Msg.t) option
  | R_recv_timeout  (** a deadlined [Op_recv] expired with no message *)
  | R_time of M3v_sim.Time.t
  | R_vaddr of int
