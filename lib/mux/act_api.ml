open M3v_sim
open Act_ops
module Proto = M3v_kernel.Protocol

type env = {
  aid : M3v_dtu.Dtu_types.act_id;
  tile : int;
  sys_sgate : int;
  sys_rgate : int;
}

let decode_unit what = function
  | Proc.Unit -> ()
  | r -> Proc.decode_error what r

let decode_msg what = function
  | R_msg (ep, m) -> (ep, m)
  | r -> Proc.decode_error what r

let decode_msg_opt what = function
  | R_msg_opt m -> m
  | r -> Proc.decode_error what r

let compute cycles =
  if cycles = 0 then Proc.return ()
  else Proc.perform (Op_compute cycles) (decode_unit "compute")

let send ~ep ?reply_ep ?vaddr ~size data =
  Proc.perform
    (Op_send { s_ep = ep; s_reply_ep = reply_ep; s_vaddr = vaddr; s_size = size; s_data = data })
    (decode_unit "send")

let recv ~eps =
  Proc.perform (Op_recv { r_eps = eps; r_timeout = None }) (decode_msg "recv")

(* Like [recv] but gives up after [timeout]: [None] means nothing arrived
   (used by service clients to survive a crashed or wedged server). *)
let recv_timeout ~eps ~timeout =
  Proc.perform
    (Op_recv { r_eps = eps; r_timeout = Some timeout })
    (function
      | R_msg (ep, m) -> Some (ep, m)
      | R_recv_timeout -> None
      | r -> Proc.decode_error "recv_timeout" r)
let try_recv ~eps = Proc.perform (Op_try_recv { tr_eps = eps }) (decode_msg_opt "try_recv")

let sleep d =
  if d <= 0 then Proc.return ()
  else Proc.perform (Op_sleep d) (decode_unit "sleep")

let reply ~recv_ep ~msg ?vaddr ~size data =
  Proc.perform
    (Op_reply
       { rp_recv_ep = recv_ep; rp_msg = msg; rp_vaddr = vaddr; rp_size = size; rp_data = data })
    (decode_unit "reply")

let ack ~ep msg = Proc.perform (Op_ack { a_ep = ep; a_msg = msg }) (decode_unit "ack")

let mem_read ~ep ~off ~len ?vaddr ~dst ?(dst_off = 0) () =
  Proc.perform
    (Op_mem_read
       { mr_ep = ep; mr_off = off; mr_len = len; mr_vaddr = vaddr; mr_dst = dst; mr_dst_off = dst_off })
    (decode_unit "mem_read")

let mem_write ~ep ~off ~len ?vaddr ~src ?(src_off = 0) () =
  Proc.perform
    (Op_mem_write
       { mw_ep = ep; mw_off = off; mw_len = len; mw_vaddr = vaddr; mw_src = src; mw_src_off = src_off })
    (decode_unit "mem_write")

let memcpy bytes =
  if bytes = 0 then Proc.return ()
  else Proc.perform (Op_memcpy bytes) (decode_unit "memcpy")

let yield = Proc.perform Op_yield (decode_unit "yield")

let now =
  Proc.perform Op_now (function R_time t -> t | r -> Proc.decode_error "now" r)

let alloc_buf size =
  Proc.perform (Op_alloc_buf size) (function
    | R_vaddr vaddr -> { vaddr; data = Bytes.create size }
    | r -> Proc.decode_error "alloc_buf" r)

let touch ?(off = 0) ?len ~write buf =
  let len = match len with Some l -> l | None -> Bytes.length buf.data - off in
  Proc.perform
    (Op_touch { t_vaddr = buf.vaddr + off; t_len = len; t_write = write })
    (decode_unit "touch")

let acct bucket = Proc.perform (Op_acct bucket) (decode_unit "acct")
let log msg = Proc.perform (Op_log msg) (decode_unit "log")

(* Finish the activity immediately with [code] (reported to the
   controller, like a process exit status).  The continuation never
   runs. *)
let exit_with code : unit Proc.t =
 fun _k -> Proc.Request (Op_exit code, fun _ -> Proc.Finished)

let call ~sgate ~reply_ep ?vaddr ~size data =
  let open Proc.Syntax in
  let* () = send ~ep:sgate ~reply_ep ?vaddr ~size data in
  let* _ep, msg = recv ~eps:[ reply_ep ] in
  let* () = ack ~ep:reply_ep msg in
  Proc.return msg

(* RPC with a reply deadline: [None] if the reply did not arrive in time
   (the request may or may not have been processed). *)
let call_timeout ~sgate ~reply_ep ?vaddr ~size ~timeout data =
  let open Proc.Syntax in
  let* () = send ~ep:sgate ~reply_ep ?vaddr ~size data in
  let* r = recv_timeout ~eps:[ reply_ep ] ~timeout in
  match r with
  | None -> Proc.return None
  | Some (_ep, msg) ->
      let* () = ack ~ep:reply_ep msg in
      Proc.return (Some msg)

let syscall env req =
  let open Proc.Syntax in
  let* msg =
    call ~sgate:env.sys_sgate ~reply_ep:env.sys_rgate
      ~size:(Proto.sys_req_size req) (Proto.Sys req)
  in
  match msg.M3v_dtu.Msg.data with
  | Proto.Sys_reply rep -> Proc.return rep
  | _ -> failwith "Act_api.syscall: malformed controller reply"

let syscall_exn env req =
  let open Proc.Syntax in
  let* rep = syscall env req in
  match rep with
  | Proto.Sys_err e ->
      failwith
        (Format.asprintf "syscall %a failed: %s" Proto.pp_sys_req req e)
  | rep -> Proc.return rep
