module Rng = M3v_sim.Rng

type op =
  | Read of string
  | Insert of string * bytes
  | Update of string * bytes
  | Scan of string * int

type workload = Read_heavy | Insert_heavy | Update_heavy | Scan_heavy | Mixed

let workload_name = function
  | Read_heavy -> "read"
  | Insert_heavy -> "insert"
  | Update_heavy -> "update"
  | Scan_heavy -> "scan"
  | Mixed -> "mixed"

let all_workloads = [ Read_heavy; Insert_heavy; Update_heavy; Mixed; Scan_heavy ]

let record_key i = Printf.sprintf "user%08d" i

let value_for rng ~size =
  Bytes.init size (fun _ -> Char.chr (Rng.int rng 256))

let load ~records ~value_size rng =
  List.init records (fun i -> (record_key i, value_for rng ~size:value_size))

module Zipf = M3v_load.Sampler.Zipf

(* Proportions per workload: (read, insert, update, scan) summing to 100. *)
let mix = function
  | Read_heavy -> (80, 10, 10, 0)
  | Insert_heavy -> (10, 80, 10, 0)
  | Update_heavy -> (10, 10, 80, 0)
  | Scan_heavy -> (10, 10, 0, 80)
  | Mixed -> (50, 10, 30, 10)

type op_tag = T_read | T_insert | T_update | T_scan

let ops workload ~records ~count ?(value_size = 1024) ?(scan_length = 20) rng =
  let zipf = Zipf.create ~n:records rng in
  let next_insert = ref records in
  let r, i, u, s = mix workload in
  (* Weights sum to 100, so each sample is one [Rng.int rng 100] walked
     through the cumulative thresholds in read-insert-update-scan order —
     the same dice stream this generator has always consumed. *)
  let tag_mix =
    M3v_load.Sampler.Mix.create
      [ (T_read, r); (T_insert, i); (T_update, u); (T_scan, s) ]
      rng
  in
  List.init count (fun _ ->
      match M3v_load.Sampler.Mix.sample tag_mix with
      | T_read -> Read (record_key (Zipf.sample zipf))
      | T_insert ->
          let key = record_key !next_insert in
          incr next_insert;
          Insert (key, value_for rng ~size:value_size)
      | T_update ->
          Update (record_key (Zipf.sample zipf), value_for rng ~size:value_size)
      | T_scan -> Scan (record_key (Zipf.sample zipf), scan_length))
