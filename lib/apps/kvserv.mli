(** A standing key-value RPC service over {!Kvstore}.

    One long-lived activity owns an LSM store and answers [Kv_req]
    messages forever on its receive gate — typically an MPMC gate so many
    load-harness drivers can fan in over a single server-side endpoint
    (the heavy fan-in shape the PR 7 MPMC endpoints exist for).  Replies
    go back through each message's reply capability, so the same server
    serves point-to-point and MPMC clients unchanged. *)

type req = Get of string | Put of string * bytes
type rep = Value of bytes option | Done | Failed of string

type M3v_dtu.Msg.data += Kv_req of req | Kv_rep of rep

(** Wire sizes for the timing model. *)
val req_size : req -> int

val rep_size : rep -> int

(** [program ~vfs ~rgate ()] is the server activity body.  [vfs] and
    [rgate] are boxes filled after spawn, before boot (the standard
    late-binding pattern).  The store lives under [dir] on the given
    filesystem.  [served], when provided, counts answered requests.
    The server never returns; a parked [recv] drains with the run. *)
val program :
  vfs:M3v_os.Vfs.t option ref ->
  rgate:int ref ->
  ?dir:string ->
  ?served:int ref ->
  unit ->
  M3v_mux.Act_api.env ->
  unit M3v_sim.Proc.t
