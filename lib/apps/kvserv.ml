open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Msg = M3v_dtu.Msg
module A = M3v_mux.Act_api

type req = Get of string | Put of string * bytes
type rep = Value of bytes option | Done | Failed of string

type M3v_dtu.Msg.data += Kv_req of req | Kv_rep of rep

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Kv_req]; [%extension_constructor Kv_rep] ]

let req_size = function
  | Get key -> 16 + String.length key
  | Put (key, value) -> 16 + String.length key + Bytes.length value

let rep_size = function
  | Value (Some v) -> 16 + Bytes.length v
  | Value None | Done -> 16
  | Failed e -> 16 + String.length e

let program ~vfs ~rgate ?(dir = "/kv") ?served () _env =
  let* store = Kvstore.create ~vfs:(Option.get !vfs) ~dir () in
  match store with
  | Error e -> failwith ("kvserv: store creation failed: " ^ e)
  | Ok store ->
      let rec serve () =
        let* ep, msg = A.recv ~eps:[ !rgate ] in
        let* rep =
          match msg.Msg.data with
          | Kv_req (Get key) ->
              let+ v = Kvstore.get store ~key in
              Value v
          | Kv_req (Put (key, value)) ->
              let+ () = Kvstore.put store ~key ~value in
              Done
          | _ -> Proc.return (Failed "unknown request")
        in
        let* () = A.reply ~recv_ep:ep ~msg ~size:(rep_size rep) (Kv_rep rep) in
        (match served with Some r -> incr r | None -> ());
        serve ()
      in
      serve ()
