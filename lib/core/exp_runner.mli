(** Entry points used by the CLI and the benchmark harness: run an
    experiment with paper-default parameters (pass [runs = 0] or
    [rounds <= 0] for the default) and print the table/figure.

    When [?trace] names a file, the experiment runs with a tracing sink
    installed: on completion a Chrome trace-event JSON file is written
    there and latency percentiles plus a per-tile event summary are
    printed (see {!M3v_obs}).

    When [?faults] names a {!M3v_fault.Fault.parse}-able spec (e.g.
    ["drop=0.01,dup=0.005,crash=2"]), the experiment runs under a
    deterministic fault plan seeded with [fault_seed] and the injection
    tally is printed at the end. *)

val fig6 :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> rounds:int -> unit -> unit

val fig7 :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> runs:int -> unit -> unit

val fig8 :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> runs:int -> unit -> unit

val fig9 :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> runs:int -> unit -> unit

val fig10 :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> runs:int -> unit -> unit

val voice :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> runs:int -> unit -> unit

(** Chaos soak ({!Exp_chaos}): fs + kv workloads on m3fs under fault
    injection, exercising DTU retransmit, the TileMux watchdog,
    controller crash recovery and client RPC deadlines.  [faults]
    defaults to {!Exp_chaos.default_spec}; [rounds]/[ops] <= 0 pick the
    experiment defaults. *)
val chaos :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> rounds:int -> ops:int ->
  unit -> unit
val table1 : ?trace:string -> unit -> unit
val complexity : unit -> unit

(** Ablation studies for the design decisions (extent cap, TLB size,
    topology, M3x endpoint state). *)
val ablations : ?trace:string -> unit -> unit

(** Everything, in the paper's evaluation order. *)
val all : unit -> unit
