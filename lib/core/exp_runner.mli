(** Entry points used by the CLI and the benchmark harness: run an
    experiment with paper-default parameters (pass [runs = 0] or
    [rounds <= 0] for the default) and print the table/figure.

    When [?trace] names a file, the experiment runs with a tracing sink
    installed: on completion a Chrome trace-event JSON file is written
    there and latency percentiles plus a per-tile event summary are
    printed (see {!M3v_obs}). *)

val fig6 : ?trace:string -> rounds:int -> unit -> unit
val fig7 : ?trace:string -> runs:int -> unit -> unit
val fig8 : ?trace:string -> runs:int -> unit -> unit
val fig9 : ?trace:string -> runs:int -> unit -> unit
val fig10 : ?trace:string -> runs:int -> unit -> unit
val voice : ?trace:string -> runs:int -> unit -> unit
val table1 : ?trace:string -> unit -> unit
val complexity : unit -> unit

(** Ablation studies for the design decisions (extent cap, TLB size,
    topology, M3x endpoint state). *)
val ablations : ?trace:string -> unit -> unit

(** Everything, in the paper's evaluation order. *)
val all : unit -> unit
