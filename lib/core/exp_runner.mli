(** Entry points used by the CLI and the benchmark harness: run an
    experiment with paper-default parameters (pass [runs = 0] or
    [rounds <= 0] for the default) and print the table/figure.

    When [?jobs] is given (CLI [--jobs], or the [M3V_JOBS] environment
    variable via the default), the experiment's independent units — bars,
    sweep points, seeds — fan out over a {!M3v_par.Par} Domain pool of
    that size.  Results are always merged in task-submission order, so
    parallel and sequential runs print byte-identical output.  Tracing or
    an ambient fault plan forces sequential execution: both are
    domain-local and cannot follow tasks onto worker domains.

    When [?trace] names a file, the experiment runs with a tracing sink
    installed: on completion a Chrome trace-event JSON file is written
    there and latency percentiles plus a per-tile event summary are
    printed (see {!M3v_obs}).

    When [?metrics] names a file, the experiment runs with a metrics
    registry installed: counters/gauges/histograms (credit stalls, TLB
    miss rate, receive-buffer occupancy, NoC link utilization, ...) are
    exported there as JSON and printed as text tables.  Unlike tracing,
    metrics do NOT force sequential execution — the pool shards the
    registry per task and merges deterministically, so [--jobs 4] output
    is byte-identical to [--jobs 1].

    When [?faults] names a {!M3v_fault.Fault.parse}-able spec (e.g.
    ["drop=0.01,dup=0.005,crash=2"]), the experiment runs under a
    deterministic fault plan seeded with [fault_seed] and the injection
    tally is printed at the end.

    When [?shards] (> 0) is given on the experiments that support it, each
    point's System runs under the conservative-window sharded scheduler
    ({!System.create}); output is byte-identical to [shards:1] (asserted
    in tests and CI).  [shards <= 0] means "default" (unsharded).

    When [?telemetry] is [true], every multi-shard group created during
    the run records per-window telemetry ({!M3v_par.Telemetry}) and the
    merged analyzer report — per-shard imbalance, limiter attribution,
    critical-path speedup bound — prints to {e stderr} when the run
    ends.  Stdout is byte-identical with telemetry on or off: telemetry
    is a pure observer and its tables (which vary with the shard count
    and carry wall-clock times) stay in the side channel. *)

val fig6 :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?jobs:int -> rounds:int -> unit -> unit

val fig7 :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?jobs:int -> runs:int -> unit -> unit

val fig8 :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?jobs:int -> runs:int -> unit -> unit

val fig9 :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?telemetry:bool -> ?jobs:int -> ?shards:int -> runs:int -> unit -> unit

val fig10 :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?jobs:int -> runs:int -> unit -> unit

val voice :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?jobs:int -> runs:int -> unit -> unit

(** Fan-in ablation ({!Exp_fanin}): N senders -> 1 server throughput,
    shared MPMC receive endpoint vs per-sender endpoints.  [msgs <= 0]
    picks the default per-sender message count; an empty [senders] list
    picks the default sweep (4, 16, 64). *)
val fanin :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?jobs:int -> ?shards:int -> msgs:int -> senders:int list -> unit -> unit

(** Load harness ({!Exp_load}): client fleets at swept offered load over
    net + m3fs + the key-value service, with SLO tables, knee detection
    and bottleneck attribution.  Steps fan out over the pool; output is
    byte-identical across [--jobs] settings. *)
val load :
  ?trace:string -> ?metrics:string -> ?faults:string -> ?fault_seed:int ->
  ?telemetry:bool -> ?jobs:int -> ?shards:int -> cfg:Exp_load.config ->
  unit -> unit

(** Live-migration ablation ({!Exp_migrate}): downtime and exactly-once
    delivery vs message rate, swept clean and under a [mig_abort] fault
    plan.  [rounds] <= 0 and [rates = []] pick the defaults. *)
val migrate :
  ?trace:string -> ?metrics:string -> ?jobs:int -> ?seed:int ->
  rounds:int -> rates:int list -> unit -> unit

(** Chaos soak ({!Exp_chaos}): fs + kv workloads on m3fs under fault
    injection, exercising DTU retransmit, the TileMux watchdog,
    controller crash recovery and client RPC deadlines.  [faults]
    defaults to {!Exp_chaos.default_spec}; [rounds]/[ops] <= 0 pick the
    experiment defaults.  [seeds] > 1 soaks that many consecutive seeds
    starting at [fault_seed], fanned out over the pool.

    [checkpoint_every_ms > 0] checkpoints the whole simulator every that
    many simulated milliseconds to [checkpoint_file]; [stop_after > 0]
    abandons the run after the [n]-th checkpoint (report suppressed —
    resume to finish); [resume:file] continues a checkpointed run instead
    of starting one.  A resumed run's report is byte-identical to an
    uninterrupted run's.  Checkpointing is single-seed and incompatible
    with [trace]. *)
val chaos :
  ?trace:string -> ?faults:string -> ?fault_seed:int -> ?telemetry:bool ->
  ?jobs:int -> ?shards:int -> ?seeds:int -> ?checkpoint_every_ms:int ->
  ?checkpoint_file:string -> ?stop_after:int -> ?resume:string ->
  rounds:int -> ops:int -> unit -> unit

(** Shard sweep ({!Exp_shard}): partitioned-parallel scaling of a
    64-1024-tile clustered token-chain workload under the
    conservative-lookahead scheduler.  Every point runs sequentially and
    sharded and asserts identical results; wall-clock speedup goes to
    stderr.  [chains]/[hops]/[weight] <= 0 and [tiles = []] pick the
    defaults.  Unlike the System experiments, [?trace] does not force a
    sequential pool: the sweep itself never fans out tasks, and the
    scheduler falls back to inline windows under a sink on its own. *)
val shard_sweep :
  ?trace:string -> ?metrics:string -> ?telemetry:bool -> ?jobs:int ->
  ?shards:int -> ?seed:int -> chains:int -> hops:int -> weight:int ->
  tiles:int list -> unit -> unit

(** Shard report ({!Exp_shard.report}): one sharded run of the same
    workload with per-window telemetry always enabled, analyzed to
    stdout — per-shard imbalance, limiter attribution, critical-path
    speedup bound.  [?trace] writes the per-shard Chrome lanes (window
    spans and barrier gaps on wall-clock axes, one pid per shard) — not
    a simulation trace.  [tiles]/[chains]/[hops]/[weight] <= 0 pick the
    defaults. *)
val shard_report :
  ?jobs:int -> ?shards:int -> ?seed:int -> ?trace:string -> tiles:int ->
  chains:int -> hops:int -> weight:int -> unit -> unit

val table1 : ?trace:string -> unit -> unit
val complexity : unit -> unit

(** Ablation studies for the design decisions (extent cap, TLB size,
    topology, M3x endpoint state). *)
val ablations : ?trace:string -> ?jobs:int -> unit -> unit

(** Critical-path profiler: run [exp] (["fig6"] default; also
    [fig7|fig8|fig9|fig10|voice]) sequentially under a trace sink, then
    decompose each message flow's end-to-end latency into paper-aligned
    segments (sender command, NoC transit, mux scheduling delay,
    activity-switch cost, buffer wait, server compute, reply) with
    p50/p99 per segment.  Segments sum exactly (in simulated picoseconds)
    to the end-to-end latency.  [trace] additionally dumps the Chrome
    trace, [folded] a flamegraph-style folded-stack file of simulated-time
    spans, [metrics] the metrics registry JSON.  [rounds]/[runs] <= 0
    pick the experiment defaults. *)
val profile :
  ?exp:string -> ?trace:string -> ?folded:string -> ?metrics:string ->
  rounds:int -> runs:int -> unit -> unit

(** Everything, in the paper's evaluation order.  Whole experiments run as
    parallel tasks (and fan out internally); printing happens on the main
    domain in evaluation order. *)
val all : ?jobs:int -> unit -> unit
