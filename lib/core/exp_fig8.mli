(** Figure 8: UDP latency.

    1-byte packets echoed by a directly connected peer machine; 50
    repetitions after 5 warmup rounds, as in the paper.  Configurations:
    Linux (in-kernel stack, one core), M3v with the benchmark sharing the
    NIC tile with the net service ("shared"), and M3v with the benchmark
    on its own tile ("isolated"; not comparable to Linux per the paper). *)

type result = { bars : Exp_common.bar list (** microseconds *) }

val run : ?pool:M3v_par.Par.Pool.t -> ?runs:int -> ?warmup:int -> unit -> result
val print : result -> unit
