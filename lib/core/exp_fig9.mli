(** Figure 9: scalability of context-switch-heavy applications under tile
    multiplexing, M3x vs M3v.

    The gem5 configuration: 3 GHz out-of-order x86-64 cores, one
    traceplayer plus one m3fs instance per user tile (so every file-system
    call context-switches), traces of "find" (24 directories x 40 files)
    and "SQLite" (32 inserts + selects).  Throughput in application runs
    per second across 1..12 tiles, after one warmup run per tile.

    On M3v, switches are tile-local (TileMux), so throughput scales almost
    linearly.  On M3x every call takes the slow path through the single
    controller, which serializes remote endpoint save/restores — the
    system saturates around 50-95 runs/s regardless of tile count. *)

type point = {
  tiles : int;
  m3v_find : float option;
  m3x_find : float option;
  m3v_sqlite : float option;
  m3x_sqlite : float option;
}

type result = { points : point list }

(** [shards] runs every point's System under the sharded scheduler
    ({!System.create}); output is byte-identical to [shards:1]. *)
val run :
  ?pool:M3v_par.Par.Pool.t -> ?shards:int -> ?runs:int -> ?warmup:int ->
  ?tile_counts:int list -> unit -> result
val print : result -> unit

(** Throughput of one configuration (exposed for tests/calibration). *)
val throughput :
  ?shards:int -> variant:System.variant -> trace:M3v_apps.Trace.t ->
  tiles:int -> runs:int -> warmup:int -> unit -> float
