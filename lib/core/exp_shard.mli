(** Partitioned-parallel scaling experiment: a 64-1024-tile clustered
    token-chain workload on the conservative-lookahead sharded scheduler
    ({!M3v_par.Shard}).

    Tiles form clusters of 16 (islands of a hierarchical NoC: 25 ns
    intra-cluster, 72.5 ns inter-cluster); shards are contiguous blocks of
    whole clusters, so every cross-shard message is inter-cluster and the
    scheduler's lookahead is the full inter-cluster minimum latency.

    Every point runs {e twice} — shards = 1 sequentially, then shards = K
    on the pool — and compares makespan, checksum and event count, so the
    printed report itself asserts the partitioning changed nothing.
    Stdout is byte-identical across shard and job counts; wall-clock
    timings and scheduler counters go to stderr via
    {!M3v_par.Par.progress}. *)

type point = {
  p_tiles : int;
  p_clusters : int;
  p_shards : int;  (** effective shard count (clamped to cluster count) *)
  p_chains : int;
  p_hops : int;
  p_events : int;
  p_makespan : M3v_sim.Time.t;
  p_checksum : int;
  p_match : bool;  (** sharded run identical to sequential run *)
  p_wall_seq : float;  (** wall seconds, sequential reference run *)
  p_wall_par : float;  (** wall seconds, sharded run on the pool *)
}

type result = { points : point list; jobs : int }

(** [run ~pool ~shards ~tile_counts ()] sweeps the tile counts.
    [chains_per_tile] (default 4) and [hops] (default 32) size the
    workload; [weight] (default 512) is the rounds of deterministic hash
    churn per served hop — the CPU weight of one event. *)
val run :
  ?pool:M3v_par.Par.Pool.t ->
  ?shards:int ->
  ?chains_per_tile:int ->
  ?hops:int ->
  ?weight:int ->
  ?seed:int ->
  ?tile_counts:int list ->
  unit ->
  result

(** One sweep point (exposed for tests and the bench harness).
    [progress] (default [true]) prints the wall-clock/speedup line to
    stderr; benchmarks that call this in a hot loop pass [false].
    [telemetry] (default [false]) enables per-window telemetry on the
    sharded run — a pure observer, so the point's results are unchanged
    (asserted by tests); the bench harness uses it to price recording
    overhead. *)
val run_point :
  ?progress:bool ->
  ?telemetry:bool ->
  pool:M3v_par.Par.Pool.t ->
  tiles:int ->
  shards:int ->
  chains_per_tile:int ->
  hops:int ->
  weight:int ->
  seed:int ->
  unit ->
  point

val print : result -> unit

(** {1 shard-report}: one sharded run with telemetry enabled, analyzed
    (per-shard imbalance, limiter attribution, critical-path speedup
    bound).  No sequential reference run — the speedup bound comes from
    the telemetry critical path. *)

type run_result = {
  r_makespan : M3v_sim.Time.t;
  r_checksum : int;
  r_events : int;
  r_stats : M3v_par.Shard.stats;
}

type report = {
  rep_tiles : int;
  rep_shards : int;  (** effective shard count (clamped to clusters) *)
  rep_jobs : int;
  rep_result : run_result;
  rep_wall : float;
  rep_telemetry : M3v_par.Telemetry.t;
}

val report :
  ?pool:M3v_par.Par.Pool.t ->
  ?tiles:int ->
  ?shards:int ->
  ?chains_per_tile:int ->
  ?hops:int ->
  ?weight:int ->
  ?seed:int ->
  ?cap:int ->
  unit ->
  report

(** Print the run header to stdout, then the {!M3v_par.Telemetry.pp}
    analyzer tables.  Simulated results are deterministic; wall-clock
    fields are not (they live only in this report). *)
val print_report : report -> unit
