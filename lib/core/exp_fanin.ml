(* Fan-in ablation: N senders target one server, comparing a shared MPMC
   receive endpoint (one capability delegated to every sender, batched
   ack/credit refunds, coalesced doorbells) against the classic
   per-sender layout (one private receive gate and one ack round trip per
   message).  Per-sender endpoints burn an endpoint slot and a full ack
   command per message, which is exactly the scaling bottleneck the
   shared queue removes. *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Controller = M3v_kernel.Controller
module Par = M3v_par.Par

type mode = Per_sender | Mpmc

type point = {
  senders : int;
  per_sender : float;  (** aggregate msgs/s through private receive gates *)
  mpmc : float;  (** aggregate msgs/s through the shared MPMC gate *)
}

type result = { msgs_per_sender : int; points : point list }

type Msg.data += Fan_ping

let () =
  M3v_sim.Checkpoint.register_exts [ [%extension_constructor Fan_ping] ]

let msg_size = 64
let slot_size = 128 (* payload + 16-byte header per slot *)
let sender_credits = 4
let ack_batch = 8
let server_tile = 7
let sender_tiles = [| 1; 2; 3; 4; 5; 6 |]

(* One run: [senders] activities spread over the sender tiles each push
   [msgs] messages; the server drains and acks them all.  Throughput is
   messages over the server's busy interval. *)
let throughput ?shards ~mode ~senders ~msgs () =
  let sys = System.create ?shards ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let total = senders * msgs in
  let elapsed = ref Time.zero in
  let recv_eps = ref [] in
  let server, _ =
    System.spawn sys ~tile:server_tile ~name:"server" (fun _ ->
        let* t0 = A.now in
        let rec loop n =
          if n = 0 then Proc.return ()
          else
            let* ep, msg = A.recv ~eps:!recv_eps in
            let* () = A.ack ~ep msg in
            loop (n - 1)
        in
        let* () = loop total in
        let* t1 = A.now in
        elapsed := Time.sub t1 t0;
        Proc.return ())
  in
  let sgates = Array.make senders (-1) in
  let sender_aids =
    Array.init senders (fun i ->
        let tile = sender_tiles.(i mod Array.length sender_tiles) in
        let aid, _ =
          System.spawn sys ~tile ~name:(Printf.sprintf "sender%d" i) (fun _ ->
              Proc.repeat msgs (fun _ ->
                  A.send ~ep:sgates.(i) ~size:msg_size Fan_ping))
        in
        aid)
  in
  (match mode with
  | Mpmc ->
      (* One shared receive gate; every sender gets a send gate delegated
         against the same capability.  The ring is provisioned for the
         worst case (all credits in flight) so delivery never finds it
         full — the Virtual-Link credit-provisioning invariant. *)
      let rsel =
        Controller.host_new_mpmc_rgate ctrl ~act:server
          ~slots:(sender_credits * senders)
          ~slot_size ~ack_batch ()
      in
      let rep = Controller.host_activate ctrl ~act:server ~sel:rsel () in
      recv_eps := [ rep ];
      Array.iteri
        (fun i aid ->
          let ssel =
            Controller.host_new_sgate ctrl ~owner:aid ~rgate_of:server
              ~rgate_sel:rsel ~label:i ~credits:sender_credits ()
          in
          sgates.(i) <- Controller.host_activate ctrl ~act:aid ~sel:ssel ())
        sender_aids
  | Per_sender ->
      (* The classic layout: a private receive gate per sender. *)
      Array.iteri
        (fun i aid ->
          let rsel =
            Controller.host_new_rgate ctrl ~act:server ~slots:sender_credits
              ~slot_size
          in
          let rep = Controller.host_activate ctrl ~act:server ~sel:rsel () in
          recv_eps := !recv_eps @ [ rep ];
          let ssel =
            Controller.host_new_sgate ctrl ~owner:aid ~rgate_of:server
              ~rgate_sel:rsel ~label:i ~credits:sender_credits ()
          in
          sgates.(i) <- Controller.host_activate ctrl ~act:aid ~sel:ssel ())
        sender_aids);
  System.boot sys;
  ignore (System.run sys);
  if Time.to_s !elapsed <= 0.0 then 0.0
  else float_of_int total /. Time.to_s !elapsed

let run ?(pool = Par.Pool.sequential) ?shards ?(msgs = 50)
    ?(sender_counts = [ 4; 16; 64 ]) () =
  (* One task per (mode, N) point; every [throughput] call builds its own
     System, so the points are independent and merging in submission order
     keeps the result byte-identical across --jobs settings. *)
  let combos =
    List.concat_map
      (fun senders -> [ (Per_sender, senders); (Mpmc, senders) ])
      sender_counts
  in
  let values =
    Par.map pool
      (fun (mode, senders) -> throughput ?shards ~mode ~senders ~msgs ())
      combos
  in
  let rec group counts values =
    match (counts, values) with
    | [], [] -> []
    | senders :: rest, ps :: mp :: more ->
        { senders; per_sender = ps; mpmc = mp } :: group rest more
    | _ -> assert false
  in
  { msgs_per_sender = msgs; points = group sender_counts values }

let print r =
  Format.printf
    "@.== Fan-in ablation: N senders -> 1 server (%d msgs/sender, %dB) ==@."
    r.msgs_per_sender msg_size;
  Format.printf "  %8s %18s %18s %10s@." "senders" "per-sender (msg/s)"
    "MPMC (msg/s)" "speedup";
  List.iter
    (fun p ->
      let speedup = if p.per_sender > 0.0 then p.mpmc /. p.per_sender else 0.0 in
      Format.printf "  %8d %18.0f %18.0f %9.2fx@." p.senders p.per_sender
        p.mpmc speedup)
    r.points
