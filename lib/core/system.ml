module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Platform = M3v_tile.Platform
module Controller = M3v_kernel.Controller
module Runtime = M3v_mux.Runtime
module Dtu = M3v_dtu.Dtu
module Ep = M3v_dtu.Ep

type variant = M3v | M3x

type channel = { sgate : int; rgate : int; reply_ep : int }

type t = {
  variant : variant;
  engine : Engine.t;
  (* When present, [engine] is shard 0 of this group and [run]/[run_while]
     go through the conservative-window scheduler.  A whole System is one
     causal region (kernel, controller and NoC link state are coupled), so
     it lives entirely on shard 0 and the remaining shards advertise
     infinite horizons — the scheduler then runs shard 0 unthrottled, and
     `--shards K` output is byte-identical to `--shards 1` by
     construction while still exercising the window machinery. *)
  sharded : unit M3v_par.Shard.t option;
  platform : Platform.t;
  ctrl : Controller.t;
  runtimes : (int, Runtime.t) Hashtbl.t;
}

let create ?spec ?topology ?noc_params ?tlb_capacity ?timeslice ?shards ~variant
    () =
  let spec = match spec with Some s -> s | None -> Platform.fpga_spec () in
  let sharded =
    match shards with
    | Some k when k > 1 ->
        let lookahead =
          M3v_noc.Noc.conservative_lookahead
            (match noc_params with
            | Some p -> p
            | None -> M3v_noc.Noc.default_params)
        in
        Some (M3v_par.Shard.create ~lookahead ~shards:k ())
    | _ -> None
  in
  let engine =
    match sharded with
    | Some group -> M3v_par.Shard.engine group 0
    | None -> Engine.create ()
  in
  (* No-op unless a trace sink is installed. *)
  M3v_obs.Hooks.attach_engine engine;
  let platform =
    Platform.create ?topology ?noc_params ?tlb_capacity
      ~virtualized:(variant = M3v) ~tiles:spec engine ()
  in
  let ctrl_tile = Platform.controller_tile platform in
  let mode = match variant with M3v -> Controller.M3v | M3x -> Controller.M3x in
  let ctrl = Controller.create ~mode ~platform ~tile:ctrl_tile () in
  let runtimes = Hashtbl.create 8 in
  let rmode =
    match variant with M3v -> Runtime.M3v_mode | M3x -> Runtime.M3x_mode
  in
  List.iter
    (fun tile ->
      Hashtbl.replace runtimes tile
        (Runtime.create ~mode:rmode ~controller:ctrl ~tile ?timeslice ()))
    (Platform.processing_tiles platform);
  { variant; engine; sharded; platform; ctrl; runtimes }

let variant t = t.variant
let engine t = t.engine
let shards t = match t.sharded with Some g -> M3v_par.Shard.shards g | None -> 1
let telemetry t = Option.bind t.sharded M3v_par.Shard.telemetry

let reregister_telemetry t =
  Option.iter M3v_par.Shard.reregister_telemetry t.sharded
let platform t = t.platform
let controller t = t.ctrl

let runtime t ~tile =
  match Hashtbl.find_opt t.runtimes tile with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "System.runtime: tile %d is not a processing tile" tile)

let spawn t ~tile ~name ?premap program =
  Runtime.spawn (runtime t ~tile) ~name ?premap ~program ()

let channel t ~src ~dst ?(slots = 8) ?(slot_size = 512) ?(credits = 4) ?label () =
  let label = match label with Some l -> l | None -> src in
  let rgate_sel =
    Controller.host_new_rgate t.ctrl ~act:dst ~slots ~slot_size
  in
  let rgate = Controller.host_activate t.ctrl ~act:dst ~sel:rgate_sel () in
  let sgate_sel =
    Controller.host_new_sgate t.ctrl ~owner:src ~rgate_of:dst ~rgate_sel ~label
      ~credits ()
  in
  let sgate = Controller.host_activate t.ctrl ~act:src ~sel:sgate_sel () in
  (* Reply gate on the sender's side, sized to match outstanding RPCs. *)
  let reply_sel =
    Controller.host_new_rgate t.ctrl ~act:src ~slots:credits ~slot_size
  in
  let reply_ep = Controller.host_activate t.ctrl ~act:src ~sel:reply_sel () in
  { sgate; rgate; reply_ep }

let mem_region t ~act ~size ~perm =
  let mem_tile, base = Controller.host_alloc_mem t.ctrl ~size in
  let sel = Controller.host_new_mgate t.ctrl ~act ~mem_tile ~base ~size ~perm in
  let ep = Controller.host_activate t.ctrl ~act ~sel () in
  (sel, ep)

let with_pager t ~tile =
  if t.variant <> M3v then
    invalid_arg "System.with_pager: pager-managed paging is M3v-only here";
  let handle = M3v_os.Pager.make_handle () in
  (* Spawn first so the activity exists, then build its receive gate and
     connect every TileMux with a send gate owned by the TileMux id. *)
  let rgate_ref = ref (-1) in
  let pager_aid, _env =
    spawn t ~tile ~name:"pager" ~premap:true
      (fun env ->
        M3v_os.Pager.program handle ~rgate:!rgate_ref () env)
  in
  let rgate_sel =
    Controller.host_new_rgate t.ctrl ~act:pager_aid ~slots:32 ~slot_size:128
  in
  let rgate = Controller.host_activate t.ctrl ~act:pager_aid ~sel:rgate_sel () in
  rgate_ref := rgate;
  (* One TileMux send gate per processing tile. *)
  Hashtbl.iter
    (fun rt_tile rt ->
      let ep = Controller.host_alloc_ep_anon t.ctrl ~tile:rt_tile in
      Dtu.ext_config
        (Platform.dtu t.platform rt_tile)
        ~ep ~owner:M3v_dtu.Dtu_types.tilemux_act
        (Ep.send_config ~dst_tile:tile ~dst_ep:rgate ~label:rt_tile
           ~max_msg_size:112 ~credits:2 ());
      Runtime.set_pager_sgate rt ep)
    t.runtimes;
  pager_aid

let boot t = Hashtbl.iter (fun _ rt -> Runtime.boot rt) t.runtimes

let run ?until t =
  match t.sharded with
  | None -> Engine.run ?until t.engine
  | Some group -> M3v_par.Shard.run ?until group

let run_while t cond =
  match t.sharded with
  | None ->
      let rec loop () =
        if cond () then begin
          let n = Engine.run ~max_events:10_000 t.engine in
          if n > 0 then loop ()
        end
      in
      loop ()
  | Some group ->
      (* Same chunking as the sequential path, so [cond] is re-checked at
         the same cadence (shard 0 is the only busy shard, so each window
         is exactly one [Engine.run ~max_events:10_000] call). *)
      let rec loop () =
        if cond () then
          match M3v_par.Shard.step ~max_events:10_000 group with
          | `Events _ -> loop ()
          | `Idle -> ()
      in
      loop ()
