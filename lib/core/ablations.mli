(** Ablation studies for the design decisions the paper (and DESIGN.md)
    call out.  Each isolates one knob and shows why the chosen design point
    works:

    - {b extent size} (paper 6.3 caps extents at 64 blocks): sequential
      read throughput as a function of the cap — small extents degenerate
      into one RPC per block, the M3 design's whole point;
    - {b vDTU TLB capacity} (paper 3.6: a small software-loaded TLB):
      translation-fault rate and throughput when a sender's working set
      exceeds the TLB;
    - {b NoC topology} (paper 4.1: a 2x2 star-mesh): RPC latency and
      throughput on star-mesh vs a single crossbar router vs a ring;
    - {b M3x endpoint-state size} (paper 3.1: why M3v avoids saving DTU
      state): M3x slow-path throughput as the per-activity endpoint count
      (and hence remote save/restore volume) grows. *)

type row = { knob : string; value : float; metric : string }

type result = { study : string; rows : row list }

val extent_size : ?caps:int list -> unit -> result
val tlb_capacity : ?capacities:int list -> unit -> result
val topology : unit -> result
val mx_ep_state : ?extra_eps:int list -> unit -> result

val run_all : ?pool:M3v_par.Par.Pool.t -> unit -> result list
val print : result -> unit
