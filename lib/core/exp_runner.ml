module Par = M3v_par.Par

let opt v = if v <= 0 then None else Some v

(* Experiments degrade to sequential execution when a trace sink or an
   ambient fault plan is requested: both are domain-local, so tasks on
   worker domains would silently escape them — and a shared fault RNG
   would destroy schedule determinism anyway.  [sequential] names the
   reason at each call site. *)
let make_pool ?jobs ~sequential () =
  if sequential then Par.Pool.sequential else Par.Pool.create ?jobs ()

let with_pool ?jobs ~sequential f =
  let pool = make_pool ?jobs ~sequential () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let parse_faults s =
  match M3v_fault.Fault.parse s with
  | Ok spec -> spec
  | Error msg ->
      Format.eprintf "m3vsim: bad --faults spec: %s@." msg;
      exit 2

(* When [faults] names a spec, run the experiment under a deterministic
   fault plan (same spec + seed => same fault schedule). *)
let with_faults ?faults ~fault_seed f =
  match faults with
  | None -> f ()
  | Some s ->
      let plan = M3v_fault.Fault.create ~seed:fault_seed (parse_faults s) in
      M3v_fault.Fault.with_plan plan (fun () ->
          f ();
          Format.printf "@.fault injection: seed=%d %a@." fault_seed
            M3v_fault.Fault.pp_stats
            (M3v_fault.Fault.stats plan))

(* When [trace] names a file, run the experiment with a trace sink
   installed, then dump Chrome trace-event JSON there and print the
   latency/summary tables. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      (* Open before the (possibly long) run so a bad path fails fast. *)
      let oc =
        try open_out path
        with Sys_error msg ->
          Format.eprintf "m3vsim: cannot write trace file: %s@." msg;
          exit 1
      in
      let sink = M3v_obs.Trace.make () in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          M3v_obs.Trace.with_sink sink f;
          M3v_obs.Chrome.write oc sink);
      Format.printf "@.trace: %d events -> %s@." (M3v_obs.Trace.event_count sink)
        path;
      M3v_obs.Report.print Format.std_formatter sink

(* When [metrics] names a file, run the experiment with a metrics registry
   installed, then export JSON there and print the metric tables.  Unlike
   tracing, metrics do NOT force sequential execution: the pool shards the
   registry per task and merges in submission order, so parallel metrics
   output is byte-identical to a sequential run's. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg ->
          Format.eprintf "m3vsim: cannot write metrics file: %s@." msg;
          exit 1
      in
      let reg = M3v_obs.Metrics.create () in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          M3v_obs.Metrics.with_registry reg f;
          Buffer.output_buffer oc (M3v_obs.Metrics.to_buffer reg));
      Format.printf "@.metrics -> %s@." path;
      M3v_obs.Metrics.print Format.std_formatter reg

(* --telemetry: open a collection window around the run — every
   multi-shard group created inside registers itself — and print the
   merged per-K analyzer reports when it closes.  The report goes to
   stderr, deliberately: telemetry tables vary with the shard count and
   carry wall-clock times, while the experiment stream on stdout must
   stay byte-identical with telemetry on or off and across shards/jobs
   (asserted by tests and the CI diff). *)
let with_telemetry telemetry f =
  if not telemetry then f ()
  else begin
    M3v_par.Telemetry.start_collecting ();
    Fun.protect
      ~finally:(fun () ->
        M3v_par.Telemetry.pp_groups Format.err_formatter
          (M3v_par.Telemetry.stop_collecting ()))
      f
  end

let needs_seq ~trace ~faults = Option.is_some trace || Option.is_some faults

let fig6 ?trace ?metrics ?faults ?(fault_seed = 1) ?jobs ~rounds () =
  with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
      with_faults ?faults ~fault_seed (fun () ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_fig6.print (Exp_fig6.run ~pool ?rounds:(opt rounds) ())))))

let fig7 ?trace ?metrics ?faults ?(fault_seed = 1) ?jobs ~runs () =
  with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
      with_faults ?faults ~fault_seed (fun () ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_fig7.print (Exp_fig7.run ~pool ?runs:(opt runs) ())))))

let fig8 ?trace ?metrics ?faults ?(fault_seed = 1) ?jobs ~runs () =
  with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
      with_faults ?faults ~fault_seed (fun () ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_fig8.print (Exp_fig8.run ~pool ?runs:(opt runs) ())))))

let fig9 ?trace ?metrics ?faults ?(fault_seed = 1) ?(telemetry = false) ?jobs
    ?shards ~runs () =
  with_telemetry telemetry (fun () ->
      with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
          with_faults ?faults ~fault_seed (fun () ->
              with_trace trace (fun () ->
                  with_metrics metrics (fun () ->
                      Exp_fig9.print
                        (Exp_fig9.run ~pool ?shards:(Option.bind shards opt)
                           ?runs:(opt runs) ()))))))

let fig10 ?trace ?metrics ?faults ?(fault_seed = 1) ?jobs ~runs () =
  with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
      with_faults ?faults ~fault_seed (fun () ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_fig10.print (Exp_fig10.run ~pool ?runs:(opt runs) ())))))

let voice ?trace ?metrics ?faults ?(fault_seed = 1) ?jobs ~runs () =
  with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
      with_faults ?faults ~fault_seed (fun () ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_voice.print (Exp_voice.run ~pool ?runs:(opt runs) ())))))

let fanin ?trace ?metrics ?faults ?(fault_seed = 1) ?jobs ?shards ~msgs
    ~senders () =
  let sender_counts =
    match senders with [] -> None | counts -> Some counts
  in
  with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
      with_faults ?faults ~fault_seed (fun () ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_fanin.print
                    (Exp_fanin.run ~pool ?shards:(Option.bind shards opt)
                       ?msgs:(opt msgs) ?sender_counts ())))))

let load ?trace ?metrics ?faults ?(fault_seed = 1) ?(telemetry = false) ?jobs
    ?shards ~cfg () =
  with_telemetry telemetry (fun () ->
      with_pool ?jobs ~sequential:(needs_seq ~trace ~faults) (fun pool ->
          with_faults ?faults ~fault_seed (fun () ->
              with_trace trace (fun () ->
                  with_metrics metrics (fun () ->
                      Exp_load.print
                        (Exp_load.run ~pool ?shards:(Option.bind shards opt)
                           ~cfg ()))))))

(* Both halves of the ablation in one report: the clean sweep, then the
   same sweep under a [mig_abort] fault plan (installed per task inside
   [Exp_migrate.run], so the points still fan out over the pool). *)
let migrate ?trace ?metrics ?jobs ?(seed = 11) ~rounds ~rates () =
  let rates = match rates with [] -> None | l -> Some l in
  with_pool ?jobs ~sequential:(Option.is_some trace) (fun pool ->
      with_trace trace (fun () ->
          with_metrics metrics (fun () ->
              Exp_migrate.print
                (Exp_migrate.run ~pool ?rounds:(opt rounds) ?rates
                   ~faulty:false ~seed ());
              Exp_migrate.print
                (Exp_migrate.run ~pool ?rounds:(opt rounds) ?rates ~faulty:true
                   ~seed ()))))

(* The chaos soak manages its own plan: [Exp_chaos.run] installs the spec
   and seed itself — inside each task, so a sweep can run seeds on worker
   domains.  Only tracing forces it sequential. *)
let chaos_outcome = function
  | Exp_chaos.Completed r -> Exp_chaos.print r
  | Exp_chaos.Suspended { checkpoints; file } ->
      (* stderr: a later resume prints the (stdout) report, which must be
         byte-identical to an uninterrupted run's. *)
      Format.eprintf "chaos: suspended after %d checkpoint(s) -> %s@."
        checkpoints file

let chaos ?trace ?faults ?(fault_seed = 7) ?(telemetry = false) ?jobs ?shards
    ?(seeds = 1) ?checkpoint_every_ms ?(checkpoint_file = "chaos.ckpt")
    ?stop_after ?resume ~rounds ~ops () =
  let spec = Option.map parse_faults faults in
  let shards = Option.bind shards opt in
  let every_ms = Option.bind checkpoint_every_ms (fun n -> opt n) in
  with_telemetry telemetry @@ fun () ->
  match (resume, every_ms) with
  | Some file, _ -> (
      match Exp_chaos.resume ~file ?stop_after:(Option.bind stop_after opt) () with
      | Error msg ->
          Format.eprintf "m3vsim chaos: %s@." msg;
          exit 1
      | Ok outcome -> chaos_outcome outcome)
  | None, Some ms ->
      if Option.is_some trace then begin
        Format.eprintf
          "m3vsim chaos: --checkpoint-every is incompatible with --trace \
           (trace sinks hold channels, which cannot be checkpointed)@.";
        exit 2
      end;
      if seeds > 1 then begin
        Format.eprintf
          "m3vsim chaos: --checkpoint-every soaks a single seed (got \
           --seeds %d)@."
          seeds;
        exit 2
      end;
      chaos_outcome
        (Exp_chaos.run_checkpointed ?shards ?spec ~seed:fault_seed
           ?fs_rounds:(opt rounds) ?kv_ops:(opt ops)
           ~every:(M3v_sim.Time.ms ms) ~file:checkpoint_file
           ?stop_after:(Option.bind stop_after opt) ())
  | None, None ->
      with_pool ?jobs ~sequential:(Option.is_some trace) (fun pool ->
          with_trace trace (fun () ->
              Exp_chaos.run_sweep ~pool ?shards ?spec ~seed:fault_seed ~seeds
                ?fs_rounds:(opt rounds) ?kv_ops:(opt ops) ()
              |> List.iter Exp_chaos.print))

(* The shard sweep is never forced sequential: the sweep itself runs
   points on the calling domain (only window dispatch uses the pool),
   and under a trace sink the scheduler falls back to inline windows on
   its own — so unlike the System experiments, --trace here needs no
   sequential-pool downgrade. *)
let shard_sweep ?trace ?metrics ?(telemetry = false) ?jobs ?(shards = 4)
    ?(seed = 1) ~chains ~hops ~weight ~tiles () =
  let tile_counts = match tiles with [] -> None | l -> Some l in
  with_telemetry telemetry (fun () ->
      with_pool ?jobs ~sequential:false (fun pool ->
          with_trace trace (fun () ->
              with_metrics metrics (fun () ->
                  Exp_shard.print
                    (Exp_shard.run ~pool ~shards ?chains_per_tile:(opt chains)
                       ?hops:(opt hops) ?weight:(opt weight) ~seed ?tile_counts
                       ())))))

(* shard-report: one sharded run with telemetry always on; the analyzer
   tables are the subcommand's stdout deliverable.  [trace] dumps the
   per-shard Chrome lanes (window spans and barrier gaps on wall-clock
   axes), not a simulation trace. *)
let shard_report ?jobs ?(shards = 4) ?(seed = 1) ?trace ~tiles ~chains ~hops
    ~weight () =
  with_pool ?jobs ~sequential:false (fun pool ->
      let r =
        Exp_shard.report ~pool ?tiles:(opt tiles) ~shards
          ?chains_per_tile:(opt chains) ?hops:(opt hops) ?weight:(opt weight)
          ~seed ()
      in
      Exp_shard.print_report r;
      match trace with
      | None -> ()
      | Some path ->
          M3v_par.Telemetry.write_chrome path r.Exp_shard.rep_telemetry;
          Format.printf "@.shard lanes -> %s@." path)

let table1 ?trace () =
  with_trace trace (fun () -> Exp_table1.print (Exp_table1.run ()))

let complexity () = Exp_table1.print_complexity (Exp_table1.run_complexity ())

let ablations ?trace ?jobs () =
  with_pool ?jobs ~sequential:(Option.is_some trace) (fun pool ->
      with_trace trace (fun () ->
          List.iter Ablations.print (Ablations.run_all ~pool ())))

(* Critical-path profiler entry point: run one experiment sequentially
   under a private trace sink (flow events need the single-domain sink),
   then decompose every message flow's end-to-end latency into
   paper-aligned segments.  [trace]/[folded]/[metrics] optionally dump
   the raw Chrome trace, a flamegraph-style folded-stack file, and the
   metrics registry alongside the profile tables. *)
let profile ?(exp = "fig6") ?trace ?folded ?metrics ~rounds ~runs () =
  let sink = M3v_obs.Trace.make () in
  let pool = Par.Pool.sequential in
  let run () =
    M3v_obs.Trace.with_sink sink (fun () ->
        match exp with
        | "fig6" -> ignore (Exp_fig6.run ~pool ?rounds:(opt rounds) ())
        | "fig7" -> ignore (Exp_fig7.run ~pool ?runs:(opt runs) ())
        | "fig8" -> ignore (Exp_fig8.run ~pool ?runs:(opt runs) ())
        | "fig9" -> ignore (Exp_fig9.run ~pool ?runs:(opt runs) ())
        | "fig10" -> ignore (Exp_fig10.run ~pool ?runs:(opt runs) ())
        | "voice" -> ignore (Exp_voice.run ~pool ?runs:(opt runs) ())
        | other ->
            Format.eprintf
              "m3vsim profile: unknown experiment %S (expected \
               fig6|fig7|fig8|fig9|fig10|voice)@."
              other;
            exit 2)
  in
  with_metrics metrics run;
  (match trace with
  | None -> ()
  | Some path ->
      M3v_obs.Chrome.write_file path sink;
      Format.printf "trace: %d events -> %s@."
        (M3v_obs.Trace.event_count sink)
        path);
  (match folded with
  | None -> ()
  | Some path ->
      M3v_obs.Profile.write_folded path sink;
      Format.printf "folded stacks -> %s@." path);
  M3v_obs.Profile.print Format.std_formatter (M3v_obs.Profile.analyze sink)

(* Fan out whole experiments as tasks (they also fan out internally via
   the same pool); each task returns a printer thunk that main runs in
   submission order, so the combined report is byte-identical to a
   sequential run. *)
let all ?jobs () =
  with_pool ?jobs ~sequential:false (fun pool ->
      Par.all pool
        [
          (fun () ->
            let r = Exp_table1.run () in
            fun () -> Exp_table1.print r);
          (fun () ->
            let r = Exp_table1.run_complexity () in
            fun () -> Exp_table1.print_complexity r);
          (fun () ->
            let r = Exp_fig6.run ~pool () in
            fun () -> Exp_fig6.print r);
          (fun () ->
            let r = Exp_fig7.run ~pool () in
            fun () -> Exp_fig7.print r);
          (fun () ->
            let r = Exp_fig8.run ~pool () in
            fun () -> Exp_fig8.print r);
          (fun () ->
            let r = Exp_fig9.run ~pool () in
            fun () -> Exp_fig9.print r);
          (fun () ->
            let r = Exp_voice.run ~pool () in
            fun () -> Exp_voice.print r);
          (fun () ->
            let r = Exp_fig10.run ~pool () in
            fun () -> Exp_fig10.print r);
          (fun () ->
            let r = Ablations.run_all ~pool () in
            fun () -> List.iter Ablations.print r);
          (fun () ->
            let r = Exp_fanin.run ~pool () in
            fun () -> Exp_fanin.print r);
          (fun () ->
            let clean = Exp_migrate.run ~pool ~faulty:false () in
            let faulty = Exp_migrate.run ~pool ~faulty:true () in
            fun () ->
              Exp_migrate.print clean;
              Exp_migrate.print faulty);
        ]
      |> List.iter (fun print -> print ()))
