let opt v = if v <= 0 then None else Some v

let parse_faults s =
  match M3v_fault.Fault.parse s with
  | Ok spec -> spec
  | Error msg ->
      Format.eprintf "m3vsim: bad --faults spec: %s@." msg;
      exit 2

(* When [faults] names a spec, run the experiment under a deterministic
   fault plan (same spec + seed => same fault schedule). *)
let with_faults ?faults ~fault_seed f =
  match faults with
  | None -> f ()
  | Some s ->
      let plan = M3v_fault.Fault.create ~seed:fault_seed (parse_faults s) in
      M3v_fault.Fault.with_plan plan (fun () ->
          f ();
          Format.printf "@.fault injection: seed=%d %a@." fault_seed
            M3v_fault.Fault.pp_stats
            (M3v_fault.Fault.stats plan))

(* When [trace] names a file, run the experiment with a trace sink
   installed, then dump Chrome trace-event JSON there and print the
   latency/summary tables. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      (* Open before the (possibly long) run so a bad path fails fast. *)
      let oc =
        try open_out path
        with Sys_error msg ->
          Format.eprintf "m3vsim: cannot write trace file: %s@." msg;
          exit 1
      in
      let sink = M3v_obs.Trace.make () in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          M3v_obs.Trace.with_sink sink f;
          M3v_obs.Chrome.write oc sink);
      Format.printf "@.trace: %d events -> %s@." (M3v_obs.Trace.event_count sink)
        path;
      M3v_obs.Report.print Format.std_formatter sink

let fig6 ?trace ?faults ?(fault_seed = 1) ~rounds () =
  with_faults ?faults ~fault_seed (fun () ->
      with_trace trace (fun () -> Exp_fig6.print (Exp_fig6.run ?rounds:(opt rounds) ())))

let fig7 ?trace ?faults ?(fault_seed = 1) ~runs () =
  with_faults ?faults ~fault_seed (fun () ->
      with_trace trace (fun () -> Exp_fig7.print (Exp_fig7.run ?runs:(opt runs) ())))

let fig8 ?trace ?faults ?(fault_seed = 1) ~runs () =
  with_faults ?faults ~fault_seed (fun () ->
      with_trace trace (fun () -> Exp_fig8.print (Exp_fig8.run ?runs:(opt runs) ())))

let fig9 ?trace ?faults ?(fault_seed = 1) ~runs () =
  with_faults ?faults ~fault_seed (fun () ->
      with_trace trace (fun () -> Exp_fig9.print (Exp_fig9.run ?runs:(opt runs) ())))

let fig10 ?trace ?faults ?(fault_seed = 1) ~runs () =
  with_faults ?faults ~fault_seed (fun () ->
      with_trace trace (fun () -> Exp_fig10.print (Exp_fig10.run ?runs:(opt runs) ())))

let voice ?trace ?faults ?(fault_seed = 1) ~runs () =
  with_faults ?faults ~fault_seed (fun () ->
      with_trace trace (fun () -> Exp_voice.print (Exp_voice.run ?runs:(opt runs) ())))

(* The chaos soak manages its own plan: [Exp_chaos.run] installs the spec
   and seed itself so the schedule is independent of CLI wrapping. *)
let chaos ?trace ?faults ?(fault_seed = 7) ~rounds ~ops () =
  let spec = Option.map parse_faults faults in
  with_trace trace (fun () ->
      Exp_chaos.print
        (Exp_chaos.run ?spec ~seed:fault_seed ?fs_rounds:(opt rounds)
           ?kv_ops:(opt ops) ()))

let table1 ?trace () =
  with_trace trace (fun () -> Exp_table1.print (Exp_table1.run ()))

let complexity () = Exp_table1.print_complexity (Exp_table1.run_complexity ())

let ablations ?trace () =
  with_trace trace (fun () -> List.iter Ablations.print (Ablations.run_all ()))

let all () =
  table1 ();
  complexity ();
  fig6 ~rounds:0 ();
  fig7 ~runs:0 ();
  fig8 ~runs:0 ();
  fig9 ~runs:0 ();
  voice ~runs:0 ();
  fig10 ~runs:0 ();
  ablations ()
