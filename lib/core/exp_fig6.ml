open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Stats = M3v_sim.Stats
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Lx = M3v_linux.Lx_api
module Linux_sim = M3v_linux.Linux_sim
module Par = M3v_par.Par

type result = {
  bars : Exp_common.bar list;
  kcycles : (string * float) list;
  m3x_local_kcycles_3ghz : float;
  m3v_local_kcycles_3ghz : float;
}

type Msg.data += Noop_req | Noop_resp

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Noop_req]; [%extension_constructor Noop_resp] ]

(* Average time of one no-op RPC between a client and a server activity. *)
let rpc_duration ~variant ~spec ~client_tile ~server_tile ~rounds =
  let sys = System.create ~spec ~variant () in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let total = ref Time.zero in
  let server, _ =
    System.spawn sys ~tile:server_tile ~name:"echo" (fun _ ->
        let rec serve n =
          if n = 0 then Proc.return ()
          else
            let* _ep, msg = A.recv ~eps:[ !rgate ] in
            let* () = A.reply ~recv_ep:!rgate ~msg ~size:8 Noop_resp in
            serve (n - 1)
        in
        serve rounds)
  in
  let client, _ =
    System.spawn sys ~tile:client_tile ~name:"caller" (fun _ ->
        (* Warm up before timing, as the paper does. *)
        let* () =
          Proc.repeat (rounds / 10) (fun _ ->
              let* _ =
                A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:8 Noop_req
              in
              Proc.return ())
        in
        let* t0 = A.now in
        let* () =
          Proc.repeat (rounds - (rounds / 10)) (fun _ ->
              let* _ =
                A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:8 Noop_req
              in
              Proc.return ())
        in
        let* t1 = A.now in
        total := Time.sub t1 t0;
        Proc.return ())
  in
  let ch = System.channel sys ~src:client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  !total / (rounds - (rounds / 10))

let linux_syscall_duration ~rounds =
  let engine = M3v_sim.Engine.create () in
  let lx = Linux_sim.create engine () in
  let total = ref Time.zero in
  let _ =
    Linux_sim.spawn lx ~name:"sc" begin
      let* () = Proc.repeat (rounds / 10) (fun _ -> Lx.noop_syscall) in
      let* t0 = A.now in
      let* () = Proc.repeat rounds (fun _ -> Lx.noop_syscall) in
      let* t1 = A.now in
      total := Time.sub t1 t0;
      Proc.return ()
    end
  in
  Linux_sim.boot lx;
  ignore (M3v_sim.Engine.run engine);
  !total / rounds

(* Two processes yielding back and forth: the cost of one "hop" is one
   yield; the figure reports two (one round trip between processes). *)
let linux_yield2_duration ~rounds =
  let engine = M3v_sim.Engine.create () in
  let lx = Linux_sim.create engine () in
  let total = ref Time.zero in
  let yielder n =
    let* () = Proc.repeat (n / 10) (fun _ -> Lx.yield) in
    let* t0 = A.now in
    let* () = Proc.repeat n (fun _ -> Lx.yield) in
    let* t1 = A.now in
    total := Time.sub t1 t0;
    Proc.return ()
  in
  let _ = Linux_sim.spawn lx ~name:"y1" (yielder rounds) in
  let _ =
    Linux_sim.spawn lx ~name:"y2" (Proc.repeat (rounds + (rounds / 10) + 4) (fun _ -> Lx.yield))
  in
  Linux_sim.boot lx;
  ignore (M3v_sim.Engine.run engine);
  (* Between two yields of y1 the partner also yields once: each measured
     iteration covers exactly one yield pair (two context switches). *)
  !total / rounds

let boom_kcycles t =
  Time.to_us t *. 80.0 /. 1000.0 (* 80 cycles per us at 80 MHz *)

let x86_kcycles t = Time.to_us t *. 3000.0 /. 1000.0

let run ?(pool = Par.Pool.sequential) ?(rounds = 1000) () =
  let fpga = M3v_tile.Platform.fpga_spec () in
  let gem5 = M3v_tile.Platform.gem5_spec ~user_tiles:2 () in
  (* Each measurement owns its engine/system, so the six of them fan out
     as independent tasks; awaiting in submission order keeps the result
     identical to a sequential run. *)
  let f_m3v_remote =
    Par.submit pool (fun () ->
        rpc_duration ~variant:System.M3v ~spec:fpga
          ~client_tile:Exp_common.boom_tile_b
          ~server_tile:Exp_common.boom_tile_c ~rounds)
  in
  let f_m3v_local =
    Par.submit pool (fun () ->
        rpc_duration ~variant:System.M3v ~spec:fpga
          ~client_tile:Exp_common.boom_tile_b
          ~server_tile:Exp_common.boom_tile_b ~rounds)
  in
  let f_lx_syscall = Par.submit pool (fun () -> linux_syscall_duration ~rounds) in
  let f_lx_yield2 = Par.submit pool (fun () -> linux_yield2_duration ~rounds) in
  (* gem5 3 GHz reference points (paper: M3x ~27k cycles, M3v ~5k). *)
  let f_m3x_local_3ghz =
    Par.submit pool (fun () ->
        rpc_duration ~variant:System.M3x ~spec:gem5 ~client_tile:1
          ~server_tile:1 ~rounds:(rounds / 4))
  in
  let f_m3v_local_3ghz =
    Par.submit pool (fun () ->
        rpc_duration ~variant:System.M3v ~spec:gem5 ~client_tile:1
          ~server_tile:1 ~rounds:(rounds / 4))
  in
  let m3v_remote = Par.await f_m3v_remote in
  let m3v_local = Par.await f_m3v_local in
  let lx_syscall = Par.await f_lx_syscall in
  let lx_yield2 = Par.await f_lx_yield2 in
  let m3x_local_3ghz = Par.await f_m3x_local_3ghz in
  let m3v_local_3ghz = Par.await f_m3v_local_3ghz in
  let entries =
    [
      ("Linux yield (2x)", lx_yield2);
      ("Linux syscall", lx_syscall);
      ("M3v local", m3v_local);
      ("M3v remote", m3v_remote);
    ]
  in
  {
    bars =
      List.map
        (fun (label, t) -> { Exp_common.label; mean = Time.to_us t; stddev = 0.0 })
        entries;
    kcycles = List.map (fun (label, t) -> (label, boom_kcycles t)) entries;
    m3x_local_kcycles_3ghz = x86_kcycles m3x_local_3ghz;
    m3v_local_kcycles_3ghz = x86_kcycles m3v_local_3ghz;
  }

let print r =
  Exp_common.print_bars ~title:"Figure 6: local/remote communication (BOOM, 80 MHz)"
    ~unit_label:"us" r.bars;
  Exp_common.print_kv ~title:"Figure 6 (right axis): kilo-cycles"
    (List.map (fun (l, v) -> (l, Printf.sprintf "%.2f kcycles" v)) r.kcycles);
  Exp_common.print_kv ~title:"Section 6.2 reference: tile-local RPC at 3 GHz (gem5 config)"
    [
      ("M3x (paper: ~27 kcycles)", Printf.sprintf "%.1f kcycles" r.m3x_local_kcycles_3ghz);
      ("M3v (paper: ~5 kcycles)", Printf.sprintf "%.1f kcycles" r.m3v_local_kcycles_3ghz);
    ]
