(** Figure 6: local/remote communication on M3v and similar primitives on
    Linux.

    - "M3v remote": no-op RPC between activities on two BOOM tiles;
    - "M3v local": the same RPC with both activities sharing one tile (two
      TileMux context switches per round trip);
    - "Linux syscall": a no-op system call;
    - "Linux yield (2x)": two yields between two processes (two context
      switches).

    1000 measured round trips on a warm system, as in the paper.  Also
    reports the M3x tile-local RPC on the 3 GHz gem5 configuration, which
    the paper cites as ~27k cycles vs ~5k for M3v. *)

type result = {
  bars : Exp_common.bar list;  (** microseconds at 80 MHz *)
  kcycles : (string * float) list;  (** same data in kilo-cycles *)
  m3x_local_kcycles_3ghz : float;
  m3v_local_kcycles_3ghz : float;
}

val run : ?pool:M3v_par.Par.Pool.t -> ?rounds:int -> unit -> result
val print : result -> unit
