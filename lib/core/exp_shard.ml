(* Partitioned-parallel scaling experiment for the sharded scheduler.

   The System experiments are one causal region (shared kernel,
   controller, NoC link state), so under `--shards K` they occupy a
   single shard and demonstrate only that the window machinery is
   transparent.  This experiment is the other half of the story: a
   genuinely partitionable workload at 64-1024 tiles whose sharded run
   spreads real event work over the Domain pool — and still produces
   bit-identical results, asserted on every invocation by running each
   point twice (shards = 1 sequentially, shards = K on the pool) and
   comparing makespan, checksum and event count.

   Topology: tiles are grouped into clusters of 16 (an island of a
   hierarchical NoC).  Intra-cluster messages take one local hop;
   inter-cluster messages cross the island boundary — three local hops,
   a backbone router and two serialized flits:

     intra = 25_000 ps        inter = 3*7_500 + 30_000 + 2*10_000 = 72_500 ps

   Shards are contiguous blocks of whole clusters, so a cross-shard
   message is necessarily inter-cluster and the scheduler's lookahead is
   the full 72.5 ns inter-cluster minimum — wide enough windows to batch
   hundreds of events per shard between barriers.

   Workload: closed-loop token chains.  Each chain is a single token
   hopping [hops] times; each hop is served by the destination tile's
   FIFO server with a deterministic pseudo-random service time, plus
   [weight] rounds of hash mixing folded into the chain's checksum (the
   knob that gives an event enough CPU weight for parallelism to pay).

   Determinism across partitionings is the delicate part.  The scheduler
   guarantees cross-shard *messages* are delivered in a
   partition-invariant order, but the heap order of a delivered message
   against a same-timestamp shard-local event is insertion-defined — so
   the model must not depend on it.  Discipline used here (the pattern
   the DESIGN doc describes):

     - arrivals go into a per-(tile, time) mailbox bucket; the first
       arrival arms one trigger event at that time, and the trigger
       drains the bucket sorted by content key (chain id — unique, since
       a chain has one live token), so arrival order never matters;
     - tiles serve from a FIFO queue; a trigger and a service completion
       at the same instant commute (the completion pops the queue head
       either way, and an idle server starts the new arrival at the same
       time whether the kick or the completion ran first);
     - service times and routes are pure hashes of (seed, chain, hop) —
       no RNG consumed in arrival order, no state shared between tiles.

   Under that discipline every equal-time event pair either touches
   disjoint tile state or commutes, so seq/sharded/parallel runs agree
   exactly — which the experiment asserts rather than assumes. *)

module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module Shard = M3v_par.Shard
module Par = M3v_par.Par

let cluster_size = 16
let intra_latency = 25_000
let inter_latency = 72_500

(* splitmix-style avalanche on OCaml's 63-bit int, masked positive. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = (x * 0x27220A95) + 0x165667B1 in
  (x lxor (x lsr 31)) land max_int

let mix2 a b = mix (a lxor mix b)
let mix3 a b c = mix2 a (mix2 b c)

type token = { chain : int; hop : int; acc : int }

(* Cross-shard message: the token plus its destination tile (the shard id
   alone does not identify the tile). *)
type msg = { m_tile : int; m_tok : token }

type tile_state = { queue : token Queue.t; mutable busy : bool }

type run_result = {
  r_makespan : Time.t;
  r_checksum : int;
  r_events : int;
  r_stats : Shard.stats;
}

(* Build the simulation and return (group, finalize) where [finalize]
   computes the checksum after the run. *)
let build ~tiles ~shards ~chains_per_tile ~hops ~weight ~seed =
  let n_clusters = max 1 (tiles / cluster_size) in
  let k = max 1 (min shards n_clusters) in
  let cluster_of tile = min (tile / cluster_size) (n_clusters - 1) in
  let shard_of tile = cluster_of tile * k / n_clusters in
  let group = Shard.create ~lookahead:inter_latency ~shards:k () in
  (* Queue-depth trace samples and metric time series per shard engine —
     but only under a trace sink, which forces inline windows, so every
     sample lands in the coordinating domain's sink/registry.  Under
     --metrics alone, windows may run on worker domains whose registry
     shards restart counters at zero: sampled series would carry
     shard-local partial sums and break --jobs byte-identity.  The par/*
     counters themselves merge additively and stay jobs-invariant. *)
  if M3v_obs.Trace.on () then
    for i = 0 to Shard.shards group - 1 do
      M3v_obs.Hooks.attach_engine (Shard.engine group i)
    done;
  let nchains = tiles * chains_per_tile in
  let state =
    Array.init tiles (fun _ -> { queue = Queue.create (); busy = false })
  in
  let mailbox : (Time.t, token list ref) Hashtbl.t array =
    Array.init tiles (fun _ -> Hashtbl.create 16)
  in
  let finish = Array.make nchains Time.zero in
  let final_acc = Array.make nchains 0 in
  let service_time tok ~tile =
    1_000 + (mix3 (seed + 1) (mix2 tok.chain tok.hop) tile mod 15_000)
  in
  let next_tile tok ~tile =
    let h = mix3 (seed + 2) tok.chain tok.hop in
    if h mod 100 < 70 then
      (* stay on the island *)
      (cluster_of tile * cluster_size) + (mix h mod cluster_size)
    else mix h mod tiles
  in
  (* [weight] extra rounds of mixing per served hop: deterministic CPU
     work that makes an event heavy enough to amortize window barriers. *)
  let churn x =
    let acc = ref x in
    for _ = 1 to weight do
      acc := mix !acc
    done;
    !acc
  in
  let rec serve_next ~tile ~time =
    let st = state.(tile) in
    if Queue.is_empty st.queue then st.busy <- false
    else begin
      st.busy <- true;
      let tok = Queue.pop st.queue in
      let done_at = Time.add time (service_time tok ~tile) in
      Engine.at (Shard.engine group (shard_of tile)) ~time:done_at (fun () ->
          complete ~tile ~time:done_at tok)
    end
  and complete ~tile ~time tok =
    let acc = churn (mix3 tok.acc tile time) in
    if tok.hop + 1 >= hops then begin
      finish.(tok.chain) <- time;
      final_acc.(tok.chain) <- acc
    end
    else begin
      let tok = { tok with hop = tok.hop + 1; acc } in
      let dst = next_tile tok ~tile in
      let lat =
        if cluster_of dst = cluster_of tile then intra_latency
        else inter_latency
      in
      let time = Time.add time lat in
      Shard.send group ~src:(shard_of tile) ~dst:(shard_of dst) ~time
        { m_tile = dst; m_tok = tok }
    end;
    serve_next ~tile ~time
  and deliver ~tile ~time tok =
    let buckets = mailbox.(tile) in
    match Hashtbl.find_opt buckets time with
    | Some l -> l := tok :: !l
    | None ->
        let l = ref [ tok ] in
        Hashtbl.add buckets time l;
        Engine.at (Shard.engine group (shard_of tile)) ~time (fun () ->
            Hashtbl.remove buckets time;
            let toks =
              List.sort (fun a b -> compare a.chain b.chain) !l
            in
            List.iter
              (fun tok ->
                Queue.push tok state.(tile).queue;
                if not state.(tile).busy then serve_next ~tile ~time)
              toks)
  in
  Shard.set_handler group (fun ~dst:_ ~time m ->
      deliver ~tile:m.m_tile ~time m.m_tok);
  (* Seed: chain [c] starts at its home tile at a staggered instant. *)
  for c = 0 to nchains - 1 do
    let tile = c mod tiles in
    let start = 1 + (mix2 seed c mod 50_000) in
    deliver ~tile ~time:start { chain = c; hop = 0; acc = mix2 seed c }
  done;
  let finalize events =
    let checksum =
      let h = ref 0 in
      for c = 0 to nchains - 1 do
        h := mix3 !h finish.(c) final_acc.(c)
      done;
      !h land 0xFFFFFFFF
    in
    let makespan = Array.fold_left Time.max Time.zero finish in
    {
      r_makespan = makespan;
      r_checksum = checksum;
      r_events = events;
      r_stats = Shard.stats group;
    }
  in
  (group, finalize)

type point = {
  p_tiles : int;
  p_clusters : int;
  p_shards : int;
  p_chains : int;
  p_hops : int;
  p_events : int;
  p_makespan : Time.t;
  p_checksum : int;
  p_match : bool;
  p_wall_seq : float;
  p_wall_par : float;
}

type result = { points : point list; jobs : int }

(* Monotonic wall timing (Mono): a clock step mid-measurement can no
   longer produce negative or inverted speedups. *)
let timed = M3v_par.Mono.timed

(* The one place speedup division is guarded: trivial points can finish
   inside the clock's resolution, and 0/0 is "n/a", not "0.00x". *)
let speedup_str ~wall_seq ~wall_par =
  if wall_par > 1e-9 then Printf.sprintf "%.2fx" (wall_seq /. wall_par)
  else "n/a"

let run_point ?(progress = true) ?(telemetry = false) ~pool ~tiles ~shards
    ~chains_per_tile ~hops ~weight ~seed () =
  let build_one ~shards =
    build ~tiles ~shards ~chains_per_tile ~hops ~weight ~seed
  in
  let seq_group, seq_fin = build_one ~shards:1 in
  let seq, wall_seq = timed (fun () -> Shard.run seq_group) in
  let seq = seq_fin seq in
  let par_group, par_fin = build_one ~shards in
  if telemetry then ignore (Shard.enable_telemetry par_group);
  let par, wall_par = timed (fun () -> Shard.run ~pool par_group) in
  let par = par_fin par in
  let matches =
    seq.r_makespan = par.r_makespan
    && seq.r_checksum = par.r_checksum
    && seq.r_events = par.r_events
  in
  let st = par.r_stats in
  if progress then
    Par.progress
      (Printf.sprintf
         "shard-sweep: tiles=%d shards=%d wall seq %.3fs par %.3fs (%s) | \
          windows=%d parallel=%d routed=%d"
         tiles (Shard.shards par_group) wall_seq wall_par
         (speedup_str ~wall_seq ~wall_par)
         st.Shard.windows st.Shard.parallel_windows st.Shard.messages_routed);
  {
    p_tiles = tiles;
    p_clusters = max 1 (tiles / cluster_size);
    p_shards = Shard.shards par_group;
    p_chains = tiles * chains_per_tile;
    p_hops = hops;
    p_events = seq.r_events;
    p_makespan = seq.r_makespan;
    p_checksum = seq.r_checksum;
    p_match = matches;
    p_wall_seq = wall_seq;
    p_wall_par = wall_par;
  }

let run ?(pool = Par.Pool.sequential) ?(shards = 4) ?(chains_per_tile = 4)
    ?(hops = 32) ?(weight = 512) ?(seed = 1) ?(tile_counts = [ 64; 256 ]) () =
  let points =
    List.map
      (fun tiles ->
        run_point ~pool ~tiles ~shards ~chains_per_tile ~hops ~weight ~seed ())
      tile_counts
  in
  { points; jobs = Par.Pool.jobs pool }

let print r =
  Format.printf
    "@.Shard sweep: conservative-lookahead partitioned simulation@.";
  Format.printf
    "  (every point runs twice — sequential and sharded — and compares \
     results)@.";
  Format.printf "  %-7s %-9s %-7s %-7s %-6s %-9s %-13s %-10s %s@." "tiles"
    "clusters" "shards" "chains" "hops" "events" "makespan(us)" "checksum"
    "identical";
  List.iter
    (fun p ->
      Format.printf "  %-7d %-9d %-7d %-7d %-6d %-9d %-13.2f %08x   %s@."
        p.p_tiles p.p_clusters p.p_shards p.p_chains p.p_hops p.p_events
        (Time.to_us p.p_makespan) p.p_checksum
        (if p.p_match then "OK" else "MISMATCH"))
    r.points;
  if List.for_all (fun p -> p.p_match) r.points then
    Format.printf "  sharded == sequential: OK@."
  else Format.printf "  sharded == sequential: MISMATCH@."

(* {1 shard-report} — one sharded run with telemetry enabled, analyzed.

   Unlike the sweep there is no sequential reference: the speedup bound
   comes from the telemetry critical path (total work / sum of
   per-window max shard work), which is what the report is for —
   explaining where parallel headroom goes before burning a second run
   to measure it.  This analyzer output is the subcommand's deliverable,
   so it goes to stdout; wall-clock fields make it non-reproducible
   byte-for-byte by design (simulated results stay deterministic). *)

type report = {
  rep_tiles : int;
  rep_shards : int;
  rep_jobs : int;
  rep_result : run_result;
  rep_wall : float;
  rep_telemetry : M3v_par.Telemetry.t;
}

let report ?(pool = Par.Pool.sequential) ?(tiles = 256) ?(shards = 4)
    ?(chains_per_tile = 4) ?(hops = 32) ?(weight = 512) ?(seed = 1) ?cap () =
  let group, finalize =
    build ~tiles ~shards ~chains_per_tile ~hops ~weight ~seed
  in
  let tm = Shard.enable_telemetry ?cap group in
  let events, wall = timed (fun () -> Shard.run ~pool group) in
  {
    rep_tiles = tiles;
    rep_shards = Shard.shards group;
    rep_jobs = Par.Pool.jobs pool;
    rep_result = finalize events;
    rep_wall = wall;
    rep_telemetry = tm;
  }

let print_report r =
  let res = r.rep_result in
  Format.printf "@.Shard report: per-window telemetry for one sharded run@.";
  Format.printf
    "  tiles=%d shards=%d jobs=%d | events=%d makespan=%.2fus checksum=%08x \
     wall=%.3fs@.@."
    r.rep_tiles r.rep_shards r.rep_jobs res.r_events
    (Time.to_us res.r_makespan)
    res.r_checksum r.rep_wall;
  M3v_par.Telemetry.pp Format.std_formatter r.rep_telemetry
