(** Figure 7: file read/write throughput.

    2 MiB files, 4 KiB buffers, extents capped at 64 blocks; 10 measured
    runs after 4 warmup runs, as in the paper.  Six configurations:
    Linux read/write (tmpfs, one core), M3v read/write with all components
    (benchmark, m3fs, pager) sharing one BOOM tile ("shared"), and M3v
    read/write with each component on its own tile ("isolated" — shown for
    completeness; the paper notes it is not comparable to Linux). *)

type result = { bars : Exp_common.bar list (** MiB/s *) }

val run :
  ?pool:M3v_par.Par.Pool.t -> ?runs:int -> ?warmup:int -> ?file_size:int ->
  unit -> result
val print : result -> unit
