(** Chaos-soak experiment: fs and kv workloads on m3fs under deterministic
    fault injection ({!M3v_fault.Fault}), exercising the whole recovery
    stack — DTU retransmit/dedup, the TileMux watchdog, controller crash
    handling with in-place service restarts, and bounded client RPC
    deadlines.  The same spec and seed reproduce the same run exactly. *)

type result = {
  spec : M3v_fault.Fault.spec;
  seed : int;
  fs_done : bool;  (** the fs client ran all its rounds to the end *)
  kv_done : bool;  (** the kv client ran all its ops to the end *)
  fs_rounds : int;  (** rounds fully completed (restarts repeat rounds) *)
  data_ok : bool;  (** every completed read round returned intact bytes *)
  kv_ok : int;
  kv_errors : int;  (** ops that surfaced [R_err] (e.g. EIO) *)
  fault_stats : M3v_fault.Fault.stats;
  dtu_retries : int;
  dtu_timeouts : int;
  dtu_dup_drops : int;
  crashes : int;
  restarts : int;
  credits_reclaimed : int;
  end_time : M3v_sim.Time.t;
}

(** drop=0.01, dup=0.005, delay=0.01, cmd_fail=0.005, crash=2, hang=1. *)
val default_spec : M3v_fault.Fault.spec

val run :
  ?shards:int ->
  ?spec:M3v_fault.Fault.spec ->
  ?seed:int ->
  ?fs_rounds:int ->
  ?kv_ops:int ->
  unit ->
  result

(** {1 Checkpoint/restore}

    A checkpointed soak periodically marshals the whole simulator
    ({!M3v_sim.Checkpoint}) so the run can be stopped and resumed across
    OS processes of the same binary.  Slicing the run at checkpoint
    instants does not change the event order, so a resumed run's report is
    byte-identical to an uninterrupted one's.  Unsupported together with a
    live trace sink (channels cannot be marshalled). *)

type ckpt_outcome =
  | Completed of result
  | Suspended of { checkpoints : int; file : string }
      (** stopped after writing [checkpoints] checkpoints; resume from
          [file] *)

(** Like {!run}, but checkpoint to [file] at every multiple of [every]
    simulated time (overwriting, atomically); with [stop_after:n],
    abandon the run after the [n]-th checkpoint is written. *)
val run_checkpointed :
  ?shards:int ->
  ?spec:M3v_fault.Fault.spec ->
  ?seed:int ->
  ?fs_rounds:int ->
  ?kv_ops:int ->
  every:M3v_sim.Time.t ->
  file:string ->
  ?stop_after:int ->
  unit ->
  ckpt_outcome

(** Load a checkpoint and continue the soak (including its checkpoint
    schedule) to completion — or, with [stop_after], to the next stop. *)
val resume :
  file:string ->
  ?stop_after:int ->
  unit ->
  (ckpt_outcome, string) Stdlib.result

(** [run_sweep ~pool ~seeds:n] soaks [n] consecutive seeds starting at
    [seed], fanning the runs out over [pool] as independent tasks (each
    installs its fault plan domain-locally).  Results return in seed
    order, so the printed sweep is byte-identical however many workers ran
    it; per-seed completion lines go to stderr through the single-writer
    {!M3v_par.Par.progress}. *)
val run_sweep :
  ?pool:M3v_par.Par.Pool.t ->
  ?shards:int ->
  ?spec:M3v_fault.Fault.spec ->
  ?seed:int ->
  ?seeds:int ->
  ?fs_rounds:int ->
  ?kv_ops:int ->
  unit ->
  result list

val print : result -> unit
