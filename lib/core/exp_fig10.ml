module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Stats = M3v_sim.Stats
module Rng = M3v_sim.Rng
module Ycsb = M3v_apps.Ycsb
module Cloud = M3v_apps.Cloud
module Nic = M3v_os.Nic
module Net_client = M3v_os.Net_client
module Runtime = M3v_mux.Runtime
module Linux_sim = M3v_linux.Linux_sim
module Lx = M3v_linux.Lx_api
module Par = M3v_par.Par

type row = {
  config : string;
  total_s : float;
  total_sd : float;
  user_s : float;
  sys_s : float;
}

type result = { workloads : (string * row list) list }

let peer = (1, 9000)

let workload_bytes ~records ~operations workload =
  let rng = Rng.create ~seed:(77 + Hashtbl.hash (Ycsb.workload_name workload)) in
  let load = Ycsb.load ~records ~value_size:1024 rng in
  let ops = Ycsb.ops workload ~records ~count:operations rng in
  Cloud.encode_workload ~load ~ops

(* Build a row from per-rep (elapsed, sys-time) samples. *)
let make_row config samples ~warmup =
  let measured = List.filteri (fun i _ -> i >= warmup) samples in
  let totals = List.map (fun (e, _) -> Time.to_s e) measured in
  let syss = List.map (fun (_, s) -> Time.to_s s) measured in
  let ts = Stats.summarize totals in
  let mean_sys = Stats.mean syss in
  {
    config;
    total_s = ts.Stats.mean;
    total_sd = ts.Stats.stddev;
    user_s = Float.max 0.0 (ts.Stats.mean -. mean_sys);
    sys_s = mean_sys;
  }

let m3v_samples ~shared ~reps ~requests =
  let sys = System.create ~variant:System.M3v () in
  let nic_tile = Exp_common.boom_tile_a in
  let db_tile = if shared then nic_tile else Exp_common.boom_tile_b in
  let fs_tile = if shared then nic_tile else Exp_common.boom_tile_c in
  let pager_tile = if shared then nic_tile else Exp_common.boom_tile_d in
  ignore (System.with_pager sys ~tile:pager_tile);
  let fs = Services.make_fs sys ~tile:fs_tile ~blocks:8192 () in
  let net = Services.make_net sys ~host:Nic.Sink () in
  Services.preload_file sys fs ~path:"/requests.bin" requests;
  (* System time = fs + net busy time, read from the "sys" accounting
     bucket of the involved runtimes at each rep boundary. *)
  let tiles = List.sort_uniq compare [ nic_tile; db_tile; fs_tile ] in
  let sys_now () =
    List.fold_left
      (fun acc tile ->
        acc +. Runtime.busy_of_bucket (System.runtime sys ~tile) "sys")
      0.0 tiles
  in
  let samples = ref [] in
  let last_sys = ref 0.0 in
  let vfs_box = ref None and udp_box = ref None in
  let db, db_env =
    System.spawn sys ~tile:db_tile ~name:"db" ~premap:false (fun _ ->
        Cloud.db_program
          ~vfs:(Option.get !vfs_box)
          ~udp:(Option.get !udp_box)
          ~requests_path:"/requests.bin" ~db_dir_base:"/db" ~results_to:peer
          ~reps
          ~on_rep:(fun report ->
            let s = sys_now () in
            samples :=
              (report.Cloud.elapsed, int_of_float (s -. !last_sys)) :: !samples;
            last_sys := s))
  in
  vfs_box := Some (M3v_os.Fs_client.to_vfs (fs.Services.connect db db_env));
  udp_box := Some (Net_client.to_udp (net.Services.net_connect db db_env));
  System.boot sys;
  ignore (System.run sys);
  List.rev !samples

let linux_samples ~reps ~requests =
  let engine = M3v_sim.Engine.create () in
  let lx = Linux_sim.create ~tmpfs_blocks:32768 engine () in
  let nic = Nic.create ~engine ~host:Nic.Sink () in
  Linux_sim.attach_nic lx nic;
  Linux_sim.preload_file lx ~path:"/requests.bin" requests;
  let samples = ref [] in
  let pid_box = ref (-1) in
  let last_sys = ref Time.zero in
  let pid =
    Linux_sim.spawn lx ~name:"db"
      (Cloud.db_program ~vfs:Lx.vfs ~udp:Lx.udp ~requests_path:"/requests.bin"
         ~db_dir_base:"/db" ~results_to:peer ~reps
         ~on_rep:(fun report ->
           let _u, s = Linux_sim.rusage lx !pid_box in
           samples := (report.Cloud.elapsed, Time.sub s !last_sys) :: !samples;
           last_sys := s))
  in
  pid_box := pid;
  Linux_sim.boot lx;
  ignore (M3v_sim.Engine.run engine);
  List.rev !samples

let run ?(pool = Par.Pool.sequential) ?(runs = 8) ?(warmup = 2) ?(records = 200)
    ?(operations = 200) () =
  let reps = runs + warmup in
  (* One task per (workload, config) cell.  [workload_bytes] is
     deterministic per workload (seeded by its name), so recomputing it
     inside each task costs a little redundant work but keeps the tasks
     fully independent. *)
  let combos =
    List.concat_map
      (fun workload ->
        List.map (fun config -> (workload, config)) [ `Iso; `Shared; `Linux ])
      Ycsb.all_workloads
  in
  let samples =
    Par.map pool
      (fun (workload, config) ->
        let requests = workload_bytes ~records ~operations workload in
        match config with
        | `Iso -> m3v_samples ~shared:false ~reps ~requests
        | `Shared -> m3v_samples ~shared:true ~reps ~requests
        | `Linux -> linux_samples ~reps ~requests)
      combos
  in
  let rec group workloads samples =
    match (workloads, samples) with
    | [], [] -> []
    | w :: rest, iso :: shared :: linux :: more ->
        ( Ycsb.workload_name w,
          [
            make_row "M3v (isolated)" iso ~warmup;
            make_row "M3v (shared)" shared ~warmup;
            make_row "Linux" linux ~warmup;
          ] )
        :: group rest more
    | _ -> assert false
  in
  { workloads = group Ycsb.all_workloads samples }

let print r =
  Format.printf "@.== Figure 10: cloud service (YCSB, 200 records / 200 ops) ==@.";
  Format.printf "  %-8s %-16s %10s %10s %10s %10s@." "workload" "config"
    "total[s]" "sd" "user[s]" "sys[s]";
  List.iter
    (fun (name, rows) ->
      List.iter
        (fun row ->
          Format.printf "  %-8s %-16s %10.3f %10.3f %10.3f %10.3f@." name
            row.config row.total_s row.total_sd row.user_s row.sys_s)
        rows)
    r.workloads;
  Format.printf
    "  (paper shapes: M3v shared competitive with Linux for reads/inserts/@.";
  Format.printf
    "   updates; Linux worst on scans; isolated fastest but not comparable.)@."
