(* Migration ablation: an echo server is live-migrated between tiles
   while a client drives a paced RPC stream at it, sweeping the message
   rate.  Each point reports the park-to-resume downtime and checks the
   protocol's delivery guarantee end to end: every request is answered
   exactly once (sequence numbers echoed and verified) even when the
   fault layer aborts migrations mid-protocol.  A blocking-call client
   over a lossless plan means any duplicate or lost message shows up as a
   sequence mismatch or a hung run — there is nothing to average away. *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Fault = M3v_fault.Fault
module Controller = M3v_kernel.Controller
module Par = M3v_par.Par

type point = {
  rate : int;  (** target request rate, msgs/s *)
  migrations : int;  (** completed live migrations *)
  aborts : int;  (** attempts aborted before the flip *)
  downtime_us : float;  (** mean park-to-resume downtime per attempt *)
  replies : int;  (** in-order replies the client verified *)
  served : int;  (** requests the server handled *)
  mismatches : int;  (** out-of-sequence replies (duplicate/loss witness) *)
  completed : bool;  (** both sides ran to the end before the horizon *)
}

type result = {
  rounds : int;
  faulty : bool;  (** ran under a [mig_abort] fault plan *)
  points : point list;
}

type Msg.data += Mig_req of int | Mig_resp of int

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Mig_req]; [%extension_constructor Mig_resp] ]

let msg_size = 64
let horizon = Time.s 4
let max_attempts = 3
let retry_delay = Time.us 500

(* The server starts on [src] and is bounced [hops] times between [src]
   and [dst], spaced evenly through the client's expected run. *)
let src_tile = Exp_common.boom_tile_a
let dst_tile = Exp_common.boom_tile_b
let client_tile = Exp_common.boom_tile_c
let hops = 2

let one_point ~rate ~rounds () =
  let sys = System.create ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let engine = System.engine sys in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let served = ref 0 in
  let replies = ref 0 in
  let mismatches = ref 0 in
  let client_done = ref false in
  let server_done = ref false in
  let server, _ =
    System.spawn sys ~tile:src_tile ~name:"mig-echo" (fun _ ->
        let rec serve n =
          if n = rounds then begin
            server_done := true;
            Proc.return ()
          end
          else
            let* _ep, msg = A.recv ~eps:[ !rgate ] in
            let seq = match msg.Msg.data with Mig_req i -> i | _ -> -1 in
            let* () =
              A.reply ~recv_ep:!rgate ~msg ~size:msg_size (Mig_resp seq)
            in
            incr served;
            serve (n + 1)
        in
        serve 0)
  in
  (* Pace the stream with computed work between blocking calls; the knob
     is a target issue rate, the achieved rate is bounded by RPC latency
     (and by migration downtime — which is the point). *)
  let gap_cycles =
    let ps_per_msg = 1_000_000_000_000 / max 1 rate in
    max 1 (ps_per_msg / 12_500) (* BOOM: 80 MHz, 12.5 ns per cycle *)
  in
  let _client, _ =
    System.spawn sys ~tile:client_tile ~name:"mig-caller" (fun _ ->
        let rec go i =
          if i = rounds then begin
            client_done := true;
            Proc.return ()
          end
          else
            let* () = A.compute gap_cycles in
            let* resp =
              A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:msg_size
                (Mig_req i)
            in
            (match resp.Msg.data with
            | Mig_resp j when j = i -> incr replies
            | _ -> incr mismatches);
            go (i + 1)
        in
        go 0)
  in
  let ch = System.channel sys ~src:_client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  (* Bounce the server between the two tiles at fixed fractions of the
     expected run; an aborted attempt (fault injection) is retried a
     bounded number of times, mirroring what an orchestrator would do. *)
  let expected_ps = rounds * (gap_cycles * 12_500 + 300_000) in
  List.iter
    (fun hop ->
      let at = Time.ps (expected_ps * (hop + 1) / (hops + 1)) in
      let dst = if hop mod 2 = 0 then dst_tile else src_tile in
      let rec attempt n () =
        Controller.migrate ctrl ~act:server ~dst_tile:dst ~k:(function
          | Ok () -> ()
          | Error _ when n + 1 < max_attempts ->
              Engine.after engine ~delay:retry_delay (attempt (n + 1))
          | Error _ -> ())
      in
      Engine.at engine ~time:at (attempt 0))
    (List.init hops Fun.id);
  System.boot sys;
  ignore (System.run ~until:horizon sys);
  let cstats = Controller.stats ctrl in
  let attempts = cstats.Controller.migrations + cstats.Controller.mig_aborts in
  let downtime_us =
    if attempts = 0 then 0.0
    else Time.to_us cstats.Controller.mig_downtime_ps /. float_of_int attempts
  in
  (* Standing migrate/* instruments, one category per sweep point.  They
     record inside this task's registry shard (points fan out over the
     pool), so --metrics output stays byte-identical across --jobs. *)
  if M3v_obs.Metrics.on () then begin
    let cat = Printf.sprintf "rate=%d" rate in
    let c name v = M3v_obs.Metrics.counter_add ~name ~cat (float_of_int v) in
    c "migrate/migrations" cstats.Controller.migrations;
    c "migrate/aborts" cstats.Controller.mig_aborts;
    c "migrate/replies" !replies;
    c "migrate/served" !served;
    c "migrate/mismatches" !mismatches;
    M3v_obs.Metrics.observe ~name:"migrate/downtime_us" ~cat downtime_us
  end;
  {
    rate;
    migrations = cstats.Controller.migrations;
    aborts = cstats.Controller.mig_aborts;
    downtime_us;
    replies = !replies;
    served = !served;
    mismatches = !mismatches;
    completed = !client_done && !server_done;
  }

(* mig_abort only: the delivery check must witness the migration
   machinery itself, not packet loss recovered by retransmission. *)
let faulty_spec = { Fault.none with Fault.mig_abort = 4 }

let default_rates = [ 2_000; 10_000; 40_000 ]

let run ?(pool = Par.Pool.sequential) ?(rounds = 300) ?(rates = default_rates)
    ?(faulty = false) ?(seed = 11) () =
  (* Each point owns its system (and, when faulty, its domain-local fault
     plan), so points fan out as independent tasks and merge in
     submission order — byte-identical output across --jobs settings. *)
  let points =
    Par.map pool
      (fun (i, rate) ->
        if faulty then
          let plan = Fault.create ~seed:(seed + i) faulty_spec in
          Fault.with_plan plan (fun () -> one_point ~rate ~rounds ())
        else one_point ~rate ~rounds ())
      (List.mapi (fun i r -> (i, r)) rates)
  in
  { rounds; faulty; points }

let print r =
  Format.printf
    "@.== Live migration: downtime vs message rate (%d RPCs, %d hops%s) ==@."
    r.rounds hops
    (if r.faulty then ", mig_abort faults" else "");
  Format.printf "  %10s %6s %7s %13s %9s %8s %11s %6s@." "rate(/s)" "migs"
    "aborts" "downtime(us)" "replies" "served" "mismatches" "ok";
  List.iter
    (fun p ->
      Format.printf "  %10d %6d %7d %13.1f %9d %8d %11d %6s@." p.rate
        p.migrations p.aborts p.downtime_us p.replies p.served p.mismatches
        (if p.completed && p.mismatches = 0 && p.replies = r.rounds then "yes"
         else "NO"))
    r.points
