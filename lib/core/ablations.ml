open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Topology = M3v_noc.Topology
module Controller = M3v_kernel.Controller
module Fs_client = M3v_os.Fs_client
module Fs_proto = M3v_os.Fs_proto
module Trace = M3v_apps.Trace

type row = { knob : string; value : float; metric : string }
type result = { study : string; rows : row list }

(* --- extent size: sequential read throughput vs the extent cap --- *)

let read_throughput ~max_extent_blocks =
  let sys = System.create ~variant:System.M3v () in
  let file_size = 1024 * 1024 in
  let fs =
    Services.make_fs sys ~tile:3 ~blocks:1024 ~max_extent_blocks ()
  in
  Services.preload_file sys fs ~path:"/f" (Bytes.make file_size 'x');
  let elapsed = ref Time.zero in
  let client_box = ref None in
  let aid, env =
    System.spawn sys ~tile:2 ~name:"reader" (fun _ ->
        let client = Option.get !client_box in
        let* fd = Fs_client.open_ client "/f" Fs_proto.rdonly in
        let fd = match fd with Ok fd -> fd | Error e -> failwith e in
        let* buf = A.alloc_buf 4096 in
        let* t0 = A.now in
        let rec drain () =
          let* n = Fs_client.read client ~fd ~buf ~len:4096 in
          if n = 0 then Proc.return () else drain ()
        in
        let* () = drain () in
        let* t1 = A.now in
        elapsed := Time.sub t1 t0;
        Proc.return ())
  in
  client_box := Some (fs.Services.connect aid env);
  System.boot sys;
  ignore (System.run sys);
  float_of_int file_size /. 1024.0 /. 1024.0 /. Time.to_s !elapsed

let extent_size ?(caps = [ 1; 4; 16; 64 ]) () =
  {
    study = "extent cap vs sequential read throughput (MiB/s)";
    rows =
      List.map
        (fun cap ->
          {
            knob = Printf.sprintf "%d blocks/extent" cap;
            value = read_throughput ~max_extent_blocks:cap;
            metric = "MiB/s";
          })
        caps;
  }

(* --- vDTU TLB capacity: fault rate under a wide buffer working set --- *)

type Msg.data += Ab_ping

let () = M3v_sim.Checkpoint.register_exts [ [%extension_constructor Ab_ping] ]

let tlb_run ~tlb_capacity ~pages =
  let sys = System.create ~tlb_capacity ~variant:System.M3v () in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let elapsed = ref Time.zero in
  let sink, _ =
    System.spawn sys ~tile:3 ~name:"sink" (fun _ ->
        let rec loop () =
          let* _ep, msg = A.recv ~eps:[ !rgate ] in
          let* () = A.ack ~ep:!rgate msg in
          loop ()
        in
        loop ())
  in
  let src, _ =
    System.spawn sys ~tile:2 ~name:"source" (fun _ ->
        (* One buffer page per message, round robin over a working set
           wider than (or within) the vDTU TLB. *)
        let* buf = A.alloc_buf (pages * 4096) in
        let* t0 = A.now in
        let* () =
          Proc.repeat 600 (fun i ->
              let vaddr = buf.M3v_mux.Act_ops.vaddr + (i mod pages * 4096) in
              A.send ~ep:(fst !chan) ~vaddr ~size:64 Ab_ping)
        in
        let* t1 = A.now in
        elapsed := Time.sub t1 t0;
        Proc.return ())
  in
  let ch = System.channel sys ~src ~dst:sink ~credits:8 ~slots:16 () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  let tlb = M3v_dtu.Dtu.tlb (M3v_tile.Platform.dtu (System.platform sys) 2) in
  let stats = M3v_dtu.Tlb.stats tlb in
  (Time.to_us !elapsed /. 600.0, stats.M3v_dtu.Tlb.misses)

(* Cyclic page access under FIFO replacement thrashes completely once the
   working set exceeds the capacity, so we sweep the working set against
   the paper-sized 32-entry TLB: within capacity, one cold miss per page;
   beyond it, every send pays the TMCall translate path. *)
let tlb_capacity ?(capacities = [ 32 ]) () =
  let working_sets = [ 8; 24; 48; 96 ] in
  let cap = match capacities with c :: _ -> c | [] -> 32 in
  {
    study =
      Printf.sprintf
        "sender working set vs vDTU TLB (%d entries): per-send us / misses" cap;
    rows =
      List.concat_map
        (fun pages ->
          let us, misses = tlb_run ~tlb_capacity:cap ~pages in
          [
            { knob = Printf.sprintf "%d pages" pages; value = us; metric = "us/send" };
            {
              knob = Printf.sprintf "%d pages" pages;
              value = float_of_int misses;
              metric = "TLB misses";
            };
          ])
        working_sets;
  }

(* --- NoC topology: remote RPC latency across placements --- *)

let topo_rpc ~make_topo =
  let spec = M3v_tile.Platform.fpga_spec () in
  let topology = make_topo ~tiles:(List.length spec) in
  let sys = System.create ~spec ~topology ~variant:System.M3v () in
  let rounds = 150 in
  let rgate = ref (-1) in
  let chan = ref (-1, -1) in
  let elapsed = ref Time.zero in
  let server, _ =
    System.spawn sys ~tile:7 ~name:"server" (fun _ ->
        Proc.repeat rounds (fun _ ->
            let* _ep, msg = A.recv ~eps:[ !rgate ] in
            A.reply ~recv_ep:!rgate ~msg ~size:8 Ab_ping))
  in
  let client, _ =
    System.spawn sys ~tile:2 ~name:"client" (fun _ ->
        let* t0 = A.now in
        let* () =
          Proc.repeat rounds (fun _ ->
              let* _ = A.call ~sgate:(fst !chan) ~reply_ep:(snd !chan) ~size:8 Ab_ping in
              Proc.return ())
        in
        let* t1 = A.now in
        elapsed := Time.sub t1 t0;
        Proc.return ())
  in
  let ch = System.channel sys ~src:client ~dst:server () in
  rgate := ch.System.rgate;
  chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  Time.to_us !elapsed /. float_of_int rounds

let topology () =
  {
    study = "NoC topology vs remote RPC latency (tiles 2 -> 7)";
    rows =
      [
        {
          knob = "2x2 star-mesh (paper)";
          value = topo_rpc ~make_topo:(fun ~tiles -> Topology.star_mesh_2x2 ~tiles);
          metric = "us/RPC";
        };
        {
          knob = "single crossbar router";
          value = topo_rpc ~make_topo:(fun ~tiles -> Topology.single_router ~tiles);
          metric = "us/RPC";
        };
        {
          knob = "4-router ring";
          value = topo_rpc ~make_topo:(fun ~tiles -> Topology.ring ~routers:4 ~tiles);
          metric = "us/RPC";
        };
      ];
  }

(* --- M3x endpoint-state size: slow-path throughput vs per-activity
   endpoint count (what the controller must save/restore remotely) --- *)

let mx_throughput ~extra_eps =
  let trace = Trace.find_trace ~dirs:4 ~files_per_dir:10 () in
  let spec = M3v_tile.Platform.gem5_spec ~user_tiles:1 () in
  let sys = System.create ~spec ~variant:System.M3x () in
  let fs = Services.make_fs sys ~tile:1 ~blocks:512 () in
  M3v_apps.Traceplayer.setup_fs (M3v_os.M3fs.core fs.Services.fs_handle) trace;
  let res = M3v_apps.Traceplayer.make_results () in
  let client_box = ref None in
  let aid, env =
    System.spawn sys ~tile:1 ~name:"player"
      (M3v_apps.Traceplayer.program res
         ~client:(lazy (Option.get !client_box))
         ~trace ~runs:2 ~warmup:1)
  in
  client_box := Some (fs.Services.connect aid env);
  (* Inflate the endpoint state the controller must move on each remote
     context switch. *)
  let ctrl = System.controller sys in
  (* Two activities share the tile's 128 endpoints; stay within range. *)
  for _ = 1 to min extra_eps 48 do
    ignore (Controller.host_alloc_ep ctrl ~tile:1 ~act:aid);
    ignore (Controller.host_alloc_ep ctrl ~tile:1 ~act:fs.Services.fs_aid)
  done;
  System.boot sys;
  ignore (System.run sys);
  let times = res.M3v_apps.Traceplayer.run_times in
  let total = List.fold_left Time.add Time.zero times in
  float_of_int (List.length times) /. Time.to_s total

let mx_ep_state ?(extra_eps = [ 0; 16; 32; 48 ]) () =
  {
    study = "M3x: per-activity endpoints vs slow-path throughput (runs/s)";
    rows =
      List.map
        (fun extra ->
          {
            knob = Printf.sprintf "+%d endpoints/activity" extra;
            value = mx_throughput ~extra_eps:extra;
            metric = "runs/s";
          })
        extra_eps;
  }

let run_all ?(pool = M3v_par.Par.Pool.sequential) () =
  M3v_par.Par.all pool
    [
      (fun () -> extent_size ());
      (fun () -> tlb_capacity ());
      (fun () -> topology ());
      (fun () -> mx_ep_state ());
    ]

let print r =
  Format.printf "@.== Ablation: %s ==@." r.study;
  List.iter
    (fun row ->
      Format.printf "  %-26s %12.2f %s@." row.knob row.value row.metric)
    r.rows
