(** Internet-scale load harness (the standing latency-vs-load experiment).

    Sweeps offered load over a configurable client fleet
    ({!M3v_load.Fleet}) driving the net stack, m3fs and the key-value
    service concurrently — the KV traffic fans into one shared MPMC
    receive gate, fs/net use ordinary point-to-point channels.  Each
    step reports goodput and per-class latency percentiles; the sweep is
    scanned for the saturation knee (first step whose p99 breaks the SLO
    or whose marginal goodput stops scaling) and the knee's bottleneck
    is attributed from the critical-path profiler's segment means. *)

type config = {
  clients : int;
  drivers : int;  (** driver activities the clients multiplex onto *)
  rate_per_s : float;  (** aggregate offered load at step fraction 1.0 *)
  closed : bool;  (** closed loop (think time) instead of open loop *)
  think_ms : int;  (** closed-loop mean think time at fraction 1.0 *)
  arrivals : M3v_load.Fleet.arrivals;  (** open-loop arrival process *)
  mix : (M3v_load.Fleet.kind * int) list;
  skew : float;  (** Zipf theta over the key space *)
  keys : int;
  duration_ms : int;  (** measurement window *)
  warmup_ms : int;
  fracs : float list;  (** load steps, as fractions of [rate_per_s] *)
  slo_p99_us : float;
  seed : int;
}

val default : config

type step = {
  st_frac : float;
  st_offered : float;  (** measured offered rate, req/s *)
  st_scheduled : int;
  st_completed : int;
  st_errors : int;
  st_goodput : float;
  st_rows : M3v_load.Slo.row list;
  st_p99_us : float;
  st_segments : (string * float) list;
  st_credit_stalls : int;
  st_sends : int;
}

type result = {
  r_cfg : config;
  r_steps : step list;
  r_verdict : M3v_load.Knee.verdict;
  r_attribution : string;
}

(** Steps fan out over [pool] as independent simulations and merge in
    submission order, so reports are byte-identical across [--jobs]
    settings.  Raises [Invalid_argument] on an empty step list or a
    driver count outside the services' endpoint provisioning. *)
val run : ?pool:M3v_par.Par.Pool.t -> ?shards:int -> ?cfg:config -> unit -> result

val pp : Format.formatter -> result -> unit
val print : result -> unit
