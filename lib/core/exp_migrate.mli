(** Live-migration ablation: an echo server is migrated back and forth
    between tiles while a client drives a paced RPC stream at it.

    Sweeps the request rate and reports per point the completed
    migrations, injected aborts, mean park-to-resume downtime, and the
    end-to-end delivery check: with a blocking-call client on a lossless
    plan, every request must come back exactly once and in sequence —
    [mismatches = 0] and [replies = rounds] witness exactly-once delivery
    through the migration (and through aborted attempts when [faulty]
    installs a [mig_abort] fault plan). *)

type point = {
  rate : int;  (** target request rate, msgs/s *)
  migrations : int;  (** completed live migrations *)
  aborts : int;  (** attempts aborted before the flip *)
  downtime_us : float;  (** mean park-to-resume downtime per attempt *)
  replies : int;  (** in-order replies the client verified *)
  served : int;  (** requests the server handled *)
  mismatches : int;  (** out-of-sequence replies (duplicate/loss witness) *)
  completed : bool;  (** both sides ran to the end before the horizon *)
}

type result = { rounds : int; faulty : bool; points : point list }

val run :
  ?pool:M3v_par.Par.Pool.t ->
  ?rounds:int ->
  ?rates:int list ->
  ?faulty:bool ->
  ?seed:int ->
  unit ->
  result

val print : result -> unit

(** One configuration (exposed for tests). *)
val one_point : rate:int -> rounds:int -> unit -> point
