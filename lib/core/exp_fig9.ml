module Time = M3v_sim.Time
module Trace = M3v_apps.Trace
module Traceplayer = M3v_apps.Traceplayer
module M3fs = M3v_os.M3fs
module Par = M3v_par.Par

type point = {
  tiles : int;
  m3v_find : float option;
  m3x_find : float option;
  m3v_sqlite : float option;
  m3x_sqlite : float option;
}

type result = { points : point list }

(* One traceplayer + one m3fs instance per user tile, co-located. *)
let throughput ?shards ~variant ~trace ~tiles ~runs ~warmup () =
  let spec = M3v_tile.Platform.gem5_spec ~user_tiles:tiles () in
  let sys = System.create ~spec ?shards ~variant () in
  let results =
    List.init tiles (fun i ->
        let tile = 1 + i in
        let fs = Services.make_fs sys ~tile ~blocks:2048 () in
        Traceplayer.setup_fs (M3fs.core fs.Services.fs_handle) trace;
        let res = Traceplayer.make_results () in
        let client_box = ref None in
        let aid, env =
          System.spawn sys ~tile ~name:(Printf.sprintf "player%d" i)
            (Traceplayer.program res
               ~client:(lazy (Option.get !client_box))
               ~trace ~runs ~warmup)
        in
        client_box := Some (fs.Services.connect aid env);
        res)
  in
  System.boot sys;
  ignore (System.run sys);
  (* Steady-state throughput: each player's rate is runs / sum of its own
     run times; the system rate is the sum over players. *)
  List.fold_left
    (fun acc res ->
      let times = res.Traceplayer.run_times in
      if res.Traceplayer.runs_completed = 0 || times = [] then acc
      else begin
        let total = List.fold_left Time.add Time.zero times in
        acc +. (float_of_int (List.length times) /. Time.to_s total)
      end)
    0.0 results

let run ?(pool = Par.Pool.sequential) ?shards ?(runs = 3) ?(warmup = 1)
    ?(tile_counts = [ 1; 2; 4; 8; 12 ]) () =
  let find = Trace.find_trace () in
  let sqlite = Trace.sqlite_trace () in
  (* One task per (tile count, series) point — every [throughput] call
     builds its own System, so all points are independent.  The traces
     are shared read-only.  Merging in submission order makes the result
     independent of how many workers ran it. *)
  let combos =
    List.concat_map
      (fun tiles ->
        List.map
          (fun (variant, trace) -> (tiles, variant, trace))
          [
            (System.M3v, find);
            (System.M3x, find);
            (System.M3v, sqlite);
            (System.M3x, sqlite);
          ])
      tile_counts
  in
  let values =
    Par.map pool
      (fun (tiles, variant, trace) ->
        throughput ?shards ~variant ~trace ~tiles ~runs ~warmup ())
      combos
  in
  let rec group tile_counts values =
    match (tile_counts, values) with
    | [], [] -> []
    | tiles :: rest, vf :: xf :: vs :: xs :: more ->
        {
          tiles;
          m3v_find = Some vf;
          m3x_find = Some xf;
          m3v_sqlite = Some vs;
          m3x_sqlite = Some xs;
        }
        :: group rest more
    | _ -> assert false
  in
  { points = group tile_counts values }

let print r =
  Exp_common.print_series
    ~title:"Figure 9: scalability with tile multiplexing (runs/s, 3 GHz x86-OOO)"
    ~x_label:"tiles"
    ~series_labels:[ "M3x find"; "M3v find"; "M3x SQLite"; "M3v SQLite" ]
    (List.map
       (fun p ->
         ( float_of_int p.tiles,
           [ p.m3x_find; p.m3v_find; p.m3x_sqlite; p.m3v_sqlite ] ))
       r.points);
  Format.printf
    "  (paper: M3x find 45/49/94 runs/s at 1/2/4 tiles, unreliable beyond;@.";
  Format.printf
    "   M3x SQLite 49/82/86/68 at 1/2/4/8; M3v scales ~linearly to 12 tiles@.";
  Format.printf
    "   from 84 (find) and 111 (SQLite) runs/s at one tile.)@."
