(* Chaos soak (robustness): drive an fs streaming workload and a kv-style
   inline-RPC workload through m3fs while a deterministic fault plan
   drops/duplicates/delays NoC packets, glitches DTU commands and
   crashes/hangs activities — and check that the recovery machinery (DTU
   retransmit, TileMux watchdog, controller restarts, client RPC
   deadlines) carries both workloads to completion with intact data. *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module A = M3v_mux.Act_api
module Fs_client = M3v_os.Fs_client
module Fs_proto = M3v_os.Fs_proto
module Fault = M3v_fault.Fault
module Controller = M3v_kernel.Controller
module Platform = M3v_tile.Platform
module Dtu = M3v_dtu.Dtu

type result = {
  spec : Fault.spec;
  seed : int;
  fs_done : bool;  (** the fs client ran all its rounds to the end *)
  kv_done : bool;  (** the kv client ran all its ops to the end *)
  fs_rounds : int;  (** rounds fully completed (restarts repeat rounds) *)
  data_ok : bool;  (** every completed read round returned intact bytes *)
  kv_ok : int;
  kv_errors : int;  (** ops that surfaced [R_err] (e.g. EIO) *)
  fault_stats : Fault.stats;
  dtu_retries : int;
  dtu_timeouts : int;
  dtu_dup_drops : int;
  crashes : int;
  restarts : int;
  credits_reclaimed : int;
  end_time : Time.t;
}

let default_spec =
  {
    Fault.none with
    Fault.drop = 0.01;
    dup = 0.005;
    delay = 0.01;
    cmd_fail = 0.005;
    crash = 2;
    hang = 1;
  }

let file_size = 64 * 1024
let buffer_size = 4096
let write_chunks = 4
let kv_keys = 32
let kv_vsize = 64

(* Stream /chaos.bin end to end, then write a few buffers to /out.bin.
   Faulted RPCs surface as [Error]/short transfers; the round is then not
   counted and the next one starts over. *)
let fs_program ~client_box ~rounds ~completed ~data_ok ~finished _env =
  let client = Option.get !client_box in
  let vfs = Fs_client.to_vfs client in
  let* buf = A.alloc_buf buffer_size in
  let read_round () =
    let* fd = vfs.M3v_os.Vfs.open_ "/chaos.bin" Fs_proto.rdonly in
    match fd with
    | Error _ -> Proc.return false
    | Ok fd ->
        let total = ref 0 in
        let clean = ref true in
        let rec drain () =
          let* n = vfs.M3v_os.Vfs.read fd buf buffer_size in
          if n = 0 then Proc.return ()
          else begin
            for i = 0 to n - 1 do
              if Bytes.get buf.M3v_mux.Act_ops.data i <> 'p' then clean := false
            done;
            total := !total + n;
            drain ()
          end
        in
        let* () = drain () in
        let* () = vfs.M3v_os.Vfs.close fd in
        Proc.return (!total = file_size && !clean)
  in
  let write_round () =
    let* fd = vfs.M3v_os.Vfs.open_ "/out.bin" Fs_proto.wronly in
    match fd with
    | Error _ -> Proc.return false
    | Ok fd ->
        Bytes.fill buf.M3v_mux.Act_ops.data 0 buffer_size 'w';
        let written = ref 0 in
        let* () =
          Proc.repeat write_chunks (fun _ ->
              let* n = vfs.M3v_os.Vfs.write fd buf buffer_size in
              written := !written + n;
              Proc.return ())
        in
        let* () = vfs.M3v_os.Vfs.close fd in
        Proc.return (!written = write_chunks * buffer_size)
  in
  let* () =
    Proc.repeat rounds (fun _ ->
        let* r_ok = read_round () in
        let* w_ok = write_round () in
        if r_ok && w_ok then incr completed;
        if not r_ok then data_ok := false;
        Proc.return ())
  in
  finished := true;
  Proc.return ()

(* Keyed puts and gets over m3fs inline RPCs; every reply is checked.
   [R_err] replies (bounded-retry exhaustion while the server is down)
   are counted, not fatal. *)
let kv_program ~client_box ~ops ~ok ~errors ~finished _env =
  let client = Option.get !client_box in
  let kv_flags =
    (* writable, but neither create nor truncate: the store is preloaded *)
    { Fs_proto.fl_write = true; fl_create = false; fl_trunc = false }
  in
  let* fd = Fs_client.rpc client (Fs_proto.Open { path = "/kv.bin"; flags = kv_flags }) in
  match fd with
  | Fs_proto.R_fd fd ->
      let value key = Bytes.make kv_vsize (Char.chr (Char.code 'a' + (key mod 26))) in
      let* () =
        Proc.repeat ops (fun i ->
            (* Op pairs: put key, then get it back and compare. *)
            let key = i / 2 mod kv_keys in
            let off = key * kv_vsize in
            if i mod 2 = 0 then
              let* rep =
                Fs_client.rpc client
                  (Fs_proto.Write_inline { fd; off; data = value key })
              in
              match rep with
              | Fs_proto.R_ok -> incr ok; Proc.return ()
              | _ -> incr errors; Proc.return ()
            else
              let* rep =
                Fs_client.rpc client
                  (Fs_proto.Read_inline { fd; off; len = kv_vsize })
              in
              match rep with
              | Fs_proto.R_data data when Bytes.equal data (value key) ->
                  incr ok; Proc.return ()
              | _ -> incr errors; Proc.return ())
      in
      let* _ = Fs_client.rpc client (Fs_proto.Close { fd; size = kv_keys * kv_vsize }) in
      finished := true;
      Proc.return ()
  | _ ->
      (* Could not even open the store: give up (counts as not done). *)
      Proc.return ()

let run ?(spec = default_spec) ?(seed = 7) ?(fs_rounds = 5) ?(kv_ops = 120) () =
  let plan = Fault.create ~seed spec in
  Fault.with_plan plan (fun () ->
      let sys = System.create ~variant:System.M3v () in
      let ctrl = System.controller sys in
      let pager = System.with_pager sys ~tile:Exp_common.boom_tile_d in
      (* The pager is a single point of failure for every demand-paged
         activity; a real deployment would run it redundantly. *)
      Fault.protect plan ~act:pager;
      let fs = Services.make_fs sys ~tile:Exp_common.boom_tile_c ~blocks:4096 () in
      Controller.set_restartable ctrl ~act:fs.Services.fs_aid ~max_restarts:16;
      Services.preload_file sys fs ~path:"/chaos.bin" (Bytes.make file_size 'p');
      Services.preload_file sys fs ~path:"/kv.bin"
        (Bytes.make (kv_keys * kv_vsize) 'a');
      let completed = ref 0 and data_ok = ref true and fs_finished = ref false in
      let kv_ok = ref 0 and kv_errors = ref 0 and kv_finished = ref false in
      let fs_box = ref None and kv_box = ref None in
      let fs_aid, fs_env =
        System.spawn sys ~tile:Exp_common.boom_tile_a ~name:"chaos-fs"
          (fs_program ~client_box:fs_box ~rounds:fs_rounds ~completed ~data_ok
             ~finished:fs_finished)
      in
      let kv_aid, kv_env =
        System.spawn sys ~tile:Exp_common.boom_tile_b ~name:"chaos-kv"
          (kv_program ~client_box:kv_box ~ops:kv_ops ~ok:kv_ok ~errors:kv_errors
             ~finished:kv_finished)
      in
      Controller.set_restartable ctrl ~act:fs_aid ~max_restarts:8;
      Controller.set_restartable ctrl ~act:kv_aid ~max_restarts:8;
      fs_box := Some (fs.Services.connect fs_aid fs_env);
      kv_box := Some (fs.Services.connect kv_aid kv_env);
      System.boot sys;
      ignore (System.run ~until:(Time.s 2) sys);
      let platform = System.platform sys in
      let tiles =
        Platform.processing_tiles platform
        @ [ Platform.controller_tile platform ]
      in
      let retries, timeouts, dup_drops =
        List.fold_left
          (fun (r, t, d) tile ->
            let s = Dtu.stats (Platform.dtu platform tile) in
            ( r + s.Dtu.retries,
              t + s.Dtu.timeouts,
              d + s.Dtu.dup_drops ))
          (0, 0, 0) tiles
      in
      let cstats = Controller.stats ctrl in
      {
        spec;
        seed;
        fs_done = !fs_finished;
        kv_done = !kv_finished;
        fs_rounds = !completed;
        data_ok = !data_ok;
        kv_ok = !kv_ok;
        kv_errors = !kv_errors;
        fault_stats = Fault.stats plan;
        dtu_retries = retries;
        dtu_timeouts = timeouts;
        dtu_dup_drops = dup_drops;
        crashes = cstats.Controller.crashes;
        restarts = cstats.Controller.restarts;
        credits_reclaimed = cstats.Controller.credits_reclaimed;
        end_time = Engine.now (System.engine sys);
      })

(* Multi-seed soak sweep.  Each seed is an independent task: [run]
   installs its plan domain-locally inside the task, so workers cannot see
   each other's fault schedules.  Results come back in seed order;
   liveness lines go through [Par.progress] (a single mutex-protected
   stderr writer), so concurrent workers cannot interleave characters
   within a line. *)
let run_sweep ?(pool = M3v_par.Par.Pool.sequential) ?(spec = default_spec)
    ?(seed = 7) ?(seeds = 1) ?(fs_rounds = 5) ?(kv_ops = 120) () =
  let n = max 1 seeds in
  List.init n (fun i ->
      let seed = seed + i in
      M3v_par.Par.submit pool (fun () ->
          let r = run ~spec ~seed ~fs_rounds ~kv_ops () in
          M3v_par.Par.progress
            (Printf.sprintf "chaos: seed %d done (fs %s, kv %s, %d restarts)"
               seed
               (if r.fs_done then "ok" else "FAILED")
               (if r.kv_done then "ok" else "FAILED")
               r.restarts);
          r))
  |> List.map M3v_par.Par.await

let print r =
  let ff = Format.std_formatter in
  Format.fprintf ff "@.Chaos soak: faults=%s seed=%d@."
    (Fault.spec_to_string r.spec)
    r.seed;
  Format.fprintf ff "  injected: %a@." Fault.pp_stats r.fault_stats;
  Format.fprintf ff
    "  recovery: dtu retries=%d timeouts=%d dup-drops=%d | crashes=%d \
     restarts=%d credits-reclaimed=%d@."
    r.dtu_retries r.dtu_timeouts r.dtu_dup_drops r.crashes r.restarts
    r.credits_reclaimed;
  Format.fprintf ff
    "  fs: %s (%d full rounds, data %s) | kv: %s (%d ok, %d errors)@."
    (if r.fs_done then "completed" else "DID NOT FINISH")
    r.fs_rounds
    (if r.data_ok then "intact" else "CORRUPT")
    (if r.kv_done then "completed" else "DID NOT FINISH")
    r.kv_ok r.kv_errors;
  Format.fprintf ff "  simulated time: %.3f ms@." (Time.to_s r.end_time *. 1e3)
