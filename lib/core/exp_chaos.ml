(* Chaos soak (robustness): drive an fs streaming workload and a kv-style
   inline-RPC workload through m3fs while a deterministic fault plan
   drops/duplicates/delays NoC packets, glitches DTU commands and
   crashes/hangs activities — and check that the recovery machinery (DTU
   retransmit, TileMux watchdog, controller restarts, client RPC
   deadlines) carries both workloads to completion with intact data. *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Engine = M3v_sim.Engine
module A = M3v_mux.Act_api
module Fs_client = M3v_os.Fs_client
module Fs_proto = M3v_os.Fs_proto
module Fault = M3v_fault.Fault
module Controller = M3v_kernel.Controller
module Platform = M3v_tile.Platform
module Dtu = M3v_dtu.Dtu
module Msg = M3v_dtu.Msg
module Checkpoint = M3v_sim.Checkpoint

type result = {
  spec : Fault.spec;
  seed : int;
  fs_done : bool;  (** the fs client ran all its rounds to the end *)
  kv_done : bool;  (** the kv client ran all its ops to the end *)
  fs_rounds : int;  (** rounds fully completed (restarts repeat rounds) *)
  data_ok : bool;  (** every completed read round returned intact bytes *)
  kv_ok : int;
  kv_errors : int;  (** ops that surfaced [R_err] (e.g. EIO) *)
  fault_stats : Fault.stats;
  dtu_retries : int;
  dtu_timeouts : int;
  dtu_dup_drops : int;
  crashes : int;
  restarts : int;
  credits_reclaimed : int;
  end_time : Time.t;
}

let default_spec =
  {
    Fault.none with
    Fault.drop = 0.01;
    dup = 0.005;
    delay = 0.01;
    cmd_fail = 0.005;
    crash = 2;
    hang = 1;
  }

let file_size = 64 * 1024
let buffer_size = 4096
let write_chunks = 4
let kv_keys = 32
let kv_vsize = 64

(* Stream /chaos.bin end to end, then write a few buffers to /out.bin.
   Faulted RPCs surface as [Error]/short transfers; the round is then not
   counted and the next one starts over. *)
let fs_program ~client_box ~rounds ~completed ~data_ok ~finished _env =
  let client = Option.get !client_box in
  let vfs = Fs_client.to_vfs client in
  let* buf = A.alloc_buf buffer_size in
  let read_round () =
    let* fd = vfs.M3v_os.Vfs.open_ "/chaos.bin" Fs_proto.rdonly in
    match fd with
    | Error _ -> Proc.return false
    | Ok fd ->
        let total = ref 0 in
        let clean = ref true in
        let rec drain () =
          let* n = vfs.M3v_os.Vfs.read fd buf buffer_size in
          if n = 0 then Proc.return ()
          else begin
            for i = 0 to n - 1 do
              if Bytes.get buf.M3v_mux.Act_ops.data i <> 'p' then clean := false
            done;
            total := !total + n;
            drain ()
          end
        in
        let* () = drain () in
        let* () = vfs.M3v_os.Vfs.close fd in
        Proc.return (!total = file_size && !clean)
  in
  let write_round () =
    let* fd = vfs.M3v_os.Vfs.open_ "/out.bin" Fs_proto.wronly in
    match fd with
    | Error _ -> Proc.return false
    | Ok fd ->
        Bytes.fill buf.M3v_mux.Act_ops.data 0 buffer_size 'w';
        let written = ref 0 in
        let* () =
          Proc.repeat write_chunks (fun _ ->
              let* n = vfs.M3v_os.Vfs.write fd buf buffer_size in
              written := !written + n;
              Proc.return ())
        in
        let* () = vfs.M3v_os.Vfs.close fd in
        Proc.return (!written = write_chunks * buffer_size)
  in
  let* () =
    Proc.repeat rounds (fun _ ->
        let* r_ok = read_round () in
        let* w_ok = write_round () in
        if r_ok && w_ok then incr completed;
        if not r_ok then data_ok := false;
        Proc.return ())
  in
  finished := true;
  Proc.return ()

(* Keyed puts and gets over m3fs inline RPCs; every reply is checked.
   [R_err] replies (bounded-retry exhaustion while the server is down)
   are counted, not fatal. *)
let kv_program ~client_box ~ops ~ok ~errors ~finished _env =
  let client = Option.get !client_box in
  let kv_flags =
    (* writable, but neither create nor truncate: the store is preloaded *)
    { Fs_proto.fl_write = true; fl_create = false; fl_trunc = false }
  in
  let* fd = Fs_client.rpc client (Fs_proto.Open { path = "/kv.bin"; flags = kv_flags }) in
  match fd with
  | Fs_proto.R_fd fd ->
      let value key = Bytes.make kv_vsize (Char.chr (Char.code 'a' + (key mod 26))) in
      let* () =
        Proc.repeat ops (fun i ->
            (* Op pairs: put key, then get it back and compare. *)
            let key = i / 2 mod kv_keys in
            let off = key * kv_vsize in
            if i mod 2 = 0 then
              let* rep =
                Fs_client.rpc client
                  (Fs_proto.Write_inline { fd; off; data = value key })
              in
              match rep with
              | Fs_proto.R_ok -> incr ok; Proc.return ()
              | _ -> incr errors; Proc.return ()
            else
              let* rep =
                Fs_client.rpc client
                  (Fs_proto.Read_inline { fd; off; len = kv_vsize })
              in
              match rep with
              | Fs_proto.R_data data when Bytes.equal data (value key) ->
                  incr ok; Proc.return ()
              | _ -> incr errors; Proc.return ())
      in
      let* _ = Fs_client.rpc client (Fs_proto.Close { fd; size = kv_keys * kv_vsize }) in
      finished := true;
      Proc.return ()
  | _ ->
      (* Could not even open the store: give up (counts as not done). *)
      Proc.return ()

(* The full simulation state of one soak, as a checkpointable root.  The
   engine's event heap holds closures over every component, so marshalling
   this record (with closures) captures the entire simulator; the extra
   fields carry what [collect] needs plus the domain-local values Marshal
   cannot see (the fault plan is reinstalled and the message uid counter
   reset on restore). *)
type state = {
  ck_sys : System.t;
  ck_plan : Fault.t;
  ck_spec : Fault.spec;
  ck_seed : int;
  ck_completed : int ref;
  ck_data_ok : bool ref;
  ck_fs_finished : bool ref;
  ck_kv_ok : int ref;
  ck_kv_errors : int ref;
  ck_kv_finished : bool ref;
  ck_until : Time.t;  (** soak horizon (simulated) *)
  ck_every : Time.t;  (** checkpoint interval; [zero] disables *)
  ck_file : string;
  mutable ck_slice : int;  (** next slice index (slice ends at index*every) *)
  mutable ck_msg_uid : int;  (** {!Msg.uid_counter} at save time *)
}

let horizon = Time.s 2

(* Build and boot the whole system; the caller must have the plan
   installed (programs and recovery machinery consult it domain-locally
   while the simulation runs). *)
let setup ?shards ~plan ~spec ~seed ~fs_rounds ~kv_ops ~every ~file () =
  let sys = System.create ?shards ~variant:System.M3v () in
  let ctrl = System.controller sys in
  let pager = System.with_pager sys ~tile:Exp_common.boom_tile_d in
  (* The pager is a single point of failure for every demand-paged
     activity; a real deployment would run it redundantly. *)
  Fault.protect plan ~act:pager;
  let fs = Services.make_fs sys ~tile:Exp_common.boom_tile_c ~blocks:4096 () in
  Controller.set_restartable ctrl ~act:fs.Services.fs_aid ~max_restarts:16;
  Services.preload_file sys fs ~path:"/chaos.bin" (Bytes.make file_size 'p');
  Services.preload_file sys fs ~path:"/kv.bin"
    (Bytes.make (kv_keys * kv_vsize) 'a');
  let completed = ref 0 and data_ok = ref true and fs_finished = ref false in
  let kv_ok = ref 0 and kv_errors = ref 0 and kv_finished = ref false in
  let fs_box = ref None and kv_box = ref None in
  let fs_aid, fs_env =
    System.spawn sys ~tile:Exp_common.boom_tile_a ~name:"chaos-fs"
      (fs_program ~client_box:fs_box ~rounds:fs_rounds ~completed ~data_ok
         ~finished:fs_finished)
  in
  let kv_aid, kv_env =
    System.spawn sys ~tile:Exp_common.boom_tile_b ~name:"chaos-kv"
      (kv_program ~client_box:kv_box ~ops:kv_ops ~ok:kv_ok ~errors:kv_errors
         ~finished:kv_finished)
  in
  Controller.set_restartable ctrl ~act:fs_aid ~max_restarts:8;
  Controller.set_restartable ctrl ~act:kv_aid ~max_restarts:8;
  fs_box := Some (fs.Services.connect fs_aid fs_env);
  kv_box := Some (fs.Services.connect kv_aid kv_env);
  System.boot sys;
  {
    ck_sys = sys;
    ck_plan = plan;
    ck_spec = spec;
    ck_seed = seed;
    ck_completed = completed;
    ck_data_ok = data_ok;
    ck_fs_finished = fs_finished;
    ck_kv_ok = kv_ok;
    ck_kv_errors = kv_errors;
    ck_kv_finished = kv_finished;
    ck_until = horizon;
    ck_every = every;
    ck_file = file;
    ck_slice = 1;
    ck_msg_uid = 0;
  }

let collect st =
  let sys = st.ck_sys in
  let platform = System.platform sys in
  let tiles =
    Platform.processing_tiles platform @ [ Platform.controller_tile platform ]
  in
  let retries, timeouts, dup_drops =
    List.fold_left
      (fun (r, t, d) tile ->
        let s = Dtu.stats (Platform.dtu platform tile) in
        (r + s.Dtu.retries, t + s.Dtu.timeouts, d + s.Dtu.dup_drops))
      (0, 0, 0) tiles
  in
  let cstats = Controller.stats (System.controller sys) in
  {
    spec = st.ck_spec;
    seed = st.ck_seed;
    fs_done = !(st.ck_fs_finished);
    kv_done = !(st.ck_kv_finished);
    fs_rounds = !(st.ck_completed);
    data_ok = !(st.ck_data_ok);
    kv_ok = !(st.ck_kv_ok);
    kv_errors = !(st.ck_kv_errors);
    fault_stats = Fault.stats st.ck_plan;
    dtu_retries = retries;
    dtu_timeouts = timeouts;
    dtu_dup_drops = dup_drops;
    crashes = cstats.Controller.crashes;
    restarts = cstats.Controller.restarts;
    credits_reclaimed = cstats.Controller.credits_reclaimed;
    end_time = Engine.now (System.engine sys);
  }

let run ?shards ?(spec = default_spec) ?(seed = 7) ?(fs_rounds = 5)
    ?(kv_ops = 120) () =
  let plan = Fault.create ~seed spec in
  Fault.with_plan plan (fun () ->
      let st =
        setup ?shards ~plan ~spec ~seed ~fs_rounds ~kv_ops ~every:Time.zero
          ~file:"" ()
      in
      ignore (System.run ~until:horizon st.ck_sys);
      collect st)

type ckpt_outcome =
  | Completed of result
  | Suspended of { checkpoints : int; file : string }

let save_state st =
  st.ck_msg_uid <- Msg.uid_counter ();
  Checkpoint.save ~path:st.ck_file st

(* Run in slices ending at absolute multiples of [ck_every] (so checkpoint
   instants do not depend on how far a previous resume got), saving after
   each slice that leaves work pending.  Slicing does not perturb the
   simulation: the engine pops events in (time, seq) order either way, so
   the stepped run processes the identical event sequence as [run]. *)
let drive st ~stop_after =
  let eng = System.engine st.ck_sys in
  let finish () =
    (* Match [run]'s clock exactly: when the queue drains early (or only
       post-horizon events remain), [Engine.run ~until] jumps the clock to
       the horizon — a no-op if a slice already got there. *)
    ignore (System.run ~until:st.ck_until st.ck_sys);
    Completed (collect st)
  in
  let rec go written =
    if Engine.pending eng = 0 then finish ()
    else begin
      let slice_end = Time.min st.ck_until (st.ck_slice * st.ck_every) in
      st.ck_slice <- st.ck_slice + 1;
      ignore (System.run ~until:slice_end st.ck_sys);
      if slice_end >= st.ck_until || Engine.pending eng = 0 then finish ()
      else begin
        save_state st;
        let written = written + 1 in
        match stop_after with
        | Some n when written >= n ->
            Suspended { checkpoints = written; file = st.ck_file }
        | _ -> go written
      end
    end
  in
  go 0

let run_checkpointed ?shards ?(spec = default_spec) ?(seed = 7)
    ?(fs_rounds = 5) ?(kv_ops = 120) ~every ~file ?stop_after () =
  if every <= 0 then invalid_arg "Exp_chaos.run_checkpointed: every <= 0";
  let plan = Fault.create ~seed spec in
  Fault.with_plan plan (fun () ->
      let st =
        setup ?shards ~plan ~spec ~seed ~fs_rounds ~kv_ops ~every ~file ()
      in
      drive st ~stop_after)

let resume ~file ?stop_after () =
  match Checkpoint.load ~path:file with
  | Error _ as e -> e
  | Ok (st : state) ->
      (* Restore the domain-local state Marshal could not capture: the
         message uid counter and the ambient fault plan (the loaded copy
         carries the original's RNG position, so the fault schedule
         continues exactly where the save left it). *)
      Msg.set_uid_counter st.ck_msg_uid;
      (* An unmarshaled shard group never met the telemetry collector;
         re-announce it so a resumed soak keeps reporting under
         --telemetry.  The telemetry state itself (window aggregates)
         rode along in the checkpoint. *)
      System.reregister_telemetry st.ck_sys;
      Ok (Fault.with_plan st.ck_plan (fun () -> drive st ~stop_after))

(* Multi-seed soak sweep.  Each seed is an independent task: [run]
   installs its plan domain-locally inside the task, so workers cannot see
   each other's fault schedules.  Results come back in seed order;
   liveness lines go through [Par.progress] (a single mutex-protected
   stderr writer), so concurrent workers cannot interleave characters
   within a line. *)
let run_sweep ?(pool = M3v_par.Par.Pool.sequential) ?shards
    ?(spec = default_spec) ?(seed = 7) ?(seeds = 1) ?(fs_rounds = 5)
    ?(kv_ops = 120) () =
  let n = max 1 seeds in
  List.init n (fun i ->
      let seed = seed + i in
      M3v_par.Par.submit pool (fun () ->
          let r = run ?shards ~spec ~seed ~fs_rounds ~kv_ops () in
          M3v_par.Par.progress
            (Printf.sprintf "chaos: seed %d done (fs %s, kv %s, %d restarts)"
               seed
               (if r.fs_done then "ok" else "FAILED")
               (if r.kv_done then "ok" else "FAILED")
               r.restarts);
          r))
  |> List.map M3v_par.Par.await

let print r =
  let ff = Format.std_formatter in
  Format.fprintf ff "@.Chaos soak: faults=%s seed=%d@."
    (Fault.spec_to_string r.spec)
    r.seed;
  Format.fprintf ff "  injected: %a@." Fault.pp_stats r.fault_stats;
  Format.fprintf ff
    "  recovery: dtu retries=%d timeouts=%d dup-drops=%d | crashes=%d \
     restarts=%d credits-reclaimed=%d@."
    r.dtu_retries r.dtu_timeouts r.dtu_dup_drops r.crashes r.restarts
    r.credits_reclaimed;
  Format.fprintf ff
    "  fs: %s (%d full rounds, data %s) | kv: %s (%d ok, %d errors)@."
    (if r.fs_done then "completed" else "DID NOT FINISH")
    r.fs_rounds
    (if r.data_ok then "intact" else "CORRUPT")
    (if r.kv_done then "completed" else "DID NOT FINISH")
    r.kv_ok r.kv_errors;
  Format.fprintf ff "  simulated time: %.3f ms@." (Time.to_s r.end_time *. 1e3)
