(** Fan-in ablation: N senders -> 1 server throughput, shared MPMC receive
    endpoint vs the classic per-sender layout.

    Per-sender endpoints cost the server a private endpoint slot per
    client and a full ack command (plus one credit packet) per message.
    The MPMC gate multiplexes every sender through one capability and one
    receive ring: doorbells coalesce while the queue is backed up, acks
    are a single MMIO tail bump, and credit refunds travel batched — one
    packet per sender per [ack_batch] acks.  At high fan-in the MPMC side
    is expected to sustain several times the per-sender throughput. *)

type mode = Per_sender | Mpmc

type point = {
  senders : int;
  per_sender : float;  (** aggregate msgs/s through private receive gates *)
  mpmc : float;  (** aggregate msgs/s through the shared MPMC gate *)
}

type result = { msgs_per_sender : int; points : point list }

val run :
  ?pool:M3v_par.Par.Pool.t ->
  ?shards:int ->
  ?msgs:int ->
  ?sender_counts:int list ->
  unit ->
  result

val print : result -> unit

(** Throughput of one configuration (exposed for tests/calibration). *)
val throughput : ?shards:int -> mode:mode -> senders:int -> msgs:int -> unit -> float
