(** Figure 10: the cloud service (YCSB over the LSM store) vs Linux.

    Components: the database (LSM key-value store + YCSB execution), m3fs
    as its backend, the net service (results go to the peer machine via
    UDP), and the pager.  Workloads (paper, 6.5.2): read-, insert-,
    update-heavy (80-10-10), scan-heavy (80% scans), and mixed
    (50-10-30-10); 200 records loaded, then 200 operations, Zipfian keys;
    8 measured runs after 2 warmup runs.

    Configurations: M3v with each component on its own tile ("isolated",
    shown for completeness), M3v with all four on one tile ("shared",
    comparable to Linux), and Linux on a single tile.  Runtimes are split
    into user and system time: on Linux via getrusage, on M3v by counting
    the file system's and network stack's busy time as system time. *)

type row = {
  config : string;
  total_s : float;
  total_sd : float;
  user_s : float;
  sys_s : float;
}

type result = { workloads : (string * row list) list }

val run :
  ?pool:M3v_par.Par.Pool.t -> ?runs:int -> ?warmup:int -> ?records:int ->
  ?operations:int -> unit -> result
val print : result -> unit
