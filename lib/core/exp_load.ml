(* Internet-scale load harness: client fleets drive the net stack, m3fs
   and the key-value service concurrently, sweeping offered load and
   reporting latency-vs-load SLO curves with knee detection and
   bottleneck attribution.

   The fleet is cheap bookkeeping (see {!M3v_load.Fleet}): thousands to
   millions of simulated clients multiplex onto a handful of driver
   activities, one per driver, each with one outstanding request.  The
   key-value service takes the heavy fan-in over a single shared MPMC
   receive gate; fs and net clients use the services' ordinary
   point-to-point channels, so one run exercises both endpoint shapes.

   Each load step is an independent simulation (own [System]), so steps
   fan out over the pool and merge in submission order — [--jobs N]
   output is byte-identical to sequential.  When no external trace is
   active, every step runs under a private trace sink and feeds the
   critical-path profiler, whose per-segment means drive the bottleneck
   attribution; under an external [--trace] (which already forces
   sequential execution, and whose sink cannot nest) the attribution is
   reported as unavailable. *)

open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Msg = M3v_dtu.Msg
module Dtu = M3v_dtu.Dtu
module Platform = M3v_tile.Platform
module Controller = M3v_kernel.Controller
module A = M3v_mux.Act_api
module Par = M3v_par.Par
module Trace = M3v_obs.Trace
module Profile = M3v_obs.Profile
module Metrics = M3v_obs.Metrics
module Fleet = M3v_load.Fleet
module Slo = M3v_load.Slo
module Knee = M3v_load.Knee
module Kvserv = M3v_apps.Kvserv
module Fs_client = M3v_os.Fs_client
module Fs_proto = M3v_os.Fs_proto
module Net_client = M3v_os.Net_client
module Nic = M3v_os.Nic

type config = {
  clients : int;
  drivers : int;
  rate_per_s : float;  (** aggregate offered load at step fraction 1.0 *)
  closed : bool;
  think_ms : int;  (** closed-loop mean think time at fraction 1.0 *)
  arrivals : Fleet.arrivals;
  mix : (Fleet.kind * int) list;
  skew : float;
  keys : int;
  duration_ms : int;
  warmup_ms : int;
  fracs : float list;  (** load steps, as fractions of [rate_per_s] *)
  slo_p99_us : float;
  seed : int;
}

let default =
  {
    clients = 100_000;
    drivers = 8;
    rate_per_s = 2_000.0;
    closed = false;
    think_ms = 500;
    arrivals = Fleet.Poisson;
    mix = Fleet.default_mix;
    skew = 0.99;
    keys = 4_096;
    duration_ms = 200;
    warmup_ms = 30;
    fracs = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ];
    slo_p99_us = 5_000.0;
    seed = 42;
  }

type step = {
  st_frac : float;
  st_offered : float;  (** measured offered rate, req/s *)
  st_scheduled : int;
  st_completed : int;  (** completions inside the measurement window *)
  st_errors : int;
  st_goodput : float;  (** in-window completions/s *)
  st_rows : Slo.row list;  (** per-class + "all", in-window samples *)
  st_p99_us : float;  (** overall p99 (the "all" row) *)
  st_segments : (string * float) list;  (** profiler mean ps per segment *)
  st_credit_stalls : int;
  st_sends : int;
}

type result = {
  r_cfg : config;
  r_steps : step list;
  r_verdict : Knee.verdict;
  r_attribution : string;
}

(* Tile layout: NIC/net on tile 1 (the spec's NIC tile), the key-value
   service on 2, m3fs on 3, drivers packed over 4-7. *)
let kv_tile = Exp_common.boom_tile_b
let fs_tile = Exp_common.boom_tile_c
let driver_tiles = [| 4; 5; 6; 7 |]
let kv_credits = 2
let max_drivers = 8 (* 2 credits each against the net service's 16 slots *)
let file_path = "/load.dat"
let file_len = 65_536
let chunk = 64
let udp_peer = (1, 7000)

let key_name k = Printf.sprintf "k%06d" k
let put_value k = Bytes.init 64 (fun j -> Char.chr ((k + j) land 0xff))

(* One load step: an independent simulation of the full fleet at
   [frac] times the configured load. *)
let run_step ?shards cfg ~frac =
  let warmup_ps = Time.ms cfg.warmup_ms in
  let duration_ps = Time.ms cfg.duration_ms in
  let fleet_cfg =
    {
      Fleet.clients = cfg.clients;
      drivers = cfg.drivers;
      rate_per_s = cfg.rate_per_s *. frac;
      loop =
        (if cfg.closed then
           (* A closed loop offers more load by thinking less. *)
           Fleet.Closed_loop
             {
               think_ps =
                 max 1 (int_of_float (float_of_int (Time.ms cfg.think_ms) /. frac));
             }
         else Fleet.Open_loop);
      arrivals = cfg.arrivals;
      mix = cfg.mix;
      skew = cfg.skew;
      keys = cfg.keys;
      warmup_ps;
      duration_ps;
      seed = cfg.seed;
    }
  in
  let nd = cfg.drivers in
  let samples = Array.make nd [] in
  let simulate () =
    let sys = System.create ?shards ~variant:System.M3v () in
    let ctrl = System.controller sys in
    let fs = Services.make_fs sys ~tile:fs_tile ~blocks:4096 () in
    let net =
      Services.make_net sys ~host:(Nic.Echo { turnaround = Time.us 40 }) ()
    in
    Services.preload_file sys fs ~path:file_path
      (Bytes.init file_len (fun i -> Char.chr (i land 0xff)));
    (* The key-value server: one activity, one shared MPMC receive gate
       provisioned for every driver's credits in flight. *)
    let kv_vfs = ref None and kv_rgate = ref (-1) in
    let kv_aid, kv_env =
      System.spawn sys ~tile:kv_tile ~name:"kvserv"
        (Kvserv.program ~vfs:kv_vfs ~rgate:kv_rgate ())
    in
    kv_vfs := Some (Fs_client.to_vfs (fs.Services.connect kv_aid kv_env));
    let kv_rsel =
      Controller.host_new_mpmc_rgate ctrl ~act:kv_aid
        ~slots:(kv_credits * nd) ~slot_size:512 ~ack_batch:4 ()
    in
    kv_rgate := Controller.host_activate ctrl ~act:kv_aid ~sel:kv_rsel ();
    for i = 0 to nd - 1 do
      let driver = Fleet.make_driver fleet_cfg i in
      let tile = driver_tiles.(i mod Array.length driver_tiles) in
      let fs_box = ref None and udp_box = ref None in
      let kv_sgate = ref (-1) and kv_reply = ref (-1) in
      let record s =
        samples.(i) <- s :: samples.(i);
        if Metrics.on () then begin
          let cat = Fleet.kind_name s.Fleet.s_kind in
          Metrics.counter_incr ~name:"load/requests" ~cat ();
          Metrics.observe ~name:"load/latency_us" ~cat
            (float_of_int (s.Fleet.s_done - s.Fleet.s_sched) /. 1e6)
        end
      in
      let aid, env =
        System.spawn sys ~tile ~name:(Printf.sprintf "driver%d" i) (fun _ ->
            let fsc = Option.get !fs_box in
            let udp = Option.get !udp_box in
            let* sock = udp.Net_client.u_socket () in
            let* () = udp.Net_client.u_bind sock (6000 + i) in
            let* fd = Fs_client.open_ fsc file_path Fs_proto.rdonly in
            let fd =
              match fd with
              | Ok fd -> fd
              | Error e -> failwith ("exp_load: open " ^ file_path ^ ": " ^ e)
            in
            let kv_call req =
              let* rep =
                A.call ~sgate:!kv_sgate ~reply_ep:!kv_reply
                  ~size:(Kvserv.req_size req) (Kvserv.Kv_req req)
              in
              Proc.return
                (match rep.Msg.data with
                | Kvserv.Kv_rep (Kvserv.Failed _) -> false
                | Kvserv.Kv_rep _ -> true
                | _ -> false)
            in
            let issue op =
              let key = op.Fleet.op_key in
              match op.Fleet.op_kind with
              | Fleet.Kv_get -> kv_call (Kvserv.Get (key_name key))
              | Fleet.Kv_put ->
                  kv_call (Kvserv.Put (key_name key, put_value key))
              | Fleet.Fs_read ->
                  let off = key mod (file_len / chunk) * chunk in
                  let* data = Fs_client.read_inline fsc ~fd ~off ~len:chunk in
                  Proc.return (Bytes.length data = chunk)
              | Fleet.Udp_echo ->
                  let* () =
                    udp.Net_client.u_sendto sock udp_peer
                      (Bytes.make 32 (Char.chr (0x20 + (key land 0x3f))))
                  in
                  let* _src, _data = udp.Net_client.u_recvfrom sock in
                  Proc.return true
            in
            Fleet.driver_program driver ~issue ~record ())
      in
      fs_box := Some (fs.Services.connect aid env);
      udp_box := Some (Net_client.to_udp (net.Services.net_connect aid env));
      let ssel =
        Controller.host_new_sgate ctrl ~owner:aid ~rgate_of:kv_aid
          ~rgate_sel:kv_rsel ~label:i ~credits:kv_credits ()
      in
      kv_sgate := Controller.host_activate ctrl ~act:aid ~sel:ssel ();
      let rsel = Controller.host_new_rgate ctrl ~act:aid ~slots:2 ~slot_size:512 in
      kv_reply := Controller.host_activate ctrl ~act:aid ~sel:rsel ()
    done;
    System.boot sys;
    ignore (System.run sys);
    let stalls, sends =
      List.fold_left
        (fun (st, sd) tile ->
          let s = Dtu.stats (Platform.dtu (System.platform sys) tile) in
          (st + s.Dtu.credit_stalls, sd + s.Dtu.sends))
        (0, 0)
        (Platform.processing_tiles (System.platform sys))
    in
    (stalls, sends)
  in
  (* A private sink cannot nest inside an external --trace sink
     (uninstall restores "none", not the previous sink), so profiler
     segments are only collected when we own the tracing. *)
  let sink = if Trace.on () then None else Some (Trace.make ()) in
  let stalls, sends =
    match sink with
    | Some s -> Trace.with_sink s simulate
    | None -> simulate ()
  in
  let segments =
    match sink with
    | Some s -> Profile.segment_means (Profile.analyze s)
    | None -> []
  in
  let all = List.concat_map List.rev (Array.to_list samples) in
  let window_end = warmup_ps + duration_ps in
  let window_s = float_of_int duration_ps /. 1e12 in
  let in_window =
    List.filter (fun s -> s.Fleet.s_ok && s.Fleet.s_done <= window_end) all
  in
  let lat_us s = float_of_int (s.Fleet.s_done - s.Fleet.s_sched) /. 1e6 in
  let rows =
    List.filter_map
      (fun kind ->
        Slo.row_of_latencies ~label:(Fleet.kind_name kind)
          (List.filter_map
             (fun s ->
               if s.Fleet.s_kind = kind then Some (lat_us s) else None)
             in_window))
      Fleet.all_kinds
    @ Option.to_list
        (Slo.row_of_latencies ~label:"all" (List.map lat_us in_window))
  in
  let p99 =
    match List.rev rows with r :: _ when r.Slo.label = "all" -> r.Slo.p99_us | _ -> 0.0
  in
  let scheduled = List.length all in
  let completed = List.length in_window in
  {
    st_frac = frac;
    st_offered = float_of_int scheduled /. window_s;
    st_scheduled = scheduled;
    st_completed = completed;
    st_errors = List.length (List.filter (fun s -> not s.Fleet.s_ok) all);
    st_goodput = float_of_int completed /. window_s;
    st_rows = rows;
    st_p99_us = p99;
    st_segments = segments;
    st_credit_stalls = stalls;
    st_sends = sends;
  }

(* Which resource the knee step's latency lives in, from the profiler's
   mean critical-path segments: sender command time (dominated by credit
   stalls under backpressure), mux scheduling (sched_wait + activity
   switches), or the server side (service + receive-buffer wait). *)
let attribution ~segments ~credit_stalls =
  match segments with
  | [] -> "n/a (external trace active; rerun without --trace)"
  | segs ->
      let get n = Option.value ~default:0.0 (List.assoc_opt n segs) in
      let credit = get "sender_cmd" in
      let sched = get "sched_wait" +. get "ctx_switch" in
      let server = get "server" +. get "buffer_wait" in
      let total = credit +. sched +. server in
      if total <= 0.0 then "n/a (no complete flows)"
      else
        let name, v =
          if server >= credit && server >= sched then
            ("server service time", server)
          else if sched >= credit then ("TileMux sched_wait", sched)
          else ("credit stalls", credit)
        in
        Printf.sprintf
          "%s (%.0f%% of the attributable critical path; %d credit-stalled \
           sends)"
          name
          (100.0 *. v /. total)
          credit_stalls

let run ?(pool = Par.Pool.sequential) ?shards ?(cfg = default) () =
  if cfg.drivers < 1 || cfg.drivers > max_drivers then
    invalid_arg
      (Printf.sprintf "exp_load: drivers must be in [1, %d]" max_drivers);
  if cfg.fracs = [] then invalid_arg "exp_load: no load steps";
  let steps = Par.map pool (fun frac -> run_step ?shards cfg ~frac) cfg.fracs in
  let verdict =
    Knee.detect ~slo_p99_us:cfg.slo_p99_us
      (List.map
         (fun s ->
           {
             Knee.k_offered = s.st_offered;
             k_goodput = s.st_goodput;
             k_p99_us = s.st_p99_us;
           })
         steps)
  in
  let at =
    (* Attribute at the knee step; without a knee, at the heaviest step. *)
    match verdict.Knee.knee with
    | Some i -> List.nth steps i
    | None -> List.nth steps (List.length steps - 1)
  in
  {
    r_cfg = cfg;
    r_steps = steps;
    r_verdict = verdict;
    r_attribution =
      attribution ~segments:at.st_segments ~credit_stalls:at.st_credit_stalls;
  }

let pp fmt r =
  let cfg = r.r_cfg in
  Format.fprintf fmt
    "@.== Load harness: %s %s, %d clients / %d drivers, mix %s, skew %.2f ==@."
    (if cfg.closed then "closed-loop" else "open-loop")
    (match cfg.arrivals with Fleet.Poisson -> "poisson" | Fleet.Bursty -> "bursty")
    cfg.clients cfg.drivers
    (Fleet.mix_to_string cfg.mix)
    cfg.skew;
  Format.fprintf fmt
    "   window %d ms (+%d ms warmup), %d keys, seed %d, SLO p99 <= %.0f us@."
    cfg.duration_ms cfg.warmup_ms cfg.keys cfg.seed cfg.slo_p99_us;
  Format.fprintf fmt "  %4s %12s %7s %7s %5s %13s %10s@." "step"
    "offered(r/s)" "sched" "done" "err" "goodput(r/s)" "p99(us)";
  List.iteri
    (fun i s ->
      Format.fprintf fmt "  %4d %12.0f %7d %7d %5d %13.0f %10.1f%s@." i
        s.st_offered s.st_scheduled s.st_completed s.st_errors s.st_goodput
        s.st_p99_us
        (if r.r_verdict.Knee.knee = Some i then "  <- knee" else ""))
    r.r_steps;
  (match r.r_verdict.Knee.knee with
  | Some i ->
      Format.fprintf fmt "  knee: step %d (offered %.0f req/s): %s@." i
        (List.nth r.r_steps i).st_offered r.r_verdict.Knee.reason
  | None -> Format.fprintf fmt "  knee: %s@." r.r_verdict.Knee.reason);
  let at =
    match r.r_verdict.Knee.knee with
    | Some i -> (i, List.nth r.r_steps i)
    | None -> (List.length r.r_steps - 1, List.nth r.r_steps (List.length r.r_steps - 1))
  in
  Format.fprintf fmt "@.  SLO table at step %d:@." (fst at);
  Slo.pp_table fmt (snd at).st_rows;
  Format.fprintf fmt "  bottleneck: %s@." r.r_attribution

let print r = pp Format.std_formatter r
