open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Net_client = M3v_os.Net_client
module Nic = M3v_os.Nic
module Lx = M3v_linux.Lx_api
module Linux_sim = M3v_linux.Linux_sim
module Par = M3v_par.Par

type result = { bars : Exp_common.bar list }

(* The peer machine's application-level turnaround for an echo. *)
let peer_turnaround = Time.us 40
let peer = (1, 7000)
let payload = Bytes.make 1 '!'

let echo_loop ~(udp : Net_client.udp) ~runs ~warmup ~record =
  let* sock = udp.Net_client.u_socket () in
  let* () = udp.Net_client.u_bind sock 5000 in
  let round () =
    let* () = udp.Net_client.u_sendto sock peer payload in
    let* _src, _data = udp.Net_client.u_recvfrom sock in
    Proc.return ()
  in
  let* () = Proc.repeat warmup (fun _ -> round ()) in
  let* () =
    Proc.repeat runs (fun _ ->
        let* t0 = A.now in
        let* () = round () in
        let* t1 = A.now in
        record (Time.sub t1 t0);
        Proc.return ())
  in
  udp.Net_client.u_close sock

let m3v_times ~shared ~runs ~warmup =
  let sys = System.create ~variant:System.M3v () in
  let nic_tile = Exp_common.boom_tile_a in
  let app_tile = if shared then nic_tile else Exp_common.boom_tile_b in
  ignore
    (System.with_pager sys
       ~tile:(if shared then nic_tile else Exp_common.boom_tile_d));
  let net =
    Services.make_net sys ~host:(Nic.Echo { turnaround = peer_turnaround }) ()
  in
  let times = ref [] in
  let client_box = ref None in
  let aid, env =
    System.spawn sys ~tile:app_tile ~name:"udpbench" (fun _ ->
        let udp = Net_client.to_udp (Option.get !client_box) in
        echo_loop ~udp ~runs ~warmup ~record:(fun t -> times := t :: !times))
  in
  client_box := Some (net.Services.net_connect aid env);
  System.boot sys;
  ignore (System.run sys);
  !times

let linux_times ~runs ~warmup =
  let engine = M3v_sim.Engine.create () in
  let lx = Linux_sim.create engine () in
  (* A NIC wired straight into the Linux kernel's driver. *)
  let nic =
    Nic.create ~engine ~host:(Nic.Echo { turnaround = peer_turnaround }) ()
  in
  Linux_sim.attach_nic lx nic;
  let times = ref [] in
  let _ =
    Linux_sim.spawn lx ~name:"udpbench"
      (echo_loop ~udp:Lx.udp ~runs ~warmup ~record:(fun t -> times := t :: !times))
  in
  Linux_sim.boot lx;
  ignore (M3v_sim.Engine.run engine);
  !times

let run ?(pool = Par.Pool.sequential) ?(runs = 50) ?(warmup = 5) () =
  let bar (label, times) =
    Exp_common.bar_of_times label times ~to_unit:Time.to_us
  in
  {
    bars =
      Par.all pool
        [
          (fun () -> ("Linux", linux_times ~runs ~warmup));
          (fun () -> ("M3v (shared)", m3v_times ~shared:true ~runs ~warmup));
          (fun () -> ("M3v (isolated)", m3v_times ~shared:false ~runs ~warmup));
        ]
      |> List.map bar;
  }

let print r =
  Exp_common.print_bars ~title:"Figure 8: UDP latency (1-byte echo to peer machine)"
    ~unit_label:"us" r.bars
