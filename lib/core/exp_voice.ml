open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Rng = M3v_sim.Rng
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Audio = M3v_apps.Audio
module Flac = M3v_apps.Flac
module Net_client = M3v_os.Net_client
module Nic = M3v_os.Nic
module Controller = M3v_kernel.Controller

type result = {
  isolated_ms : Exp_common.bar;
  shared_ms : Exp_common.bar;
  overhead_percent : float;
  compression_ratio : float;
  windows_per_rep : int;
}

type Msg.data +=
  | Audio_window of { slot : int; nsamples : int }
  | Rep_end

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Audio_window]; [%extension_constructor Rep_end] ]

(* Scanner parameters. *)
let frame = 256
let window_samples = 8000
let scan_cycles_per_sample = 6
let energy_threshold = 2000.0
let slot_bytes = 2 * window_samples
let slots = 4
let cloud = (1, 9000)
let mtu_payload = 1400

(* Continuously scan room audio; on trigger, ship the window to the
   compressor through the delegated memory region (paper, 6.5.1: "the
   scanner delegates a memory capability to the data in memory to the
   compressor"). *)
let scanner_program ~audio ~reps ~mem_ep ~chan () _env =
  let samples = audio.Audio.samples in
  let n = Array.length samples in
  let sgate = fst !chan in
  let* pcm_buf = A.alloc_buf slot_bytes in
  let send_window ~slot ~window_off ~nsamples =
    (* Write the PCM into the shared region (page-sized DMA commands). *)
    let pcm = Audio.to_pcm_bytes (Array.sub samples window_off nsamples) in
    Bytes.blit pcm 0 pcm_buf.M3v_mux.Act_ops.data 0 (Bytes.length pcm);
    let bytes = Bytes.length pcm in
    let rec copy off =
      if off >= bytes then Proc.return ()
      else begin
        let chunk = min 4096 (bytes - off) in
        let* () =
          A.mem_write ~ep:!mem_ep ~off:((slot * slot_bytes) + off) ~len:chunk
            ~src:pcm_buf.M3v_mux.Act_ops.data ~src_off:off ()
        in
        copy (off + chunk)
      end
    in
    let* () = copy 0 in
    A.send ~ep:sgate ~size:16 (Audio_window { slot; nsamples })
  in
  let one_rep () =
    let slot = ref 0 in
    let window_start = ref (-1) in
    let rec scan off =
      if off >= n then Proc.return ()
      else begin
        let len = min frame (n - off) in
        let* () = A.compute (scan_cycles_per_sample * len) in
        let energy = Audio.window_energy audio ~off ~len in
        let* () =
          if energy > energy_threshold then begin
            if !window_start < 0 then window_start := off;
            if off + len - !window_start >= window_samples then begin
              let start = !window_start in
              window_start := -1;
              let s = !slot in
              slot := (s + 1) mod slots;
              send_window ~slot:s ~window_off:start ~nsamples:window_samples
            end
            else Proc.return ()
          end
          else if !window_start >= 0 then begin
            (* Burst ended early: ship what we have. *)
            let start = !window_start in
            let nsamples = off + len - start in
            window_start := -1;
            let s = !slot in
            slot := (s + 1) mod slots;
            send_window ~slot:s ~window_off:start ~nsamples
          end
          else Proc.return ()
        in
        scan (off + len)
      end
    in
    let* () = scan 0 in
    A.send ~ep:sgate ~size:8 Rep_end
  in
  Proc.repeat reps (fun _ -> one_rep ())

let compressor_program ~reps ~mem_ep ~rgate ~udp_box ~on_rep ~ratio_box ~windows_box
    () _env =
  let udp : Net_client.udp = Lazy.force udp_box in
  let* sock = udp.Net_client.u_socket () in
  let* () = udp.Net_client.u_bind sock 6100 in
  let* window_buf = A.alloc_buf slot_bytes in
  let* () = A.touch ~write:true window_buf in
  let reps_done = ref 0 in
  let windows = ref 0 in
  let rec serve () =
    let* _ep, msg = A.recv ~eps:[ !rgate ] in
    match msg.Msg.data with
    | Audio_window { slot; nsamples } ->
        let bytes = 2 * nsamples in
        (* Pull the PCM out of the delegated region. *)
        let rec fetch off =
          if off >= bytes then Proc.return ()
          else begin
            let chunk = min 4096 (bytes - off) in
            let* () =
              A.mem_read ~ep:!mem_ep ~off:((slot * slot_bytes) + off) ~len:chunk
                ~dst:window_buf.M3v_mux.Act_ops.data ~dst_off:off ()
            in
            fetch (off + chunk)
          end
        in
        let* () = fetch 0 in
        let samples =
          Audio.of_pcm_bytes (Bytes.sub window_buf.M3v_mux.Act_ops.data 0 bytes)
        in
        let* () = A.compute (Flac.compress_cycles_per_sample * nsamples) in
        let compressed = Flac.compress samples in
        ratio_box :=
          float_of_int bytes /. float_of_int (Bytes.length compressed);
        incr windows;
        (* Ship the compressed audio to the cloud in MTU-sized packets. *)
        let rec ship off =
          if off >= Bytes.length compressed then Proc.return ()
          else begin
            let chunk = min mtu_payload (Bytes.length compressed - off) in
            let* () =
              udp.Net_client.u_sendto sock cloud (Bytes.sub compressed off chunk)
            in
            ship (off + chunk)
          end
        in
        let* () = ship 0 in
        let* () = A.ack ~ep:!rgate msg in
        serve ()
    | Rep_end ->
        let* () = A.ack ~ep:!rgate msg in
        let* t = A.now in
        incr reps_done;
        windows_box := !windows;
        windows := 0;
        on_rep t;
        if !reps_done >= reps then udp.Net_client.u_close sock else serve ()
    | _ ->
        let* () = A.ack ~ep:!rgate msg in
        serve ()
  in
  serve ()

let pipeline_times ~shared ~runs ~warmup ~audio =
  let sys = System.create ~variant:System.M3v () in
  let reps = runs + warmup in
  let nic_tile = Exp_common.boom_tile_a in
  let comp_tile = if shared then nic_tile else Exp_common.boom_tile_b in
  let pager_tile = if shared then nic_tile else Exp_common.boom_tile_c in
  ignore (System.with_pager sys ~tile:pager_tile);
  let net = Services.make_net sys ~host:Nic.Sink () in
  let rep_ends = ref [] in
  let ratio_box = ref 0.0 in
  let windows_box = ref 0 in
  let rgate = ref (-1) in
  let udp_lazy_box = ref None in
  let comp_mem_ep = ref (-1) in
  let scan_mem_ep = ref (-1) in
  let scan_chan = ref (-1, -1) in
  let compressor, comp_env =
    System.spawn sys ~tile:comp_tile ~name:"compressor" ~premap:false
      (compressor_program ~reps ~mem_ep:comp_mem_ep ~rgate
         ~udp_box:(lazy (Option.get !udp_lazy_box))
         ~on_rep:(fun t -> rep_ends := t :: !rep_ends)
         ~ratio_box ~windows_box ())
  in
  let scanner, _ =
    System.spawn sys ~tile:Exp_common.rocket_tile ~name:"scanner" ~premap:true
      (scanner_program ~audio ~reps ~mem_ep:scan_mem_ep ~chan:scan_chan ())
  in
  udp_lazy_box := Some (Net_client.to_udp (net.Services.net_connect compressor comp_env));
  (* The shared audio region: owned by the scanner, delegated read-only to
     the compressor. *)
  let ctrl = System.controller sys in
  let mem_tile, base = Controller.host_alloc_mem ctrl ~size:(slots * slot_bytes) in
  let ssel =
    Controller.host_new_mgate ctrl ~act:scanner ~mem_tile ~base
      ~size:(slots * slot_bytes) ~perm:M3v_dtu.Dtu_types.RW
  in
  scan_mem_ep := Controller.host_activate ctrl ~act:scanner ~sel:ssel ();
  let csel =
    Controller.host_new_mgate ctrl ~act:compressor ~mem_tile ~base
      ~size:(slots * slot_bytes) ~perm:M3v_dtu.Dtu_types.R
  in
  comp_mem_ep := Controller.host_activate ctrl ~act:compressor ~sel:csel ();
  let ch = System.channel sys ~src:scanner ~dst:compressor ~credits:slots () in
  rgate := ch.System.rgate;
  scan_chan := (ch.System.sgate, ch.System.reply_ep);
  System.boot sys;
  ignore (System.run sys);
  (* Per-rep durations from consecutive completion timestamps. *)
  let ends = List.rev !rep_ends in
  let durations =
    let rec diffs prev = function
      | [] -> []
      | t :: rest -> Time.sub t prev :: diffs t rest
    in
    diffs Time.zero ends
  in
  let measured =
    List.filteri (fun i _ -> i >= warmup) durations
  in
  (measured, !ratio_box, !windows_box)

let run ?(pool = M3v_par.Par.Pool.sequential) ?(runs = 16) ?(warmup = 1)
    ?(audio_seconds = 41.0) () =
  let audio =
    Audio.room_audio (Rng.create ~seed:1234) ~seconds:audio_seconds ()
  in
  (* The two pipeline configurations are independent systems; the audio is
     shared read-only. *)
  let f_iso =
    M3v_par.Par.submit pool (fun () ->
        pipeline_times ~shared:false ~runs ~warmup ~audio)
  in
  let f_sh =
    M3v_par.Par.submit pool (fun () ->
        pipeline_times ~shared:true ~runs ~warmup ~audio)
  in
  let iso_times, ratio, windows = M3v_par.Par.await f_iso in
  let sh_times, _, _ = M3v_par.Par.await f_sh in
  let isolated_ms = Exp_common.bar_of_times "without sharing" iso_times ~to_unit:Time.to_ms in
  let shared_ms = Exp_common.bar_of_times "with sharing" sh_times ~to_unit:Time.to_ms in
  {
    isolated_ms;
    shared_ms;
    overhead_percent =
      (shared_ms.Exp_common.mean -. isolated_ms.Exp_common.mean)
      /. isolated_ms.Exp_common.mean *. 100.0;
    compression_ratio = ratio;
    windows_per_rep = windows;
  }

let print r =
  Exp_common.print_bars ~title:"Section 6.5.1: voice assistant (per repetition)"
    ~unit_label:"ms" [ r.isolated_ms; r.shared_ms ];
  Exp_common.print_kv ~title:"Voice assistant details"
    [
      ( "sharing overhead (paper: 3.6%, 384 -> 398 ms)",
        Printf.sprintf "%.1f%%" r.overhead_percent );
      ("FLAC compression ratio", Printf.sprintf "%.2fx" r.compression_ratio);
      ("trigger windows per repetition", string_of_int r.windows_per_rep);
    ]
