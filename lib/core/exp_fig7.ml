open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module A = M3v_mux.Act_api
module Vfs = M3v_os.Vfs
module Fs_proto = M3v_os.Fs_proto
module Lx = M3v_linux.Lx_api
module Linux_sim = M3v_linux.Linux_sim
module Par = M3v_par.Par

type result = { bars : Exp_common.bar list }

let buffer_size = 4096

(* One benchmark pass over the file; returns per-run times via [record]. *)
let bench_program ~(vfs : Vfs.t) ~path ~file_size ~write ~runs ~warmup ~record =
  let* buf = A.alloc_buf buffer_size in
  Bytes.fill buf.M3v_mux.Act_ops.data 0 buffer_size 'd';
  let one_run () =
    if write then begin
      let* fd = vfs.Vfs.open_ path Fs_proto.wronly in
      let fd = match fd with Ok fd -> fd | Error e -> failwith e in
      let* () =
        Proc.repeat (file_size / buffer_size) (fun _ ->
            let* n = vfs.Vfs.write fd buf buffer_size in
            if n <> buffer_size then failwith "short write";
            Proc.return ())
      in
      vfs.Vfs.close fd
    end
    else begin
      let* fd = vfs.Vfs.open_ path Fs_proto.rdonly in
      let fd = match fd with Ok fd -> fd | Error e -> failwith e in
      let rec drain () =
        let* n = vfs.Vfs.read fd buf buffer_size in
        if n = 0 then Proc.return () else drain ()
      in
      let* () = drain () in
      vfs.Vfs.close fd
    end
  in
  let* () = Proc.repeat warmup (fun _ -> one_run ()) in
  Proc.repeat runs (fun _ ->
      let* t0 = A.now in
      let* () = one_run () in
      let* t1 = A.now in
      record (Time.sub t1 t0);
      Proc.return ())

let m3v_times ~shared ~write ~runs ~warmup ~file_size =
  let sys = System.create ~variant:System.M3v () in
  let app_tile = Exp_common.boom_tile_b in
  let fs_tile = if shared then app_tile else Exp_common.boom_tile_c in
  let pager_tile = if shared then app_tile else Exp_common.boom_tile_d in
  ignore (System.with_pager sys ~tile:pager_tile);
  let fs = Services.make_fs sys ~tile:fs_tile ~blocks:2048 () in
  if not write then
    Services.preload_file sys fs ~path:"/bench.bin" (Bytes.make file_size 'x');
  let times = ref [] in
  let client_box = ref None in
  let aid, env =
    System.spawn sys ~tile:app_tile ~name:"fsbench" ~premap:false (fun _ ->
        let vfs = M3v_os.Fs_client.to_vfs (Option.get !client_box) in
        bench_program ~vfs ~path:"/bench.bin" ~file_size ~write ~runs ~warmup
          ~record:(fun t -> times := t :: !times))
  in
  client_box := Some (fs.Services.connect aid env);
  System.boot sys;
  ignore (System.run sys);
  !times

let linux_times ~write ~runs ~warmup ~file_size =
  let engine = M3v_sim.Engine.create () in
  let lx = Linux_sim.create engine () in
  if not write then
    Linux_sim.preload_file lx ~path:"/bench.bin" (Bytes.make file_size 'x');
  let times = ref [] in
  let _ =
    Linux_sim.spawn lx ~name:"fsbench"
      (bench_program ~vfs:Lx.vfs ~path:"/bench.bin" ~file_size ~write ~runs
         ~warmup ~record:(fun t -> times := t :: !times))
  in
  Linux_sim.boot lx;
  ignore (M3v_sim.Engine.run engine);
  !times

let run ?(pool = Par.Pool.sequential) ?(runs = 10) ?(warmup = 4)
    ?(file_size = 2 * 1024 * 1024) () =
  let throughput times =
    List.map (fun t -> float_of_int file_size /. 1024.0 /. 1024.0 /. Time.to_s t) times
  in
  let bar (label, times) =
    let s = M3v_sim.Stats.summarize (throughput times) in
    { Exp_common.label; mean = s.M3v_sim.Stats.mean; stddev = s.M3v_sim.Stats.stddev }
  in
  (* Each bar is its own simulated system: fan the six out as tasks. *)
  let bars =
    Par.all pool
      [
        (fun () -> ("Linux write", linux_times ~write:true ~runs ~warmup ~file_size));
        (fun () -> ("Linux read", linux_times ~write:false ~runs ~warmup ~file_size));
        (fun () ->
          ("M3v write (shared)", m3v_times ~shared:true ~write:true ~runs ~warmup ~file_size));
        (fun () ->
          ("M3v write (isolated)", m3v_times ~shared:false ~write:true ~runs ~warmup ~file_size));
        (fun () ->
          ("M3v read (shared)", m3v_times ~shared:true ~write:false ~runs ~warmup ~file_size));
        (fun () ->
          ("M3v read (isolated)", m3v_times ~shared:false ~write:false ~runs ~warmup ~file_size));
      ]
    |> List.map bar
  in
  { bars }

let print r =
  Exp_common.print_bars
    ~title:"Figure 7: file read/write throughput (2 MiB files, 4 KiB buffers)"
    ~unit_label:"MiB/s" r.bars
