(** System assembly: platform + controller + per-tile runtimes.

    This is the top of the public API: it builds a complete M3v (or M3x)
    system, spawns activities with programs, establishes communication
    channels through the controller, and runs the simulation. *)

type variant = M3v | M3x

type t

(** A communication channel as seen by the two endpoints' activities. *)
type channel = {
  sgate : int;  (** send endpoint on the sender's tile *)
  rgate : int;  (** receive endpoint on the receiver's tile *)
  reply_ep : int;  (** receive endpoint for replies, on the sender's tile *)
}

(** Build a system.  [spec] defaults to the paper's FPGA platform
    ({!M3v_tile.Platform.fpga_spec}); the controller runs on the first
    [Ctrl] tile of the spec.  Runtimes are created for every processing
    tile.

    [shards] (default 1) runs the simulation under the conservative-window
    sharded scheduler ({!M3v_par.Shard}) with lookahead extracted from the
    NoC parameters.  A System is one causal region (kernel, controller and
    NoC link state are coupled), so it occupies shard 0 of the group and
    [--shards K] output is byte-identical to [--shards 1] by construction:
    the idle shards advertise infinite horizons and shard 0 runs
    unthrottled through the same window machinery. *)
val create :
  ?spec:M3v_tile.Platform.tile_spec list ->
  ?topology:M3v_noc.Topology.t ->
  ?noc_params:M3v_noc.Noc.params ->
  ?tlb_capacity:int ->
  ?timeslice:M3v_sim.Time.t ->
  ?shards:int ->
  variant:variant ->
  unit ->
  t

val variant : t -> variant
val engine : t -> M3v_sim.Engine.t

(** Shard-group size the system was built with (1 = plain sequential
    engine). *)
val shards : t -> int

(** Per-window telemetry of the sharded scheduler, when the system is
    sharded and telemetry is enabled (see {!M3v_par.Telemetry}); [None]
    for plain sequential systems. *)
val telemetry : t -> M3v_par.Telemetry.t option

(** Re-announce a checkpoint-restored system's telemetry to an open
    collection ({!M3v_par.Shard.reregister_telemetry}): unmarshaled
    shard groups never passed through [Shard.create].  No-op for
    unsharded systems. *)
val reregister_telemetry : t -> unit
val platform : t -> M3v_tile.Platform.t
val controller : t -> M3v_kernel.Controller.t
val runtime : t -> tile:int -> M3v_mux.Runtime.t

(** Spawn an activity on a processing tile.  The program starts at
    {!boot}. *)
val spawn :
  t ->
  tile:int ->
  name:string ->
  ?premap:bool ->
  (M3v_mux.Act_api.env -> unit M3v_sim.Proc.t) ->
  M3v_dtu.Dtu_types.act_id * M3v_mux.Act_api.env

(** Establish a channel from [src] to [dst] (both spawned activities): a
    receive gate on [dst]'s tile, a send gate on [src]'s tile, and a reply
    gate for [src].  Mirrors the controller-mediated channel establishment
    activities would perform via syscalls. *)
val channel :
  t ->
  src:M3v_dtu.Dtu_types.act_id ->
  dst:M3v_dtu.Dtu_types.act_id ->
  ?slots:int ->
  ?slot_size:int ->
  ?credits:int ->
  ?label:int ->
  unit ->
  channel

(** Allocate physical memory and hand [act] an activated memory endpoint
    over it.  Returns (capability selector, endpoint). *)
val mem_region :
  t ->
  act:M3v_dtu.Dtu_types.act_id ->
  size:int ->
  perm:M3v_dtu.Dtu_types.perm ->
  int * int

(** Create the pager service on [tile] and connect every runtime's TileMux
    to it.  Must be called before [boot]; only meaningful for M3v.  Returns
    the pager's activity id. *)
val with_pager : t -> tile:int -> M3v_dtu.Dtu_types.act_id

(** Start all spawned activities. *)
val boot : t -> unit

(** Run the simulation until the event queue drains (all activities
    finished or blocked forever) or [until] is reached.  Returns events
    processed. *)
val run : ?until:M3v_sim.Time.t -> t -> int

(** [run_while t cond] keeps running while [cond ()] holds and events
    remain. *)
val run_while : t -> (unit -> bool) -> unit
