(** Section 6.5.1: the voice assistant.

    Four components: the trigger-word scanner (pinned to a simple Rocket
    core for isolation, with everything mapped up front to minimize its
    TCB), the FLAC compressor, the network stack, and the pager.  The
    scanner delegates a memory region with the triggered audio windows to
    the compressor, which compresses them (real Rice-coded FLAC subset)
    and ships the result to the peer machine via UDP.

    Two placements are compared: compressor/net/pager each on their own
    BOOM tile ("isolated") vs all three sharing one BOOM tile ("shared").
    The paper measures 384 ms vs 398 ms over 16 repetitions — a sharing
    overhead of 3.6%. *)

type result = {
  isolated_ms : Exp_common.bar;
  shared_ms : Exp_common.bar;
  overhead_percent : float;
  compression_ratio : float;
  windows_per_rep : int;
}

val run :
  ?pool:M3v_par.Par.Pool.t -> ?runs:int -> ?warmup:int -> ?audio_seconds:float ->
  unit -> result
val print : result -> unit
