(** Machine-readable benchmark reports: the JSON written by
    [bench --json], read back by [bench --compare], and diffed by the CI
    perf-regression job.

    The format is deliberately tiny (flat metadata + one array of
    name/ns pairs) so this module can parse it with no JSON dependency;
    {!of_json} accepts anything {!to_json} emits, plus whitespace
    variations. *)

type result = {
  name : string;
  ns_per_run : float option;  (** [None] when the OLS fit failed *)
}

type report = {
  schema_version : int;
  git_sha : string;  (** ["unknown"] outside a git checkout *)
  timestamp : string;  (** ISO-8601 UTC, e.g. ["2026-08-07T12:00:00Z"] *)
  ocaml_version : string;
  hostname : string;
  jobs : int;
      (** Domain-pool size the bench ran with (schema >= 2; version-1
          reports parse as [1]) *)
  shards : int;
      (** shard count used by the sharded-scheduler benchmarks
          (schema >= 2; version-1 reports parse as [1]) *)
  results : result list;
}

val schema_version : int

(** Generic JSON values, exposed so tests of the repo's other JSON
    emitters (Chrome traces, the metrics registry) can reuse this parser
    instead of growing their own. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse_error of string

(** [parse_json s] parses a complete JSON document (objects, arrays,
    strings with \-escapes, numbers, null, true/false); raises
    {!Parse_error} on malformed input or trailing garbage. *)
val parse_json : string -> json

(** Exception-free wrapper around {!parse_json}. *)
val json_of_string : string -> (json, string) Stdlib.result

val make :
  ?git_sha:string ->
  ?timestamp:string ->
  ?ocaml_version:string ->
  ?hostname:string ->
  ?jobs:int ->
  ?shards:int ->
  (string * float option) list ->
  report

val to_json : report -> string

(** Parse a report; [Error] carries a human-readable reason.  Unknown
    fields are ignored so the schema can grow. *)
val of_json : string -> (report, string) Stdlib.result

(** One row of a baseline-vs-current comparison. *)
type delta = {
  test : string;
  base_ns : float option;
  cur_ns : float option;
  pct : float option;
      (** (cur - base) / base * 100; [None] if either side is missing *)
}

type comparison = {
  deltas : delta list;  (** tests present in both reports, baseline order *)
  regressions : delta list;
      (** deltas with [pct > threshold], slowest first *)
  baseline_only : string list;  (** retired tests, skipped with a warning *)
  current_only : string list;  (** new tests, skipped with a warning *)
}

(** [compare ~threshold_pct ~baseline ~current] pairs up tests by name.
    Tests present in only one report are skipped — listed in
    [baseline_only]/[current_only] and printed as warnings by
    {!pp_comparison} — and never count as regressions (CI must not fail
    when a benchmark is added or retired). *)
val compare :
  threshold_pct:float -> baseline:report -> current:report -> comparison

(** Render the comparison as the report printed by [bench --compare]. *)
val pp_comparison :
  threshold_pct:float ->
  baseline:report ->
  current:report ->
  Format.formatter ->
  comparison ->
  unit
