type result = { name : string; ns_per_run : float option }

type report = {
  schema_version : int;
  git_sha : string;
  timestamp : string;
  ocaml_version : string;
  hostname : string;
  jobs : int;
  shards : int;
  results : result list;
}

let schema_version = 2

let make ?(git_sha = "unknown") ?(timestamp = "unknown")
    ?(ocaml_version = Sys.ocaml_version) ?(hostname = "unknown") ?(jobs = 1)
    ?(shards = 1) results =
  {
    schema_version;
    git_sha;
    timestamp;
    ocaml_version;
    hostname;
    jobs;
    shards;
    results = List.map (fun (name, ns_per_run) -> { name; ns_per_run }) results;
  }

(* --- writing --- *)

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" r.schema_version);
  Buffer.add_string buf (Printf.sprintf "  \"git_sha\": %S,\n" r.git_sha);
  Buffer.add_string buf (Printf.sprintf "  \"timestamp\": %S,\n" r.timestamp);
  Buffer.add_string buf
    (Printf.sprintf "  \"ocaml_version\": %S,\n" r.ocaml_version);
  Buffer.add_string buf (Printf.sprintf "  \"hostname\": %S,\n" r.hostname);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" r.jobs);
  Buffer.add_string buf (Printf.sprintf "  \"shards\": %d,\n" r.shards);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  let n = List.length r.results in
  List.iteri
    (fun i { name; ns_per_run } ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name
           (match ns_per_run with
           | Some e -> Printf.sprintf "%.1f" e
           | None -> "null")
           (if i < n - 1 then "," else "")))
    r.results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --- parsing ---

   A minimal recursive-descent JSON reader: enough for the grammar
   [to_json] emits (objects, arrays, strings with \-escapes, numbers,
   null, true/false).  No dependency, and small enough to property-test
   against the writer. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'u' ->
              (* Good enough for our ASCII metadata: decode the code
                 point bytewise when it fits one byte, else substitute. *)
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some c when c < 0x80 -> Buffer.add_char buf (Char.chr c)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some 'n' -> literal "null" J_null
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some ('-' | '0' .. '9') -> J_num (parse_number ())
    | _ -> fail "expected a value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      J_obj []
    end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); loop ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      loop ();
      J_obj (List.rev !fields)
    end
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      J_arr []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); loop ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      loop ();
      J_arr (List.rev !items)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let json_of_string text =
  match parse_json text with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_json text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | J_obj fields ->
      let str key default =
        match List.assoc_opt key fields with
        | Some (J_str s) -> s
        | _ -> default
      in
      let int key default =
        match List.assoc_opt key fields with
        | Some (J_num f) -> int_of_float f
        | _ -> default
      in
      let result_of = function
        | J_obj rf -> (
            match List.assoc_opt "name" rf with
            | Some (J_str name) ->
                let ns_per_run =
                  match List.assoc_opt "ns_per_run" rf with
                  | Some (J_num f) -> Some f
                  | _ -> None
                in
                Ok { name; ns_per_run }
            | _ -> Error "benchmark entry without a \"name\" string")
        | _ -> Error "benchmark entry is not an object"
      in
      let rec results_of acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match result_of j with
            | Ok r -> results_of (r :: acc) rest
            | Error _ as e -> e)
      in
      (match List.assoc_opt "benchmarks" fields with
      | Some (J_arr items) -> (
          match results_of [] items with
          | Error _ as e -> e
          | Ok results ->
              Ok
                {
                  schema_version = int "schema_version" 0;
                  git_sha = str "git_sha" "unknown";
                  timestamp = str "timestamp" "unknown";
                  ocaml_version = str "ocaml_version" "unknown";
                  hostname = str "hostname" "unknown";
                  (* jobs/shards arrived with schema 2; version-1 reports
                     were always sequential and unsharded. *)
                  jobs = int "jobs" 1;
                  shards = int "shards" 1;
                  results;
                })
      | Some _ -> Error "\"benchmarks\" is not an array"
      | None -> Error "missing \"benchmarks\" array")
  | _ -> Error "top level is not an object"

(* --- comparison --- *)

type delta = {
  test : string;
  base_ns : float option;
  cur_ns : float option;
  pct : float option;
}

type comparison = {
  deltas : delta list;
  regressions : delta list;
  baseline_only : string list;
  current_only : string list;
}

let compare ~threshold_pct ~baseline ~current =
  let find name results =
    List.find_map
      (fun r -> if r.name = name then Some r.ns_per_run else None)
      results
  in
  (* Entries present in only one report are skipped (and surfaced as
     warnings by [pp_comparison]) rather than rendered as half-empty
     delta rows: a retired or freshly added benchmark is not a
     regression, and must not pad the table the CI gate diffs. *)
  let paired =
    List.filter_map
      (fun b ->
        match find b.name current.results with
        | None -> None
        | Some cur_ns ->
            let pct =
              match (b.ns_per_run, cur_ns) with
              | Some base, Some cur when base > 0.0 ->
                  Some ((cur -. base) /. base *. 100.0)
              | _ -> None
            in
            Some { test = b.name; base_ns = b.ns_per_run; cur_ns; pct })
      baseline.results
  in
  let only_in results other =
    List.filter_map
      (fun r -> if find r.name other = None then Some r.name else None)
      results
  in
  let regressions =
    List.filter
      (fun d -> match d.pct with Some p -> p > threshold_pct | None -> false)
      paired
    |> List.sort (fun a b -> Stdlib.compare b.pct a.pct)
  in
  {
    deltas = paired;
    regressions;
    baseline_only = only_in baseline.results current.results;
    current_only = only_in current.results baseline.results;
  }

let pp_comparison ~threshold_pct ~baseline ~current ff cmp =
  let pp_ns ff = function
    | Some ns -> Format.fprintf ff "%14.0f" ns
    | None -> Format.fprintf ff "%14s" "-"
  in
  let pp_meta ff r =
    Format.fprintf ff "%s (%s, %s, jobs=%d, shards=%d)" r.git_sha r.timestamp
      r.hostname r.jobs r.shards
  in
  Format.fprintf ff "baseline: %a@." pp_meta baseline;
  Format.fprintf ff "current:  %a@." pp_meta current;
  if baseline.jobs <> current.jobs || baseline.shards <> current.shards then
    Format.fprintf ff
      "  warning: config mismatch (baseline jobs=%d shards=%d, current jobs=%d \
       shards=%d) — deltas compare different parallel configurations@."
      baseline.jobs baseline.shards current.jobs current.shards;
  Format.fprintf ff "@.  %-18s %14s %14s %9s@." "benchmark" "base ns/run"
    "cur ns/run" "delta";
  List.iter
    (fun d ->
      let mark =
        match d.pct with
        | Some p when p > threshold_pct -> "  << REGRESSION"
        | Some p when p < -.threshold_pct -> "  (improved)"
        | _ -> ""
      in
      match d.pct with
      | Some p ->
          Format.fprintf ff "  %-18s %a %a %+8.1f%%%s@." d.test pp_ns d.base_ns
            pp_ns d.cur_ns p mark
      | None ->
          Format.fprintf ff "  %-18s %a %a %9s@." d.test pp_ns d.base_ns pp_ns
            d.cur_ns "-")
    cmp.deltas;
  (* A one-sided entry still gets its absolute value printed: a freshly
     added benchmark should be readable from the comparison output even
     before a baseline exists for it. *)
  let abs_ns results name =
    match
      List.find_map
        (fun r -> if r.name = name then r.ns_per_run else None)
        results
    with
    | Some ns -> Format.asprintf "%.0f ns/run" ns
    | None -> "no measurement"
  in
  List.iter
    (fun name ->
      Format.fprintf ff
        "  warning: %s is only in the baseline report (skipped; baseline %s)@."
        name
        (abs_ns baseline.results name))
    cmp.baseline_only;
  List.iter
    (fun name ->
      Format.fprintf ff
        "  warning: %s is only in the current report (skipped; current %s)@."
        name
        (abs_ns current.results name))
    cmp.current_only;
  match cmp.regressions with
  | [] ->
      Format.fprintf ff "@.OK: no benchmark regressed by more than %.0f%%@."
        threshold_pct
  | rs ->
      Format.fprintf ff "@.FAIL: %d benchmark(s) regressed by more than %.0f%%@."
        (List.length rs) threshold_pct
