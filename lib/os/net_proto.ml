type addr = int * int
type packet = { src : addr; dst : addr; payload : bytes }

let header_bytes = 42
let wire_size p = header_bytes + Bytes.length p.payload

type net_req =
  | Socket
  | Bind of { sock : int; port : int }
  | Sendto of { sock : int; dst : addr; data : bytes }
  | Recvfrom of { sock : int }
  | Close_sock of { sock : int }

type net_rep =
  | N_sock of int
  | N_ok
  | N_pkt of { src : addr; data : bytes }
  | N_err of string

(* The int is a client-chosen tag echoed in the reply (stale-reply
   detection under fault injection, as in {!Fs_proto}). *)
type M3v_dtu.Msg.data +=
  | Net of int * net_req
  | Net_rep of int * net_rep
  | Nic_rx of packet

let () =
  M3v_sim.Checkpoint.register_exts
    [
      [%extension_constructor Net];
      [%extension_constructor Net_rep];
      [%extension_constructor Nic_rx];
    ]

let req_size = function
  | Socket -> 8
  | Bind _ -> 16
  | Sendto { data; _ } -> 24 + Bytes.length data
  | Recvfrom _ -> 16
  | Close_sock _ -> 16

let rep_size = function
  | N_sock _ -> 16
  | N_ok -> 8
  | N_pkt { data; _ } -> 24 + Bytes.length data
  | N_err e -> 8 + String.length e
