open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api
module Proto = M3v_kernel.Protocol
module Msg = M3v_dtu.Msg
open Fs_proto

type stats = {
  ops : int;
  extents_granted : int;
  blocks_cleared : int;
  inline_bytes : int;
}

type handle = {
  fs : Fs_core.t;
  fds : (int, Fs_core.ino) Hashtbl.t;
  mutable next_fd : int;
  mutable h_ops : int;
  mutable h_extents : int;
  mutable h_cleared : int;
  mutable h_inline : int;
}

let core h = h.fs

let stats h =
  {
    ops = h.h_ops;
    extents_granted = h.h_extents;
    blocks_cleared = h.h_cleared;
    inline_bytes = h.h_inline;
  }

let make_handle ?max_extent_blocks ~blocks () =
  {
    fs = Fs_core.create ?max_extent_blocks ~blocks ();
    fds = Hashtbl.create 16;
    next_fd = 3;
    h_ops = 0;
    h_extents = 0;
    h_cleared = 0;
    h_inline = 0;
  }

let op_cycles = 320

(* A page of zeroes used to clear freshly allocated blocks. *)
let zero_page = Bytes.make Fs_core.block_size '\000'

let program h ~rgate ~mem_ep ~region_sel () (env : A.env) =
  let fd_ino fd = Hashtbl.find_opt h.fds fd in
  (* Clear freshly allocated extents through the service's own memory
     endpoint, one page per DTU command. *)
  let clear_extents extents =
    Proc.iter_list
      (fun (e : Fs_core.extent) ->
        h.h_cleared <- h.h_cleared + e.Fs_core.e_blocks;
        Proc.repeat e.Fs_core.e_blocks (fun i ->
            A.mem_write ~ep:!mem_ep
              ~off:((e.Fs_core.e_start + i) * Fs_core.block_size)
              ~len:Fs_core.block_size ~src:zero_page ()))
      extents
  in
  (* Derive an extent capability into the requesting client's table. *)
  let grant_extent ~client ~region_off ~len =
    let* rep =
      A.syscall_exn env
        (Proto.Derive_mem_for
           {
             target = client;
             src_sel = !region_sel;
             off = region_off;
             len;
             perm = M3v_dtu.Dtu_types.RW;
           })
    in
    match rep with
    | Proto.Ok_sel sel ->
        h.h_extents <- h.h_extents + 1;
        Proc.return sel
    | _ -> failwith "m3fs: extent derivation failed"
  in
  let handle_req (msg : Msg.t) tag req =
    h.h_ops <- h.h_ops + 1;
    let reply rep =
      A.reply ~recv_ep:!rgate ~msg ~size:(rep_size rep) (Fs_rep (tag, rep))
    in
    let* () = A.compute op_cycles in
    match req with
    | Open { path; flags } -> (
        let resolve () =
          if flags.fl_create then Fs_core.create_file h.fs path
          else
            match Fs_core.lookup h.fs path with
            | Some ino -> Ok ino
            | None -> Error "no such file"
        in
        match resolve () with
        | Error e -> reply (R_err e)
        | Ok ino ->
            if flags.fl_trunc then Fs_core.truncate h.fs ino;
            let fd = h.next_fd in
            h.next_fd <- fd + 1;
            Hashtbl.replace h.fds fd ino;
            reply (R_fd fd))
    | Read_ext { fd; off } -> (
        match fd_ino fd with
        | None -> reply (R_err "bad fd")
        | Some ino -> (
            match Fs_core.read_extent h.fs ino ~off with
            | None -> reply R_eof
            | Some (region_off, win_len, win_file_off) ->
                let* sel =
                  grant_extent ~client:msg.Msg.src_act ~region_off ~len:win_len
                in
                reply
                  (R_ext { sel; win_off = off - win_file_off; win_len; win_file_off })))
    | Write_ext { fd; off } -> (
        match fd_ino fd with
        | None -> reply (R_err "bad fd")
        | Some ino ->
            let (region_off, win_len, win_file_off), fresh =
              Fs_core.ensure_write_extent h.fs ino ~off
            in
            let* () = clear_extents fresh in
            let* sel =
              grant_extent ~client:msg.Msg.src_act ~region_off ~len:win_len
            in
            reply
              (R_ext { sel; win_off = off - win_file_off; win_len; win_file_off }))
    | Read_inline { fd; off; len } -> (
        match fd_ino fd with
        | None -> reply (R_err "bad fd")
        | Some ino ->
            let len = min len inline_limit in
            let segs = Fs_core.segments h.fs ino ~off ~len in
            let total = List.fold_left (fun acc (_, l) -> acc + l) 0 segs in
            let data = Bytes.create total in
            h.h_inline <- h.h_inline + total;
            let pos = ref 0 in
            let* () =
              Proc.iter_list
                (fun (region_off, l) ->
                  let dst_off = !pos in
                  pos := !pos + l;
                  A.mem_read ~ep:!mem_ep ~off:region_off ~len:l ~dst:data
                    ~dst_off ())
                segs
            in
            reply (R_data data))
    | Write_inline { fd; off; data } -> (
        match fd_ino fd with
        | None -> reply (R_err "bad fd")
        | Some ino ->
            let len = Bytes.length data in
            let _, fresh = Fs_core.ensure_write_extent h.fs ino ~off in
            let* () = clear_extents fresh in
            (* Cover the tail too if the write spans extents. *)
            let* () =
              if len > 0 then
                let _, fresh2 =
                  Fs_core.ensure_write_extent h.fs ino ~off:(off + len - 1)
                in
                clear_extents fresh2
              else Proc.return ()
            in
            Fs_core.set_size h.fs ino (off + len);
            h.h_inline <- h.h_inline + len;
            let segs = Fs_core.segments h.fs ino ~off ~len in
            let pos = ref 0 in
            let* () =
              Proc.iter_list
                (fun (region_off, l) ->
                  let src_off = !pos in
                  pos := !pos + l;
                  A.mem_write ~ep:!mem_ep ~off:region_off ~len:l ~src:data
                    ~src_off ())
                segs
            in
            reply R_ok)
    | Set_size { fd; size } -> (
        match fd_ino fd with
        | None -> reply (R_err "bad fd")
        | Some ino ->
            Fs_core.set_size h.fs ino size;
            reply R_ok)
    | Close { fd; size } ->
        (match fd_ino fd with
        | Some ino -> Fs_core.set_size h.fs ino size
        | None -> ());
        Hashtbl.remove h.fds fd;
        reply R_ok
    | Fstat { fd } -> (
        match fd_ino fd with
        | None -> reply (R_err "bad fd")
        | Some ino ->
            let st = Fs_core.fstat h.fs ino in
            reply
              (R_stat
                 {
                   size = st.Fs_core.st_size;
                   is_dir = st.Fs_core.st_is_dir;
                   blocks = st.Fs_core.st_blocks;
                 }))
    | Stat { path } -> (
        match Fs_core.stat h.fs path with
        | Error e -> reply (R_err e)
        | Ok st ->
            reply
              (R_stat
                 {
                   size = st.Fs_core.st_size;
                   is_dir = st.Fs_core.st_is_dir;
                   blocks = st.Fs_core.st_blocks;
                 }))
    | Readdir { path } -> (
        match Fs_core.readdir h.fs path with
        | Error e -> reply (R_err e)
        | Ok names -> reply (R_names names))
    | Mkdir { path } -> (
        match Fs_core.mkdir h.fs path with
        | Error e -> reply (R_err e)
        | Ok _ -> reply R_ok)
    | Unlink { path } -> (
        match Fs_core.unlink h.fs path with
        | Error e -> reply (R_err e)
        | Ok () -> reply R_ok)
  in
  let rec serve () =
    let* _ep, msg = A.recv ~eps:[ !rgate ] in
    let* () =
      match msg.Msg.data with
      | Fs (tag, req) -> handle_req msg tag req
      | _ -> A.ack ~ep:!rgate msg
    in
    serve ()
  in
  (* File-system time counts as system time (paper, 6.5.2). *)
  let* () = A.acct "sys" in
  serve ()
