(** Wire protocol between m3fs clients and the m3fs service. *)

type open_flags = { fl_write : bool; fl_create : bool; fl_trunc : bool }

val rdonly : open_flags
val wronly : open_flags  (** create + truncate, like O_WRONLY|O_CREAT|O_TRUNC *)

type fs_req =
  | Open of { path : string; flags : open_flags }
  | Read_ext of { fd : int; off : int }
      (** request direct access to the extent containing [off] *)
  | Write_ext of { fd : int; off : int }
      (** like [Read_ext] but allocates (and clears) blocks as needed *)
  | Read_inline of { fd : int; off : int; len : int }
      (** small read served inline in the reply (metadata-style traffic) *)
  | Write_inline of { fd : int; off : int; data : bytes }
  | Set_size of { fd : int; size : int }
  | Close of { fd : int; size : int }
  | Fstat of { fd : int }
  | Stat of { path : string }
  | Readdir of { path : string }
  | Mkdir of { path : string }
  | Unlink of { path : string }

type fs_rep =
  | R_fd of int
  | R_ext of {
      sel : int;  (** memory capability in the {e client}'s table *)
      win_off : int;  (** offset of [off] within the window *)
      win_len : int;  (** window length in bytes *)
      win_file_off : int;  (** file offset of the window start *)
    }
  | R_eof
  | R_data of bytes
  | R_stat of { size : int; is_dir : bool; blocks : int }
  | R_names of string list
  | R_ok
  | R_err of string

(** Requests carry a client-chosen tag that the service echoes in the
    reply.  Under fault injection a client can time out, retry and later
    receive the reply to the abandoned attempt; the tag lets it discard
    such stale replies instead of pairing them with the wrong request. *)
type M3v_dtu.Msg.data += Fs of int * fs_req | Fs_rep of int * fs_rep

(** Wire sizes for the timing model. *)
val req_size : fs_req -> int

val rep_size : fs_rep -> int

(** Maximum payload the inline read/write path accepts. *)
val inline_limit : int
