(** UDP/IP types and the client <-> net-service protocol. *)

(** An address: (host id, port).  Host 0 is the FPGA platform itself. *)
type addr = int * int

(** A UDP packet on the wire. *)
type packet = { src : addr; dst : addr; payload : bytes }

(** Ethernet + IPv4 + UDP header overhead. *)
val header_bytes : int

val wire_size : packet -> int

type net_req =
  | Socket
  | Bind of { sock : int; port : int }
  | Sendto of { sock : int; dst : addr; data : bytes }
  | Recvfrom of { sock : int }  (** parked by the service until data arrives *)
  | Close_sock of { sock : int }

type net_rep =
  | N_sock of int
  | N_ok
  | N_pkt of { src : addr; data : bytes }
  | N_err of string

(** Requests carry a client-chosen tag echoed in the reply (stale-reply
    detection under fault injection, as in {!Fs_proto}). *)
type M3v_dtu.Msg.data +=
  | Net of int * net_req
  | Net_rep of int * net_rep
  | Nic_rx of packet  (** NIC -> driver notification carrying a frame *)

val req_size : net_req -> int
val rep_size : net_rep -> int
