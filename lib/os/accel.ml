module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Dtu = M3v_dtu.Dtu
module Msg = M3v_dtu.Msg

type M3v_dtu.Msg.data += Data of bytes | End_of_stream

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Data]; [%extension_constructor End_of_stream] ]

type t = {
  engine : Engine.t;
  dtu : Dtu.t;
  rgate : int;
  out_ep : int;
  ns_per_byte : int;
  transform : bytes -> bytes;
  mutable busy : bool;
  mutable processed : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let processed t = t.processed
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out

(* Accelerators process one message at a time; further arrivals queue in
   the receive buffer and drain when the pipeline stage frees up. *)
let rec pump t =
  if not t.busy then
    match Dtu.fetch t.dtu ~ep:t.rgate with
    | Ok (Some msg) ->
        t.busy <- true;
        let payload, out_data, out_size =
          match msg.Msg.data with
          | Data payload ->
              let result = t.transform payload in
              (Bytes.length payload, Data result, Bytes.length result)
          | other -> (0, other, 8)
        in
        t.processed <- t.processed + 1;
        t.bytes_in <- t.bytes_in + payload;
        t.bytes_out <- t.bytes_out + out_size;
        let work = Time.ns (t.ns_per_byte * max 1 payload) in
        Engine.after t.engine ~delay:work (fun () ->
            Dtu.send t.dtu ~ep:t.out_ep ~msg_size:out_size out_data
              ~k:(fun result ->
                (match result with
                | Ok () -> ()
                | Error M3v_dtu.Dtu_types.No_credits | Error M3v_dtu.Dtu_types.Recv_gone ->
                    (* Downstream backpressure: retry shortly. *)
                    retry_send t out_data out_size
                | Error e ->
                    failwith
                      ("Accel: forward failed: "
                      ^ M3v_dtu.Dtu_types.error_to_string e));
                (match Dtu.ack t.dtu ~ep:t.rgate msg with
                | Ok () | Error _ -> ());
                t.busy <- false;
                pump t))
    | Ok None | Error _ -> ()

and retry_send t data size =
  Engine.after t.engine ~delay:(Time.us 5) (fun () ->
      Dtu.send t.dtu ~ep:t.out_ep ~msg_size:size data ~k:(fun result ->
          match result with
          | Ok () -> ()
          | Error _ -> retry_send t data size))

let attach ~engine ~dtu ~rgate ~out_ep ~ns_per_byte ~transform () =
  let t =
    {
      engine;
      dtu;
      rgate;
      out_ep;
      ns_per_byte;
      transform;
      busy = false;
      processed = 0;
      bytes_in = 0;
      bytes_out = 0;
    }
  in
  Dtu.set_msg_arrived dtu (fun _ -> pump t);
  t
