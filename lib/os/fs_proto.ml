type open_flags = { fl_write : bool; fl_create : bool; fl_trunc : bool }

let rdonly = { fl_write = false; fl_create = false; fl_trunc = false }
let wronly = { fl_write = true; fl_create = true; fl_trunc = true }

type fs_req =
  | Open of { path : string; flags : open_flags }
  | Read_ext of { fd : int; off : int }
  | Write_ext of { fd : int; off : int }
  | Read_inline of { fd : int; off : int; len : int }
  | Write_inline of { fd : int; off : int; data : bytes }
  | Set_size of { fd : int; size : int }
  | Close of { fd : int; size : int }
  | Fstat of { fd : int }
  | Stat of { path : string }
  | Readdir of { path : string }
  | Mkdir of { path : string }
  | Unlink of { path : string }

type fs_rep =
  | R_fd of int
  | R_ext of { sel : int; win_off : int; win_len : int; win_file_off : int }
  | R_eof
  | R_data of bytes
  | R_stat of { size : int; is_dir : bool; blocks : int }
  | R_names of string list
  | R_ok
  | R_err of string

(* The int is a client-chosen tag echoed in the reply, so a client that
   timed out and retried can discard replies to abandoned attempts. *)
type M3v_dtu.Msg.data += Fs of int * fs_req | Fs_rep of int * fs_rep

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Fs]; [%extension_constructor Fs_rep] ]

let inline_limit = 256

let req_size = function
  | Open { path; _ } -> 16 + String.length path
  | Read_ext _ | Write_ext _ -> 24
  | Read_inline _ -> 32
  | Write_inline { data; _ } -> 32 + Bytes.length data
  | Set_size _ | Close _ | Fstat _ -> 24
  | Stat { path } | Readdir { path } | Mkdir { path } | Unlink { path } ->
      16 + String.length path

let rep_size = function
  | R_fd _ -> 16
  | R_ext _ -> 40
  | R_eof | R_ok -> 8
  | R_data data -> 16 + Bytes.length data
  | R_stat _ -> 32
  | R_names names ->
      16 + List.fold_left (fun acc n -> acc + String.length n + 1) 0 names
  | R_err e -> 8 + String.length e
