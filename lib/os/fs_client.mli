(** m3fs client library (the file-system half of the musl-like shim).

    Keeps per-fd positions and the currently mapped extent window.  While
    the position stays inside the window, reads and writes are pure DMA
    through the client's own (v)DTU — the service is not involved.
    Crossing an extent boundary costs one RPC to m3fs plus one [Activate]
    syscall to install the new extent capability on the reusable data
    endpoint (paper, section 6.3: the controller is rarely used, but
    always called synchronously). *)

type t

(** [create ~env ~sgate ~reply_ep ~data_ep] — [sgate]/[reply_ep] form the
    channel to the m3fs service, [data_ep] is the endpoint reused for
    extent windows. *)
val create :
  env:M3v_mux.Act_api.env -> sgate:int -> reply_ep:int -> data_ep:int -> t

(** Raw RPC to the service.  Under fault injection every wait is bounded
    and retried; a server that is gone for good surfaces as
    [R_err "EIO"].  Chaos-tolerant callers match on [R_err] themselves
    instead of going through the convenience wrappers. *)
val rpc : t -> Fs_proto.fs_req -> Fs_proto.fs_rep M3v_sim.Proc.t

val open_ : t -> string -> Fs_proto.open_flags -> (int, string) result M3v_sim.Proc.t
val read : t -> fd:int -> buf:M3v_mux.Act_ops.buf -> len:int -> int M3v_sim.Proc.t
val write : t -> fd:int -> buf:M3v_mux.Act_ops.buf -> len:int -> int M3v_sim.Proc.t
val seek : t -> fd:int -> pos:int -> unit M3v_sim.Proc.t
val close : t -> fd:int -> unit M3v_sim.Proc.t

(** Small read served inline by the service (no extent granting); for
    metadata-style traffic like the syscall traces. *)
val read_inline : t -> fd:int -> off:int -> len:int -> bytes M3v_sim.Proc.t

val write_inline : t -> fd:int -> off:int -> data:bytes -> unit M3v_sim.Proc.t
val stat : t -> string -> (Fs_proto.fs_rep, string) result M3v_sim.Proc.t
val readdir : t -> string -> (string list, string) result M3v_sim.Proc.t
val mkdir : t -> string -> (unit, string) result M3v_sim.Proc.t
val unlink : t -> string -> (unit, string) result M3v_sim.Proc.t

(** Number of extent-switch RPCs performed so far (tests, accounting). *)
val extent_switches : t -> int

val to_vfs : t -> Vfs.t
