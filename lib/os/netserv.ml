open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
open Net_proto

type sock_state = {
  mutable port : int;
  rx_queue : packet Queue.t;
  mutable parked : (int * Msg.t) option;  (** a tagged Recvfrom waiting for data *)
}

type handle = {
  socks : (int, sock_state) Hashtbl.t;
  mutable next_sock : int;
  mutable h_sent : int;
  mutable h_received : int;
  mutable h_parked_max : int;
}

type stats = { sent : int; received : int; parked_max : int }

let make_handle () =
  { socks = Hashtbl.create 8; next_sock = 1; h_sent = 0; h_received = 0; h_parked_max = 0 }

let stats h = { sent = h.h_sent; received = h.h_received; parked_max = h.h_parked_max }

(* Calibration: an 80 MHz BOOM core spends on the order of 100 us per
   packet in a small embedded IP stack; these counts land there. *)
let stack_tx_cycles = 9_500
let stack_rx_cycles = 11_000
let driver_cycles = 1_800

let program h ~rgate ~nic_rgate ~nic () (_env : A.env) =
  let sock_of id = Hashtbl.find_opt h.socks id in
  let find_by_port port =
    Hashtbl.fold
      (fun _ s acc -> if s.port = port then Some s else acc)
      h.socks None
  in
  let reply_pkt msg tag (pkt : packet) =
    let rep = N_pkt { src = pkt.src; data = pkt.payload } in
    A.reply ~recv_ep:!rgate ~msg ~size:(rep_size rep) (Net_rep (tag, rep))
  in
  let handle_client (msg : Msg.t) tag req =
    let reply rep =
      A.reply ~recv_ep:!rgate ~msg ~size:(rep_size rep) (Net_rep (tag, rep))
    in
    match req with
    | Socket ->
        let id = h.next_sock in
        h.next_sock <- id + 1;
        Hashtbl.replace h.socks id
          { port = 40_000 + id; rx_queue = Queue.create (); parked = None };
        reply (N_sock id)
    | Bind { sock; port } -> (
        match sock_of sock with
        | None -> reply (N_err "bad socket")
        | Some s ->
            s.port <- port;
            reply N_ok)
    | Sendto { sock; dst; data } -> (
        match sock_of sock with
        | None -> reply (N_err "bad socket")
        | Some s ->
            h.h_sent <- h.h_sent + 1;
            (* Header construction, checksums, enqueue for DMA, doorbell. *)
            let* () = A.compute stack_tx_cycles in
            let* () = A.memcpy (Bytes.length data) in
            let* () = A.compute driver_cycles in
            (match !nic with
            | Some nic ->
                Nic.transmit nic
                  { src = (0, s.port); dst; payload = Bytes.copy data }
            | None -> ());
            reply N_ok)
    | Recvfrom { sock } -> (
        match sock_of sock with
        | None -> reply (N_err "bad socket")
        | Some s -> (
            match Queue.take_opt s.rx_queue with
            | Some pkt ->
                let* () = A.memcpy (Bytes.length pkt.payload) in
                reply_pkt msg tag pkt
            | None ->
                (* Park until the NIC delivers something for this port. *)
                s.parked <- Some (tag, msg);
                let parked =
                  Hashtbl.fold
                    (fun _ s acc -> acc + if s.parked = None then 0 else 1)
                    h.socks 0
                in
                h.h_parked_max <- max h.h_parked_max parked;
                Proc.return ()))
    | Close_sock { sock } ->
        Hashtbl.remove h.socks sock;
        reply N_ok
  in
  let handle_rx (nic_msg : Msg.t) (pkt : packet) =
    h.h_received <- h.h_received + 1;
    (* Interrupt handling, demux, checksum verification. *)
    let* () = A.compute (driver_cycles + stack_rx_cycles) in
    let* () = A.ack ~ep:!nic_rgate nic_msg in
    match find_by_port (snd pkt.dst) with
    | None -> Proc.return () (* no listener: drop *)
    | Some s -> (
        match s.parked with
        | Some (tag, waiting) ->
            s.parked <- None;
            let* () = A.memcpy (Bytes.length pkt.payload) in
            reply_pkt waiting tag pkt
        | None ->
            Queue.add pkt s.rx_queue;
            Proc.return ())
  in
  (* Network-stack time counts as system time (paper, 6.5.2). *)
  let* () = A.acct "sys" in
  let rec serve () =
    let* ep, msg = A.recv ~eps:[ !nic_rgate; !rgate ] in
    let* () =
      if ep = !rgate then
        match msg.Msg.data with
        | Net (tag, req) -> handle_client msg tag req
        | _ -> A.ack ~ep:!rgate msg
      else
        match msg.Msg.data with
        | Nic_rx pkt -> handle_rx msg pkt
        | _ -> A.ack ~ep:!nic_rgate msg
    in
    serve ()
  in
  serve ()
