open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api
module Msg = M3v_dtu.Msg
module Fault = M3v_fault.Fault
open Net_proto

type t = {
  sgate : int;
  reply_ep : int;
  mutable seq : int;  (** request tag counter (stale-reply detection) *)
}

let create ~sgate ~reply_ep = { sgate; reply_ep; seq = 0 }

(* See [Fs_client.rpc_timeout]: only trips when the server is really
   gone. *)
let rpc_timeout = M3v_sim.Time.ms 8
let rpc_attempts = 3

let rec drain_replies t =
  let* m = A.try_recv ~eps:[ t.reply_ep ] in
  match m with
  | None -> Proc.return ()
  | Some (_ep, msg) ->
      let* () = A.ack ~ep:t.reply_ep msg in
      drain_replies t

let decode_reply ~tag (msg : Msg.t) =
  match msg.Msg.data with
  | Net_rep (tag', rep) when tag' = tag -> rep
  | Net_rep _ -> failwith "Net_client: reply tag mismatch"
  | _ -> failwith "Net_client: malformed reply"

let rpc t req =
  t.seq <- t.seq + 1;
  let tag = t.seq in
  if not (Fault.on ()) then
    let* msg =
      A.call ~sgate:t.sgate ~reply_ep:t.reply_ep ~size:(req_size req)
        (Net (tag, req))
    in
    Proc.return (decode_reply ~tag msg)
  else
    (* Bounded waits + retries under fault injection; a dead connection
       surfaces as ECONNRESET instead of blocking forever. *)
    let rec attempt n =
      let* r =
        A.call_timeout ~sgate:t.sgate ~reply_ep:t.reply_ep
          ~size:(req_size req) ~timeout:rpc_timeout (Net (tag, req))
      in
      check r n
    and check r n =
      match r with
      | None ->
          if n >= rpc_attempts then Proc.return (N_err "ECONNRESET")
          else
            let* () = drain_replies t in
            attempt (n + 1)
      | Some msg -> (
          match msg.Msg.data with
          | Net_rep (tag', rep) when tag' = tag -> Proc.return rep
          | Net_rep _ ->
              (* Reply to an earlier, abandoned attempt: discard it and
                 keep waiting for ours without resending. *)
              let* r = A.recv_timeout ~eps:[ t.reply_ep ] ~timeout:rpc_timeout in
              let* r =
                match r with
                | None -> Proc.return None
                | Some (_ep, m) ->
                    let* () = A.ack ~ep:t.reply_ep m in
                    Proc.return (Some m)
              in
              check r n
          | _ -> failwith "Net_client: malformed reply")
    in
    let* () = drain_replies t in
    attempt 1

let socket t =
  let* rep = rpc t Socket in
  match rep with
  | N_sock id -> Proc.return id
  | _ -> failwith "Net_client: bad socket reply"

let bind t ~sock ~port =
  let* rep = rpc t (Bind { sock; port }) in
  match rep with
  | N_ok -> Proc.return ()
  | N_err e -> failwith ("Net_client: bind: " ^ e)
  | _ -> failwith "Net_client: bad bind reply"

let sendto t ~sock ~dst data =
  let* rep = rpc t (Sendto { sock; dst; data }) in
  match rep with
  | N_ok -> Proc.return ()
  | N_err e -> failwith ("Net_client: sendto: " ^ e)
  | _ -> failwith "Net_client: bad sendto reply"

let recvfrom t ~sock =
  let* rep = rpc t (Recvfrom { sock }) in
  match rep with
  | N_pkt { src; data } -> Proc.return (src, data)
  | N_err e -> failwith ("Net_client: recvfrom: " ^ e)
  | _ -> failwith "Net_client: bad recvfrom reply"

let close t ~sock =
  let* rep = rpc t (Close_sock { sock }) in
  match rep with
  | N_ok -> Proc.return ()
  | _ -> failwith "Net_client: bad close reply"

type udp = {
  u_socket : unit -> int Proc.t;
  u_bind : int -> int -> unit Proc.t;
  u_sendto : int -> Net_proto.addr -> bytes -> unit Proc.t;
  u_recvfrom : int -> (Net_proto.addr * bytes) Proc.t;
  u_close : int -> unit Proc.t;
}

let to_udp t =
  {
    u_socket = (fun () -> socket t);
    u_bind = (fun sock port -> bind t ~sock ~port);
    u_sendto = (fun sock dst data -> sendto t ~sock ~dst data);
    u_recvfrom = (fun sock -> recvfrom t ~sock);
    u_close = (fun sock -> close t ~sock);
  }
