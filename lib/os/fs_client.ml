open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module A = M3v_mux.Act_api
module Proto = M3v_kernel.Protocol
module Msg = M3v_dtu.Msg
module Fault = M3v_fault.Fault
open Fs_proto

type window = {
  w_file_off : int;  (** file offset of the window start *)
  w_len : int;
  w_writable : bool;
}

type fd_state = {
  mutable pos : int;
  mutable max_written : int;
  writable : bool;
  mutable window : window option;
}

type t = {
  env : A.env;
  sgate : int;
  reply_ep : int;
  data_ep : int;
  fds : (int, fd_state) Hashtbl.t;
  mutable ep_fd : int;  (** which fd's extent the data endpoint holds *)
  mutable switches : int;
  mutable seq : int;  (** request tag counter (stale-reply detection) *)
}

let create ~env ~sgate ~reply_ep ~data_ep =
  {
    env;
    sgate;
    reply_ep;
    data_ep;
    fds = Hashtbl.create 8;
    ep_fd = -1;
    switches = 0;
    seq = 0;
  }

let extent_switches t = t.switches

(* Per-attempt reply deadline under fault injection: generous relative to
   the DTU's own retransmit budget, so it only trips when the server is
   really gone (crashed and not yet restarted, or wedged). *)
let rpc_timeout = M3v_sim.Time.ms 8
let rpc_attempts = 3

(* Drop stale replies (from a timed-out attempt, or addressed to a
   pre-crash incarnation of this client) so a retried request cannot pair
   with an old response. *)
let rec drain_replies t =
  let* m = A.try_recv ~eps:[ t.reply_ep ] in
  match m with
  | None -> Proc.return ()
  | Some (_ep, msg) ->
      let* () = A.ack ~ep:t.reply_ep msg in
      drain_replies t

let decode_reply ~tag (msg : Msg.t) =
  match msg.Msg.data with
  | Fs_rep (tag', rep) when tag' = tag -> rep
  | Fs_rep _ -> failwith "Fs_client: reply tag mismatch"
  | _ -> failwith "Fs_client: malformed reply"

let rpc t req =
  t.seq <- t.seq + 1;
  let tag = t.seq in
  if not (Fault.on ()) then
    let* msg =
      A.call ~sgate:t.sgate ~reply_ep:t.reply_ep ~size:(req_size req)
        (Fs (tag, req))
    in
    Proc.return (decode_reply ~tag msg)
  else
    (* Under fault injection the server may have crashed: bound every wait
       and retry a few times before surfacing EIO instead of blocking
       forever. *)
    let rec attempt n =
      let* r =
        A.call_timeout ~sgate:t.sgate ~reply_ep:t.reply_ep
          ~size:(req_size req) ~timeout:rpc_timeout (Fs (tag, req))
      in
      check r n
    and check r n =
      match r with
      | None ->
          if n >= rpc_attempts then Proc.return (R_err "EIO")
          else
            let* () = drain_replies t in
            attempt (n + 1)
      | Some msg -> (
          match msg.Msg.data with
          | Fs_rep (tag', rep) when tag' = tag -> Proc.return rep
          | Fs_rep _ ->
              (* Reply to an earlier, abandoned attempt: discard it and
                 keep waiting for ours without resending. *)
              let* r = A.recv_timeout ~eps:[ t.reply_ep ] ~timeout:rpc_timeout in
              let* r =
                match r with
                | None -> Proc.return None
                | Some (_ep, m) ->
                    let* () = A.ack ~ep:t.reply_ep m in
                    Proc.return (Some m)
              in
              check r n
          | _ -> failwith "Fs_client: malformed reply")
    in
    (* Drain first as well: a restarted incarnation of this client may
       find replies addressed to its predecessor still queued. *)
    let* () = drain_replies t in
    attempt 1

let fd_state t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Fs_client: unknown fd %d" fd)

let open_ t path flags =
  let* rep = rpc t (Open { path; flags }) in
  match rep with
  | R_fd fd ->
      Hashtbl.replace t.fds fd
        { pos = 0; max_written = 0; writable = flags.fl_write; window = None };
      Proc.return (Ok fd)
  | R_err e -> Proc.return (Error e)
  | _ -> failwith "Fs_client: bad open reply"

(* Install the extent containing [pos] on the data endpoint. *)
let switch_extent t st ~fd ~writable =
  let req =
    if writable then Write_ext { fd; off = st.pos } else Read_ext { fd; off = st.pos }
  in
  let* rep = rpc t req in
  match rep with
  | R_eof ->
      st.window <- None;
      Proc.return false
  | R_ext { sel; win_off = _; win_len; win_file_off } ->
      t.switches <- t.switches + 1;
      (* Activate the extent capability on the reusable data endpoint. *)
      let* rep =
        A.syscall_exn t.env (Proto.Activate { sel; ep = Some t.data_ep })
      in
      (match rep with Proto.Ok_ep _ -> () | _ -> failwith "Fs_client: activate");
      t.ep_fd <- fd;
      st.window <-
        Some { w_file_off = win_file_off; w_len = win_len; w_writable = writable };
      Proc.return true
  | R_err _ ->
      (* I/O error (e.g. the service is gone for good): surface it as a
         short transfer, like a POSIX read/write would. *)
      st.window <- None;
      Proc.return false
  | _ -> failwith "Fs_client: bad extent reply"

(* The data endpoint is shared across fds: the cached window is only valid
   while this fd still owns the endpoint. *)
let window_covers t st ~fd ~writable =
  t.ep_fd = fd
  &&
  match st.window with
  | Some w ->
      w.w_writable = writable
      && st.pos >= w.w_file_off
      && st.pos < w.w_file_off + w.w_len
  | None -> false

(* libc-level bookkeeping per read()/write() call: position and window
   management, argument checking. *)
let libc_call_cycles = 350

(* Transfer [len] bytes at the fd's position, chunked to the vDTU's
   one-page-per-command limit. *)
let transfer t ~fd ~(buf : M3v_mux.Act_ops.buf) ~len ~writable =
  let st = fd_state t fd in
  if writable && not st.writable then failwith "Fs_client: fd not writable";
  let total = ref 0 in
  let* () = A.compute libc_call_cycles in
  let rec loop () =
    if !total >= len then Proc.return !total
    else
      let* have_window =
        if window_covers t st ~fd ~writable then Proc.return true
        else switch_extent t st ~fd ~writable
      in
      if not have_window then Proc.return !total (* EOF *)
      else begin
        let w = Option.get st.window in
        let window_left = w.w_file_off + w.w_len - st.pos in
        let page_left =
          M3v_dtu.Dtu_types.page_size
          - M3v_dtu.Dtu_types.page_offset (buf.M3v_mux.Act_ops.vaddr + !total)
        in
        let chunk = min (min (len - !total) window_left) page_left in
        let region_off = st.pos - w.w_file_off in
        let vaddr = buf.M3v_mux.Act_ops.vaddr + !total in
        let* () =
          if writable then
            A.mem_write ~ep:t.data_ep ~off:region_off ~len:chunk ~vaddr
              ~src:buf.M3v_mux.Act_ops.data ~src_off:!total ()
          else
            A.mem_read ~ep:t.data_ep ~off:region_off ~len:chunk ~vaddr
              ~dst:buf.M3v_mux.Act_ops.data ~dst_off:!total ()
        in
        st.pos <- st.pos + chunk;
        if writable then st.max_written <- max st.max_written st.pos;
        total := !total + chunk;
        loop ()
      end
  in
  loop ()

let read t ~fd ~buf ~len = transfer t ~fd ~buf ~len ~writable:false
let write t ~fd ~buf ~len = transfer t ~fd ~buf ~len ~writable:true

let seek t ~fd ~pos =
  let st = fd_state t fd in
  st.pos <- pos;
  Proc.return ()

let close t ~fd =
  let st = fd_state t fd in
  Hashtbl.remove t.fds fd;
  let* rep = rpc t (Close { fd; size = st.max_written }) in
  match rep with
  | R_ok | R_err _ -> Proc.return ()  (* the fd is gone either way *)
  | _ -> failwith "Fs_client: bad close reply"

let read_inline t ~fd ~off ~len =
  let* rep = rpc t (Read_inline { fd; off; len }) in
  match rep with
  | R_data data -> Proc.return data
  | R_err e -> failwith ("Fs_client: inline read failed: " ^ e)
  | _ -> failwith "Fs_client: bad inline reply"

let write_inline t ~fd ~off ~data =
  let* rep = rpc t (Write_inline { fd; off; data }) in
  match rep with
  | R_ok -> Proc.return ()
  | R_err e -> failwith ("Fs_client: inline write failed: " ^ e)
  | _ -> failwith "Fs_client: bad inline write reply"

let stat t path =
  let* rep = rpc t (Stat { path }) in
  match rep with
  | R_stat _ -> Proc.return (Ok rep)
  | R_err e -> Proc.return (Error e)
  | _ -> failwith "Fs_client: bad stat reply"

let readdir t path =
  let* rep = rpc t (Readdir { path }) in
  match rep with
  | R_names names -> Proc.return (Ok names)
  | R_err e -> Proc.return (Error e)
  | _ -> failwith "Fs_client: bad readdir reply"

let simple t req =
  let* rep = rpc t req in
  match rep with
  | R_ok -> Proc.return (Ok ())
  | R_err e -> Proc.return (Error e)
  | _ -> failwith "Fs_client: bad reply"

let mkdir t path = simple t (Mkdir { path })
let unlink t path = simple t (Unlink { path })

let to_vfs t =
  {
    Vfs.open_ = (fun path flags -> open_ t path flags);
    read = (fun fd buf len -> read t ~fd ~buf ~len);
    write = (fun fd buf len -> write t ~fd ~buf ~len);
    seek = (fun fd pos -> seek t ~fd ~pos);
    close = (fun fd -> close t ~fd);
    stat = (fun path -> stat t path);
    readdir = (fun path -> readdir t path);
    mkdir = (fun path -> mkdir t path);
    unlink = (fun path -> unlink t path);
  }
