type M3v_sim.Proc.op +=
  | Lx_noop_syscall
  | Lx_yield
  | Lx_open of { o_path : string; o_flags : M3v_os.Fs_proto.open_flags }
  | Lx_read of { r_fd : int; r_buf : M3v_mux.Act_ops.buf; r_len : int }
  | Lx_write of { w_fd : int; w_buf : M3v_mux.Act_ops.buf; w_len : int }
  | Lx_seek of { s_fd : int; s_pos : int }
  | Lx_close of int
  | Lx_stat of string
  | Lx_readdir of string
  | Lx_mkdir of string
  | Lx_unlink of string
  | Lx_socket
  | Lx_bind of { b_sock : int; b_port : int }
  | Lx_sendto of { sd_sock : int; sd_dst : M3v_os.Net_proto.addr; sd_data : bytes }
  | Lx_recvfrom of { rc_sock : int }
  | Lx_sock_close of int

type M3v_sim.Proc.resp +=
  | L_int of int
  | L_result of (int, string) result
  | L_names of (string list, string) result
  | L_unit_result of (unit, string) result
  | L_stat of (M3v_os.Fs_proto.fs_rep, string) result
  | L_pkt of M3v_os.Net_proto.addr * bytes

let () =
  M3v_sim.Checkpoint.register_exts
    [
      [%extension_constructor Lx_noop_syscall];
      [%extension_constructor Lx_yield];
      [%extension_constructor Lx_open];
      [%extension_constructor Lx_read];
      [%extension_constructor Lx_write];
      [%extension_constructor Lx_seek];
      [%extension_constructor Lx_close];
      [%extension_constructor Lx_stat];
      [%extension_constructor Lx_readdir];
      [%extension_constructor Lx_mkdir];
      [%extension_constructor Lx_unlink];
      [%extension_constructor Lx_socket];
      [%extension_constructor Lx_bind];
      [%extension_constructor Lx_sendto];
      [%extension_constructor Lx_recvfrom];
      [%extension_constructor Lx_sock_close];
      [%extension_constructor L_int];
      [%extension_constructor L_result];
      [%extension_constructor L_names];
      [%extension_constructor L_unit_result];
      [%extension_constructor L_stat];
      [%extension_constructor L_pkt];
    ]
