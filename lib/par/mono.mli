(** Monotonic wall clock (CLOCK_MONOTONIC, nanoseconds).

    The one sanctioned source of wall time for measurements: immune to
    clock steps, so elapsed times are nonnegative by construction.
    Values are nanoseconds since an unspecified epoch — only
    differences mean anything.  Keep [Unix.gettimeofday] for calendar
    timestamps in report headers, nothing else.

    Wall-clock readings must never enter simulated state or experiment
    output: they vary run to run and would break the byte-identity
    contracts.  Telemetry keeps them in the side-channel report only. *)

type ns = int64

val now_ns : unit -> ns
(** Current monotonic reading, in nanoseconds. *)

val elapsed_ns : since:ns -> ns
(** Nanoseconds elapsed since an earlier {!now_ns} reading. *)

val elapsed_s : since:ns -> float
(** Seconds elapsed since an earlier {!now_ns} reading. *)

val ns_to_s : ns -> float
(** Convert a nanosecond delta to seconds. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with elapsed seconds. *)
