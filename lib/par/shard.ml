(* Conservative-lookahead sharded discrete-event scheduler.

   Partitions a simulation into [shards] regions, each owning a private
   {!M3v_sim.Engine} (and thus a private SoA event heap), and advances
   them in synchronized windows:

     - every shard advertises its horizon = the timestamp of its earliest
       pending event (an empty shard advertises +inf — the null-message
       rule that keeps idle shards from deadlocking the window);
     - shard [i] may safely execute events up to
       [min over j<>i of horizon(j) + lookahead - 1]: any message another
       shard could still send it is born at or after that shard's horizon
       and arrives at least [lookahead] later;
     - cross-shard sends buffer into the sending shard's private out-list
       during the window and are merged at the barrier.

   The per-shard bound (rather than one global [lbts + lookahead - 1]
   window) matters for the degenerate but important single-region case:
   when only one shard holds events — the drop-in `--shards K` mode wraps
   an unpartitioned simulation this way — every other horizon is +inf, so
   the busy shard runs unthrottled in a single window and the scheduler
   adds no per-window cost to a multi-second simulation.

   Determinism.  Each engine pops (time, seq)-ordered events exactly as a
   sequential engine would, so a shard's execution is a function of its
   event stream alone.  The only schedule-sensitive part is the barrier
   merge, which sorts every flushed batch by

     (delivery time, birth time, source shard, per-source sequence)

   before delivery.  Windows partition simulated time into ordered
   intervals, so two messages in one flush round with equal delivery time
   were either born at the same instant — then both always share a flush
   round, and (src, seq) orders them identically under any window
   schedule — or at different instants, in which case any schedule flushes
   the earlier-born one no later, and birth time orders them.  The
   concatenation of sorted flush rounds is therefore the same total order
   however the windows fall (K = 1, K = 8, or a checkpoint slicing a
   window in half).  Relative heap order of a delivered message against a
   shard-local event with the *same* timestamp is still insertion-defined;
   models that mix the two at equal times must impose content-keyed
   ordering at the consumption point (see Exp_shard's mailbox discipline).

   Worker-domain hygiene mirrors {!Par}: windows run inline (in shard
   order, on the calling domain) whenever a trace sink or fault plan is
   installed — both live in domain-local storage and would not follow
   shards onto workers — and metrics recorded inside pooled windows go
   through {!Par.submit}'s per-task shards, merged in submission (= shard
   index) order.

   The structure is marshal-safe by construction: engines, buffers and
   counters only — no Domains, Atomics or pool handles — so a sharded
   simulation checkpoints exactly like a sequential one (the pool is
   passed to {!run}, never stored, and out-buffers are always drained
   before returning). *)

module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Metrics = M3v_obs.Metrics

type 'm pending = {
  p_dst : int;
  p_time : Time.t;
  p_birth : Time.t;
  p_src : int;
  p_seq : int;
  p_msg : 'm;
}

type 'm t = {
  nshards : int;
  lookahead : Time.t;
  engines : Engine.t array;
  mutable handler : (dst:int -> time:Time.t -> 'm -> unit) option;
  out : 'm pending list ref array; (* per-SOURCE-shard; owner-written only *)
  seqs : int array; (* per-source send sequence, owner-written only *)
  parallel_threshold : int;
  mutable windows : int;
  mutable parallel_windows : int;
  mutable routed : int;
  mutable telem : Telemetry.t option;
      (* Plain data (see Telemetry): rides along in checkpoints. *)
}

type stats = { windows : int; parallel_windows : int; messages_routed : int }

let inf = max_int

let create ?(parallel_threshold = 64) ~lookahead ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  if lookahead < 1 then invalid_arg "Shard.create: lookahead < 1";
  let t =
    {
      nshards = shards;
      lookahead;
      engines = Array.init shards (fun _ -> Engine.create ());
      handler = None;
      out = Array.init shards (fun _ -> ref []);
      seqs = Array.make shards 0;
      parallel_threshold;
      windows = 0;
      parallel_windows = 0;
      routed = 0;
      telem = None;
    }
  in
  (* While a telemetry collection is open (--telemetry), every
     multi-shard group reports into it; single-shard groups are the
     sequential references inside sweeps and would only add noise. *)
  if shards > 1 && Telemetry.collecting () then begin
    let tm = Telemetry.make ~cap:(Telemetry.collector_cap ()) ~shards () in
    Telemetry.register tm;
    t.telem <- Some tm
  end;
  t

let enable_telemetry ?cap t =
  match t.telem with
  | Some tm -> tm
  | None ->
      let tm = Telemetry.make ?cap ~shards:t.nshards () in
      t.telem <- Some tm;
      tm

let telemetry t = t.telem

(* A checkpoint-resumed group was unmarshaled, not [create]d, so it never
   met the collector; re-announce its (restored) telemetry if a
   collection is open. *)
let reregister_telemetry t =
  match t.telem with
  | Some tm when Telemetry.collecting () -> Telemetry.register tm
  | _ -> ()

let shards t = t.nshards
let lookahead t = t.lookahead

let engine t i =
  if i < 0 || i >= t.nshards then invalid_arg "Shard.engine: shard out of range";
  t.engines.(i)

let set_handler t h = t.handler <- Some h

let pending t =
  Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines

let stats (t : _ t) =
  {
    windows = t.windows;
    parallel_windows = t.parallel_windows;
    messages_routed = t.routed;
  }

let get_handler t =
  match t.handler with
  | Some h -> h
  | None -> invalid_arg "Shard: no handler installed (set_handler)"

let send t ~src ~dst ~time msg =
  if src < 0 || src >= t.nshards || dst < 0 || dst >= t.nshards then
    invalid_arg "Shard.send: shard out of range";
  if src = dst then
    (* Same-shard delivery is ordinary shard-local scheduling: hand it to
       the handler synchronously (it runs on the shard's own domain and
       touches only that shard's state), with no lookahead constraint. *)
    get_handler t ~dst ~time msg
  else begin
    let now = Engine.now t.engines.(src) in
    if time < Time.add now t.lookahead then
      invalid_arg
        (Format.asprintf
           "Shard.send: cross-shard delivery at %a violates lookahead %a \
            (now %a)"
           Time.pp time Time.pp t.lookahead Time.pp now);
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    let buf = t.out.(src) in
    buf :=
      { p_dst = dst; p_time = time; p_birth = now; p_src = src; p_seq = seq;
        p_msg = msg }
      :: !buf
  end

let compare_pending a b =
  let c = compare a.p_time b.p_time in
  if c <> 0 then c
  else
    let c = compare a.p_birth b.p_birth in
    if c <> 0 then c
    else
      let c = compare a.p_src b.p_src in
      if c <> 0 then c else compare a.p_seq b.p_seq

(* Barrier merge: deliver every buffered cross-shard message, globally
   sorted by (time, birth, src, seq) — see the determinism argument in
   the header.  Runs on the coordinating domain between windows. *)
let flush t =
  let batch = ref [] in
  Array.iter
    (fun buf ->
      batch := List.rev_append !buf !batch;
      buf := [])
    t.out;
  match !batch with
  | [] -> ()
  | msgs ->
      let handler = get_handler t in
      List.iter
        (fun p ->
          t.routed <- t.routed + 1;
          handler ~dst:p.p_dst ~time:p.p_time p.p_msg)
        (List.sort compare_pending msgs)

let horizon e = match Engine.next_event_time e with None -> inf | Some tm -> tm

(* Smallest and second-smallest horizons with their shard indices (the
   argmin shard's bound uses the second-smallest: its own events never
   bound itself — and telemetry attributes that bound to the shard that
   produced it).  Also counts the +inf (null-message) advertisements. *)
let min2 t =
  let m1 = ref inf and i1 = ref (-1) and m2 = ref inf and i2 = ref (-1)
  and nulls = ref 0 in
  Array.iteri
    (fun i e ->
      let h = horizon e in
      if h = inf then incr nulls;
      if h < !m1 then begin
        m2 := !m1;
        i2 := !i1;
        m1 := h;
        i1 := i
      end
      else if h < !m2 then begin
        m2 := h;
        i2 := i
      end)
    t.engines;
  (!m1, !i1, !m2, !i2, !nulls)

let add_sat a b = if a >= inf - b then inf else a + b

let may_parallelize () =
  not (M3v_obs.Trace.on () || M3v_fault.Fault.on ())

(* One synchronization window: compute per-shard bounds, run every shard
   that has work inside its bound (on the pool when the window is worth a
   barrier, else inline in shard order), then flush the cross-shard
   messages born in it.

   Telemetry is recorded around the existing control flow, never inside
   its decisions: bounds, the busy set, dispatch, and the merge are
   computed exactly as without it, so enabling telemetry cannot perturb
   experiment output.  Per-shard spans are written into disjoint slots of
   the window record (safe from worker domains; read after the pool
   barrier); everything else happens on the coordinating domain. *)
let run_window ~pool ?until ?max_events t =
  let m1, i1, m2, i2, nulls = min2 t in
  if m1 = inf then `All_idle
  else
    match until with
    | Some u when m1 > u -> `Horizon
    | _ ->
        let bound i =
          let others = if i = i1 then m2 else m1 in
          let b = add_sat others (t.lookahead - 1) in
          match until with Some u -> Time.min u b | None -> b
        in
        (* Which shard's horizon produced shard [i]'s bound: the argmin
           peer (second-argmin for the argmin shard itself), the [until]
           clamp when it strictly tightens, or nothing at all. *)
        let limiter i =
          let others, j = if i = i1 then (m2, i2) else (m1, i1) in
          let b = add_sat others (t.lookahead - 1) in
          match until with
          | Some u when u < b -> Telemetry.limiter_until
          | _ -> if b = inf then Telemetry.limiter_unbounded else j
        in
        let busy = ref [] in
        for i = t.nshards - 1 downto 0 do
          if horizon t.engines.(i) <= bound i then busy := i :: !busy
        done;
        let busy = !busy in
        let wrec =
          match t.telem with
          | None -> None
          | Some tm ->
              let w = Telemetry.begin_window tm ~seq:t.windows ~nulls in
              List.iter
                (fun i ->
                  Telemetry.set_bound w i ~bound:(bound i) ~limiter:(limiter i))
                busy;
              Some w
        in
        t.windows <- t.windows + 1;
        let run_one i =
          let e = t.engines.(i) in
          let b = bound i in
          match wrec with
          | None ->
              if b = inf then Engine.run ?max_events e
              else Engine.run ~until:b ?max_events e
          | Some w ->
              Telemetry.shard_begin w i ~sim_now:(Engine.now e);
              let n =
                if b = inf then Engine.run ?max_events e
                else Engine.run ~until:b ?max_events e
              in
              Telemetry.shard_end w i ~sim_now:(Engine.now e) ~events:n;
              n
        in
        let pooled = ref false in
        let counts =
          let enough_work () =
            List.fold_left
              (fun acc i ->
                let e = t.engines.(i) in
                let b = bound i in
                acc
                + (if b = inf then Engine.pending e
                   else Engine.pending_below e ~time:b))
              0 busy
            >= t.parallel_threshold
          in
          match busy with
          | [] | [ _ ] -> List.map run_one busy
          | _ :: _ :: _
            when Par.Pool.jobs pool > 1 && may_parallelize () && enough_work ()
            ->
              t.parallel_windows <- t.parallel_windows + 1;
              pooled := true;
              Par.all pool (List.map (fun i () -> run_one i) busy)
          | _ :: _ :: _ -> List.map run_one busy
        in
        let routed0 = t.routed in
        flush t;
        let merged = t.routed - routed0 in
        (match (t.telem, wrec) with
        | Some tm, Some w -> Telemetry.commit tm w ~pooled:!pooled ~merged
        | _ -> ());
        let total = List.fold_left ( + ) 0 counts in
        (* Standing par/* instruments — independent of telemetry, and
           restricted to schedule-invariant quantities so metrics output
           stays byte-identical across --jobs (the dispatch decision is
           jobs-dependent and reported only through telemetry). *)
        if Metrics.on () then begin
          Metrics.counter_incr ~name:"par/windows" ~cat:"par" ();
          if merged > 0 then
            Metrics.counter_add ~name:"par/msgs_merged" ~cat:"par"
              (float_of_int merged);
          if nulls > 0 then
            Metrics.counter_add ~name:"par/null_adverts" ~cat:"par"
              (float_of_int nulls);
          Metrics.observe ~name:"par/window_events" ~cat:"par"
            (float_of_int total)
        end;
        `Ran total

(* Apply Engine.run's clock rule uniformly at the horizon: every shard
   whose remaining events all lie beyond [u] jumps its clock to [u],
   exactly as a sequential [Engine.run ~until:u] would. *)
let finish_clocks ?until t =
  match until with
  | None -> 0
  | Some u ->
      Array.fold_left (fun acc e -> acc + Engine.run ~until:u e) 0 t.engines

let run ?(pool = Par.Pool.sequential) ?until t =
  (* Out-buffers are drained before every return, but a handler installed
     after a checkpoint reload may find leftovers: deliver them first. *)
  flush t;
  let total = ref 0 in
  let rec go () =
    match run_window ~pool ?until t with
    | `Ran n ->
        total := !total + n;
        go ()
    | `All_idle | `Horizon -> ()
  in
  go ();
  !total + finish_clocks ?until t

let step ?(pool = Par.Pool.sequential) ?until ?max_events t =
  (* Same pre-drain as [run]: a message sent before the first window (or
     left over by a checkpoint reload) must land before horizons are
     read, or an otherwise-empty group would report `Idle with work
     buffered. *)
  flush t;
  match run_window ~pool ?until ?max_events t with
  | `Ran n -> `Events n
  | `All_idle | `Horizon ->
      ignore (finish_clocks ?until t);
      `Idle
