(* Monotonic wall clock, shared by every wall-time measurement in the
   tree (speedup reporting, shard telemetry, bench warmups).

   CLOCK_MONOTONIC via bechamel's noalloc C stub: immune to NTP steps
   and settimeofday, so elapsed times can't go negative and speedups
   can't silently invert.  [Unix.gettimeofday] remains appropriate for
   exactly one thing — stamping reports with a calendar date — and the
   bench report header is its only remaining caller.

   Readings are int64 nanoseconds from an unspecified epoch: only
   differences are meaningful.  Nothing here ever touches simulated
   time ({!M3v_sim.Time}); wall-clock values live strictly outside
   simulator state so they can never leak into experiment output. *)

type ns = int64

let now_ns () : ns = Monotonic_clock.now ()

let elapsed_ns ~since:(t0 : ns) : ns = Int64.sub (now_ns ()) t0
let ns_to_s (d : ns) = Int64.to_float d /. 1e9

let elapsed_s ~since = ns_to_s (elapsed_ns ~since)

let timed f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s ~since:t0)
