(** Conservative-lookahead sharded discrete-event scheduler.

    Partitions a simulation into [K] regions ("shards"), each owning a
    private {!M3v_sim.Engine}, and advances them in synchronized windows
    under the classic conservative (YAWNS / bounded-lag) rule: shard [i]
    may execute events up to

      [min over j <> i of horizon(j) + lookahead - 1]

    where a shard's {e horizon} is the timestamp of its earliest pending
    event and an empty shard advertises an infinite horizon (the
    null-message rule — idle shards never deadlock a window, and a lone
    busy shard runs unthrottled).  [lookahead] is the minimum cross-shard
    message latency, extracted from the NoC model: a message born at a
    shard's horizon cannot arrive anywhere else sooner than
    [horizon + lookahead], so everything strictly before that is safe.

    Cross-shard communication goes through {!send}: messages buffer in the
    sending shard's private out-list during a window and are merged at the
    barrier, globally sorted by (delivery time, birth time, source shard,
    per-source sequence).  That key makes the delivered order independent
    of how simulated time happens to be cut into windows — so results are
    byte-identical across shard counts, worker counts, and
    checkpoint/resume boundaries.  The one obligation left to the model:
    the relative order of a {e delivered message} and a {e shard-local
    event} with the same timestamp is insertion-defined, so models mixing
    the two at equal times must order at the consumption point by message
    content, not arrival order (see [Exp_shard]'s mailbox discipline).

    Windows run on a {!Par.Pool.t} when the available work clears a
    threshold, inline (in shard index order) otherwise — and always inline
    while a trace sink or fault plan is installed, since both live in
    domain-local storage invisible to worker domains.

    A [t] is marshal-safe (no Domains, Atomics, or pool handles inside;
    the pool is an argument of {!run}, never stored), so sharded
    simulations checkpoint with the same [Marshal]-with-closures scheme as
    sequential ones. *)

type 'm t

type stats = {
  windows : int;  (** synchronization windows executed *)
  parallel_windows : int;  (** windows dispatched on the pool *)
  messages_routed : int;  (** cross-shard messages delivered *)
}

(** [create ~lookahead ~shards ()] builds a group of [shards] fresh
    engines.  [lookahead] (>= 1 ps) is the minimum cross-shard delivery
    latency the model guarantees; {!send} enforces it.
    [parallel_threshold] is the number of in-window pending events below
    which a window runs inline even when a pool is available (default
    64 — a barrier costs more than a handful of events). *)
val create : ?parallel_threshold:int -> lookahead:M3v_sim.Time.t -> shards:int -> unit -> 'm t

val shards : 'm t -> int
val lookahead : 'm t -> M3v_sim.Time.t

(** The engine owned by shard [i].  Models schedule shard-local events on
    it directly; the scheduler never inspects payloads. *)
val engine : 'm t -> int -> M3v_sim.Engine.t

(** Install the cross-shard delivery handler: [handler ~dst ~time msg] is
    called once per message, in merged order, on the coordinating domain
    between windows — typically it schedules an event at [time] on
    [engine t dst].  Required before {!send} or any delivery. *)
val set_handler : 'm t -> (dst:int -> time:M3v_sim.Time.t -> 'm -> unit) -> unit

(** [send t ~src ~dst ~time msg] routes [msg] for delivery at [time].
    Cross-shard ([src <> dst]) sends must satisfy
    [time >= now(src) + lookahead] (raises [Invalid_argument] otherwise)
    and are buffered until the window barrier; same-shard sends invoke the
    handler synchronously with no latency constraint.  Safe to call from
    inside shard [src]'s event execution on any domain. *)
val send : 'm t -> src:int -> dst:int -> time:M3v_sim.Time.t -> 'm -> unit

(** Run windows until every shard drains (or, with [until], until no
    event at or before it remains — then every shard's clock advances to
    [until] under the same rule as [Engine.run ~until]).  Returns the
    total number of events processed across shards.  With the default
    sequential pool every window runs inline. *)
val run : ?pool:Par.Pool.t -> ?until:M3v_sim.Time.t -> 'm t -> int

(** Execute a single synchronization window and return [`Events n]
    (n >= 1 unless capped), or [`Idle] when nothing remains at or before
    [until] (clocks then advance as in {!run}).  [max_events] caps each
    shard's event count within the window — stopping early is always
    conservative-safe — so condition-polling drivers ([run_while]) can
    re-check between chunks. *)
val step :
  ?pool:Par.Pool.t ->
  ?until:M3v_sim.Time.t ->
  ?max_events:int ->
  'm t ->
  [ `Events of int | `Idle ]

(** Total pending events across all shards. *)
val pending : 'm t -> int

(** Scheduler counters (windows, parallel windows, routed messages). *)
val stats : 'm t -> stats

(** {1 Telemetry}

    Per-window records and aggregates ({!Telemetry}) — a pure observer:
    enabling it never changes scheduling decisions or experiment output.
    While a collection is open ({!Telemetry.start_collecting}, i.e.
    [--telemetry]), {!create} enables telemetry automatically on every
    multi-shard group and registers it with the collector; single-shard
    groups (the sequential references inside sweeps) are skipped. *)

(** Enable telemetry on [t] (idempotent — returns the existing instance
    if already enabled).  [cap] bounds retained per-window records;
    aggregates are never capped. *)
val enable_telemetry : ?cap:int -> 'm t -> Telemetry.t

val telemetry : 'm t -> Telemetry.t option

(** Re-announce a checkpoint-restored group's telemetry to an open
    collection: unmarshaled groups never passed through {!create}.
    No-op when telemetry is absent or no collection is open. *)
val reregister_telemetry : 'm t -> unit
