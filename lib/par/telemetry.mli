(** Per-window shard telemetry: records, aggregates, analyzer, Chrome
    lanes, and a process-global collector.

    The scheduler ({!Shard}) records one {!window} per synchronization
    window when telemetry is enabled on a group: per-shard events and
    simulated-time span, the bound each busy shard ran to and {e which
    shard's horizon produced it} (limiter attribution), cross-shard
    messages merged at the barrier, null (+inf) horizon advertisements,
    the inline-vs-pool dispatch decision, and per-shard monotonic wall
    time.  A {!t} aggregates windows into per-shard totals, an imbalance
    histogram, limiter-attribution counts, and a critical-path speedup
    bound (total work / sum of per-window max shard work).

    {b Determinism.}  Telemetry is a pure observer — enabling it never
    changes experiment output (byte-identity is asserted in tests and
    CI).  Wall-clock values come from {!Mono} and live only in this
    side-channel report; every other field is schedule-invariant, except
    the dispatch decision which depends on [--jobs] and therefore stays
    out of the Metrics registry.

    {b Marshal-safety.}  A [t] is plain data and checkpoints inside its
    {!Shard.t}.  Event counts and window structure survive resume
    exactly; wall fields of pre-checkpoint windows are meaningless in
    the new process (Chrome export clamps them to the origin). *)

(** {1 Limiter encoding} — values of [w_limiters] and {!limiter_counts}
    keys: a shard index [>= 0], or one of the sentinels below. *)

val limiter_idle : int
(** Shard was not busy in this window. *)

val limiter_unbounded : int
(** Busy with no finite bound (every other shard idle, no [until]). *)

val limiter_until : int
(** The driver's [until] clamp bound the shard, not a peer horizon. *)

val limiter_name : int -> string
(** Human-readable limiter label ("shard 3", "until", "unbounded"). *)

(** One synchronization window.  Arrays are indexed by shard; slots of
    non-busy shards ([w_limiters.(i) = limiter_idle]) hold zeros. *)
type window = {
  w_seq : int;  (** index of this window within its group's run *)
  w_events : int array;  (** events executed, per shard *)
  w_bounds : int array;  (** bound ran to, per shard; [max_int] = none *)
  w_limiters : int array;  (** limiter encoding, per shard *)
  w_t0 : int array;  (** shard sim clock at window entry (ps) *)
  w_t1 : int array;  (** shard sim clock at window exit (ps) *)
  w_wall0 : int array;  (** per-shard monotonic start (ns) *)
  w_wall : int array;  (** per-shard wall duration (ns) *)
  mutable w_busy : int;
  mutable w_nulls : int;  (** +inf horizon advertisements at entry *)
  mutable w_merged : int;  (** cross-shard messages merged at the barrier *)
  mutable w_pooled : bool;  (** dispatched on the pool (jobs-dependent) *)
  mutable w_start : int;  (** window monotonic start (ns) *)
  mutable w_wall_total : int;  (** window wall incl. barrier merge (ns) *)
}

type t

val default_cap : int
(** Default retained-window cap (aggregates are never capped). *)

val make : ?cap:int -> shards:int -> unit -> t

(** {1 Aggregate accessors} *)

val shards : t -> int
val windows : t -> int

val pooled_windows : t -> int
(** Windows dispatched on the pool — jobs-dependent, side-channel only. *)

val events : t -> int
(** Total events across all recorded windows (never capped). *)

val crit_events : t -> int
(** Critical path: sum over windows of the max per-shard event count. *)

val merged : t -> int
val nulls : t -> int
val wall_ns : t -> int
val barrier_ns : t -> int
val dropped_windows : t -> int
val shard_events : t -> int array
val shard_busy : t -> int array
val shard_wall_ns : t -> int array

val imbalance : t -> M3v_sim.Stats.Histogram.t
(** Per-window [max/mean] events over busy shards, in percent (100 =
    perfectly balanced); only windows with two or more busy shards. *)

val limiter_counts : t -> (int * int) list
(** [(limiter, busy-shard windows attributed)] with positive counts:
    shard indices first, then [limiter_until] / [limiter_unbounded]. *)

val speedup_bound : t -> float
(** [events / crit_events] — an upper bound on parallel speedup from
    this window structure, independent of core count. *)

val recent : t -> window list
(** Retained window records, oldest first (at most [cap]). *)

(** {1 Window construction} — called by {!Shard}; worker-domain safe in
    the ways noted. *)

val begin_window : t -> seq:int -> nulls:int -> window

val set_bound : window -> int -> bound:int -> limiter:int -> unit
(** Mark shard [i] busy with its bound and limiter (coordinator only,
    before dispatch). *)

val shard_begin : window -> int -> sim_now:int -> unit
(** Start shard [i]'s span.  Safe on a worker domain: each shard writes
    only its own slots, read back after the pool barrier. *)

val shard_end : window -> int -> sim_now:int -> events:int -> unit

val commit : t -> window -> pooled:bool -> merged:int -> unit
(** Fold the window into the aggregates and the retained ring
    (coordinator only, after the barrier merge). *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** Sum aggregates, merge histograms, append retained windows up to
    [into]'s cap.  Raises [Invalid_argument] on shard-count mismatch. *)

val merge_groups : t list -> t list
(** Merge into one [t] per distinct shard count, first-seen order. *)

(** {1 Report} *)

val pp : Format.formatter -> t -> unit
(** The analyzer: per-shard table, imbalance quantiles, limiter
    attribution, critical-path speedup bound, wall/barrier overhead. *)

val pp_groups : Format.formatter -> t list -> unit
(** {!merge_groups} then {!pp} each; explains itself when empty. *)

(** {1 Chrome lanes} *)

val to_sink : t -> M3v_obs.Trace.sink
(** Build a trace sink with one pid ("tile") per shard: window spans on
    each busy shard's lane, window + barrier marks on the global lane.
    Timestamps are wall nanoseconds since the group's epoch, scaled so
    the viewer's microsecond axis shows real wall microseconds.
    Installs a private sink while building — call between runs only
    (installation resets run-local trace allocators). *)

val write_chrome : string -> t -> unit

(** {1 Collector} — how [--telemetry] finds groups created deep inside
    experiments.  While collecting, {!Shard.create} auto-enables
    telemetry on every multi-shard group and registers it here.  The
    collector state is process-global and outside any [t] (marshal
    safety); [register] is thread-safe. *)

val start_collecting : ?cap:int -> unit -> unit
(** Reset the registry and enable collection ([cap] = retained windows
    per group). *)

val stop_collecting : unit -> t list
(** Disable collection and drain the registry, registration order. *)

val collecting : unit -> bool

val register : t -> unit

val collector_cap : unit -> int
