(* Per-window shard telemetry for the conservative scheduler.

   A {!window} record captures one synchronization window: the bound each
   busy shard ran to, which shard's horizon produced that bound (limiter
   attribution), per-shard events executed and simulated-time span,
   cross-shard messages merged at the barrier, null (+inf) horizon
   advertisements, the inline-vs-pool dispatch decision, and monotonic
   wall-clock per shard.  A {!t} aggregates windows into per-shard
   totals, an imbalance histogram, limiter-attribution counts, and a
   critical-path bound on achievable speedup.

   Determinism contract.  Everything here is a pure observer: recording a
   window reads scheduler state but never influences bounds, dispatch, or
   merge order, so experiment output is byte-identical with telemetry on
   or off (asserted in test_telemetry).  Wall-clock readings are
   monotonic nanoseconds ({!Mono}) and live only in this side-channel —
   they are printed to the report stream (stderr for [--telemetry]; the
   [shard-report] subcommand's own stdout) and never enter simulated
   state.  All counted quantities except wall time are schedule-invariant:
   window structure is a function of horizons and lookahead alone, so
   events-per-window, limiter attribution and the critical path are
   identical across [--jobs] values.  The one jobs-DEPENDENT field is the
   dispatch decision ([w_pooled] / [pooled_windows]); it stays out of the
   Metrics registry for exactly that reason.

   Marshal-safety: a [t] lives inside a checkpointed {!Shard.t}, so it is
   plain data — int/bool/array records and a {!M3v_sim.Stats.Histogram}
   (an int-array record) — never Atomics, Mutexes, or closures.  The
   collector's shared state lives at module level and is not reachable
   from any [t].

   After a checkpoint/resume the process changes, and monotonic readings
   from the old process are meaningless in the new one: event counts and
   window structure survive a resume exactly (asserted by the
   conservation test), wall fields of pre-checkpoint windows do not.
   Chrome export clamps their timestamps to zero rather than pretending
   otherwise. *)

module Stats = M3v_sim.Stats
module Trace = M3v_obs.Trace
module Chrome = M3v_obs.Chrome

(* Limiter encoding used in [w_limiters] and the attribution tables. *)
let limiter_idle = -3 (* shard was not busy this window *)
let limiter_unbounded = -2 (* busy with no bound: every other shard idle *)
let limiter_until = -1 (* the driver's [until] clamp bound the shard *)

let limiter_name = function
  | l when l >= 0 -> Printf.sprintf "shard %d" l
  | l when l = limiter_until -> "until"
  | l when l = limiter_unbounded -> "unbounded"
  | _ -> "idle"

type window = {
  w_seq : int;  (** index of this window within its group's run *)
  w_events : int array;  (** events executed, per shard *)
  w_bounds : int array;  (** bound ran to, per shard; [max_int] = none *)
  w_limiters : int array;  (** limiter encoding above, per shard *)
  w_t0 : int array;  (** shard sim clock at window entry (ps) *)
  w_t1 : int array;  (** shard sim clock at window exit (ps) *)
  w_wall0 : int array;  (** per-shard monotonic start (ns) *)
  w_wall : int array;  (** per-shard wall duration (ns) *)
  mutable w_busy : int;
  mutable w_nulls : int;  (** +inf horizon advertisements at entry *)
  mutable w_merged : int;  (** cross-shard messages merged at the barrier *)
  mutable w_pooled : bool;  (** dispatched on the pool (jobs-dependent) *)
  mutable w_start : int;  (** window monotonic start (ns) *)
  mutable w_wall_total : int;  (** window wall incl. barrier merge (ns) *)
}

type t = {
  shards : int;
  cap : int;
  epoch : int;  (** monotonic ns at creation; Chrome export origin *)
  mutable recs : window list;  (** newest first; at most [cap] kept *)
  mutable kept : int;
  mutable dropped : int;
  (* Running aggregates — never capped. *)
  mutable windows : int;
  mutable pooled_windows : int;
  mutable events : int;
  mutable crit_events : int;  (** sum over windows of max per-shard events *)
  mutable merged : int;
  mutable nulls : int;
  mutable wall_ns : int;
  mutable barrier_ns : int;  (** window wall not covered by shard work *)
  shard_events : int array;
  shard_busy : int array;
  shard_wall_ns : int array;
  limited_by : int array;  (** busy-shard windows bounded by shard [j] *)
  mutable limited_until : int;
  mutable limited_unbounded : int;
  imbalance : Stats.Histogram.t;
      (** per-window max/mean events over busy shards, in percent
          (100 = perfectly balanced); windows with >= 2 busy shards *)
}

let default_cap = 4096
let now () = Int64.to_int (Mono.now_ns ())

let make ?(cap = default_cap) ~shards () =
  if shards < 1 then invalid_arg "Telemetry.make: shards < 1";
  {
    shards;
    cap;
    epoch = now ();
    recs = [];
    kept = 0;
    dropped = 0;
    windows = 0;
    pooled_windows = 0;
    events = 0;
    crit_events = 0;
    merged = 0;
    nulls = 0;
    wall_ns = 0;
    barrier_ns = 0;
    shard_events = Array.make shards 0;
    shard_busy = Array.make shards 0;
    shard_wall_ns = Array.make shards 0;
    limited_by = Array.make shards 0;
    limited_until = 0;
    limited_unbounded = 0;
    imbalance = Stats.Histogram.create ();
  }

let shards t = t.shards
let windows t = t.windows
let pooled_windows t = t.pooled_windows
let events t = t.events
let crit_events t = t.crit_events
let merged t = t.merged
let nulls t = t.nulls
let wall_ns t = t.wall_ns
let barrier_ns t = t.barrier_ns
let dropped_windows t = t.dropped
let shard_events t = Array.copy t.shard_events
let shard_busy t = Array.copy t.shard_busy
let shard_wall_ns t = Array.copy t.shard_wall_ns
let imbalance t = t.imbalance

let limiter_counts t =
  let tbl = Array.to_list (Array.mapi (fun j c -> (j, c)) t.limited_by) in
  List.filter (fun (_, c) -> c > 0) tbl
  @ (if t.limited_until > 0 then [ (limiter_until, t.limited_until) ] else [])
  @
  if t.limited_unbounded > 0 then [ (limiter_unbounded, t.limited_unbounded) ]
  else []

let recent t = List.rev t.recs

(* Work / critical path: with K shards, a window can finish no faster
   than its busiest shard, so total work over the sum of per-window
   maxima bounds any parallel speedup from this window structure. *)
let speedup_bound t =
  if t.crit_events <= 0 then 1.0
  else float_of_int t.events /. float_of_int t.crit_events

(* {1 Window construction} — called from Shard.run_window. *)

let begin_window t ~seq ~nulls =
  {
    w_seq = seq;
    w_events = Array.make t.shards 0;
    w_bounds = Array.make t.shards max_int;
    w_limiters = Array.make t.shards limiter_idle;
    w_t0 = Array.make t.shards 0;
    w_t1 = Array.make t.shards 0;
    w_wall0 = Array.make t.shards 0;
    w_wall = Array.make t.shards 0;
    w_busy = 0;
    w_nulls = nulls;
    w_merged = 0;
    w_pooled = false;
    w_start = now ();
    w_wall_total = 0;
  }

(* Coordinating domain, before dispatch: mark shard [i] busy with its
   bound and the shard (or clamp) that produced it. *)
let set_bound w i ~bound ~limiter =
  w.w_bounds.(i) <- bound;
  w.w_limiters.(i) <- limiter

(* Worker-domain safe: shard [i]'s slots are written by exactly one task
   and read only after the pool barrier ([Par.await] gives the
   happens-before edge). *)
let shard_begin w i ~sim_now =
  w.w_t0.(i) <- sim_now;
  w.w_wall0.(i) <- now ()

let shard_end w i ~sim_now ~events =
  w.w_t1.(i) <- sim_now;
  w.w_events.(i) <- events;
  w.w_wall.(i) <- now () - w.w_wall0.(i)

let commit t w ~pooled ~merged =
  w.w_pooled <- pooled;
  w.w_merged <- merged;
  w.w_wall_total <- now () - w.w_start;
  let busy = ref 0 and ev_tot = ref 0 and ev_max = ref 0 and wall_busy = ref 0
  and wall_max = ref 0 in
  for i = 0 to t.shards - 1 do
    if w.w_limiters.(i) <> limiter_idle then begin
      incr busy;
      ev_tot := !ev_tot + w.w_events.(i);
      if w.w_events.(i) > !ev_max then ev_max := w.w_events.(i);
      wall_busy := !wall_busy + w.w_wall.(i);
      if w.w_wall.(i) > !wall_max then wall_max := w.w_wall.(i);
      t.shard_events.(i) <- t.shard_events.(i) + w.w_events.(i);
      t.shard_busy.(i) <- t.shard_busy.(i) + 1;
      t.shard_wall_ns.(i) <- t.shard_wall_ns.(i) + w.w_wall.(i);
      let l = w.w_limiters.(i) in
      if l >= 0 then t.limited_by.(l) <- t.limited_by.(l) + 1
      else if l = limiter_until then t.limited_until <- t.limited_until + 1
      else t.limited_unbounded <- t.limited_unbounded + 1
    end
  done;
  w.w_busy <- !busy;
  t.windows <- t.windows + 1;
  if pooled then t.pooled_windows <- t.pooled_windows + 1;
  t.events <- t.events + !ev_tot;
  t.crit_events <- t.crit_events + !ev_max;
  t.merged <- t.merged + merged;
  t.nulls <- t.nulls + w.w_nulls;
  t.wall_ns <- t.wall_ns + w.w_wall_total;
  (* Wall not covered by shard work: under pool dispatch shards overlap,
     so the max covers them; inline they serialize, so the sum does.
     What remains is barrier sync + merge + dispatch overhead. *)
  let covered = if pooled then !wall_max else !wall_busy in
  t.barrier_ns <- t.barrier_ns + max 0 (w.w_wall_total - covered);
  if !busy >= 2 && !ev_tot > 0 then
    Stats.Histogram.add t.imbalance
      (100. *. float_of_int (!ev_max * !busy) /. float_of_int !ev_tot);
  if t.kept < t.cap then begin
    t.recs <- w :: t.recs;
    t.kept <- t.kept + 1
  end
  else t.dropped <- t.dropped + 1

(* {1 Merging} *)

let merge ~into b =
  if into.shards <> b.shards then invalid_arg "Telemetry.merge: shard counts";
  into.windows <- into.windows + b.windows;
  into.pooled_windows <- into.pooled_windows + b.pooled_windows;
  into.events <- into.events + b.events;
  into.crit_events <- into.crit_events + b.crit_events;
  into.merged <- into.merged + b.merged;
  into.nulls <- into.nulls + b.nulls;
  into.wall_ns <- into.wall_ns + b.wall_ns;
  into.barrier_ns <- into.barrier_ns + b.barrier_ns;
  for i = 0 to into.shards - 1 do
    into.shard_events.(i) <- into.shard_events.(i) + b.shard_events.(i);
    into.shard_busy.(i) <- into.shard_busy.(i) + b.shard_busy.(i);
    into.shard_wall_ns.(i) <- into.shard_wall_ns.(i) + b.shard_wall_ns.(i);
    into.limited_by.(i) <- into.limited_by.(i) + b.limited_by.(i)
  done;
  into.limited_until <- into.limited_until + b.limited_until;
  into.limited_unbounded <- into.limited_unbounded + b.limited_unbounded;
  Stats.Histogram.merge ~into:into.imbalance b.imbalance;
  List.iter
    (fun w ->
      if into.kept < into.cap then begin
        into.recs <- w :: into.recs;
        into.kept <- into.kept + 1
      end
      else into.dropped <- into.dropped + 1)
    (List.rev b.recs);
  into.dropped <- into.dropped + b.dropped

let merge_groups ts =
  let out = ref [] in
  List.iter
    (fun b ->
      match List.find_opt (fun m -> m.shards = b.shards) !out with
      | Some m -> merge ~into:m b
      | None ->
          let m = make ~cap:b.cap ~shards:b.shards () in
          merge ~into:m b;
          out := !out @ [ m ])
    ts;
  !out

(* {1 Report} *)

let pct num den = if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let pp ppf t =
  let open Format in
  fprintf ppf "== shard telemetry (K=%d) ==@." t.shards;
  fprintf ppf "windows              : %d  (pooled %d, %.1f%%)@." t.windows
    t.pooled_windows (pct t.pooled_windows t.windows);
  fprintf ppf "events               : %d@." t.events;
  fprintf ppf "cross-shard merged   : %d msgs   null advertisements: %d@."
    t.merged t.nulls;
  fprintf ppf "wall                 : %.6f s  (barrier/merge %.6f s, %.1f%%)@."
    (float_of_int t.wall_ns /. 1e9)
    (float_of_int t.barrier_ns /. 1e9)
    (pct t.barrier_ns t.wall_ns);
  if t.dropped > 0 then
    fprintf ppf "window records       : %d kept, %d dropped (cap %d; aggregates above are complete)@."
      t.kept t.dropped t.cap;
  fprintf ppf "@.per-shard:@.";
  fprintf ppf "  %-6s %-10s %-10s %-8s %-10s@." "shard" "busy-wins" "events"
    "share" "wall(s)";
  for i = 0 to t.shards - 1 do
    fprintf ppf "  %-6d %-10d %-10d %-8s %-10.6f@." i t.shard_busy.(i)
      t.shard_events.(i)
      (Printf.sprintf "%.1f%%" (pct t.shard_events.(i) t.events))
      (float_of_int t.shard_wall_ns.(i) /. 1e9)
  done;
  let imb = t.imbalance in
  if Stats.Histogram.count imb > 0 then
    fprintf ppf
      "  imbalance (per-window max/mean, busy>=2): mean %.2fx  p50 %.2fx  \
       p90 %.2fx  p99 %.2fx@."
      (Stats.Histogram.mean imb /. 100.)
      (Stats.Histogram.percentile imb 50. /. 100.)
      (Stats.Histogram.percentile imb 90. /. 100.)
      (Stats.Histogram.percentile imb 99. /. 100.)
  else fprintf ppf "  imbalance: no windows with >= 2 busy shards@.";
  fprintf ppf "@.limiter attribution (what bounded each busy shard's window):@.";
  let total_busy = Array.fold_left ( + ) 0 t.shard_busy in
  fprintf ppf "  %-10s %-8s %s@." "limiter" "count" "share";
  List.iter
    (fun (l, c) ->
      fprintf ppf "  %-10s %-8d %.1f%%@." (limiter_name l) c (pct c total_busy))
    (limiter_counts t);
  fprintf ppf
    "@.critical path: %d events -> speedup bound %.2fx over %d shards@."
    t.crit_events (speedup_bound t) t.shards;
  fprintf ppf "  (total work / sum of per-window max shard work)@."

let pp_groups ppf ts =
  match merge_groups ts with
  | [] ->
      Format.fprintf ppf
        "== shard telemetry ==@.no sharded groups ran (telemetry covers \
         multi-shard groups only)@."
  | groups -> List.iter (fun g -> pp ppf g) groups

(* {1 Chrome lanes}

   One pid per shard, window spans on each busy shard's lane, plus a
   window + barrier span on the global lane.  Timestamps are wall-clock
   nanoseconds since the group's epoch, scaled so the viewer's
   microsecond axis reads real wall microseconds (the exporter divides
   "ps" by 1e6; ns * 1000 / 1e6 = us).  Install/uninstall of the private
   sink resets run-local allocators, so export only between runs. *)

let to_sink t =
  let cap = max 16 ((t.kept * (t.shards + 2)) + 16) in
  let s = Trace.make ~max_events:cap () in
  let ts_of ns = max 0 (ns - t.epoch) * 1000 in
  Trace.with_sink s (fun () ->
      List.iter
        (fun w ->
          let wts = ts_of w.w_start in
          Trace.complete ~cat:"par" ~name:"window" ~ts:wts
            ~dur:(w.w_wall_total * 1000)
            ~args:
              [
                ("seq", Trace.I w.w_seq);
                ("busy", Trace.I w.w_busy);
                ("merged", Trace.I w.w_merged);
                ("nulls", Trace.I w.w_nulls);
                ("dispatch", Trace.S (if w.w_pooled then "pool" else "inline"));
              ]
            ();
          let last_end = ref 0 in
          for i = 0 to t.shards - 1 do
            if w.w_limiters.(i) <> limiter_idle then begin
              let e = ts_of w.w_wall0.(i) + (w.w_wall.(i) * 1000) in
              if e > !last_end then last_end := e;
              Trace.complete ~cat:"par" ~name:"shard" ~tile:i ~act:0
                ~ts:(ts_of w.w_wall0.(i))
                ~dur:(w.w_wall.(i) * 1000)
                ~args:
                  [
                    ("events", Trace.I w.w_events.(i));
                    ("sim_t0", Trace.I w.w_t0.(i));
                    ("sim_t1", Trace.I w.w_t1.(i));
                    ( "bound",
                      if w.w_bounds.(i) = max_int then Trace.S "inf"
                      else Trace.I w.w_bounds.(i) );
                    ("limiter", Trace.S (limiter_name w.w_limiters.(i)));
                  ]
                ()
            end
          done;
          let wend = wts + (w.w_wall_total * 1000) in
          if wend > !last_end && w.w_busy > 0 then
            Trace.instant ~cat:"par" ~name:"barrier" ~ts:!last_end
              ~args:[ ("gap_ns", Trace.I ((wend - !last_end) / 1000)) ]
              ())
        (recent t));
  s

let write_chrome path t = Chrome.write_file path (to_sink t)

(* {1 Collector} — process-global, explicitly outside any [t] so groups
   stay marshal-safe.  [register] may run on worker domains (experiment
   steps build Systems inside pool tasks), hence the mutex. *)

let collecting_flag = Atomic.make false
let collect_cap = Atomic.make default_cap
let reg_lock = Mutex.create ()
let registry : t list ref = ref []

let collecting () = Atomic.get collecting_flag

let register tm =
  Mutex.lock reg_lock;
  registry := tm :: !registry;
  Mutex.unlock reg_lock

let start_collecting ?(cap = default_cap) () =
  Mutex.lock reg_lock;
  registry := [];
  Mutex.unlock reg_lock;
  Atomic.set collect_cap cap;
  Atomic.set collecting_flag true

let stop_collecting () =
  Atomic.set collecting_flag false;
  Mutex.lock reg_lock;
  let out = List.rev !registry in
  registry := [];
  Mutex.unlock reg_lock;
  out

let collector_cap () = Atomic.get collect_cap
