(** Parallel execution layer: a fixed-size Domain worker pool with a task
    queue and futures.

    Experiments fan their *independent* units of work — per-figure runs,
    per-tile-count points, per-seed soak iterations — through a {!Pool.t}
    and merge the results in task-submission order, so parallel output is
    byte-identical to sequential output.

    Determinism contract: tasks must be independent (each owns its
    Engine/Rng/Platform; no shared mutable state), must not print to
    stdout, and results are always collected in submission order.  Use
    {!progress} for human-readable liveness lines: they go to stderr
    through a single writer so concurrent Domains cannot interleave
    characters within a line.

    A pool of size 1 (or {!Pool.sequential}) degenerates to immediate
    inline execution on the calling domain — no Domains are spawned and
    submission order is execution order, which is the reference behaviour
    the parallel mode must reproduce byte for byte. *)

module Pool : sig
  type t

  (** [create ~jobs ()] starts [jobs - 1] worker domains (the submitting
      domain is the remaining worker: it helps while awaiting).  [jobs]
      defaults to {!default_jobs}; values [<= 1] create a sequential
      pool. *)
  val create : ?jobs:int -> unit -> t

  (** A pool that runs every task inline at submission.  Never needs
      {!shutdown}. *)
  val sequential : t

  (** Worker count the pool was sized for (>= 1). *)
  val jobs : t -> int

  (** Stop the workers.  Idempotent; pending tasks are finished first. *)
  val shutdown : t -> unit

  (** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on
      return or exception. *)
  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
end

type 'a future

(** [submit pool f] enqueues [f].  On a sequential pool, [f] runs
    immediately on the calling domain.  Exceptions raised by [f] are
    captured and re-raised (with their backtrace) by {!await}.

    When a metrics registry is installed (see [M3v_obs.Metrics]), [f]
    records into a private per-task shard regardless of which domain runs
    it, and the shard is folded back into the submitter's registry at
    {!await} — in await (= submission) order — so parallel metrics output
    is byte-identical to a sequential run's. *)
val submit : Pool.t -> (unit -> 'a) -> 'a future

(** Wait for a future.  While waiting, the calling domain executes other
    queued tasks of the same pool ("helping"), so nested fan-out —
    a task that itself submits and awaits subtasks — cannot deadlock a
    fixed-size pool.  Helping is suppressed while the calling domain has
    a trace sink or fault plan installed, because a foreign task running
    under them would corrupt both runs. *)
val await : 'a future -> 'a

(** [map pool f xs] submits [f x] for every element and awaits the
    results in list (= submission) order. *)
val map : Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** [all pool fs] runs the thunks and returns their results in list
    order. *)
val all : Pool.t -> (unit -> 'a) list -> 'a list

(** Default worker count: [M3V_JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [progress line] prints [line ^ "\n"] to stderr atomically (single
    mutex-protected writer), flushing immediately.  Safe to call from any
    domain; the only cross-domain output channel tasks may use. *)
val progress : string -> unit
