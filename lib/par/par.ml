(* Fixed-size Domain worker pool with futures and helping await.

   Determinism comes from the call sites, not from here: tasks are
   independent (each owns its Engine/Rng/Platform) and results are merged
   in submission order by [map]/[all].  The pool only decides *where* a
   task runs, never in what order results are observed.

   Liveness argument for the helping await: a future is only Pending
   while its task is either still in the pool queue (in which case any
   awaiter, including the one that needs it, can pop and run it) or
   already running on some domain (which will complete it, recursively
   helping through any nested awaits).  So an await chain always bottoms
   out in a runnable or running task and a fixed-size pool cannot
   deadlock on nested fan-out. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type pool = {
  queue : (unit -> unit) Queue.t; (* protected by [qm] *)
  qm : Mutex.t;
  qcv : Condition.t; (* signalled on push and on shutdown *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  njobs : int;
}

type impl = Seq | Par of pool

module Pool = struct
  type t = impl

  let sequential = Seq
  let jobs = function Seq -> 1 | Par p -> p.njobs

  let default_jobs () =
    match Sys.getenv_opt "M3V_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()

  let rec worker_loop p =
    Mutex.lock p.qm;
    let rec next () =
      if not (Queue.is_empty p.queue) then begin
        let task = Queue.pop p.queue in
        Mutex.unlock p.qm;
        task ();
        worker_loop p
      end
      else if p.closed then Mutex.unlock p.qm
      else begin
        Condition.wait p.qcv p.qm;
        next ()
      end
    in
    next ()

  let create ?jobs:(n = default_jobs ()) () =
    if n <= 1 then Seq
    else begin
      let p =
        {
          queue = Queue.create ();
          qm = Mutex.create ();
          qcv = Condition.create ();
          closed = false;
          workers = [];
          njobs = n;
        }
      in
      (* The submitting domain is the n-th worker: it helps in [await]. *)
      p.workers <-
        List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p));
      Par p
    end

  let shutdown = function
    | Seq -> ()
    | Par p ->
        Mutex.lock p.qm;
        p.closed <- true;
        Condition.broadcast p.qcv;
        Mutex.unlock p.qm;
        let ws = p.workers in
        p.workers <- [];
        List.iter Domain.join ws

  let with_pool ?jobs f =
    let p = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
end

let default_jobs = Pool.default_jobs

type 'a future = {
  state : 'a state Atomic.t;
  fm : Mutex.t;
  fcv : Condition.t;
  home : pool option; (* where to steal work from while awaiting *)
  merge : (unit -> unit) option Atomic.t;
      (* folds the task's metrics shard into the submitter's registry;
         run exactly once, at [await], so shards merge in await (=
         submission) order and parallel metrics are byte-identical to
         sequential ones *)
}

let completed_future ?merge st =
  {
    state = Atomic.make st;
    fm = Mutex.create ();
    fcv = Condition.create ();
    home = None;
    merge = Atomic.make merge;
  }

let run_to_state f =
  try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())

let submit pool f =
  (* With metrics on, the task records into a private shard no matter
     which domain runs it (workers, or the submitter when helping). *)
  let f, merge =
    match M3v_obs.Metrics.shard_task f with
    | None -> (f, None)
    | Some (wrapped, m) -> (wrapped, Some m)
  in
  match pool with
  | Seq -> completed_future ?merge (run_to_state f)
  | Par p ->
      let fut =
        {
          state = Atomic.make Pending;
          fm = Mutex.create ();
          fcv = Condition.create ();
          home = Some p;
          merge = Atomic.make merge;
        }
      in
      let task () =
        let st = run_to_state f in
        Atomic.set fut.state st;
        (* Lock-broadcast after the set so an awaiter that saw Pending
           under [fm] is guaranteed to be woken. *)
        Mutex.lock fut.fm;
        Condition.broadcast fut.fcv;
        Mutex.unlock fut.fm
      in
      Mutex.lock p.qm;
      if p.closed then begin
        Mutex.unlock p.qm;
        invalid_arg "Par.submit: pool is shut down"
      end;
      Queue.push task p.queue;
      Condition.signal p.qcv;
      Mutex.unlock p.qm;
      fut

(* Helping is suppressed while this domain runs under an installed trace
   sink or fault plan: executing a foreign task in that ambient state
   would feed its events into the wrong trace / fault RNG. *)
let may_help () = not (M3v_obs.Trace.on () || M3v_fault.Fault.on ())

let try_steal p =
  Mutex.lock p.qm;
  let t = if Queue.is_empty p.queue then None else Some (Queue.pop p.queue) in
  Mutex.unlock p.qm;
  t

(* Run the future's metrics-shard merge exactly once.  Only called after
   the state left Pending, so the shard is quiescent; the atomic exchange
   makes a second await a no-op. *)
let finalize fut =
  match Atomic.exchange fut.merge None with
  | Some m -> m ()
  | None -> ()

let rec await fut =
  match Atomic.get fut.state with
  | Done v ->
      finalize fut;
      v
  | Failed (e, bt) ->
      finalize fut;
      Printexc.raise_with_backtrace e bt
  | Pending -> (
      match fut.home with
      | Some p when may_help () -> (
          match try_steal p with
          | Some task ->
              task ();
              await fut
          | None -> block_then_await fut)
      | _ -> block_then_await fut)

and block_then_await fut =
  Mutex.lock fut.fm;
  (match Atomic.get fut.state with
  | Pending -> Condition.wait fut.fcv fut.fm
  | Done _ | Failed _ -> ());
  Mutex.unlock fut.fm;
  await fut

let all pool fs = List.map (submit pool) fs |> List.map await
let map pool f xs = List.map (fun x -> submit pool (fun () -> f x)) xs |> List.map await

let progress_mutex = Mutex.create ()

let progress line =
  Mutex.lock progress_mutex;
  prerr_string line;
  prerr_newline ();
  flush stderr;
  Mutex.unlock progress_mutex
