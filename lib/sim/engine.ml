(* The event queue stores each event as an untyped (handler, argument)
   pair in the two payload slots of [Event_queue.t2]:

     - [at]/[after] store the shared [run_thunk] handler and the thunk
       itself as the argument — no wrapper allocation;
     - [at_apply]/[after_apply] store the user's ['a -> unit] continuation
       (coerced to [Obj.t -> unit]) and its ['a] argument — the dominant
       DTU-completion pattern [fun () -> k result] costs no closure.

   The [Obj] coercions never escape this module: [push] always pairs a
   handler with an argument of the type it was declared against, so the
   application in [run] is well-typed by construction. *)

type handler = Obj.t -> unit

type t = {
  mutable now : Time.t;
  queue : (handler, Obj.t) Event_queue.t2;
  mutable processed : int;
  mutable observer : (Time.t -> int -> unit) option;
}

(* How often the dispatch-loop observer fires, in processed events.  A
   power of two so the check in the hot loop is a single mask. *)
let observer_interval = 1024

let create () =
  {
    now = Time.zero;
    queue = Event_queue.create2 ~capacity:1024 ();
    processed = 0;
    observer = None;
  }

let now t = t.now
let set_observer t obs = t.observer <- obs

let run_thunk : handler = fun f -> (Obj.obj f : unit -> unit) ()

let check_future t time =
  if time < t.now then
    invalid_arg
      (Format.asprintf "Engine.at: time %a is in the past (now %a)" Time.pp time
         Time.pp t.now)

let at t ~time f =
  check_future t time;
  Event_queue.push2 t.queue ~time run_thunk (Obj.repr f)

let after t ~delay f =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  Event_queue.push2 t.queue ~time:(Time.add t.now delay) run_thunk (Obj.repr f)

let at_apply (type a) t ~time (k : a -> unit) (x : a) =
  check_future t time;
  Event_queue.push2 t.queue ~time (Obj.magic k : handler) (Obj.repr x)

let after_apply (type a) t ~delay (k : a -> unit) (x : a) =
  if delay < 0 then invalid_arg "Engine.after_apply: negative delay";
  Event_queue.push2 t.queue ~time:(Time.add t.now delay)
    (Obj.magic k : handler)
    (Obj.repr x)

let run ?until ?max_events t =
  (* Single-source bookkeeping: the per-call count is the delta of the
     lifetime [processed] counter, not a second counter incremented in
     parallel.  A handler or observer that enqueues more work during the
     call — including at exactly [until], which this same call then
     processes — cannot make the return value and [events_processed]
     disagree, and a reentrant [run] from a handler is charged to the
     outer call's budget exactly once. *)
  let start = t.processed in
  let budget = match max_events with None -> max_int | Some m -> max 0 m in
  let in_horizon time =
    match until with None -> true | Some u -> time <= u
  in
  let q = t.queue in
  let rec loop () =
    if t.processed - start < budget && not (Event_queue.is_empty q) then begin
      let time = Event_queue.next_time q in
      if in_horizon time then begin
        let fn = Event_queue.top_fst q and arg = Event_queue.top_snd q in
        Event_queue.drop_min q;
        t.now <- time;
        fn arg;
        t.processed <- t.processed + 1;
        (match t.observer with
        | Some obs when t.processed land (observer_interval - 1) = 0 ->
            obs t.now (Event_queue.length q)
        | Some _ | None -> ());
        loop ()
      end
    end
  in
  loop ();
  (* Advance the clock to the horizon only when every remaining event lies
     beyond it.  In particular, when [max_events] stops the loop with
     events still pending before [until] — e.g. one an observer enqueued
     at exactly [until] after the budget ran out — the clock must stay at
     the last processed event: jumping to the horizon would date those
     events in the past. *)
  (match until with
  | Some u
    when u > t.now && (Event_queue.is_empty q || Event_queue.next_time q > u)
    ->
      t.now <- u
  | _ -> ());
  t.processed - start

let events_processed t = t.processed
let pending t = Event_queue.length t.queue
let next_event_time t = Event_queue.peek_time t.queue
let pending_below t ~time = Event_queue.occupancy_below t.queue ~time

let reset t =
  t.now <- Time.zero;
  Event_queue.clear t.queue
