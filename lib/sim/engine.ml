type t = {
  mutable now : Time.t;
  queue : (unit -> unit) Event_queue.t;
  mutable processed : int;
  mutable observer : (Time.t -> int -> unit) option;
}

(* How often the dispatch-loop observer fires, in processed events.  A
   power of two so the check in the hot loop is a single mask. *)
let observer_interval = 1024

let create () =
  { now = Time.zero; queue = Event_queue.create (); processed = 0; observer = None }

let now t = t.now
let set_observer t obs = t.observer <- obs

let at t ~time f =
  if time < t.now then
    invalid_arg
      (Format.asprintf "Engine.at: time %a is in the past (now %a)" Time.pp time
         Time.pp t.now);
  Event_queue.push t.queue ~time f

let after t ~delay f =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  Event_queue.push t.queue ~time:(Time.add t.now delay) f

let run ?until ?max_events t =
  let count = ref 0 in
  let continue () =
    match max_events with None -> true | Some m -> !count < m
  in
  let in_horizon time =
    match until with None -> true | Some u -> time <= u
  in
  let rec loop () =
    if continue () then
      match Event_queue.peek_time t.queue with
      | Some time when in_horizon time ->
          (match Event_queue.pop t.queue with
          | Some (time, f) ->
              t.now <- time;
              f ();
              incr count;
              t.processed <- t.processed + 1;
              (match t.observer with
              | Some obs when t.processed land (observer_interval - 1) = 0 ->
                  obs t.now (Event_queue.length t.queue)
              | Some _ | None -> ());
              loop ()
          | None -> ())
      | Some _ | None -> (
          (* Advance the clock to the horizon even when nothing ran. *)
          match until with Some u when u > t.now -> t.now <- u | _ -> ())
  in
  loop ();
  !count

let events_processed t = t.processed
let pending t = Event_queue.length t.queue

let reset t =
  t.now <- Time.zero;
  Event_queue.clear t.queue
