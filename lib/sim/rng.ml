type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  { state = seed }

(* Draws are masked to 61 bits: non-negative after Int64 -> int
   conversion, and the range 2^61 itself still fits in an OCaml int so
   the cutoff arithmetic below cannot overflow. *)
let draw_range = 0x2000_0000_0000_0000 (* 2^61 *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: a bare [v mod bound] over-weights small residues
     whenever [bound] does not divide the draw range.  Redraw any value at
     or above the largest multiple of [bound] that fits; at most one extra
     draw is needed in expectation for any bound. *)
  let cutoff = draw_range - (draw_range mod bound) in
  let rec loop () =
    let v = Int64.to_int (Int64.logand (next t) 0x1FFF_FFFF_FFFF_FFFFL) in
    if v >= cutoff then loop () else v mod bound
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
