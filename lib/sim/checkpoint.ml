(* Whole-simulator checkpoints are just the object graph rooted at a
   user-chosen state record, marshalled with closures.  Everything the
   engine schedules is a closure over the very components being saved, so
   capturing the root captures the event heap, every DTU/kernel/runtime
   record and all in-flight continuations in one traversal — no per-module
   serializers to keep in sync.

   The price is binary coupling: OCaml closures marshal as code pointers
   plus an MD5 digest of the code area, so a checkpoint is only readable
   by the executable that wrote it.  [load] turns the digest mismatch into
   an [Error] instead of an exception.  Domain-local state (the fault
   plan, trace sinks, the message uid counter) is NOT reachable from the
   heap graph — callers must put what they need into the state record
   explicitly and reinstall it on restore.

   One more thing Marshal gets wrong for us: extension constructors
   (every [type Msg.data += ...] payload, every exception value) are
   matched by physical identity of their constructor slot, and
   [Marshal.from_channel] rebuilds a fresh copy of each slot.  An
   in-flight message saved in a checkpoint would therefore stop matching
   its own constructor after restore and silently fall into wildcard
   branches — the simulation keeps running but takes different paths, so
   resume is no longer byte-identical.  [load] fixes this by re-interning:
   it walks the loaded graph and replaces every constructor-slot copy with
   the canonical slot of this process, looked up by the constructor's
   fully-qualified name in a registry that defining modules populate at
   init time ({!register_exts}).  An unregistered constructor in the graph
   is an [Error], not a silent divergence. *)

let magic = "M3VCKPT1"

(* --- extension-constructor registry --- *)

let ext_registry : (string, Obj.t) Hashtbl.t = Hashtbl.create 64

let register_exts ecs =
  List.iter
    (fun ec ->
      let name = Obj.Extension_constructor.name ec in
      match Hashtbl.find_opt ext_registry name with
      | Some existing when existing != Obj.repr ec ->
          invalid_arg
            ("Checkpoint.register_exts: two distinct constructors named "
           ^ name)
      | _ -> Hashtbl.replace ext_registry name (Obj.repr ec))
    ecs

(* The predefined and stdlib exceptions a checkpointed graph could
   plausibly hold (e.g. a stored [exn] in a result or a finaliser). *)
let () =
  register_exts
    [
      [%extension_constructor Out_of_memory];
      [%extension_constructor Sys_error];
      [%extension_constructor Failure];
      [%extension_constructor Invalid_argument];
      [%extension_constructor End_of_file];
      [%extension_constructor Division_by_zero];
      [%extension_constructor Not_found];
      [%extension_constructor Match_failure];
      [%extension_constructor Stack_overflow];
      [%extension_constructor Sys_blocked_io];
      [%extension_constructor Assert_failure];
      [%extension_constructor Undefined_recursive_module];
      [%extension_constructor Exit];
      [%extension_constructor Fun.Finally_raised];
    ]

(* --- re-interning traversal ---

   A depth-first walk over the loaded graph with [Obj], rewriting every
   field that holds an extension-constructor slot (an [object_tag] block
   of size 2 whose first field is the name string — real objects carry a
   method-table block there, so the shapes cannot be confused).  Closure
   blocks are scanned from their environment start (parsed out of the
   closinfo word, exactly as the GC does) so code pointers are never
   touched; infix pointers are normalised to their enclosing block.

   The visited set hashes blocks by address, so the graph must not move
   mid-walk: [load] promotes it to the major heap with a full collection
   first and disables heap compaction for the duration.  The walk's own
   fresh allocations are free to move — only the keys must stay put. *)

(* A block's identity during the walk is its address shifted to a
   well-formed OCaml int (blocks are word-aligned, so no two block starts
   collide).  The walk holds the GC still — graph promoted to the major
   heap, compaction off — so the key is stable. *)
let addr_key (o : Obj.t) : int = (Obj.magic o : int) asr 2

(* closinfo (field 1 of a closure) as an OCaml int: arity in the top 8
   bits, start-of-environment below. *)
let startenv_mask = (1 lsl (Sys.int_size - 8)) - 1
let word_bytes = Sys.word_size / 8

let repair_exts (root : Obj.t) : string list =
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 65536 in
  let stack = Stack.create () in
  let missing = Hashtbl.create 8 in
  let is_ext_slot o =
    Obj.tag o = Obj.object_tag
    && Obj.size o = 2
    &&
    let f0 = Obj.field o 0 in
    (not (Obj.is_int f0)) && Obj.tag f0 = Obj.string_tag
  in
  let push o =
    if not (Obj.is_int o) then begin
      let o =
        if Obj.tag o = Obj.infix_tag then
          Obj.add_offset o (Int32.of_int (-word_bytes * Obj.size o))
        else o
      in
      if Obj.tag o < Obj.no_scan_tag && not (Hashtbl.mem visited (addr_key o))
      then begin
        Hashtbl.replace visited (addr_key o) ();
        Stack.push o stack
      end
    end
  in
  push root;
  while not (Stack.is_empty stack) do
    let b = Stack.pop stack in
    let start =
      if Obj.tag b = Obj.closure_tag then
        (Obj.obj (Obj.field b 1) : int) land startenv_mask
      else 0
    in
    for i = start to Obj.size b - 1 do
      let f = Obj.field b i in
      if not (Obj.is_int f) then
        if is_ext_slot f then begin
          let name : string = Obj.obj (Obj.field f 0) in
          match Hashtbl.find_opt ext_registry name with
          | Some canonical -> if canonical != f then Obj.set_field b i canonical
          | None -> Hashtbl.replace missing name ()
        end
        else push f
    done
  done;
  Hashtbl.fold (fun name () acc -> name :: acc) missing []
  |> List.sort String.compare

let with_compaction_disabled f =
  let g = Gc.get () in
  Gc.set { g with Gc.max_overhead = 1_000_000 };
  Fun.protect ~finally:(fun () -> Gc.set g) f

let re_intern v =
  Gc.full_major ();
  match with_compaction_disabled (fun () -> repair_exts (Obj.repr v)) with
  | [] -> Ok v
  | missing ->
      Error
        ("checkpoint holds unregistered extension constructors: "
        ^ String.concat ", " missing
        ^ "; their defining module must call Checkpoint.register_exts")

(* --- file codec --- *)

let save ~path v =
  (* Write-then-rename so an interrupted save never clobbers the previous
     good checkpoint with a truncated file. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc v [ Marshal.Closures ]);
  Sys.rename tmp path

let load ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | exception End_of_file ->
              Error (path ^ ": truncated checkpoint header")
          | got when got <> magic ->
              Error (path ^ ": not an M3v checkpoint (bad magic)")
          | _ -> (
              match Marshal.from_channel ic with
              | v -> re_intern v
              | exception End_of_file -> Error (path ^ ": truncated checkpoint")
              | exception Failure msg ->
                  (* Typically "input_value: code mismatch": the file was
                     written by a different build of the binary. *)
                  Error
                    (path ^ ": unreadable checkpoint (" ^ msg
                   ^ "); checkpoints are only valid for the binary that \
                      wrote them")))
