(** The discrete-event simulation engine.

    The engine owns the global clock and a queue of timestamped callbacks.
    Everything in the simulated platform (cores, DTUs, NoC links, DRAM)
    advances by scheduling callbacks here.  The engine is strictly
    single-threaded and deterministic. *)

type t

val create : unit -> t

(** Current simulated time. *)
val now : t -> Time.t

(** [at eng ~time f] schedules [f] to run at absolute [time]
    (>= [now eng]). *)
val at : t -> time:Time.t -> (unit -> unit) -> unit

(** [after eng ~delay f] schedules [f] to run [delay] after [now]. *)
val after : t -> delay:Time.t -> (unit -> unit) -> unit

(** [at_apply eng ~time k x] schedules [k x] at absolute [time] without
    allocating a wrapper closure — the non-allocating fast path for the
    dominant completion-delivery events ([fun () -> k result]). *)
val at_apply : t -> time:Time.t -> ('a -> unit) -> 'a -> unit

(** [after_apply eng ~delay k x] schedules [k x] to run [delay] after
    [now]; see {!at_apply}. *)
val after_apply : t -> delay:Time.t -> ('a -> unit) -> 'a -> unit

(** Run until the event queue drains or [until] is reached.  Returns the
    number of events processed, defined as the delta of
    {!events_processed} over the call — a single source of truth, so work
    enqueued mid-call (e.g. by an observer at exactly [until]) is counted
    exactly once whether this call or a later one processes it.

    The clock advances to [until] only when no pending event remains at or
    before it — if [max_events] stops the loop with such events pending,
    [now] stays at the last processed event. *)
val run : ?until:Time.t -> ?max_events:int -> t -> int

(** Number of events processed so far over the engine's lifetime. *)
val events_processed : t -> int

(** Number of events still pending. *)
val pending : t -> int

(** Timestamp of the earliest pending event ([None] when drained) — a
    shard's horizon advertisement for conservative synchronization. *)
val next_event_time : t -> Time.t option

(** Pending events with timestamp [<= time]: the work available inside a
    synchronization window (see {!Event_queue.occupancy_below}). *)
val pending_below : t -> time:Time.t -> int

(** Reset the clock to zero and drop pending events. *)
val reset : t -> unit

(** [set_observer t (Some f)] installs a dispatch-loop observer: [f now
    pending] is invoked every 1024 processed events.  The tracing layer uses
    it to sample queue depth without touching the hot loop when disabled
    ([None], the default). *)
val set_observer : t -> (Time.t -> int -> unit) option -> unit
