type op = ..
type resp = ..
type resp += Unit | Error of string

let () =
  Checkpoint.register_exts
    [ [%extension_constructor Unit]; [%extension_constructor Error] ]

type action = Finished | Request of op * (resp -> action)
type 'a t = ('a -> action) -> action

let return x k = k x
let bind m f k = m (fun x -> f x k)
let map f m k = m (fun x -> k (f x))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

let decode_error what resp =
  let detail =
    match resp with Error msg -> ": " ^ msg | _ -> " (wrong response shape)"
  in
  failwith (Printf.sprintf "Proc: unexpected response for %s%s" what detail)

let perform op decode k = Request (op, fun resp -> k (decode resp))

let perform_unit op =
  perform op (function Unit -> () | r -> decode_error "unit op" r)

let run m = m (fun () -> Finished)

let rec iter_list f = function
  | [] -> return ()
  | x :: rest -> bind (f x) (fun () -> iter_list f rest)

let repeat n f =
  let rec loop i = if i >= n then return () else bind (f i) (fun () -> loop (i + 1)) in
  loop 0

let rec fold_list f acc = function
  | [] -> return acc
  | x :: rest -> bind (f acc x) (fun acc -> fold_list f acc rest)
