type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (sq /. float_of_int (List.length xs - 1))

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ ->
      if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
      let sorted = List.sort compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then arr.(lo)
      else
        let frac = rank -. float_of_int lo in
        arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      {
        n = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left Stdlib.min infinity xs;
        max = List.fold_left Stdlib.max neg_infinity xs;
        median = percentile 50.0 xs;
      }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max

module Histogram = struct
  (* Log-linear bucketing (HDR style): values are grouped by the position
     of their most significant bit, with [sub_bits] linear sub-buckets per
     power of two.  Quantiles are therefore approximate (relative error
     bounded by 2^-sub_bits) while memory stays constant, which keeps
     recording cheap enough to run inside the tracing hot path. *)
  let sub_bits = 6
  let sub_count = 1 lsl sub_bits
  let max_exponent = 52
  let bucket_count = (max_exponent + 1) * sub_count

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    {
      buckets = Array.make bucket_count 0;
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let msb_index v =
    let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
    go v 0

  let bucket_index v =
    let v = max 0 v in
    if v < sub_count then v
    else
      let exp = msb_index v in
      let sub = (v lsr (exp - sub_bits)) land (sub_count - 1) in
      ((exp - sub_bits + 1) * sub_count) + sub

  (* Representative value of a bucket: its lower bound. *)
  let bucket_value idx =
    if idx < sub_count then idx
    else
      let exp = (idx / sub_count) + sub_bits - 1 in
      let sub = idx mod sub_count in
      (1 lsl exp) lor (sub lsl (exp - sub_bits))

  let add t v =
    let i = bucket_index (int_of_float (Float.max 0.0 v)) in
    let i = if i >= bucket_count then bucket_count - 1 else i in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let add_int t v = add t (float_of_int v)
  let count t = t.count
  let total t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min_value t = if t.count = 0 then 0.0 else t.min_v
  let max_value t = if t.count = 0 then 0.0 else t.max_v

  let quantile t q =
    if t.count = 0 then 0.0
    else if q <= 0.0 then min_value t
    else if q >= 1.0 then max_value t
    else begin
      let target = int_of_float (ceil (q *. float_of_int t.count)) in
      let target = if target < 1 then 1 else target in
      let seen = ref 0 in
      let result = ref t.max_v in
      (try
         for i = 0 to bucket_count - 1 do
           seen := !seen + t.buckets.(i);
           if !seen >= target then begin
             result := float_of_int (bucket_value i);
             raise Exit
           end
         done
       with Exit -> ());
      (* Clamp into the observed range: bucket bounds are coarser than the
         true extremes. *)
      Float.min (Float.max !result t.min_v) t.max_v
    end

  let percentile t p = quantile t (p /. 100.0)

  let merge ~into src =
    Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v

  let reset t =
    Array.fill t.buckets 0 bucket_count 0;
    t.count <- 0;
    t.sum <- 0.0;
    t.min_v <- infinity;
    t.max_v <- neg_infinity

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f"
      t.count (mean t) (percentile t 50.0) (percentile t 90.0)
      (percentile t 99.0) (max_value t)
end

module Counter = struct
  type t = (string, float ref) Hashtbl.t

  let create () = Hashtbl.create 16

  let cell t key =
    match Hashtbl.find_opt t key with
    | Some r -> r
    | None ->
        let r = ref 0.0 in
        Hashtbl.add t key r;
        r

  let add t key v = cell t key := !(cell t key) +. v
  let incr t key = add t key 1.0
  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0.0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset t = Hashtbl.reset t
end
