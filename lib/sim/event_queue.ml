(* Structure-of-arrays binary min-heap with reusable slots.

   The previous implementation boxed every event in a four-word
   [{time; seq; value}] record, so the engine's dominant push/pop cycle
   allocated on every event and [pop] allocated again for its
   [Some (time, value)] result.  Here the heap is four parallel arrays —
   timestamps, insertion sequence numbers, and two payload slots — and
   the accessors ([next_time], [top_fst], [top_snd], [drop_min]) return
   unboxed values, so a steady-state push/pop cycle at constant queue
   depth allocates nothing: slots are written in place and reused.

   Two payload slots let the engine store a (handler, argument) pair per
   event without a closure; single-payload users ([push]/[pop]) are the
   same heap with [ys] fixed to [unit].

   Ordering: by time, then by insertion sequence — events with equal
   timestamps pop in FIFO order, which keeps the simulation
   deterministic.  The sift loops move a hole instead of swapping, so
   each step is one copy per array rather than three. *)

type ('a, 'b) t2 = {
  mutable times : int array; (* Time.t = int *)
  mutable seqs : int array;
  mutable xs : 'a array;
  mutable ys : 'b array;
  mutable size : int;
  mutable next_seq : int;
  mutable hint : int; (* capacity for the next (re-)allocation *)
}

type 'a t = ('a, unit) t2

let default_capacity = 256

let create2 ?(capacity = default_capacity) () =
  {
    times = [||];
    seqs = [||];
    xs = [||];
    ys = [||];
    size = 0;
    next_seq = 0;
    hint = max 1 capacity;
  }

let create ?capacity () = create2 ?capacity ()
let is_empty q = q.size = 0
let length q = q.size

(* Payload arrays need a fill value, so allocation is deferred to the
   first push (and sized by [hint], pre-sizing the steady state). *)
let ensure_room q a b =
  let cap = Array.length q.times in
  if q.size = cap then begin
    let ncap = max q.hint (2 * cap) in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nx = Array.make ncap a and ny = Array.make ncap b in
    Array.blit q.times 0 nt 0 q.size;
    Array.blit q.seqs 0 ns 0 q.size;
    Array.blit q.xs 0 nx 0 q.size;
    Array.blit q.ys 0 ny 0 q.size;
    q.times <- nt;
    q.seqs <- ns;
    q.xs <- nx;
    q.ys <- ny;
    q.hint <- ncap
  end

let push2 q ~time a b =
  ensure_room q a b;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let i = ref q.size in
  q.size <- q.size + 1;
  (* Sift the hole up: only strictly-later parents move down — an
     equal-time parent has a smaller seq and must stay above (FIFO). *)
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Array.unsafe_get q.times p in
    if tp > time then begin
      Array.unsafe_set q.times !i tp;
      Array.unsafe_set q.seqs !i (Array.unsafe_get q.seqs p);
      Array.unsafe_set q.xs !i (Array.unsafe_get q.xs p);
      Array.unsafe_set q.ys !i (Array.unsafe_get q.ys p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set q.times !i time;
  Array.unsafe_set q.seqs !i seq;
  Array.unsafe_set q.xs !i a;
  Array.unsafe_set q.ys !i b

let push q ~time v = push2 q ~time v ()

let next_time q =
  if q.size = 0 then invalid_arg "Event_queue.next_time: empty queue";
  Array.unsafe_get q.times 0

let top_fst q =
  if q.size = 0 then invalid_arg "Event_queue.top_fst: empty queue";
  Array.unsafe_get q.xs 0

let top_snd q =
  if q.size = 0 then invalid_arg "Event_queue.top_snd: empty queue";
  Array.unsafe_get q.ys 0

let drop_min q =
  if q.size = 0 then invalid_arg "Event_queue.drop_min: empty queue";
  let n = q.size - 1 in
  q.size <- n;
  if n > 0 then begin
    (* Re-insert the last element at the root hole, sifting down.  The
       vacated tail slot keeps a copy of a still-live payload, so no dead
       value is retained. *)
    let time = Array.unsafe_get q.times n in
    let seq = Array.unsafe_get q.seqs n in
    let a = Array.unsafe_get q.xs n in
    let b = Array.unsafe_get q.ys n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n then begin
            let tl = Array.unsafe_get q.times l
            and tr = Array.unsafe_get q.times r in
            if
              tr < tl
              || (tr = tl && Array.unsafe_get q.seqs r < Array.unsafe_get q.seqs l)
            then r
            else l
          end
          else l
        in
        let tc = Array.unsafe_get q.times c in
        if tc < time || (tc = time && Array.unsafe_get q.seqs c < seq) then begin
          Array.unsafe_set q.times !i tc;
          Array.unsafe_set q.seqs !i (Array.unsafe_get q.seqs c);
          Array.unsafe_set q.xs !i (Array.unsafe_get q.xs c);
          Array.unsafe_set q.ys !i (Array.unsafe_get q.ys c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set q.times !i time;
    Array.unsafe_set q.seqs !i seq;
    Array.unsafe_set q.xs !i a;
    Array.unsafe_set q.ys !i b
  end

let pop_min q =
  let v = top_fst q in
  drop_min q;
  v

let pop q =
  if q.size = 0 then None
  else begin
    let time = Array.unsafe_get q.times 0 in
    let v = Array.unsafe_get q.xs 0 in
    drop_min q;
    Some (time, v)
  end

let peek_time q = if q.size = 0 then None else Some (Array.unsafe_get q.times 0)

(* Horizon accessors for the sharded scheduler.  The heap orders entries
   only along root-to-leaf paths, so both are linear scans over the live
   prefix — fine for their use: once per conservative-synchronization
   window, not once per event. *)

let min_time_since q ~time =
  let best = ref Time.zero and found = ref false in
  for i = 0 to q.size - 1 do
    let t = Array.unsafe_get q.times i in
    if t >= time && ((not !found) || t < !best) then begin
      best := t;
      found := true
    end
  done;
  if !found then Some !best else None

let occupancy_below q ~time =
  let n = ref 0 in
  for i = 0 to q.size - 1 do
    if Array.unsafe_get q.times i <= time then incr n
  done;
  !n

let clear q =
  (* Drop the arrays so a cleared queue retains no dead payloads, but
     remember the reached capacity: the next push re-allocates at full
     size, so a reset-and-reuse engine pre-sizes itself. *)
  q.hint <- max q.hint (Array.length q.times);
  q.times <- [||];
  q.seqs <- [||];
  q.xs <- [||];
  q.ys <- [||];
  q.size <- 0;
  q.next_seq <- 0
