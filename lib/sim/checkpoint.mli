(** Whole-simulator checkpoint/restore.

    [save] marshals an arbitrary state record — closures included — to a
    versioned file; [load] reads it back.  Because the engine's event heap
    holds closures over every simulation component, saving a record that
    references the engine (directly or through {!Engine.t} owners like a
    system handle) captures the complete simulator: clock, pending events,
    DTU/kernel/runtime state and RNG streams.  Restoring it in a fresh
    process of the {e same binary} resumes the run byte-identically.

    Caveats, by construction of [Marshal]:

    - A checkpoint is only readable by the executable that wrote it
      (closures marshal as code pointers + a code digest); [load] reports
      a mismatch as [Error].
    - Domain-local and global mutable state outside the saved graph — the
      installed fault plan, trace sinks, {!M3v_dtu.Msg}'s uid counter — is
      not captured.  Callers embed those values in their state record and
      reinstall them after [load].
    - Channels and other custom blocks must not be reachable from the
      state record; checkpointing a run with a live trace sink attached to
      a file is unsupported.
    - Extension constructors ([type Msg.data += ...], exceptions) are
      matched by physical identity, which a Marshal round trip breaks.
      [load] repairs this by re-interning every constructor slot in the
      loaded graph against this process's canonical slot, found by name in
      a registry; modules whose constructors can appear in a checkpointed
      graph register them with {!register_exts} at init time.  A loaded
      graph holding an unregistered constructor is an [Error]. *)

(** [register_exts ecs] declares canonical extension constructors for
    {!load}'s re-interning pass, e.g.
    [register_exts [[%extension_constructor Raw]]] next to the type
    declaration.  Idempotent; registering two distinct constructors with
    the same fully-qualified name raises [Invalid_argument]. *)
val register_exts : Obj.Extension_constructor.t list -> unit

(** [save ~path v] atomically writes [v] (with closures) to [path]. *)
val save : path:string -> 'a -> unit

(** [load ~path] reads a value saved by {!save}.  The result type is the
    caller's claim, exactly as with [Marshal.from_channel] — loading into
    the wrong type is unsound; keep one state type per file format.
    Errors (missing file, bad magic, truncation, different binary) are
    returned, not raised. *)
val load : path:string -> ('a, string) result
