(** Small statistics helpers for benchmark results. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

(** Summarize a sample.  Raises [Invalid_argument] on an empty list. *)
val summarize : float list -> summary

val mean : float list -> float
val stddev : float list -> float

(** [percentile p xs] with [p] in [0, 100], linear interpolation. *)
val percentile : float -> float list -> float

val pp_summary : Format.formatter -> summary -> unit

(** A constant-memory log-linear histogram (HDR style) for latency
    distributions.  Values are bucketed by power of two with 64 linear
    sub-buckets, so quantiles carry a bounded relative error (< ~1.6%)
    while [add] stays O(1) — cheap enough for per-event recording in the
    tracing layer.  Negative values are clamped to zero. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val add_int : t -> int -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  (** [quantile t q] with [q] in [0, 1]. *)
  val quantile : t -> float -> float

  (** [percentile t p] with [p] in [0, 100]. *)
  val percentile : t -> float -> float

  val merge : into:t -> t -> unit
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** An accumulating counter keyed by string, used for runtime accounting
    (user/system time, per-component cycles, event counts). *)
module Counter : sig
  type t

  val create : unit -> t
  val add : t -> string -> float -> unit
  val incr : t -> string -> unit
  val get : t -> string -> float
  val to_list : t -> (string * float) list
  val reset : t -> unit
end
