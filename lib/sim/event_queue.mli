(** A binary min-heap of timestamped events, laid out as parallel arrays
    (structure-of-arrays) with reusable slots: a steady-state push/pop
    cycle at constant depth allocates nothing.

    Events with equal timestamps pop in insertion order (FIFO), which keeps
    the simulation deterministic. *)

(** A heap whose entries carry two payloads.  The engine uses this to
    store a (handler, argument) pair per event without boxing them in a
    closure or tuple. *)
type ('a, 'b) t2

(** Single-payload view: [('a, unit) t2]. *)
type 'a t = ('a, unit) t2

(** [capacity] pre-sizes the payload slots (default 256); the heap still
    grows beyond it on demand. *)
val create : ?capacity:int -> unit -> 'a t

val create2 : ?capacity:int -> unit -> ('a, 'b) t2
val is_empty : ('a, 'b) t2 -> bool
val length : ('a, 'b) t2 -> int

(** [push q ~time v] inserts [v] with the given timestamp. *)
val push : 'a t -> time:Time.t -> 'a -> unit

val push2 : ('a, 'b) t2 -> time:Time.t -> 'a -> 'b -> unit

(** {2 Non-allocating accessors}

    The fast path for the dispatch loop: read the earliest entry's fields
    with [next_time]/[top_fst]/[top_snd], then remove it with [drop_min].
    All raise [Invalid_argument] on an empty queue — check [is_empty]
    first. *)

val next_time : ('a, 'b) t2 -> Time.t
val top_fst : ('a, 'b) t2 -> 'a
val top_snd : ('a, 'b) t2 -> 'b
val drop_min : ('a, 'b) t2 -> unit

(** [pop_min q] = [top_fst] + [drop_min]: removes the earliest event and
    returns its first payload without allocating. *)
val pop_min : ('a, 'b) t2 -> 'a

(** [pop q] removes and returns the earliest event, or [None] if empty.
    Allocates its result; kept for tests and non-hot-path users. *)
val pop : 'a t -> (Time.t * 'a) option

(** [peek_time q] is the timestamp of the earliest event without removing
    it. *)
val peek_time : ('a, 'b) t2 -> Time.t option

(** {2 Horizon accessors}

    Used by the sharded scheduler's conservative-synchronization window
    computation.  Both are O(length) scans — called once per window, not
    per event. *)

(** [min_time_since q ~time] is the earliest timestamp [>= time] among
    pending events, or [None] if no event lies at or after [time]. *)
val min_time_since : ('a, 'b) t2 -> time:Time.t -> Time.t option

(** [occupancy_below q ~time] counts pending events with timestamp
    [<= time] — the work available inside a synchronization window, used
    to decide whether parallel dispatch is worth the barrier. *)
val occupancy_below : ('a, 'b) t2 -> time:Time.t -> int

(** Drop all pending events and release payload references.  The reached
    capacity is remembered, so a cleared-and-reused queue re-sizes itself
    on the first push. *)
val clear : ('a, 'b) t2 -> unit
