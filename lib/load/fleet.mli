(** Simulated client fleets.

    A fleet models thousands-to-millions of clients as cheap bookkeeping
    (arrival schedules, think-time heaps, key samplers) multiplexed onto
    a small, bounded set of {e driver} activities — one activity per
    driver, one outstanding request per driver.  Drivers are the only
    simulated actors that own endpoints, so the endpoint cost is
    O(drivers), not O(clients).

    Two load loops:

    - {e open loop}: requests arrive on a Poisson (or bursty MMPP)
      schedule at the configured aggregate rate, independent of
      completions.  Latency is measured from the {e scheduled} arrival,
      not the issue instant, so driver backlog counts against the service
      (coordinated-omission correction) and p99 explodes past the knee.
    - {e closed loop}: each client issues, waits for the completion, then
      thinks for an exponential think time before issuing again.

    All randomness flows from per-driver [Rng]s seeded by
    [(seed, driver index)], so a fleet's schedule is byte-identical
    across runs and worker-domain placements. *)

type kind = Kv_get | Kv_put | Fs_read | Udp_echo

val kind_name : kind -> string
val all_kinds : kind list

(** [Some kind] for "get"/"put"/"fs"/"udp". *)
val kind_of_string : string -> kind option

(** Parse a "udp=50,get=25,put=10,fs=15" weight list. *)
val parse_mix : string -> ((kind * int) list, string) result

val mix_to_string : (kind * int) list -> string

type op = {
  op_kind : kind;
  op_key : int;  (** Zipf-sampled key index in [0, keys) *)
  op_client : int;  (** issuing client id in [0, clients) *)
}

type arrivals = Poisson | Bursty
type loop = Open_loop | Closed_loop of { think_ps : int }

type config = {
  clients : int;
  drivers : int;
  rate_per_s : float;  (** aggregate offered load (open loop) *)
  loop : loop;
  arrivals : arrivals;
  mix : (kind * int) list;
  skew : float;  (** Zipf theta in [0, 1) *)
  keys : int;
  warmup_ps : int;  (** arrivals start here (services boot before) *)
  duration_ps : int;  (** measurement window length *)
  seed : int;
}

val default_mix : (kind * int) list

(** One per-request measurement, all timestamps in simulated ps.
    Latency is [s_done - s_sched]. *)
type sample = {
  s_kind : kind;
  s_sched : int;
  s_issue : int;
  s_done : int;
  s_ok : bool;
}

type driver

(** [make_driver cfg i] for [i] in [0, cfg.drivers).  Raises
    [Invalid_argument] on a config with no clients, no drivers, more
    drivers than clients, or an invalid mix. *)
val make_driver : config -> int -> driver

(** Number of clients this driver multiplexes. *)
val driver_clients : driver -> int

(** Pure schedule access (tests): the next [(scheduled_ps, op)], or
    [None] once the schedule is exhausted.  Consumes the item. *)
val next : driver -> (int * op) option

(** Feed a completion back (closed loop re-arms the client after its
    think time; open loop ignores it). *)
val complete : driver -> client:int -> done_ps:int -> unit

(** The driver activity body: replay the schedule, sleeping
    ({!M3v_mux.Act_api.sleep} — the tile runs others meanwhile) until
    each scheduled arrival, then run [issue] and [record] the sample.
    Returns when the schedule is exhausted. *)
val driver_program :
  driver ->
  issue:(op -> bool M3v_sim.Proc.t) ->
  record:(sample -> unit) ->
  unit ->
  unit M3v_sim.Proc.t
