module Rng = M3v_sim.Rng

module Zipf = struct
  type t = {
    n : int;
    theta : float;
    zetan : float;
    alpha : float;
    eta : float;
    rng : Rng.t;
  }

  let zeta n theta =
    let sum = ref 0.0 in
    for i = 1 to n do
      sum := !sum +. (1.0 /. (float_of_int i ** theta))
    done;
    !sum

  let create ?(theta = 0.99) ~n rng =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    if theta < 0.0 || theta >= 1.0 then
      invalid_arg "Zipf.create: theta must be in [0, 1)";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta; rng }

  (* Gray et al.'s quick Zipfian sampler, as used by YCSB. *)
  let sample t =
    let u = Rng.float t.rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** t.theta) then 1
    else
      let v =
        float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha)
      in
      min (t.n - 1) (int_of_float v)

  let n t = t.n
  let theta t = t.theta
end

module Mix = struct
  type 'a t = { total : int; entries : ('a * int) list; rng : Rng.t }

  let create entries rng =
    if entries = [] then invalid_arg "Mix.create: empty mix";
    List.iter
      (fun (_, w) -> if w < 0 then invalid_arg "Mix.create: negative weight")
      entries;
    let total = List.fold_left (fun acc (_, w) -> acc + w) 0 entries in
    if total <= 0 then invalid_arg "Mix.create: weights sum to zero";
    { total; entries; rng }

  let sample t =
    let dice = Rng.int t.rng t.total in
    let rec pick acc = function
      | [] -> assert false
      | (v, w) :: rest -> if dice < acc + w then v else pick (acc + w) rest
    in
    pick 0 t.entries

  let total t = t.total
end

(* [Rng.float] is in [0, 1), so [1 - u] is in (0, 1] and the log is
   finite; the result is strictly positive. *)
let exponential rng ~mean = -.mean *. log (1.0 -. Rng.float rng)

module Poisson = struct
  type t = { mean_gap_ps : float; rng : Rng.t; mutable next_ps : int }

  let create ~rate_per_s ~start_ps rng =
    if rate_per_s <= 0.0 then
      invalid_arg "Poisson.create: rate must be positive";
    { mean_gap_ps = 1e12 /. rate_per_s; rng; next_ps = start_ps }

  let next t =
    let gap = max 1 (int_of_float (exponential t.rng ~mean:t.mean_gap_ps)) in
    t.next_ps <- t.next_ps + gap;
    t.next_ps
end

module Mmpp = struct
  (* Burst state occupies [p_hi] of the time.  With the burst-state rate
     at [burst * rate], the calm-state rate solving
     p_hi * hi + (1 - p_hi) * lo = rate keeps the long-run mean on
     target. *)
  let p_hi = 0.2

  type t = {
    gap_ps : float array; (* mean inter-arrival per state: 0 calm, 1 burst *)
    dwell_ps : float array; (* mean dwell per state *)
    rng : Rng.t;
    mutable state : int;
    mutable cur_ps : int;
    mutable until_ps : int; (* leave the current state at this instant *)
  }

  let create ?(burst = 4.0) ?(dwell_ps = 2.5e10) ~rate_per_s ~start_ps rng =
    if rate_per_s <= 0.0 then invalid_arg "Mmpp.create: rate must be positive";
    if burst <= 1.0 then invalid_arg "Mmpp.create: burst must exceed 1";
    if burst >= 1.0 /. p_hi then
      invalid_arg "Mmpp.create: burst too large (calm rate would go negative)";
    let hi = rate_per_s *. burst in
    let lo = rate_per_s *. (1.0 -. (p_hi *. burst)) /. (1.0 -. p_hi) in
    let t =
      {
        gap_ps = [| 1e12 /. lo; 1e12 /. hi |];
        dwell_ps = [| (1.0 -. p_hi) *. dwell_ps; p_hi *. dwell_ps |];
        rng;
        state = 0;
        cur_ps = start_ps;
        until_ps = start_ps;
      }
    in
    t.until_ps <-
      start_ps + max 1 (int_of_float (exponential rng ~mean:t.dwell_ps.(0)));
    t

  let rec next t =
    let gap =
      max 1 (int_of_float (exponential t.rng ~mean:t.gap_ps.(t.state)))
    in
    let proposed = t.cur_ps + gap in
    if proposed <= t.until_ps then begin
      t.cur_ps <- proposed;
      proposed
    end
    else begin
      (* Cross the state boundary and redraw: the exponential is
         memoryless, so restarting the gap at the boundary preserves the
         per-state Poisson law. *)
      t.cur_ps <- t.until_ps;
      t.state <- 1 - t.state;
      t.until_ps <-
        t.cur_ps
        + max 1 (int_of_float (exponential t.rng ~mean:t.dwell_ps.(t.state)));
      next t
    end
end
