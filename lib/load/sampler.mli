(** Deterministic workload samplers.

    Every sampler draws from an explicit {!M3v_sim.Rng.t}, so equal seeds
    produce byte-identical streams regardless of host, process or worker
    domain — the property the load harness' [--jobs N] determinism bar
    rests on.  The Zipf and mix samplers are the single implementation
    shared by the YCSB generator ({!M3v_apps.Ycsb}) and the fleet driver
    ({!Fleet}). *)

(** Zipfian sampler over [0, n) with exponent [theta] in [0, 1) (default
    0.99, the YCSB standard), using Gray et al.'s quick sampler. *)
module Zipf : sig
  type t

  val create : ?theta:float -> n:int -> M3v_sim.Rng.t -> t
  val sample : t -> int
  val n : t -> int
  val theta : t -> float
end

(** Weighted discrete mix.  One uniform draw in [0, total) is mapped
    through the cumulative weights, so a mix with weights summing to 100
    consumes exactly one [Rng.int rng 100] per sample — the draw
    discipline the YCSB generator has always used. *)
module Mix : sig
  type 'a t

  (** Raises [Invalid_argument] on an empty list, a negative weight, or
      weights summing to zero.  Zero-weight entries are never sampled. *)
  val create : ('a * int) list -> M3v_sim.Rng.t -> 'a t

  val sample : 'a t -> 'a
  val total : 'a t -> int
end

(** One exponential variate with the given mean (rejection-free inverse
    transform; strictly positive). *)
val exponential : M3v_sim.Rng.t -> mean:float -> float

(** Open-loop Poisson arrival process: successive calls to {!Poisson.next}
    return strictly increasing absolute timestamps (ps) whose gaps are
    exponential with mean [1/rate]. *)
module Poisson : sig
  type t

  val create : rate_per_s:float -> start_ps:int -> M3v_sim.Rng.t -> t
  val next : t -> int
end

(** Two-state Markov-modulated Poisson process (bursty arrivals): a calm
    state and a burst state, each with exponential dwell times, arrivals
    Poisson at the state's rate.  [burst] scales the burst-state rate
    (default 4x the nominal rate); the calm-state rate is chosen so the
    long-run mean stays [rate_per_s]. *)
module Mmpp : sig
  type t

  val create :
    ?burst:float ->
    ?dwell_ps:float ->
    rate_per_s:float ->
    start_ps:int ->
    M3v_sim.Rng.t ->
    t

  val next : t -> int
end
