module Stats = M3v_sim.Stats

type row = {
  label : string;
  n : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
}

let row_of_latencies ~label = function
  | [] -> None
  | us ->
      Some
        {
          label;
          n = List.length us;
          mean_us = Stats.mean us;
          p50_us = Stats.percentile 50.0 us;
          p99_us = Stats.percentile 99.0 us;
          p999_us = Stats.percentile 99.9 us;
          max_us = List.fold_left Float.max neg_infinity us;
        }

let pp_table fmt rows =
  Format.fprintf fmt "  %-6s %7s %10s %10s %10s %10s %10s@." "class" "n"
    "mean(us)" "p50(us)" "p99(us)" "p999(us)" "max(us)";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-6s %7d %10.1f %10.1f %10.1f %10.1f %10.1f@."
        r.label r.n r.mean_us r.p50_us r.p99_us r.p999_us r.max_us)
    rows
