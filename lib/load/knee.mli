(** Saturation-knee detection over a latency-vs-offered-load sweep.

    The knee is the first load step where the service stops keeping up:
    either its p99 latency exceeds the SLO, or goodput stops scaling with
    offered load (the marginal goodput per additional offered request
    falls below [min_efficiency]).  Degenerate sweeps are well-defined:
    an all-saturated sweep knees at step 0, a never-saturated sweep (and
    an empty one) reports no knee. *)

type step = {
  k_offered : float;  (** offered load at this step, req/s *)
  k_goodput : float;  (** completions inside the window, req/s *)
  k_p99_us : float;  (** p99 request latency, us *)
}

type verdict = {
  knee : int option;  (** index of the first saturated step *)
  reason : string;  (** human-readable criterion that fired *)
}

(** [detect ~slo_p99_us ~min_efficiency steps].  [slo_p99_us] defaults to
    infinity (SLO criterion disabled); [min_efficiency] defaults to 0.5
    (a step must convert at least half of the added offered load into
    goodput). *)
val detect : ?slo_p99_us:float -> ?min_efficiency:float -> step list -> verdict
