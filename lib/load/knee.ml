type step = { k_offered : float; k_goodput : float; k_p99_us : float }
type verdict = { knee : int option; reason : string }

let detect ?(slo_p99_us = infinity) ?(min_efficiency = 0.5) steps =
  let arr = Array.of_list steps in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       let s = arr.(i) in
       if s.k_p99_us > slo_p99_us then begin
         found :=
           Some
             ( i,
               Printf.sprintf "p99 %.0f us exceeds SLO %.0f us" s.k_p99_us
                 slo_p99_us );
         raise Exit
       end;
       if i > 0 then begin
         let prev = arr.(i - 1) in
         let d_off = s.k_offered -. prev.k_offered in
         (* Only increasing-load transitions can witness a scaling stall;
            a flat or shrinking step carries no signal. *)
         if d_off > 0.0 then begin
           let eff = (s.k_goodput -. prev.k_goodput) /. d_off in
           if eff < min_efficiency then begin
             found :=
               Some
                 ( i,
                   Printf.sprintf
                     "goodput stopped scaling (marginal efficiency %.2f < \
                      %.2f)"
                     eff min_efficiency );
             raise Exit
           end
         end
       end
     done
   with Exit -> ());
  match !found with
  | Some (i, reason) -> { knee = Some i; reason }
  | None -> { knee = None; reason = "no knee within the sweep" }
