(** Per-class latency percentile rows (the SLO table of a load report). *)

type row = {
  label : string;  (** request class ("udp", "get", ... or "all") *)
  n : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
}

(** [None] on an empty sample. *)
val row_of_latencies : label:string -> float list -> row option

val pp_table : Format.formatter -> row list -> unit
