open M3v_sim.Proc.Syntax
module Proc = M3v_sim.Proc
module Time = M3v_sim.Time
module Rng = M3v_sim.Rng
module A = M3v_mux.Act_api

type kind = Kv_get | Kv_put | Fs_read | Udp_echo

let kind_name = function
  | Kv_get -> "get"
  | Kv_put -> "put"
  | Fs_read -> "fs"
  | Udp_echo -> "udp"

let all_kinds = [ Kv_get; Kv_put; Fs_read; Udp_echo ]

let kind_of_string = function
  | "get" -> Some Kv_get
  | "put" -> Some Kv_put
  | "fs" -> Some Fs_read
  | "udp" -> Some Udp_echo
  | _ -> None

let parse_mix s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.split_on_char '=' (String.trim part) with
        | [ name; weight ] -> (
            match (kind_of_string name, int_of_string_opt weight) with
            | Some kind, Some w when w >= 0 -> go ((kind, w) :: acc) rest
            | None, _ ->
                Error
                  (Printf.sprintf
                     "unknown request class %S (expected get|put|fs|udp)" name)
            | _, _ -> Error (Printf.sprintf "bad weight in %S" part))
        | _ -> Error (Printf.sprintf "bad mix entry %S (expected class=weight)" part))
  in
  match go [] parts with
  | Ok [] -> Error "empty mix"
  | Ok mix when List.for_all (fun (_, w) -> w = 0) mix ->
      Error "mix weights sum to zero"
  | r -> r

let mix_to_string mix =
  String.concat ","
    (List.map (fun (k, w) -> Printf.sprintf "%s=%d" (kind_name k) w) mix)

type op = { op_kind : kind; op_key : int; op_client : int }
type arrivals = Poisson | Bursty
type loop = Open_loop | Closed_loop of { think_ps : int }

type config = {
  clients : int;
  drivers : int;
  rate_per_s : float;
  loop : loop;
  arrivals : arrivals;
  mix : (kind * int) list;
  skew : float;
  keys : int;
  warmup_ps : int;
  duration_ps : int;
  seed : int;
}

let default_mix = [ (Udp_echo, 50); (Kv_get, 25); (Kv_put, 10); (Fs_read, 15) ]

type sample = {
  s_kind : kind;
  s_sched : int;
  s_issue : int;
  s_done : int;
  s_ok : bool;
}

(* Array-backed binary min-heap of (wake ps, client id): the closed-loop
   think-time queue.  Sized once for the driver's client slice, so a
   million-client fleet costs two int arrays and no per-op allocation. *)
module Heap = struct
  type t = { mutable ts : int array; mutable cl : int array; mutable n : int }

  let create cap = { ts = Array.make (max 1 cap) 0; cl = Array.make (max 1 cap) 0; n = 0 }
  let size h = h.n

  let swap h i j =
    let t = h.ts.(i) and c = h.cl.(i) in
    h.ts.(i) <- h.ts.(j);
    h.cl.(i) <- h.cl.(j);
    h.ts.(j) <- t;
    h.cl.(j) <- c

  let push h ts cl =
    if h.n = Array.length h.ts then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      h.ts <- grow h.ts;
      h.cl <- grow h.cl
    end;
    h.ts.(h.n) <- ts;
    h.cl.(h.n) <- cl;
    let i = ref h.n in
    h.n <- h.n + 1;
    while !i > 0 && h.ts.((!i - 1) / 2) > h.ts.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek_ts h = h.ts.(0)

  let pop h =
    let ts = h.ts.(0) and cl = h.cl.(0) in
    h.n <- h.n - 1;
    h.ts.(0) <- h.ts.(h.n);
    h.cl.(0) <- h.cl.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && h.ts.(l) < h.ts.(!m) then m := l;
      if r < h.n && h.ts.(r) < h.ts.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        swap h !i !m;
        i := !m
      end
    done;
    (ts, cl)
end

type schedule =
  | Sched_open of { next_of : unit -> int; mutable pending : int option }
  | Sched_closed of { heap : Heap.t; think_ps : int }

type driver = {
  d_rng : Rng.t;
  d_zipf : Sampler.Zipf.t;
  d_mix : kind Sampler.Mix.t;
  d_clients : int;
  d_client_base : int;
  d_end_ps : int;
  d_sched : schedule;
}

let make_driver cfg i =
  if cfg.clients <= 0 then invalid_arg "Fleet.make_driver: no clients";
  if cfg.drivers <= 0 then invalid_arg "Fleet.make_driver: no drivers";
  if cfg.drivers > cfg.clients then
    invalid_arg "Fleet.make_driver: more drivers than clients";
  if i < 0 || i >= cfg.drivers then invalid_arg "Fleet.make_driver: bad index";
  let rng = Rng.create ~seed:(cfg.seed + (100_003 * (i + 1))) in
  let base_share = cfg.clients / cfg.drivers in
  let extra = cfg.clients mod cfg.drivers in
  let d_clients = base_share + if i < extra then 1 else 0 in
  let d_client_base = (i * base_share) + min i extra in
  let d_end_ps = cfg.warmup_ps + cfg.duration_ps in
  let d_sched =
    match cfg.loop with
    | Open_loop ->
        (* This driver carries its client slice's share of the aggregate
           rate. *)
        let rate =
          cfg.rate_per_s *. float_of_int d_clients /. float_of_int cfg.clients
        in
        let next_of =
          match cfg.arrivals with
          | Poisson ->
              let p =
                Sampler.Poisson.create ~rate_per_s:rate ~start_ps:cfg.warmup_ps
                  rng
              in
              fun () -> Sampler.Poisson.next p
          | Bursty ->
              let m =
                Sampler.Mmpp.create ~rate_per_s:rate ~start_ps:cfg.warmup_ps rng
              in
              fun () -> Sampler.Mmpp.next m
        in
        Sched_open { next_of; pending = None }
    | Closed_loop { think_ps } ->
        if think_ps <= 0 then
          invalid_arg "Fleet.make_driver: think time must be positive";
        let heap = Heap.create d_clients in
        (* Stagger the first wakes uniformly over one think period so the
           fleet does not arrive in lockstep. *)
        for c = 0 to d_clients - 1 do
          Heap.push heap (cfg.warmup_ps + Rng.int rng think_ps) (d_client_base + c)
        done;
        Sched_closed { heap; think_ps }
  in
  {
    d_rng = rng;
    d_zipf = Sampler.Zipf.create ~theta:cfg.skew ~n:cfg.keys rng;
    d_mix = Sampler.Mix.create cfg.mix rng;
    d_clients;
    d_client_base;
    d_end_ps;
    d_sched;
  }

let driver_clients d = d.d_clients

let sample_op d ~client =
  {
    op_kind = Sampler.Mix.sample d.d_mix;
    op_key = Sampler.Zipf.sample d.d_zipf;
    op_client = client;
  }

let next d =
  match d.d_sched with
  | Sched_open o -> (
      let ts =
        match o.pending with
        | Some ts -> ts
        | None ->
            let ts = o.next_of () in
            o.pending <- Some ts;
            ts
      in
      if ts > d.d_end_ps then None
      else begin
        o.pending <- None;
        let client = d.d_client_base + Rng.int d.d_rng d.d_clients in
        Some (ts, sample_op d ~client)
      end)
  | Sched_closed c ->
      if Heap.size c.heap = 0 || Heap.peek_ts c.heap > d.d_end_ps then None
      else begin
        let ts, client = Heap.pop c.heap in
        Some (ts, sample_op d ~client)
      end

let complete d ~client ~done_ps =
  match d.d_sched with
  | Sched_open _ -> ()
  | Sched_closed c ->
      let think =
        max 1
          (int_of_float
             (Sampler.exponential d.d_rng ~mean:(float_of_int c.think_ps)))
      in
      (* Clients whose next wake falls past the window simply retire;
         [next] never returns them. *)
      Heap.push c.heap (done_ps + think) client

let driver_program d ~issue ~record () =
  let rec loop () =
    match next d with
    | None -> Proc.return ()
    | Some (sched, op) ->
        let* now = A.now in
        let* () =
          if now < sched then A.sleep (Time.ps (sched - now)) else Proc.return ()
        in
        let* t_issue = A.now in
        let* ok = issue op in
        let* t_done = A.now in
        complete d ~client:op.op_client ~done_ps:t_done;
        record
          {
            s_kind = op.op_kind;
            s_sched = sched;
            s_issue = t_issue;
            s_done = t_done;
            s_ok = ok;
          };
        loop ()
  in
  loop ()
