type key = Dtu_types.act_id * int
type entry = { ppage : int; perm : Dtu_types.perm }

type stats = { hits : int; misses : int; perm_upgrades : int; evictions : int }

type t = {
  capacity : int;
  entries : (key, entry) Hashtbl.t;
  mutable fifo : key Queue.t;
  mutable hits : int;
  mutable misses : int;
  mutable perm_upgrades : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    capacity;
    entries = Hashtbl.create capacity;
    fifo = Queue.create ();
    hits = 0;
    misses = 0;
    perm_upgrades = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let lookup t ~act ~vpage ~write =
  match Hashtbl.find_opt t.entries (act, vpage) with
  | Some e when (not write) || Dtu_types.perm_allows_write e.perm ->
      t.hits <- t.hits + 1;
      Some e.ppage
  | Some _ ->
      (* The mapping exists but lacks write permission: the command fails
         like a miss, but TileMux only upgrades the entry instead of
         translating from scratch — count it separately. *)
      t.perm_upgrades <- t.perm_upgrades + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_one t =
  (* The FIFO may contain stale keys for entries already invalidated;
     skip those. *)
  let rec loop () =
    match Queue.take_opt t.fifo with
    | None -> ()
    | Some key ->
        if Hashtbl.mem t.entries key then begin
          Hashtbl.remove t.entries key;
          t.evictions <- t.evictions + 1
        end
        else loop ()
  in
  loop ()

let insert t ~act ~vpage ~ppage ~perm =
  let key = (act, vpage) in
  if not (Hashtbl.mem t.entries key) then begin
    if Hashtbl.length t.entries >= t.capacity then evict_one t;
    Queue.add key t.fifo
  end;
  Hashtbl.replace t.entries key { ppage; perm }

(* Rebuild the eviction FIFO keeping only keys that still map to live
   entries.  Without this, every invalidation leaves its key behind and the
   FIFO grows without bound across activity switches in long runs (and a
   re-inserted page would appear twice, skewing eviction order). *)
let compact_fifo t =
  let fresh = Queue.create () in
  Queue.iter
    (fun key -> if Hashtbl.mem t.entries key then Queue.add key fresh)
    t.fifo;
  t.fifo <- fresh

(* Export one activity's live mappings, sorted by vpage so migration
   re-installs them in a deterministic order on the target DTU. *)
let entries_of_act t act =
  Hashtbl.fold
    (fun (a, vpage) e acc -> if a = act then (vpage, e) :: acc else acc)
    t.entries []
  |> List.sort (fun (va, _) (vb, _) -> Stdlib.compare va vb)

let invalidate_act t act =
  let stale =
    Hashtbl.fold (fun (a, p) _ acc -> if a = act then (a, p) :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale;
  if stale <> [] then compact_fifo t

let invalidate_page t ~act ~vpage =
  if Hashtbl.mem t.entries (act, vpage) then begin
    Hashtbl.remove t.entries (act, vpage);
    compact_fifo t
  end

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.fifo

let entry_count t = Hashtbl.length t.entries
let fifo_length t = Queue.length t.fifo

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    perm_upgrades = t.perm_upgrades;
    evictions = t.evictions;
  }
