type send = {
  dst_tile : int;
  dst_ep : int;
  label : int;
  max_msg_size : int;
  max_credits : int;
  mutable credits : int;
}

type recv = {
  slots : int;
  slot_size : int;
  mutable occupied : int;
  pending : Msg.t Queue.t;
  (* Receiver-side dedup under fault injection: uids of recently delivered
     messages, bounded FIFO.  Unused (and empty) when faults are off. *)
  seen : (int, unit) Hashtbl.t;
  seen_fifo : int Queue.t;
}

let seen_cap = 256

let note_seen_tbl seen seen_fifo uid =
  Hashtbl.replace seen uid ();
  Queue.add uid seen_fifo;
  if Queue.length seen_fifo > seen_cap then
    Hashtbl.remove seen (Queue.pop seen_fifo)

let note_seen r uid = note_seen_tbl r.seen r.seen_fifo uid
let seen_before r uid = Hashtbl.mem r.seen uid

type mpmc = {
  mp_slots : int;
  mp_slot_size : int;
  mp_ack_batch : int;
  (* Monotonic reservation counters over the shared ring: a slot is reserved
     by bumping [mp_head] at delivery and released by bumping [mp_tail] at
     ack.  Occupancy is [mp_head - mp_tail]. *)
  mutable mp_head : int;
  mutable mp_tail : int;
  mp_pending : Msg.t Queue.t;
  mp_seen : (int, unit) Hashtbl.t;
  mp_seen_fifo : int Queue.t;
  (* Batched credit refunds: (src_tile, src_send_ep) -> credits owed.  Flushed
     as one credit packet per sender when [mp_refund_total] reaches
     [mp_ack_batch] or the queue drains. *)
  mp_refunds : (int * int, int) Hashtbl.t;
  mutable mp_refund_total : int;
}

let mp_occupied mp = mp.mp_head - mp.mp_tail
let mp_note_seen mp uid = note_seen_tbl mp.mp_seen mp.mp_seen_fifo uid
let mp_seen_before mp uid = Hashtbl.mem mp.mp_seen uid

type mem = {
  mem_tile : int;
  base : int;
  mem_size : int;
  perm : Dtu_types.perm;
}

type config =
  | Invalid
  | Send of send
  | Recv of recv
  | Mpmc_recv of mpmc
  | Mem of mem

type t = { mutable cfg : config; mutable owner : Dtu_types.act_id }

let make_invalid () = { cfg = Invalid; owner = Dtu_types.invalid_act }

let send_config ~dst_tile ~dst_ep ?(label = 0) ~max_msg_size ~credits () =
  if credits <= 0 then invalid_arg "Ep.send_config: credits must be positive";
  Send { dst_tile; dst_ep; label; max_msg_size; max_credits = credits; credits }

let recv_config ~slots ~slot_size () =
  if slots <= 0 then invalid_arg "Ep.recv_config: slots must be positive";
  Recv
    {
      slots;
      slot_size;
      occupied = 0;
      pending = Queue.create ();
      seen = Hashtbl.create 8;
      seen_fifo = Queue.create ();
    }

let mpmc_config ~slots ~slot_size ?(ack_batch = 16) () =
  if slots <= 0 then invalid_arg "Ep.mpmc_config: slots must be positive";
  if ack_batch <= 0 then invalid_arg "Ep.mpmc_config: ack_batch must be positive";
  Mpmc_recv
    {
      mp_slots = slots;
      mp_slot_size = slot_size;
      mp_ack_batch = ack_batch;
      mp_head = 0;
      mp_tail = 0;
      mp_pending = Queue.create ();
      mp_seen = Hashtbl.create 8;
      mp_seen_fifo = Queue.create ();
      mp_refunds = Hashtbl.create 8;
      mp_refund_total = 0;
    }

(* Satellite: credit-accounting invariant, asserted at every mutation site.
   A send endpoint must never hold negative credits nor more than it was
   configured with — violations indicate a refund raced a revoke/restore. *)
let check_credits ~ctx (s : send) =
  if s.credits < 0 || s.credits > s.max_credits then
    invalid_arg
      (Printf.sprintf "Ep credit invariant violated (%s): credits=%d not in [0,%d]"
         ctx s.credits s.max_credits)

let validate_config ~ctx cfg =
  match cfg with
  | Send s ->
      if s.max_credits <= 0 then
        invalid_arg (Printf.sprintf "Ep config invalid (%s): max_credits=%d" ctx s.max_credits);
      check_credits ~ctx s
  | Recv r ->
      if r.occupied < 0 || r.occupied > r.slots then
        invalid_arg
          (Printf.sprintf "Ep config invalid (%s): occupied=%d not in [0,%d]" ctx r.occupied
             r.slots)
  | Mpmc_recv mp ->
      if mp_occupied mp < 0 || mp_occupied mp > mp.mp_slots then
        invalid_arg
          (Printf.sprintf "Ep config invalid (%s): mpmc occupancy %d not in [0,%d]" ctx
             (mp_occupied mp) mp.mp_slots)
  | Invalid | Mem _ -> ()

let mem_config ~mem_tile ~base ~size ~perm =
  if size <= 0 || base < 0 then invalid_arg "Ep.mem_config: bad window";
  Mem { mem_tile; base; mem_size = size; perm }

let snapshot t =
  let cfg =
    match t.cfg with
    | Invalid -> Invalid
    | Send s -> Send { s with dst_tile = s.dst_tile }
    | Recv r ->
        Recv
          {
            r with
            pending = Queue.copy r.pending;
            seen = Hashtbl.copy r.seen;
            seen_fifo = Queue.copy r.seen_fifo;
          }
    | Mpmc_recv mp ->
        Mpmc_recv
          {
            mp with
            mp_pending = Queue.copy mp.mp_pending;
            mp_seen = Hashtbl.copy mp.mp_seen;
            mp_seen_fifo = Queue.copy mp.mp_seen_fifo;
            mp_refunds = Hashtbl.copy mp.mp_refunds;
          }
    | Mem m -> Mem { m with mem_tile = m.mem_tile }
  in
  { cfg; owner = t.owner }

let pp fmt t =
  match t.cfg with
  | Invalid -> Format.pp_print_string fmt "invalid"
  | Send s ->
      Format.fprintf fmt "send[->t%d:ep%d credits=%d/%d owner=%a]" s.dst_tile
        s.dst_ep s.credits s.max_credits Dtu_types.pp_act t.owner
  | Recv r ->
      Format.fprintf fmt "recv[slots=%d occ=%d pending=%d owner=%a]" r.slots
        r.occupied (Queue.length r.pending) Dtu_types.pp_act t.owner
  | Mpmc_recv mp ->
      Format.fprintf fmt "mpmc[slots=%d occ=%d pending=%d refunds=%d owner=%a]"
        mp.mp_slots (mp_occupied mp)
        (Queue.length mp.mp_pending)
        mp.mp_refund_total Dtu_types.pp_act t.owner
  | Mem m ->
      Format.fprintf fmt "mem[t%d base=%#x size=%#x owner=%a]" m.mem_tile m.base
        m.mem_size Dtu_types.pp_act t.owner
