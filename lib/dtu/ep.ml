type send = {
  dst_tile : int;
  dst_ep : int;
  label : int;
  max_msg_size : int;
  max_credits : int;
  mutable credits : int;
}

type recv = {
  slots : int;
  slot_size : int;
  mutable occupied : int;
  pending : Msg.t Queue.t;
  (* Receiver-side dedup under fault injection: uids of recently delivered
     messages, bounded FIFO.  Unused (and empty) when faults are off. *)
  seen : (int, unit) Hashtbl.t;
  seen_fifo : int Queue.t;
}

let seen_cap = 256

let note_seen r uid =
  Hashtbl.replace r.seen uid ();
  Queue.add uid r.seen_fifo;
  if Queue.length r.seen_fifo > seen_cap then
    Hashtbl.remove r.seen (Queue.pop r.seen_fifo)

let seen_before r uid = Hashtbl.mem r.seen uid

type mem = {
  mem_tile : int;
  base : int;
  mem_size : int;
  perm : Dtu_types.perm;
}

type config = Invalid | Send of send | Recv of recv | Mem of mem
type t = { mutable cfg : config; mutable owner : Dtu_types.act_id }

let make_invalid () = { cfg = Invalid; owner = Dtu_types.invalid_act }

let send_config ~dst_tile ~dst_ep ?(label = 0) ~max_msg_size ~credits () =
  if credits <= 0 then invalid_arg "Ep.send_config: credits must be positive";
  Send { dst_tile; dst_ep; label; max_msg_size; max_credits = credits; credits }

let recv_config ~slots ~slot_size () =
  if slots <= 0 then invalid_arg "Ep.recv_config: slots must be positive";
  Recv
    {
      slots;
      slot_size;
      occupied = 0;
      pending = Queue.create ();
      seen = Hashtbl.create 8;
      seen_fifo = Queue.create ();
    }

let mem_config ~mem_tile ~base ~size ~perm =
  if size <= 0 || base < 0 then invalid_arg "Ep.mem_config: bad window";
  Mem { mem_tile; base; mem_size = size; perm }

let snapshot t =
  let cfg =
    match t.cfg with
    | Invalid -> Invalid
    | Send s -> Send { s with dst_tile = s.dst_tile }
    | Recv r ->
        Recv
          {
            r with
            pending = Queue.copy r.pending;
            seen = Hashtbl.copy r.seen;
            seen_fifo = Queue.copy r.seen_fifo;
          }
    | Mem m -> Mem { m with mem_tile = m.mem_tile }
  in
  { cfg; owner = t.owner }

let pp fmt t =
  match t.cfg with
  | Invalid -> Format.pp_print_string fmt "invalid"
  | Send s ->
      Format.fprintf fmt "send[->t%d:ep%d credits=%d/%d owner=%a]" s.dst_tile
        s.dst_ep s.credits s.max_credits Dtu_types.pp_act t.owner
  | Recv r ->
      Format.fprintf fmt "recv[slots=%d occ=%d pending=%d owner=%a]" r.slots
        r.occupied (Queue.length r.pending) Dtu_types.pp_act t.owner
  | Mem m ->
      Format.fprintf fmt "mem[t%d base=%#x size=%#x owner=%a]" m.mem_tile m.base
        m.mem_size Dtu_types.pp_act t.owner
