type data = ..
type data += Raw of bytes | Empty

let () =
  M3v_sim.Checkpoint.register_exts
    [ [%extension_constructor Raw]; [%extension_constructor Empty] ]

type t = {
  uid : int;
  src_tile : int;
  src_act : Dtu_types.act_id;
  src_send_ep : int option;
  label : int;
  reply_to : (int * int) option;
  size : int;
  data : data;
}

let header_bytes = 16

(* Wire-level sequence number: retransmitted copies of one logical message
   share a uid, so receivers can deduplicate.  Only equality of uids is
   ever observed, so allocation order does not leak into simulated time.
   Domain-local: a simulation run is confined to one domain, and equality
   within a run is all dedup needs, so per-domain counters are safe under
   parallel experiment sweeps. *)
let next_uid : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* Flow tracepoints embed uids as causal-flow ids, so a traced run must
   allocate them reproducibly: restart the counter whenever a trace sink
   is installed. *)
let () = M3v_obs.Trace.at_install (fun () -> Domain.DLS.get next_uid := 0)

(* Checkpoint/restore must capture the counter explicitly: it lives in
   domain-local storage, which [Marshal] does not traverse. *)
let uid_counter () = !(Domain.DLS.get next_uid)
let set_uid_counter v = Domain.DLS.get next_uid := v

let make ~src_tile ~src_act ?src_send_ep ?(label = 0) ?reply_to ~size data =
  if size < 0 then invalid_arg "Msg.make: negative size";
  let next = Domain.DLS.get next_uid in
  incr next;
  { uid = !next; src_tile; src_act; src_send_ep; label; reply_to; size; data }

let pp fmt t =
  Format.fprintf fmt "msg[from t%d/%a label=%d size=%d%s]" t.src_tile
    Dtu_types.pp_act t.src_act t.label t.size
    (match t.reply_to with
    | Some (tile, ep) -> Printf.sprintf " reply->t%d:ep%d" tile ep
    | None -> "")
