(** The vDTU's software-loaded TLB (paper, section 3.6).

    The vDTU never walks page tables: on a miss the command fails and the
    activity asks TileMux (via TMCall) to translate and insert the entry
    through the privileged interface.  Entries are tagged with the owning
    activity.  Eviction is FIFO. *)

type t

val create : capacity:int -> t
val capacity : t -> int

(** [lookup t ~act ~vpage ~write] returns the physical page if present with
    sufficient permission.  A present entry with insufficient permission
    fails the lookup but is counted as a permission upgrade, not a true
    miss. *)
val lookup : t -> act:Dtu_types.act_id -> vpage:int -> write:bool -> int option

val insert :
  t -> act:Dtu_types.act_id -> vpage:int -> ppage:int -> perm:Dtu_types.perm -> unit

type entry = { ppage : int; perm : Dtu_types.perm }

(** Live mappings of one activity, sorted by virtual page — migration
    re-installs them on the target DTU in deterministic order. *)
val entries_of_act : t -> Dtu_types.act_id -> (int * entry) list

(** Drop all entries of one activity (on activity exit).  Also purges the
    entries' keys from the eviction FIFO so it stays bounded by the
    capacity across activity switches. *)
val invalidate_act : t -> Dtu_types.act_id -> unit

(** Drop a single page mapping (on unmap/remap); purges the key from the
    eviction FIFO. *)
val invalidate_page : t -> act:Dtu_types.act_id -> vpage:int -> unit

val flush : t -> unit
val entry_count : t -> int

(** Length of the internal eviction FIFO; invariantly at most
    [entry_count], hence bounded by [capacity]. *)
val fifo_length : t -> int

type stats = {
  hits : int;
  misses : int;  (** true misses: no entry for (activity, page) *)
  perm_upgrades : int;
      (** failed lookups where the entry existed but lacked the required
          (write) permission *)
  evictions : int;
}

val stats : t -> stats
