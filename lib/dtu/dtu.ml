module Engine = M3v_sim.Engine
module Noc = M3v_noc.Noc
module Trace = M3v_obs.Trace
module Metrics = M3v_obs.Metrics
module Fault = M3v_fault.Fault
open Dtu_types

(* Causal-flow tracepoints: every message uid is a flow id, and each
   lifecycle point (issue → inject → deliver → fetch) is one flow event
   sharing the ("flow", "msg", uid) triple — Chrome/Perfetto match s/t/f
   arrows by that triple, so the point kind travels in args.  Replies
   carry a "req" arg naming the request uid, which lets the profiler pair
   the two legs of an RPC. *)

let flow_cat = "flow"
let flow_name = "msg"

let flow_issue ?req ~uid ~tile ~act ~ts () =
  let args =
    match req with
    | None -> [ ("kind", Trace.S "issue") ]
    | Some r -> [ ("kind", Trace.S "issue"); ("req", Trace.I r) ]
  in
  Trace.flow_start ~cat:flow_cat ~name:flow_name ~id:uid ~tile ~act ~ts ~args ()

let flow_inject ~uid ~tile ~act ~ts () =
  Trace.flow_step ~cat:flow_cat ~name:flow_name ~id:uid ~tile ~act ~ts
    ~args:[ ("kind", Trace.S "inject") ]
    ()

let flow_deliver ~uid ~tile ~act ~ts () =
  Trace.flow_step ~cat:flow_cat ~name:flow_name ~id:uid ~tile ~act ~ts
    ~args:[ ("kind", Trace.S "deliver") ]
    ()

let flow_fetch ~uid ~tile ~act ~ts () =
  Trace.flow_end ~cat:flow_cat ~name:flow_name ~id:uid ~tile ~act ~ts
    ~args:[ ("kind", Trace.S "fetch") ]
    ()

(* Metrics category label for a receive endpoint ("ep3"). *)
let ep_cat ep = "ep" ^ string_of_int ep

type completion = (unit, Dtu_types.error) result -> unit

type stats = {
  sends : int;
  replies : int;
  fetches : int;
  acks : int;
  dma_reads : int;
  dma_writes : int;
  dma_bytes : int;
  core_reqs : int;
  delivery_failures : int;
  translation_faults : int;
  retries : int;
  timeouts : int;
  dup_drops : int;
  mig_forwards : int;
  mpmc_deliveries : int;
  mpmc_doorbells_coalesced : int;
  mpmc_refund_flushes : int;
  mpmc_credits_refunded : int;
  credit_stalls : int;
}

let empty_stats =
  {
    sends = 0;
    replies = 0;
    fetches = 0;
    acks = 0;
    dma_reads = 0;
    dma_writes = 0;
    dma_bytes = 0;
    core_reqs = 0;
    delivery_failures = 0;
    translation_faults = 0;
    retries = 0;
    timeouts = 0;
    dup_drops = 0;
    mig_forwards = 0;
    mpmc_deliveries = 0;
    mpmc_doorbells_coalesced = 0;
    mpmc_refund_flushes = 0;
    mpmc_credits_refunded = 0;
    credit_stalls = 0;
  }

type t = {
  virtualized : bool;
  tile : int;
  engine : Engine.t;
  noc : Noc.t;
  eps : Ep.t array;
  tlb : Tlb.t;
  mutable cur : act_id;
  unread : (act_id, int ref) Hashtbl.t;
  core_reqs : act_id Queue.t;
  mutable core_req_irq : unit -> unit;
  mutable msg_arrived : act_id -> unit;
  mutable lookup_dtu : int -> t option;
  mutable lookup_mem : int -> Dram.t option;
  mutable stats : stats;
  (* One-entry cache for [get_owned_ep], keyed by (endpoint index, current
     activity).  Send/reply/fetch/ack hammer the same endpoint for the
     same activity, so the hit rate is high and a hit skips validation and
     the [Ok _] allocation.  Invalidated by the ext_* config writes; an
     activity switch misses naturally through the key. *)
  mutable ep_cache_idx : int; (* -1: empty *)
  mutable ep_cache_act : act_id;
  mutable ep_cache_res : (Ep.t, Dtu_types.error) result;
  (* Credit refunds that arrived while the target send endpoint was
     Invalid (a refund racing a snapshot/teardown window).  Keyed by
     endpoint index; applied when a send config is restored into that
     slot, discarded when the slot is reconfigured for a new purpose. *)
  pending_refunds : (int, int) Hashtbl.t;
  (* Migration forwarding pointers: after an activity migrates away, its
     old endpoint slots may still be named by in-flight packets and by
     peers whose send gates have not yet been retargeted.  [moved] maps
     such a slot to its new home; deliveries and credit grants landing on
     it are forwarded there (one extra NoC leg per hop).  An entry is
     cleared when the slot is reconfigured for a new purpose. *)
  moved : (int, int * int) Hashtbl.t;
}

(* Local command processing time inside the DTU's finite state machines
   (validation, register file access), independent of the core's MMIO cost
   which the tile runtime charges separately. *)
let cmd_process_ps = 10_000 (* 10 ns *)

(* Interval between a core-request acknowledgement and re-raising the
   interrupt for the next queued request. *)
let core_req_repost_ps = 5_000

let credit_packet_bytes = 8

let create ~virtualized ~tile ?(ep_count = 128) ?(tlb_capacity = 32) engine noc =
  {
    virtualized;
    tile;
    engine;
    noc;
    eps = Array.init ep_count (fun _ -> Ep.make_invalid ());
    tlb = Tlb.create ~capacity:tlb_capacity;
    cur = invalid_act;
    unread = Hashtbl.create 8;
    core_reqs = Queue.create ();
    core_req_irq = (fun () -> ());
    msg_arrived = (fun _ -> ());
    lookup_dtu = (fun _ -> None);
    lookup_mem = (fun _ -> None);
    stats = empty_stats;
    ep_cache_idx = -1;
    ep_cache_act = invalid_act;
    ep_cache_res = Error No_such_ep;
    pending_refunds = Hashtbl.create 8;
    moved = Hashtbl.create 4;
  }

let connect t ~lookup_dtu ~lookup_mem =
  t.lookup_dtu <- lookup_dtu;
  t.lookup_mem <- lookup_mem

let tile t = t.tile
let virtualized t = t.virtualized
let ep_count t = Array.length t.eps
let stats t = t.stats
let tlb t = t.tlb

let unread_cell t act =
  match Hashtbl.find_opt t.unread act with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.unread act r;
      r

let unread_of t act = !(unread_cell t act)
let cur_act t = t.cur
let cur_unread t = unread_of t t.cur

(* --- endpoint access helpers --- *)

let get_ep t ep =
  if ep < 0 || ep >= Array.length t.eps then Error No_such_ep
  else
    let e = t.eps.(ep) in
    match e.cfg with Ep.Invalid -> Error No_such_ep | _ -> Ok e

(* The vDTU hides endpoints of other activities behind the same error as an
   invalid endpoint (paper, section 3.5). *)
let get_owned_ep_slow t ep =
  match get_ep t ep with
  | Error _ as e -> e
  | Ok e ->
      if t.virtualized && e.Ep.owner <> t.cur then Error Unknown_ep else Ok e

let get_owned_ep t ep =
  if t.ep_cache_idx = ep && t.ep_cache_act = t.cur then t.ep_cache_res
  else begin
    let res = get_owned_ep_slow t ep in
    t.ep_cache_idx <- ep;
    t.ep_cache_act <- t.cur;
    t.ep_cache_res <- res;
    res
  end

let invalidate_ep_cache t = t.ep_cache_idx <- -1

(* TLB check for the local buffer of a command.  Only virtualized DTUs
   translate; plain DTUs (controller, memory, accelerator tiles) use
   physical addressing. *)
let check_vaddr t ~vaddr ~len ~write =
  match vaddr with
  | None -> Ok ()
  | Some addr ->
      if crosses_page addr len then Error Page_boundary
      else if not t.virtualized then Ok ()
      else
        let vpage = page_of_addr addr in
        (match Tlb.lookup t.tlb ~act:t.cur ~vpage ~write with
        | Some _ ->
            if Metrics.on () then
              Metrics.counter_incr ~name:"dtu/tlb_hit" ~tile:t.tile ();
            Ok ()
        | None ->
            t.stats <-
              { t.stats with translation_faults = t.stats.translation_faults + 1 };
            if Trace.on () then
              Trace.instant ~cat:"dtu" ~name:"tlb_fault" ~tile:t.tile ~act:t.cur
                ~ts:(Engine.now t.engine)
                ~args:[ ("vpage", Trace.I vpage) ]
                ();
            if Metrics.on () then
              Metrics.counter_incr ~name:"dtu/tlb_miss" ~tile:t.tile ();
            Error (Translation_fault vpage))

let complete_local t ~k result =
  Engine.after_apply t.engine ~delay:cmd_process_ps k result

(* Wrap a command's completion so the whole lifetime — issue to completion
   acknowledgement — shows up as one span, and its duration feeds the
   per-command latency histogram.  Identity when tracing is off. *)
let traced_completion t ~name ~k =
  if not (Trace.on () || Metrics.on ()) then k
  else begin
    let ts = Engine.now t.engine in
    let act = t.cur in
    fun result ->
      let dur = Engine.now t.engine - ts in
      if Trace.on () then begin
        Trace.complete ~cat:"dtu" ~name ~tile:t.tile ~act ~ts ~dur
          ~args:
            [
              ( "result",
                Trace.S
                  (match result with
                  | Ok () -> "ok"
                  | Error e -> error_to_string e) );
            ]
          ();
        Trace.latency_int ("dtu/" ^ name) dur
      end;
      if Metrics.on () then
        Metrics.observe ~name:"dtu/cmd_ps" ~tile:t.tile ~cat:name
          (float_of_int dur);
      k result
  end

(* --- delivery at the destination DTU --- *)

let push_core_req dst act =
  let was_empty = Queue.is_empty dst.core_reqs in
  Queue.add act dst.core_reqs;
  dst.stats <- { dst.stats with core_reqs = dst.stats.core_reqs + 1 };
  if Trace.on () then
    Trace.instant ~cat:"dtu" ~name:"core_req" ~tile:dst.tile ~act
      ~ts:(Engine.now dst.engine)
      ~args:[ ("depth", Trace.I (Queue.length dst.core_reqs)) ]
      ();
  if was_empty then dst.core_req_irq ()

(* [deliver dst msg ~dst_ep] stores [msg] in the receive buffer.  On a vDTU
   this always succeeds while a slot is free, independent of whether the
   owner is running — the defining difference from M3x (paper, section
   3.8).  Returns [Ok true] for a fresh delivery and [Ok false] for a
   retransmitted/duplicated copy of a message already delivered: the copy
   is dropped without consuming a slot, but the sender still gets its
   completion acknowledgement. *)
let deliver dst ~dst_ep (msg : Msg.t) =
  match get_ep dst dst_ep with
  | Error _ -> Error Recv_gone
  | Ok e -> (
      match e.Ep.cfg with
      | Ep.Recv r ->
          if Fault.on () && Ep.seen_before r msg.Msg.uid then begin
            dst.stats <- { dst.stats with dup_drops = dst.stats.dup_drops + 1 };
            if Trace.on () then
              Trace.instant ~cat:"dtu" ~name:"dup_drop" ~tile:dst.tile
                ~act:e.Ep.owner
                ~ts:(Engine.now dst.engine)
                ~args:[ ("ep", Trace.I dst_ep) ]
                ();
            Ok false
          end
          else if r.Ep.occupied >= r.Ep.slots then Error Recv_gone
          else if msg.Msg.size + Msg.header_bytes > r.Ep.slot_size then
            Error Recv_gone
          else begin
            Queue.add msg r.Ep.pending;
            r.Ep.occupied <- r.Ep.occupied + 1;
            if Fault.on () then Ep.note_seen r msg.Msg.uid;
            let owner = e.Ep.owner in
            if Trace.on () then
              flow_deliver ~uid:msg.Msg.uid ~tile:dst.tile ~act:owner
                ~ts:(Engine.now dst.engine) ();
            if Metrics.on () then
              Metrics.gauge_set ~name:"dtu/rbuf_occupancy" ~tile:dst.tile
                ~cat:(ep_cat dst_ep)
                ~ts:(Engine.now dst.engine)
                (float_of_int r.Ep.occupied);
            if dst.virtualized then begin
              incr (unread_cell dst owner);
              if owner <> dst.cur then push_core_req dst owner
            end;
            dst.msg_arrived owner;
            Ok true
          end
      | Ep.Mpmc_recv mp ->
          if Fault.on () && Ep.mp_seen_before mp msg.Msg.uid then begin
            dst.stats <- { dst.stats with dup_drops = dst.stats.dup_drops + 1 };
            if Trace.on () then
              Trace.instant ~cat:"dtu" ~name:"dup_drop" ~tile:dst.tile
                ~act:e.Ep.owner
                ~ts:(Engine.now dst.engine)
                ~args:[ ("ep", Trace.I dst_ep) ]
                ();
            Ok false
          end
          else if Ep.mp_occupied mp >= mp.Ep.mp_slots then Error Recv_gone
          else if msg.Msg.size + Msg.header_bytes > mp.Ep.mp_slot_size then
            Error Recv_gone
          else begin
            (* Slot reservation: bump the head counter (atomic in the
               discrete-event simulation) — N producers share one ring. *)
            let was_empty = Queue.is_empty mp.Ep.mp_pending in
            Queue.add msg mp.Ep.mp_pending;
            mp.Ep.mp_head <- mp.Ep.mp_head + 1;
            if Fault.on () then Ep.mp_note_seen mp msg.Msg.uid;
            dst.stats <-
              {
                dst.stats with
                mpmc_deliveries = dst.stats.mpmc_deliveries + 1;
              };
            let owner = e.Ep.owner in
            if Trace.on () then
              flow_deliver ~uid:msg.Msg.uid ~tile:dst.tile ~act:owner
                ~ts:(Engine.now dst.engine) ();
            if Metrics.on () then
              Metrics.gauge_set ~name:"dtu/mpmc_occupancy" ~tile:dst.tile
                ~cat:(ep_cat dst_ep)
                ~ts:(Engine.now dst.engine)
                (float_of_int (Ep.mp_occupied mp));
            if dst.virtualized then incr (unread_cell dst owner);
            (* Doorbell coalescing: only the empty→non-empty transition
               raises a doorbell; arrivals behind an undrained queue are
               absorbed by it (the consumer drains until empty before
               blocking, and the per-message unread counters keep the
               lost-wakeup net intact). *)
            if was_empty then begin
              if dst.virtualized && owner <> dst.cur then
                push_core_req dst owner;
              dst.msg_arrived owner
            end
            else begin
              dst.stats <-
                {
                  dst.stats with
                  mpmc_doorbells_coalesced =
                    dst.stats.mpmc_doorbells_coalesced + 1;
                };
              if Metrics.on () then
                Metrics.counter_incr ~name:"dtu/mpmc_doorbell_coalesced"
                  ~tile:dst.tile ()
            end;
            Ok true
          end
      | Ep.Invalid | Ep.Send _ | Ep.Mem _ -> Error Recv_gone)

(* Grant [n] credits back to the send endpoint [ep] on [dst_dtu].  Grants
   beyond [max_credits] are dropped (the endpoint was reset to full by a
   crash-teardown reclaim in the meantime).  If the endpoint is Invalid the
   refund is parked in [pending_refunds]: a restore of the saved send
   config re-applies it, while a reconfiguration discards it — either way
   no credit is minted for the wrong endpoint. *)
let rec restore_credit_n dst_dtu ~ep n =
  if n > 0 && ep >= 0 && ep < Array.length dst_dtu.eps then
    match dst_dtu.eps.(ep).Ep.cfg with
    | Ep.Send s ->
        s.Ep.credits <- min s.Ep.max_credits (s.Ep.credits + n);
        Ep.check_credits ~ctx:"restore_credit" s
    | Ep.Invalid -> (
        match Hashtbl.find_opt dst_dtu.moved ep with
        | Some (fwd_tile, fwd_ep) ->
            (* The owner migrated away: the grant chases it over the
               lossless sideband instead of parking at the dead slot. *)
            dst_dtu.stats <-
              {
                dst_dtu.stats with
                mig_forwards = dst_dtu.stats.mig_forwards + 1;
              };
            Noc.send dst_dtu.noc ~src:dst_dtu.tile ~dst:fwd_tile
              ~bytes:credit_packet_bytes ~on_delivered:(fun () ->
                match dst_dtu.lookup_dtu fwd_tile with
                | Some fwd -> restore_credit_n fwd ~ep:fwd_ep n
                | None -> ())
        | None ->
            let cur =
              Option.value
                (Hashtbl.find_opt dst_dtu.pending_refunds ep)
                ~default:0
            in
            Hashtbl.replace dst_dtu.pending_refunds ep (cur + n))
    | Ep.Recv _ | Ep.Mpmc_recv _ | Ep.Mem _ -> ()

let restore_credit dst_dtu ~ep = restore_credit_n dst_dtu ~ep 1

(* --- retransmission ---

   Data-plane packets are best-effort under fault injection, so every
   command that crosses the NoC runs inside a retransmit ladder: if no
   completion acknowledgement arrives within an exponentially growing
   window the command is reissued (same message uid, so the receiver
   deduplicates), and once the budget is exhausted it completes with
   [Timeout].  The ladder is armed only while a fault plan is installed;
   with faults off the first attempt is the only one and no timer is
   created, keeping the fault-free timeline untouched. *)

let retry_base_ps = 2_000_000 (* 2 us: many worst-case NoC round trips *)
let max_retries = 6

(* [with_retries t ~name ~k ~attempt] runs [attempt] under the ladder.
   [attempt] receives [finish] (completes the command at most once; late
   and duplicated completions are ignored) and [active] (false once the
   command completed: in-flight copies of a closed transaction are
   discarded at arrival so they cannot perturb endpoint state that has
   already been settled, e.g. refunded credits). *)
let with_retries t ~name ~k ~attempt =
  let done_ = ref false in
  let finish result =
    if not !done_ then begin
      done_ := true;
      k result
    end
  in
  let active () = not !done_ in
  let rec go n =
    if not !done_ then begin
      if Fault.on () then
        Engine.after t.engine ~delay:(retry_base_ps * (1 lsl n)) (fun () ->
            if not !done_ then
              if n >= max_retries then begin
                t.stats <- { t.stats with timeouts = t.stats.timeouts + 1 };
                if Trace.on () then
                  Trace.instant ~cat:"dtu" ~name:(name ^ "_timeout")
                    ~tile:t.tile
                    ~ts:(Engine.now t.engine)
                    ();
                finish (Error Timeout)
              end
              else begin
                t.stats <- { t.stats with retries = t.stats.retries + 1 };
                if Trace.on () then
                  Trace.instant ~cat:"dtu" ~name:"retransmit" ~tile:t.tile
                    ~ts:(Engine.now t.engine)
                    ~args:[ ("cmd", Trace.S name); ("try", Trace.I (n + 1)) ]
                    ();
                go (n + 1)
              end);
      (* A transient command glitch loses this attempt on the floor; the
         ladder reissues it. *)
      if Fault.on () && Fault.cmd_fails ~now:(Engine.now t.engine) ~tile:t.tile
      then ()
      else attempt ~active ~finish
    end
  in
  go 0

(* --- unprivileged commands --- *)

(* Deliver [msg] at [dst_tile:dst_ep], chasing migration forwarding
   pointers.  [k ~from result] receives the tile that terminated the chase
   (completion acknowledgements travel from there directly back to the
   sender).  Each hop re-emits the packet on the lossless sideband — it
   already survived its data-plane crossing, and the forwarding DTU holds
   it like a store-and-forward switch — so chasing cannot lose a message
   the sender was told arrived.  [active] abandons the chase once the
   surrounding command has completed. *)
let fwd_max_hops = 4

let deliver_chased t ~dst_tile ~dst_ep ~bytes ~active (msg : Msg.t) k =
  let rec go tile ep hops =
    if active () then
      match t.lookup_dtu tile with
      | None -> k ~from:tile (Error Recv_gone)
      | Some dst -> (
          match Hashtbl.find_opt dst.moved ep with
          | Some (fwd_tile, fwd_ep) when hops > 0 ->
              dst.stats <-
                { dst.stats with mig_forwards = dst.stats.mig_forwards + 1 };
              if Trace.on () then
                Trace.instant ~cat:"dtu" ~name:"mig_forward" ~tile
                  ~ts:(Engine.now dst.engine)
                  ~args:[ ("ep", Trace.I ep); ("to", Trace.I fwd_tile) ]
                  ();
              Noc.send t.noc ~src:tile ~dst:fwd_tile ~bytes
                ~on_delivered:(fun () -> go fwd_tile fwd_ep (hops - 1))
          | _ -> k ~from:tile (deliver dst ~dst_ep:ep msg))
  in
  go dst_tile dst_ep fwd_max_hops

let transmit t ~dst_tile ~dst_ep ~(msg : Msg.t) ~on_credit_fail ~k =
  let bytes = msg.Msg.size + Msg.header_bytes in
  (* Any terminal failure — receiver gone, buffer full, retransmit budget
     exhausted — refunds the consumed credit.  For [Timeout] this is
     credit-safe because completion acknowledgements ride the lossless
     control sideband: had any copy occupied a slot, its ack would have
     completed the command. *)
  let k = function
    | Ok () -> k (Ok ())
    | Error e ->
        t.stats <-
          { t.stats with delivery_failures = t.stats.delivery_failures + 1 };
        on_credit_fail ();
        k (Error e)
  in
  with_retries t ~name:"send" ~k ~attempt:(fun ~active ~finish ->
      Noc.send ~kind:Noc.Data t.noc ~src:t.tile ~dst:dst_tile ~bytes
        ~on_delivered:(fun () ->
          if active () then
            deliver_chased t ~dst_tile ~dst_ep ~bytes ~active msg
              (fun ~from result ->
                (* Completion acknowledgement back to the sending DTU from
                   whichever tile terminated the chase (also for
                   deduplicated copies: the sender may have missed the
                   first ack). *)
                let res =
                  match result with Ok _fresh -> Ok () | Error _ -> Error Recv_gone
                in
                Noc.send t.noc ~src:from ~dst:t.tile
                  ~bytes:credit_packet_bytes ~on_delivered:(fun () ->
                    finish res))))

let send t ~ep ?reply_ep ?src_vaddr ?issue_ts ~msg_size data ~k =
  t.stats <- { t.stats with sends = t.stats.sends + 1 };
  let k = traced_completion t ~name:"send" ~k in
  match get_owned_ep t ep with
  | Error e -> complete_local t ~k (Error e)
  | Ok e -> (
      match e.Ep.cfg with
      | Ep.Send s -> (
          if msg_size > s.Ep.max_msg_size then
            complete_local t ~k (Error Msg_too_large)
          else
            match check_vaddr t ~vaddr:src_vaddr ~len:msg_size ~write:false with
            | Error err -> complete_local t ~k (Error err)
            | Ok () ->
                if s.Ep.credits <= 0 then begin
                  t.stats <-
                    { t.stats with credit_stalls = t.stats.credit_stalls + 1 };
                  if Metrics.on () then
                    Metrics.counter_incr ~name:"dtu/credit_stall" ~tile:t.tile
                      ();
                  complete_local t ~k (Error No_credits)
                end
                else begin
                  s.Ep.credits <- s.Ep.credits - 1;
                  Ep.check_credits ~ctx:"send" s;
                  let reply_to =
                    match reply_ep with
                    | Some rep -> Some (t.tile, rep)
                    | None -> None
                  in
                  let msg =
                    Msg.make ~src_tile:t.tile ~src_act:t.cur ~src_send_ep:ep
                      ~label:s.Ep.label ?reply_to ~size:msg_size data
                  in
                  if Trace.on () then begin
                    let now = Engine.now t.engine in
                    (* [issue_ts] is when the software issued the command
                       (before MMIO overhead and credit-stall spins), so
                       the profiler's sender_cmd segment covers them. *)
                    flow_issue ~uid:msg.Msg.uid ~tile:t.tile ~act:t.cur
                      ~ts:(Option.value issue_ts ~default:now)
                      ();
                    flow_inject ~uid:msg.Msg.uid ~tile:t.tile ~act:t.cur
                      ~ts:now ()
                  end;
                  transmit t ~dst_tile:s.Ep.dst_tile ~dst_ep:s.Ep.dst_ep ~msg
                    ~on_credit_fail:(fun () ->
                      if s.Ep.credits < s.Ep.max_credits then
                        s.Ep.credits <- s.Ep.credits + 1;
                      Ep.check_credits ~ctx:"send_refund" s)
                    ~k
                end)
      | Ep.Invalid | Ep.Recv _ | Ep.Mpmc_recv _ | Ep.Mem _ ->
          complete_local t ~k (Error Wrong_ep_type))

(* Free the receive slot a fetched message occupied.  The endpoint must be
   owned by the current activity (the vDTU hides foreign endpoints, paper
   section 3.5), and a slot can only be freed once: a second ack of the
   same message fails with [Recv_gone] instead of silently minting a send
   credit. *)
let free_slot t ~ep (msg : Msg.t) =
  match get_owned_ep t ep with
  | Ok { Ep.cfg = Ep.Recv r; _ } ->
      ignore msg;
      if r.Ep.occupied > 0 then begin
        r.Ep.occupied <- r.Ep.occupied - 1;
        if Metrics.on () then
          Metrics.gauge_set ~name:"dtu/rbuf_occupancy" ~tile:t.tile
            ~cat:(ep_cat ep)
            ~ts:(Engine.now t.engine)
            (float_of_int r.Ep.occupied);
        Ok ()
      end
      else Error Recv_gone
  | Ok _ -> Error Wrong_ep_type
  | Error e -> Error e

(* Flush the batched credit refunds accumulated at an MPMC endpoint: one
   credit packet per sender instead of one per message.  Entries are
   emitted in (tile, send_ep) order so the NoC timeline is independent of
   hash-table iteration order (required for --jobs byte-identity). *)
let mpmc_flush_refunds t (mp : Ep.mpmc) =
  if mp.Ep.mp_refund_total > 0 then begin
    let entries =
      Hashtbl.fold (fun key n acc -> (key, n) :: acc) mp.Ep.mp_refunds []
      |> List.sort compare
    in
    Hashtbl.reset mp.Ep.mp_refunds;
    mp.Ep.mp_refund_total <- 0;
    List.iter
      (fun ((src_tile, sep), n) ->
        t.stats <-
          {
            t.stats with
            mpmc_refund_flushes = t.stats.mpmc_refund_flushes + 1;
            mpmc_credits_refunded = t.stats.mpmc_credits_refunded + n;
          };
        if Metrics.on () then
          Metrics.counter_incr ~name:"dtu/mpmc_refund_flush" ~tile:t.tile ();
        (* Credit grants ride the lossless control sideband, like acks. *)
        Noc.send t.noc ~src:t.tile ~dst:src_tile ~bytes:credit_packet_bytes
          ~on_delivered:(fun () ->
            match t.lookup_dtu src_tile with
            | Some src_dtu -> restore_credit_n src_dtu ~ep:sep n
            | None -> ()))
      entries
  end

(* Release one MPMC ring slot and queue the sender's credit refund; the
   refund batch flushes when it reaches [mp_ack_batch] or the ring drains
   (so a quiescent sender is never starved of its credits). *)
let mpmc_free t ~ep (mp : Ep.mpmc) (msg : Msg.t) =
  if Ep.mp_occupied mp <= 0 then Error Recv_gone
  else begin
    mp.Ep.mp_tail <- mp.Ep.mp_tail + 1;
    if Metrics.on () then
      Metrics.gauge_set ~name:"dtu/mpmc_occupancy" ~tile:t.tile ~cat:(ep_cat ep)
        ~ts:(Engine.now t.engine)
        (float_of_int (Ep.mp_occupied mp));
    (match msg.Msg.src_send_ep with
    | Some sep ->
        let key = (msg.Msg.src_tile, sep) in
        let cur = Option.value (Hashtbl.find_opt mp.Ep.mp_refunds key) ~default:0 in
        Hashtbl.replace mp.Ep.mp_refunds key (cur + 1);
        mp.Ep.mp_refund_total <- mp.Ep.mp_refund_total + 1
    | None -> ());
    if mp.Ep.mp_refund_total >= mp.Ep.mp_ack_batch || Ep.mp_occupied mp = 0 then
      mpmc_flush_refunds t mp;
    Ok ()
  end

let reply t ~recv_ep ~to_msg ?src_vaddr ?issue_ts ~msg_size data ~k =
  t.stats <- { t.stats with replies = t.stats.replies + 1 };
  let k = traced_completion t ~name:"reply" ~k in
  match get_owned_ep t recv_ep with
  | Error e -> complete_local t ~k (Error e)
  | Ok { Ep.cfg = Ep.Invalid | Ep.Send _ | Ep.Mem _; _ } ->
      complete_local t ~k (Error Wrong_ep_type)
  | Ok ({ Ep.cfg = Ep.Recv _ | Ep.Mpmc_recv _; _ } as rep) -> (
  match to_msg.Msg.reply_to with
  | None -> complete_local t ~k (Error Recv_gone)
  | Some (dst_tile, dst_ep) -> (
      match check_vaddr t ~vaddr:src_vaddr ~len:msg_size ~write:false with
      | Error err -> complete_local t ~k (Error err)
      | Ok () ->
          (* REPLY implicitly acknowledges the request: the slot frees and
             the sender's credit returns piggybacked on the reply.  If the
             slot was already freed (the message was acked separately) no
             credit may travel back a second time.  On an MPMC endpoint the
             refund instead joins the ack batch — nothing piggybacks. *)
          let freed =
            match rep.Ep.cfg with
            | Ep.Mpmc_recv mp -> (
                match mpmc_free t ~ep:recv_ep mp to_msg with
                | Ok () -> false (* refund handled by the batched path *)
                | Error _ -> false)
            | _ -> (
                match free_slot t ~ep:recv_ep to_msg with
                | Ok () -> true
                | Error _ -> false)
          in
          let msg =
            Msg.make ~src_tile:t.tile ~src_act:t.cur ~label:to_msg.Msg.label
              ~size:msg_size data
          in
          if Trace.on () then begin
            let now = Engine.now t.engine in
            flow_issue ~req:to_msg.Msg.uid ~uid:msg.Msg.uid ~tile:t.tile
              ~act:t.cur
              ~ts:(Option.value issue_ts ~default:now)
              ();
            flow_inject ~uid:msg.Msg.uid ~tile:t.tile ~act:t.cur ~ts:now ()
          end;
          let credit_ep = if freed then to_msg.Msg.src_send_ep else None in
          let bytes = msg_size + Msg.header_bytes in
          (* The piggybacked credit is restored the first time any copy of
             the reply reaches the requester's DTU; deduplicated copies
             must not mint another one. *)
          let credited = ref false in
          let restore_once dst =
            if not !credited then begin
              credited := true;
              match credit_ep with
              | Some cep -> restore_credit dst ~ep:cep
              | None -> ()
            end
          in
          let k = function
            | Ok () -> k (Ok ())
            | Error e ->
                (* A reply that exhausted its retransmit budget never
                   reached the requester, so the piggybacked credit was
                   never granted.  Credit state is control-plane: re-issue
                   the grant over the lossless sideband, or the
                   requester's send gate wedges with zero credits.
                   [restore_once] keeps a late-delivered copy from minting
                   a second credit. *)
                (match t.lookup_dtu dst_tile with
                | Some dst -> restore_once dst
                | None -> ());
                t.stats <-
                  {
                    t.stats with
                    delivery_failures = t.stats.delivery_failures + 1;
                  };
                k (Error e)
          in
          with_retries t ~name:"reply" ~k ~attempt:(fun ~active ~finish ->
              Noc.send ~kind:Noc.Data t.noc ~src:t.tile ~dst:dst_tile ~bytes
                ~on_delivered:(fun () ->
                  if active () then
                    deliver_chased t ~dst_tile ~dst_ep ~bytes ~active msg
                      (fun ~from result ->
                        (* The piggybacked credit restores at the tile
                           that terminated the chase: if the requester
                           migrated, its send endpoint lives there now
                           (and [restore_credit_n] chases any further
                           moves over the sideband). *)
                        let restore_at_final () =
                          match t.lookup_dtu from with
                          | Some dst -> restore_once dst
                          | None -> ()
                        in
                        match result with
                        | Ok fresh ->
                            if fresh then restore_at_final ();
                            Noc.send t.noc ~src:from ~dst:t.tile
                              ~bytes:credit_packet_bytes
                              ~on_delivered:(fun () -> finish (Ok ()))
                        | Error e ->
                            restore_at_final ();
                            Noc.send t.noc ~src:from ~dst:t.tile
                              ~bytes:credit_packet_bytes
                              ~on_delivered:(fun () -> finish (Error e)))))))

let fetch t ~ep =
  t.stats <- { t.stats with fetches = t.stats.fetches + 1 };
  match get_owned_ep t ep with
  | Error e -> Error e
  | Ok e -> (
      match e.Ep.cfg with
      | Ep.Recv r -> (
          match Queue.take_opt r.Ep.pending with
          | None -> Ok None
          | Some msg ->
              if t.virtualized then begin
                let cell = unread_cell t e.Ep.owner in
                if !cell > 0 then decr cell
              end;
              if Trace.on () then begin
                let now = Engine.now t.engine in
                Trace.instant ~cat:"dtu" ~name:"fetch" ~tile:t.tile ~act:t.cur
                  ~ts:now
                  ~args:[ ("ep", Trace.I ep) ]
                  ();
                flow_fetch ~uid:msg.Msg.uid ~tile:t.tile ~act:t.cur ~ts:now ()
              end;
              Ok (Some msg))
      | Ep.Mpmc_recv mp -> (
          match Queue.take_opt mp.Ep.mp_pending with
          | None -> Ok None
          | Some msg ->
              if t.virtualized then begin
                let cell = unread_cell t e.Ep.owner in
                if !cell > 0 then decr cell
              end;
              if Trace.on () then begin
                let now = Engine.now t.engine in
                Trace.instant ~cat:"dtu" ~name:"fetch" ~tile:t.tile ~act:t.cur
                  ~ts:now
                  ~args:[ ("ep", Trace.I ep) ]
                  ();
                flow_fetch ~uid:msg.Msg.uid ~tile:t.tile ~act:t.cur ~ts:now ()
              end;
              Ok (Some msg))
      | Ep.Invalid | Ep.Send _ | Ep.Mem _ -> Error Wrong_ep_type)

let ack t ~ep msg =
  t.stats <- { t.stats with acks = t.stats.acks + 1 };
  let traced () =
    if Trace.on () then
      Trace.instant ~cat:"dtu" ~name:"ack" ~tile:t.tile ~act:t.cur
        ~ts:(Engine.now t.engine)
        ~args:[ ("ep", Trace.I ep) ]
        ()
  in
  match get_owned_ep t ep with
  | Ok { Ep.cfg = Ep.Mpmc_recv mp; _ } -> (
      (* Batched path: the slot releases immediately, the credit refund
         coalesces with other acks instead of sending a packet per ack. *)
      match mpmc_free t ~ep mp msg with
      | Error e -> Error e
      | Ok () ->
          traced ();
          Ok ())
  | Ok _ | Error _ -> (
      match free_slot t ~ep msg with
      | Error e -> Error e
      | Ok () ->
          traced ();
          (match msg.Msg.src_send_ep with
          | Some sep ->
              (* Return the credit to the sending DTU. *)
              Noc.send t.noc ~src:t.tile ~dst:msg.Msg.src_tile
                ~bytes:credit_packet_bytes ~on_delivered:(fun () ->
                  match t.lookup_dtu msg.Msg.src_tile with
                  | Some src_dtu -> restore_credit src_dtu ~ep:sep
                  | None -> ())
          | None -> ());
          Ok ())

let has_msgs t ~ep =
  match get_owned_ep t ep with
  | Ok { Ep.cfg = Ep.Recv r; _ } -> not (Queue.is_empty r.Ep.pending)
  | Ok { Ep.cfg = Ep.Mpmc_recv mp; _ } -> not (Queue.is_empty mp.Ep.mp_pending)
  | Ok _ | Error _ -> false

(* Whether [ep] is configured as an MPMC receive endpoint (any owner); the
   tile runtime uses this to charge the cheaper ack cost — releasing an
   MPMC slot is a single MMIO tail-counter store, not a full command. *)
let is_mpmc t ~ep =
  ep >= 0
  && ep < Array.length t.eps
  && match t.eps.(ep).Ep.cfg with Ep.Mpmc_recv _ -> true | _ -> false

(* --- DMA --- *)

let dma t ~ep ~off ~len ~vaddr ~write ~k ~action =
  let k =
    traced_completion t ~name:(if write then "dma_write" else "dma_read") ~k
  in
  let record () =
    if write then
      t.stats <-
        {
          t.stats with
          dma_writes = t.stats.dma_writes + 1;
          dma_bytes = t.stats.dma_bytes + len;
        }
    else
      t.stats <-
        {
          t.stats with
          dma_reads = t.stats.dma_reads + 1;
          dma_bytes = t.stats.dma_bytes + len;
        }
  in
  match get_owned_ep t ep with
  | Error e -> complete_local t ~k (Error e)
  | Ok e -> (
      match e.Ep.cfg with
      | Ep.Mem m ->
          let perm_ok =
            if write then perm_allows_write m.Ep.perm
            else perm_allows_read m.Ep.perm
          in
          if not perm_ok then complete_local t ~k (Error No_perm)
          else if off < 0 || len < 0 || off + len > m.Ep.mem_size then
            complete_local t ~k (Error Out_of_bounds)
          else (
            (* The local buffer must stay within one page; the vDTU checks
               its TLB once per command (paper, section 3.6). *)
            match check_vaddr t ~vaddr ~len ~write:(not write) with
            | Error err -> complete_local t ~k (Error err)
            | Ok () -> (
                match t.lookup_mem m.Ep.mem_tile with
                | None -> complete_local t ~k (Error Out_of_bounds)
                | Some dram ->
                    record ();
                    let phys_off = m.Ep.base + off in
                    (* Request travels to the memory tile, the DRAM access
                       is serialized there, and the data crosses the NoC in
                       whichever direction the command needs.  Both legs
                       are data-plane packets; the command is idempotent
                       (same bytes, same window), so a retried attempt may
                       repeat the DRAM access safely. *)
                    let request_bytes = if write then len + 16 else 16 in
                    with_retries t ~name:(if write then "dma_write" else "dma_read")
                      ~k ~attempt:(fun ~active ~finish ->
                        Noc.send ~kind:Noc.Data t.noc ~src:t.tile
                          ~dst:m.Ep.mem_tile ~bytes:request_bytes
                          ~on_delivered:(fun () ->
                            if active () then
                              let done_at =
                                Dram.access_time dram
                                  ~now:(Engine.now t.engine) ~bytes:len
                              in
                              Engine.at t.engine ~time:done_at (fun () ->
                                  if active () then begin
                                    action dram ~phys_off;
                                    let response_bytes =
                                      if write then 8 else len + 8
                                    in
                                    Noc.send ~kind:Noc.Data t.noc
                                      ~src:m.Ep.mem_tile ~dst:t.tile
                                      ~bytes:response_bytes
                                      ~on_delivered:(fun () -> finish (Ok ()))
                                  end)))))
      | Ep.Invalid | Ep.Send _ | Ep.Recv _ | Ep.Mpmc_recv _ ->
          complete_local t ~k (Error Wrong_ep_type))

let mem_read t ~ep ~off ~len ~dst_vaddr ~dst ~dst_off ~k =
  dma t ~ep ~off ~len ~vaddr:dst_vaddr ~write:false ~k
    ~action:(fun dram ~phys_off ->
      Dram.read_into dram ~off:phys_off ~dst ~dst_off ~len)

let mem_write t ~ep ~off ~len ~src_vaddr ~src ~src_off ~k =
  dma t ~ep ~off ~len ~vaddr:src_vaddr ~write:true ~k
    ~action:(fun dram ~phys_off ->
      Dram.write dram ~off:phys_off ~src ~src_off ~len)

(* --- privileged interface --- *)

let switch_act t ~next =
  let old = t.cur in
  let old_unread = unread_of t old in
  t.cur <- next;
  (old, old_unread)

let tlb_insert t ~act ~vpage ~ppage ~perm = Tlb.insert t.tlb ~act ~vpage ~ppage ~perm
let tlb_invalidate_act t act = Tlb.invalidate_act t.tlb act
let tlb_invalidate_page t ~act ~vpage = Tlb.invalidate_page t.tlb ~act ~vpage
let fetch_core_req t = Queue.peek_opt t.core_reqs

let ack_core_req t =
  ignore (Queue.take_opt t.core_reqs);
  if not (Queue.is_empty t.core_reqs) then
    Engine.after t.engine ~delay:core_req_repost_ps (fun () ->
        if not (Queue.is_empty t.core_reqs) then t.core_req_irq ())

let core_req_depth t = Queue.length t.core_reqs
let set_core_req_irq t f = t.core_req_irq <- f
let set_msg_arrived t f = t.msg_arrived <- f

(* --- external interface --- *)

let check_ep_index t ep =
  if ep < 0 || ep >= Array.length t.eps then
    invalid_arg (Printf.sprintf "Dtu: endpoint %d out of range" ep)

let ext_config t ~ep ~owner cfg =
  check_ep_index t ep;
  (* Configs arriving over the external interface must satisfy the credit
     and occupancy invariants — a restore path must not resurrect an
     endpoint with credits > max_credits. *)
  Ep.validate_config ~ctx:"ext_config" cfg;
  invalidate_ep_cache t;
  (* Reconfiguring the slot for a new purpose discards refunds parked for
     its previous incarnation: a revoke racing an in-flight refund must
     not mint credits for the new endpoint.  Likewise a stale migration
     forwarding pointer must not hijack the new endpoint's traffic. *)
  Hashtbl.remove t.pending_refunds ep;
  Hashtbl.remove t.moved ep;
  t.eps.(ep).Ep.cfg <- cfg;
  t.eps.(ep).Ep.owner <- owner

let ext_invalidate t ~ep =
  check_ep_index t ep;
  invalidate_ep_cache t;
  Hashtbl.remove t.pending_refunds ep;
  Hashtbl.remove t.moved ep;
  t.eps.(ep).Ep.cfg <- Ep.Invalid;
  t.eps.(ep).Ep.owner <- invalid_act

let ext_read_ep t ~ep =
  check_ep_index t ep;
  Ep.snapshot t.eps.(ep)

let ext_snapshot_eps t ~first ~count =
  check_ep_index t first;
  check_ep_index t (first + count - 1);
  Array.init count (fun i -> Ep.snapshot t.eps.(first + i))

let ext_restore_eps t ~first eps =
  invalidate_ep_cache t;
  Array.iteri
    (fun i saved ->
      let idx = first + i in
      check_ep_index t idx;
      Ep.validate_config ~ctx:"ext_restore_eps" saved.Ep.cfg;
      (* The slot is live again: a forwarding pointer left behind when a
         previous tenant vacated it must not hijack (and ping-pong) the
         restored endpoint's traffic.  Without this, the third hop of a
         migration that revisits a tile chases stale [moved] entries in a
         cycle until the hop budget runs out and delivers wherever the
         chase happens to stop. *)
      Hashtbl.remove t.moved idx;
      t.eps.(idx) <- Ep.snapshot saved;
      (* A refund that arrived while this slot sat Invalid (saved but not
         yet restored) was parked; re-apply it now so the restored send
         endpoint is not short of credits, capped at max_credits. *)
      match t.eps.(idx).Ep.cfg with
      | Ep.Send s -> (
          match Hashtbl.find_opt t.pending_refunds idx with
          | Some n ->
              Hashtbl.remove t.pending_refunds idx;
              s.Ep.credits <- min s.Ep.max_credits (s.Ep.credits + n);
              Ep.check_credits ~ctx:"ext_restore_eps" s
          | None -> ())
      | _ -> Hashtbl.remove t.pending_refunds idx)
    eps

let ext_inject t ~ep msg =
  (* Externally injected messages (kernel upcalls, NIC receive path) have
     no DTU SEND: their flow starts at the injection itself, so the
     sender-side segments profile as zero. *)
  if Trace.on () then
    flow_issue ~uid:msg.Msg.uid ~tile:t.tile ~act:(-1)
      ~ts:(Engine.now t.engine) ();
  Result.map ignore (deliver t ~dst_ep:ep msg)

(* Drop every message still queued at a receive endpoint, freeing the
   slots and returning senders' credits exactly as an ack would.  The
   controller uses this when restarting a crashed activity in place:
   replies addressed to the dead incarnation must not pair with the first
   request of its successor. *)
let ext_drain_recv t ~ep =
  check_ep_index t ep;
  let e = t.eps.(ep) in
  match e.Ep.cfg with
  | Ep.Recv r ->
      let dropped = ref 0 in
      let rec loop () =
        match Queue.take_opt r.Ep.pending with
        | None -> ()
        | Some msg ->
            incr dropped;
            if r.Ep.occupied > 0 then r.Ep.occupied <- r.Ep.occupied - 1;
            if t.virtualized then begin
              let cell = unread_cell t e.Ep.owner in
              if !cell > 0 then decr cell
            end;
            (match msg.Msg.src_send_ep with
            | Some sep ->
                Noc.send t.noc ~src:t.tile ~dst:msg.Msg.src_tile
                  ~bytes:credit_packet_bytes ~on_delivered:(fun () ->
                    match t.lookup_dtu msg.Msg.src_tile with
                    | Some src_dtu -> restore_credit src_dtu ~ep:sep
                    | None -> ())
            | None -> ());
            loop ()
      in
      loop ();
      !dropped
  | Ep.Mpmc_recv mp ->
      let dropped = ref 0 in
      let rec loop () =
        match Queue.take_opt mp.Ep.mp_pending with
        | None -> ()
        | Some msg ->
            incr dropped;
            if Ep.mp_occupied mp > 0 then mp.Ep.mp_tail <- mp.Ep.mp_tail + 1;
            if t.virtualized then begin
              let cell = unread_cell t e.Ep.owner in
              if !cell > 0 then decr cell
            end;
            (match msg.Msg.src_send_ep with
            | Some sep ->
                let key = (msg.Msg.src_tile, sep) in
                let cur =
                  Option.value (Hashtbl.find_opt mp.Ep.mp_refunds key) ~default:0
                in
                Hashtbl.replace mp.Ep.mp_refunds key (cur + 1);
                mp.Ep.mp_refund_total <- mp.Ep.mp_refund_total + 1
            | None -> ());
            loop ()
      in
      loop ();
      mpmc_flush_refunds t mp;
      !dropped
  | Ep.Invalid | Ep.Send _ | Ep.Mem _ -> 0

(* Reconcile a receive endpoint's slot count with its queue after its
   owner crashed: slots held by messages the dead incarnation fetched but
   never acknowledged would leak forever (the restarted program never saw
   them, so it will never ack them).  Returns how many slots were freed. *)
let ext_release_fetched t ~ep =
  check_ep_index t ep;
  match t.eps.(ep).Ep.cfg with
  | Ep.Recv r ->
      let queued = Queue.length r.Ep.pending in
      let leaked = r.Ep.occupied - queued in
      r.Ep.occupied <- queued;
      max leaked 0
  | Ep.Mpmc_recv mp ->
      let queued = Queue.length mp.Ep.mp_pending in
      let leaked = Ep.mp_occupied mp - queued in
      mp.Ep.mp_tail <- mp.Ep.mp_head - queued;
      max leaked 0
  | Ep.Invalid | Ep.Send _ | Ep.Mem _ -> 0

(* --- migration support --- *)

(* Install a forwarding pointer: packets and credit grants addressed to
   [ep] (which must be Invalid — the slot was just vacated) chase the
   activity to [dst_tile:dst_ep]. *)
let ext_set_moved t ~ep ~dst_tile ~dst_ep =
  check_ep_index t ep;
  Hashtbl.replace t.moved ep (dst_tile, dst_ep)

let ext_clear_moved t ~ep =
  check_ep_index t ep;
  Hashtbl.remove t.moved ep

(* Rewrite every send endpoint of this DTU that targets (old_tile, ep) for
   ep in [eps] to target (new_tile, ep): the receive gates behind them
   migrated, slot indices preserved.  Credit balances are untouched —
   outstanding credits follow the channel, not the tile. *)
let ext_retarget t ~old_tile ~new_tile ~eps =
  let n = ref 0 in
  Array.iter
    (fun e ->
      match e.Ep.cfg with
      | Ep.Send s when s.Ep.dst_tile = old_tile && List.mem s.Ep.dst_ep eps ->
          incr n;
          e.Ep.cfg <- Ep.Send { s with Ep.dst_tile = new_tile }
      | _ -> ())
    t.eps;
  !n

(* Take (and clear) the refunds parked at [ep] so migration can carry them
   to the activity's new tile; [ext_park_refund] deposits them there,
   where the subsequent [ext_restore_eps] re-applies them capped. *)
let ext_take_parked_refund t ~ep =
  check_ep_index t ep;
  match Hashtbl.find_opt t.pending_refunds ep with
  | Some n ->
      Hashtbl.remove t.pending_refunds ep;
      n
  | None -> 0

let ext_park_refund t ~ep n =
  check_ep_index t ep;
  if n > 0 then
    let cur = Option.value (Hashtbl.find_opt t.pending_refunds ep) ~default:0 in
    Hashtbl.replace t.pending_refunds ep (cur + n)

(* Rebuild the unread counter for [act] from the messages queued at its
   receive endpoints — after migration installs snapshotted endpoints on a
   fresh tile no [deliver] ever incremented the counter there.  Returns
   the seeded count. *)
let ext_seed_unread t ~act =
  let n = ref 0 in
  Array.iter
    (fun e ->
      if e.Ep.owner = act then
        match e.Ep.cfg with
        | Ep.Recv r -> n := !n + Queue.length r.Ep.pending
        | Ep.Mpmc_recv mp -> n := !n + Queue.length mp.Ep.mp_pending
        | Ep.Invalid | Ep.Send _ | Ep.Mem _ -> ())
    t.eps;
  let cell = unread_cell t act in
  cell := !n;
  !n

let ext_drop_unread t ~act = Hashtbl.remove t.unread act

(* Credit inventory as seen by this DTU: credits sitting at send
   endpoints, plus refunds parked for Invalid slots or batched at MPMC
   rings (owed to senders but not yet granted).  Summed across all tiles
   at a quiescent instant this is conserved by migration — the test suite
   and the controller's migration assert both rely on it. *)
let ext_credit_inventory t =
  let n = ref 0 in
  Array.iter
    (fun e ->
      match e.Ep.cfg with
      | Ep.Send s -> n := !n + s.Ep.credits
      | Ep.Mpmc_recv mp -> n := !n + mp.Ep.mp_refund_total
      | Ep.Invalid | Ep.Recv _ | Ep.Mem _ -> ())
    t.eps;
  Hashtbl.iter (fun _ c -> n := !n + c) t.pending_refunds;
  !n

(* Reset every send endpoint targeting [dst_tile:dst_ep] to full credits;
   returns the number of credits reclaimed.  The controller uses this when
   tearing down a crashed activity: credits spent on messages the dead
   activity received but never acknowledged would otherwise be orphaned at
   its peers. *)
let ext_reclaim_credits t ~dst_tile ~dst_ep =
  let reclaimed = ref 0 in
  Array.iter
    (fun e ->
      match e.Ep.cfg with
      | Ep.Send s when s.Ep.dst_tile = dst_tile && s.Ep.dst_ep = dst_ep ->
          reclaimed := !reclaimed + (s.Ep.max_credits - s.Ep.credits);
          s.Ep.credits <- s.Ep.max_credits;
          Ep.check_credits ~ctx:"ext_reclaim_credits" s
      | _ -> ())
    t.eps;
  !reclaimed
