(** The data transfer unit (DTU) and its virtualized variant (vDTU).

    The DTU provides three interfaces (paper, section 3.4):

    - the {e unprivileged} interface used by activities to exercise existing
      communication channels (send/reply/fetch/ack, DMA reads and writes);
    - the {e external} interface used exclusively by the controller over the
      NoC to configure endpoints and thereby establish channels;
    - the {e privileged} interface (vDTU only) used by TileMux: the CUR_ACT
      register, the atomic activity switch, the software-loaded TLB and the
      core-request queue.

    Commands that move data complete asynchronously: the caller provides a
    completion continuation which the DTU invokes through the engine once
    the NoC transfer (and, for DMA, the DRAM access) has finished.  All
    transfers move real bytes. *)

type t

type completion = (unit, Dtu_types.error) result -> unit

val create :
  virtualized:bool ->
  tile:int ->
  ?ep_count:int ->
  ?tlb_capacity:int ->
  M3v_sim.Engine.t ->
  M3v_noc.Noc.t ->
  t

(** Wire the DTU into the platform: how to find the DTU of another tile and
    the DRAM backing of a memory tile. *)
val connect : t -> lookup_dtu:(int -> t option) -> lookup_mem:(int -> Dram.t option) -> unit

val tile : t -> int
val virtualized : t -> bool
val ep_count : t -> int

(** {1 Unprivileged interface} *)

(** [send t ~ep ?reply_ep ?src_vaddr ~msg_size data ~k] issues a SEND.
    Consumes one credit; fails with [Recv_gone] (credit restored) if the
    remote receive endpoint is invalid or full.  [src_vaddr], when given on
    a vDTU, is translated through the TLB and must not cross a page.
    [issue_ts] (default: now) backdates the message's flow-start point to
    when software issued the command, so the profiler's sender-command
    segment covers MMIO overhead and credit-stall spins. *)
val send :
  t ->
  ep:int ->
  ?reply_ep:int ->
  ?src_vaddr:int ->
  ?issue_ts:int ->
  msg_size:int ->
  Msg.data ->
  k:completion ->
  unit

(** [reply t ~to_msg ...] sends a reply through the reply endpoint recorded
    in [to_msg], without consuming credits, and implicitly acknowledges the
    message (freeing the receive slot and returning the sender's credit, as
    M3's REPLY does).  [recv_ep] is the endpoint the message was fetched
    from. *)
val reply :
  t ->
  recv_ep:int ->
  to_msg:Msg.t ->
  ?src_vaddr:int ->
  ?issue_ts:int ->
  msg_size:int ->
  Msg.data ->
  k:completion ->
  unit

(** Fetch the next unread message of a receive endpoint, if any. *)
val fetch : t -> ep:int -> (Msg.t option, Dtu_types.error) result

(** Acknowledge a fetched message without replying: frees the slot and
    returns the sender's credit via a credit packet. *)
val ack : t -> ep:int -> Msg.t -> (unit, Dtu_types.error) result

(** DMA read from a memory endpoint's window into a local buffer.
    [dst_vaddr] is the local buffer's virtual address (translated on a
    vDTU). *)
val mem_read :
  t ->
  ep:int ->
  off:int ->
  len:int ->
  dst_vaddr:int option ->
  dst:bytes ->
  dst_off:int ->
  k:completion ->
  unit

(** DMA write from a local buffer into a memory endpoint's window. *)
val mem_write :
  t ->
  ep:int ->
  off:int ->
  len:int ->
  src_vaddr:int option ->
  src:bytes ->
  src_off:int ->
  k:completion ->
  unit

(** Whether the endpoint has unread messages (used by polling loops). *)
val has_msgs : t -> ep:int -> bool

(** Whether [ep] is configured as an MPMC receive endpoint (any owner).
    The tile runtime charges MPMC acks as a single MMIO store (the
    tail-counter bump) instead of a full command round trip. *)
val is_mpmc : t -> ep:int -> bool

(** {1 Privileged interface (vDTU)} *)

val cur_act : t -> Dtu_types.act_id

(** Unread-message count of the current activity (the CUR_ACT register's
    counter field). *)
val cur_unread : t -> int

val unread_of : t -> Dtu_types.act_id -> int

(** Atomically switch to another activity; returns the old activity id and
    its unread count so TileMux can decide whether the old activity may
    block (paper, section 3.7). *)
val switch_act : t -> next:Dtu_types.act_id -> Dtu_types.act_id * int

val tlb_insert :
  t -> act:Dtu_types.act_id -> vpage:int -> ppage:int -> perm:Dtu_types.perm -> unit

val tlb_invalidate_act : t -> Dtu_types.act_id -> unit
val tlb_invalidate_page : t -> act:Dtu_types.act_id -> vpage:int -> unit
val tlb : t -> Tlb.t

(** Head of the core-request queue (the activity that received a message
    while not running), without removing it. *)
val fetch_core_req : t -> Dtu_types.act_id option

(** Acknowledge the head core request.  If the queue remains non-empty the
    vDTU raises the interrupt again shortly after. *)
val ack_core_req : t -> unit

val core_req_depth : t -> int

(** The interrupt line into the core, handled by TileMux. *)
val set_core_req_irq : t -> (unit -> unit) -> unit

(** Notification that a message arrived for an activity on this tile
    (running or not); the runtime uses it to wake pollers. *)
val set_msg_arrived : t -> (Dtu_types.act_id -> unit) -> unit

(** {1 External interface (controller only)} *)

val ext_config : t -> ep:int -> owner:Dtu_types.act_id -> Ep.config -> unit
val ext_invalidate : t -> ep:int -> unit
val ext_read_ep : t -> ep:int -> Ep.t

(** Save / restore a contiguous endpoint range (M3x remote multiplexing). *)
val ext_snapshot_eps : t -> first:int -> count:int -> Ep.t array

val ext_restore_eps : t -> first:int -> Ep.t array -> unit

(** Deliver a message into a local receive endpoint on behalf of the
    controller (M3x slow path: the controller forwards messages to
    recipients once it has switched them in).  NoC timing is charged by the
    caller. *)
val ext_inject : t -> ep:int -> Msg.t -> (unit, Dtu_types.error) result

(** [ext_reclaim_credits t ~dst_tile ~dst_ep] resets every send endpoint of
    this DTU that targets the given receive endpoint back to full credits
    and returns how many credits were reclaimed.  Used by the controller
    during crash cleanup: messages the dead activity received but never
    acknowledged would otherwise leave its peers' credits orphaned. *)
val ext_reclaim_credits : t -> dst_tile:int -> dst_ep:int -> int

(** [ext_drain_recv t ~ep] drops every message still queued at a receive
    endpoint, freeing the slots and returning the senders' credits exactly
    as an ack would; returns how many messages were dropped.  Used by the
    controller when restarting a crashed activity in place: replies
    addressed to the dead incarnation must not pair with the first request
    of its successor. *)
val ext_drain_recv : t -> ep:int -> int

(** [ext_release_fetched t ~ep] frees receive slots held by messages that
    were fetched but never acknowledged — after a crash the restarted
    incarnation never saw them and will never ack them, so the slots would
    leak forever.  Returns how many slots were freed. *)
val ext_release_fetched : t -> ep:int -> int

(** {1 Migration support (controller only)} *)

(** Install a forwarding pointer on a vacated (Invalid) slot: in-flight
    packets and credit grants addressed to it chase the migrated activity
    to [dst_tile:dst_ep], one extra NoC leg per hop.  Cleared by
    [ext_config]/[ext_invalidate] when the slot is reused. *)
val ext_set_moved : t -> ep:int -> dst_tile:int -> dst_ep:int -> unit

val ext_clear_moved : t -> ep:int -> unit

(** [ext_retarget t ~old_tile ~new_tile ~eps] rewrites every send endpoint
    of this DTU targeting [(old_tile, ep)] for [ep] in [eps] to
    [(new_tile, ep)] — the receive gates behind them migrated with their
    slot indices preserved.  Credit balances are untouched.  Returns how
    many endpoints were rewritten. *)
val ext_retarget : t -> old_tile:int -> new_tile:int -> eps:int list -> int

(** Take (and clear) credit refunds parked at an Invalid slot, so a
    migration can carry them to the activity's new tile. *)
val ext_take_parked_refund : t -> ep:int -> int

(** Deposit carried refunds at the target slot; the subsequent
    [ext_restore_eps] re-applies them capped at the endpoint maximum. *)
val ext_park_refund : t -> ep:int -> int -> unit

(** Rebuild the unread counter of [act] from the messages queued at its
    receive endpoints (after installing snapshotted endpoints on a fresh
    tile); returns the seeded count. *)
val ext_seed_unread : t -> act:Dtu_types.act_id -> int

(** Drop the unread counter of a departed activity. *)
val ext_drop_unread : t -> act:Dtu_types.act_id -> unit

(** Credits visible at this DTU: send-endpoint balances plus refunds
    parked at Invalid slots or batched at MPMC rings.  Summed across all
    tiles at a quiescent instant, migration conserves it. *)
val ext_credit_inventory : t -> int

(** {1 Statistics} *)

type stats = {
  sends : int;
  replies : int;
  fetches : int;
  acks : int;
  dma_reads : int;
  dma_writes : int;
  dma_bytes : int;
  core_reqs : int;
  delivery_failures : int;
  translation_faults : int;
  retries : int;  (** retransmitted command attempts (fault injection) *)
  timeouts : int;  (** commands that exhausted their retransmit budget *)
  dup_drops : int;  (** deduplicated message copies dropped on receive *)
  mig_forwards : int;
      (** packets/credit grants forwarded through a migration pointer *)
  mpmc_deliveries : int;  (** messages delivered into MPMC rings *)
  mpmc_doorbells_coalesced : int;
      (** MPMC arrivals absorbed by an already-pending doorbell *)
  mpmc_refund_flushes : int;  (** batched credit packets sent by MPMC acks *)
  mpmc_credits_refunded : int;  (** credits carried by those packets *)
  credit_stalls : int;
      (** send attempts rejected with [No_credits]; each runtime retry spin
          counts once, so the total measures backpressure pressure, not
          unique messages *)
}

val stats : t -> stats
