(** Shared DTU-level types: activity ids, permissions, command errors. *)

(** Activities are identified by small integers assigned by the controller.
    Two ids are architecturally reserved. *)
type act_id = int

val invalid_act : act_id

(** TileMux's own activity id: its endpoints (for controller communication)
    are tagged with this id, and the vDTU must be switched to it before
    TileMux can use them (paper, section 4.2). *)
val tilemux_act : act_id

val is_reserved_act : act_id -> bool
val pp_act : Format.formatter -> act_id -> unit

type perm = R | W | RW

val perm_allows_read : perm -> bool
val perm_allows_write : perm -> bool

(** Errors a DTU command can complete with. *)
type error =
  | No_such_ep  (** endpoint id out of range or invalid *)
  | Unknown_ep
      (** endpoint exists but belongs to another activity; the vDTU reports
          the same error as for an invalid endpoint so activities cannot
          probe each other's endpoints (paper, section 3.5) *)
  | Wrong_ep_type  (** e.g. SEND on a receive endpoint *)
  | No_credits  (** send endpoint exhausted its credits *)
  | Msg_too_large
  | Recv_gone  (** remote receive endpoint invalid or buffer full *)
  | Translation_fault of int
      (** vDTU TLB miss for the given virtual page; the activity must ask
          TileMux to translate and then retry (paper, section 3.6) *)
  | Out_of_bounds  (** memory endpoint access outside the window *)
  | No_perm
  | Page_boundary
      (** transfer crosses a page: the vDTU restricts every command's
          source/destination to a single page (paper, section 3.6) *)
  | Timeout
      (** the command's retransmit budget ran out without a completion
          acknowledgement (only possible under fault injection); for SEND
          the credit has been refunded *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Page size used by address spaces, the vDTU TLB and PMP windows. *)
val page_size : int

val page_of_addr : int -> int
val page_offset : int -> int

(** [crosses_page addr len] is true when [addr, addr+len) spans more than
    one page. *)
val crosses_page : int -> int -> bool
