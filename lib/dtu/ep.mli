(** DTU endpoints.

    Each endpoint is either invalid or configured as a send, receive, or
    memory endpoint.  Only the controller (via the DTU's external interface)
    may change endpoint configurations; the vDTU additionally tags every
    endpoint with the owning activity (paper, sections 2.1 and 3.5). *)

type send = {
  dst_tile : int;
  dst_ep : int;
  label : int;  (** copied into every message sent through this endpoint *)
  max_msg_size : int;
  max_credits : int;
  mutable credits : int;
}

type recv = {
  slots : int;  (** receive-buffer capacity in messages *)
  slot_size : int;  (** maximum message size (incl. header) per slot *)
  mutable occupied : int;  (** slots holding fetched-but-unacked or unread messages *)
  pending : Msg.t Queue.t;  (** delivered, not yet fetched *)
  seen : (int, unit) Hashtbl.t;
      (** uids of recently delivered messages (dedup under fault injection) *)
  seen_fifo : int Queue.t;  (** eviction order for [seen], bounded *)
}

(** Record [uid] as delivered on [r] (bounded: oldest entries are evicted). *)
val note_seen : recv -> int -> unit

(** Whether [uid] was already delivered to [r] (a retransmitted or
    NoC-duplicated copy). *)
val seen_before : recv -> int -> bool

type mem = {
  mem_tile : int;
  base : int;  (** offset within the memory tile *)
  mem_size : int;
  perm : Dtu_types.perm;
}

type config = Invalid | Send of send | Recv of recv | Mem of mem

type t = { mutable cfg : config; mutable owner : Dtu_types.act_id }

val make_invalid : unit -> t

(** Fresh send configuration with full credits. *)
val send_config :
  dst_tile:int -> dst_ep:int -> ?label:int -> max_msg_size:int -> credits:int -> unit -> config

val recv_config : slots:int -> slot_size:int -> unit -> config
val mem_config : mem_tile:int -> base:int -> size:int -> perm:Dtu_types.perm -> config

(** Deep copy, used by the M3x controller to save endpoint state. *)
val snapshot : t -> t

val pp : Format.formatter -> t -> unit
