(** DTU endpoints.

    Each endpoint is either invalid or configured as a send, receive, or
    memory endpoint.  Only the controller (via the DTU's external interface)
    may change endpoint configurations; the vDTU additionally tags every
    endpoint with the owning activity (paper, sections 2.1 and 3.5). *)

type send = {
  dst_tile : int;
  dst_ep : int;
  label : int;  (** copied into every message sent through this endpoint *)
  max_msg_size : int;
  max_credits : int;
  mutable credits : int;
}

type recv = {
  slots : int;  (** receive-buffer capacity in messages *)
  slot_size : int;  (** maximum message size (incl. header) per slot *)
  mutable occupied : int;  (** slots holding fetched-but-unacked or unread messages *)
  pending : Msg.t Queue.t;  (** delivered, not yet fetched *)
  seen : (int, unit) Hashtbl.t;
      (** uids of recently delivered messages (dedup under fault injection) *)
  seen_fifo : int Queue.t;  (** eviction order for [seen], bounded *)
}

(** Record [uid] as delivered on [r] (bounded: oldest entries are evicted). *)
val note_seen : recv -> int -> unit

(** Whether [uid] was already delivered to [r] (a retransmitted or
    NoC-duplicated copy). *)
val seen_before : recv -> int -> bool

type mpmc = {
  mp_slots : int;  (** shared ring capacity in messages *)
  mp_slot_size : int;  (** maximum message size (incl. header) per slot *)
  mp_ack_batch : int;  (** flush threshold for batched credit refunds *)
  mutable mp_head : int;  (** monotonic reservation counter (bumped at delivery) *)
  mutable mp_tail : int;  (** monotonic release counter (bumped at ack) *)
  mp_pending : Msg.t Queue.t;  (** delivered, not yet fetched *)
  mp_seen : (int, unit) Hashtbl.t;
  mp_seen_fifo : int Queue.t;
  mp_refunds : (int * int, int) Hashtbl.t;
      (** (src_tile, src_send_ep) -> credits owed, flushed in batches *)
  mutable mp_refund_total : int;
}

(** Occupancy of the shared ring: [mp_head - mp_tail]. *)
val mp_occupied : mpmc -> int

val mp_note_seen : mpmc -> int -> unit
val mp_seen_before : mpmc -> int -> bool

type mem = {
  mem_tile : int;
  base : int;  (** offset within the memory tile *)
  mem_size : int;
  perm : Dtu_types.perm;
}

type config =
  | Invalid
  | Send of send
  | Recv of recv
  | Mpmc_recv of mpmc
  | Mem of mem

type t = { mutable cfg : config; mutable owner : Dtu_types.act_id }

val make_invalid : unit -> t

(** Fresh send configuration with full credits. *)
val send_config :
  dst_tile:int -> dst_ep:int -> ?label:int -> max_msg_size:int -> credits:int -> unit -> config

val recv_config : slots:int -> slot_size:int -> unit -> config

(** Shared multi-producer receive queue; [ack_batch] (default 16) bounds how
    many acks may accumulate before a batched credit refund is flushed. *)
val mpmc_config : slots:int -> slot_size:int -> ?ack_batch:int -> unit -> config

val mem_config : mem_tile:int -> base:int -> size:int -> perm:Dtu_types.perm -> config

(** Raise [Invalid_argument] unless [0 <= credits <= max_credits]; [ctx] names
    the mutation site for the error message. *)
val check_credits : ctx:string -> send -> unit

(** Structural sanity for configs arriving over the external interface
    (restore / ext_config): credit and occupancy bounds. *)
val validate_config : ctx:string -> config -> unit

(** Deep copy, used by the M3x controller to save endpoint state. *)
val snapshot : t -> t

val pp : Format.formatter -> t -> unit
