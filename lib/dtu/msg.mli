(** Messages exchanged between endpoints.

    A message carries a typed payload (an extensible variant, so each
    service defines its own protocol constructors) plus a declared size in
    bytes that drives the timing model.  Replies are routed through the
    reply endpoint recorded in the message, mirroring M3's reply
    capability. *)

type data = ..

type data += Raw of bytes | Empty

type t = {
  uid : int;
      (** wire-level sequence number; retransmitted copies share it, so
          receivers can deduplicate.  Only compared for equality. *)
  src_tile : int;
  src_act : Dtu_types.act_id;
  src_send_ep : int option;  (** for credit return; [None] for replies *)
  label : int;  (** send-endpoint label, identifies the channel/session *)
  reply_to : (int * int) option;  (** (tile, recv endpoint) to reply to *)
  size : int;  (** payload bytes, for serialization cost *)
  data : data;
}

(** Header bytes added to every message on the wire and in receive-buffer
    slots. *)
val header_bytes : int

(** Read / restore the domain-local uid counter.  Checkpoint/restore must
    capture it explicitly: [Marshal] does not traverse domain-local
    storage, and a resumed run must allocate the same uids an
    uninterrupted run would. *)
val uid_counter : unit -> int

val set_uid_counter : int -> unit

val make :
  src_tile:int ->
  src_act:Dtu_types.act_id ->
  ?src_send_ep:int ->
  ?label:int ->
  ?reply_to:int * int ->
  size:int ->
  data ->
  t

val pp : Format.formatter -> t -> unit
