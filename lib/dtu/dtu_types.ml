type act_id = int

let invalid_act = 0xFFFF
let tilemux_act = 0xFFFE
let is_reserved_act id = id = invalid_act || id = tilemux_act

let pp_act fmt id =
  if id = invalid_act then Format.pp_print_string fmt "<invalid>"
  else if id = tilemux_act then Format.pp_print_string fmt "<tilemux>"
  else Format.fprintf fmt "act%d" id

type perm = R | W | RW

let perm_allows_read = function R | RW -> true | W -> false
let perm_allows_write = function W | RW -> true | R -> false

type error =
  | No_such_ep
  | Unknown_ep
  | Wrong_ep_type
  | No_credits
  | Msg_too_large
  | Recv_gone
  | Translation_fault of int
  | Out_of_bounds
  | No_perm
  | Page_boundary
  | Timeout

let error_to_string = function
  | No_such_ep -> "no such endpoint"
  | Unknown_ep -> "unknown endpoint"
  | Wrong_ep_type -> "wrong endpoint type"
  | No_credits -> "no credits"
  | Msg_too_large -> "message too large"
  | Recv_gone -> "receiver gone"
  | Translation_fault page -> Printf.sprintf "translation fault (page %#x)" page
  | Out_of_bounds -> "out of bounds"
  | No_perm -> "no permission"
  | Page_boundary -> "transfer crosses page boundary"
  | Timeout -> "command timed out"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let page_size = 4096
let page_of_addr addr = addr / page_size
let page_offset addr = addr mod page_size

let crosses_page addr len =
  len > 0 && page_of_addr addr <> page_of_addr (addr + len - 1)
